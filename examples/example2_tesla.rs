//! Paper Example 2 (Fig. 4, bottom row): the Tesla-Autopilot-style crash
//! recreated as a *perception delay* fault.
//!
//! The lead vehicle TV#1 exits the lane, revealing a slow vehicle TV#2.
//! Fault-free, the ADS re-plans and brakes in time. With a frozen world
//! model (delayed perception) spanning the reveal, the ADS keeps planning
//! against the stale world — "it was too late for the EV to recognize
//! TV#2 and slow down in time" — and crashes, exactly the failure mode
//! the paper attributes to the real incident.
//!
//! ```text
//! cargo run --release --example example2_tesla
//! ```

use drivefi::fault::{Fault, FaultKind, FaultWindow, Injector};
use drivefi::sim::{SimConfig, Simulation, BASE_TICKS_PER_SCENE};
use drivefi::world::scenario::ScenarioConfig;

fn main() {
    let scenario = ScenarioConfig::lead_exit_reveal(11);
    println!(
        "scenario `{}`: ego at {:.1} m/s; TV#1 exits the lane revealing a {:.1} m/s vehicle",
        scenario.name, scenario.ego_start.v, scenario.actors[1].state.v,
    );

    // Golden run: the reveal is tight but survivable.
    let config = SimConfig { record_trace: true, stop_on_collision: false, ..SimConfig::default() };
    let mut sim = Simulation::new(config, &scenario);
    let golden = sim.run();
    println!("golden run:  {} (min δ_lon = {:.2} m)", golden.outcome, golden.min_delta_lon);

    // Locate the reveal: the scene where the perceived lead distance
    // jumps (TV#1 exits, the occluded TV#2 becomes the lead).
    let trace = golden.trace.expect("trace requested");
    let reveal_scene = trace
        .frames
        .windows(2)
        .find_map(|w| match (w[0].lead_distance, w[1].lead_distance) {
            (Some(a), Some(b)) if b - a > 20.0 => Some(w[1].scene),
            _ => None,
        })
        .expect("reveal moment present in golden trace");
    println!("reveal scene in the golden run: {reveal_scene}");

    // Freeze the world model across the reveal: the stale tracks coast
    // (TV#1's phantom keeps cruising ahead) and the ADS never sees TV#2
    // until far too late.
    let freeze_start = reveal_scene.saturating_sub(5) * BASE_TICKS_PER_SCENE;
    let fault = Fault {
        kind: FaultKind::FreezeWorldModel,
        window: FaultWindow::burst(freeze_start, 60 * BASE_TICKS_PER_SCENE),
    };
    let mut sim = Simulation::new(SimConfig::default(), &scenario);
    let mut injector = Injector::new(vec![fault]);
    let faulted = sim.run_with(&mut injector);
    println!(
        "faulted run: {} (min δ_lon = {:.2} m, {} stale publications)",
        faulted.outcome,
        faulted.min_delta_lon,
        injector.injection_count()
    );

    assert!(golden.outcome.is_safe(), "golden run must survive the reveal");
    assert!(
        faulted.outcome.is_hazardous(),
        "delayed perception across the reveal must be hazardous"
    );
    println!("\ndelayed perception across the reveal reproduces the Tesla crash mechanism.");
}
