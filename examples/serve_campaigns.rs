//! The campaign daemon end to end: submit, serve, kill, resume.
//!
//! Submits two campaigns (the shipped `plans/persistent_random.toml`,
//! twice — the spool deduplicates the id) to a serve root, runs a
//! deliberately *bounded* daemon that stops mid-campaign (the state a
//! `kill -9` leaves behind, modulo a torn slice the store recovers),
//! prints the live `status.toml` progress, then drains with a fresh
//! daemon and proves the headline guarantee: every served campaign's
//! `report.toml` + `jobs.csv` are **byte-identical** to a standalone
//! `run_plan` of the same plan.
//!
//! ```text
//! cargo run --release --example serve_campaigns
//! ```

use drivefi::plan::{run_plan, CampaignPlan, OutputSpec, PlanResult, JOBS_FILE, REPORT_FILE};
use drivefi::serve::{serve, submit_plan, CampaignStatus, ServeConfig, CAMPAIGNS_DIR};
use std::path::Path;

fn main() {
    let repo = Path::new(env!("CARGO_MANIFEST_DIR"));
    let scratch =
        std::env::temp_dir().join(format!("drivefi-serve-example-{}", std::process::id()));
    std::fs::remove_dir_all(&scratch).ok();
    let root = scratch.join("serve_root");
    let plan_path = repo.join("plans/persistent_random.toml");

    // ------------------------------------------------------------------
    // 1. Submit: two campaigns from one plan file. Submission validates
    //    the plan client-side and spools it under a unique id.
    // ------------------------------------------------------------------
    let first = submit_plan(&root, &plan_path).expect("submit");
    let second = submit_plan(&root, &plan_path).expect("submit");
    println!("submitted: {first}, {second}");
    assert_eq!((first.as_str(), second.as_str()), ("persistent-random", "persistent-random-2"));

    // ------------------------------------------------------------------
    // 2. A bounded daemon: three fair-share rounds of 4-job slices,
    //    then exit — both campaigns are mid-flight, checkpointed.
    // ------------------------------------------------------------------
    let bounded = ServeConfig { slice: 4, max_rounds: Some(3), ..ServeConfig::default() };
    let summary = serve(&root, &bounded).expect("serve");
    println!("bounded daemon: {} rounds, {} campaigns admitted", summary.rounds, summary.admitted);
    for id in [&first, &second] {
        let status = CampaignStatus::load(&root.join(CAMPAIGNS_DIR).join(id)).expect("status");
        println!(
            "  {id}: {} [{}] {}/{} jobs, {} slices{}",
            status.state.name(),
            status.stage,
            status.done,
            status.total,
            status.slices,
            status.eta_seconds.map(|s| format!(", eta {s}s")).unwrap_or_default(),
        );
        assert!(status.done < status.total, "daemon was supposed to stop mid-campaign");
    }

    // ------------------------------------------------------------------
    // 3. A fresh daemon over the same root recovers the half-run
    //    campaigns from disk and drains them to completion.
    // ------------------------------------------------------------------
    let drain = ServeConfig { drain: true, ..ServeConfig::default() };
    let summary = serve(&root, &drain).expect("drain");
    println!("drain daemon: {} done, {} failed", summary.done, summary.failed);
    assert_eq!((summary.done, summary.failed), (2, 0));

    // ------------------------------------------------------------------
    // 4. The guarantee: served artifacts == standalone artifacts, byte
    //    for byte, for both campaigns.
    // ------------------------------------------------------------------
    let mut reference = CampaignPlan::load(&plan_path).expect("plan parses");
    let ref_dir = scratch.join("standalone");
    let spec = reference.output.take().expect("plan has [output]");
    reference.output = Some(OutputSpec { dir: ref_dir.to_string_lossy().into_owned(), ..spec });
    let PlanResult::Persisted(report) = run_plan(&reference).expect("standalone run") else {
        panic!("output plans persist");
    };
    assert!(report.complete());

    for id in [&first, &second] {
        let store = root.join(CAMPAIGNS_DIR).join(id).join("store");
        for file in [REPORT_FILE, JOBS_FILE] {
            let served = std::fs::read(store.join(file)).expect("served artifact");
            let standalone = std::fs::read(ref_dir.join(file)).expect("standalone artifact");
            assert_eq!(served, standalone, "{id}/{file} diverged from the standalone run");
        }
        println!("{id}: report.toml + jobs.csv byte-identical to the standalone run");
    }

    std::fs::remove_dir_all(&scratch).ok();
    println!("serve round trip complete");
}
