//! Bayesian FI beyond driving: the paper's surgical-robot generality
//! claim, end-to-end on a simulated needle-insertion arm.
//!
//! The pipeline is identical in shape to the AV case: golden traces →
//! 3-TBN fit → `do(·)` counterfactuals → critical set → validation by
//! real injection. Only the two specifications change: the architecture
//! ([`NeedleArm::spec`]) and the safety constraint ([`InsertionSafety`]).
//!
//! ```text
//! cargo run --release --example surgical_robot
//! ```

use drivefi::genfi::surgical::{golden_traces, validate_all, InsertionSafety, NeedleArm};
use drivefi::genfi::{Corruption, GenericMiner, MinerOptions, SafetyModel};

fn main() {
    // 1. Golden corpus: 12 insertions with jittered target depths.
    let seed = 2026;
    let traces = golden_traces(12, seed);
    let safety = InsertionSafety::default();
    let steps: usize = traces.iter().map(Vec::len).sum();
    println!("golden corpus: {} insertions, {steps} control periods, all safe", traces.len());
    for t in &traces {
        assert!(t.iter().all(|row| safety.margin(row) > 0.0));
    }

    // 2. Fit the 3-TBN from the architecture spec + golden traces.
    let miner =
        GenericMiner::fit(&NeedleArm::spec(), &traces, MinerOptions::default()).expect("model fit");
    let pool = miner.candidate_count(&traces, &safety);

    // 3. Mine the critical set (fanned out over the shared worker pool).
    let workers = drivefi::sim::default_workers();
    let critical = miner.mine_parallel(&traces, &safety, workers);
    println!(
        "mined |F_crit| = {} of {pool} candidates ({:.2}%)",
        critical.len(),
        100.0 * critical.len() as f64 / pool as f64
    );
    let encoder_faults =
        critical.iter().filter(|c| c.var == drivefi::genfi::surgical::VAR_MEASURED).count();
    println!(
        "  {} corrupted-encoder faults, {} corrupted-command faults",
        encoder_faults,
        critical.len() - encoder_faults
    );

    // 4. Validate the head of the critical set by real injection — a
    //    parallel campaign through the same engine the AV pipeline uses.
    let n = critical.len().min(25);
    let margins = validate_all(&critical[..n], seed, &safety, 1200, workers);
    let manifested = margins.iter().filter(|&&m| m < 0.0).count();
    println!(
        "validation: {manifested}/{n} mined faults manifested as boundary violations \
         (paper AV shape: 460/561 ≈ 82%)"
    );
    assert!(manifested * 2 > n, "majority of mined faults should manifest");

    // 5. Sanity: the classic harmless fault is not in the set.
    assert!(
        !critical.iter().any(|c| {
            c.var == drivefi::genfi::surgical::VAR_MEASURED && c.corruption == Corruption::Max
        }),
        "stuck-deep encoder (which halts the arm) must not be mined"
    );
    println!("stuck-deep encoder correctly absent from F_crit (it halts the arm).");
}
