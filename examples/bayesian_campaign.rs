//! End-to-end Bayesian fault-injection campaign on a small suite.
//!
//! Walks the full DriveFI pipeline — golden runs, 3-TBN fit,
//! counterfactual mining, validation by real injection, random baseline —
//! and prints the paper-style accounting (mined faults, manifestation
//! rate, critical scenes, acceleration factor).
//!
//! ```text
//! cargo run --release --example bayesian_campaign
//! ```

use drivefi::core::{
    collect_golden_traces, random_output_campaign, validate_candidates, AccelerationReport,
    BayesianMiner, MinerConfig, RandomCampaignConfig,
};
use drivefi::sim::SimConfig;
use drivefi::world::ScenarioSuite;
use std::time::Instant;

fn main() {
    let workers = drivefi::sim::default_workers();
    let suite = ScenarioSuite::generate(16, 2026);
    let sim = SimConfig::default();
    println!("suite: {} scenarios, {} scenes", suite.scenarios.len(), suite.scene_count());

    // 1. Golden runs + model fit + mining.
    let mine_start = Instant::now();
    let golden = collect_golden_traces(&sim, &suite, workers);
    let miner = BayesianMiner::fit(&golden, MinerConfig::default()).expect("model fits");
    let critical = miner.mine_parallel(&golden, workers);
    let mining_time = mine_start.elapsed();
    let pool = miner.candidate_count(&golden);
    println!("mining: |candidates| = {pool}, |F_crit| = {} in {mining_time:.1?}", critical.len());

    // 2. Validate the mined faults by real injection.
    let validation = validate_candidates(&sim, &suite, &critical, workers);
    println!(
        "validation: {}/{} manifested as hazards ({} collisions) across {} critical scenes",
        validation.manifested,
        validation.mined.len(),
        validation.collisions,
        validation.critical_scenes.len()
    );

    // 3. Random baseline at the same injection budget.
    let random_cfg = RandomCampaignConfig { runs: critical.len().max(100), seed: 7, workers };
    let random = random_output_campaign(&sim, &suite, &random_cfg);
    println!(
        "random baseline: {} runs -> {} hazards, {} collisions (rate {:.2}%)",
        random.runs,
        random.hazards,
        random.collisions,
        100.0 * random.hazard_rate()
    );

    // 4. Acceleration accounting.
    let avg_sim = validation.wall_clock.div_f64(validation.mined.len().max(1) as f64);
    let report = AccelerationReport {
        candidate_pool: pool,
        avg_sim_time: avg_sim,
        mining_time,
        validation_time: validation.wall_clock,
        mined_faults: critical.len(),
    };
    println!("acceleration: {}", report.summary());

    // The paper's qualitative claims, asserted.
    assert!(validation.manifested > 0, "Bayesian FI must find manifesting faults");
    assert!(
        validation.precision() > random.hazard_rate(),
        "Bayesian precision must beat the random hazard rate"
    );
}
