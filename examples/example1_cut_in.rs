//! Paper Example 1 (Fig. 4, top row): a throttle fault injected exactly
//! when a cut-in has squeezed the safety potential.
//!
//! The paper's point: the *same* fault is harmless at δ = 30 m and fatal
//! at δ ≈ 2 m. Random injection almost never lands on the knife edge;
//! Bayesian FI aims for it. This example reproduces the δ-dependence by
//! injecting a max-throttle burst at a sweep of scenes and reporting the
//! outcome against the golden δ at the injection scene.
//!
//! ```text
//! cargo run --release --example example1_cut_in
//! ```

use drivefi::ads::Signal;
use drivefi::fault::{Fault, FaultKind, FaultWindow, Injector, ScalarFaultModel};
use drivefi::sim::{SimConfig, Simulation};
use drivefi::world::scenario::ScenarioConfig;

fn main() {
    let scenario = ScenarioConfig::cut_in(0);
    let config = SimConfig { record_trace: true, stop_on_collision: false, ..SimConfig::default() };

    // Golden run: find the δ timeline.
    let mut sim = Simulation::new(config, &scenario);
    let golden = sim.run();
    let trace = golden.trace.expect("trace requested");
    println!("golden cut-in run: {} | min δ_lon = {:.2} m", golden.outcome, golden.min_delta_lon);

    println!("\nscene  min golden δ_lon over burst   outcome of max-throttle burst there");
    let mut knife_edge_hit = false;
    let mut wide_margin_safe = false;
    for scene in (8..trace.frames.len() as u64 - 20).step_by(7) {
        // The δ that matters is the tightest one while the corrupted
        // commands (and the speed they add) are in effect.
        let golden_delta = trace.frames
            [scene as usize..(scene as usize + 16).min(trace.frames.len())]
            .iter()
            .map(|f| f.delta_true.longitudinal)
            .fold(f64::INFINITY, f64::min);
        let faults = vec![
            Fault {
                kind: FaultKind::Scalar {
                    signal: Signal::RawThrottle,
                    model: ScalarFaultModel::StuckMax,
                },
                window: FaultWindow::burst(scene * 4, 36),
            },
            Fault {
                kind: FaultKind::Scalar {
                    signal: Signal::RawBrake,
                    model: ScalarFaultModel::StuckMin,
                },
                window: FaultWindow::burst(scene * 4, 36),
            },
        ];
        let mut sim = Simulation::new(SimConfig::default(), &scenario);
        let mut injector = Injector::new(faults);
        let report = sim.run_with(&mut injector);
        println!("{scene:5}  {golden_delta:10.2}   {}", report.outcome);
        if golden_delta < 25.0 && report.outcome.is_hazardous() {
            knife_edge_hit = true;
        }
        if golden_delta > 100.0 && report.outcome.is_safe() {
            wide_margin_safe = true;
        }
    }

    assert!(knife_edge_hit, "expected the low-δ injection to be hazardous");
    assert!(wide_margin_safe, "expected the high-δ injection to be masked");
    println!("\nsame fault, different scene: hazard only where δ was already small —");
    println!("the timing sensitivity that motivates Bayesian fault selection.");
}
