//! The store-backed Bayesian mining pipeline, interrupted at every
//! stage and resumed from disk (paper §III-B as one resumable plan):
//!
//! 1. `kind = "mine"` runs golden → fit → mine → validate, persisting
//!    golden traces (`golden/trace-*.log`) and validation outcomes
//!    (`validate/shard-*.log`) under the plan's `[output]` dir.
//! 2. A budget cap interrupts the pipeline mid-golden-collection, on
//!    the fit boundary, and mid-candidate-sweep; each rerun resumes
//!    from the persisted stage stores — the 3-TBN re-fits *from the
//!    trace log*, never by re-simulating golden runs.
//! 3. The resumed run's `report.toml` + `jobs.csv` are byte-identical
//!    to an uninterrupted run's, and `compact_store` rewrites the
//!    shards into pure job order without changing a single read-back.
//!
//! Run with: `cargo run --release --example mine_resume`

use drivefi::plan::{
    run_plan, run_plan_budget, CampaignKind, CampaignPlan, OutputSpec, PlanResult,
    ScenarioSelection, SimSection, SinkChoice, GOLDEN_SUBDIR, JOBS_FILE, REPORT_FILE,
    VALIDATE_SUBDIR,
};
use drivefi::store::{compact_store, read_store, read_traces};
use std::path::Path;

fn mine_plan(dir: &Path) -> CampaignPlan {
    CampaignPlan {
        name: "mine-resume-example".into(),
        kind: CampaignKind::Mine { scene_stride: 40 },
        seed: 0,
        workers: None,
        sink: SinkChoice::Stats,
        scenarios: ScenarioSelection::Paper { count: 2, seed: 42 },
        faults: drivefi::fault::FaultSpace::default(),
        sim: SimSection::default(),
        submit: Default::default(),
        control: Default::default(),
        output: Some(OutputSpec {
            dir: dir.to_string_lossy().into_owned(),
            shards: 2,
            checkpoint_every: 8,
        }),
    }
}

fn report_files(dir: &Path) -> (Vec<u8>, Vec<u8>) {
    (
        std::fs::read(dir.join(REPORT_FILE)).expect("report.toml"),
        std::fs::read(dir.join(JOBS_FILE)).expect("jobs.csv"),
    )
}

fn main() {
    let base = std::env::temp_dir().join(format!("drivefi-mine-resume-{}", std::process::id()));
    let full_dir = base.join("full");
    let part_dir = base.join("part");
    std::fs::remove_dir_all(&base).ok();

    // Uninterrupted reference pipeline.
    let PlanResult::Persisted(full) = run_plan(&mine_plan(&full_dir)).expect("pipeline runs")
    else {
        panic!("mine plans persist");
    };
    println!(
        "uninterrupted: {} golden traces → |F_crit| = {} → {} hazards + {} collisions validated",
        read_traces(full_dir.join(GOLDEN_SUBDIR)).expect("trace log").1.len(),
        full.total_jobs,
        full.hazards(),
        full.collisions(),
    );

    // Interrupt mid-golden, on the fit boundary, then mid-sweep.
    let plan = mine_plan(&part_dir);
    let PlanResult::Persisted(p) = run_plan_budget(&plan, Some(1)).expect("budget run") else {
        panic!()
    };
    println!("interrupt mid-golden:  {}/{} golden runs persisted", p.jobs.len(), p.total_jobs);
    let PlanResult::Persisted(p) = run_plan_budget(&plan, Some(1)).expect("budget run") else {
        panic!()
    };
    println!(
        "interrupt at the fit:  golden complete, re-fit from trace shards mined {} candidates",
        p.total_jobs
    );
    let PlanResult::Persisted(p) =
        run_plan_budget(&plan, Some(full.total_jobs / 2)).expect("budget run")
    else {
        panic!()
    };
    println!("interrupt mid-sweep:   {}/{} validations persisted", p.jobs.len(), p.total_jobs);

    // Resume to completion: byte-identical artifacts.
    let PlanResult::Persisted(resumed) = run_plan(&plan).expect("resume") else { panic!() };
    assert!(resumed.complete());
    assert_eq!(
        report_files(&part_dir),
        report_files(&full_dir),
        "resumed report must be byte-identical"
    );
    println!("resumed:               report.toml + jobs.csv byte-identical to uninterrupted run");

    // Compact both stage stores; every read-back is unchanged.
    for subdir in [GOLDEN_SUBDIR, VALIDATE_SUBDIR] {
        let dir = part_dir.join(subdir);
        let before = read_store(&dir).expect("readable store");
        let meta = compact_store(&dir).expect("compaction");
        assert_eq!(read_store(&dir).expect("readable store"), before);
        println!(
            "compacted {subdir}/:    {} records now in pure job order{}",
            meta.checkpoint_records,
            if meta.traces { " (+ trace shards)" } else { "" }
        );
    }
    let (_, traces) = read_traces(part_dir.join(GOLDEN_SUBDIR)).expect("trace log");
    assert_eq!(traces.len(), 2, "compaction kept every golden trace");

    std::fs::remove_dir_all(&base).ok();
    println!("done.");
}
