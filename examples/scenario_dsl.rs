//! The declarative scenario DSL: new builtin families and a custom one.
//!
//! Scenario families are data (`ScenarioSpec`), not code: a family
//! declares its road, ego ranges, and a small sampling program that draws
//! jittered parameters and spawns actors from maneuver templates. This
//! example
//!
//! 1. runs the four DSL-native families (aggressive tailgater,
//!    multi-lane weave, stopped-debris field, congestion shockwave with a
//!    crossing pedestrian) golden and under an injected throttle fault,
//!    through the streaming campaign engine, and
//! 2. authors a brand-new family — a construction-zone squeeze — from
//!    scratch, registers it, and mines it with the Bayesian pipeline.
//!
//! ```text
//! cargo run --release --example scenario_dsl
//! ```

use drivefi::ads::Signal;
use drivefi::fault::{Fault, FaultKind, FaultWindow, ScalarFaultModel};
use drivefi::sim::{CampaignEngine, CampaignJob, SimConfig};
use drivefi::world::spec::{
    lit, var, ActorTemplate, EgoSpec, FamilyRegistry, KeyframeProgram, LaneChangeTemplate,
    ManeuverTemplate, RoadSpec, ScenarioSpec, Stmt,
};
use drivefi::world::ActorKind;
use std::sync::Arc;

const NEW_FAMILIES: [&str; 4] =
    ["tailgater", "multi_lane_weave", "debris_field", "shockwave_pedestrian"];

fn main() {
    // ------------------------------------------------------------------
    // 1. The DSL-native builtin families, golden + faulted, through the
    //    campaign engine. Each scenario is allocated once and shared by
    //    its golden and faulted jobs.
    // ------------------------------------------------------------------
    let engine = CampaignEngine::new(SimConfig::default());
    let registry = FamilyRegistry::builtin();
    let scenarios: Vec<Arc<_>> = NEW_FAMILIES
        .iter()
        .enumerate()
        .map(|(i, name)| Arc::new(registry.sample(name, i as u32, 2026 + i as u64)))
        .collect();
    let throttle_fault = |scene| Fault {
        kind: FaultKind::Scalar { signal: Signal::RawThrottle, model: ScalarFaultModel::StuckMax },
        window: FaultWindow::burst(scene * drivefi::sim::BASE_TICKS_PER_SCENE, 24),
    };
    let jobs = scenarios.iter().enumerate().flat_map(|(i, s)| {
        let golden = CampaignJob { id: 2 * i as u64, scenario: Arc::clone(s), faults: vec![] };
        let faulted = CampaignJob {
            id: 2 * i as u64 + 1,
            scenario: Arc::clone(s),
            faults: vec![throttle_fault(60)],
        };
        [golden, faulted]
    });
    let results = engine.collect(jobs);
    println!("new builtin families (golden | throttle fault @ scene 60):");
    for (i, name) in NEW_FAMILIES.iter().enumerate() {
        let golden = &results[2 * i].report;
        let faulted = &results[2 * i + 1].report;
        println!(
            "  {name:22} {} (min δ_lon {:6.1} m) | {} (min δ_lon {:6.1} m)",
            golden.outcome, golden.min_delta_lon, faulted.outcome, faulted.min_delta_lon
        );
        assert!(golden.outcome.is_safe(), "{name} must be survivable fault-free");
    }

    // ------------------------------------------------------------------
    // 2. A custom family: a construction zone narrows traffic behind a
    //    pace vehicle that brakes into the zone while a worker crosses.
    //    Everything below is declarative — no new world code.
    // ------------------------------------------------------------------
    let construction_zone = ScenarioSpec {
        name: "construction_zone",
        family_key: 900,
        duration: 40.0,
        road: RoadSpec::default(),
        ego: EgoSpec { v0_lo: 20.0, v0_hi: 26.0, set_lo: var("ego.v"), set_hi: var("ego.v") + 3.0 },
        program: vec![
            // Barrels along the left lane line, pinching the corridor.
            Stmt::Draw { var: "zone_x", lo: lit(260.0), hi: lit(320.0) },
            Stmt::Repeat {
                count: lit(3.0),
                body: vec![Stmt::spawn(ActorTemplate {
                    kind: ActorKind::StaticObstacle,
                    x: var("zone_x") + var("i") * 40.0,
                    y: lit(2.4),
                    v: lit(0.0),
                    heading: lit(0.0),
                    maneuver: ManeuverTemplate::Static,
                })],
            },
            // A pace vehicle ahead brakes down to zone speed at the zone.
            Stmt::Draw { var: "pace_gap", lo: lit(45.0), hi: lit(65.0) },
            Stmt::Let { var: "brake_t", expr: (var("zone_x") - 120.0) / var("ego.v") },
            Stmt::spawn(ActorTemplate {
                kind: ActorKind::Car,
                x: var("pace_gap"),
                y: lit(0.0),
                v: var("ego.v"),
                heading: lit(0.0),
                maneuver: ManeuverTemplate::Scripted {
                    keyframes: KeyframeProgram::List(vec![
                        (lit(0.0), lit(0.0)),
                        (var("brake_t"), lit(-2.0)),
                        (var("brake_t") + 5.0, lit(0.0)),
                    ]),
                    lane_change: None,
                },
            }),
            // A merging truck clears the right lane ahead of the zone.
            Stmt::Draw { var: "truck_x", lo: lit(90.0), hi: lit(130.0) },
            Stmt::spawn(ActorTemplate {
                kind: ActorKind::Truck,
                x: var("truck_x"),
                y: lit(-3.7),
                v: var("ego.v") - 4.0,
                heading: lit(0.0),
                maneuver: ManeuverTemplate::Idm {
                    desired: var("ego.v") - 4.0,
                    headway: None,
                    lane_change: Some(LaneChangeTemplate {
                        start_time: lit(2.0),
                        duration: lit(4.0),
                        from_y: lit(-3.7),
                        to_y: lit(0.0),
                    }),
                },
            }),
        ],
    };

    let mut registry = FamilyRegistry::builtin().clone();
    registry.register(construction_zone);

    let suite = drivefi::world::ScenarioSuite {
        scenarios: (0..6)
            .map(|i| registry.sample("construction_zone", i, 40 + u64::from(i)))
            .collect(),
    };
    let sim = SimConfig::default();
    let traces = drivefi::core::collect_golden_traces(&sim, &suite, 4);
    for trace in &traces {
        assert!(
            trace.frames.iter().all(|f| f.delta_true.is_safe()),
            "custom zone must be survivable fault-free"
        );
    }
    let miner = drivefi::core::BayesianMiner::fit(
        &traces,
        drivefi::core::MinerConfig { scene_stride: 4, ..Default::default() },
    )
    .expect("fit");
    let critical = miner.mine_parallel(&traces, 4);
    let stats = drivefi::core::validate_candidates(&sim, &suite, &critical, 4);
    println!(
        "\ncustom `construction_zone` family: {} scenarios, {} candidates, {} mined, \
         {}/{} manifested on validation",
        suite.scenarios.len(),
        miner.candidate_count(&traces),
        critical.len(),
        stats.manifested,
        stats.mined.len()
    );
}
