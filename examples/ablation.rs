//! Natural-resilience ablation through the public API (paper §II-C).
//!
//! The paper attributes the near-total masking of random transients to
//! three mechanisms: high-rate recomputation, Kalman fusion, and PID
//! smoothing — plus the backup watchdog path for hangs. This example
//! injects the *same* transient fault into four stack configurations and
//! shows where the masking comes from.
//!
//! ```text
//! cargo run --release --example ablation
//! ```

use drivefi::ads::{AdsConfig, Signal};
use drivefi::fault::{Fault, FaultKind, FaultWindow, Injector, ScalarFaultModel};
use drivefi::sim::{SimConfig, Simulation};
use drivefi::world::scenario::ScenarioConfig;

/// Runs the scenario tick-by-tick twice — golden and with one corrupted
/// max-throttle scene — and returns the peak speed deviation the
/// transient induces. This is the *local* masking measurement: how much
/// of the corrupted command actually reaches the wheels.
fn speed_leak(ads: AdsConfig, scenario: &ScenarioConfig) -> (f64, bool) {
    let sim_config = SimConfig { ads, ..SimConfig::default() };
    let golden_trace = {
        let cfg = SimConfig { record_trace: true, ..sim_config };
        Simulation::new(cfg, scenario).run().trace.expect("trace")
    };

    let fault = Fault {
        kind: FaultKind::Scalar { signal: Signal::RawThrottle, model: ScalarFaultModel::StuckMax },
        // One corrupted scene (4 base ticks) mid-run.
        window: FaultWindow::scene(60),
    };
    let cfg = SimConfig { record_trace: true, ..sim_config };
    let mut sim = Simulation::new(cfg, scenario);
    let report = sim.run_with(&mut Injector::new(vec![fault]));
    let faulted_trace = report.trace.expect("trace");

    // Peak speed deviation within the 2 s after injection (before the
    // world interaction diverges for other reasons).
    let leak = golden_trace
        .frames
        .iter()
        .zip(&faulted_trace.frames)
        .skip(60)
        .take(15)
        .map(|(g, f)| (f.ego.v - g.ego.v).abs())
        .fold(0.0f64, f64::max);
    (leak, report.outcome.is_hazardous())
}

fn main() {
    let scenario = ScenarioConfig::lead_vehicle_cruise(11);
    let configs: [(&str, AdsConfig); 3] = [
        ("full stack", AdsConfig::default()),
        ("no PID smoothing", AdsConfig { pid_smoothing: false, ..AdsConfig::default() }),
        ("planner at 1/8 rate", AdsConfig { planner_divisor: 8, ..AdsConfig::default() }),
    ];

    println!("one transient max-throttle scene against three stack configurations:");
    println!();
    println!("| configuration       | peak speed leak [m/s] | hazardous |");
    println!("|---------------------|-----------------------|-----------|");
    let mut full_stack_leak = f64::NAN;
    for (name, ads) in configs {
        let (leak, hazardous) = speed_leak(ads, &scenario);
        println!("| {name:19} | {leak:21.3} | {hazardous:9} |");
        if name == "full stack" {
            full_stack_leak = leak;
            assert!(!hazardous, "the full stack must mask a single-scene transient");
        } else {
            assert!(leak >= full_stack_leak, "removing a masking layer should not reduce the leak");
        }
    }
    println!();
    println!(
        "the leak column is how much of the corrupted command reaches the wheels: \
         the full stack smooths it away — the paper's explanation of why random FI \
         finds nothing."
    );
}
