//! Quickstart: drive one scenario fault-free, then inject a fault.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use drivefi::ads::Signal;
use drivefi::fault::{Fault, FaultKind, FaultWindow, Injector, ScalarFaultModel};
use drivefi::sim::{SimConfig, Simulation};
use drivefi::world::scenario::ScenarioConfig;

fn main() {
    // 1. A parameterized highway scenario: ego following a lead vehicle.
    let scenario = ScenarioConfig::lead_vehicle_cruise(7);
    println!(
        "scenario `{}`: ego at {:.1} m/s, set speed {:.1} m/s, {} actors",
        scenario.name,
        scenario.ego_start.v,
        scenario.ego_set_speed,
        scenario.actors.len()
    );

    // 2. Golden (fault-free) run.
    let mut sim = Simulation::new(SimConfig::default(), &scenario);
    let golden = sim.run();
    println!(
        "golden run: {} (min δ_lon = {:.1} m, min δ_lat = {:.2} m over {} scenes)",
        golden.outcome, golden.min_delta_lon, golden.min_delta_lat, golden.scenes
    );

    // 3. The same run with a permanent runaway-throttle fault injected at
    //    the actuation boundary (A_t), starting two seconds in.
    let faults = vec![
        Fault {
            kind: FaultKind::Scalar {
                signal: Signal::FinalThrottle,
                model: ScalarFaultModel::StuckMax,
            },
            window: FaultWindow::permanent(60),
        },
        Fault {
            kind: FaultKind::Scalar {
                signal: Signal::FinalBrake,
                model: ScalarFaultModel::StuckMin,
            },
            window: FaultWindow::permanent(60),
        },
    ];
    let mut sim = Simulation::new(SimConfig::default(), &scenario);
    let mut injector = Injector::new(faults);
    let faulted = sim.run_with(&mut injector);
    println!(
        "faulted run: {} (min δ_lon = {:.1} m, {} corruptions injected)",
        faulted.outcome,
        faulted.min_delta_lon,
        injector.injection_count()
    );

    assert!(golden.outcome.is_safe());
    assert!(faulted.outcome.is_hazardous());
    println!("the permanent throttle fault defeats the ADS, as expected.");
}
