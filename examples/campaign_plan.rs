//! Campaigns as data: run random and exhaustive campaigns purely from
//! the shipped `plans/*.toml` files — no recompilation — and prove they
//! produce exactly the numbers the typed API produces.
//!
//! ```text
//! cargo run --release --example campaign_plan
//! ```

use drivefi::core::{
    collect_golden_traces, exhaustive_comparison, random_space_campaign, BayesianMiner,
    MinerConfig, RandomCampaignConfig,
};
use drivefi::fault::FaultSpace;
use drivefi::plan::{load_scenario_spec, run_plan, CampaignPlan, PlanResult};
use drivefi::sim::SimConfig;
use drivefi::world::{FamilyRegistry, ScenarioSuite};
use std::path::Path;

fn main() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let sim = SimConfig::default();
    let workers = drivefi::sim::default_workers();

    // ------------------------------------------------------------------
    // 1. Random campaign from a plan file vs. the typed API.
    // ------------------------------------------------------------------
    let plan = CampaignPlan::load(root.join("plans/random_baseline.toml")).expect("plan parses");
    println!("plan `{}`: {:?} over {:?}", plan.name, plan.kind, plan.scenarios);
    let PlanResult::Random(from_plan) = run_plan(&plan).unwrap() else {
        panic!("random plan must produce random stats");
    };
    println!(
        "  from plan : {} runs, {} hazards, {} collisions, {} effective injections",
        from_plan.runs, from_plan.hazards, from_plan.collisions, from_plan.effective_injections
    );

    let suite = ScenarioSuite::generate(8, 42);
    let typed = random_space_campaign(
        &sim,
        &suite,
        &FaultSpace::default(),
        &RandomCampaignConfig { runs: 60, seed: 1, workers },
    );
    println!(
        "  typed API : {} runs, {} hazards, {} collisions, {} effective injections",
        typed.runs, typed.hazards, typed.collisions, typed.effective_injections
    );
    assert_eq!(from_plan.runs, typed.runs);
    assert_eq!(from_plan.safe, typed.safe);
    assert_eq!(from_plan.hazards, typed.hazards);
    assert_eq!(from_plan.collisions, typed.collisions);
    assert_eq!(from_plan.effective_injections, typed.effective_injections);
    assert_eq!(from_plan.hazard_details, typed.hazard_details);
    println!("  ✓ identical RunningStats numbers\n");

    // ------------------------------------------------------------------
    // 2. Exhaustive ground-truth comparison from a plan file.
    // ------------------------------------------------------------------
    let plan = CampaignPlan::load(root.join("plans/exhaustive_small.toml")).expect("plan parses");
    println!("plan `{}`: {:?}", plan.name, plan.kind);
    let PlanResult::Exhaustive(from_plan) = run_plan(&plan).unwrap() else {
        panic!("exhaustive plan must produce an exhaustive report");
    };
    println!("  from plan : {}", from_plan.summary());

    let suite = ScenarioSuite::generate(2, 42);
    let traces = collect_golden_traces(&sim, &suite, workers);
    let miner =
        BayesianMiner::fit(&traces, MinerConfig { scene_stride: 40, ..MinerConfig::default() })
            .expect("model fit");
    let typed = exhaustive_comparison(&sim, &suite, &miner, &traces, workers);
    println!("  typed API : {}", typed.summary());
    assert_eq!(from_plan.candidates, typed.candidates);
    assert_eq!(from_plan.true_hazards, typed.true_hazards);
    assert_eq!(from_plan.mined, typed.mined);
    assert_eq!(from_plan.true_positives, typed.true_positives);
    assert_eq!(from_plan.false_positives, typed.false_positives);
    assert_eq!(from_plan.false_negatives, typed.false_negatives);
    assert_eq!(from_plan.by_fault, typed.by_fault);
    println!("  ✓ identical ExhaustiveReport numbers\n");

    // ------------------------------------------------------------------
    // 3. A DSL-native scenario family loaded from a .toml spec file.
    // ------------------------------------------------------------------
    let spec = load_scenario_spec(root.join("plans/scenarios/tailgater.toml"))
        .expect("scenario spec parses");
    let registered = FamilyRegistry::builtin().get("tailgater").expect("registered");
    assert_eq!(&spec, registered, "file-loaded spec must equal the registered family");
    let scenario = spec.sample(0, 2026);
    println!(
        "scenario spec from file: `{}` (ego {:.1} m/s, {} actors) — matches the registry",
        scenario.name,
        scenario.ego_start.v,
        scenario.actors.len()
    );

    // 4. And a whole campaign whose scenarios come only from spec files
    //    (plans/dsl_from_file.toml cycles two file-loaded families).
    let plan = CampaignPlan::load(root.join("plans/dsl_from_file.toml")).expect("plan parses");
    let PlanResult::Random(stats) = run_plan(&plan).unwrap() else {
        panic!("dsl_from_file is a random campaign");
    };
    println!(
        "plan `{}` over file-loaded scenarios: {} runs, hazard rate {:.1}%",
        plan.name,
        stats.runs,
        100.0 * stats.hazard_rate()
    );
    assert_eq!(stats.runs, 20);

    // 5. Module-level fault space with the outcome sink.
    let plan = CampaignPlan::load(root.join("plans/module_faults.toml")).expect("plan parses");
    let PlanResult::RandomOutcomes { running, outcomes } = run_plan(&plan).unwrap() else {
        panic!("module_faults retains outcomes");
    };
    println!(
        "plan `{}`: {} module-fault runs, {} effective, {} hazardous outcomes",
        plan.name,
        outcomes.len(),
        running.effective_injections,
        outcomes.iter().filter(|o| o.is_hazardous()).count()
    );
    assert_eq!(outcomes.len(), 24);
    assert!(running.effective_injections > 0, "module faults never landed");

    println!("\nevery campaign above ran from a .toml file — no recompilation.");
}
