//! Persist, interrupt, resume: the campaign store end to end.
//!
//! Runs the shipped `plans/persistent_random.toml` three ways and
//! proves the headline guarantee of the persistence layer — a campaign
//! interrupted mid-run (here: a budget cap, then a deliberately *torn*
//! shard file) resumes to a report **byte-identical** to an
//! uninterrupted run's.
//!
//! ```text
//! cargo run --release --example persistent_campaign
//! ```

use drivefi::plan::{
    run_plan, run_plan_budget, CampaignPlan, OutputSpec, PlanResult, JOBS_FILE, REPORT_FILE,
};
use drivefi::store::read_store;
use std::path::Path;

fn main() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let scratch =
        std::env::temp_dir().join(format!("drivefi-example-store-{}", std::process::id()));
    std::fs::remove_dir_all(&scratch).ok();

    let mut plan =
        CampaignPlan::load(root.join("plans/persistent_random.toml")).expect("plan parses");
    let output = plan.output.as_ref().expect("plan has [output]").clone();

    // ------------------------------------------------------------------
    // 1. Uninterrupted run → the reference report files.
    // ------------------------------------------------------------------
    let full_dir = scratch.join("full");
    plan.output =
        Some(OutputSpec { dir: full_dir.to_string_lossy().into_owned(), ..output.clone() });
    let PlanResult::Persisted(full) = run_plan(&plan).expect("run") else {
        panic!("output plans persist");
    };
    println!(
        "uninterrupted: {}/{} jobs, {} safe, {} hazards, {} collisions, hazard rate {:.4}",
        full.jobs.len(),
        full.total_jobs,
        full.safe(),
        full.hazards(),
        full.collisions(),
        full.hazard_rate()
    );

    // ------------------------------------------------------------------
    // 2. Interrupted run: budget cap at 15 jobs, then tear the tail off
    //    a shard file — the classic kill-9-mid-write artifact.
    // ------------------------------------------------------------------
    let part_dir = scratch.join("part");
    plan.output = Some(OutputSpec { dir: part_dir.to_string_lossy().into_owned(), ..output });
    let PlanResult::Persisted(partial) = run_plan_budget(&plan, Some(15)).expect("capped run")
    else {
        panic!("output plans persist");
    };
    println!("interrupted  : {}/{} jobs persisted", partial.jobs.len(), partial.total_jobs);

    let shard = part_dir.join("shard-000.log");
    let len = std::fs::metadata(&shard).expect("shard exists").len();
    std::fs::OpenOptions::new()
        .write(true)
        .open(&shard)
        .unwrap()
        .set_len(len - 7)
        .expect("tear the shard tail");
    println!("torn         : chopped 7 bytes off {} (mid-record)", shard.display());

    // ------------------------------------------------------------------
    // 3. Resume. Recovery truncates the torn record, the engine re-runs
    //    exactly the missing jobs, and the report files come out
    //    byte-identical to the uninterrupted run's.
    // ------------------------------------------------------------------
    let PlanResult::Persisted(resumed) = run_plan(&plan).expect("resume") else {
        panic!("output plans persist");
    };
    assert!(resumed.complete());
    assert_eq!(resumed, full, "resumed report equals the uninterrupted one");
    for file in [REPORT_FILE, JOBS_FILE] {
        let a = std::fs::read(full_dir.join(file)).unwrap();
        let b = std::fs::read(part_dir.join(file)).unwrap();
        assert_eq!(a, b, "{file} must be byte-identical");
        println!(
            "verified     : {file} byte-identical across interrupt/resume ({} bytes)",
            a.len()
        );
    }

    // ------------------------------------------------------------------
    // 4. The store stays queryable after the fact.
    // ------------------------------------------------------------------
    let (meta, records) = read_store(&part_dir).expect("store reads back");
    let hazardous = records.iter().filter(|r| r.outcome.is_hazardous()).count();
    println!(
        "queried      : {} records (manifest complete = {}), {hazardous} hazardous",
        records.len(),
        meta.complete
    );

    std::fs::remove_dir_all(&scratch).ok();
    println!("✓ persistent campaign store round-trips through interrupt + torn-record resume");
}
