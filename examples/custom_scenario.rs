//! Building a custom scenario from scratch and mining it.
//!
//! Downstream users are not limited to the built-in scenario families:
//! a [`ScenarioConfig`] is plain data. This example scripts a bespoke
//! two-truck pincer on a three-lane highway, verifies it is survivable
//! fault-free, then runs the full Bayesian FI pipeline on it.
//!
//! ```text
//! cargo run --release --example custom_scenario
//! ```

use drivefi::core::{collect_golden_traces, validate_candidates, BayesianMiner, MinerConfig};
use drivefi::kinematics::VehicleState;
use drivefi::sim::{SimConfig, Simulation};
use drivefi::world::behavior::{Behavior, LaneChangeSpec, SpeedKeyframe};
use drivefi::world::scenario::ScenarioConfig;
use drivefi::world::{Actor, ActorId, ActorKind, Road, ScenarioSuite};

fn pincer(seed: u64) -> ScenarioConfig {
    let ego_v = 31.0;
    ScenarioConfig {
        id: 0,
        name: "two_truck_pincer".into(),
        seed,
        duration: 40.0,
        road: Road::default_highway(),
        ego_start: VehicleState::new(0.0, 0.0, ego_v, 0.0, 0.0),
        ego_set_speed: 33.0,
        actors: vec![
            // A slow truck ahead in the ego lane.
            Actor::new(
                ActorId(1),
                ActorKind::Car,
                VehicleState::new(90.0, 0.0, 24.0, 0.0, 0.0),
                Behavior::idm(24.0),
            ),
            // A second truck in the left lane that merges in front of the
            // first one, closing the overtaking window.
            Actor::new(
                ActorId(2),
                ActorKind::Car,
                VehicleState::new(60.0, 3.7, 26.0, 0.0, 0.0),
                Behavior::Scripted {
                    keyframes: vec![
                        SpeedKeyframe { time: 0.0, accel: 0.0 },
                        SpeedKeyframe { time: 12.0, accel: -1.0 },
                        SpeedKeyframe { time: 16.0, accel: 0.0 },
                    ],
                    lane_change: Some(LaneChangeSpec {
                        start_time: 10.0,
                        duration: 3.0,
                        from_y: 3.7,
                        to_y: 0.0,
                    }),
                },
            ),
        ],
    }
}

fn main() {
    let scenario = pincer(99);

    // 1. Prove the scenario is survivable fault-free.
    let mut sim = Simulation::new(SimConfig::default(), &scenario);
    let golden = sim.run();
    println!("golden pincer run: {} (min δ_lon = {:.1} m)", golden.outcome, golden.min_delta_lon);
    assert!(golden.outcome.is_safe(), "the custom scenario must be survivable");

    // 2. Full pipeline on a suite containing only this scenario.
    let suite = ScenarioSuite { scenarios: vec![scenario] };
    let sim_config = SimConfig::default();
    let traces = collect_golden_traces(&sim_config, &suite, 4);
    let miner = BayesianMiner::fit(&traces, MinerConfig::default()).expect("fit");
    let critical = miner.mine(&traces);
    println!(
        "mined {} critical faults from {} candidates",
        critical.len(),
        miner.candidate_count(&traces)
    );

    // 3. Validate them by real injection.
    let stats = validate_candidates(&sim_config, &suite, &critical, 4);
    println!(
        "validated: {}/{} manifested ({} collisions) across {} critical scenes",
        stats.manifested,
        stats.mined.len(),
        stats.collisions,
        stats.critical_scenes.len()
    );
    if let Some(worst) = critical.first() {
        println!(
            "most critical: scene {} {}:{} (golden δ {:.1} m → forecast δ̂ {:.1} m)",
            worst.scene,
            worst.signal.name(),
            worst.model.name(),
            worst.golden_delta,
            worst.predicted_delta
        );
    }
}
