//! The append-only lifecycle log: `events.jsonl`, one flat JSON
//! object per line, written beside a campaign store's manifest.
//!
//! Design constraints, in order:
//!
//! 1. **Never perturb the campaign.** Every write is best-effort; an
//!    unopenable or unwritable log degrades to silence. Nothing in the
//!    store or plan layers branches on the log's contents.
//! 2. **Crash-tolerant.** Writers append whole lines through
//!    `O_APPEND`; a crash mid-write leaves a torn fragment. On the
//!    next open the writer terminates any unterminated tail with a
//!    newline so later events stay line-aligned, and readers skip
//!    lines that fail to parse instead of erroring.
//! 3. **Self-ordering.** Each event carries a `seq` drawn from a
//!    process-global counter that is advanced past the file's largest
//!    persisted `seq` on open, so an interrupt → resume cycle yields a
//!    monotone sequence within one file.
//!
//! The format is a deliberately tiny JSON subset — flat objects whose
//! values are strings, integers, or booleans — hand-rolled here
//! because the workspace builds without serde.

use crate::Field::{Bool, Int, Str};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

/// Event log file name inside a campaign directory.
pub const EVENTS_FILE: &str = "events.jsonl";

/// A typed value in an event's payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Field {
    /// A JSON string.
    Str(String),
    /// A JSON integer.
    Int(i64),
    /// A JSON boolean.
    Bool(bool),
}

/// One parsed line of an event log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Monotone-within-file ordering hint.
    pub seq: u64,
    /// Wall-clock milliseconds since the Unix epoch.
    pub ts_ms: u64,
    /// Monotonic milliseconds since the writing process started.
    pub mono_ms: u64,
    /// Event kind (`"campaign_start"`, `"checkpoint"`, …).
    pub kind: String,
    /// Remaining payload fields, in emission order.
    pub fields: Vec<(String, Field)>,
}

impl Event {
    /// The payload string under `key`, if present with that type.
    pub fn str_field(&self, key: &str) -> Option<&str> {
        self.fields.iter().find_map(|(k, v)| match v {
            Str(s) if k == key => Some(s.as_str()),
            _ => None,
        })
    }

    /// The payload integer under `key`, if present with that type.
    pub fn int_field(&self, key: &str) -> Option<i64> {
        self.fields.iter().find_map(|(k, v)| match v {
            Int(n) if k == key => Some(*n),
            _ => None,
        })
    }

    /// The payload boolean under `key`, if present with that type.
    pub fn bool_field(&self, key: &str) -> Option<bool> {
        self.fields.iter().find_map(|(k, v)| match v {
            Bool(b) if k == key => Some(*b),
            _ => None,
        })
    }
}

// Process-global sequence source, advanced past persisted history on
// every log open so resumed campaigns keep a monotone `seq`.
static NEXT_SEQ: AtomicU64 = AtomicU64::new(1);

fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

fn emit_line(seq: u64, kind: &str, fields: &[(&str, Field)]) -> String {
    let mut line = String::with_capacity(96);
    line.push_str("{\"seq\":");
    line.push_str(&seq.to_string());
    line.push_str(",\"ts_ms\":");
    line.push_str(&crate::wall_ms().to_string());
    line.push_str(",\"mono_ms\":");
    line.push_str(&crate::mono_ms().to_string());
    line.push_str(",\"kind\":\"");
    escape_into(&mut line, kind);
    line.push('"');
    for (key, value) in fields {
        debug_assert!(
            !matches!(*key, "seq" | "ts_ms" | "mono_ms" | "kind"),
            "event field `{key}` collides with an envelope key — the line would carry \
             duplicate JSON keys"
        );
        line.push_str(",\"");
        escape_into(&mut line, key);
        line.push_str("\":");
        match value {
            Str(s) => {
                line.push('"');
                escape_into(&mut line, s);
                line.push('"');
            }
            Int(n) => line.push_str(&n.to_string()),
            Bool(b) => line.push_str(if *b { "true" } else { "false" }),
        }
    }
    line.push_str("}\n");
    line
}

/// An open handle on a campaign directory's event log.
///
/// Inert (every emit a no-op) when observability is disabled or the
/// file cannot be opened.
#[derive(Debug)]
pub struct EventLog {
    file: Option<File>,
}

impl EventLog {
    /// Opens (creating if needed) `dir/events.jsonl` for appending.
    ///
    /// Terminates any torn tail left by a crashed writer, and advances
    /// the process sequence counter past the file's history. Never
    /// fails: an unusable log yields an inert handle.
    pub fn open(dir: &Path) -> EventLog {
        if !crate::enabled() {
            return EventLog { file: None };
        }
        let path = dir.join(EVENTS_FILE);
        let Ok(mut file) = OpenOptions::new().create(true).append(true).read(true).open(&path)
        else {
            return EventLog { file: None };
        };
        // Scan existing history once: continue `seq` after it, and
        // newline-terminate a torn final fragment so our own events
        // start on a fresh line.
        let mut existing = String::new();
        if file.seek(SeekFrom::Start(0)).is_ok() && file.read_to_string(&mut existing).is_ok() {
            let max_seq = existing
                .lines()
                .filter_map(|line| parse_line(line).ok())
                .map(|event| event.seq)
                .max()
                .unwrap_or(0);
            NEXT_SEQ.fetch_max(max_seq + 1, Ordering::Relaxed);
            if !existing.is_empty() && !existing.ends_with('\n') {
                let _ = file.write_all(b"\n");
            }
        }
        EventLog { file: Some(file) }
    }

    /// An inert log that drops every event.
    pub fn disabled() -> EventLog {
        EventLog { file: None }
    }

    /// Whether emits on this handle reach a file.
    pub fn is_active(&self) -> bool {
        self.file.is_some()
    }

    /// Appends one event. Best-effort: write errors are swallowed.
    pub fn emit(&mut self, kind: &str, fields: &[(&str, Field)]) {
        let Some(file) = self.file.as_mut() else { return };
        let seq = NEXT_SEQ.fetch_add(1, Ordering::Relaxed);
        let line = emit_line(seq, kind, fields);
        let _ = file.write_all(line.as_bytes());
    }
}

/// Opens `dir`'s log, appends one event, and closes it.
///
/// The right shape for low-frequency lifecycle emission sites (lease
/// takeover, seal, compaction) that don't hold a long-lived handle.
pub fn emit_event(dir: &Path, kind: &str, fields: &[(&str, Field)]) {
    if crate::enabled() {
        EventLog::open(dir).emit(kind, fields);
    }
}

fn parse_error(line: &str, what: &str) -> std::io::Error {
    let mut shown = line.to_string();
    shown.truncate(80);
    std::io::Error::new(std::io::ErrorKind::InvalidData, format!("{what} in event `{shown}`"))
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn skip_ws(&mut self) {
        while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_whitespace()) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, byte: u8) -> bool {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&byte) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn string(&mut self) -> Option<String> {
        if !self.eat(b'"') {
            return None;
        }
        let mut out = String::new();
        loop {
            let b = *self.bytes.get(self.pos)?;
            self.pos += 1;
            match b {
                b'"' => return Some(out),
                b'\\' => {
                    let esc = *self.bytes.get(self.pos)?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self.bytes.get(self.pos..self.pos + 4)?;
                            self.pos += 4;
                            let code =
                                u32::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()?;
                            out.push(char::from_u32(code)?);
                        }
                        _ => return None,
                    }
                }
                // Multi-byte UTF-8 continuation: copy bytes verbatim.
                b => {
                    let start = self.pos - 1;
                    let len = match b {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let chunk = self.bytes.get(start..start + len)?;
                    out.push_str(std::str::from_utf8(chunk).ok()?);
                    self.pos = start + len;
                }
            }
        }
    }

    fn value(&mut self) -> Option<Field> {
        match self.peek()? {
            b'"' => self.string().map(Str),
            b't' => {
                self.expect_word("true")?;
                Some(Bool(true))
            }
            b'f' => {
                self.expect_word("false")?;
                Some(Bool(false))
            }
            b'-' | b'0'..=b'9' => {
                let start = self.pos;
                if self.bytes[self.pos] == b'-' {
                    self.pos += 1;
                }
                while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_digit()) {
                    self.pos += 1;
                }
                std::str::from_utf8(&self.bytes[start..self.pos]).ok()?.parse::<i64>().ok().map(Int)
            }
            _ => None,
        }
    }

    fn expect_word(&mut self, word: &str) -> Option<()> {
        self.skip_ws();
        let end = self.pos + word.len();
        if self.bytes.get(self.pos..end) == Some(word.as_bytes()) {
            self.pos = end;
            Some(())
        } else {
            None
        }
    }
}

/// Parses one `events.jsonl` line.
///
/// # Errors
///
/// Returns an `InvalidData` error when the line is not a flat JSON
/// object with the mandatory `seq`/`ts_ms`/`mono_ms`/`kind` envelope —
/// including the torn fragments a crashed writer leaves behind.
pub fn parse_line(line: &str) -> std::io::Result<Event> {
    let mut cur = Cursor { bytes: line.as_bytes(), pos: 0 };
    if !cur.eat(b'{') {
        return Err(parse_error(line, "expected `{`"));
    }
    let mut pairs: Vec<(String, Field)> = Vec::new();
    if !cur.eat(b'}') {
        loop {
            let key = cur.string().ok_or_else(|| parse_error(line, "expected key"))?;
            if !cur.eat(b':') {
                return Err(parse_error(line, "expected `:`"));
            }
            let value = cur.value().ok_or_else(|| parse_error(line, "expected value"))?;
            pairs.push((key, value));
            if cur.eat(b',') {
                continue;
            }
            if cur.eat(b'}') {
                break;
            }
            return Err(parse_error(line, "expected `,` or `}`"));
        }
    }
    cur.skip_ws();
    if cur.pos != cur.bytes.len() {
        return Err(parse_error(line, "trailing bytes"));
    }
    let take_u64 = |pairs: &mut Vec<(String, Field)>, key: &str| -> std::io::Result<u64> {
        let at = pairs
            .iter()
            .position(|(k, v)| k == key && matches!(v, Int(n) if *n >= 0))
            .ok_or_else(|| parse_error(line, "missing envelope field"))?;
        match pairs.remove(at).1 {
            Int(n) => Ok(n as u64),
            _ => unreachable!(),
        }
    };
    let seq = take_u64(&mut pairs, "seq")?;
    let ts_ms = take_u64(&mut pairs, "ts_ms")?;
    let mono_ms = take_u64(&mut pairs, "mono_ms")?;
    let kind_at = pairs
        .iter()
        .position(|(k, v)| k == "kind" && matches!(v, Str(_)))
        .ok_or_else(|| parse_error(line, "missing `kind`"))?;
    let kind = match pairs.remove(kind_at).1 {
        Str(s) => s,
        _ => unreachable!(),
    };
    Ok(Event { seq, ts_ms, mono_ms, kind, fields: pairs })
}

/// Reads every parseable event from `dir/events.jsonl`, in file order.
///
/// Unparsable lines — torn tails and fragments from crashed writers —
/// are skipped, not errors. A missing file reads as no events.
///
/// # Errors
///
/// Returns an error only for I/O failures other than the file being
/// absent.
pub fn read_events(dir: &Path) -> std::io::Result<Vec<Event>> {
    read_events_file(&dir.join(EVENTS_FILE))
}

/// [`read_events`], addressed by file path rather than directory.
///
/// # Errors
///
/// Returns an error only for I/O failures other than the file being
/// absent.
pub fn read_events_file(path: &Path) -> std::io::Result<Vec<Event>> {
    let src = match std::fs::read_to_string(path) {
        Ok(src) => src,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e),
    };
    Ok(src.lines().filter_map(|line| parse_line(line).ok()).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("drivefi-obs-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn events_round_trip_with_escapes() {
        let fields = [
            ("name", Str("quote\" slash\\ tab\t nl\n unicode\u{1}µ".into())),
            ("count", Int(-42)),
            ("ok", Bool(true)),
        ];
        let line = emit_line(7, "campaign_start", &fields);
        let event = parse_line(line.trim_end()).unwrap();
        assert_eq!(event.seq, 7);
        assert_eq!(event.kind, "campaign_start");
        assert_eq!(event.str_field("name"), Some("quote\" slash\\ tab\t nl\n unicode\u{1}µ"));
        assert_eq!(event.int_field("count"), Some(-42));
        assert_eq!(event.bool_field("ok"), Some(true));
    }

    #[test]
    fn malformed_lines_are_errors() {
        for bad in [
            "",
            "{",
            "{\"seq\":1",
            "{\"seq\":1,\"ts_ms\":2,\"mono_ms\":3}",
            "{\"kind\":\"x\"}",
            "not json at all",
            "{\"seq\":1,\"ts_ms\":2,\"mono_ms\":3,\"kind\":\"x\"} trailing",
        ] {
            assert!(parse_line(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn log_survives_torn_tail_and_continues_seq() {
        let _guard = crate::test_lock();
        crate::force_enabled(true);
        let dir = temp_dir("torn");

        let mut log = EventLog::open(&dir);
        assert!(log.is_active());
        log.emit("campaign_start", &[("name", Str("x".into()))]);
        log.emit("checkpoint", &[("records", Int(5))]);
        drop(log);

        // Simulate a crash mid-write: truncate the file mid-line.
        let path = dir.join(EVENTS_FILE);
        let bytes = std::fs::read(&path).unwrap();
        let before = read_events(&dir).unwrap();
        assert_eq!(before.len(), 2);
        std::fs::write(&path, &bytes[..bytes.len() - 7]).unwrap();

        // A new writer appends cleanly after the torn fragment.
        let mut log = EventLog::open(&dir);
        log.emit("resume", &[]);
        drop(log);

        let events = read_events(&dir).unwrap();
        assert_eq!(
            events.iter().map(|e| e.kind.as_str()).collect::<Vec<_>>(),
            ["campaign_start", "resume"],
        );
        // seq stays monotone across the interruption.
        assert!(events[1].seq > before[1].seq);

        crate::clear_force();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn disabled_log_writes_nothing() {
        let _guard = crate::test_lock();
        crate::force_enabled(false);
        let dir = temp_dir("off");
        let mut log = EventLog::open(&dir);
        assert!(!log.is_active());
        log.emit("campaign_start", &[]);
        emit_event(&dir, "seal", &[]);
        assert!(!dir.join(EVENTS_FILE).exists());
        assert!(read_events(&dir).unwrap().is_empty());
        crate::clear_force();
        std::fs::remove_dir_all(&dir).ok();
    }
}
