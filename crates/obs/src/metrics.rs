//! Process-wide metrics registry: fixed-name atomic counters, gauges,
//! and power-of-two-bucketed histograms.
//!
//! The registry is a static table of atomics — no locks, no
//! allocation, no registration step — so emission sites can update it
//! unconditionally at per-job granularity without perturbing the
//! simulator's allocation-free hot path. Metrics are process-local and
//! volatile; durable telemetry goes through [`crate::events`].

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// Monotone counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Counter {
    /// Campaign jobs completed (any outcome).
    JobsCompleted,
    /// Simulation frames advanced, summed per job.
    FramesSimulated,
    /// Jobs that ended safe.
    OutcomeSafe,
    /// Jobs that ended in a non-collision hazard.
    OutcomeHazard,
    /// Jobs that ended in a collision.
    OutcomeCollision,
    /// Store checkpoints written.
    Checkpoints,
    /// Store recoveries that resumed prior records.
    Resumes,
    /// Stale shard leases taken over.
    LeaseTakeovers,
    /// Stores compacted.
    Compactions,
    /// Stores sealed.
    Seals,
    /// Control jobs executed.
    ControlJobs,
    /// Serve scheduling slices granted.
    ServeSlices,
}

impl Counter {
    /// Every counter, in stable emission order.
    pub const ALL: [Counter; 12] = [
        Counter::JobsCompleted,
        Counter::FramesSimulated,
        Counter::OutcomeSafe,
        Counter::OutcomeHazard,
        Counter::OutcomeCollision,
        Counter::Checkpoints,
        Counter::Resumes,
        Counter::LeaseTakeovers,
        Counter::Compactions,
        Counter::Seals,
        Counter::ControlJobs,
        Counter::ServeSlices,
    ];

    /// Stable snake_case name, as written into metrics events.
    pub fn name(self) -> &'static str {
        match self {
            Counter::JobsCompleted => "jobs_completed",
            Counter::FramesSimulated => "frames_simulated",
            Counter::OutcomeSafe => "outcome_safe",
            Counter::OutcomeHazard => "outcome_hazard",
            Counter::OutcomeCollision => "outcome_collision",
            Counter::Checkpoints => "checkpoints",
            Counter::Resumes => "resumes",
            Counter::LeaseTakeovers => "lease_takeovers",
            Counter::Compactions => "compactions",
            Counter::Seals => "seals",
            Counter::ControlJobs => "control_jobs",
            Counter::ServeSlices => "serve_slices",
        }
    }
}

/// Last-write-wins gauges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Gauge {
    /// Campaigns currently admitted to the serve scheduler.
    ServeQueueDepth,
    /// Jobs remaining in the currently running stage.
    StageJobsRemaining,
}

impl Gauge {
    /// Every gauge, in stable emission order.
    pub const ALL: [Gauge; 2] = [Gauge::ServeQueueDepth, Gauge::StageJobsRemaining];

    /// Stable snake_case name, as written into metrics events.
    pub fn name(self) -> &'static str {
        match self {
            Gauge::ServeQueueDepth => "serve_queue_depth",
            Gauge::StageJobsRemaining => "stage_jobs_remaining",
        }
    }
}

/// Histograms over non-negative microsecond samples.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Hist {
    /// Store checkpoint latency, µs per checkpoint.
    CheckpointLatencyUs,
    /// Wall time per completed job, µs.
    JobLatencyUs,
}

impl Hist {
    /// Every histogram, in stable emission order.
    pub const ALL: [Hist; 2] = [Hist::CheckpointLatencyUs, Hist::JobLatencyUs];

    /// Stable snake_case name, as written into metrics events.
    pub fn name(self) -> &'static str {
        match self {
            Hist::CheckpointLatencyUs => "checkpoint_latency_us",
            Hist::JobLatencyUs => "job_latency_us",
        }
    }
}

/// Power-of-two histogram buckets: bucket `i` counts samples in
/// `[2^i, 2^(i+1))`, with bucket 0 also absorbing zero.
pub const HIST_BUCKETS: usize = 40;

const NC: usize = Counter::ALL.len();
const NG: usize = Gauge::ALL.len();
const NH: usize = Hist::ALL.len();

struct HistCell {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

static COUNTERS: [AtomicU64; NC] = [const { AtomicU64::new(0) }; NC];
static GAUGES: [AtomicI64; NG] = [const { AtomicI64::new(0) }; NG];
static HISTS: [HistCell; NH] = [const {
    HistCell {
        buckets: [const { AtomicU64::new(0) }; HIST_BUCKETS],
        count: AtomicU64::new(0),
        sum: AtomicU64::new(0),
        max: AtomicU64::new(0),
    }
}; NH];

/// Adds `n` to a counter. A no-op while observability is disabled.
pub fn counter_add(counter: Counter, n: u64) {
    if crate::enabled() {
        COUNTERS[counter as usize].fetch_add(n, Ordering::Relaxed);
    }
}

/// Current value of a counter.
pub fn counter_get(counter: Counter) -> u64 {
    COUNTERS[counter as usize].load(Ordering::Relaxed)
}

/// Sets a gauge. A no-op while observability is disabled.
pub fn gauge_set(gauge: Gauge, value: i64) {
    if crate::enabled() {
        GAUGES[gauge as usize].store(value, Ordering::Relaxed);
    }
}

/// Current value of a gauge.
pub fn gauge_get(gauge: Gauge) -> i64 {
    GAUGES[gauge as usize].load(Ordering::Relaxed)
}

fn bucket_of(sample: u64) -> usize {
    ((64 - sample.leading_zeros()) as usize).saturating_sub(1).min(HIST_BUCKETS - 1)
}

/// Records one sample into a histogram. A no-op while disabled.
pub fn hist_record(hist: Hist, sample: u64) {
    if !crate::enabled() {
        return;
    }
    let cell = &HISTS[hist as usize];
    cell.buckets[bucket_of(sample)].fetch_add(1, Ordering::Relaxed);
    cell.count.fetch_add(1, Ordering::Relaxed);
    cell.sum.fetch_add(sample, Ordering::Relaxed);
    cell.max.fetch_max(sample, Ordering::Relaxed);
}

/// A point-in-time copy of one histogram's aggregates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Largest sample seen.
    pub max: u64,
}

impl HistSnapshot {
    /// Mean sample value, zero when empty.
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }
}

/// A point-in-time copy of the whole registry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Counter values, indexed like [`Counter::ALL`].
    pub counters: [u64; NC],
    /// Gauge values, indexed like [`Gauge::ALL`].
    pub gauges: [i64; NG],
    /// Histogram aggregates, indexed like [`Hist::ALL`].
    pub hists: [HistSnapshot; NH],
}

impl MetricsSnapshot {
    /// Value of one counter in this snapshot.
    pub fn counter(&self, counter: Counter) -> u64 {
        self.counters[counter as usize]
    }

    /// Value of one gauge in this snapshot.
    pub fn gauge(&self, gauge: Gauge) -> i64 {
        self.gauges[gauge as usize]
    }

    /// Aggregates of one histogram in this snapshot.
    pub fn hist(&self, hist: Hist) -> HistSnapshot {
        self.hists[hist as usize]
    }
}

/// Copies the registry's current values.
pub fn snapshot() -> MetricsSnapshot {
    let mut counters = [0u64; NC];
    for (slot, cell) in counters.iter_mut().zip(COUNTERS.iter()) {
        *slot = cell.load(Ordering::Relaxed);
    }
    let mut gauges = [0i64; NG];
    for (slot, cell) in gauges.iter_mut().zip(GAUGES.iter()) {
        *slot = cell.load(Ordering::Relaxed);
    }
    let mut hists = [HistSnapshot { count: 0, sum: 0, max: 0 }; NH];
    for (slot, cell) in hists.iter_mut().zip(HISTS.iter()) {
        *slot = HistSnapshot {
            count: cell.count.load(Ordering::Relaxed),
            sum: cell.sum.load(Ordering::Relaxed),
            max: cell.max.load(Ordering::Relaxed),
        };
    }
    MetricsSnapshot { counters, gauges, hists }
}

/// Zeroes the whole registry. Test-only by intent: metrics are
/// process-global, so concurrent campaigns in one process share them.
pub fn reset() {
    for cell in &COUNTERS {
        cell.store(0, Ordering::Relaxed);
    }
    for cell in &GAUGES {
        cell.store(0, Ordering::Relaxed);
    }
    for cell in &HISTS {
        for b in &cell.buckets {
            b.store(0, Ordering::Relaxed);
        }
        cell.count.store(0, Ordering::Relaxed);
        cell.sum.store(0, Ordering::Relaxed);
        cell.max.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_cover_the_sample_range() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 1);
        assert_eq!(bucket_of(4), 2);
        assert_eq!(bucket_of(u64::MAX), HIST_BUCKETS - 1);
    }

    #[test]
    fn registry_gates_on_enabled() {
        let _guard = crate::test_lock();
        crate::force_enabled(false);
        counter_add(Counter::Seals, 5);
        hist_record(Hist::CheckpointLatencyUs, 100);
        crate::force_enabled(true);
        counter_add(Counter::Seals, 2);
        counter_add(Counter::Seals, 3);
        gauge_set(Gauge::ServeQueueDepth, 7);
        hist_record(Hist::CheckpointLatencyUs, 10);
        hist_record(Hist::CheckpointLatencyUs, 30);
        let snap = snapshot();
        assert_eq!(snap.counter(Counter::Seals), 5);
        assert_eq!(snap.gauge(Gauge::ServeQueueDepth), 7);
        let h = snap.hist(Hist::CheckpointLatencyUs);
        assert_eq!((h.count, h.sum, h.max, h.mean()), (2, 40, 30, 20));
        reset();
        crate::clear_force();
        assert_eq!(snapshot().counter(Counter::Seals), 0);
    }
}
