//! Campaign observability: a process-wide metrics registry and an
//! append-only `events.jsonl` lifecycle log written beside each
//! campaign store's manifest.
//!
//! Everything in this crate is strictly *derived* telemetry: enabling
//! or disabling observability never changes what a campaign computes,
//! which jobs run, or a single byte of `report.toml` / `jobs.csv`.
//! Emission is best-effort — an unwritable events file degrades to
//! silence, never to a campaign error — and readers tolerate torn
//! tails left by crashed writers.
//!
//! Observability is off by default and switched on with the
//! `DRIVEFI_OBS` environment variable (any value other than `0` or
//! empty), or programmatically via [`force_enabled`] (used by tests,
//! where environment mutation races across threads).

pub mod events;
pub mod metrics;

pub use events::{emit_event, read_events, Event, EventLog, Field, EVENTS_FILE};
pub use metrics::{Counter, Gauge, Hist, MetricsSnapshot};

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// Environment variable that switches observability on.
pub const OBS_ENV: &str = "DRIVEFI_OBS";

// 0 = follow the environment, 1 = forced off, 2 = forced on.
static FORCE: AtomicU8 = AtomicU8::new(0);

fn env_enabled() -> bool {
    static CACHED: OnceLock<bool> = OnceLock::new();
    *CACHED.get_or_init(|| match std::env::var(OBS_ENV) {
        Ok(v) => !v.is_empty() && v != "0",
        Err(_) => false,
    })
}

/// Whether observability is currently enabled.
///
/// Cheap enough to call on every emission site: one relaxed atomic
/// load, plus a cached environment probe on the first call.
pub fn enabled() -> bool {
    match FORCE.load(Ordering::Relaxed) {
        1 => false,
        2 => true,
        _ => env_enabled(),
    }
}

/// Overrides the `DRIVEFI_OBS` environment probe for this process.
///
/// Tests use this instead of `std::env::set_var`, which races against
/// parallel test threads reading the environment.
pub fn force_enabled(on: bool) {
    FORCE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

/// Drops any [`force_enabled`] override, reverting to the environment.
pub fn clear_force() {
    FORCE.store(0, Ordering::Relaxed);
}

/// Serializes unit tests that flip the process-global [`force_enabled`]
/// override or reset the metrics registry.
#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Milliseconds since the Unix epoch (wall clock, for humans).
pub(crate) fn wall_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// Milliseconds since this process first touched the observability
/// layer (monotonic, for intervals).
pub(crate) fn mono_ms() -> u64 {
    static START: OnceLock<std::time::Instant> = OnceLock::new();
    START.get_or_init(std::time::Instant::now).elapsed().as_millis() as u64
}
