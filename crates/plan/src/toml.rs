//! A hand-rolled TOML-subset parser and emitter.
//!
//! The build environment has no crates.io access, so campaign plans and
//! scenario-spec files are read and written by this minimal
//! implementation instead of `toml` + `serde`. The subset covers what
//! plan files need:
//!
//! * `key = value` pairs with bare (`[A-Za-z0-9_-]+`) or quoted keys;
//! * `[table]` and `[[array-of-tables]]` headers, dotted paths allowed;
//! * basic strings with `\\ \" \n \t \r` escapes;
//! * integers, floats, booleans;
//! * arrays (newlines allowed inside, trailing comma tolerated);
//! * inline tables `{ k = v, ... }` (more lenient than upstream TOML:
//!   newlines inside are accepted);
//! * `#` comments.
//!
//! Documents parse into a [`Toml`] value tree; [`emit_document`] renders
//! a canonical form such that `parse(emit(x)) == x` for any tree without
//! NaN floats (the round-trip property the plan layer's tests pin).

use crate::PlanError;
use std::collections::BTreeMap;

/// A parsed TOML value.
#[derive(Debug, Clone, PartialEq)]
pub enum Toml {
    /// A basic string.
    Str(String),
    /// An integer.
    Int(i64),
    /// A float.
    Float(f64),
    /// A boolean.
    Bool(bool),
    /// An array of values.
    Array(Vec<Toml>),
    /// A table (document, section, or inline).
    Table(Map),
}

/// A TOML table: sorted key → value.
pub type Map = BTreeMap<String, Toml>;

impl Toml {
    /// The value as a table, if it is one.
    pub fn as_table(&self) -> Option<&Map> {
        match self {
            Toml::Table(t) => Some(t),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_array(&self) -> Option<&[Toml]> {
        match self {
            Toml::Array(a) => Some(a),
            _ => None,
        }
    }

    /// A short type name for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Toml::Str(_) => "string",
            Toml::Int(_) => "integer",
            Toml::Float(_) => "float",
            Toml::Bool(_) => "boolean",
            Toml::Array(_) => "array",
            Toml::Table(_) => "table",
        }
    }
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
}

impl<'a> Parser<'a> {
    fn new(src: &'a str) -> Self {
        Parser { src: src.as_bytes(), pos: 0, line: 1 }
    }

    fn err(&self, message: impl std::fmt::Display) -> PlanError {
        PlanError::new(format!("line {}: {message}", self.line))
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
        }
        Some(c)
    }

    /// Skips spaces and tabs (never newlines).
    fn skip_inline_ws(&mut self) {
        while matches!(self.peek(), Some(b' ') | Some(b'\t')) {
            self.pos += 1;
        }
    }

    /// Skips whitespace, newlines, and comments.
    fn skip_ws(&mut self) {
        loop {
            match self.peek() {
                Some(b' ') | Some(b'\t') | Some(b'\r') => {
                    self.pos += 1;
                }
                Some(b'\n') => {
                    self.bump();
                }
                Some(b'#') => {
                    while !matches!(self.peek(), None | Some(b'\n')) {
                        self.pos += 1;
                    }
                }
                _ => return,
            }
        }
    }

    /// After a `key = value` pair or header: only a comment may follow on
    /// the line.
    fn expect_line_end(&mut self) -> Result<(), PlanError> {
        self.skip_inline_ws();
        if self.peek() == Some(b'#') {
            while !matches!(self.peek(), None | Some(b'\n')) {
                self.pos += 1;
            }
        }
        match self.peek() {
            None => Ok(()),
            Some(b'\n') => {
                self.bump();
                Ok(())
            }
            Some(b'\r') => {
                self.pos += 1;
                Ok(())
            }
            Some(c) => Err(self.err(format!("expected end of line, found `{}`", c as char))),
        }
    }

    fn parse_key(&mut self) -> Result<String, PlanError> {
        match self.peek() {
            Some(b'"') => self.parse_string(),
            Some(c) if c.is_ascii_alphanumeric() || c == b'_' || c == b'-' => {
                let start = self.pos;
                while self
                    .peek()
                    .is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_' || c == b'-')
                {
                    self.pos += 1;
                }
                Ok(String::from_utf8_lossy(&self.src[start..self.pos]).into_owned())
            }
            Some(c) => Err(self.err(format!("expected a key, found `{}`", c as char))),
            None => Err(self.err("expected a key, found end of input")),
        }
    }

    /// A dotted key path (`a.b.c`).
    fn parse_path(&mut self) -> Result<Vec<String>, PlanError> {
        let mut path = vec![self.parse_key()?];
        loop {
            self.skip_inline_ws();
            if self.peek() == Some(b'.') {
                self.pos += 1;
                self.skip_inline_ws();
                path.push(self.parse_key()?);
            } else {
                return Ok(path);
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, PlanError> {
        debug_assert_eq!(self.peek(), Some(b'"'));
        self.pos += 1;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\n') => return Err(self.err("newline inside a basic string")),
                Some(b'\\') => match self.bump() {
                    Some(b'\\') => out.push('\\'),
                    Some(b'"') => out.push('"'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    other => {
                        return Err(self.err(format!(
                            "unsupported escape `\\{}`",
                            other.map_or(String::from("<eof>"), |c| (c as char).to_string())
                        )))
                    }
                },
                Some(c) if c < 0x80 => out.push(c as char),
                Some(first) => {
                    // Re-decode the UTF-8 sequence starting at `first`.
                    let start = self.pos - 1;
                    let len = match first {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let end = (start + len).min(self.src.len());
                    match std::str::from_utf8(&self.src[start..end]) {
                        Ok(s) => {
                            out.push_str(s);
                            self.pos = end;
                        }
                        Err(_) => return Err(self.err("invalid UTF-8 in string")),
                    }
                }
            }
        }
    }

    fn parse_value(&mut self) -> Result<Toml, PlanError> {
        match self.peek() {
            Some(b'"') => Ok(Toml::Str(self.parse_string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                loop {
                    self.skip_ws();
                    if self.peek() == Some(b']') {
                        self.pos += 1;
                        return Ok(Toml::Array(items));
                    }
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b']') => {}
                        _ => return Err(self.err("expected `,` or `]` in array")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut table = Map::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Toml::Table(table));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_key()?;
                    self.skip_ws();
                    if self.bump() != Some(b'=') {
                        return Err(self.err("expected `=` in inline table"));
                    }
                    self.skip_ws();
                    let value = self.parse_value()?;
                    if table.insert(key.clone(), value).is_some() {
                        return Err(self.err(format!("duplicate key `{key}`")));
                    }
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                            self.skip_ws();
                            // Tolerate a trailing comma.
                            if self.peek() == Some(b'}') {
                                self.pos += 1;
                                return Ok(Toml::Table(table));
                            }
                        }
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Toml::Table(table));
                        }
                        _ => return Err(self.err("expected `,` or `}` in inline table")),
                    }
                }
            }
            Some(c) if c == b't' || c == b'f' => {
                let start = self.pos;
                while self.peek().is_some_and(|c| c.is_ascii_alphabetic()) {
                    self.pos += 1;
                }
                match &self.src[start..self.pos] {
                    b"true" => Ok(Toml::Bool(true)),
                    b"false" => Ok(Toml::Bool(false)),
                    other => {
                        Err(self
                            .err(format!("unexpected value `{}`", String::from_utf8_lossy(other))))
                    }
                }
            }
            Some(c) if c == b'+' || c == b'-' || c == b'i' || c == b'n' || c.is_ascii_digit() => {
                let start = self.pos;
                while self.peek().is_some_and(|c| {
                    c.is_ascii_alphanumeric() || matches!(c, b'+' | b'-' | b'.' | b'_')
                }) {
                    self.pos += 1;
                }
                let text = std::str::from_utf8(&self.src[start..self.pos])
                    .map_err(|_| self.err("invalid number"))?;
                let is_float = text.contains(['.', 'e', 'E']) || text.contains("inf");
                if !is_float {
                    if let Ok(i) = text.parse::<i64>() {
                        return Ok(Toml::Int(i));
                    }
                }
                text.parse::<f64>()
                    .map(Toml::Float)
                    .map_err(|_| self.err(format!("malformed number `{text}`")))
            }
            Some(c) => Err(self.err(format!("unexpected value character `{}`", c as char))),
            None => Err(self.err("expected a value, found end of input")),
        }
    }

    /// Descends `root` along `path`, creating tables as needed and
    /// entering the last element of arrays-of-tables.
    fn descend<'m>(&self, root: &'m mut Map, path: &[String]) -> Result<&'m mut Map, PlanError> {
        let mut cur = root;
        for key in path {
            let entry = cur.entry(key.clone()).or_insert_with(|| Toml::Table(Map::new()));
            cur = match entry {
                Toml::Table(t) => t,
                Toml::Array(items) => match items.last_mut() {
                    Some(Toml::Table(t)) => t,
                    _ => return Err(self.err(format!("`{key}` is not an array of tables"))),
                },
                other => {
                    return Err(self
                        .err(format!("`{key}` is already a {}, not a table", other.type_name())))
                }
            };
        }
        Ok(cur)
    }

    fn parse_document(&mut self) -> Result<Map, PlanError> {
        let mut root = Map::new();
        let mut current: Vec<String> = Vec::new();
        loop {
            self.skip_ws();
            match self.peek() {
                None => return Ok(root),
                Some(b'[') => {
                    self.pos += 1;
                    let is_array = self.peek() == Some(b'[');
                    if is_array {
                        self.pos += 1;
                    }
                    self.skip_inline_ws();
                    let path = self.parse_path()?;
                    self.skip_inline_ws();
                    if self.bump() != Some(b']') || (is_array && self.bump() != Some(b']')) {
                        return Err(self.err("unterminated table header"));
                    }
                    self.expect_line_end()?;
                    if is_array {
                        let (last, parents) = path.split_last().expect("non-empty path");
                        let parent = self.descend(&mut root, parents)?;
                        let entry =
                            parent.entry(last.clone()).or_insert_with(|| Toml::Array(Vec::new()));
                        match entry {
                            Toml::Array(items) => items.push(Toml::Table(Map::new())),
                            other => {
                                return Err(self.err(format!(
                                    "`{last}` is already a {}, not an array of tables",
                                    other.type_name()
                                )))
                            }
                        }
                    } else {
                        // Creating (or re-entering) a plain table; reject
                        // redefinition of a non-table.
                        self.descend(&mut root, &path)?;
                    }
                    current = path;
                }
                Some(_) => {
                    let path = self.parse_path()?;
                    self.skip_inline_ws();
                    if self.bump() != Some(b'=') {
                        return Err(self.err("expected `=` after key"));
                    }
                    self.skip_inline_ws();
                    let value = self.parse_value()?;
                    self.expect_line_end()?;
                    let (last, parents) = path.split_last().expect("non-empty path");
                    let full: Vec<String> = current.iter().chain(parents.iter()).cloned().collect();
                    let table = self.descend(&mut root, &full)?;
                    if table.insert(last.clone(), value).is_some() {
                        return Err(self.err(format!("duplicate key `{last}`")));
                    }
                }
            }
        }
    }
}

/// Parses a TOML-subset document into its root table.
///
/// # Errors
///
/// Returns a [`PlanError`] with a line number on any syntax error,
/// duplicate key, or table redefinition.
pub fn parse_document(src: &str) -> Result<Map, PlanError> {
    Parser::new(src).parse_document()
}

// ---------------------------------------------------------------------------
// Emitter
// ---------------------------------------------------------------------------

fn key_needs_quoting(key: &str) -> bool {
    key.is_empty() || !key.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
}

fn emit_key(key: &str, out: &mut String) {
    if key_needs_quoting(key) {
        emit_string(key, out);
    } else {
        out.push_str(key);
    }
}

fn emit_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Renders a value inline (the form used for everything below the
/// top-level sections).
pub fn emit_value(value: &Toml, out: &mut String) {
    match value {
        Toml::Str(s) => emit_string(s, out),
        Toml::Int(i) => out.push_str(&i.to_string()),
        Toml::Float(f) => out.push_str(&format!("{f:?}")),
        Toml::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Toml::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                emit_value(item, out);
            }
            out.push(']');
        }
        Toml::Table(t) => {
            out.push('{');
            for (i, (k, v)) in t.iter().enumerate() {
                out.push_str(if i > 0 { ", " } else { " " });
                emit_key(k, out);
                out.push_str(" = ");
                emit_value(v, out);
            }
            out.push_str(if t.is_empty() { "}" } else { " }" });
        }
    }
}

/// True when every element of the array is a table (and there is at
/// least one) — the `[[section]]` emission form.
fn is_table_array(items: &[Toml]) -> bool {
    !items.is_empty() && items.iter().all(|i| matches!(i, Toml::Table(_)))
}

fn emit_section(path: &str, table: &Map, out: &mut String) {
    out.push_str(&format!("\n[{path}]\n"));
    for (key, value) in table {
        emit_key(key, out);
        out.push_str(" = ");
        emit_value(value, out);
        out.push('\n');
    }
}

/// Renders a document: top-level scalars and plain arrays first, then
/// one `[section]` per table value and one `[[section]]` per element of
/// each array-of-tables (anything nested deeper is emitted inline).
/// Canonical: `parse(emit_document(t)) == t` for NaN-free trees.
pub fn emit_document(root: &Map) -> String {
    let mut out = String::new();
    for (key, value) in root {
        match value {
            Toml::Table(_) => {}
            Toml::Array(items) if is_table_array(items) => {}
            other => {
                emit_key(key, &mut out);
                out.push_str(" = ");
                emit_value(other, &mut out);
                out.push('\n');
            }
        }
    }
    for (key, value) in root {
        let mut path = String::new();
        emit_key(key, &mut path);
        match value {
            Toml::Table(t) => emit_section(&path, t, &mut out),
            Toml::Array(items) if is_table_array(items) => {
                for item in items {
                    let Toml::Table(t) = item else { unreachable!() };
                    out.push_str(&format!("\n[[{path}]]\n"));
                    for (k, v) in t {
                        emit_key(k, &mut out);
                        out.push_str(" = ");
                        emit_value(v, &mut out);
                        out.push('\n');
                    }
                }
            }
            _ => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(pairs: &[(&str, Toml)]) -> Map {
        pairs.iter().map(|(k, v)| (k.to_string(), v.clone())).collect()
    }

    #[test]
    fn scalars_parse() {
        let doc = parse_document("a = 1\nb = -2.5\nc = \"hi\\n\"\nd = true\ne = 1e-9\nf = 40.0\n")
            .unwrap();
        assert_eq!(doc["a"], Toml::Int(1));
        assert_eq!(doc["b"], Toml::Float(-2.5));
        assert_eq!(doc["c"], Toml::Str("hi\n".into()));
        assert_eq!(doc["d"], Toml::Bool(true));
        assert_eq!(doc["e"], Toml::Float(1e-9));
        assert_eq!(doc["f"], Toml::Float(40.0));
    }

    #[test]
    fn sections_and_table_arrays_parse() {
        let doc = parse_document(
            "top = 1\n\n[alpha]\nx = 2 # trailing comment\n\n[alpha.beta]\ny = 3\n\n\
             [[items]]\nn = 1\n\n[[items]]\nn = 2\n",
        )
        .unwrap();
        let alpha = doc["alpha"].as_table().unwrap();
        assert_eq!(alpha["x"], Toml::Int(2));
        assert_eq!(alpha["beta"].as_table().unwrap()["y"], Toml::Int(3));
        let items = doc["items"].as_array().unwrap();
        assert_eq!(items.len(), 2);
        assert_eq!(items[1].as_table().unwrap()["n"], Toml::Int(2));
    }

    #[test]
    fn arrays_and_inline_tables_parse() {
        let doc = parse_document(
            "a = [1, 2,\n     3]\nb = { x = 1, y = { z = \"deep\" } }\nempty = []\n",
        )
        .unwrap();
        assert_eq!(doc["a"], Toml::Array(vec![Toml::Int(1), Toml::Int(2), Toml::Int(3)]));
        let b = doc["b"].as_table().unwrap();
        assert_eq!(b["y"].as_table().unwrap()["z"], Toml::Str("deep".into()));
        assert_eq!(doc["empty"], Toml::Array(vec![]));
    }

    #[test]
    fn malformed_documents_are_rejected_with_line_numbers() {
        for (src, needle) in [
            ("a = \n", "line 1"),
            ("a = 1\na = 2\n", "duplicate key"),
            ("a = 1 b = 2\n", "end of line"),
            ("[unclosed\nx = 1\n", "unterminated table header"),
            ("a = \"unterminated\n", "string"),
            ("a = 1..2\n", "malformed number"),
            ("a = truthy\n", "unexpected value"),
            ("[t]\nx = 1\n\n[t.x]\ny = 2\n", "not a table"),
        ] {
            let err = parse_document(src).unwrap_err();
            assert!(err.to_string().contains(needle), "{src:?} → {err}");
        }
    }

    #[test]
    fn canonical_emission_round_trips() {
        let doc = table(&[
            ("name", Toml::Str("x \"quoted\"\n".into())),
            ("count", Toml::Int(-3)),
            ("ratio", Toml::Float(0.125)),
            ("flag", Toml::Bool(false)),
            ("list", Toml::Array(vec![Toml::Int(1), Toml::Str("two".into())])),
            (
                "section",
                Toml::Table(table(&[
                    ("inner", Toml::Array(vec![Toml::Table(table(&[("k", Toml::Int(1))]))])),
                    ("plain", Toml::Int(7)),
                ])),
            ),
            (
                "rows",
                Toml::Array(vec![
                    Toml::Table(table(&[("a", Toml::Int(1))])),
                    Toml::Table(table(&[("a", Toml::Int(2)), ("weird key", Toml::Int(3))])),
                ]),
            ),
        ]);
        let text = emit_document(&doc);
        assert_eq!(parse_document(&text).unwrap(), doc, "emitted:\n{text}");
    }

    #[test]
    fn mixed_arrays_inside_sections_round_trip() {
        // An array that mixes tables and scalars must emit inline, not as
        // [[sections]].
        let doc = table(&[(
            "s",
            Toml::Table(table(&[(
                "mixed",
                Toml::Array(vec![Toml::Int(1), Toml::Table(table(&[("x", Toml::Int(2))]))]),
            )])),
        )]);
        let text = emit_document(&doc);
        assert_eq!(parse_document(&text).unwrap(), doc, "emitted:\n{text}");
    }
}
