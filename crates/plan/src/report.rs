//! The round-trip campaign report: plan in → report out, as files.
//!
//! A [`PlanReport`] is the queryable artifact a persisted campaign
//! leaves behind — the ROADMAP's "whole experiments round-trip as
//! files" item. It aggregates a store directory's merged
//! [`CampaignRecord`]s and serializes to two files next to the shards:
//!
//! * `report.toml` — the summary: plan name/kind, campaign fingerprint,
//!   job counts, and the outcome tallies;
//! * `jobs.csv` — one row per persisted job, in job order, with the
//!   scenario identity, armed fault, outcome, and hazard metrics.
//!
//! Both files are deterministic functions of the report value, so two
//! equal reports are byte-identical on disk — the property the
//! crash-resume tests pin ([`PlanReport::save`] after an interrupted +
//! resumed campaign produces the same bytes as an uninterrupted run).
//! [`PlanReport::load`] parses both files back and cross-checks the
//! summary tallies against the rows, so a hand-edited report fails
//! loudly instead of mis-aggregating.

use crate::scenario::{as_bool, as_str, as_uint, expect_keys, get};
use crate::toml::{emit_document, parse_document, Map, Toml};
use crate::PlanError;
use drivefi_ads::{Signal, Stage};
use drivefi_fault::{FaultKind, FaultSpace, FaultSpec, ScalarFaultModel, WindowSpec};
use drivefi_sim::Outcome;
use drivefi_store::CampaignRecord;
use std::path::Path;

/// Summary file name inside a store/report directory.
pub const REPORT_FILE: &str = "report.toml";
/// Per-job CSV file name inside a store/report directory.
pub const JOBS_FILE: &str = "jobs.csv";

const CSV_HEADER: &str = "job,scenario,seed,fault,scene,scenes,outcome,event_scene,actor,\
                          injections,sim_scenes,min_delta_lon,min_delta_lat";

/// The aggregated, serializable result of a persisted campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanReport {
    /// Plan name the campaign ran under.
    pub name: String,
    /// Campaign kind name (`"random"` / `"golden"`).
    pub kind: String,
    /// The campaign identity fingerprint the store is locked to.
    pub fingerprint: u64,
    /// Total jobs the campaign comprises (rows may be fewer while the
    /// campaign is still interruptible-in-progress).
    pub total_jobs: u64,
    /// One record per persisted job, sorted by job index.
    pub jobs: Vec<CampaignRecord>,
}

impl PlanReport {
    /// Builds the report over a store's merged records (must already be
    /// sorted by job index, as [`drivefi_store::read_store`] returns
    /// them).
    pub fn new(
        name: String,
        kind: &str,
        fingerprint: u64,
        total_jobs: u64,
        jobs: Vec<CampaignRecord>,
    ) -> Self {
        debug_assert!(jobs.windows(2).all(|w| w[0].job < w[1].job), "records sorted by job");
        PlanReport { name, kind: kind.to_owned(), fingerprint, total_jobs, jobs }
    }

    /// Persisted jobs ending safe.
    pub fn safe(&self) -> u64 {
        self.jobs.iter().filter(|r| r.outcome.is_safe()).count() as u64
    }

    /// Persisted jobs with δ ≤ 0 but no collision.
    pub fn hazards(&self) -> u64 {
        self.jobs.iter().filter(|r| r.outcome.is_hazardous() && !r.outcome.is_collision()).count()
            as u64
    }

    /// Persisted jobs ending in a collision.
    pub fn collisions(&self) -> u64 {
        self.jobs.iter().filter(|r| r.outcome.is_collision()).count() as u64
    }

    /// Persisted jobs in which the injector corrupted at least one live
    /// value.
    pub fn effective_injections(&self) -> u64 {
        self.jobs.iter().filter(|r| r.injections > 0).count() as u64
    }

    /// Fraction of persisted jobs that violated safety.
    pub fn hazard_rate(&self) -> f64 {
        if self.jobs.is_empty() {
            0.0
        } else {
            (self.hazards() + self.collisions()) as f64 / self.jobs.len() as f64
        }
    }

    /// True once every job has a persisted record.
    pub fn complete(&self) -> bool {
        self.jobs.len() as u64 == self.total_jobs
    }

    /// Renders the summary TOML document. `complete` records whether
    /// every job had a persisted record when the report was built — the
    /// one bit that distinguishes a report rebuilt from an interrupted
    /// store from a finished run's.
    pub fn summary_toml(&self) -> String {
        emit_document(&Map::from([
            ("name".into(), Toml::Str(self.name.clone())),
            ("kind".into(), Toml::Str(self.kind.clone())),
            ("fingerprint".into(), Toml::Str(format!("0x{:016x}", self.fingerprint))),
            ("total_jobs".into(), Toml::Int(self.total_jobs as i64)),
            ("persisted".into(), Toml::Int(self.jobs.len() as i64)),
            ("complete".into(), Toml::Bool(self.complete())),
            ("safe".into(), Toml::Int(self.safe() as i64)),
            ("hazards".into(), Toml::Int(self.hazards() as i64)),
            ("collisions".into(), Toml::Int(self.collisions() as i64)),
            ("effective_injections".into(), Toml::Int(self.effective_injections() as i64)),
        ]))
    }

    /// Renders the per-job CSV (header + one row per record).
    pub fn jobs_csv(&self) -> String {
        let mut out = String::with_capacity(64 * (self.jobs.len() + 1));
        out.push_str(CSV_HEADER);
        out.push('\n');
        for record in &self.jobs {
            csv_row(record, &mut out);
        }
        out
    }

    /// Saves `report.toml` + `jobs.csv` into `dir` (typically the store
    /// directory itself).
    ///
    /// # Errors
    ///
    /// Returns a [`PlanError`] on I/O failure.
    pub fn save(&self, dir: impl AsRef<Path>) -> Result<(), PlanError> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)
            .map_err(|e| PlanError::new(format!("creating {}: {e}", dir.display())))?;
        for (file, content) in [(REPORT_FILE, self.summary_toml()), (JOBS_FILE, self.jobs_csv())] {
            let path = dir.join(file);
            std::fs::write(&path, content)
                .map_err(|e| PlanError::new(format!("writing {}: {e}", path.display())))?;
        }
        Ok(())
    }

    /// Loads a report saved by [`PlanReport::save`], cross-checking the
    /// summary tallies against the re-aggregated rows.
    ///
    /// # Errors
    ///
    /// Returns a [`PlanError`] on I/O or parse failure, or when the
    /// summary disagrees with the rows (a tampered or half-updated
    /// report).
    pub fn load(dir: impl AsRef<Path>) -> Result<PlanReport, PlanError> {
        let dir = dir.as_ref();
        let read = |file: &str| {
            let path = dir.join(file);
            std::fs::read_to_string(&path)
                .map_err(|e| PlanError::new(format!("reading {}: {e}", path.display())))
        };
        let doc = parse_document(&read(REPORT_FILE)?)?;
        expect_keys(
            &doc,
            "report summary",
            &[
                "name",
                "kind",
                "fingerprint",
                "total_jobs",
                "persisted",
                "complete",
                "safe",
                "hazards",
                "collisions",
                "effective_injections",
            ],
        )?;
        let fingerprint_text =
            as_str(get(&doc, "report summary", "fingerprint")?, "`fingerprint`")?;
        let fingerprint = fingerprint_text
            .strip_prefix("0x")
            .and_then(|hex| u64::from_str_radix(hex, 16).ok())
            .ok_or_else(|| {
                PlanError::new(format!("`fingerprint` must be 0x-hex, got `{fingerprint_text}`"))
            })?;

        let csv = read(JOBS_FILE)?;
        let mut lines = csv.lines();
        match lines.next() {
            Some(header) if header == CSV_HEADER => {}
            other => {
                return Err(PlanError::new(format!(
                    "{JOBS_FILE}: unexpected header {other:?} (expected `{CSV_HEADER}`)"
                )))
            }
        }
        let jobs: Vec<CampaignRecord> = lines
            .enumerate()
            .map(|(i, line)| {
                parse_csv_row(line)
                    .map_err(|e| PlanError::new(format!("{JOBS_FILE} line {}: {e}", i + 2)))
            })
            .collect::<Result<_, _>>()?;

        let report = PlanReport {
            name: as_str(get(&doc, "report summary", "name")?, "`name`")?.to_owned(),
            kind: as_str(get(&doc, "report summary", "kind")?, "`kind`")?.to_owned(),
            fingerprint,
            total_jobs: as_uint(get(&doc, "report summary", "total_jobs")?, "`total_jobs`")?,
            jobs,
        };
        for (what, claimed, actual) in [
            (
                "persisted",
                as_uint(get(&doc, "report summary", "persisted")?, "`persisted`")?,
                report.jobs.len() as u64,
            ),
            ("safe", as_uint(get(&doc, "report summary", "safe")?, "`safe`")?, report.safe()),
            (
                "hazards",
                as_uint(get(&doc, "report summary", "hazards")?, "`hazards`")?,
                report.hazards(),
            ),
            (
                "collisions",
                as_uint(get(&doc, "report summary", "collisions")?, "`collisions`")?,
                report.collisions(),
            ),
            (
                "effective_injections",
                as_uint(
                    get(&doc, "report summary", "effective_injections")?,
                    "`effective_injections`",
                )?,
                report.effective_injections(),
            ),
        ] {
            if claimed != actual {
                return Err(PlanError::new(format!(
                    "report summary claims {what} = {claimed} but the rows aggregate to {actual}"
                )));
            }
        }
        // Reports written before the `complete` key load without this
        // cross-check (the rows still pin every tally above).
        if let Some(value) = doc.get("complete") {
            let claimed_complete = as_bool(value, "`complete`")?;
            if claimed_complete != report.complete() {
                return Err(PlanError::new(format!(
                    "report summary claims complete = {claimed_complete} but {} of {} jobs \
                     have rows",
                    report.jobs.len(),
                    report.total_jobs
                )));
            }
        }
        Ok(report)
    }
}

/// The CSV header row, shared with the `drivefi query` CLI output.
pub fn csv_header() -> &'static str {
    CSV_HEADER
}

/// Appends one record's CSV row (with trailing newline) to `out`.
/// Shared with the `drivefi query` CLI output.
pub fn csv_row(record: &CampaignRecord, out: &mut String) {
    use std::fmt::Write;
    let fault_name = record.fault.map(|spec| spec.kind.name()).unwrap_or_default();
    debug_assert!(!fault_name.contains(','), "fault names stay comma-free");
    write!(out, "{},{},{},{fault_name},", record.job, record.scenario_id, record.scenario_seed)
        .expect("writing to String");
    match record.fault {
        Some(spec) => write!(out, "{},{},", spec.window.scene, spec.window.scenes),
        None => write!(out, ",,"),
    }
    .expect("writing to String");
    match record.outcome {
        Outcome::Safe => write!(out, "safe,,,"),
        Outcome::Hazard { scene } => write!(out, "hazard,{scene},,"),
        Outcome::Collision { scene, actor } => write!(out, "collision,{scene},{actor},"),
    }
    .expect("writing to String");
    writeln!(
        out,
        "{},{},{},{}",
        record.injections, record.scenes, record.min_delta_lon, record.min_delta_lat
    )
    .expect("writing to String");
}

/// True when `needle` could match at least one well-formed fault name as
/// a substring — the validation behind `drivefi query --fault`. The
/// vocabulary is everything [`FaultKind::name`] can emit:
/// `"signal:model"` for scalar faults (where parameterized models carry
/// a free-form numeric tail after `(`) and the module-fault names. A
/// typo like `"hazrd"` or `"throtle"` matches nothing and is rejected
/// up front instead of silently filtering every record away.
pub fn known_fault_filter(needle: &str) -> bool {
    if needle.is_empty() {
        return false;
    }
    // A fully spelled-out fault name (e.g. "plan.throttle:offset(-2.5)").
    if parse_fault_kind(needle).is_some() {
        return true;
    }
    // A needle made purely of parameter characters could fall entirely
    // inside a parameterized model's numeric tail ("62)", "(-2.5)") —
    // only the record filter can tell, so let it through.
    if needle.chars().all(|c| c.is_ascii_digit() || "().-".contains(c)) {
        return true;
    }
    // Otherwise the needle must occur in some name with the numeric tail
    // of parameterized models left open: validate only the part up to
    // (and including) the first `(` — anything after it is a number.
    let head = match needle.find('(') {
        Some(at) => &needle[..=at],
        None => needle,
    };
    let model_stems = ["min", "max", "stuck(", "bitflip(", "offset(", "scale("];
    let scalar_names = Signal::ALL
        .iter()
        .flat_map(|signal| model_stems.iter().map(move |stem| format!("{}:{stem}", signal.name())));
    let module_names = [FaultKind::ClearWorldModel, FaultKind::FreezeWorldModel]
        .into_iter()
        .chain(Stage::ALL.map(|stage| FaultKind::ModuleHang { stage }))
        .map(|kind| kind.name());
    scalar_names.chain(module_names).any(|name| name.contains(head))
}

/// Parses the fault-name vocabulary [`FaultKind::name`] emits:
/// `"signal:model"` for scalar faults, the module names otherwise.
fn parse_fault_kind(name: &str) -> Option<FaultKind> {
    if let Some(kind) = FaultSpace::parse_module(name) {
        return Some(kind);
    }
    let (signal, model) = name.split_once(':')?;
    Some(FaultKind::Scalar {
        signal: Signal::from_name(signal)?,
        model: ScalarFaultModel::parse(model)?,
    })
}

fn parse_csv_row(line: &str) -> Result<CampaignRecord, PlanError> {
    let fields: Vec<&str> = line.split(',').collect();
    if fields.len() != 13 {
        return Err(PlanError::new(format!("expected 13 fields, got {}", fields.len())));
    }
    let uint = |what: &str, s: &str| -> Result<u64, PlanError> {
        s.parse().map_err(|_| PlanError::new(format!("{what} `{s}` is not an integer")))
    };
    let float = |what: &str, s: &str| -> Result<f64, PlanError> {
        s.parse().map_err(|_| PlanError::new(format!("{what} `{s}` is not a number")))
    };

    let fault = if fields[3].is_empty() {
        if !fields[4].is_empty() || !fields[5].is_empty() {
            return Err(PlanError::new("golden row must leave the fault window empty".into()));
        }
        None
    } else {
        let kind = parse_fault_kind(fields[3])
            .ok_or_else(|| PlanError::new(format!("unknown fault `{}`", fields[3])))?;
        let window = WindowSpec {
            scene: uint("fault scene", fields[4])?,
            scenes: uint("fault window length", fields[5])?,
        };
        Some(FaultSpec { kind, window })
    };

    // Event fields that don't apply to the outcome must be empty —
    // anything else is a hand-edited row that save() would re-emit
    // differently, breaking the byte-identity contract.
    let must_be_empty = |what: &str, s: &str| -> Result<(), PlanError> {
        if s.is_empty() {
            Ok(())
        } else {
            Err(PlanError::new(format!("{what} must be empty for this outcome, got `{s}`")))
        }
    };
    let outcome = match fields[6] {
        "safe" => {
            must_be_empty("event_scene", fields[7])?;
            must_be_empty("actor", fields[8])?;
            Outcome::Safe
        }
        "hazard" => {
            must_be_empty("actor", fields[8])?;
            Outcome::Hazard { scene: uint("event scene", fields[7])? }
        }
        "collision" => Outcome::Collision {
            scene: uint("event scene", fields[7])?,
            actor: uint("actor", fields[8])? as u32,
        },
        other => return Err(PlanError::new(format!("unknown outcome `{other}`"))),
    };

    Ok(CampaignRecord {
        job: uint("job", fields[0])?,
        scenario_id: uint("scenario", fields[1])? as u32,
        scenario_seed: uint("seed", fields[2])?,
        fault,
        outcome,
        injections: uint("injections", fields[9])?,
        scenes: uint("sim_scenes", fields[10])?,
        min_delta_lon: float("min_delta_lon", fields[11])?,
        min_delta_lat: float("min_delta_lat", fields[12])?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use drivefi_ads::Stage;

    fn sample_report() -> PlanReport {
        let jobs = vec![
            CampaignRecord {
                job: 0,
                scenario_id: 3,
                scenario_seed: 0xFEED,
                fault: Some(FaultSpec {
                    kind: FaultKind::Scalar {
                        signal: Signal::RawThrottle,
                        model: ScalarFaultModel::StuckMax,
                    },
                    window: WindowSpec::scene(40),
                }),
                outcome: Outcome::Safe,
                injections: 4,
                scenes: 300,
                min_delta_lon: 3.25,
                min_delta_lat: 1.0625,
            },
            CampaignRecord {
                job: 1,
                scenario_id: 4,
                scenario_seed: 7,
                fault: Some(FaultSpec {
                    kind: FaultKind::ModuleHang { stage: Stage::Planning },
                    window: WindowSpec::burst(10, 6),
                }),
                outcome: Outcome::Hazard { scene: 15 },
                injections: 24,
                scenes: 300,
                min_delta_lon: -0.5,
                min_delta_lat: 0.75,
            },
            CampaignRecord {
                job: 3,
                scenario_id: 5,
                scenario_seed: 9,
                fault: None,
                outcome: Outcome::Collision { scene: 80, actor: 2 },
                injections: 0,
                scenes: 81,
                min_delta_lon: -1.5,
                min_delta_lat: 0.0,
            },
        ];
        PlanReport::new("unit".into(), "random", 0xABCD_EF01_2345_6789, 5, jobs)
    }

    #[test]
    fn summary_tallies_aggregate_the_rows() {
        let report = sample_report();
        assert_eq!(report.safe(), 1);
        assert_eq!(report.hazards(), 1);
        assert_eq!(report.collisions(), 1);
        assert_eq!(report.effective_injections(), 2);
        assert!(!report.complete(), "job 2 and 4 missing");
        assert!((report.hazard_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn report_round_trips_through_files() {
        let dir = std::env::temp_dir().join(format!("drivefi-report-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let report = sample_report();
        report.save(&dir).unwrap();
        assert_eq!(PlanReport::load(&dir).unwrap(), report);
        // Equal reports serialize byte-identically.
        let bytes = std::fs::read(dir.join(JOBS_FILE)).unwrap();
        report.save(&dir).unwrap();
        assert_eq!(std::fs::read(dir.join(JOBS_FILE)).unwrap(), bytes);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tampered_summary_is_rejected() {
        let dir =
            std::env::temp_dir().join(format!("drivefi-report-tamper-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        sample_report().save(&dir).unwrap();
        let path = dir.join(REPORT_FILE);
        let summary = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, summary.replace("hazards = 1", "hazards = 2")).unwrap();
        let err = PlanReport::load(&dir).expect_err("tampered tally");
        assert!(err.to_string().contains("hazards"), "got: {err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn known_fault_filter_accepts_vocabulary_and_rejects_typos() {
        for valid in [
            "throttle",
            "plan.throttle",
            "plan.throttle:max",
            ":min",
            "max",
            "hang",
            "world.",
            "world.clear",
            "planning.hang",
            "offset(",
            "offset(-2",
            "bitflip(62)",
            "plan.throttle:offset(-2.5)",
            "(-2.5)",
            "62)",
            "lead",
        ] {
            assert!(known_fault_filter(valid), "`{valid}` should be a known fault substring");
        }
        for invalid in ["", "hazrd", "throtle", "plan.warp", "warp(2)", "world.melt", "::"] {
            assert!(!known_fault_filter(invalid), "`{invalid}` should be rejected");
        }
    }

    #[test]
    fn every_fault_name_in_csv_parses_back() {
        for kind in [
            FaultKind::Scalar {
                signal: Signal::LeadDistance,
                model: ScalarFaultModel::BitFlip(62),
            },
            FaultKind::Scalar { signal: Signal::FinalBrake, model: ScalarFaultModel::Offset(-2.5) },
            FaultKind::Scalar { signal: Signal::RawThrottle, model: ScalarFaultModel::Scale(1.25) },
            FaultKind::ClearWorldModel,
            FaultKind::FreezeWorldModel,
            FaultKind::ModuleHang { stage: Stage::Perception },
        ] {
            assert_eq!(parse_fault_kind(&kind.name()), Some(kind), "{}", kind.name());
        }
        assert_eq!(parse_fault_kind("nonsense"), None);
        assert_eq!(parse_fault_kind("raw_throttle:warp(2)"), None);
    }

    #[test]
    fn malformed_csv_rows_are_rejected() {
        for (row, needle) in [
            ("1,2,3", "13 fields"),
            ("x,2,3,,,,safe,,,0,1,0,0", "integer"),
            ("1,2,3,,9,,safe,,,0,1,0,0", "fault window"),
            ("1,2,3,,,,exploded,,,0,1,0,0", "unknown outcome"),
            ("1,2,3,plan.warp:max,4,1,safe,,,0,1,0,0", "unknown fault"),
            // Event fields that don't apply must stay empty.
            ("1,2,3,,,,safe,55,,0,1,0,0", "event_scene"),
            ("1,2,3,,,,safe,,9,0,1,0,0", "actor"),
            ("1,2,3,,,,hazard,55,9,0,1,0,0", "actor"),
        ] {
            let err = parse_csv_row(row).expect_err(row);
            assert!(err.to_string().contains(needle), "`{row}` → {err}");
        }
    }
}
