//! Human-readable campaign report rendering (`drivefi report --format`).
//!
//! [`PlanReport`] already round-trips as machine artifacts
//! (`report.toml` + `jobs.csv`); this module renders the same numbers —
//! plus whatever observability left behind — as a document:
//!
//! * outcome totals and rates;
//! * per-fault and per-scenario-family breakdown tables;
//! * the control-point verdict (`control.toml`) when one was recorded;
//! * stage timings and lifecycle counts replayed from `events.jsonl`
//!   when `DRIVEFI_OBS` was on during the run;
//! * the `DRIVEFI_PROFILE` ADS tick-stage table when this process has
//!   recorded profiler samples.
//!
//! Rendering is read-only over the store's artifacts: a report rendered
//! with observability off simply omits the lifecycle sections, and the
//! TOML/CSV artifacts are byte-identical either way.
//!
//! The renderer builds one format-neutral [`Document`] and emits it as
//! GitHub-flavoured Markdown or a dependency-free standalone HTML page,
//! so the two formats cannot drift apart structurally.

use crate::campaign::{AdaptiveProgress, ControlVerdict};
use crate::report::PlanReport;
use drivefi_obs::Event;
use drivefi_store::CampaignRecord;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A rendered table: a header row plus data rows, all pre-stringified.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Table {
    /// Column headers.
    pub header: Vec<String>,
    /// Data rows; each row has `header.len()` cells.
    pub rows: Vec<Vec<String>>,
}

/// One titled section: leading paragraphs, then an optional table.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Section {
    /// Section heading.
    pub title: String,
    /// Paragraphs before the table.
    pub paragraphs: Vec<String>,
    /// The section's table, if it has one.
    pub table: Option<Table>,
}

/// The format-neutral report document.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Document {
    /// Document title.
    pub title: String,
    /// Sections in render order.
    pub sections: Vec<Section>,
}

/// Everything the renderer can fold into the document beyond the
/// [`PlanReport`] itself. All of it is optional: a store run with
/// observability off renders a report with only the outcome tables.
#[derive(Debug, Clone, Default)]
pub struct RenderContext {
    /// `scenario_id → family name`, from the plan's suite.
    pub family_names: BTreeMap<u32, String>,
    /// The control-point verdict, when `control.toml` exists.
    pub control: Option<ControlVerdict>,
    /// The adaptive acquisition summary, when `rounds.toml` exists
    /// (adaptive campaigns only).
    pub adaptive: Option<AdaptiveProgress>,
    /// Replayed lifecycle events (`events.jsonl`), oldest first.
    pub events: Vec<Event>,
    /// ADS tick-profiler rows as `(phase, samples, total_ns)`, for when
    /// `DRIVEFI_PROFILE` recorded samples in this process.
    pub profile: Vec<(String, u64, u64)>,
}

fn count_outcomes(records: &[&CampaignRecord]) -> (u64, u64, u64) {
    use drivefi_sim::Outcome;
    let mut safe = 0;
    let mut hazards = 0;
    let mut collisions = 0;
    for record in records {
        match record.outcome {
            Outcome::Safe => safe += 1,
            Outcome::Hazard { .. } => hazards += 1,
            Outcome::Collision { .. } => collisions += 1,
        }
    }
    (safe, hazards, collisions)
}

fn outcome_row(label: String, records: &[&CampaignRecord]) -> Vec<String> {
    let (safe, hazards, collisions) = count_outcomes(records);
    let jobs = records.len() as u64;
    let rate = if jobs == 0 { 0.0 } else { (hazards + collisions) as f64 / jobs as f64 };
    vec![
        label,
        jobs.to_string(),
        safe.to_string(),
        hazards.to_string(),
        collisions.to_string(),
        format!("{rate:.4}"),
    ]
}

const BREAKDOWN_HEADER: [&str; 6] = ["", "jobs", "safe", "hazards", "collisions", "hazard rate"];

fn breakdown_header(key: &str) -> Vec<String> {
    let mut header: Vec<String> = BREAKDOWN_HEADER.iter().map(|s| s.to_string()).collect();
    header[0] = key.to_string();
    header
}

fn summary_section(report: &PlanReport) -> Section {
    Section {
        title: "Summary".into(),
        paragraphs: vec![
            format!(
                "Campaign kind `{}`, fingerprint `0x{:016x}`.",
                report.kind, report.fingerprint
            ),
            format!(
                "{} of {} jobs persisted{}.",
                report.jobs.len(),
                report.total_jobs,
                if report.complete() { " (complete)" } else { " — **interrupted campaign**" }
            ),
        ],
        table: Some(Table {
            header: vec![
                "jobs".into(),
                "safe".into(),
                "hazards".into(),
                "collisions".into(),
                "hazard rate".into(),
                "effective injections".into(),
            ],
            rows: vec![vec![
                report.jobs.len().to_string(),
                report.safe().to_string(),
                report.hazards().to_string(),
                report.collisions().to_string(),
                format!("{:.4}", report.hazard_rate()),
                report.effective_injections().to_string(),
            ]],
        }),
    }
}

fn fault_section(report: &PlanReport) -> Section {
    let mut by_fault: BTreeMap<String, Vec<&CampaignRecord>> = BTreeMap::new();
    for record in &report.jobs {
        by_fault.entry(record.fault_name()).or_default().push(record);
    }
    Section {
        title: "Outcomes by fault".into(),
        paragraphs: vec!["Golden (unfaulted) jobs appear as `none`.".into()],
        table: Some(Table {
            header: breakdown_header("fault"),
            rows: by_fault
                .iter()
                .map(|(name, records)| outcome_row(format!("`{name}`"), records))
                .collect(),
        }),
    }
}

fn family_section(report: &PlanReport, names: &BTreeMap<u32, String>) -> Section {
    let mut by_family: BTreeMap<String, Vec<&CampaignRecord>> = BTreeMap::new();
    for record in &report.jobs {
        let family = names
            .get(&record.scenario_id)
            .cloned()
            .unwrap_or_else(|| format!("scenario#{}", record.scenario_id));
        by_family.entry(family).or_default().push(record);
    }
    Section {
        title: "Outcomes by scenario family".into(),
        paragraphs: Vec::new(),
        table: Some(Table {
            header: breakdown_header("family"),
            rows: by_family
                .iter()
                .map(|(name, records)| outcome_row(format!("`{name}`"), records))
                .collect(),
        }),
    }
}

/// The adaptive campaign's acquisition story: the per-round table plus
/// the jobs-to-first-`F_crit` headline against the random and
/// exhaustive baselines.
fn adaptive_section(progress: &AdaptiveProgress) -> Section {
    let mut paragraphs = vec![format!(
        "Acquisition over {} candidate(s): {} round(s) run{}{}.",
        progress.candidates,
        progress.rounds.len(),
        if progress.converged { ", posterior converged" } else { "" },
        if progress.exhausted { ", candidate space exhausted" } else { "" },
    )];
    paragraphs.push(match progress.jobs_to_first_hazard {
        Some(jobs) => {
            let exhaustive = match progress.exhaustive_upper_bound {
                Some(bound) => format!("an exhaustive sweep would have paid at most {bound}"),
                None => "no exhaustive bound available".to_string(),
            };
            format!(
                "Jobs to first `F_crit`: **{jobs}** — uniform random sampling would expect \
                 ~{:.1}, {exhaustive}.",
                progress.random_estimate
            )
        }
        None => "No hazardous injection found yet.".to_string(),
    });
    Section {
        title: "Adaptive acquisition".into(),
        paragraphs,
        table: Some(Table {
            header: vec![
                "round".into(),
                "jobs".into(),
                "hazards".into(),
                "cumulative".into(),
                "top score".into(),
                "max shift".into(),
            ],
            rows: progress
                .rounds
                .iter()
                .map(|round| {
                    vec![
                        format!("`round-{:03}`", round.round),
                        round.jobs.to_string(),
                        round.hazards.to_string(),
                        round.cumulative_hazards.to_string(),
                        format!("{:.3}", round.top_score),
                        format!("{:.3}", round.max_shift),
                    ]
                })
                .collect(),
        }),
    }
}

fn control_section(verdict: &ControlVerdict) -> Section {
    Section {
        title: "Control point".into(),
        paragraphs: vec![format!(
            "Unfaulted control job on scenario {} (`{}`) finished `{}` — {}.",
            verdict.scenario_id,
            verdict.scenario_name,
            verdict.outcome,
            if verdict.survivable {
                "survivable, as asserted"
            } else {
                "**not survivable**: faulted outcomes on this workload are not attributable \
                 to injected faults"
            }
        )],
        table: None,
    }
}

/// Stage timing and lifecycle counts replayed from `events.jsonl`.
///
/// Per-stage active time sums every `stage_start → stage_finish`
/// interval, closing still-open stages at a `campaign_pause` — so a
/// run → kill → resume → finish campaign reports the stage's *worked*
/// time, not the wall-clock span including the gap.
fn lifecycle_section(events: &[Event]) -> Option<Section> {
    if events.is_empty() {
        return None;
    }
    #[derive(Default)]
    struct StageClock {
        active_ms: u64,
        starts: u64,
        finished: bool,
    }
    let mut stages: BTreeMap<String, StageClock> = BTreeMap::new();
    let mut order: Vec<String> = Vec::new();
    let mut open: Option<(String, u64)> = None;
    let mut resumes = 0u64;
    let mut checkpoints = 0u64;
    let mut takeovers = 0u64;
    let mut compactions = 0u64;
    let mut sealed = false;
    let close_open =
        |open: &mut Option<(String, u64)>, stages: &mut BTreeMap<String, StageClock>, ts: u64| {
            if let Some((stage, began)) = open.take() {
                stages.entry(stage).or_default().active_ms += ts.saturating_sub(began);
            }
        };
    for event in events {
        match event.kind.as_str() {
            "stage_start" => {
                let stage = event.str_field("stage").unwrap_or("?").to_string();
                close_open(&mut open, &mut stages, event.ts_ms);
                if !order.contains(&stage) {
                    order.push(stage.clone());
                }
                stages.entry(stage.clone()).or_default().starts += 1;
                open = Some((stage, event.ts_ms));
            }
            "stage_finish" => {
                let stage = event.str_field("stage").unwrap_or("?").to_string();
                close_open(&mut open, &mut stages, event.ts_ms);
                stages.entry(stage).or_default().finished = true;
            }
            "campaign_pause" | "campaign_finish" => {
                close_open(&mut open, &mut stages, event.ts_ms);
            }
            "resume" => resumes += 1,
            "checkpoint" => checkpoints += 1,
            "lease_takeover" => takeovers += 1,
            "compact" => compactions += 1,
            "seal" => sealed = true,
            _ => {}
        }
    }
    let mut counts = vec![format!("{} event(s) replayed", events.len())];
    if resumes > 0 {
        counts.push(format!("{resumes} resume(s)"));
    }
    if checkpoints > 0 {
        counts.push(format!("{checkpoints} checkpoint(s)"));
    }
    if takeovers > 0 {
        counts.push(format!("{takeovers} lease takeover(s)"));
    }
    if compactions > 0 {
        counts.push(format!("{compactions} compaction(s)"));
    }
    if sealed {
        counts.push("sealed".into());
    }
    Some(Section {
        title: "Lifecycle".into(),
        paragraphs: vec![format!("From `events.jsonl`: {}.", counts.join(", "))],
        table: if order.is_empty() {
            None
        } else {
            Some(Table {
                header: vec!["stage".into(), "starts".into(), "active".into(), "finished".into()],
                rows: order
                    .iter()
                    .map(|stage| {
                        let clock = &stages[stage];
                        vec![
                            format!("`{stage}`"),
                            clock.starts.to_string(),
                            format!("{:.1}s", clock.active_ms as f64 / 1000.0),
                            if clock.finished { "yes" } else { "no" }.into(),
                        ]
                    })
                    .collect(),
            })
        },
    })
}

fn profile_section(profile: &[(String, u64, u64)]) -> Option<Section> {
    if profile.iter().all(|(_, samples, _)| *samples == 0) {
        return None;
    }
    Some(Section {
        title: "ADS tick profile".into(),
        paragraphs: vec![
            "Per-stage pipeline timings recorded by `DRIVEFI_PROFILE=1` in this process.".into(),
        ],
        table: Some(Table {
            header: vec!["phase".into(), "samples".into(), "total".into(), "mean".into()],
            rows: profile
                .iter()
                .filter(|(_, samples, _)| *samples > 0)
                .map(|(phase, samples, total_ns)| {
                    vec![
                        format!("`{phase}`"),
                        samples.to_string(),
                        format!("{:.2}ms", *total_ns as f64 / 1e6),
                        format!("{}ns", total_ns.checked_div(*samples).unwrap_or(0)),
                    ]
                })
                .collect(),
        }),
    })
}

/// Builds the format-neutral document for `report` under `context`.
pub fn report_document(report: &PlanReport, context: &RenderContext) -> Document {
    let mut sections = vec![
        summary_section(report),
        fault_section(report),
        family_section(report, &context.family_names),
    ];
    if let Some(progress) = &context.adaptive {
        sections.push(adaptive_section(progress));
    }
    if let Some(verdict) = &context.control {
        sections.push(control_section(verdict));
    }
    if let Some(section) = lifecycle_section(&context.events) {
        sections.push(section);
    }
    if let Some(section) = profile_section(&context.profile) {
        sections.push(section);
    }
    Document { title: format!("Campaign report: {}", report.name), sections }
}

fn markdown_table(table: &Table, out: &mut String) {
    let row = |cells: &[String], out: &mut String| {
        out.push('|');
        for cell in cells {
            out.push(' ');
            out.push_str(cell);
            out.push_str(" |");
        }
        out.push('\n');
    };
    row(&table.header, out);
    out.push('|');
    for _ in &table.header {
        out.push_str(" --- |");
    }
    out.push('\n');
    for cells in &table.rows {
        row(cells, out);
    }
}

/// Emits `document` as GitHub-flavoured Markdown.
pub fn to_markdown(document: &Document) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# {}\n", document.title);
    for section in &document.sections {
        let _ = writeln!(out, "## {}\n", section.title);
        for paragraph in &section.paragraphs {
            let _ = writeln!(out, "{paragraph}\n");
        }
        if let Some(table) = &section.table {
            markdown_table(table, &mut out);
            out.push('\n');
        }
    }
    out
}

fn html_escape(text: &str, out: &mut String) {
    for ch in text.chars() {
        match ch {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            _ => out.push(ch),
        }
    }
}

/// Markdown-ish inline text to HTML: `` `code` `` and `**strong**`
/// spans (the only inline markup the renderer itself emits).
fn html_inline(text: &str, out: &mut String) {
    let mut rest = text;
    loop {
        let tick = rest.find('`');
        let star = rest.find("**");
        match (tick, star) {
            (Some(t), s) if s.is_none_or(|s| t < s) => {
                if let Some(end) = rest[t + 1..].find('`') {
                    html_escape(&rest[..t], out);
                    out.push_str("<code>");
                    html_escape(&rest[t + 1..t + 1 + end], out);
                    out.push_str("</code>");
                    rest = &rest[t + end + 2..];
                } else {
                    break;
                }
            }
            (_, Some(s)) => {
                if let Some(end) = rest[s + 2..].find("**") {
                    html_escape(&rest[..s], out);
                    out.push_str("<strong>");
                    html_escape(&rest[s + 2..s + 2 + end], out);
                    out.push_str("</strong>");
                    rest = &rest[s + end + 4..];
                } else {
                    break;
                }
            }
            _ => break,
        }
    }
    html_escape(rest, out);
}

/// Emits `document` as a self-contained HTML page (no external assets).
pub fn to_html(document: &Document) -> String {
    let mut out =
        String::from("<!DOCTYPE html>\n<html>\n<head>\n<meta charset=\"utf-8\">\n<title>");
    html_escape(&document.title, &mut out);
    out.push_str(
        "</title>\n<style>\nbody { font-family: sans-serif; margin: 2em auto; max-width: 60em; }\n\
         table { border-collapse: collapse; margin: 1em 0; }\n\
         th, td { border: 1px solid #999; padding: 0.3em 0.7em; text-align: left; }\n\
         th { background: #eee; }\ncode { background: #f4f4f4; padding: 0 0.2em; }\n\
         </style>\n</head>\n<body>\n<h1>",
    );
    html_escape(&document.title, &mut out);
    out.push_str("</h1>\n");
    for section in &document.sections {
        out.push_str("<h2>");
        html_escape(&section.title, &mut out);
        out.push_str("</h2>\n");
        for paragraph in &section.paragraphs {
            out.push_str("<p>");
            html_inline(paragraph, &mut out);
            out.push_str("</p>\n");
        }
        if let Some(table) = &section.table {
            out.push_str("<table>\n<tr>");
            for cell in &table.header {
                out.push_str("<th>");
                html_inline(cell, &mut out);
                out.push_str("</th>");
            }
            out.push_str("</tr>\n");
            for cells in &table.rows {
                out.push_str("<tr>");
                for cell in cells {
                    out.push_str("<td>");
                    html_inline(cell, &mut out);
                    out.push_str("</td>");
                }
                out.push_str("</tr>\n");
            }
            out.push_str("</table>\n");
        }
    }
    out.push_str("</body>\n</html>\n");
    out
}

/// The current process's ADS tick-profiler rows in [`RenderContext`]
/// shape, empty when `DRIVEFI_PROFILE` is off or nothing was recorded.
pub fn ads_profile_rows() -> Vec<(String, u64, u64)> {
    drivefi_ads::profiler::report()
        .into_iter()
        .filter(|row| row.samples > 0)
        .map(|row| (row.phase.name().to_string(), row.samples, row.total_ns))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use drivefi_fault::{FaultKind, FaultSpec};
    use drivefi_sim::Outcome;

    fn record(
        job: u64,
        scenario_id: u32,
        fault: Option<FaultSpec>,
        outcome: Outcome,
    ) -> CampaignRecord {
        CampaignRecord {
            job,
            scenario_id,
            scenario_seed: 7,
            fault,
            outcome,
            injections: u64::from(fault.is_some()),
            scenes: 300,
            min_delta_lon: 1.5,
            min_delta_lat: 0.4,
        }
    }

    fn sample_report() -> PlanReport {
        let fault = FaultSpec {
            kind: FaultKind::ModuleHang { stage: drivefi_ads::Stage::Planning },
            window: drivefi_fault::WindowSpec::burst(10, 4),
        };
        PlanReport::new(
            "render-test".into(),
            "random",
            0xabcd,
            3,
            vec![
                record(0, 0, None, Outcome::Safe),
                record(1, 0, Some(fault), Outcome::Hazard { scene: 40 }),
                record(2, 1, Some(fault), Outcome::Safe),
            ],
        )
    }

    #[test]
    fn markdown_report_has_breakdown_tables() {
        let report = sample_report();
        let mut context = RenderContext::default();
        context.family_names.insert(0, "cut_in".into());
        let md = to_markdown(&report_document(&report, &context));
        assert!(md.contains("# Campaign report: render-test"));
        assert!(md.contains("## Outcomes by fault"));
        assert!(md.contains("`planning.hang`"));
        assert!(md.contains("`cut_in`"));
        // Scenario 1 has no suite name — labelled by id.
        assert!(md.contains("`scenario#1`"));
        // Obs-off: no lifecycle or profile sections.
        assert!(!md.contains("## Lifecycle"));
        assert!(!md.contains("## ADS tick profile"));
    }

    #[test]
    fn adaptive_section_renders_rounds_and_baselines() {
        let context = RenderContext {
            adaptive: Some(AdaptiveProgress {
                rounds: vec![crate::campaign::RoundSummary {
                    round: 0,
                    jobs: 4,
                    hazards: 2,
                    cumulative_hazards: 2,
                    top_score: 0.8125,
                    max_shift: 0.25,
                }],
                candidates: 96,
                converged: true,
                exhausted: false,
                jobs_to_first_hazard: Some(2),
                exhaustive_upper_bound: Some(17),
                random_estimate: 32.333,
            }),
            ..RenderContext::default()
        };
        let md = to_markdown(&report_document(&sample_report(), &context));
        assert!(md.contains("## Adaptive acquisition"), "{md}");
        assert!(md.contains("`round-000`"), "{md}");
        assert!(md.contains("posterior converged"), "{md}");
        assert!(md.contains("Jobs to first `F_crit`: **2**"), "{md}");
        assert!(md.contains("~32.3"), "{md}");
        assert!(md.contains("at most 17"), "{md}");
        // Without progress the section is absent, not empty.
        let bare = to_markdown(&report_document(&sample_report(), &RenderContext::default()));
        assert!(!bare.contains("Adaptive acquisition"));
    }

    #[test]
    fn html_report_escapes_and_structures() {
        let report = sample_report();
        let html = to_html(&report_document(&report, &RenderContext::default()));
        assert!(html.starts_with("<!DOCTYPE html>"));
        assert!(html.contains("<h2>Outcomes by fault</h2>"));
        assert!(html.contains("<code>planning.hang</code>"));
        assert!(!html.contains("**"));
    }

    #[test]
    fn lifecycle_sums_interrupted_stage_time() {
        let make = |seq: u64, ts_ms: u64, kind: &str, fields: &[(&str, &str)]| Event {
            seq,
            ts_ms,
            mono_ms: ts_ms,
            kind: kind.into(),
            fields: fields
                .iter()
                .map(|(k, v)| (k.to_string(), drivefi_obs::Field::Str(v.to_string())))
                .collect(),
        };
        let events = vec![
            make(1, 1000, "campaign_start", &[]),
            make(2, 1000, "stage_start", &[("stage", "main")]),
            make(3, 4000, "campaign_pause", &[]),
            // 60 s gap while the campaign sat interrupted…
            make(4, 64_000, "resume", &[]),
            make(5, 64_000, "stage_start", &[("stage", "main")]),
            make(6, 66_000, "stage_finish", &[("stage", "main")]),
            make(7, 66_000, "campaign_finish", &[]),
        ];
        let section = lifecycle_section(&events).unwrap();
        let table = section.table.unwrap();
        // …which must not count toward active time: 3 s + 2 s, not 65 s.
        assert_eq!(
            table.rows,
            vec![vec!["`main`", "2", "5.0s", "yes"]
                .into_iter()
                .map(String::from)
                .collect::<Vec<_>>()]
        );
        assert!(section.paragraphs[0].contains("1 resume(s)"));
    }
}
