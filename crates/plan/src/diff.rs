//! Campaign-to-campaign comparison (`drivefi diff <store> <store>`).
//!
//! Two stores over the same scenario × fault space rarely need a full
//! re-read of both CSVs to answer the question that matters in CI:
//! *did the candidate run get worse?* This module aggregates each
//! store's records into per-`(scenario, fault)` cells, compares the
//! cells, and classifies the result:
//!
//! * **regressed** cells — the worst outcome got more severe
//!   (safe → hazard, hazard → collision), including hazards *appearing*
//!   in cells the baseline had as safe or never ran;
//! * **improved** cells — severity dropped, including hazards that
//!   disappeared outright;
//! * **jobs-to-find** — how many jobs each campaign needed before its
//!   first hazardous record, the paper's headline efficiency metric
//!   (DriveFI's Bayesian miner finds its critical faults orders of
//!   magnitude earlier than random injection).
//!
//! [`StoreDiff::has_regression`] drives the CLI exit code: `0` clean,
//! nonzero on regression, so a pipeline can gate merges on
//! `drivefi diff baseline/ candidate/`.

use crate::PlanError;
use drivefi_sim::Outcome;
use drivefi_store::{read_store, CampaignRecord};
use std::collections::BTreeMap;
use std::path::Path;

/// Outcome severity for cell comparison: collisions are worse than
/// hazards are worse than safe.
fn severity(outcome: &Outcome) -> u8 {
    match outcome {
        Outcome::Safe => 0,
        Outcome::Hazard { .. } => 1,
        Outcome::Collision { .. } => 2,
    }
}

fn severity_name(severity: u8) -> &'static str {
    match severity {
        0 => "safe",
        1 => "hazard",
        _ => "collision",
    }
}

/// One `(scenario, fault)` cell's aggregate in a single store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Cell {
    /// Worst outcome severity across the cell's jobs.
    worst: u8,
    /// Number of jobs aggregated into the cell.
    jobs: u64,
}

/// A per-cell severity change between the two stores.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellDelta {
    /// Scenario id (shared across both stores — same plan space).
    pub scenario_id: u32,
    /// Fault-kind name (`none` for golden jobs).
    pub fault: String,
    /// Baseline worst outcome (`"absent"` when the cell is new).
    pub before: String,
    /// Candidate worst outcome (`"absent"` when the cell vanished).
    pub after: String,
    /// Whether this delta is a regression (severity increased or a
    /// hazardous cell appeared).
    pub regressed: bool,
}

impl CellDelta {
    /// `scenario 3 / plan.throttle:max: safe -> collision`-style line,
    /// with the family name substituted when `names` has one.
    pub fn describe(&self, names: &BTreeMap<u32, String>) -> String {
        let scenario = names
            .get(&self.scenario_id)
            .map(|name| format!("{name} (scenario {})", self.scenario_id))
            .unwrap_or_else(|| format!("scenario {}", self.scenario_id));
        format!("{scenario} / {}: {} -> {}", self.fault, self.before, self.after)
    }
}

/// The comparison between a baseline store and a candidate store.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StoreDiff {
    /// Cells in the baseline store.
    pub baseline_cells: usize,
    /// Cells in the candidate store.
    pub candidate_cells: usize,
    /// Cells whose severity increased (incl. newly-appearing hazards).
    pub regressed: Vec<CellDelta>,
    /// Cells whose severity decreased (incl. disappearing hazards).
    pub improved: Vec<CellDelta>,
    /// Jobs the baseline ran before its first hazardous record (`None`
    /// when it never found one).
    pub baseline_jobs_to_hazard: Option<u64>,
    /// Jobs the candidate ran before its first hazardous record.
    pub candidate_jobs_to_hazard: Option<u64>,
}

impl StoreDiff {
    /// Whether the candidate regressed relative to the baseline — the
    /// CI gate. Jobs-to-find is reported but never gates: it is a
    /// sampling-efficiency metric, not a safety outcome.
    pub fn has_regression(&self) -> bool {
        !self.regressed.is_empty()
    }
}

fn cells(records: &[CampaignRecord]) -> BTreeMap<(u32, String), Cell> {
    let mut map: BTreeMap<(u32, String), Cell> = BTreeMap::new();
    for record in records {
        let key = (record.scenario_id, record.fault_name());
        let entry = map.entry(key).or_insert(Cell { worst: 0, jobs: 0 });
        entry.worst = entry.worst.max(severity(&record.outcome));
        entry.jobs += 1;
    }
    map
}

/// Jobs executed before the first hazardous record, in job order.
fn jobs_to_first_hazard(records: &[CampaignRecord]) -> Option<u64> {
    let mut ordered: Vec<(u64, u8)> =
        records.iter().map(|r| (r.job, severity(&r.outcome))).collect();
    ordered.sort_unstable_by_key(|(job, _)| *job);
    ordered.iter().position(|(_, severity)| *severity > 0).map(|position| position as u64 + 1)
}

/// Compares two record sets cell-by-cell. Exposed separately from
/// [`diff_stores`] so tests (and future in-memory callers) can diff
/// without a disk store.
pub fn diff_records(baseline: &[CampaignRecord], candidate: &[CampaignRecord]) -> StoreDiff {
    let before = cells(baseline);
    let after = cells(candidate);
    let mut diff = StoreDiff {
        baseline_cells: before.len(),
        candidate_cells: after.len(),
        baseline_jobs_to_hazard: jobs_to_first_hazard(baseline),
        candidate_jobs_to_hazard: jobs_to_first_hazard(candidate),
        ..StoreDiff::default()
    };
    for (key, cell) in &after {
        let (scenario_id, fault) = key;
        match before.get(key) {
            Some(base) if cell.worst > base.worst => diff.regressed.push(CellDelta {
                scenario_id: *scenario_id,
                fault: fault.clone(),
                before: severity_name(base.worst).into(),
                after: severity_name(cell.worst).into(),
                regressed: true,
            }),
            Some(base) if cell.worst < base.worst => diff.improved.push(CellDelta {
                scenario_id: *scenario_id,
                fault: fault.clone(),
                before: severity_name(base.worst).into(),
                after: severity_name(cell.worst).into(),
                regressed: false,
            }),
            Some(_) => {}
            // A cell the baseline never ran: hazardous is a regression
            // (a new way to get hurt), safe is unremarkable coverage.
            None if cell.worst > 0 => diff.regressed.push(CellDelta {
                scenario_id: *scenario_id,
                fault: fault.clone(),
                before: "absent".into(),
                after: severity_name(cell.worst).into(),
                regressed: true,
            }),
            None => {}
        }
    }
    for (key, base) in &before {
        if after.contains_key(key) || base.worst == 0 {
            continue;
        }
        // A hazardous baseline cell the candidate never ran at all.
        diff.improved.push(CellDelta {
            scenario_id: key.0,
            fault: key.1.clone(),
            before: severity_name(base.worst).into(),
            after: "absent".into(),
            regressed: false,
        });
    }
    diff
}

/// Reads and diffs two store directories (baseline first).
///
/// # Errors
///
/// Propagates store read failures as [`PlanError`].
pub fn diff_stores(
    baseline: impl AsRef<Path>,
    candidate: impl AsRef<Path>,
) -> Result<StoreDiff, PlanError> {
    let read = |dir: &Path| {
        read_store(dir)
            .map(|(_, records)| records)
            .map_err(|e| PlanError::new(format!("{}: {e}", dir.display())))
    };
    let baseline = read(baseline.as_ref())?;
    let candidate = read(candidate.as_ref())?;
    Ok(diff_records(&baseline, &candidate))
}

#[cfg(test)]
mod tests {
    use super::*;
    use drivefi_fault::{FaultKind, FaultSpec, WindowSpec};

    fn record(
        job: u64,
        scenario_id: u32,
        fault: Option<FaultSpec>,
        outcome: Outcome,
    ) -> CampaignRecord {
        CampaignRecord {
            job,
            scenario_id,
            scenario_seed: 3,
            fault,
            outcome,
            injections: u64::from(fault.is_some()),
            scenes: 100,
            min_delta_lon: 2.0,
            min_delta_lat: 0.5,
        }
    }

    fn hang(scene: u64) -> FaultSpec {
        FaultSpec {
            kind: FaultKind::ModuleHang { stage: drivefi_ads::Stage::Planning },
            window: WindowSpec::burst(scene, 3),
        }
    }

    #[test]
    fn identical_stores_diff_clean() {
        let records = vec![
            record(0, 0, None, Outcome::Safe),
            record(1, 0, Some(hang(5)), Outcome::Hazard { scene: 20 }),
        ];
        let diff = diff_records(&records, &records);
        assert!(!diff.has_regression());
        assert!(diff.regressed.is_empty() && diff.improved.is_empty());
        assert_eq!(diff.baseline_jobs_to_hazard, Some(2));
        assert_eq!(diff.candidate_jobs_to_hazard, Some(2));
    }

    #[test]
    fn appearing_hazard_regresses_and_names_the_cell() {
        let baseline = vec![record(0, 2, Some(hang(5)), Outcome::Safe)];
        let candidate =
            vec![record(0, 2, Some(hang(5)), Outcome::Collision { scene: 44, actor: 1 })];
        let diff = diff_records(&baseline, &candidate);
        assert!(diff.has_regression());
        assert_eq!(diff.regressed.len(), 1);
        let delta = &diff.regressed[0];
        assert_eq!(delta.fault, "planning.hang");
        assert_eq!((delta.before.as_str(), delta.after.as_str()), ("safe", "collision"));
        let mut names = BTreeMap::new();
        names.insert(2, "cut_in".to_string());
        assert_eq!(
            delta.describe(&names),
            "cut_in (scenario 2) / planning.hang: safe -> collision"
        );
    }

    #[test]
    fn disappearing_hazard_improves_without_gating() {
        let baseline = vec![record(0, 1, Some(hang(2)), Outcome::Hazard { scene: 9 })];
        let candidate = vec![record(0, 1, Some(hang(2)), Outcome::Safe)];
        let diff = diff_records(&baseline, &candidate);
        assert!(!diff.has_regression());
        assert_eq!(diff.improved.len(), 1);
        assert_eq!(diff.improved[0].after, "safe");

        // Candidate dropped the cell entirely: still an improvement.
        let diff = diff_records(&baseline, &[]);
        assert!(!diff.has_regression());
        assert_eq!(diff.improved[0].after, "absent");
    }

    #[test]
    fn new_safe_coverage_is_not_a_regression() {
        let baseline = vec![record(0, 0, None, Outcome::Safe)];
        let candidate =
            vec![record(0, 0, None, Outcome::Safe), record(1, 7, Some(hang(1)), Outcome::Safe)];
        let diff = diff_records(&baseline, &candidate);
        assert!(!diff.has_regression());
        assert_eq!(diff.candidate_cells, 2);
    }
}
