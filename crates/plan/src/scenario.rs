//! TOML load/save for [`ScenarioSpec`] — scenario families as files.
//!
//! The DSL of `drivefi-world::spec` makes scenario families data; this
//! module makes them *files*, closing the ROADMAP item "a serialized
//! spec loader so families can ship without recompiling". A spec
//! document looks like:
//!
//! ```toml
//! name = "tailgater"
//! family_key = 10
//! duration = 40.0
//!
//! [road]
//! lanes = 3
//! lane_width = 3.7
//! length = 4000.0
//!
//! [ego]
//! v0 = [24.0, 33.5]
//! set_speed = ["ego.v", "min(ego.v + 4.0, 33.500000001)"]
//!
//! [[program]]
//! stmt = "draw"
//! var = "gap_ahead"
//! lo = "55.0"
//! hi = "85.0"
//!
//! [[program]]
//! stmt = "spawn"
//! kind = "car"
//! x = "gap_ahead"
//! y = "0.0"
//! v = "lead_v"
//! heading = "0.0"
//! maneuver = { kind = "idm", desired = "lead_v" }
//! ```
//!
//! Statements nest (repeat bodies, if branches) as inline arrays of
//! tables; expressions are strings in the [`crate::expr`] grammar.
//! Parsing is strict — unknown keys, inverted ranges, and unknown
//! statement/maneuver/actor kinds are errors, so a typo in a shipped
//! plan fails loudly instead of sampling garbage.

use crate::expr::{emit_expr, parse_expr};
use crate::toml::{emit_document, parse_document, Map, Toml};
use crate::PlanError;
use drivefi_world::spec::{
    intern, ActorTemplate, EgoSpec, Expr, KeyframeProgram, LaneChangeTemplate, ManeuverTemplate,
    RoadSpec, ScenarioSpec, Stmt,
};
use drivefi_world::ActorKind;

// ---------------------------------------------------------------------------
// Strict table access helpers (shared with the campaign-plan parser)
// ---------------------------------------------------------------------------

pub(crate) fn expect_keys(table: &Map, context: &str, allowed: &[&str]) -> Result<(), PlanError> {
    for key in table.keys() {
        if !allowed.contains(&key.as_str()) {
            return Err(PlanError::new(format!(
                "unknown key `{key}` in {context} (allowed: {})",
                allowed.join(", ")
            )));
        }
    }
    Ok(())
}

pub(crate) fn get<'a>(table: &'a Map, context: &str, key: &str) -> Result<&'a Toml, PlanError> {
    table.get(key).ok_or_else(|| PlanError::new(format!("missing key `{key}` in {context}")))
}

pub(crate) fn as_str<'a>(value: &'a Toml, what: &str) -> Result<&'a str, PlanError> {
    match value {
        Toml::Str(s) => Ok(s),
        other => Err(PlanError::new(format!("{what} must be a string, got {}", other.type_name()))),
    }
}

pub(crate) fn as_bool(value: &Toml, what: &str) -> Result<bool, PlanError> {
    match value {
        Toml::Bool(b) => Ok(*b),
        other => {
            Err(PlanError::new(format!("{what} must be a boolean, got {}", other.type_name())))
        }
    }
}

pub(crate) fn as_int(value: &Toml, what: &str) -> Result<i64, PlanError> {
    match value {
        Toml::Int(i) => Ok(*i),
        other => {
            Err(PlanError::new(format!("{what} must be an integer, got {}", other.type_name())))
        }
    }
}

pub(crate) fn as_uint(value: &Toml, what: &str) -> Result<u64, PlanError> {
    let i = as_int(value, what)?;
    u64::try_from(i).map_err(|_| PlanError::new(format!("{what} must be non-negative, got {i}")))
}

pub(crate) fn as_float(value: &Toml, what: &str) -> Result<f64, PlanError> {
    match value {
        Toml::Float(f) => Ok(*f),
        Toml::Int(i) => Ok(*i as f64),
        other => Err(PlanError::new(format!("{what} must be a number, got {}", other.type_name()))),
    }
}

pub(crate) fn as_array<'a>(value: &'a Toml, what: &str) -> Result<&'a [Toml], PlanError> {
    value.as_array().ok_or_else(|| PlanError::new(format!("{what} must be an array")))
}

pub(crate) fn as_table<'a>(value: &'a Toml, what: &str) -> Result<&'a Map, PlanError> {
    value
        .as_table()
        .ok_or_else(|| PlanError::new(format!("{what} must be a table, got {}", value.type_name())))
}

fn expr_of(table: &Map, context: &str, key: &str) -> Result<Expr, PlanError> {
    parse_expr(as_str(get(table, context, key)?, &format!("`{key}` of {context}"))?)
}

fn opt_expr(table: &Map, context: &str, key: &str) -> Result<Option<Expr>, PlanError> {
    match table.get(key) {
        None => Ok(None),
        Some(v) => Ok(Some(parse_expr(as_str(v, &format!("`{key}` of {context}"))?)?)),
    }
}

fn expr_value(e: &Expr) -> Toml {
    Toml::Str(emit_expr(e))
}

// ---------------------------------------------------------------------------
// Emission
// ---------------------------------------------------------------------------

fn actor_kind_name(kind: ActorKind) -> &'static str {
    match kind {
        ActorKind::Car => "car",
        ActorKind::Truck => "truck",
        ActorKind::Pedestrian => "pedestrian",
        ActorKind::StaticObstacle => "static_obstacle",
    }
}

fn parse_actor_kind(name: &str) -> Result<ActorKind, PlanError> {
    match name {
        "car" => Ok(ActorKind::Car),
        "truck" => Ok(ActorKind::Truck),
        "pedestrian" => Ok(ActorKind::Pedestrian),
        "static_obstacle" => Ok(ActorKind::StaticObstacle),
        other => Err(PlanError::new(format!("unknown actor kind `{other}`"))),
    }
}

fn lane_change_value(lc: &LaneChangeTemplate) -> Toml {
    Toml::Table(Map::from([
        ("start_time".into(), expr_value(&lc.start_time)),
        ("duration".into(), expr_value(&lc.duration)),
        ("from_y".into(), expr_value(&lc.from_y)),
        ("to_y".into(), expr_value(&lc.to_y)),
    ]))
}

fn parse_lane_change(value: &Toml) -> Result<LaneChangeTemplate, PlanError> {
    let t = as_table(value, "lane_change")?;
    expect_keys(t, "lane_change", &["start_time", "duration", "from_y", "to_y"])?;
    Ok(LaneChangeTemplate {
        start_time: expr_of(t, "lane_change", "start_time")?,
        duration: expr_of(t, "lane_change", "duration")?,
        from_y: expr_of(t, "lane_change", "from_y")?,
        to_y: expr_of(t, "lane_change", "to_y")?,
    })
}

fn maneuver_value(m: &ManeuverTemplate) -> Toml {
    let mut t = Map::new();
    match m {
        ManeuverTemplate::Static => {
            t.insert("kind".into(), Toml::Str("static".into()));
        }
        ManeuverTemplate::Idm { desired, headway, lane_change } => {
            t.insert("kind".into(), Toml::Str("idm".into()));
            t.insert("desired".into(), expr_value(desired));
            if let Some(h) = headway {
                t.insert("headway".into(), expr_value(h));
            }
            if let Some(lc) = lane_change {
                t.insert("lane_change".into(), lane_change_value(lc));
            }
        }
        ManeuverTemplate::Scripted { keyframes, lane_change } => {
            t.insert("kind".into(), Toml::Str("scripted".into()));
            match keyframes {
                KeyframeProgram::List(frames) => {
                    t.insert(
                        "keyframes".into(),
                        Toml::Array(
                            frames
                                .iter()
                                .map(|(time, accel)| {
                                    Toml::Array(vec![expr_value(time), expr_value(accel)])
                                })
                                .collect(),
                        ),
                    );
                }
                KeyframeProgram::Wave { start, period, brake, recover, brake_frac, coast_frac } => {
                    t.insert(
                        "wave".into(),
                        Toml::Table(Map::from([
                            ("start".into(), expr_value(start)),
                            ("period".into(), expr_value(period)),
                            ("brake".into(), expr_value(brake)),
                            ("recover".into(), expr_value(recover)),
                            ("brake_frac".into(), Toml::Float(*brake_frac)),
                            ("coast_frac".into(), Toml::Float(*coast_frac)),
                        ])),
                    );
                }
            }
            if let Some(lc) = lane_change {
                t.insert("lane_change".into(), lane_change_value(lc));
            }
        }
        ManeuverTemplate::Pedestrian { trigger_time, walk_speed } => {
            t.insert("kind".into(), Toml::Str("pedestrian".into()));
            t.insert("trigger_time".into(), expr_value(trigger_time));
            t.insert("walk_speed".into(), expr_value(walk_speed));
        }
    }
    Toml::Table(t)
}

fn parse_maneuver(value: &Toml) -> Result<ManeuverTemplate, PlanError> {
    let t = as_table(value, "maneuver")?;
    let kind = as_str(get(t, "maneuver", "kind")?, "maneuver kind")?;
    match kind {
        "static" => {
            expect_keys(t, "static maneuver", &["kind"])?;
            Ok(ManeuverTemplate::Static)
        }
        "idm" => {
            expect_keys(t, "idm maneuver", &["kind", "desired", "headway", "lane_change"])?;
            Ok(ManeuverTemplate::Idm {
                desired: expr_of(t, "idm maneuver", "desired")?,
                headway: opt_expr(t, "idm maneuver", "headway")?,
                lane_change: t.get("lane_change").map(parse_lane_change).transpose()?,
            })
        }
        "scripted" => {
            expect_keys(t, "scripted maneuver", &["kind", "keyframes", "wave", "lane_change"])?;
            let keyframes = match (t.get("keyframes"), t.get("wave")) {
                (Some(frames), None) => KeyframeProgram::List(
                    as_array(frames, "keyframes")?
                        .iter()
                        .map(|pair| {
                            let pair = as_array(pair, "keyframe")?;
                            if pair.len() != 2 {
                                return Err(PlanError::new(
                                    "a keyframe is a [time, accel] pair".into(),
                                ));
                            }
                            Ok((
                                parse_expr(as_str(&pair[0], "keyframe time")?)?,
                                parse_expr(as_str(&pair[1], "keyframe accel")?)?,
                            ))
                        })
                        .collect::<Result<_, _>>()?,
                ),
                (None, Some(wave)) => {
                    let w = as_table(wave, "wave")?;
                    expect_keys(
                        w,
                        "wave",
                        &["start", "period", "brake", "recover", "brake_frac", "coast_frac"],
                    )?;
                    KeyframeProgram::Wave {
                        start: expr_of(w, "wave", "start")?,
                        period: expr_of(w, "wave", "period")?,
                        brake: expr_of(w, "wave", "brake")?,
                        recover: expr_of(w, "wave", "recover")?,
                        brake_frac: as_float(get(w, "wave", "brake_frac")?, "brake_frac")?,
                        coast_frac: as_float(get(w, "wave", "coast_frac")?, "coast_frac")?,
                    }
                }
                _ => {
                    return Err(PlanError::new(
                        "a scripted maneuver needs exactly one of `keyframes` or `wave`".into(),
                    ))
                }
            };
            Ok(ManeuverTemplate::Scripted {
                keyframes,
                lane_change: t.get("lane_change").map(parse_lane_change).transpose()?,
            })
        }
        "pedestrian" => {
            expect_keys(t, "pedestrian maneuver", &["kind", "trigger_time", "walk_speed"])?;
            Ok(ManeuverTemplate::Pedestrian {
                trigger_time: expr_of(t, "pedestrian maneuver", "trigger_time")?,
                walk_speed: expr_of(t, "pedestrian maneuver", "walk_speed")?,
            })
        }
        other => Err(PlanError::new(format!("unknown maneuver kind `{other}`"))),
    }
}

fn stmt_table(stmt: &Stmt) -> Map {
    let mut t = Map::new();
    match stmt {
        Stmt::Draw { var, lo, hi } => {
            t.insert("stmt".into(), Toml::Str("draw".into()));
            t.insert("var".into(), Toml::Str((*var).into()));
            t.insert("lo".into(), expr_value(lo));
            t.insert("hi".into(), expr_value(hi));
        }
        Stmt::DrawInt { var, lo, hi } => {
            t.insert("stmt".into(), Toml::Str("draw_int".into()));
            t.insert("var".into(), Toml::Str((*var).into()));
            t.insert("lo".into(), Toml::Int(i64::from(*lo)));
            t.insert("hi".into(), Toml::Int(i64::from(*hi)));
        }
        Stmt::Let { var, expr } => {
            t.insert("stmt".into(), Toml::Str("let".into()));
            t.insert("var".into(), Toml::Str((*var).into()));
            t.insert("expr".into(), expr_value(expr));
        }
        Stmt::SetEgoSpeed(expr) => {
            t.insert("stmt".into(), Toml::Str("set_ego_speed".into()));
            t.insert("expr".into(), expr_value(expr));
        }
        Stmt::SetEgoSetSpeed(expr) => {
            t.insert("stmt".into(), Toml::Str("set_ego_set_speed".into()));
            t.insert("expr".into(), expr_value(expr));
        }
        Stmt::Spawn(actor) => {
            t.insert("stmt".into(), Toml::Str("spawn".into()));
            t.insert("kind".into(), Toml::Str(actor_kind_name(actor.kind).into()));
            t.insert("x".into(), expr_value(&actor.x));
            t.insert("y".into(), expr_value(&actor.y));
            t.insert("v".into(), expr_value(&actor.v));
            t.insert("heading".into(), expr_value(&actor.heading));
            t.insert("maneuver".into(), maneuver_value(&actor.maneuver));
        }
        Stmt::Repeat { count, body } => {
            t.insert("stmt".into(), Toml::Str("repeat".into()));
            t.insert("count".into(), expr_value(count));
            t.insert(
                "body".into(),
                Toml::Array(body.iter().map(|s| Toml::Table(stmt_table(s))).collect()),
            );
        }
        Stmt::If { cond, then, otherwise } => {
            t.insert("stmt".into(), Toml::Str("if".into()));
            t.insert("cond".into(), expr_value(cond));
            t.insert(
                "then".into(),
                Toml::Array(then.iter().map(|s| Toml::Table(stmt_table(s))).collect()),
            );
            t.insert(
                "else".into(),
                Toml::Array(otherwise.iter().map(|s| Toml::Table(stmt_table(s))).collect()),
            );
        }
    }
    t
}

fn parse_stmt(value: &Toml) -> Result<Stmt, PlanError> {
    let t = as_table(value, "statement")?;
    let kind = as_str(get(t, "statement", "stmt")?, "`stmt`")?;
    match kind {
        "draw" => {
            expect_keys(t, "draw statement", &["stmt", "var", "lo", "hi"])?;
            Ok(Stmt::Draw {
                var: intern(as_str(get(t, "draw", "var")?, "`var`")?),
                lo: expr_of(t, "draw", "lo")?,
                hi: expr_of(t, "draw", "hi")?,
            })
        }
        "draw_int" => {
            expect_keys(t, "draw_int statement", &["stmt", "var", "lo", "hi"])?;
            let lo = as_uint(get(t, "draw_int", "lo")?, "`lo`")?;
            let hi = as_uint(get(t, "draw_int", "hi")?, "`hi`")?;
            let lo = u32::try_from(lo)
                .map_err(|_| PlanError::new(format!("draw_int lo {lo} out of range")))?;
            let hi = u32::try_from(hi)
                .map_err(|_| PlanError::new(format!("draw_int hi {hi} out of range")))?;
            if lo >= hi {
                return Err(PlanError::new(format!("draw_int range [{lo}, {hi}) is inverted")));
            }
            Ok(Stmt::DrawInt { var: intern(as_str(get(t, "draw_int", "var")?, "`var`")?), lo, hi })
        }
        "let" => {
            expect_keys(t, "let statement", &["stmt", "var", "expr"])?;
            Ok(Stmt::Let {
                var: intern(as_str(get(t, "let", "var")?, "`var`")?),
                expr: expr_of(t, "let", "expr")?,
            })
        }
        "set_ego_speed" => {
            expect_keys(t, "set_ego_speed statement", &["stmt", "expr"])?;
            Ok(Stmt::SetEgoSpeed(expr_of(t, "set_ego_speed", "expr")?))
        }
        "set_ego_set_speed" => {
            expect_keys(t, "set_ego_set_speed statement", &["stmt", "expr"])?;
            Ok(Stmt::SetEgoSetSpeed(expr_of(t, "set_ego_set_speed", "expr")?))
        }
        "spawn" => {
            expect_keys(
                t,
                "spawn statement",
                &["stmt", "kind", "x", "y", "v", "heading", "maneuver"],
            )?;
            Ok(Stmt::spawn(ActorTemplate {
                kind: parse_actor_kind(as_str(get(t, "spawn", "kind")?, "actor kind")?)?,
                x: expr_of(t, "spawn", "x")?,
                y: expr_of(t, "spawn", "y")?,
                v: expr_of(t, "spawn", "v")?,
                heading: expr_of(t, "spawn", "heading")?,
                maneuver: parse_maneuver(get(t, "spawn", "maneuver")?)?,
            }))
        }
        "repeat" => {
            expect_keys(t, "repeat statement", &["stmt", "count", "body"])?;
            Ok(Stmt::Repeat {
                count: expr_of(t, "repeat", "count")?,
                body: as_array(get(t, "repeat", "body")?, "repeat body")?
                    .iter()
                    .map(parse_stmt)
                    .collect::<Result<_, _>>()?,
            })
        }
        "if" => {
            expect_keys(t, "if statement", &["stmt", "cond", "then", "else"])?;
            Ok(Stmt::If {
                cond: expr_of(t, "if", "cond")?,
                then: as_array(get(t, "if", "then")?, "then branch")?
                    .iter()
                    .map(parse_stmt)
                    .collect::<Result<_, _>>()?,
                otherwise: as_array(get(t, "if", "else")?, "else branch")?
                    .iter()
                    .map(parse_stmt)
                    .collect::<Result<_, _>>()?,
            })
        }
        other => Err(PlanError::new(format!("unknown statement kind `{other}`"))),
    }
}

/// Converts a spec to its TOML document tree.
pub fn scenario_spec_to_toml(spec: &ScenarioSpec) -> Map {
    Map::from([
        ("name".into(), Toml::Str(spec.name.into())),
        (
            "family_key".into(),
            Toml::Int(i64::try_from(spec.family_key).expect("family keys fit i64")),
        ),
        ("duration".into(), Toml::Float(spec.duration)),
        (
            "road".into(),
            Toml::Table(Map::from([
                ("lanes".into(), Toml::Int(i64::from(spec.road.lanes))),
                ("lane_width".into(), Toml::Float(spec.road.lane_width)),
                ("length".into(), Toml::Float(spec.road.length)),
            ])),
        ),
        (
            "ego".into(),
            Toml::Table(Map::from([
                (
                    "v0".into(),
                    Toml::Array(vec![Toml::Float(spec.ego.v0_lo), Toml::Float(spec.ego.v0_hi)]),
                ),
                (
                    "set_speed".into(),
                    Toml::Array(vec![expr_value(&spec.ego.set_lo), expr_value(&spec.ego.set_hi)]),
                ),
            ])),
        ),
        (
            "program".into(),
            Toml::Array(spec.program.iter().map(|s| Toml::Table(stmt_table(s))).collect()),
        ),
    ])
}

/// Renders a spec as a TOML document string.
pub fn emit_scenario_spec(spec: &ScenarioSpec) -> String {
    emit_document(&scenario_spec_to_toml(spec))
}

/// Builds a spec from a parsed TOML tree, strictly (unknown keys,
/// inverted ranges, and bad kinds are errors).
pub fn scenario_spec_from_toml(doc: &Map) -> Result<ScenarioSpec, PlanError> {
    expect_keys(
        doc,
        "scenario spec",
        &["name", "family_key", "duration", "road", "ego", "program"],
    )?;
    let name = intern(as_str(get(doc, "scenario spec", "name")?, "`name`")?);
    let family_key = as_uint(get(doc, "scenario spec", "family_key")?, "`family_key`")?;
    let duration = as_float(get(doc, "scenario spec", "duration")?, "`duration`")?;
    // NaN-rejecting positivity checks: a parsed "nan" must not pass.
    let positive = |x: f64| x.is_finite() && x > 0.0;
    if !positive(duration) {
        return Err(PlanError::new(format!("duration must be positive, got {duration}")));
    }

    let road = match doc.get("road") {
        None => RoadSpec::default(),
        Some(value) => {
            let t = as_table(value, "[road]")?;
            expect_keys(t, "[road]", &["lanes", "lane_width", "length"])?;
            let lanes = as_uint(get(t, "[road]", "lanes")?, "`lanes`")?;
            let lanes = u8::try_from(lanes)
                .ok()
                .filter(|l| *l > 0)
                .ok_or_else(|| PlanError::new(format!("lanes must be in 1..=255, got {lanes}")))?;
            let lane_width = as_float(get(t, "[road]", "lane_width")?, "`lane_width`")?;
            let length = as_float(get(t, "[road]", "length")?, "`length`")?;
            if !positive(lane_width) || !positive(length) {
                return Err(PlanError::new("road dimensions must be positive".into()));
            }
            RoadSpec { lanes, lane_width, length }
        }
    };

    let ego = match doc.get("ego") {
        None => EgoSpec::default(),
        Some(value) => {
            let t = as_table(value, "[ego]")?;
            expect_keys(t, "[ego]", &["v0", "set_speed"])?;
            let v0 = as_array(get(t, "[ego]", "v0")?, "`v0`")?;
            if v0.len() != 2 {
                return Err(PlanError::new("`v0` must be a [lo, hi] pair".into()));
            }
            let v0_lo = as_float(&v0[0], "v0 lo")?;
            let v0_hi = as_float(&v0[1], "v0 hi")?;
            if v0_lo.partial_cmp(&v0_hi) != Some(std::cmp::Ordering::Less) {
                return Err(PlanError::new(format!("ego v0 range [{v0_lo}, {v0_hi}) is inverted")));
            }
            let set = as_array(get(t, "[ego]", "set_speed")?, "`set_speed`")?;
            if set.len() != 2 {
                return Err(PlanError::new(
                    "`set_speed` must be a [lo, hi] pair of expressions".into(),
                ));
            }
            EgoSpec {
                v0_lo,
                v0_hi,
                set_lo: parse_expr(as_str(&set[0], "set_speed lo")?)?,
                set_hi: parse_expr(as_str(&set[1], "set_speed hi")?)?,
            }
        }
    };

    let program = match doc.get("program") {
        None => Vec::new(),
        Some(value) => {
            as_array(value, "program")?.iter().map(parse_stmt).collect::<Result<_, _>>()?
        }
    };

    Ok(ScenarioSpec { name, family_key, duration, road, ego, program })
}

/// Parses a spec from TOML text.
///
/// # Errors
///
/// Returns a [`PlanError`] on syntax errors or schema violations.
pub fn parse_scenario_spec(src: &str) -> Result<ScenarioSpec, PlanError> {
    scenario_spec_from_toml(&parse_document(src)?)
}

/// Loads a spec from a `.toml` file.
///
/// # Errors
///
/// Returns a [`PlanError`] on I/O or parse failure.
pub fn load_scenario_spec(path: impl AsRef<std::path::Path>) -> Result<ScenarioSpec, PlanError> {
    let path = path.as_ref();
    let src = std::fs::read_to_string(path)
        .map_err(|e| PlanError::new(format!("reading {}: {e}", path.display())))?;
    parse_scenario_spec(&src).map_err(|e| PlanError::new(format!("{}: {e}", path.display())))
}

/// Saves a spec as a `.toml` file.
///
/// # Errors
///
/// Returns a [`PlanError`] on I/O failure.
pub fn save_scenario_spec(
    path: impl AsRef<std::path::Path>,
    spec: &ScenarioSpec,
) -> Result<(), PlanError> {
    let path = path.as_ref();
    std::fs::write(path, emit_scenario_spec(spec))
        .map_err(|e| PlanError::new(format!("writing {}: {e}", path.display())))
}

#[cfg(test)]
mod tests {
    use super::*;
    use drivefi_world::FamilyRegistry;

    #[test]
    fn every_builtin_family_round_trips() {
        for spec in FamilyRegistry::builtin().specs() {
            let text = emit_scenario_spec(spec);
            let parsed =
                parse_scenario_spec(&text).unwrap_or_else(|e| panic!("{}: {e}\n{text}", spec.name));
            assert_eq!(&parsed, spec, "{} drifted through TOML", spec.name);
        }
    }

    #[test]
    fn round_tripped_specs_sample_identically() {
        let registry = FamilyRegistry::builtin();
        for name in ["cut_in", "tailgater", "shockwave_pedestrian"] {
            let spec = registry.get(name).unwrap();
            let reparsed = parse_scenario_spec(&emit_scenario_spec(spec)).unwrap();
            for seed in [0, 7, 12345] {
                let a = spec.sample(3, seed);
                let b = reparsed.sample(3, seed);
                assert_eq!(a.ego_start, b.ego_start, "{name}");
                assert_eq!(a.actors.len(), b.actors.len(), "{name}");
                for (x, y) in a.actors.iter().zip(&b.actors) {
                    assert_eq!(x.state, y.state, "{name}");
                    assert_eq!(x.behavior, y.behavior, "{name}");
                }
            }
        }
    }

    #[test]
    fn schema_violations_are_rejected() {
        let base = emit_scenario_spec(FamilyRegistry::builtin().get("lead_cruise").unwrap());
        // Baseline parses.
        assert!(parse_scenario_spec(&base).is_ok());
        for (mutation, needle) in [
            (base.replace("name = ", "nom = "), "unknown key"),
            (base.replace("lanes = 3", "lanes = 0"), "lanes"),
            (base.replace("v0 = [24.0, 33.5]", "v0 = [33.5, 24.0]"), "inverted"),
            (base.replace("stmt = \"draw\"", "stmt = \"sample\""), "unknown statement"),
            (base.replace("duration = 40.0", "duration = -1.0"), "positive"),
        ] {
            let err = parse_scenario_spec(&mutation)
                .expect_err(&format!("mutation should fail: {needle}"));
            assert!(err.to_string().contains(needle), "{err}");
        }
    }
}
