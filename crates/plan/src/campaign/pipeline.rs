//! The staged-campaign engine: a [`Stage`] is one resumable store-backed
//! batch of jobs; a [`Pipeline`] runs stages in sequence, owning the
//! concerns every staged campaign shares — sub-store resolution under
//! the `[output]` dir, cross-stage budget accounting, checkpointed
//! resume (only jobs without a persisted record run), and the
//! `drivefi-obs` campaign/stage events with their transition-only
//! finish semantics.
//!
//! [`run_persisted`] is the store-backed execution path for every plan
//! kind: single-stage campaigns (random, golden) run one `"main"` stage
//! whose store *is* the output dir; `kind = "mine"` and store-backed
//! exhaustive run golden → fit → sweep through [`run_two_stage`]; and
//! `kind = "adaptive"` layers its acquisition loop on the same engine
//! in [`super::adaptive`].

use super::{
    campaign_fingerprint, plan_engine, CampaignKind, CampaignPlan, OutputSpec, PlanResult,
    GOLDEN_SUBDIR, SWEEP_SUBDIR, VALIDATE_SUBDIR,
};
use crate::report::PlanReport;
use crate::PlanError;
use drivefi_core::{
    candidate_record_metas, candidate_specs, golden_record_metas, pick_record_metas,
    random_fault_picks, BayesianMiner, MinerConfig, RandomCampaignConfig,
};
use drivefi_fault::FaultSpec;
use drivefi_obs::{EventLog, Field};
use drivefi_sim::{CampaignJob, RunningStats, SimConfig, Tee};
use drivefi_store::{
    open_store, open_store_with_traces, read_manifest, read_store, CampaignRecord, RecordMeta,
    StoreSink,
};
use drivefi_world::{ScenarioConfig, ScenarioSuite};
use std::path::{Path, PathBuf};
use std::sync::Arc;

fn store_err(e: drivefi_store::StoreError) -> PlanError {
    PlanError::new(format!("[output] store: {e}"))
}

/// One resumable batch of jobs backed by its own sub-store: the name it
/// reports under, where its records persist, how its jobs simulate, and
/// what those jobs are. Job ids are `0..metas.len()` and index `metas`
/// — the store's merge key, stable across interruptions.
pub(super) struct Stage {
    /// Stage name in obs events (for pipeline stages, also the
    /// sub-store's directory name under the output root).
    pub name: String,
    /// The stage's store directory.
    pub dir: PathBuf,
    /// Persist full traces alongside outcomes (golden stages).
    pub traces: bool,
    /// Simulator configuration for this stage's jobs.
    pub sim: SimConfig,
    /// Per-job record metadata, in job-id order.
    pub metas: Vec<RecordMeta>,
    /// The jobs themselves, ids `0..metas.len()`.
    pub jobs: Vec<CampaignJob>,
    /// Identity the stage's store is locked to (the plan fingerprint).
    pub fingerprint: u64,
    /// Publish the `StageJobsRemaining` gauge on stage start
    /// (single-stage campaigns, which *are* their one stage).
    pub gauge_on_start: bool,
}

impl Stage {
    /// Total job count of the stage.
    pub fn total(&self) -> u64 {
        self.metas.len() as u64
    }

    /// Whether the stage's store already holds every job under the
    /// right identity — true ⇒ running the stage is a pure replay
    /// (reads records, simulates nothing, spends no budget).
    #[allow(dead_code)] // Exercised by the adaptive loop's tests.
    pub fn is_complete(&self) -> bool {
        matches!(
            read_manifest(&self.dir),
            Ok(meta)
                if meta.complete
                    && meta.fingerprint == self.fingerprint
                    && meta.total_jobs == self.total()
        )
    }
}

/// What running a stage left behind: resume accounting plus the stage
/// store's full record set (sorted by job id).
pub(super) struct StageRun {
    /// Records already persisted when the stage opened.
    pub done_before: u64,
    /// The stage's total job count.
    pub total: u64,
    /// Whether the stage's store now holds every job.
    pub complete: bool,
    /// Every persisted record of the stage, sorted by job id.
    pub records: Vec<CampaignRecord>,
}

impl StageRun {
    /// True when the stage started from an empty store (no resume).
    pub fn fresh(&self) -> bool {
        self.done_before == 0
    }
}

/// The driver a staged campaign runs on. Owns the shared cross-stage
/// state: the plan identity (fingerprint), the remaining job budget
/// (debited as stages run), and the campaign-level event log.
pub(super) struct Pipeline<'a> {
    plan: &'a CampaignPlan,
    output: &'a OutputSpec,
    root: PathBuf,
    /// The plan fingerprint every stage store is locked to.
    pub fingerprint: u64,
    workers: usize,
    budget: Option<u64>,
    events: EventLog,
}

impl<'a> Pipeline<'a> {
    /// Opens the pipeline on a plan's output root and emits
    /// `campaign_start`. Single-stage campaigns announce their total
    /// job count up front (`announce_total`); multi-stage pipelines
    /// don't know theirs until the fit runs, and announce per stage.
    pub fn begin(
        plan: &'a CampaignPlan,
        output: &'a OutputSpec,
        workers: usize,
        budget: Option<u64>,
        announce_total: Option<u64>,
    ) -> Pipeline<'a> {
        let root = PathBuf::from(&output.dir);
        let fingerprint = campaign_fingerprint(plan);
        let mut events = open_campaign_log(&root);
        let mut fields = vec![
            ("name", Field::Str(plan.name.clone())),
            ("campaign_kind", Field::Str(plan.kind.name().into())),
            ("fingerprint", Field::Str(format!("{fingerprint:016x}"))),
        ];
        if let Some(total) = announce_total {
            fields.push(("total_jobs", Field::Int(total as i64)));
        }
        events.emit("campaign_start", &fields);
        Pipeline { plan, output, root, fingerprint, workers, budget, events }
    }

    /// The pipeline's output root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// A stage whose store lives directly under the output root at the
    /// stage's own name.
    pub fn stage_dir(&self, name: &str) -> PathBuf {
        self.root.join(name)
    }

    /// Runs a stage with the remaining budget: open-or-recover its
    /// store (refusing a fingerprint mismatch), emit `stage_start` for
    /// pending work, run only the jobs without a persisted record, then
    /// debit the budget and hand back the merged records. `running`
    /// optionally tees the streamed results into in-memory tallies for
    /// a caller's end-to-end cross-check.
    pub fn run_stage(
        &mut self,
        stage: Stage,
        running: Option<&mut RunningStats>,
    ) -> Result<StageRun, PlanError> {
        let total = stage.total();
        let open = if stage.traces { open_store_with_traces } else { open_store };
        let (mut writer, state) = open(
            &stage.dir,
            stage.fingerprint,
            total,
            self.output.shards,
            self.output.checkpoint_every,
        )
        .map_err(store_err)?;
        let done_before = state.records();
        if done_before < total {
            self.events.emit(
                "stage_start",
                &[
                    ("stage", Field::Str(stage.name.clone())),
                    ("pending", Field::Int((total - done_before) as i64)),
                ],
            );
            if stage.gauge_on_start {
                drivefi_obs::metrics::gauge_set(
                    drivefi_obs::metrics::Gauge::StageJobsRemaining,
                    (total - done_before) as i64,
                );
            }
        }
        let engine = plan_engine(self.plan, stage.sim, self.workers);
        let mut sink = StoreSink::new(&mut writer, &stage.metas);
        let ran = match running {
            Some(running) => engine.run_skipping_budget(
                stage.jobs,
                |id| state.is_done(id),
                self.budget,
                &mut Tee(&mut sink, running),
            ),
            None => engine.run_skipping_budget(
                stage.jobs,
                |id| state.is_done(id),
                self.budget,
                &mut sink,
            ),
        };
        sink.finish().map_err(store_err)?;
        let meta = writer.finish().map_err(store_err)?;
        self.budget = self.budget.map(|b| b.saturating_sub(ran));
        let (_, records) = read_store(&stage.dir).map_err(store_err)?;
        Ok(StageRun { done_before, total, complete: meta.complete, records })
    }

    /// Emits a stage's `stage_finish` exactly on the invocation that
    /// *transitioned* it to complete (`done_before < total` on entry,
    /// complete on exit) — so interrupt/resume cycles never duplicate a
    /// stage's finish event.
    pub fn finish_stage(&mut self, name: &str, run: &StageRun) {
        drivefi_obs::metrics::gauge_set(
            drivefi_obs::metrics::Gauge::StageJobsRemaining,
            if run.complete { 0 } else { (run.total - run.done_before) as i64 },
        );
        if run.complete && run.done_before < run.total {
            self.events.emit(
                "stage_finish",
                &[("stage", Field::Str(name.into())), ("records", Field::Int(run.total as i64))],
            );
        }
    }

    /// Emits the end-of-invocation campaign event keyed to the final
    /// stage: `campaign_finish` on the invocation that completed it,
    /// `campaign_pause` when it ended with work left, nothing for a
    /// re-run of an already-complete campaign.
    pub fn end(&mut self, run: &StageRun) {
        self.end_with(run.done_before < run.total, run.complete, run.total);
    }

    /// [`Self::end`] with the transition told apart explicitly — for
    /// pipelines (like the adaptive loop) whose "did this invocation do
    /// new work" spans several stages rather than one.
    pub fn end_with(&mut self, ran_new_work: bool, complete: bool, total: u64) {
        if complete && ran_new_work {
            self.events.emit("campaign_finish", &[("complete", Field::Bool(true))]);
        } else if !complete {
            self.events.emit("campaign_pause", &[("total", Field::Int(total as i64))]);
        }
    }
}

/// Opens the campaign-level event log at `dir`, creating the directory
/// first so a fresh campaign's `campaign_start` isn't dropped for lack
/// of one. Inert (no directory touched) while observability is off.
fn open_campaign_log(dir: &Path) -> EventLog {
    if drivefi_obs::enabled() {
        std::fs::create_dir_all(dir).ok();
        EventLog::open(dir)
    } else {
        EventLog::disabled()
    }
}

/// The golden-collection stage every pipeline kind starts with: all
/// suite scenarios fault-free, whole-scenario surveys, traces persisted
/// — so the sub-store at `dir/golden/` is a miner training set on disk.
pub(super) fn golden_stage(
    dir: PathBuf,
    fingerprint: u64,
    suite: &ScenarioSuite,
    shared: &[Arc<ScenarioConfig>],
    sim: SimConfig,
) -> Stage {
    Stage {
        name: GOLDEN_SUBDIR.into(),
        dir,
        traces: true,
        sim: SimConfig { record_trace: true, stop_on_collision: false, ..sim },
        metas: golden_record_metas(suite),
        jobs: shared
            .iter()
            .enumerate()
            .map(|(id, scenario)| CampaignJob {
                id: id as u64,
                scenario: Arc::clone(scenario),
                faults: Vec::new(),
            })
            .collect(),
        fingerprint,
        gauge_on_start: false,
    }
}

/// An injection-sweep stage over an explicit candidate list: job `i`
/// injects `candidates[i]` into its scenario. The candidate order is
/// the caller's contract — it must be a pure function of persisted
/// state so job index `i` means the same fault on every resume.
pub(super) fn sweep_stage(
    name: String,
    dir: PathBuf,
    fingerprint: u64,
    suite: &ScenarioSuite,
    shared: &[Arc<ScenarioConfig>],
    candidates: &[(u32, FaultSpec)],
    sim: SimConfig,
) -> Stage {
    Stage {
        name,
        dir,
        traces: false,
        sim,
        metas: candidate_record_metas(suite, candidates),
        jobs: candidates
            .iter()
            .enumerate()
            .map(|(id, &(scenario_id, spec))| CampaignJob {
                id: id as u64,
                scenario: Arc::clone(&shared[scenario_id as usize]),
                faults: vec![spec.compile()],
            })
            .collect(),
        fingerprint,
        gauge_on_start: false,
    }
}

/// Runs a pipeline's golden stage and keeps its sub-store report fresh:
/// the golden sub-store always carries its own progress report — kept
/// current on every pass, so a report written by an earlier mid-golden
/// interruption never goes stale once the stage completes. (The root
/// report only ever describes the terminal stage.) Returns the stage
/// run plus the saved golden report for the mid-golden bail-out path.
pub(super) fn run_golden_stage(
    pipeline: &mut Pipeline,
    suite: &ScenarioSuite,
    shared: &[Arc<ScenarioConfig>],
    sim: SimConfig,
) -> Result<(StageRun, PlanReport), PlanError> {
    let golden_dir = pipeline.stage_dir(GOLDEN_SUBDIR);
    let stage = golden_stage(golden_dir.clone(), pipeline.fingerprint, suite, shared, sim);
    let mut run = pipeline.run_stage(stage, None)?;
    let report = PlanReport::new(
        pipeline.plan.name.clone(),
        pipeline.plan.kind.name(),
        pipeline.fingerprint,
        run.total,
        std::mem::take(&mut run.records),
    );
    report.save(&golden_dir)?;
    pipeline.finish_stage(GOLDEN_SUBDIR, &run);
    Ok((run, report))
}

/// The store-backed execution path: open-or-recover the store, run only
/// the jobs without a persisted record, and rebuild the report from the
/// merged shards — which is what makes an interrupted-and-resumed
/// campaign's report byte-identical to an uninterrupted run's.
pub(super) fn run_persisted(
    plan: &CampaignPlan,
    output: &OutputSpec,
    sim: SimConfig,
    suite: &ScenarioSuite,
    workers: usize,
    budget: Option<u64>,
) -> Result<PlanResult, PlanError> {
    // The staged pipeline kinds run through their own drivers.
    match plan.kind {
        CampaignKind::Mine { .. } | CampaignKind::Exhaustive { .. } => {
            return run_two_stage(plan, output, sim, suite, workers, budget)
        }
        CampaignKind::Adaptive { .. } => {
            return super::adaptive::run_adaptive(plan, output, sim, suite, workers, budget)
        }
        CampaignKind::Random { .. } | CampaignKind::Golden => {}
    }

    let shared = suite.shared();
    let (metas, jobs, sim, traces): (Vec<RecordMeta>, Vec<CampaignJob>, SimConfig, bool) =
        match plan.kind {
            CampaignKind::Random { runs } => {
                let config = RandomCampaignConfig { runs, seed: plan.seed, workers };
                let picks = random_fault_picks(suite, &plan.faults, &config);
                let jobs = picks
                    .iter()
                    .enumerate()
                    .map(|(id, &(index, spec))| CampaignJob {
                        id: id as u64,
                        scenario: Arc::clone(&shared[index]),
                        faults: vec![spec.compile()],
                    })
                    .collect();
                (pick_record_metas(suite, &picks), jobs, sim, false)
            }
            CampaignKind::Golden => {
                let jobs = shared
                    .iter()
                    .enumerate()
                    .map(|(id, scenario)| CampaignJob {
                        id: id as u64,
                        scenario: Arc::clone(scenario),
                        faults: Vec::new(),
                    })
                    .collect();
                // Golden runs survey the whole scenario, as trace
                // collection does — and persist the traces themselves,
                // so a golden store is a miner training set on disk.
                (
                    golden_record_metas(suite),
                    jobs,
                    SimConfig { record_trace: true, stop_on_collision: false, ..sim },
                    true,
                )
            }
            _ => unreachable!("pipeline kinds dispatched above"),
        };

    let total = metas.len() as u64;
    let mut pipeline = Pipeline::begin(plan, output, workers, budget, Some(total));
    let stage = Stage {
        name: "main".into(),
        dir: pipeline.root().to_path_buf(),
        traces,
        sim,
        metas,
        jobs,
        fingerprint: pipeline.fingerprint,
        gauge_on_start: true,
    };
    // Tee the stream: records go to disk, tallies stay in memory for the
    // end-to-end cross-check below.
    let mut running = RunningStats::new();
    let mut run = pipeline.run_stage(stage, Some(&mut running))?;
    let report = PlanReport::new(
        plan.name.clone(),
        plan.kind.name(),
        pipeline.fingerprint,
        total,
        std::mem::take(&mut run.records),
    );
    // A fresh uninterrupted pass saw every record twice: streamed off the
    // engine and re-read from disk. The tallies must agree — a cheap
    // whole-path guard on the encode → CRC frame → decode round trip.
    if run.fresh() && budget.is_none() {
        let streamed =
            (running.runs, running.safe, running.collisions, running.effective_injections);
        let stored = (
            report.jobs.len(),
            report.safe() as usize,
            report.collisions() as usize,
            report.effective_injections() as usize,
        );
        if streamed != stored {
            return Err(PlanError::new(format!(
                "store round-trip mismatch: streamed (runs, safe, collisions, effective) = \
                 {streamed:?} but the persisted records aggregate to {stored:?}"
            )));
        }
    }
    report.save(pipeline.root())?;
    pipeline.finish_stage("main", &run);
    pipeline.end(&run);
    Ok(PlanResult::Persisted(report))
}

/// The store-backed two-stage pipelines: `kind = "mine"` (the paper's
/// golden → fit → mine → validate loop) and store-backed exhaustive
/// sweeps (golden → fit → inject every candidate). Stage layout under
/// the `[output]` dir:
///
/// ```text
/// dir/golden/     trace-logging store of the golden runs
/// dir/validate/   outcome store of the mined-set validation   (mine)
/// dir/sweep/      outcome store of the full candidate sweep   (exhaustive)
/// dir/report.toml + jobs.csv — final report over the sweep stage
/// ```
///
/// Every stage resumes from disk: pending golden jobs are the only
/// golden simulations run, the 3-TBN re-fits **from the persisted
/// traces** (CPU-only — no re-simulation), the candidate enumeration is
/// a pure function of those traces (so sweep job indices are stable
/// across interruptions), and the sweep store skips its persisted jobs.
/// A `budget` caps the *simulated* jobs of this invocation across both
/// stages; an invocation that exhausts it mid-golden leaves a progress
/// report inside `dir/golden/` and returns it.
fn run_two_stage(
    plan: &CampaignPlan,
    output: &OutputSpec,
    sim: SimConfig,
    suite: &ScenarioSuite,
    workers: usize,
    budget: Option<u64>,
) -> Result<PlanResult, PlanError> {
    let shared = suite.shared();
    let mut pipeline = Pipeline::begin(plan, output, workers, budget, None);

    // Stage 1: golden collection, traces persisted alongside outcomes.
    let (golden_run, golden_report) = run_golden_stage(&mut pipeline, suite, &shared, sim)?;
    if !golden_run.complete {
        // Budget exhausted mid-golden: hand back how far the stage got.
        pipeline.end(&golden_run);
        return Ok(PlanResult::Persisted(golden_report));
    }

    // Stage 2: fit from the persisted traces (resumable by construction:
    // deterministic CPU work over what stage 1 left on disk), then
    // enumerate the sweep. The candidate order is a pure function of the
    // traces, so job index i means the same fault on every resume.
    let (scene_stride, subdir) = match plan.kind {
        CampaignKind::Mine { scene_stride } => (scene_stride, VALIDATE_SUBDIR),
        CampaignKind::Exhaustive { scene_stride } => (scene_stride, SWEEP_SUBDIR),
        _ => unreachable!("run_two_stage only handles two-stage pipeline kinds"),
    };
    let config = MinerConfig { scene_stride, ..MinerConfig::default() };
    let (miner, traces) = BayesianMiner::fit_from_store(pipeline.stage_dir(GOLDEN_SUBDIR), config)
        .map_err(store_err)?;
    let candidates: Vec<(u32, FaultSpec)> = match plan.kind {
        CampaignKind::Mine { .. } => {
            miner.mine(&traces).iter().map(|c| (c.scenario_id, c.fault_spec())).collect()
        }
        _ => candidate_specs(&miner, &traces),
    };

    // Stage 3: the injection sweep, store-backed and resumable.
    let stage = sweep_stage(
        subdir.into(),
        pipeline.stage_dir(subdir),
        pipeline.fingerprint,
        suite,
        &shared,
        &candidates,
        sim,
    );
    let total = stage.total();
    let mut run = pipeline.run_stage(stage, None)?;

    // The final report aggregates the sweep store, at the pipeline root.
    let report = PlanReport::new(
        plan.name.clone(),
        plan.kind.name(),
        pipeline.fingerprint,
        total,
        std::mem::take(&mut run.records),
    );
    report.save(pipeline.root())?;
    pipeline.finish_stage(subdir, &run);
    pipeline.end(&run);
    Ok(PlanResult::Persisted(report))
}
