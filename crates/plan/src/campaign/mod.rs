//! Declarative campaign plans: run any campaign from a `.toml` file.
//!
//! A [`CampaignPlan`] is the whole experiment as data — which campaign
//! to run, over which scenarios, sweeping which [`FaultSpace`], with
//! which budget/seed/workers and which sink:
//!
//! ```toml
//! name = "random-baseline"
//!
//! [campaign]
//! kind = "random"     # or "exhaustive"
//! runs = 60
//! seed = 1
//! sink = "stats"      # or "outcomes" (per-run outcome list)
//!
//! [scenarios]
//! source = "paper"    # "paper" | "extended" | "families" | "inline" | "files"
//! count = 8
//! seed = 42
//!
//! [faults]
//! signals = "all"     # or a list of signal names
//! models = ["min", "max"]
//! modules = []        # e.g. ["world.clear", "planning.hang"]
//! first_scene = 1
//! tail_margin = 1
//! window_scenes = 1
//! ```
//!
//! [`run_plan`] executes a plan through the exact same driver code the
//! typed API uses ([`drivefi_core::random_space_campaign`],
//! [`drivefi_core::exhaustive_comparison`]), so a plan file reproduces
//! the typed calls number-for-number — the `campaign_plan` example
//! asserts this equality end to end.
//!
//! # Module layout
//!
//! * [`mod@self`] — the plan types, the fingerprint identity (and its
//!   documented exclusion table), and the [`run_plan`] dispatch;
//! * `schema` — the TOML surface: emit/parse with strict unknown-key
//!   rejection ([`emit_campaign_plan`], [`parse_campaign_plan`]);
//! * `pipeline` — the staged-campaign engine: the `Stage` description
//!   and the `Pipeline` driver that owns sub-store resolution,
//!   cross-stage budget accounting, checkpointed resume, and the
//!   `drivefi-obs` stage events, plus the `mine`/store-backed
//!   `exhaustive` drivers expressed on it;
//! * `adaptive` — the posterior-guided acquisition loop
//!   (`kind = "adaptive"`): fit on results so far, score unexplored
//!   candidates, run the top-K batch into a per-round sub-store, refit.

mod adaptive;
mod pipeline;
mod schema;
#[cfg(test)]
mod tests;

pub use adaptive::{
    round_dirs, round_subdir, AdaptiveProgress, AdaptiveSection, RoundSummary, ROUNDS_FILE,
    ROUND_PREFIX,
};
pub use schema::{campaign_plan_to_toml, emit_campaign_plan, parse_campaign_plan};

use crate::report::PlanReport;
use crate::scenario::{as_bool, as_str, as_uint, get};
use crate::toml::{emit_document, parse_document, Map, Toml};
use crate::PlanError;
use drivefi_core::{
    collect_golden_traces, exhaustive_comparison, random_fault_picks, random_space_campaign,
    BayesianMiner, ExhaustiveReport, MinerConfig, RandomCampaignConfig, RandomCampaignStats,
};
use drivefi_fault::FaultSpace;
use drivefi_obs::Field;
use drivefi_sim::{
    CampaignEngine, CampaignJob, Outcome, RunningStats, SimConfig, Simulation, Trace,
};
use drivefi_world::spec::ScenarioSpec;
use drivefi_world::ScenarioSuite;
use std::sync::Arc;

/// Which campaign a plan runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CampaignKind {
    /// The random baseline: `runs` faults sampled uniformly from the
    /// fault space × scenario suite.
    Random {
        /// Number of injection runs.
        runs: usize,
    },
    /// The exhaustive ground-truth comparison (golden traces → miner fit
    /// → inject every candidate → precision/recall).
    Exhaustive {
        /// Evaluate every `scene_stride`-th eligible scene.
        scene_stride: usize,
    },
    /// Golden-trace collection: every suite scenario driven fault-free
    /// through a [`TraceSink`](drivefi_sim::TraceSink) — the plan-driven
    /// form of [`collect_golden_traces`], so baseline runs ship as plan
    /// files too.
    Golden,
    /// The paper's full Bayesian pipeline (§III-B), store-backed and
    /// resumable at every stage: golden runs persist their traces to
    /// `dir/golden/`, the 3-TBN fits **from the persisted traces**
    /// ([`BayesianMiner::fit_from_store`]), the mined `F_crit` validates
    /// by real injection into `dir/validate/`, and the final report
    /// aggregates the validation records. Requires an `[output]` store.
    Mine {
        /// Evaluate every `scene_stride`-th eligible scene when mining.
        scene_stride: usize,
    },
    /// The posterior-guided acquisition loop: golden traces fit the TBN,
    /// every unexplored candidate is scored by expected
    /// hazard-information gain, and the top-`batch` candidates inject
    /// into a per-round sub-store (`round-000/`, `round-001/`, …) whose
    /// outcomes update the posterior before the next round — the
    /// paper's "the fitted network tells you where to inject next",
    /// closed into a loop. Requires an `[output]` store.
    Adaptive {
        /// Evaluate every `scene_stride`-th eligible scene when
        /// enumerating the candidate space.
        scene_stride: usize,
        /// The `[adaptive]` acquisition knobs.
        adaptive: AdaptiveSection,
    },
}

impl CampaignKind {
    /// Stable kind name, as written in plan files and report summaries.
    pub fn name(&self) -> &'static str {
        match self {
            CampaignKind::Random { .. } => "random",
            CampaignKind::Exhaustive { .. } => "exhaustive",
            CampaignKind::Golden => "golden",
            CampaignKind::Mine { .. } => "mine",
            CampaignKind::Adaptive { .. } => "adaptive",
        }
    }

    /// For store-backed pipeline kinds, the sub-store (relative to the
    /// `[output]` dir) whose records the final report aggregates —
    /// `None` for single-stage kinds, whose store *is* the output dir,
    /// and for adaptive campaigns, whose final report aggregates every
    /// `round-*/` sub-store rather than a single one.
    pub fn store_subdir(&self) -> Option<&'static str> {
        match self {
            CampaignKind::Mine { .. } => Some(VALIDATE_SUBDIR),
            CampaignKind::Exhaustive { .. } => Some(SWEEP_SUBDIR),
            CampaignKind::Random { .. } | CampaignKind::Golden | CampaignKind::Adaptive { .. } => {
                None
            }
        }
    }

    /// True for the staged pipeline kinds that collect golden traces
    /// into `dir/golden/` before fitting and injecting (mine,
    /// store-backed exhaustive, adaptive).
    pub fn is_staged(&self) -> bool {
        matches!(
            self,
            CampaignKind::Mine { .. }
                | CampaignKind::Exhaustive { .. }
                | CampaignKind::Adaptive { .. }
        )
    }
}

/// Golden-stage sub-store of a pipeline output directory (trace-logging).
pub const GOLDEN_SUBDIR: &str = "golden";
/// Validation-stage sub-store of a `kind = "mine"` output directory.
pub const VALIDATE_SUBDIR: &str = "validate";
/// Sweep-stage sub-store of a store-backed exhaustive output directory.
pub const SWEEP_SUBDIR: &str = "sweep";

/// Which sink consumes a random campaign's results.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SinkChoice {
    /// Constant-memory streaming statistics ([`RandomCampaignStats`]).
    Stats,
    /// Statistics plus the per-run outcome list, in submission order.
    Outcomes,
}

/// The scenario workload of a plan.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioSelection {
    /// `count` scenarios cycling the paper-era family mix
    /// ([`ScenarioSuite::generate`]).
    Paper {
        /// Suite size.
        count: u32,
        /// Suite seed.
        seed: u64,
    },
    /// `count` scenarios cycling the extended mix
    /// ([`ScenarioSuite::extended`]).
    Extended {
        /// Suite size.
        count: u32,
        /// Suite seed.
        seed: u64,
    },
    /// `count` scenarios cycling the named registry families.
    Families {
        /// Builtin family names, cycled in order.
        names: Vec<String>,
        /// Suite size.
        count: u32,
        /// Suite seed.
        seed: u64,
    },
    /// `count` scenarios cycling inline specs that never touch the
    /// builtin registry.
    Inline {
        /// The specs, cycled in order.
        specs: Vec<ScenarioSpec>,
        /// Suite size.
        count: u32,
        /// Suite seed.
        seed: u64,
    },
    /// `count` scenarios cycling specs loaded from `.toml` files. The
    /// file paths (relative to the plan file) are kept alongside the
    /// resolved specs, so a loaded plan re-saves as `source = "files"`
    /// instead of silently degrading to an inline copy.
    Files {
        /// Spec paths, relative to the plan file's directory.
        files: Vec<String>,
        /// The specs those files resolved to at load time.
        specs: Vec<ScenarioSpec>,
        /// Suite size.
        count: u32,
        /// Suite seed.
        seed: u64,
    },
}

impl ScenarioSelection {
    /// Builds the scenario suite this selection describes.
    pub fn build_suite(&self) -> ScenarioSuite {
        match self {
            ScenarioSelection::Paper { count, seed } => ScenarioSuite::generate(*count, *seed),
            ScenarioSelection::Extended { count, seed } => ScenarioSuite::extended(*count, *seed),
            ScenarioSelection::Families { names, count, seed } => {
                let names: Vec<&str> = names.iter().map(String::as_str).collect();
                ScenarioSuite::from_families(&names, *count, *seed)
            }
            ScenarioSelection::Inline { specs, count, seed }
            | ScenarioSelection::Files { specs, count, seed, .. } => {
                ScenarioSuite::from_specs(specs, *count, *seed)
            }
        }
    }
}

/// The `[sim]` plan section: the [`AdsConfig`](drivefi_ads::AdsConfig)
/// ablation switches, so resilience-mechanism ablations (the paper's
/// "why do random injections never land?" studies) are plan-driven too.
/// Defaults mirror [`AdsConfig::default`](drivefi_ads::AdsConfig);
/// the section is omitted from emitted plans when nothing is ablated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimSection {
    /// Run the planner every `planner_divisor` ticks (1 = every tick).
    pub planner_divisor: u32,
    /// Kalman-fuse the world model (false = raw detections).
    pub kalman_fusion: bool,
    /// Smooth actuation with the PID controller.
    pub pid_smoothing: bool,
    /// Engage the module-health watchdog.
    pub watchdog: bool,
    /// Campaign-engine batch width: how many jobs a worker steps in
    /// lockstep per dispatch (`None` = auto,
    /// [`drivefi_sim::DEFAULT_BATCH`]). Pure scheduling — results are
    /// bit-identical at any width, so like `workers` it is stripped from
    /// the campaign fingerprint.
    pub batch: Option<usize>,
}

impl Default for SimSection {
    fn default() -> Self {
        let ads = drivefi_ads::AdsConfig::default();
        SimSection {
            planner_divisor: ads.planner_divisor,
            kalman_fusion: ads.kalman_fusion,
            pid_smoothing: ads.pid_smoothing,
            watchdog: ads.watchdog,
            batch: None,
        }
    }
}

impl SimSection {
    /// Applies the switches to a simulator configuration.
    pub fn apply(self, config: &mut SimConfig) {
        config.ads.planner_divisor = self.planner_divisor;
        config.ads.kalman_fusion = self.kalman_fusion;
        config.ads.pid_smoothing = self.pid_smoothing;
        config.ads.watchdog = self.watchdog;
    }

    /// The default simulator configuration with these switches applied.
    pub fn sim_config(self) -> SimConfig {
        let mut config = SimConfig::default();
        self.apply(&mut config);
        config
    }
}

/// The `[output]` plan section: where the campaign persists its per-job
/// records (a `drivefi-store` directory) and emits its round-trip
/// [`PlanReport`]. Present ⇒ [`run_plan`] streams results to disk,
/// resumes automatically when the store already exists, and returns
/// [`PlanResult::Persisted`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutputSpec {
    /// Store directory. Relative paths resolve against the process
    /// working directory (the `drivefi` CLI resolves them against the
    /// plan file's directory before running).
    pub dir: String,
    /// Shard-file count records fan out over (`job % shards`).
    pub shards: u32,
    /// Checkpoint period: flush + manifest rewrite every this many
    /// appended records.
    pub checkpoint_every: u64,
}

impl OutputSpec {
    /// Default shard count.
    pub const DEFAULT_SHARDS: u32 = 4;
    /// Default checkpoint period, in records.
    pub const DEFAULT_CHECKPOINT_EVERY: u64 = 256;

    /// An output section writing to `dir` with default sharding.
    pub fn new(dir: impl Into<String>) -> Self {
        OutputSpec {
            dir: dir.into(),
            shards: Self::DEFAULT_SHARDS,
            checkpoint_every: Self::DEFAULT_CHECKPOINT_EVERY,
        }
    }
}

/// The `[submit]` plan section: scheduling metadata read by the
/// `drivefi serve` daemon when this plan is dropped in its spool. Pure
/// scheduling — stripped from [`campaign_fingerprint`] like `[output]`
/// and `workers`, so submitting a plan never changes what it computes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubmitSection {
    /// Fair-share weight: how many job-budget slices this campaign
    /// receives per scheduling round, relative to weight-1 campaigns.
    pub weight: u32,
}

impl SubmitSection {
    /// Largest accepted fair-share weight.
    pub const MAX_WEIGHT: u32 = 64;
}

impl Default for SubmitSection {
    fn default() -> Self {
        SubmitSection { weight: 1 }
    }
}

/// The `[control]` plan section: the unfaulted control job every
/// random/mine campaign runs before injecting anything. A campaign
/// whose baseline scenario is not survivable *without* faults cannot
/// attribute its hazards to injection — the control point catches that
/// before any injection budget is spent. Pure policy, like `[submit]`:
/// stripped from [`campaign_fingerprint`], so toggling the assertion
/// never invalidates a store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ControlSection {
    /// Fail the campaign when the control job is not survivable
    /// (`assert = false` / `--no-assert-control` downgrades the failed
    /// control to a recorded verdict).
    pub assert_survivable: bool,
}

impl Default for ControlSection {
    fn default() -> Self {
        ControlSection { assert_survivable: true }
    }
}

/// File the control verdict persists to, inside the `[output]` dir.
pub const CONTROL_FILE: &str = "control.toml";

/// The recorded verdict of a campaign's unfaulted control job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ControlVerdict {
    /// Scenario the control job drove (the suite's first).
    pub scenario_id: u32,
    /// Its family name.
    pub scenario_name: String,
    /// Outcome name (`"safe"`, `"hazard"`, `"collision"`).
    pub outcome: String,
    /// Whether the unfaulted run ended safe.
    pub survivable: bool,
}

impl ControlVerdict {
    /// The verdict as a TOML document string.
    pub fn to_toml(&self) -> String {
        emit_document(&Map::from([
            ("scenario_id".into(), Toml::Int(i64::from(self.scenario_id))),
            ("scenario_name".into(), Toml::Str(self.scenario_name.clone())),
            ("outcome".into(), Toml::Str(self.outcome.clone())),
            ("survivable".into(), Toml::Bool(self.survivable)),
        ]))
    }

    /// Parses a verdict document produced by [`Self::to_toml`].
    ///
    /// # Errors
    ///
    /// Returns a [`PlanError`] on malformed TOML or missing fields.
    pub fn parse(src: &str) -> Result<ControlVerdict, PlanError> {
        let doc = parse_document(src)?;
        let what = "control verdict";
        Ok(ControlVerdict {
            scenario_id: as_uint(get(&doc, what, "scenario_id")?, "`scenario_id`")? as u32,
            scenario_name: as_str(get(&doc, what, "scenario_name")?, "`scenario_name`")?.to_owned(),
            outcome: as_str(get(&doc, what, "outcome")?, "`outcome`")?.to_owned(),
            survivable: as_bool(get(&doc, what, "survivable")?, "`survivable`")?,
        })
    }

    /// Loads the verdict persisted in output directory `dir`, if any.
    ///
    /// # Errors
    ///
    /// Returns a [`PlanError`] when the file exists but is malformed.
    pub fn load(dir: &std::path::Path) -> Result<Option<ControlVerdict>, PlanError> {
        let path = dir.join(CONTROL_FILE);
        match std::fs::read_to_string(&path) {
            Ok(src) => Self::parse(&src)
                .map(Some)
                .map_err(|e| PlanError::new(format!("{}: {e}", path.display()))),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(PlanError::new(format!("reading {}: {e}", path.display()))),
        }
    }

    fn save(&self, dir: &std::path::Path) -> Result<(), PlanError> {
        let path = dir.join(CONTROL_FILE);
        let tmp = dir.join(format!(".{CONTROL_FILE}.tmp.{}", std::process::id()));
        std::fs::write(&tmp, self.to_toml())
            .map_err(|e| PlanError::new(format!("writing {}: {e}", tmp.display())))?;
        std::fs::rename(&tmp, &path)
            .map_err(|e| PlanError::new(format!("replacing {}: {e}", path.display())))
    }
}

/// Runs (or recalls) the campaign's control point: one unfaulted
/// simulation of the suite's first scenario under the plan's `[sim]`
/// ablations. The verdict persists to [`CONTROL_FILE`] in the output
/// dir (when there is one), so resumed and daemon-sliced campaigns
/// never re-pay the control job; it is also emitted as a
/// `control_verdict` event when observability is on.
///
/// Returns an error when the control job is not survivable and the plan
/// asserts it (`[control] assert`, default true).
fn run_control_point(
    plan: &CampaignPlan,
    sim: &SimConfig,
    suite: &ScenarioSuite,
) -> Result<Option<ControlVerdict>, PlanError> {
    let dir = plan.output.as_ref().map(|o| std::path::PathBuf::from(&o.dir));
    let verdict = match dir.as_deref().map(ControlVerdict::load).transpose()?.flatten() {
        Some(verdict) => verdict,
        None => {
            let Some(scenario) = suite.scenarios.first() else {
                return Ok(None); // An empty suite has nothing to control.
            };
            let control_sim = SimConfig { record_trace: false, ..*sim };
            let report = Simulation::new(control_sim, scenario).run();
            drivefi_obs::metrics::counter_add(drivefi_obs::metrics::Counter::ControlJobs, 1);
            let verdict = ControlVerdict {
                scenario_id: scenario.id,
                scenario_name: scenario.name.clone(),
                outcome: report.outcome.to_string(),
                survivable: report.outcome.is_safe(),
            };
            if let Some(dir) = dir.as_deref() {
                std::fs::create_dir_all(dir)
                    .map_err(|e| PlanError::new(format!("creating {}: {e}", dir.display())))?;
                verdict.save(dir)?;
                drivefi_obs::emit_event(
                    dir,
                    "control_verdict",
                    &[
                        ("scenario", Field::Int(i64::from(verdict.scenario_id))),
                        ("family", Field::Str(verdict.scenario_name.clone())),
                        ("outcome", Field::Str(verdict.outcome.clone())),
                        ("survivable", Field::Bool(verdict.survivable)),
                    ],
                );
            }
            verdict
        }
    };
    if plan.control.assert_survivable && !verdict.survivable {
        return Err(PlanError::new(format!(
            "control job failed: the unfaulted run of scenario {} (`{}`) ended in {} — the \
             baseline is not survivable, so injected hazards would be unattributable. Fix the \
             scenario, or run with `--no-assert-control` / `[control] assert = false` to record \
             the verdict and proceed",
            verdict.scenario_id, verdict.scenario_name, verdict.outcome
        )));
    }
    Ok(Some(verdict))
}

/// A complete, serializable campaign description.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignPlan {
    /// Human-readable plan name.
    pub name: String,
    /// What to run.
    pub kind: CampaignKind,
    /// Campaign RNG seed (fault sampling for random campaigns).
    pub seed: u64,
    /// Worker threads (`None` = [`drivefi_sim::default_workers`]).
    pub workers: Option<usize>,
    /// Result sink (random campaigns only; the exhaustive report shape
    /// is fixed, so exhaustive plans must leave this at
    /// [`SinkChoice::Stats`] and their files must omit `sink`).
    pub sink: SinkChoice,
    /// The scenario workload.
    pub scenarios: ScenarioSelection,
    /// The fault space sampled by random campaigns. Exhaustive
    /// campaigns sweep the *miner's* candidate space (mined signals ×
    /// {min, max} at the validation window) — a `[faults]` section in
    /// an exhaustive plan is rejected at parse time rather than
    /// silently ignored, and this field must stay at
    /// [`FaultSpace::default`].
    pub faults: FaultSpace,
    /// ADS ablation switches (`[sim]` section; defaults = no ablation).
    pub sim: SimSection,
    /// Persistent store + report destination (`[output]` section).
    /// `None` = in-memory results only, as before.
    pub output: Option<OutputSpec>,
    /// Daemon scheduling metadata (`[submit]` section; defaults =
    /// weight 1).
    pub submit: SubmitSection,
    /// Control-point policy (`[control]` section; defaults = assert the
    /// unfaulted control job survivable).
    pub control: ControlSection,
}

/// Every plan knob excluded from [`campaign_fingerprint`], as
/// `(key, why)` rows — the single documented table the fingerprint's
/// identity-stripping follows, instead of ad-hoc stripping scattered
/// through the fingerprint function. A knob belongs here exactly when
/// changing it can never change what the campaign *computes*: pure
/// scheduling, destinations, policy around the run, and rerun-safe stop
/// criteria. Everything else (kind, seed, scenarios, faults, ablations,
/// `[adaptive] batch`) is identity.
pub const FINGERPRINT_EXCLUDED: &[(&str, &str)] = &[
    ("[campaign] workers", "results are bit-identical at any worker count"),
    ("[sim] batch", "engine batch width is pure scheduling"),
    ("[output]", "store location and sharding are destinations, not inputs"),
    ("[submit] weight", "daemon fair-share weight never changes what a slice computes"),
    ("[control] assert", "the control-point assertion is policy around the run, not part of it"),
    ("[scenarios] files", "file selections fingerprint the resolved spec contents, not the paths"),
    (
        "[adaptive] max_rounds",
        "a rerun-safe stop criterion: raising it extends a finished campaign, never rewrites it",
    ),
    (
        "[adaptive] converge_eps",
        "a rerun-safe stop criterion: the per-round stores it gates are append-only",
    ),
];

/// Reduces a plan to its fingerprint identity by clearing every knob in
/// [`FINGERPRINT_EXCLUDED`], one statement per table row (same order).
fn strip_fingerprint_excluded(identity: &mut CampaignPlan) {
    identity.workers = None;
    identity.sim.batch = None;
    identity.output = None;
    identity.submit = SubmitSection::default();
    identity.control = ControlSection::default();
    if let ScenarioSelection::Files { specs, count, seed, .. } = &identity.scenarios {
        identity.scenarios =
            ScenarioSelection::Inline { specs: specs.clone(), count: *count, seed: *seed };
    }
    if let CampaignKind::Adaptive { adaptive, .. } = &mut identity.kind {
        adaptive.max_rounds = AdaptiveSection::default().max_rounds;
        adaptive.converge_eps = AdaptiveSection::default().converge_eps;
    }
}

/// The campaign identity a persistent store is locked to: the plan with
/// every key in the [`FINGERPRINT_EXCLUDED`] table stripped,
/// fingerprinted. Moving, re-sharding, or re-parallelizing the campaign
/// therefore never invalidates a resume, while any change to what it
/// *computes* (kind, seed, scenarios, faults, ablations) refuses to
/// append to the old store. `source = "files"` selections fingerprint
/// the **resolved spec contents**, not the file paths: editing a
/// referenced spec invalidates the store, relocating it does not.
pub fn campaign_fingerprint(plan: &CampaignPlan) -> u64 {
    let mut identity = plan.clone();
    strip_fingerprint_excluded(&mut identity);
    drivefi_store::fingerprint64(emit_campaign_plan(&identity).as_bytes())
}

/// What [`run_plan`] produced.
#[derive(Debug, Clone)]
pub enum PlanResult {
    /// A random campaign's streaming statistics.
    Random(RandomCampaignStats),
    /// A random campaign with the per-run outcome list retained.
    RandomOutcomes {
        /// Streaming outcome counters.
        running: RunningStats,
        /// Every run's outcome, in submission order.
        outcomes: Vec<Outcome>,
    },
    /// The exhaustive ground-truth comparison.
    Exhaustive(ExhaustiveReport),
    /// A golden campaign's per-scenario traces, in suite order.
    Golden(Vec<Trace>),
    /// A campaign with an `[output]` section: results persisted to the
    /// store, aggregated into the round-trip report (saved next to the
    /// shards as `report.toml` + `jobs.csv`).
    Persisted(PlanReport),
}

/// Executes a plan through the campaign engine and the standard
/// drivers. Deterministic: the same plan always produces the same
/// result, regardless of worker count — and, for plans with an
/// `[output]` section, regardless of how often the campaign was
/// interrupted and resumed.
///
/// # Errors
///
/// Returns a [`PlanError`] on store I/O failure or when resuming into a
/// store created by a different plan.
pub fn run_plan(plan: &CampaignPlan) -> Result<PlanResult, PlanError> {
    run_plan_budget(plan, None)
}

/// The engine a plan's direct campaign passes run on: worker count plus
/// the plan's optional `[sim] batch` width override.
fn plan_engine(plan: &CampaignPlan, sim: SimConfig, workers: usize) -> CampaignEngine {
    let engine = CampaignEngine::new(sim).with_workers(workers);
    match plan.sim.batch {
        Some(batch) => engine.with_batch(batch),
        None => engine,
    }
}

/// [`run_plan`] with a job budget: at most `budget` *pending* jobs are
/// executed this invocation (already-persisted jobs don't count), then
/// the run stops cleanly — the CI-style "interrupt via budget cap".
/// Only meaningful for plans with an `[output]` store to resume from;
/// a budget without one is an error.
///
/// # Errors
///
/// Returns a [`PlanError`] on store I/O failure, fingerprint mismatch,
/// or a budget on a store-less plan.
pub fn run_plan_budget(plan: &CampaignPlan, budget: Option<u64>) -> Result<PlanResult, PlanError> {
    let sim = plan.sim.sim_config();
    let suite = plan.scenarios.build_suite();
    let workers = plan.workers.unwrap_or_else(drivefi_sim::default_workers);

    // The parser rejects this combination; catch hand-built plans too
    // rather than silently dropping the sink choice — and before the
    // control point, so an invalid plan never writes `control.toml`.
    if plan.output.is_some() && plan.sink == SinkChoice::Outcomes {
        return Err(PlanError::new(
            "`sink = \"outcomes\"` cannot be combined with an [output] store — the per-job \
             outcomes are the store's jobs.csv"
                .into(),
        ));
    }

    // The control point gates every injecting campaign kind — before
    // the store opens, so a failed control never creates or touches one.
    if matches!(
        plan.kind,
        CampaignKind::Random { .. } | CampaignKind::Mine { .. } | CampaignKind::Adaptive { .. }
    ) {
        run_control_point(plan, &sim, &suite)?;
    }

    if let Some(output) = &plan.output {
        return pipeline::run_persisted(plan, output, sim, &suite, workers, budget);
    }
    if budget.is_some() {
        return Err(PlanError::new("a job budget needs an [output] store to resume from".into()));
    }
    Ok(match plan.kind {
        CampaignKind::Random { runs } => {
            let config = RandomCampaignConfig { runs, seed: plan.seed, workers };
            match plan.sink {
                SinkChoice::Stats => {
                    PlanResult::Random(random_space_campaign(&sim, &suite, &plan.faults, &config))
                }
                SinkChoice::Outcomes => {
                    let picks = random_fault_picks(&suite, &plan.faults, &config);
                    let engine = plan_engine(plan, sim, workers);
                    let shared = suite.shared();
                    let jobs = picks.iter().enumerate().map(|(id, &(index, spec))| CampaignJob {
                        id: id as u64,
                        scenario: Arc::clone(&shared[index]),
                        faults: vec![spec.compile()],
                    });
                    let mut running = RunningStats::new();
                    let mut outcomes: Vec<Option<Outcome>> = vec![None; picks.len()];
                    engine.run(jobs, &mut |index: u64, result: drivefi_sim::CampaignResult| {
                        outcomes[index as usize] = Some(result.report.outcome);
                        drivefi_sim::CampaignSink::accept(&mut running, index, result);
                    });
                    PlanResult::RandomOutcomes {
                        running,
                        outcomes: outcomes
                            .into_iter()
                            .map(|o| o.expect("every job produces a result"))
                            .collect(),
                    }
                }
            }
        }
        CampaignKind::Exhaustive { scene_stride } => {
            let traces = collect_golden_traces(&sim, &suite, workers);
            let config = MinerConfig { scene_stride, ..MinerConfig::default() };
            let miner = BayesianMiner::fit(&traces, config).expect("model fit on golden traces");
            PlanResult::Exhaustive(exhaustive_comparison(&sim, &suite, &miner, &traces, workers))
        }
        CampaignKind::Golden => PlanResult::Golden(collect_golden_traces(&sim, &suite, workers)),
        // The parser enforces this; catch hand-built plans too.
        CampaignKind::Mine { .. } => {
            return Err(PlanError::new(
                "`kind = \"mine\"` needs an [output] store — the pipeline persists golden \
                 traces and resumes its fit and validation sweep from them"
                    .into(),
            ))
        }
        CampaignKind::Adaptive { .. } => {
            return Err(PlanError::new(
                "`kind = \"adaptive\"` needs an [output] store — the acquisition loop persists \
                 golden traces and per-round sub-stores and resumes from them"
                    .into(),
            ))
        }
    })
}

impl CampaignPlan {
    /// Loads a plan from a `.toml` file, resolving `source = "files"`
    /// scenario-spec paths relative to the plan file's directory.
    ///
    /// # Errors
    ///
    /// Returns a [`PlanError`] on I/O or parse failure.
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<CampaignPlan, PlanError> {
        let path = path.as_ref();
        let src = std::fs::read_to_string(path)
            .map_err(|e| PlanError::new(format!("reading {}: {e}", path.display())))?;
        let base = path.parent().unwrap_or_else(|| std::path::Path::new("."));
        schema::campaign_plan_from_toml(&parse_document(&src)?, Some(base))
            .map_err(|e| PlanError::new(format!("{}: {e}", path.display())))
    }

    /// Saves the plan as a `.toml` file.
    ///
    /// # Errors
    ///
    /// Returns a [`PlanError`] on I/O failure.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> Result<(), PlanError> {
        let path = path.as_ref();
        std::fs::write(path, emit_campaign_plan(self))
            .map_err(|e| PlanError::new(format!("writing {}: {e}", path.display())))
    }
}
