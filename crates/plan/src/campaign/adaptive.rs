//! `kind = "adaptive"`: the posterior-guided acquisition loop.
//!
//! The pipeline opens like `kind = "mine"` — golden traces into
//! `golden/`, the 3-TBN fitted from the persisted store — but instead of
//! injecting one fixed candidate set, it closes the loop the paper
//! gestures at: the fitted network *scores* every unexplored candidate
//! by expected hazard-information gain
//! ([`drivefi_core::CandidateScorer`]), the top-`batch` candidates
//! inject into a per-round sub-store (`round-000/`, `round-001/`, …),
//! their outcomes update the posterior, and the next round re-scores.
//! The loop stops when the posterior converges (no group's hazard mean
//! moved more than `converge_eps` in a round), when `max_rounds` is
//! reached, or when the candidate space is exhausted.
//!
//! # Resumability
//!
//! Every decision is a pure function of persisted state, in round
//! order: the candidate enumeration comes from the golden traces, the
//! scorer's posterior is replayed from each complete round's records,
//! and batch selection is deterministic (sorted scores, index
//! tiebreak). An invocation that dies mid-round therefore re-selects
//! exactly the batch whose partial store it finds on disk, runs only
//! the missing jobs, and continues — byte-identical reports, same as
//! the other store-backed kinds.

use super::pipeline::{run_golden_stage, sweep_stage, Pipeline};
use super::{CampaignKind, CampaignPlan, OutputSpec, PlanResult, GOLDEN_SUBDIR};
use crate::report::PlanReport;
use crate::scenario::{as_array, as_bool, as_float, as_table, as_uint, expect_keys, get};
use crate::toml::{emit_document, parse_document, Map, Toml};
use crate::PlanError;
use drivefi_core::{AcquisitionConfig, BayesianMiner, CandidateScorer, MinerConfig};
use drivefi_fault::FaultSpec;
use drivefi_sim::SimConfig;
use drivefi_store::CampaignRecord;
use drivefi_world::ScenarioSuite;
use std::path::{Path, PathBuf};

/// The `[adaptive]` plan section: the acquisition loop's knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveSection {
    /// Candidates injected per round. Part of the campaign fingerprint:
    /// the batch size shapes which outcomes each round's selection saw,
    /// so changing it changes every round after the first.
    pub batch: usize,
    /// Hard round cap. A rerun-safe stop criterion (excluded from the
    /// fingerprint): raising it extends a finished campaign.
    pub max_rounds: u32,
    /// Convergence threshold: stop once no posterior group's hazard
    /// mean moved more than this in a round. Rerun-safe like
    /// `max_rounds`.
    pub converge_eps: f64,
}

impl Default for AdaptiveSection {
    fn default() -> Self {
        AdaptiveSection { batch: 8, max_rounds: 16, converge_eps: 0.05 }
    }
}

/// Prefix of per-round sub-store directory names under the output root.
pub const ROUND_PREFIX: &str = "round-";

/// File the adaptive progress summary persists to, inside the
/// `[output]` dir.
pub const ROUNDS_FILE: &str = "rounds.toml";

/// Sub-store directory name of acquisition round `round`
/// (`"round-000"`, `"round-001"`, …).
pub fn round_subdir(round: u32) -> String {
    format!("{ROUND_PREFIX}{round:03}")
}

/// The per-round sub-store directories present under an adaptive
/// campaign's output root, in round order — for render, serve, and
/// diff tooling that aggregates a partially-run campaign.
pub fn round_dirs(root: &Path) -> Vec<PathBuf> {
    let Ok(entries) = std::fs::read_dir(root) else {
        return Vec::new();
    };
    let mut names: Vec<String> = entries
        .filter_map(|e| e.ok())
        .filter(|e| e.path().is_dir())
        .filter_map(|e| e.file_name().into_string().ok())
        .filter(|name| {
            name.strip_prefix(ROUND_PREFIX)
                .is_some_and(|n| !n.is_empty() && n.bytes().all(|b| b.is_ascii_digit()))
        })
        .collect();
    names.sort();
    names.into_iter().map(|name| root.join(name)).collect()
}

/// One acquisition round's summary line.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoundSummary {
    /// Round index (0-based; sub-store `round-{round:03}/`).
    pub round: u32,
    /// Jobs injected this round.
    pub jobs: u64,
    /// Hazardous outcomes among them.
    pub hazards: u64,
    /// Hazardous outcomes across all rounds so far.
    pub cumulative_hazards: u64,
    /// Acquisition score of the round's top pick (before its outcome).
    pub top_score: f64,
    /// Largest posterior-mean shift any group saw from this round's
    /// outcomes — the convergence signal.
    pub max_shift: f64,
}

impl RoundSummary {
    fn to_toml(self) -> Toml {
        Toml::Table(Map::from([
            ("round".into(), Toml::Int(i64::from(self.round))),
            ("jobs".into(), Toml::Int(self.jobs as i64)),
            ("hazards".into(), Toml::Int(self.hazards as i64)),
            ("cumulative_hazards".into(), Toml::Int(self.cumulative_hazards as i64)),
            ("top_score".into(), Toml::Float(self.top_score)),
            ("max_shift".into(), Toml::Float(self.max_shift)),
        ]))
    }

    fn from_toml(value: &Toml) -> Result<RoundSummary, PlanError> {
        let table = as_table(value, "each `rounds` entry")?;
        let what = "a rounds entry";
        expect_keys(
            table,
            what,
            &["round", "jobs", "hazards", "cumulative_hazards", "top_score", "max_shift"],
        )?;
        Ok(RoundSummary {
            round: as_uint(get(table, what, "round")?, "`round`")? as u32,
            jobs: as_uint(get(table, what, "jobs")?, "`jobs`")?,
            hazards: as_uint(get(table, what, "hazards")?, "`hazards`")?,
            cumulative_hazards: as_uint(
                get(table, what, "cumulative_hazards")?,
                "`cumulative_hazards`",
            )?,
            top_score: as_float(get(table, what, "top_score")?, "`top_score`")?,
            max_shift: as_float(get(table, what, "max_shift")?, "`max_shift`")?,
        })
    }
}

/// The adaptive campaign's progress summary, persisted as
/// [`ROUNDS_FILE`] in the output dir and rendered as the per-round
/// table in reports. Rewritten after every completed round (and on a
/// mid-round budget stop), so a paused campaign's report still shows
/// how far acquisition got.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveProgress {
    /// Every completed round, in order.
    pub rounds: Vec<RoundSummary>,
    /// Size of the scored candidate space.
    pub candidates: u64,
    /// Whether the loop stopped on posterior convergence.
    pub converged: bool,
    /// Whether the loop stopped because every candidate was explored.
    pub exhausted: bool,
    /// 1-based campaign job number of the first hazardous injection,
    /// if any round found one — the "jobs to first `F_crit`" headline.
    pub jobs_to_first_hazard: Option<u64>,
    /// What an exhaustive sweep in candidate order would have paid *at
    /// most* to reach a hazard this campaign found: the smallest
    /// candidate index among explored hazards, 1-based. (Exhaustive
    /// might find an earlier hazard at an unexplored index, hence
    /// "upper bound".)
    pub exhaustive_upper_bound: Option<u64>,
    /// Expected jobs for uniform random sampling of the candidate
    /// space to hit a hazard, estimated from the explored outcomes as
    /// `(N + 1) / (H + 1)`.
    pub random_estimate: f64,
}

impl AdaptiveProgress {
    /// The progress summary as a TOML document string.
    pub fn to_toml(&self) -> String {
        let mut doc = Map::from([
            ("candidates".into(), Toml::Int(self.candidates as i64)),
            ("converged".into(), Toml::Bool(self.converged)),
            ("exhausted".into(), Toml::Bool(self.exhausted)),
            ("random_estimate".into(), Toml::Float(self.random_estimate)),
            ("rounds".into(), Toml::Array(self.rounds.iter().map(|r| r.to_toml()).collect())),
        ]);
        if let Some(n) = self.jobs_to_first_hazard {
            doc.insert("jobs_to_first_hazard".into(), Toml::Int(n as i64));
        }
        if let Some(n) = self.exhaustive_upper_bound {
            doc.insert("exhaustive_upper_bound".into(), Toml::Int(n as i64));
        }
        emit_document(&doc)
    }

    /// Parses a progress document produced by [`Self::to_toml`].
    ///
    /// # Errors
    ///
    /// Returns a [`PlanError`] on malformed TOML, missing keys, or
    /// unknown keys.
    pub fn parse(src: &str) -> Result<AdaptiveProgress, PlanError> {
        let doc = parse_document(src)?;
        let what = "adaptive progress";
        expect_keys(
            &doc,
            what,
            &[
                "candidates",
                "converged",
                "exhausted",
                "jobs_to_first_hazard",
                "exhaustive_upper_bound",
                "random_estimate",
                "rounds",
            ],
        )?;
        let rounds = as_array(get(&doc, what, "rounds")?, "`rounds`")?
            .iter()
            .map(RoundSummary::from_toml)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(AdaptiveProgress {
            rounds,
            candidates: as_uint(get(&doc, what, "candidates")?, "`candidates`")?,
            converged: as_bool(get(&doc, what, "converged")?, "`converged`")?,
            exhausted: as_bool(get(&doc, what, "exhausted")?, "`exhausted`")?,
            jobs_to_first_hazard: doc
                .get("jobs_to_first_hazard")
                .map(|v| as_uint(v, "`jobs_to_first_hazard`"))
                .transpose()?,
            exhaustive_upper_bound: doc
                .get("exhaustive_upper_bound")
                .map(|v| as_uint(v, "`exhaustive_upper_bound`"))
                .transpose()?,
            random_estimate: as_float(get(&doc, what, "random_estimate")?, "`random_estimate`")?,
        })
    }

    /// Loads the progress summary persisted in output directory `dir`,
    /// if any.
    ///
    /// # Errors
    ///
    /// Returns a [`PlanError`] when the file exists but is malformed.
    pub fn load(dir: &Path) -> Result<Option<AdaptiveProgress>, PlanError> {
        let path = dir.join(ROUNDS_FILE);
        match std::fs::read_to_string(&path) {
            Ok(src) => Self::parse(&src)
                .map(Some)
                .map_err(|e| PlanError::new(format!("{}: {e}", path.display()))),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(PlanError::new(format!("reading {}: {e}", path.display()))),
        }
    }

    fn save(&self, dir: &Path) -> Result<(), PlanError> {
        let path = dir.join(ROUNDS_FILE);
        let tmp = dir.join(format!(".{ROUNDS_FILE}.tmp.{}", std::process::id()));
        std::fs::write(&tmp, self.to_toml())
            .map_err(|e| PlanError::new(format!("writing {}: {e}", tmp.display())))?;
        std::fs::rename(&tmp, &path)
            .map_err(|e| PlanError::new(format!("replacing {}: {e}", path.display())))
    }
}

/// Baseline comparisons derived from the explored outcomes: the
/// first-hazard job number, the exhaustive-order upper bound, and the
/// uniform-random estimate.
fn baselines(
    all_records: &[CampaignRecord],
    explored_hazard_indices: &[usize],
    candidates: u64,
    explored_hazards: u64,
) -> (Option<u64>, Option<u64>, f64) {
    let jobs_to_first_hazard =
        all_records.iter().find(|r| r.outcome.is_hazardous()).map(|r| r.job + 1);
    let exhaustive_upper_bound = explored_hazard_indices.iter().min().map(|&i| i as u64 + 1);
    let random_estimate = (candidates + 1) as f64 / (explored_hazards + 1) as f64;
    (jobs_to_first_hazard, exhaustive_upper_bound, random_estimate)
}

/// The adaptive acquisition driver (see the module docs for the loop
/// and its resumability argument). Stage layout under the `[output]`
/// dir:
///
/// ```text
/// dir/golden/      trace-logging store of the golden runs
/// dir/round-000/   outcome store of acquisition round 0
/// dir/round-001/   …one per round, top-`batch` candidates each
/// dir/rounds.toml  per-round acquisition summary + baselines
/// dir/report.toml + jobs.csv — final report over every round store
/// ```
pub(super) fn run_adaptive(
    plan: &CampaignPlan,
    output: &OutputSpec,
    sim: SimConfig,
    suite: &ScenarioSuite,
    workers: usize,
    budget: Option<u64>,
) -> Result<PlanResult, PlanError> {
    let CampaignKind::Adaptive { scene_stride, adaptive } = plan.kind else {
        unreachable!("run_adaptive only handles adaptive plans")
    };
    let shared = suite.shared();
    let mut pipeline = Pipeline::begin(plan, output, workers, budget, None);

    // Stage 1: golden collection, shared with every pipeline kind.
    let (golden_run, golden_report) = run_golden_stage(&mut pipeline, suite, &shared, sim)?;
    let mut ran_any = golden_run.done_before < golden_run.total;
    if !golden_run.complete {
        pipeline.end(&golden_run);
        return Ok(PlanResult::Persisted(golden_report));
    }

    // Fit from the persisted traces and enumerate + score the candidate
    // space. `predict_deltas` keeps `candidate_specs` order, so a
    // candidate index means the same fault on every resume.
    let config = MinerConfig { scene_stride, ..MinerConfig::default() };
    let (miner, traces) = BayesianMiner::fit_from_store(pipeline.stage_dir(GOLDEN_SUBDIR), config)
        .map_err(|e| PlanError::new(format!("[output] store: {e}")))?;
    let predictions = miner.predict_deltas(&traces);
    let candidates: Vec<(u32, FaultSpec)> =
        predictions.iter().map(|p| (p.scenario_id, p.fault_spec())).collect();
    let mut scorer = CandidateScorer::new(&predictions, AcquisitionConfig::default());
    let mut explored = vec![false; candidates.len()];
    let mut explored_hazard_indices: Vec<usize> = Vec::new();

    let mut all_records: Vec<CampaignRecord> = Vec::new();
    let mut rounds: Vec<RoundSummary> = Vec::new();
    let mut base: u64 = 0;
    let mut cumulative_hazards: u64 = 0;
    let mut converged = false;
    let mut exhausted = false;

    for round in 0..adaptive.max_rounds {
        // Selection is a pure function of the posterior, which is a pure
        // function of the complete rounds replayed so far — so a resumed
        // invocation re-selects exactly the batch it finds on disk.
        let picks = scorer.select(&explored, adaptive.batch);
        let Some(&top) = picks.first() else {
            exhausted = true;
            break;
        };
        let top_score = scorer.score(top);
        let batch: Vec<(u32, FaultSpec)> = picks.iter().map(|&i| candidates[i]).collect();
        let name = round_subdir(round);
        let stage = sweep_stage(
            name.clone(),
            pipeline.stage_dir(&name),
            pipeline.fingerprint,
            suite,
            &shared,
            &batch,
            sim,
        );
        let means_before = scorer.posterior_means();
        let run = pipeline.run_stage(stage, None)?;
        ran_any |= run.done_before < run.total;

        let mut hazards = 0u64;
        for record in &run.records {
            let index = picks[record.job as usize];
            let hazardous = record.outcome.is_hazardous();
            scorer.observe(index, hazardous);
            explored[index] = true;
            if hazardous {
                hazards += 1;
                explored_hazard_indices.push(index);
            }
            // Renumber into the campaign-wide job sequence: rounds
            // concatenate, `base` is the jobs of all earlier rounds.
            let mut renumbered = *record;
            renumbered.job += base;
            all_records.push(renumbered);
        }
        cumulative_hazards += hazards;
        pipeline.finish_stage(&name, &run);

        if !run.complete {
            // Budget exhausted mid-round: persist a progress report over
            // everything on disk and stop cleanly. The next invocation
            // replays to this exact posterior and finishes the round.
            let (first, upper, random) = baselines(
                &all_records,
                &explored_hazard_indices,
                candidates.len() as u64,
                cumulative_hazards,
            );
            let report = PlanReport::new(
                plan.name.clone(),
                plan.kind.name(),
                pipeline.fingerprint,
                base + run.total,
                all_records,
            );
            report.save(pipeline.root())?;
            AdaptiveProgress {
                rounds,
                candidates: candidates.len() as u64,
                converged: false,
                exhausted: false,
                jobs_to_first_hazard: first,
                exhaustive_upper_bound: upper,
                random_estimate: random,
            }
            .save(pipeline.root())?;
            pipeline.end(&run);
            return Ok(PlanResult::Persisted(report));
        }

        let max_shift = means_before
            .iter()
            .zip(scorer.posterior_means())
            .map(|(before, after)| (before - after).abs())
            .fold(0.0, f64::max);
        rounds.push(RoundSummary {
            round,
            jobs: run.total,
            hazards,
            cumulative_hazards,
            top_score,
            max_shift,
        });
        base += run.total;
        if max_shift <= adaptive.converge_eps {
            converged = true;
            break;
        }
    }

    // The final report concatenates every round store, at the root.
    let (first, upper, random) = baselines(
        &all_records,
        &explored_hazard_indices,
        candidates.len() as u64,
        cumulative_hazards,
    );
    let report = PlanReport::new(
        plan.name.clone(),
        plan.kind.name(),
        pipeline.fingerprint,
        base,
        all_records,
    );
    report.save(pipeline.root())?;
    AdaptiveProgress {
        rounds,
        candidates: candidates.len() as u64,
        converged,
        exhausted,
        jobs_to_first_hazard: first,
        exhaustive_upper_bound: upper,
        random_estimate: random,
    }
    .save(pipeline.root())?;
    pipeline.end_with(ran_any, true, base);
    Ok(PlanResult::Persisted(report))
}
