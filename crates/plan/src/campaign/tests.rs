use super::*;
use drivefi_ads::Signal;
use drivefi_fault::{CorruptionGrid, ScalarFaultModel};

fn tiny_random_plan() -> CampaignPlan {
    CampaignPlan {
        name: "tiny".into(),
        kind: CampaignKind::Random { runs: 6 },
        seed: 3,
        workers: Some(4),
        sink: SinkChoice::Stats,
        scenarios: ScenarioSelection::Paper { count: 2, seed: 42 },
        faults: FaultSpace::default(),
        sim: SimSection::default(),
        submit: Default::default(),
        control: Default::default(),
        output: None,
    }
}

fn tiny_adaptive_plan() -> CampaignPlan {
    CampaignPlan {
        name: "adaptive".into(),
        kind: CampaignKind::Adaptive {
            scene_stride: 30,
            adaptive: AdaptiveSection { batch: 4, max_rounds: 5, converge_eps: 0.1 },
        },
        seed: 0,
        workers: Some(2),
        sink: SinkChoice::Stats,
        scenarios: ScenarioSelection::Paper { count: 2, seed: 42 },
        faults: FaultSpace::default(),
        sim: SimSection::default(),
        submit: Default::default(),
        control: Default::default(),
        output: Some(OutputSpec::new("out/adaptive")),
    }
}

#[test]
fn plans_round_trip_through_toml() {
    let plans = vec![
        tiny_random_plan(),
        CampaignPlan {
            name: "exhaustive".into(),
            kind: CampaignKind::Exhaustive { scene_stride: 40 },
            seed: 0,
            workers: Some(8),
            sink: SinkChoice::Stats,
            scenarios: ScenarioSelection::Families {
                names: vec!["cut_in".into(), "tailgater".into()],
                count: 3,
                seed: 7,
            },
            faults: FaultSpace::default(),
            sim: SimSection::default(),
            submit: Default::default(),
            control: Default::default(),
            output: None,
        },
        CampaignPlan {
            name: "custom-space".into(),
            kind: CampaignKind::Random { runs: 40 },
            seed: 0,
            workers: None,
            sink: SinkChoice::Outcomes,
            scenarios: ScenarioSelection::Families {
                names: vec!["cut_in".into(), "tailgater".into()],
                count: 3,
                seed: 7,
            },
            faults: FaultSpace {
                scalars: CorruptionGrid::new(
                    vec![Signal::RawThrottle, Signal::FinalBrake],
                    vec![
                        ScalarFaultModel::StuckMax,
                        ScalarFaultModel::Offset(-0.5),
                        ScalarFaultModel::BitFlip(62),
                    ],
                ),
                modules: vec![drivefi_fault::FaultKind::ClearWorldModel],
                first_scene: 10,
                tail_margin: 20,
                window_scenes: 6,
            },
            sim: SimSection::default(),
            submit: Default::default(),
            control: Default::default(),
            output: None,
        },
        CampaignPlan {
            name: "inline".into(),
            kind: CampaignKind::Random { runs: 4 },
            seed: 9,
            workers: None,
            sink: SinkChoice::Stats,
            scenarios: ScenarioSelection::Inline {
                specs: vec![drivefi_world::FamilyRegistry::builtin()
                    .get("debris_field")
                    .unwrap()
                    .clone()],
                count: 2,
                seed: 5,
            },
            faults: FaultSpace::default(),
            sim: SimSection::default(),
            submit: Default::default(),
            control: Default::default(),
            output: None,
        },
        tiny_adaptive_plan(),
    ];
    for plan in plans {
        let text = emit_campaign_plan(&plan);
        let parsed =
            parse_campaign_plan(&text).unwrap_or_else(|e| panic!("{}: {e}\n{text}", plan.name));
        assert_eq!(parsed, plan, "{} drifted through TOML", plan.name);
    }
}

#[test]
fn malformed_plans_are_rejected() {
    let base = emit_campaign_plan(&tiny_random_plan());
    assert!(parse_campaign_plan(&base).is_ok());
    // `base` with the whole [faults] section removed (sections emit
    // alphabetically, so [scenarios] follows [faults]).
    let without_faults = {
        let start = base.find("\n[faults]").expect("base has a [faults] section");
        let end = base.find("\n[scenarios]").expect("base has a [scenarios] section");
        format!("{}{}", &base[..start], &base[end..])
    };
    for (mutation, needle) in [
        (base.replace("kind = \"random\"", "kind = \"chaos\""), "unknown campaign kind"),
        (base.replace("runs = 6", "runs = 0"), "runs"),
        (base.replace("source = \"paper\"", "source = \"imaginary\""), "unknown scenario source"),
        (base.replace("signals = \"all\"", "signals = [\"plan.warp\"]"), "unknown signal"),
        (
            base.replace("models = [\"min\", \"max\"]", "models = [\"warp(2)\"]"),
            "unknown fault model",
        ),
        (base.replace("window_scenes = 1", "window_scenes = 0"), "window_scenes"),
        (base.replace("seed = 3", "velocity = 3"), "unknown key"),
        (base.replace("count = 2", "count = 0"), "count"),
        // An exhaustive campaign cannot carry a [faults] section or
        // a sink — rejected rather than silently ignored.
        (
            base.replace("kind = \"random\"\nruns = 6", "kind = \"exhaustive\"")
                .replace("sink = \"stats\"\n", ""),
            "`[faults]` section is only valid for random",
        ),
        (
            without_faults.replace("kind = \"random\"\nruns = 6", "kind = \"exhaustive\""),
            "`sink` is only valid for random",
        ),
    ] {
        let err =
            parse_campaign_plan(&mutation).expect_err(&format!("mutation should fail: {needle}"));
        assert!(err.to_string().contains(needle), "wanted `{needle}`, got: {err}");
    }
}

#[test]
fn adaptive_plans_round_trip_and_enforce_their_schema() {
    let plan = tiny_adaptive_plan();
    let text = emit_campaign_plan(&plan);
    assert!(text.contains("[adaptive]"), "non-default [adaptive] must emit:\n{text}");
    assert!(!text.contains("sink"), "adaptive plans carry no sink:\n{text}");
    assert_eq!(parse_campaign_plan(&text).unwrap(), plan);
    assert_eq!(plan.kind.store_subdir(), None, "rounds aggregate, no single sub-store");
    assert!(plan.kind.is_staged());

    // A default [adaptive] section is omitted, not emitted as noise —
    // and parses back to the default.
    let mut defaulted = plan.clone();
    defaulted.kind =
        CampaignKind::Adaptive { scene_stride: 30, adaptive: AdaptiveSection::default() };
    let default_text = emit_campaign_plan(&defaulted);
    assert!(!default_text.contains("[adaptive]"), "{default_text}");
    assert_eq!(parse_campaign_plan(&default_text).unwrap(), defaulted);

    // An adaptive plan without an [output] store is rejected at parse
    // time...
    let start = text.find("\n[output]").expect("adaptive plan has an [output] section");
    let end = text.find("\n[scenarios]").expect("sections emit alphabetically");
    let without_output = format!("{}{}", &text[..start], &text[end..]);
    let err = parse_campaign_plan(&without_output).expect_err("adaptive without [output]");
    assert!(err.to_string().contains("[output]"), "got: {err}");
    // ...and at run time for hand-built plans.
    let mut no_output = plan.clone();
    no_output.output = None;
    let err = run_plan(&no_output).expect_err("adaptive without output store");
    assert!(err.to_string().contains("[output]"), "got: {err}");

    // Invalid knobs and misplaced sections are rejected, not ignored.
    for (mutation, needle) in [
        (text.replace("batch = 4", "batch = 0"), "`batch` must be at least 1"),
        (text.replace("max_rounds = 5", "max_rounds = 0"), "max_rounds"),
        (
            text.replace("converge_eps = 0.1", "converge_eps = -0.5"),
            "`converge_eps` must be a finite value >= 0",
        ),
        (text.replace("batch = 4", "exploration_bonus = 2"), "unknown key"),
        (
            text.replace("kind = \"adaptive\"", "kind = \"adaptive\"\nruns = 4"),
            "`runs` is not valid for adaptive",
        ),
        (
            text.replace("kind = \"adaptive\"", "kind = \"adaptive\"\nsink = \"stats\""),
            "`sink` is not valid for adaptive",
        ),
        (
            format!("{text}\n[faults]\nmodules = [\"world.clear\"]\n"),
            "not valid for adaptive campaigns",
        ),
    ] {
        let err = parse_campaign_plan(&mutation).expect_err(needle);
        assert!(err.to_string().contains(needle), "wanted `{needle}`, got: {err}");
    }

    // An [adaptive] section on a non-adaptive kind is a parse error.
    let misplaced = format!("{}\n[adaptive]\nbatch = 4\n", emit_campaign_plan(&tiny_random_plan()));
    let err = parse_campaign_plan(&misplaced).expect_err("[adaptive] on random");
    assert!(err.to_string().contains("only valid for adaptive campaigns"), "got: {err}");
}

#[test]
fn adaptive_progress_round_trips_and_round_dirs_sort() {
    let progress = AdaptiveProgress {
        rounds: vec![
            RoundSummary {
                round: 0,
                jobs: 4,
                hazards: 1,
                cumulative_hazards: 1,
                top_score: 0.75,
                max_shift: 0.2,
            },
            RoundSummary {
                round: 1,
                jobs: 4,
                hazards: 0,
                cumulative_hazards: 1,
                top_score: 0.5,
                max_shift: 0.01,
            },
        ],
        candidates: 96,
        converged: true,
        exhausted: false,
        jobs_to_first_hazard: Some(3),
        exhaustive_upper_bound: Some(17),
        random_estimate: 48.5,
    };
    assert_eq!(AdaptiveProgress::parse(&progress.to_toml()).unwrap(), progress);
    // The optional baselines stay optional through the round trip.
    let mut hazardless = progress.clone();
    hazardless.jobs_to_first_hazard = None;
    hazardless.exhaustive_upper_bound = None;
    let text = hazardless.to_toml();
    assert!(!text.contains("jobs_to_first_hazard"), "{text}");
    assert_eq!(AdaptiveProgress::parse(&text).unwrap(), hazardless);
    // Unknown keys are rejected, like every other schema here.
    let err = AdaptiveProgress::parse(&format!("{}\nvibes = 1\n", progress.to_toml()))
        .expect_err("unknown key");
    assert!(err.to_string().contains("unknown key"), "got: {err}");

    assert_eq!(round_subdir(0), "round-000");
    assert_eq!(round_subdir(12), "round-012");
    assert!(round_subdir(12).starts_with(ROUND_PREFIX));
    // round_dirs picks up exactly the round stores, in round order.
    let dir = std::env::temp_dir().join(format!("drivefi-round-dirs-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    for name in ["round-001", "round-000", "round-x", "golden", "rounds"] {
        std::fs::create_dir_all(dir.join(name)).unwrap();
    }
    assert_eq!(round_dirs(&dir), vec![dir.join("round-000"), dir.join("round-001")]);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn files_selection_survives_load_then_save() {
    // source = "files" keeps its file references: loading a plan and
    // re-saving it must emit the paths, not an inline copy of the
    // specs.
    let dir = std::env::temp_dir().join(format!("drivefi-plan-test-{}", std::process::id()));
    let scenario_dir = dir.join("scenarios");
    std::fs::create_dir_all(&scenario_dir).unwrap();
    let spec = drivefi_world::FamilyRegistry::builtin().get("tailgater").unwrap();
    crate::scenario::save_scenario_spec(scenario_dir.join("tailgater.toml"), spec).unwrap();

    let text = "name = \"files-test\"\n\n[campaign]\nkind = \"random\"\nruns = 2\nseed = 1\n\n\
                [scenarios]\nsource = \"files\"\nfiles = [\"scenarios/tailgater.toml\"]\n\
                count = 2\nseed = 5\n";
    let plan_path = dir.join("plan.toml");
    std::fs::write(&plan_path, text).unwrap();

    let loaded = CampaignPlan::load(&plan_path).unwrap();
    let ScenarioSelection::Files { files, specs, .. } = &loaded.scenarios else {
        panic!("files selection degraded to {:?}", loaded.scenarios);
    };
    assert_eq!(files, &vec![String::from("scenarios/tailgater.toml")]);
    assert_eq!(&specs[0], spec);

    let resaved = plan_path.with_file_name("resaved.toml");
    loaded.save(&resaved).unwrap();
    let emitted = std::fs::read_to_string(&resaved).unwrap();
    assert!(emitted.contains("source = \"files\""), "degraded to inline:\n{emitted}");
    assert!(emitted.contains("scenarios/tailgater.toml"));
    assert_eq!(CampaignPlan::load(&resaved).unwrap(), loaded);

    // Without a base directory the source is rejected, not guessed.
    assert!(parse_campaign_plan(text).is_err());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sim_section_defaults_mirror_ads_config() {
    let section = SimSection::default();
    let ads = drivefi_ads::AdsConfig::default();
    assert_eq!(section.planner_divisor, ads.planner_divisor);
    assert_eq!(section.kalman_fusion, ads.kalman_fusion);
    assert_eq!(section.pid_smoothing, ads.pid_smoothing);
    assert_eq!(section.watchdog, ads.watchdog);
    // apply() round-trips the switches into a SimConfig.
    let mut config = SimConfig::default();
    SimSection {
        planner_divisor: 4,
        kalman_fusion: false,
        pid_smoothing: false,
        watchdog: false,
        batch: None,
    }
    .apply(&mut config);
    assert_eq!(config.ads.planner_divisor, 4);
    assert!(!config.ads.kalman_fusion && !config.ads.pid_smoothing && !config.ads.watchdog);
}

#[test]
fn sim_and_output_sections_round_trip() {
    let mut plan = tiny_random_plan();
    plan.sim = SimSection {
        planner_divisor: 3,
        kalman_fusion: false,
        pid_smoothing: true,
        watchdog: false,
        batch: Some(16),
    };
    plan.output = Some(OutputSpec { dir: "out/tiny".into(), shards: 7, checkpoint_every: 99 });
    let text = emit_campaign_plan(&plan);
    assert!(text.contains("[sim]") && text.contains("[output]"), "{text}");
    assert_eq!(parse_campaign_plan(&text).unwrap(), plan);

    // The default [sim] is omitted, not emitted as noise.
    let default_text = emit_campaign_plan(&tiny_random_plan());
    assert!(!default_text.contains("[sim]"), "{default_text}");
}

#[test]
fn sim_section_rejects_unknown_keys_and_bad_values() {
    let base = {
        let mut plan = tiny_random_plan();
        plan.sim = SimSection { kalman_fusion: false, ..SimSection::default() };
        emit_campaign_plan(&plan)
    };
    assert!(parse_campaign_plan(&base).is_ok());
    for (mutation, needle) in [
        // Unknown keys in [sim] are rejected, not ignored.
        (base.replace("kalman_fusion = false", "kalman_fuzion = false"), "unknown key"),
        (
            base.replace("kalman_fusion = false", "kalman_fusion = false\nturbo_mode = true"),
            "unknown key `turbo_mode`",
        ),
        // Type and range violations.
        (base.replace("kalman_fusion = false", "kalman_fusion = 1"), "must be a boolean"),
        (
            base.replace("kalman_fusion = false", "kalman_fusion = false\nplanner_divisor = 0"),
            "planner_divisor",
        ),
        (
            base.replace("kalman_fusion = false", "kalman_fusion = false\nbatch = 0"),
            "`batch` must be at least 1",
        ),
        (base.replace("kalman_fusion = false", "kalman_fusion = false\nbatch = \"wide\""), "batch"),
    ] {
        let err =
            parse_campaign_plan(&mutation).expect_err(&format!("mutation should fail: {needle}"));
        assert!(err.to_string().contains(needle), "wanted `{needle}`, got: {err}");
    }
}

#[test]
fn output_sections_are_validated() {
    // Store-backed exhaustive plans are legal (the sweep persists
    // under dir/sweep/) — only the bad [output] values are rejected.
    let text = "name = \"x\"\n\n[campaign]\nkind = \"exhaustive\"\n\n[scenarios]\n\
                source = \"paper\"\ncount = 1\nseed = 0\n\n[output]\ndir = \"out/x\"\n";
    let plan = parse_campaign_plan(text).expect("[output] on exhaustive is store-backed");
    assert_eq!(plan.kind, CampaignKind::Exhaustive { scene_stride: 1 });
    assert_eq!(plan.kind.store_subdir(), Some(SWEEP_SUBDIR));
    let base = {
        let mut plan = tiny_random_plan();
        plan.output = Some(OutputSpec::new("out/tiny"));
        emit_campaign_plan(&plan)
    };
    for (mutation, needle) in [
        (base.replace("dir = \"out/tiny\"", "dir = \"\""), "dir"),
        (base.replace("shards = 4", "shards = 0"), "shards"),
        (base.replace("checkpoint_every = 256", "checkpoint_every = 0"), "checkpoint_every"),
    ] {
        let err = parse_campaign_plan(&mutation).expect_err(needle);
        assert!(err.to_string().contains(needle), "wanted `{needle}`, got: {err}");
    }
}

#[test]
fn mine_plans_round_trip_and_enforce_their_schema() {
    let plan = CampaignPlan {
        name: "mine".into(),
        kind: CampaignKind::Mine { scene_stride: 25 },
        seed: 0,
        workers: Some(4),
        sink: SinkChoice::Stats,
        scenarios: ScenarioSelection::Paper { count: 2, seed: 42 },
        faults: FaultSpace::default(),
        sim: SimSection::default(),
        submit: Default::default(),
        control: Default::default(),
        output: Some(OutputSpec::new("out/mine")),
    };
    let text = emit_campaign_plan(&plan);
    assert!(!text.contains("sink"), "mine plans carry no sink:\n{text}");
    assert_eq!(parse_campaign_plan(&text).unwrap(), plan);
    assert_eq!(plan.kind.store_subdir(), Some(VALIDATE_SUBDIR));

    // A mine plan without an [output] store is rejected at parse time
    // (the pipeline is resumable-from-disk by definition)...
    let start = text.find("\n[output]").expect("mine plan has an [output] section");
    let end = text.find("\n[scenarios]").expect("sections emit alphabetically");
    let without_output = format!("{}{}", &text[..start], &text[end..]);
    let err = parse_campaign_plan(&without_output).expect_err("mine without [output]");
    assert!(err.to_string().contains("[output]"), "got: {err}");
    // ...and at run time for hand-built plans.
    let mut no_output = plan.clone();
    no_output.output = None;
    let err = run_plan(&no_output).expect_err("mine without output store");
    assert!(err.to_string().contains("[output]"), "got: {err}");

    // runs / sink / [faults] are rejected rather than ignored.
    for (mutation, needle) in [
        (
            text.replace("kind = \"mine\"", "kind = \"mine\"\nruns = 4"),
            "`runs` is not valid for mine",
        ),
        (
            text.replace("kind = \"mine\"", "kind = \"mine\"\nsink = \"stats\""),
            "`sink` is not valid for mine",
        ),
        (
            text.replace("scene_stride = 25", "scene_stride = 0"),
            "`scene_stride` must be at least 1",
        ),
        (format!("{text}\n[faults]\nmodules = [\"world.clear\"]\n"), "mine"),
    ] {
        let err = parse_campaign_plan(&mutation).expect_err(needle);
        assert!(err.to_string().contains(needle), "wanted `{needle}`, got: {err}");
    }
}

#[test]
fn fingerprint_ignores_scheduling_knobs_but_not_computation() {
    let base = tiny_random_plan();
    let fp = campaign_fingerprint(&base);
    // Pure scheduling/destination knobs: same identity.
    let mut rescheduled = base.clone();
    rescheduled.workers = Some(64);
    rescheduled.output = Some(OutputSpec::new("somewhere/else"));
    assert_eq!(campaign_fingerprint(&rescheduled), fp);
    let mut no_workers = base.clone();
    no_workers.workers = None;
    assert_eq!(campaign_fingerprint(&no_workers), fp);
    // The batch width is scheduling too: rebatching never
    // invalidates a store resume.
    let mut rebatched = base.clone();
    rebatched.sim.batch = Some(1);
    assert_eq!(campaign_fingerprint(&rebatched), fp);
    // Daemon scheduling metadata: reweighting a submission never
    // invalidates a store resume either.
    let mut reweighted = base.clone();
    reweighted.submit = SubmitSection { weight: 8 };
    assert_eq!(campaign_fingerprint(&reweighted), fp);
    // Anything the campaign computes: different identity.
    for mutate in [
        |p: &mut CampaignPlan| p.seed += 1,
        |p: &mut CampaignPlan| p.kind = CampaignKind::Random { runs: 7 },
        |p: &mut CampaignPlan| p.scenarios = ScenarioSelection::Paper { count: 3, seed: 42 },
        |p: &mut CampaignPlan| p.sim.watchdog = false,
    ] {
        let mut changed = base.clone();
        mutate(&mut changed);
        assert_ne!(campaign_fingerprint(&changed), fp);
    }
}

#[test]
fn fingerprint_exclusion_table_is_exhaustive() {
    // One mutation per FINGERPRINT_EXCLUDED row, same order as the
    // table: each must leave the fingerprint unchanged, and the list
    // length must equal the table's — so adding an exclusion to
    // `strip_fingerprint_excluded` without documenting it here (or vice
    // versa) fails this test.
    let registry = drivefi_world::FamilyRegistry::builtin();
    let spec = registry.get("tailgater").unwrap().clone();
    let base = CampaignPlan {
        scenarios: ScenarioSelection::Files {
            files: vec!["x/tailgater.toml".into()],
            specs: vec![spec],
            count: 2,
            seed: 5,
        },
        ..tiny_adaptive_plan()
    };
    let fp = campaign_fingerprint(&base);
    type Mutation = fn(&mut CampaignPlan);
    let excluded_mutations: Vec<(&str, Mutation)> = vec![
        ("[campaign] workers", |p| p.workers = Some(64)),
        ("[sim] batch", |p| p.sim.batch = Some(2)),
        ("[output]", |p| {
            p.output = Some(OutputSpec { dir: "elsewhere".into(), shards: 9, checkpoint_every: 7 })
        }),
        ("[submit] weight", |p| p.submit = SubmitSection { weight: 8 }),
        ("[control] assert", |p| p.control = ControlSection { assert_survivable: false }),
        ("[scenarios] files", |p| {
            let ScenarioSelection::Files { files, .. } = &mut p.scenarios else { unreachable!() };
            files[0] = "y/renamed.toml".into();
        }),
        ("[adaptive] max_rounds", |p| {
            let CampaignKind::Adaptive { adaptive, .. } = &mut p.kind else { unreachable!() };
            adaptive.max_rounds += 10;
        }),
        ("[adaptive] converge_eps", |p| {
            let CampaignKind::Adaptive { adaptive, .. } = &mut p.kind else { unreachable!() };
            adaptive.converge_eps = 0.5;
        }),
    ];
    assert_eq!(
        excluded_mutations.len(),
        FINGERPRINT_EXCLUDED.len(),
        "the mutation list must cover the documented table exactly"
    );
    for ((key, why), (mutated_key, mutate)) in FINGERPRINT_EXCLUDED.iter().zip(&excluded_mutations)
    {
        assert_eq!(key, mutated_key, "table and mutation list must stay in the same order");
        assert!(!why.is_empty(), "every exclusion documents its why");
        let mut changed = base.clone();
        mutate(&mut changed);
        assert_eq!(campaign_fingerprint(&changed), fp, "`{key}` must not change the fingerprint");
    }
    // The batch size is identity, not scheduling: each round's
    // selection depends on how many outcomes the previous one saw.
    let mut rebatched = base.clone();
    let CampaignKind::Adaptive { adaptive, .. } = &mut rebatched.kind else { unreachable!() };
    adaptive.batch += 1;
    assert_ne!(campaign_fingerprint(&rebatched), fp, "[adaptive] batch is identity");
}

#[test]
fn files_selections_fingerprint_spec_contents_not_paths() {
    let registry = drivefi_world::FamilyRegistry::builtin();
    let spec_a = registry.get("tailgater").unwrap().clone();
    let spec_b = registry.get("debris_field").unwrap().clone();
    let files_plan = |files: Vec<String>, specs: Vec<ScenarioSpec>| CampaignPlan {
        scenarios: ScenarioSelection::Files { files, specs, count: 2, seed: 5 },
        ..tiny_random_plan()
    };
    // Same contents under a different path: same identity (a moved
    // store keeps resuming).
    let a = files_plan(vec!["x/tailgater.toml".into()], vec![spec_a.clone()]);
    let moved = files_plan(vec!["y/renamed.toml".into()], vec![spec_a.clone()]);
    assert_eq!(campaign_fingerprint(&a), campaign_fingerprint(&moved));
    // Same path, edited contents: different identity (an edited spec
    // refuses to append to the old shards).
    let edited = files_plan(vec!["x/tailgater.toml".into()], vec![spec_b]);
    assert_ne!(campaign_fingerprint(&a), campaign_fingerprint(&edited));
}

#[test]
fn submit_section_parses_validates_and_round_trips() {
    let text = "name = \"weighted\"\n\n[campaign]\nkind = \"random\"\nruns = 2\n\n\
                [scenarios]\nsource = \"paper\"\ncount = 1\nseed = 0\n\n[submit]\nweight = 3\n";
    let plan = parse_campaign_plan(text).unwrap();
    assert_eq!(plan.submit, SubmitSection { weight: 3 });
    // Emit → parse round-trips, and a default weight emits no
    // [submit] section at all.
    let reparsed = parse_campaign_plan(&emit_campaign_plan(&plan)).unwrap();
    assert_eq!(reparsed.submit, plan.submit);
    let mut unweighted = plan;
    unweighted.submit = SubmitSection::default();
    assert!(!emit_campaign_plan(&unweighted).contains("submit"));
    // Out-of-range and unknown keys are parse errors.
    let err = parse_campaign_plan(&text.replace("weight = 3", "weight = 0")).expect_err("weight 0");
    assert!(err.to_string().contains("weight"), "got: {err}");
    let err =
        parse_campaign_plan(&text.replace("weight = 3", "weight = 65")).expect_err("weight 65");
    assert!(err.to_string().contains("weight"), "got: {err}");
    let err = parse_campaign_plan(&text.replace("weight = 3", "velocity = 3"))
        .expect_err("unknown submit key");
    assert!(err.to_string().contains("velocity"), "got: {err}");
}

#[test]
fn outcome_sink_cannot_combine_with_an_output_store() {
    let mut plan = tiny_random_plan();
    plan.sink = SinkChoice::Outcomes;
    plan.output = Some(OutputSpec::new("out/x"));
    // Hand-built plans error at run time, before anything — the
    // control point included — touches the output directory...
    let err = run_plan(&plan).expect_err("outcomes + output");
    assert!(err.to_string().contains("jobs.csv"), "got: {err}");
    assert!(!std::path::Path::new("out/x").exists(), "invalid plan must not create its store");
    // ...and plan files at parse time.
    let text = "name = \"x\"\n\n[campaign]\nkind = \"random\"\nruns = 2\n\
                sink = \"outcomes\"\n\n[scenarios]\nsource = \"paper\"\ncount = 1\n\
                seed = 0\n\n[output]\ndir = \"out/x\"\n";
    let err = parse_campaign_plan(text).expect_err("outcomes + output parses");
    assert!(err.to_string().contains("outcomes"), "got: {err}");
}

#[test]
fn golden_plans_round_trip_and_reject_fault_config() {
    let plan = CampaignPlan {
        name: "golden".into(),
        kind: CampaignKind::Golden,
        seed: 0,
        workers: Some(2),
        sink: SinkChoice::Stats,
        scenarios: ScenarioSelection::Paper { count: 2, seed: 42 },
        faults: FaultSpace::default(),
        sim: SimSection::default(),
        submit: Default::default(),
        control: Default::default(),
        output: None,
    };
    let text = emit_campaign_plan(&plan);
    assert!(!text.contains("sink"), "golden plans carry no sink:\n{text}");
    assert_eq!(parse_campaign_plan(&text).unwrap(), plan);
    for (extra, needle) in
        [("runs = 4", "`runs` is not valid"), ("sink = \"stats\"", "`sink` is not valid")]
    {
        let mutated = text.replace("kind = \"golden\"", &format!("kind = \"golden\"\n{extra}"));
        let err = parse_campaign_plan(&mutated).expect_err(needle);
        assert!(err.to_string().contains(needle), "wanted `{needle}`, got: {err}");
    }
    let with_faults = format!("{text}\n[faults]\nmodules = [\"world.clear\"]\n");
    let err = parse_campaign_plan(&with_faults).expect_err("[faults] on golden");
    assert!(err.to_string().contains("golden"), "got: {err}");
}

#[test]
fn golden_plans_collect_the_suite_traces() {
    let plan = CampaignPlan {
        name: "golden".into(),
        kind: CampaignKind::Golden,
        seed: 0,
        workers: Some(2),
        sink: SinkChoice::Stats,
        scenarios: ScenarioSelection::Paper { count: 2, seed: 42 },
        faults: FaultSpace::default(),
        sim: SimSection::default(),
        submit: Default::default(),
        control: Default::default(),
        output: None,
    };
    let PlanResult::Golden(traces) = run_plan(&plan).unwrap() else {
        panic!("golden plan must produce traces");
    };
    let typed = collect_golden_traces(&SimConfig::default(), &ScenarioSuite::generate(2, 42), 2);
    assert_eq!(traces.len(), 2);
    for (plan_trace, typed_trace) in traces.iter().zip(&typed) {
        assert_eq!(plan_trace.scenario_id, typed_trace.scenario_id);
        assert_eq!(plan_trace.frames.len(), typed_trace.frames.len());
    }
}

#[test]
fn persisted_random_plan_matches_in_memory_stats() {
    let dir = std::env::temp_dir().join(format!("drivefi-plan-store-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let mut plan = tiny_random_plan();
    plan.output = Some(OutputSpec::new(dir.to_string_lossy().into_owned()));
    let PlanResult::Persisted(report) = run_plan(&plan).unwrap() else {
        panic!("output plans persist");
    };
    assert!(report.complete());
    assert_eq!(report.kind, "random");

    plan.output = None;
    let PlanResult::Random(stats) = run_plan(&plan).unwrap() else {
        panic!("expected random stats");
    };
    assert_eq!(report.jobs.len(), stats.runs);
    assert_eq!(report.safe(), stats.safe as u64);
    assert_eq!(report.hazards(), stats.hazards as u64);
    assert_eq!(report.collisions(), stats.collisions as u64);
    assert_eq!(report.effective_injections(), stats.effective_injections as u64);
    // The saved artifact loads back equal.
    assert_eq!(crate::report::PlanReport::load(&dir).unwrap(), report);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn budget_capped_run_resumes_to_the_same_report() {
    let dir = std::env::temp_dir().join(format!("drivefi-plan-resume-{}", std::process::id()));
    let full_dir = dir.join("full");
    let part_dir = dir.join("part");
    std::fs::remove_dir_all(&dir).ok();

    let mut plan = tiny_random_plan();
    plan.output = Some(OutputSpec::new(full_dir.to_string_lossy().into_owned()));
    let PlanResult::Persisted(full) = run_plan(&plan).unwrap() else { panic!() };

    plan.output = Some(OutputSpec::new(part_dir.to_string_lossy().into_owned()));
    let PlanResult::Persisted(partial) = run_plan_budget(&plan, Some(2)).unwrap() else { panic!() };
    assert_eq!(partial.jobs.len(), 2);
    assert!(!partial.complete());
    let PlanResult::Persisted(resumed) = run_plan(&plan).unwrap() else { panic!() };
    assert!(resumed.complete());
    assert_eq!(resumed.jobs, full.jobs);
    for file in [crate::report::REPORT_FILE, crate::report::JOBS_FILE] {
        let a = std::fs::read(full_dir.join(file)).unwrap();
        let b = std::fs::read(part_dir.join(file)).unwrap();
        assert_eq!(a, b, "{file} differs between full and resumed runs");
    }

    // A different plan refuses to adopt the store.
    plan.seed += 1;
    let err = run_plan(&plan).expect_err("fingerprint mismatch");
    assert!(err.to_string().contains("fingerprint"), "got: {err}");
    // A budget without a store is an error, not a silent no-op.
    plan.output = None;
    assert!(run_plan_budget(&plan, Some(1)).is_err());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn run_plan_matches_typed_random_campaign() {
    let plan = tiny_random_plan();
    let PlanResult::Random(from_plan) = run_plan(&plan).unwrap() else {
        panic!("expected random stats");
    };
    let suite = ScenarioSuite::generate(2, 42);
    let typed = random_space_campaign(
        &SimConfig::default(),
        &suite,
        &FaultSpace::default(),
        &RandomCampaignConfig { runs: 6, seed: 3, workers: 4 },
    );
    assert_eq!(from_plan.runs, typed.runs);
    assert_eq!(from_plan.safe, typed.safe);
    assert_eq!(from_plan.hazards, typed.hazards);
    assert_eq!(from_plan.collisions, typed.collisions);
    assert_eq!(from_plan.effective_injections, typed.effective_injections);
    assert_eq!(from_plan.hazard_details, typed.hazard_details);
}

#[test]
fn outcome_sink_agrees_with_stats_sink() {
    let mut plan = tiny_random_plan();
    plan.sink = SinkChoice::Outcomes;
    let PlanResult::RandomOutcomes { running, outcomes } = run_plan(&plan).unwrap() else {
        panic!("expected outcome list");
    };
    assert_eq!(outcomes.len(), 6);
    let hazardous = outcomes.iter().filter(|o| o.is_hazardous()).count();
    assert_eq!(hazardous, running.hazards + running.collisions);
    plan.sink = SinkChoice::Stats;
    let PlanResult::Random(stats) = run_plan(&plan).unwrap() else {
        panic!("expected random stats");
    };
    assert_eq!(stats.hazards + stats.collisions, hazardous);
}
