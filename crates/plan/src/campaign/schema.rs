//! The plan file's TOML surface: emit a [`CampaignPlan`] as a document
//! tree and parse one back with strict unknown-key rejection. Every
//! section parser enforces its schema (types, ranges, kind-conditional
//! keys) so a typo is an error, never silently ignored.

use super::{
    AdaptiveSection, CampaignKind, CampaignPlan, ControlSection, OutputSpec, ScenarioSelection,
    SimSection, SinkChoice, SubmitSection,
};
use crate::scenario::{
    as_array, as_bool, as_float, as_str, as_table, as_uint, expect_keys, get,
    scenario_spec_from_toml, scenario_spec_to_toml,
};
use crate::toml::{emit_document, parse_document, Map, Toml};
use crate::PlanError;
use drivefi_ads::Signal;
use drivefi_fault::{CorruptionGrid, FaultSpace, ScalarFaultModel};
use drivefi_world::spec::ScenarioSpec;

fn model_names(models: &[ScalarFaultModel]) -> Toml {
    Toml::Array(models.iter().map(|m| Toml::Str(m.name())).collect())
}

fn fault_space_to_toml(space: &FaultSpace) -> Map {
    let default = FaultSpace::default();
    let signals = if space.scalars.items == default.scalars.items {
        Toml::Str("all".into())
    } else {
        Toml::Array(space.scalars.items.iter().map(|s| Toml::Str(s.name().into())).collect())
    };
    Map::from([
        ("signals".into(), signals),
        ("models".into(), model_names(&space.scalars.models)),
        (
            "modules".into(),
            Toml::Array(space.modules.iter().map(|m| Toml::Str(m.name())).collect()),
        ),
        ("first_scene".into(), Toml::Int(space.first_scene as i64)),
        ("tail_margin".into(), Toml::Int(space.tail_margin as i64)),
        ("window_scenes".into(), Toml::Int(space.window_scenes as i64)),
    ])
}

fn fault_space_from_toml(table: &Map) -> Result<FaultSpace, PlanError> {
    expect_keys(
        table,
        "[faults]",
        &["signals", "models", "modules", "first_scene", "tail_margin", "window_scenes"],
    )?;
    let default = FaultSpace::default();

    let signals: Vec<Signal> = match table.get("signals") {
        None => default.scalars.items.clone(),
        Some(Toml::Str(s)) if s == "all" => Signal::ALL.to_vec(),
        Some(Toml::Array(names)) => names
            .iter()
            .map(|n| {
                let name = as_str(n, "signal name")?;
                Signal::from_name(name)
                    .ok_or_else(|| PlanError::new(format!("unknown signal `{name}`")))
            })
            .collect::<Result<_, _>>()?,
        Some(other) => {
            return Err(PlanError::new(format!(
                "`signals` must be \"all\" or a list of names, got {}",
                other.type_name()
            )))
        }
    };

    let models: Vec<ScalarFaultModel> = match table.get("models") {
        None => default.scalars.models.clone(),
        Some(value) => as_array(value, "`models`")?
            .iter()
            .map(|m| {
                let name = as_str(m, "model name")?;
                ScalarFaultModel::parse(name)
                    .ok_or_else(|| PlanError::new(format!("unknown fault model `{name}`")))
            })
            .collect::<Result<_, _>>()?,
    };

    let modules = match table.get("modules") {
        None => Vec::new(),
        Some(value) => as_array(value, "`modules`")?
            .iter()
            .map(|m| {
                let name = as_str(m, "module fault name")?;
                FaultSpace::parse_module(name)
                    .ok_or_else(|| PlanError::new(format!("unknown module fault `{name}`")))
            })
            .collect::<Result<_, _>>()?,
    };

    let uint_or = |key: &str, fallback: u64| -> Result<u64, PlanError> {
        match table.get(key) {
            None => Ok(fallback),
            Some(v) => as_uint(v, &format!("`{key}`")),
        }
    };
    let first_scene = uint_or("first_scene", default.first_scene)?;
    let tail_margin = uint_or("tail_margin", default.tail_margin)?;
    let window_scenes = uint_or("window_scenes", default.window_scenes)?;
    if window_scenes == 0 {
        return Err(PlanError::new("`window_scenes` must be at least 1".into()));
    }

    let space = FaultSpace {
        scalars: CorruptionGrid::new(signals, models),
        modules,
        first_scene,
        tail_margin,
        window_scenes,
    };
    if space.kind_count() == 0 {
        return Err(PlanError::new(
            "the fault space is empty: no (signal, model) pairs and no module faults".into(),
        ));
    }
    Ok(space)
}

/// Converts a plan to its TOML document tree.
pub fn campaign_plan_to_toml(plan: &CampaignPlan) -> Map {
    let mut campaign = Map::from([
        ("seed".into(), Toml::Int(plan.seed as i64)),
        (
            "sink".into(),
            Toml::Str(match plan.sink {
                SinkChoice::Stats => "stats".into(),
                SinkChoice::Outcomes => "outcomes".into(),
            }),
        ),
    ]);
    match plan.kind {
        CampaignKind::Random { runs } => {
            campaign.insert("kind".into(), Toml::Str("random".into()));
            campaign.insert("runs".into(), Toml::Int(runs as i64));
        }
        CampaignKind::Exhaustive { scene_stride } => {
            campaign.insert("kind".into(), Toml::Str("exhaustive".into()));
            campaign.insert("scene_stride".into(), Toml::Int(scene_stride as i64));
            // The exhaustive driver has a fixed report and sweeps the
            // miner's candidate space — `sink` and `[faults]` are
            // rejected by the parser, so the emitter must omit them.
            campaign.remove("sink");
        }
        CampaignKind::Golden => {
            campaign.insert("kind".into(), Toml::Str("golden".into()));
            // Golden runs have no faults to sample and a fixed per-
            // scenario result shape; `sink` and `[faults]` are rejected
            // by the parser.
            campaign.remove("sink");
        }
        CampaignKind::Mine { scene_stride } => {
            campaign.insert("kind".into(), Toml::Str("mine".into()));
            campaign.insert("scene_stride".into(), Toml::Int(scene_stride as i64));
            // The mining pipeline sweeps the miner's candidate space and
            // reports through the store; `sink` and `[faults]` are
            // rejected by the parser.
            campaign.remove("sink");
        }
        CampaignKind::Adaptive { scene_stride, .. } => {
            campaign.insert("kind".into(), Toml::Str("adaptive".into()));
            campaign.insert("scene_stride".into(), Toml::Int(scene_stride as i64));
            // The acquisition loop scores the miner's candidate space
            // and reports through the store; `sink` and `[faults]` are
            // rejected by the parser.
            campaign.remove("sink");
        }
    }
    if let Some(workers) = plan.workers {
        campaign.insert("workers".into(), Toml::Int(workers as i64));
    }

    let scenarios = match &plan.scenarios {
        ScenarioSelection::Paper { count, seed } => Map::from([
            ("source".into(), Toml::Str("paper".into())),
            ("count".into(), Toml::Int(*count as i64)),
            ("seed".into(), Toml::Int(*seed as i64)),
        ]),
        ScenarioSelection::Extended { count, seed } => Map::from([
            ("source".into(), Toml::Str("extended".into())),
            ("count".into(), Toml::Int(*count as i64)),
            ("seed".into(), Toml::Int(*seed as i64)),
        ]),
        ScenarioSelection::Families { names, count, seed } => Map::from([
            ("source".into(), Toml::Str("families".into())),
            ("families".into(), Toml::Array(names.iter().map(|n| Toml::Str(n.clone())).collect())),
            ("count".into(), Toml::Int(*count as i64)),
            ("seed".into(), Toml::Int(*seed as i64)),
        ]),
        ScenarioSelection::Inline { specs, count, seed } => Map::from([
            ("source".into(), Toml::Str("inline".into())),
            (
                "spec".into(),
                Toml::Array(specs.iter().map(|s| Toml::Table(scenario_spec_to_toml(s))).collect()),
            ),
            ("count".into(), Toml::Int(*count as i64)),
            ("seed".into(), Toml::Int(*seed as i64)),
        ]),
        // The resolved specs are deliberately *not* embedded: the files
        // stay the source of truth, and re-saving a loaded plan keeps
        // its link to them (validate_plans' drift gate still applies).
        ScenarioSelection::Files { files, count, seed, .. } => Map::from([
            ("source".into(), Toml::Str("files".into())),
            ("files".into(), Toml::Array(files.iter().map(|f| Toml::Str(f.clone())).collect())),
            ("count".into(), Toml::Int(*count as i64)),
            ("seed".into(), Toml::Int(*seed as i64)),
        ]),
    };

    let mut doc = Map::from([
        ("name".into(), Toml::Str(plan.name.clone())),
        ("campaign".into(), Toml::Table(campaign)),
        ("scenarios".into(), Toml::Table(scenarios)),
    ]);
    if matches!(plan.kind, CampaignKind::Random { .. }) {
        doc.insert("faults".into(), Toml::Table(fault_space_to_toml(&plan.faults)));
    }
    // Like [sim]/[submit]/[control], a default [adaptive] section is
    // omitted, not emitted as noise.
    if let CampaignKind::Adaptive { adaptive, .. } = plan.kind {
        if adaptive != AdaptiveSection::default() {
            doc.insert(
                "adaptive".into(),
                Toml::Table(Map::from([
                    ("batch".into(), Toml::Int(adaptive.batch as i64)),
                    ("max_rounds".into(), Toml::Int(i64::from(adaptive.max_rounds))),
                    ("converge_eps".into(), Toml::Float(adaptive.converge_eps)),
                ])),
            );
        }
    }
    if plan.sim != SimSection::default() {
        let mut sim = Map::from([
            ("planner_divisor".into(), Toml::Int(i64::from(plan.sim.planner_divisor))),
            ("kalman_fusion".into(), Toml::Bool(plan.sim.kalman_fusion)),
            ("pid_smoothing".into(), Toml::Bool(plan.sim.pid_smoothing)),
            ("watchdog".into(), Toml::Bool(plan.sim.watchdog)),
        ]);
        if let Some(batch) = plan.sim.batch {
            sim.insert("batch".into(), Toml::Int(batch as i64));
        }
        doc.insert("sim".into(), Toml::Table(sim));
    }
    if let Some(output) = &plan.output {
        doc.insert(
            "output".into(),
            Toml::Table(Map::from([
                ("dir".into(), Toml::Str(output.dir.clone())),
                ("shards".into(), Toml::Int(i64::from(output.shards))),
                ("checkpoint_every".into(), Toml::Int(output.checkpoint_every as i64)),
            ])),
        );
    }
    if plan.submit != SubmitSection::default() {
        doc.insert(
            "submit".into(),
            Toml::Table(Map::from([("weight".into(), Toml::Int(i64::from(plan.submit.weight)))])),
        );
    }
    if plan.control != ControlSection::default() {
        doc.insert(
            "control".into(),
            Toml::Table(Map::from([("assert".into(), Toml::Bool(plan.control.assert_survivable))])),
        );
    }
    doc
}

/// Renders a plan as a TOML document string.
pub fn emit_campaign_plan(plan: &CampaignPlan) -> String {
    emit_document(&campaign_plan_to_toml(plan))
}

fn scenarios_from_toml(
    table: &Map,
    base_dir: Option<&std::path::Path>,
) -> Result<ScenarioSelection, PlanError> {
    expect_keys(table, "[scenarios]", &["source", "count", "seed", "families", "spec", "files"])?;
    let source = as_str(get(table, "[scenarios]", "source")?, "`source`")?;
    let count64 = as_uint(get(table, "[scenarios]", "count")?, "`count`")?;
    let count = u32::try_from(count64)
        .ok()
        .filter(|c| *c > 0)
        .ok_or_else(|| PlanError::new(format!("`count` must be in 1..=2^32-1, got {count64}")))?;
    let seed = as_uint(get(table, "[scenarios]", "seed")?, "`seed`")?;
    let forbid = |key: &str| -> Result<(), PlanError> {
        if table.contains_key(key) {
            return Err(PlanError::new(format!(
                "`{key}` is only valid with the matching `source`"
            )));
        }
        Ok(())
    };
    match source {
        "paper" => {
            forbid("families")?;
            forbid("spec")?;
            forbid("files")?;
            Ok(ScenarioSelection::Paper { count, seed })
        }
        "extended" => {
            forbid("families")?;
            forbid("spec")?;
            forbid("files")?;
            Ok(ScenarioSelection::Extended { count, seed })
        }
        "families" => {
            forbid("spec")?;
            forbid("files")?;
            let names: Vec<String> =
                as_array(get(table, "[scenarios]", "families")?, "`families`")?
                    .iter()
                    .map(|n| as_str(n, "family name").map(str::to_owned))
                    .collect::<Result<_, _>>()?;
            if names.is_empty() {
                return Err(PlanError::new("`families` must not be empty".into()));
            }
            let registry = drivefi_world::FamilyRegistry::builtin();
            for name in &names {
                if registry.get(name).is_none() {
                    return Err(PlanError::new(format!(
                        "unknown scenario family `{name}` (registered: {})",
                        registry.names().collect::<Vec<_>>().join(", ")
                    )));
                }
            }
            Ok(ScenarioSelection::Families { names, count, seed })
        }
        "inline" => {
            forbid("families")?;
            forbid("files")?;
            let specs: Vec<ScenarioSpec> = as_array(get(table, "[scenarios]", "spec")?, "`spec`")?
                .iter()
                .map(|s| scenario_spec_from_toml(as_table(s, "scenario spec")?))
                .collect::<Result<_, _>>()?;
            if specs.is_empty() {
                return Err(PlanError::new("`spec` must not be empty".into()));
            }
            Ok(ScenarioSelection::Inline { specs, count, seed })
        }
        "files" => {
            forbid("families")?;
            forbid("spec")?;
            let Some(base) = base_dir else {
                return Err(PlanError::new(
                    "`source = \"files\"` needs a plan file on disk (use CampaignPlan::load)"
                        .into(),
                ));
            };
            let files: Vec<String> = as_array(get(table, "[scenarios]", "files")?, "`files`")?
                .iter()
                .map(|f| as_str(f, "spec path").map(str::to_owned))
                .collect::<Result<_, _>>()?;
            if files.is_empty() {
                return Err(PlanError::new("`files` must not be empty".into()));
            }
            let specs: Vec<ScenarioSpec> = files
                .iter()
                .map(|f| crate::scenario::load_scenario_spec(base.join(f)))
                .collect::<Result<_, _>>()?;
            Ok(ScenarioSelection::Files { files, specs, count, seed })
        }
        other => Err(PlanError::new(format!(
            "unknown scenario source `{other}` (paper, extended, families, inline, files)"
        ))),
    }
}

pub(super) fn campaign_plan_from_toml(
    doc: &Map,
    base_dir: Option<&std::path::Path>,
) -> Result<CampaignPlan, PlanError> {
    expect_keys(
        doc,
        "campaign plan",
        &[
            "name",
            "campaign",
            "scenarios",
            "adaptive",
            "faults",
            "sim",
            "output",
            "submit",
            "control",
        ],
    )?;
    let name = as_str(get(doc, "campaign plan", "name")?, "`name`")?.to_owned();

    let campaign = as_table(get(doc, "campaign plan", "campaign")?, "[campaign]")?;
    expect_keys(
        campaign,
        "[campaign]",
        &["kind", "runs", "scene_stride", "seed", "workers", "sink"],
    )?;
    let kind_name = as_str(get(campaign, "[campaign]", "kind")?, "`kind`")?;
    let stride_or_1 = || -> Result<usize, PlanError> {
        let stride = match campaign.get("scene_stride") {
            None => 1,
            Some(v) => as_uint(v, "`scene_stride`")?,
        };
        if stride == 0 {
            return Err(PlanError::new("`scene_stride` must be at least 1".into()));
        }
        Ok(stride as usize)
    };
    let mut kind = match kind_name {
        "random" => {
            if campaign.contains_key("scene_stride") {
                return Err(PlanError::new(
                    "`scene_stride` is only valid for exhaustive campaigns".into(),
                ));
            }
            let runs = as_uint(get(campaign, "[campaign]", "runs")?, "`runs`")?;
            if runs == 0 {
                return Err(PlanError::new("`runs` must be at least 1".into()));
            }
            CampaignKind::Random { runs: runs as usize }
        }
        "exhaustive" => {
            if campaign.contains_key("runs") {
                return Err(PlanError::new("`runs` is only valid for random campaigns".into()));
            }
            if campaign.contains_key("sink") {
                return Err(PlanError::new(
                    "`sink` is only valid for random campaigns (the exhaustive report is fixed)"
                        .into(),
                ));
            }
            if doc.contains_key("faults") {
                return Err(PlanError::new(
                    "a `[faults]` section is only valid for random campaigns — exhaustive \
                     campaigns sweep the miner's candidate space"
                        .into(),
                ));
            }
            CampaignKind::Exhaustive { scene_stride: stride_or_1()? }
        }
        "golden" => {
            for key in ["runs", "scene_stride", "sink"] {
                if campaign.contains_key(key) {
                    return Err(PlanError::new(format!(
                        "`{key}` is not valid for golden campaigns (fault-free trace \
                         collection over the whole suite)"
                    )));
                }
            }
            if doc.contains_key("faults") {
                return Err(PlanError::new(
                    "a `[faults]` section is not valid for golden campaigns — golden runs \
                     inject nothing"
                        .into(),
                ));
            }
            CampaignKind::Golden
        }
        "mine" => {
            for key in ["runs", "sink"] {
                if campaign.contains_key(key) {
                    return Err(PlanError::new(format!(
                        "`{key}` is not valid for mine campaigns (the pipeline's stages and \
                         report shape are fixed)"
                    )));
                }
            }
            if doc.contains_key("faults") {
                return Err(PlanError::new(
                    "a `[faults]` section is not valid for mine campaigns — the miner \
                     sweeps its own candidate space"
                        .into(),
                ));
            }
            CampaignKind::Mine { scene_stride: stride_or_1()? }
        }
        "adaptive" => {
            for key in ["runs", "sink"] {
                if campaign.contains_key(key) {
                    return Err(PlanError::new(format!(
                        "`{key}` is not valid for adaptive campaigns (the acquisition loop's \
                         stages and report shape are fixed)"
                    )));
                }
            }
            if doc.contains_key("faults") {
                return Err(PlanError::new(
                    "a `[faults]` section is not valid for adaptive campaigns — the \
                     acquisition loop scores the miner's candidate space"
                        .into(),
                ));
            }
            CampaignKind::Adaptive {
                scene_stride: stride_or_1()?,
                adaptive: AdaptiveSection::default(),
            }
        }
        other => {
            return Err(PlanError::new(format!(
                "unknown campaign kind `{other}` (random, exhaustive, golden, mine, adaptive)"
            )))
        }
    };
    let seed = match campaign.get("seed") {
        None => 0,
        Some(v) => as_uint(v, "`seed`")?,
    };
    let workers = match campaign.get("workers") {
        None => None,
        Some(v) => {
            let w = as_uint(v, "`workers`")?;
            if w == 0 {
                return Err(PlanError::new("`workers` must be at least 1".into()));
            }
            Some(w as usize)
        }
    };
    let sink = match campaign.get("sink") {
        None => SinkChoice::Stats,
        Some(v) => match as_str(v, "`sink`")? {
            "stats" => SinkChoice::Stats,
            "outcomes" => SinkChoice::Outcomes,
            other => {
                return Err(PlanError::new(format!("unknown sink `{other}` (stats, outcomes)")))
            }
        },
    };

    let scenarios = scenarios_from_toml(
        as_table(get(doc, "campaign plan", "scenarios")?, "[scenarios]")?,
        base_dir,
    )?;

    let faults = match doc.get("faults") {
        None => FaultSpace::default(),
        Some(value) => fault_space_from_toml(as_table(value, "[faults]")?)?,
    };

    match doc.get("adaptive") {
        None => {}
        Some(value) => {
            let CampaignKind::Adaptive { adaptive, .. } = &mut kind else {
                return Err(PlanError::new(
                    "an `[adaptive]` section is only valid for adaptive campaigns".into(),
                ));
            };
            *adaptive = adaptive_section_from_toml(as_table(value, "[adaptive]")?)?;
        }
    }

    let sim = match doc.get("sim") {
        None => SimSection::default(),
        Some(value) => sim_section_from_toml(as_table(value, "[sim]")?)?,
    };

    let output = match doc.get("output") {
        None => None,
        Some(value) => {
            if sink == SinkChoice::Outcomes {
                return Err(PlanError::new(
                    "`sink = \"outcomes\"` cannot be combined with an `[output]` store — \
                     the per-job outcomes are the store's jobs.csv"
                        .into(),
                ));
            }
            Some(output_spec_from_toml(as_table(value, "[output]")?)?)
        }
    };
    if matches!(kind, CampaignKind::Mine { .. }) && output.is_none() {
        return Err(PlanError::new(
            "`kind = \"mine\"` needs an [output] section — the pipeline persists golden \
             traces and resumes its fit and validation sweep from them"
                .into(),
        ));
    }
    if matches!(kind, CampaignKind::Adaptive { .. }) && output.is_none() {
        return Err(PlanError::new(
            "`kind = \"adaptive\"` needs an [output] section — the acquisition loop persists \
             golden traces and per-round sub-stores and resumes from them"
                .into(),
        ));
    }

    let submit = match doc.get("submit") {
        None => SubmitSection::default(),
        Some(value) => submit_section_from_toml(as_table(value, "[submit]")?)?,
    };

    let control = match doc.get("control") {
        None => ControlSection::default(),
        Some(value) => control_section_from_toml(as_table(value, "[control]")?)?,
    };

    Ok(CampaignPlan {
        name,
        kind,
        seed,
        workers,
        sink,
        scenarios,
        faults,
        sim,
        output,
        submit,
        control,
    })
}

fn adaptive_section_from_toml(table: &Map) -> Result<AdaptiveSection, PlanError> {
    expect_keys(table, "[adaptive]", &["batch", "max_rounds", "converge_eps"])?;
    let default = AdaptiveSection::default();
    let batch = match table.get("batch") {
        None => default.batch,
        Some(v) => {
            let b = as_uint(v, "`batch`")?;
            if b == 0 {
                return Err(PlanError::new("`batch` must be at least 1".into()));
            }
            usize::try_from(b).map_err(|_| {
                PlanError::new(format!("`batch` does not fit this platform's usize: {b}"))
            })?
        }
    };
    let max_rounds = match table.get("max_rounds") {
        None => default.max_rounds,
        Some(v) => {
            let r = as_uint(v, "`max_rounds`")?;
            u32::try_from(r).ok().filter(|r| *r >= 1).ok_or_else(|| {
                PlanError::new(format!("`max_rounds` must be in 1..=2^32-1, got {r}"))
            })?
        }
    };
    let converge_eps = match table.get("converge_eps") {
        None => default.converge_eps,
        Some(v) => {
            let e = as_float(v, "`converge_eps`")?;
            if !e.is_finite() || e < 0.0 {
                return Err(PlanError::new(format!(
                    "`converge_eps` must be a finite value >= 0, got {e}"
                )));
            }
            e
        }
    };
    Ok(AdaptiveSection { batch, max_rounds, converge_eps })
}

fn control_section_from_toml(table: &Map) -> Result<ControlSection, PlanError> {
    expect_keys(table, "[control]", &["assert"])?;
    let assert_survivable = match table.get("assert") {
        None => ControlSection::default().assert_survivable,
        Some(v) => as_bool(v, "`assert`")?,
    };
    Ok(ControlSection { assert_survivable })
}

fn submit_section_from_toml(table: &Map) -> Result<SubmitSection, PlanError> {
    expect_keys(table, "[submit]", &["weight"])?;
    let weight = match table.get("weight") {
        None => SubmitSection::default().weight,
        Some(v) => {
            let w = as_uint(v, "`weight`")?;
            u32::try_from(w)
                .ok()
                .filter(|w| (1..=SubmitSection::MAX_WEIGHT).contains(w))
                .ok_or_else(|| {
                    PlanError::new(format!(
                        "`weight` must be in 1..={}, got {w}",
                        SubmitSection::MAX_WEIGHT
                    ))
                })?
        }
    };
    Ok(SubmitSection { weight })
}

fn sim_section_from_toml(table: &Map) -> Result<SimSection, PlanError> {
    expect_keys(
        table,
        "[sim]",
        &["planner_divisor", "kalman_fusion", "pid_smoothing", "watchdog", "batch"],
    )?;
    let default = SimSection::default();
    let planner_divisor = match table.get("planner_divisor") {
        None => default.planner_divisor,
        Some(v) => {
            let d = as_uint(v, "`planner_divisor`")?;
            u32::try_from(d).ok().filter(|d| *d >= 1).ok_or_else(|| {
                PlanError::new(format!("`planner_divisor` must be in 1..=2^32-1, got {d}"))
            })?
        }
    };
    let bool_or = |key: &str, fallback: bool| -> Result<bool, PlanError> {
        match table.get(key) {
            None => Ok(fallback),
            Some(v) => as_bool(v, &format!("`{key}`")),
        }
    };
    let batch = match table.get("batch") {
        None => None,
        Some(v) => {
            let b = as_uint(v, "`batch`")?;
            if b == 0 {
                return Err(PlanError::new("`batch` must be at least 1".into()));
            }
            Some(usize::try_from(b).map_err(|_| {
                PlanError::new(format!("`batch` does not fit this platform's usize: {b}"))
            })?)
        }
    };
    Ok(SimSection {
        planner_divisor,
        kalman_fusion: bool_or("kalman_fusion", default.kalman_fusion)?,
        pid_smoothing: bool_or("pid_smoothing", default.pid_smoothing)?,
        watchdog: bool_or("watchdog", default.watchdog)?,
        batch,
    })
}

fn output_spec_from_toml(table: &Map) -> Result<OutputSpec, PlanError> {
    expect_keys(table, "[output]", &["dir", "shards", "checkpoint_every"])?;
    let dir = as_str(get(table, "[output]", "dir")?, "`dir`")?.to_owned();
    if dir.is_empty() {
        return Err(PlanError::new("`dir` must not be empty".into()));
    }
    let shards = match table.get("shards") {
        None => OutputSpec::DEFAULT_SHARDS,
        Some(v) => {
            let s = as_uint(v, "`shards`")?;
            u32::try_from(s)
                .ok()
                .filter(|s| (1..=4096).contains(s))
                .ok_or_else(|| PlanError::new(format!("`shards` must be in 1..=4096, got {s}")))?
        }
    };
    let checkpoint_every = match table.get("checkpoint_every") {
        None => OutputSpec::DEFAULT_CHECKPOINT_EVERY,
        Some(v) => {
            let c = as_uint(v, "`checkpoint_every`")?;
            if c == 0 {
                return Err(PlanError::new("`checkpoint_every` must be at least 1".into()));
            }
            c
        }
    };
    Ok(OutputSpec { dir, shards, checkpoint_every })
}

/// Parses a plan from TOML text. File-based scenario sources
/// (`source = "files"`) are rejected here — use [`CampaignPlan::load`]
/// so relative spec paths have a base directory.
///
/// # Errors
///
/// Returns a [`PlanError`] on syntax errors or schema violations.
pub fn parse_campaign_plan(src: &str) -> Result<CampaignPlan, PlanError> {
    campaign_plan_from_toml(&parse_document(src)?, None)
}
