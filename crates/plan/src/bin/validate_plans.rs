//! CI gate: every shipped `.toml` under `plans/` must parse, and every
//! scenario-spec file whose name matches a builtin family must parse to
//! *exactly* the registered spec (so the shipped files never drift from
//! the compiled-in families).
//!
//! ```text
//! cargo run --release -p drivefi-plan --bin validate_plans [plans_dir]
//! ```
//!
//! Exits non-zero on the first invalid file. Files directly under the
//! root are campaign plans; files under `scenarios/` are scenario specs.

use drivefi_plan::{emit_scenario_spec, load_scenario_spec, CampaignPlan};
use drivefi_world::FamilyRegistry;
use std::path::Path;

fn toml_files(dir: &Path) -> Vec<std::path::PathBuf> {
    let mut files: Vec<_> = std::fs::read_dir(dir)
        .unwrap_or_else(|e| panic!("reading {}: {e}", dir.display()))
        .filter_map(|entry| {
            let path = entry.expect("directory entry").path();
            (path.extension().is_some_and(|e| e == "toml")).then_some(path)
        })
        .collect();
    files.sort();
    files
}

fn main() {
    let dir = std::env::args().nth(1).unwrap_or_else(|| "plans".into());
    let dir = Path::new(&dir);
    let mut checked = 0;

    for path in toml_files(dir) {
        let plan = match CampaignPlan::load(&path) {
            Ok(plan) => plan,
            Err(e) => {
                eprintln!("INVALID plan {}: {e}", path.display());
                std::process::exit(1);
            }
        };
        let suite = plan.scenarios.build_suite();
        println!(
            "ok plan     {} ({:?}, {} scenarios, {} fault kinds)",
            path.display(),
            plan.kind,
            suite.scenarios.len(),
            plan.faults.kind_count()
        );
        checked += 1;
    }

    let scenario_dir = dir.join("scenarios");
    if scenario_dir.is_dir() {
        let registry = FamilyRegistry::builtin();
        for path in toml_files(&scenario_dir) {
            let spec = match load_scenario_spec(&path) {
                Ok(spec) => spec,
                Err(e) => {
                    eprintln!("INVALID scenario spec {}: {e}", path.display());
                    std::process::exit(1);
                }
            };
            // A file named after a builtin family must match it exactly.
            let stem = path.file_stem().and_then(|s| s.to_str()).unwrap_or_default();
            if let Some(builtin) = registry.get(stem) {
                if &spec != builtin {
                    eprintln!(
                        "DRIFT: {} no longer matches the registered `{stem}` family.\n\
                         Regenerate it with emit_scenario_spec; expected:\n{}",
                        path.display(),
                        emit_scenario_spec(builtin)
                    );
                    std::process::exit(1);
                }
            }
            let sampled = spec.sample(0, 2026);
            println!(
                "ok scenario {} (`{}`, {} actors at seed 2026)",
                path.display(),
                spec.name,
                sampled.actors.len()
            );
            checked += 1;
        }
    }

    if checked == 0 {
        eprintln!("no .toml files found under {}", dir.display());
        std::process::exit(1);
    }
    println!("{checked} plan files valid");
}
