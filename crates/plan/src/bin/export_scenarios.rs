//! Writes the canonical `.toml` spec file of one or more builtin
//! scenario families (default: the four DSL-native ones shipped under
//! `plans/scenarios/`). Re-run after editing a family in
//! `drivefi-world::spec` so the shipped files stay drift-free — the
//! `validate_plans` CI gate compares them against the registry.
//!
//! ```text
//! cargo run --release -p drivefi-plan --bin export_scenarios [out_dir] [family...]
//! ```

use drivefi_plan::save_scenario_spec;
use drivefi_world::FamilyRegistry;

fn main() {
    let mut args = std::env::args().skip(1);
    let out_dir = args.next().unwrap_or_else(|| "plans/scenarios".into());
    let mut families: Vec<String> = args.collect();
    if families.is_empty() {
        families = ["tailgater", "multi_lane_weave", "debris_field", "shockwave_pedestrian"]
            .map(String::from)
            .to_vec();
    }

    std::fs::create_dir_all(&out_dir).expect("creating the output directory");
    let registry = FamilyRegistry::builtin();
    for family in &families {
        let spec = registry
            .get(family)
            .unwrap_or_else(|| panic!("`{family}` is not a registered scenario family"));
        let path = format!("{out_dir}/{family}.toml");
        save_scenario_spec(&path, spec).expect("writing the spec file");
        println!("wrote {path}");
    }
}
