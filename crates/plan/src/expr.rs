//! Text form of the scenario DSL's arithmetic [`Expr`]s.
//!
//! Scenario-spec files store expressions as strings (`"ego.v + 4.0"`,
//! `"min(ego.set_speed - dv, 33.5)"`). This module provides the
//! recursive-descent parser and the precedence-aware emitter; the pair
//! is exact — `parse_expr(emit_expr(e)) == e` for every expression tree
//! (the property the round-trip tests pin), because the emitter
//! parenthesizes exactly where the left-associative grammar would
//! otherwise rebuild a different tree.
//!
//! Grammar:
//!
//! ```text
//! expr   := term (('+' | '-') term)*
//! term   := factor (('*' | '/') factor)*
//! factor := number | ident | '-' factor | func '(' expr ',' expr ')' | '(' expr ')'
//! func   := 'min' | 'max'
//! ```
//!
//! Identifiers may contain dots (`ego.set_speed`); `min`/`max` are
//! reserved function names when followed by `(`.

use crate::PlanError;
use drivefi_world::spec::{intern, Expr};

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Number(f64),
    Ident(String),
    Plus,
    Minus,
    Star,
    Slash,
    Comma,
    Open,
    Close,
}

fn tokenize(src: &str) -> Result<Vec<Token>, PlanError> {
    let bytes = src.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b' ' | b'\t' => i += 1,
            b'+' => {
                tokens.push(Token::Plus);
                i += 1;
            }
            b'-' => {
                tokens.push(Token::Minus);
                i += 1;
            }
            b'*' => {
                tokens.push(Token::Star);
                i += 1;
            }
            b'/' => {
                tokens.push(Token::Slash);
                i += 1;
            }
            b',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            b'(' => {
                tokens.push(Token::Open);
                i += 1;
            }
            b')' => {
                tokens.push(Token::Close);
                i += 1;
            }
            b'0'..=b'9' | b'.' => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_digit()
                        || bytes[i] == b'.'
                        || bytes[i] == b'e'
                        || bytes[i] == b'E'
                        || ((bytes[i] == b'+' || bytes[i] == b'-')
                            && matches!(bytes[i - 1], b'e' | b'E')))
                {
                    i += 1;
                }
                let text = &src[start..i];
                let value = text.parse::<f64>().map_err(|_| {
                    PlanError::new(format!("malformed number `{text}` in expression `{src}`"))
                })?;
                tokens.push(Token::Number(value));
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_' || bytes[i] == b'.')
                {
                    i += 1;
                }
                tokens.push(Token::Ident(src[start..i].to_owned()));
            }
            other => {
                return Err(PlanError::new(format!(
                    "unexpected character `{}` in expression `{src}`",
                    other as char
                )))
            }
        }
    }
    Ok(tokens)
}

struct ExprParser<'a> {
    tokens: &'a [Token],
    pos: usize,
    src: &'a str,
}

impl<'a> ExprParser<'a> {
    fn err(&self, message: impl std::fmt::Display) -> PlanError {
        PlanError::new(format!("{message} in expression `{}`", self.src))
    }

    fn peek(&self) -> Option<&'a Token> {
        self.tokens.get(self.pos)
    }

    fn bump(&mut self) -> Option<&'a Token> {
        let t = self.tokens.get(self.pos);
        self.pos += 1;
        t
    }

    fn expr(&mut self) -> Result<Expr, PlanError> {
        let mut lhs = self.term()?;
        loop {
            match self.peek() {
                Some(Token::Plus) => {
                    self.pos += 1;
                    lhs = lhs + self.term()?;
                }
                Some(Token::Minus) => {
                    self.pos += 1;
                    lhs = lhs - self.term()?;
                }
                _ => return Ok(lhs),
            }
        }
    }

    fn term(&mut self) -> Result<Expr, PlanError> {
        let mut lhs = self.factor()?;
        loop {
            match self.peek() {
                Some(Token::Star) => {
                    self.pos += 1;
                    lhs = lhs * self.factor()?;
                }
                Some(Token::Slash) => {
                    self.pos += 1;
                    lhs = lhs / self.factor()?;
                }
                _ => return Ok(lhs),
            }
        }
    }

    fn factor(&mut self) -> Result<Expr, PlanError> {
        match self.bump() {
            Some(Token::Number(n)) => Ok(Expr::Const(*n)),
            Some(Token::Minus) => {
                // A minus directly on a number literal is the literal's
                // sign (`-2.5` round-trips as Const(-2.5)); anything else
                // is negation.
                if let Some(Token::Number(n)) = self.peek() {
                    self.pos += 1;
                    Ok(Expr::Const(-n))
                } else {
                    Ok(-self.factor()?)
                }
            }
            Some(Token::Open) => {
                let inner = self.expr()?;
                match self.bump() {
                    Some(Token::Close) => Ok(inner),
                    _ => Err(self.err("expected `)`")),
                }
            }
            Some(Token::Ident(name)) => {
                if self.peek() == Some(&Token::Open) {
                    self.pos += 1;
                    let a = self.expr()?;
                    if self.bump() != Some(&Token::Comma) {
                        return Err(
                            self.err(format!("`{name}` takes two comma-separated arguments"))
                        );
                    }
                    let b = self.expr()?;
                    if self.bump() != Some(&Token::Close) {
                        return Err(self.err(format!("unterminated `{name}(...)` call")));
                    }
                    match name.as_str() {
                        "min" => Ok(a.min(b)),
                        "max" => Ok(a.max(b)),
                        other => Err(self.err(format!("unknown function `{other}`"))),
                    }
                } else {
                    Ok(Expr::Var(intern(name)))
                }
            }
            Some(other) => Err(self.err(format!("unexpected token {other:?}"))),
            None => Err(self.err("unexpected end")),
        }
    }
}

/// Parses the text form of an expression.
///
/// # Errors
///
/// Returns a [`PlanError`] on malformed syntax, unknown functions, or
/// trailing input.
pub fn parse_expr(src: &str) -> Result<Expr, PlanError> {
    let tokens = tokenize(src)?;
    let mut parser = ExprParser { tokens: &tokens, pos: 0, src };
    let expr = parser.expr()?;
    if parser.pos != tokens.len() {
        return Err(parser.err("trailing input"));
    }
    Ok(expr)
}

/// Binding strength: atoms 4, unary minus 3, `* /` 2, `+ -` 1.
fn prec(e: &Expr) -> u8 {
    match e {
        Expr::Const(_) | Expr::Var(_) | Expr::Min(_, _) | Expr::Max(_, _) => 4,
        Expr::Neg(_) => 3,
        Expr::Mul(_, _) | Expr::Div(_, _) => 2,
        Expr::Add(_, _) | Expr::Sub(_, _) => 1,
    }
}

fn emit(e: &Expr, ctx: u8, out: &mut String) {
    let p = prec(e);
    if p < ctx {
        out.push('(');
    }
    match e {
        Expr::Const(c) => out.push_str(&format!("{c:?}")),
        Expr::Var(v) => out.push_str(v),
        Expr::Add(a, b) => {
            emit(a, 1, out);
            out.push_str(" + ");
            emit(b, 2, out);
        }
        Expr::Sub(a, b) => {
            emit(a, 1, out);
            out.push_str(" - ");
            emit(b, 2, out);
        }
        Expr::Mul(a, b) => {
            emit(a, 2, out);
            out.push_str(" * ");
            emit(b, 3, out);
        }
        Expr::Div(a, b) => {
            emit(a, 2, out);
            out.push_str(" / ");
            emit(b, 3, out);
        }
        Expr::Neg(x) => {
            out.push('-');
            // A literal directly under negation must keep its own
            // parentheses, or the parser would fold the sign into the
            // literal and rebuild Const(-c) instead of Neg(Const(c)).
            if matches!(**x, Expr::Const(_)) {
                out.push('(');
                emit(x, 0, out);
                out.push(')');
            } else {
                emit(x, 3, out);
            }
        }
        Expr::Min(a, b) => {
            out.push_str("min(");
            emit(a, 0, out);
            out.push_str(", ");
            emit(b, 0, out);
            out.push(')');
        }
        Expr::Max(a, b) => {
            out.push_str("max(");
            emit(a, 0, out);
            out.push_str(", ");
            emit(b, 0, out);
            out.push(')');
        }
    }
    if p < ctx {
        out.push(')');
    }
}

/// Renders an expression in the canonical text form.
pub fn emit_expr(e: &Expr) -> String {
    let mut out = String::new();
    emit(e, 0, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use drivefi_world::spec::{lit, var};

    #[test]
    fn parses_basic_arithmetic() {
        assert_eq!(parse_expr("1 + 2 * 3").unwrap(), lit(1.0) + lit(2.0) * lit(3.0));
        assert_eq!(parse_expr("(1 + 2) * 3").unwrap(), (lit(1.0) + lit(2.0)) * lit(3.0));
        assert_eq!(parse_expr("ego.v").unwrap(), var("ego.v"));
        assert_eq!(parse_expr("-x").unwrap(), -var("x"));
        assert_eq!(parse_expr("-2.5").unwrap(), lit(-2.5));
        assert_eq!(parse_expr("min(a, max(b, 1.0))").unwrap(), var("a").min(var("b").max(1.0)));
    }

    #[test]
    fn associativity_is_preserved() {
        // a - b - c parses left-associated…
        assert_eq!(parse_expr("a - b - c").unwrap(), var("a") - var("b") - var("c"));
        // …and the emitter re-parenthesizes right-nested trees.
        let right = var("a") - (var("b") - var("c"));
        assert_eq!(emit_expr(&right), "a - (b - c)");
        assert_eq!(parse_expr(&emit_expr(&right)).unwrap(), right);
    }

    #[test]
    fn tricky_trees_round_trip() {
        let cases = vec![
            -(var("a") * var("b")),
            -(-var("a")),
            Expr::Neg(Box::new(lit(2.0))),
            (var("a") + 1.0) / (var("b") - 2.0),
            var("gap") * (var("ego.v") + var("dv")).max(15.0),
            lit(0.5) * var("accel") * var("t") * var("t"),
            (var("x") - 4.5) * -var("y"),
        ];
        for e in cases {
            let text = emit_expr(&e);
            assert_eq!(parse_expr(&text).unwrap(), e, "via `{text}`");
        }
    }

    #[test]
    fn malformed_expressions_are_rejected() {
        for src in ["", "1 +", "foo(1, 2)", "min(1)", "a b", "1 ^ 2", "(1", "min(1, 2"] {
            assert!(parse_expr(src).is_err(), "`{src}` should not parse");
        }
    }
}
