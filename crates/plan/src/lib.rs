//! Declarative campaign plans for DriveFI.
//!
//! AVFI frames fault injection as a *configurable service* over
//! scenario × fault spaces; this crate is that service's file format
//! and runner. Everything a campaign needs is data:
//!
//! * [`toml`] — a hand-rolled TOML-subset parser/emitter (the build
//!   environment has no crates.io access, so no `serde`);
//! * [`expr`] — the text grammar for the scenario DSL's arithmetic
//!   expressions;
//! * [`scenario`] — [`drivefi_world::spec::ScenarioSpec`] ⇄ TOML, so
//!   scenario families ship as files without recompiling;
//! * [`campaign`] — [`CampaignPlan`]: campaign kind + scenario
//!   selection + [`drivefi_fault::FaultSpace`] + budget/seed/workers +
//!   sink choice + ablation switches + persistent `[output]` store,
//!   with [`run_plan`] executing through the same
//!   `CampaignEngine`-backed drivers as the typed API;
//! * [`report`] — [`PlanReport`]: the round-trip result artifact
//!   (summary TOML + per-job CSV) aggregated from a `drivefi-store`
//!   directory, so whole experiments round-trip (plan in → report out)
//!   as files.
//!
//! # Example
//!
//! ```no_run
//! use drivefi_plan::{run_plan, CampaignPlan, PlanResult};
//!
//! let plan = CampaignPlan::load("plans/random_baseline.toml").unwrap();
//! match run_plan(&plan).unwrap() {
//!     PlanResult::Random(stats) => println!("hazard rate {:.3}", stats.hazard_rate()),
//!     other => println!("{other:?}"),
//! }
//! ```

pub mod campaign;
pub mod diff;
pub mod expr;
pub mod render;
pub mod report;
pub mod scenario;
pub mod toml;

pub use campaign::{
    campaign_fingerprint, campaign_plan_to_toml, emit_campaign_plan, parse_campaign_plan,
    round_dirs, round_subdir, run_plan, run_plan_budget, AdaptiveProgress, AdaptiveSection,
    CampaignKind, CampaignPlan, ControlSection, ControlVerdict, OutputSpec, PlanResult,
    RoundSummary, ScenarioSelection, SimSection, SinkChoice, SubmitSection, CONTROL_FILE,
    FINGERPRINT_EXCLUDED, GOLDEN_SUBDIR, ROUNDS_FILE, ROUND_PREFIX, SWEEP_SUBDIR, VALIDATE_SUBDIR,
};
pub use diff::{diff_records, diff_stores, CellDelta, StoreDiff};
pub use expr::{emit_expr, parse_expr};
pub use render::{
    ads_profile_rows, report_document, to_html, to_markdown, Document, RenderContext, Section,
    Table,
};
pub use report::{csv_header, csv_row, known_fault_filter, PlanReport, JOBS_FILE, REPORT_FILE};
pub use scenario::{
    emit_scenario_spec, load_scenario_spec, parse_scenario_spec, save_scenario_spec,
    scenario_spec_from_toml, scenario_spec_to_toml,
};

/// An error from parsing, validating, loading, or saving plan files.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanError {
    message: String,
}

impl PlanError {
    /// An error carrying `message`.
    pub fn new(message: String) -> Self {
        PlanError { message }
    }
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for PlanError {}
