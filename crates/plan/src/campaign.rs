//! Declarative campaign plans: run any campaign from a `.toml` file.
//!
//! A [`CampaignPlan`] is the whole experiment as data — which campaign
//! to run, over which scenarios, sweeping which [`FaultSpace`], with
//! which budget/seed/workers and which sink:
//!
//! ```toml
//! name = "random-baseline"
//!
//! [campaign]
//! kind = "random"     # or "exhaustive"
//! runs = 60
//! seed = 1
//! sink = "stats"      # or "outcomes" (per-run outcome list)
//!
//! [scenarios]
//! source = "paper"    # "paper" | "extended" | "families" | "inline" | "files"
//! count = 8
//! seed = 42
//!
//! [faults]
//! signals = "all"     # or a list of signal names
//! models = ["min", "max"]
//! modules = []        # e.g. ["world.clear", "planning.hang"]
//! first_scene = 1
//! tail_margin = 1
//! window_scenes = 1
//! ```
//!
//! [`run_plan`] executes a plan through the exact same driver code the
//! typed API uses ([`drivefi_core::random_space_campaign`],
//! [`drivefi_core::exhaustive_comparison`]), so a plan file reproduces
//! the typed calls number-for-number — the `campaign_plan` example
//! asserts this equality end to end.

use crate::report::PlanReport;
use crate::scenario::{
    as_array, as_bool, as_str, as_table, as_uint, expect_keys, get, scenario_spec_from_toml,
    scenario_spec_to_toml,
};
use crate::toml::{emit_document, parse_document, Map, Toml};
use crate::PlanError;
use drivefi_ads::Signal;
use drivefi_core::{
    candidate_record_metas, candidate_specs, collect_golden_traces, exhaustive_comparison,
    golden_record_metas, pick_record_metas, random_fault_picks, random_space_campaign,
    BayesianMiner, ExhaustiveReport, MinerConfig, RandomCampaignConfig, RandomCampaignStats,
};
use drivefi_fault::{CorruptionGrid, FaultSpace, ScalarFaultModel};
use drivefi_obs::{EventLog, Field};
use drivefi_sim::{
    CampaignEngine, CampaignJob, Outcome, RunningStats, SimConfig, Simulation, Tee, Trace,
};
use drivefi_store::{open_store, open_store_with_traces, read_store, RecordMeta, StoreSink};
use drivefi_world::spec::ScenarioSpec;
use drivefi_world::ScenarioSuite;
use std::sync::Arc;

/// Which campaign a plan runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CampaignKind {
    /// The random baseline: `runs` faults sampled uniformly from the
    /// fault space × scenario suite.
    Random {
        /// Number of injection runs.
        runs: usize,
    },
    /// The exhaustive ground-truth comparison (golden traces → miner fit
    /// → inject every candidate → precision/recall).
    Exhaustive {
        /// Evaluate every `scene_stride`-th eligible scene.
        scene_stride: usize,
    },
    /// Golden-trace collection: every suite scenario driven fault-free
    /// through a [`TraceSink`](drivefi_sim::TraceSink) — the plan-driven
    /// form of [`collect_golden_traces`], so baseline runs ship as plan
    /// files too.
    Golden,
    /// The paper's full Bayesian pipeline (§III-B), store-backed and
    /// resumable at every stage: golden runs persist their traces to
    /// `dir/golden/`, the 3-TBN fits **from the persisted traces**
    /// ([`BayesianMiner::fit_from_store`]), the mined `F_crit` validates
    /// by real injection into `dir/validate/`, and the final report
    /// aggregates the validation records. Requires an `[output]` store.
    Mine {
        /// Evaluate every `scene_stride`-th eligible scene when mining.
        scene_stride: usize,
    },
}

impl CampaignKind {
    /// Stable kind name, as written in plan files and report summaries.
    pub fn name(&self) -> &'static str {
        match self {
            CampaignKind::Random { .. } => "random",
            CampaignKind::Exhaustive { .. } => "exhaustive",
            CampaignKind::Golden => "golden",
            CampaignKind::Mine { .. } => "mine",
        }
    }

    /// For store-backed pipeline kinds, the sub-store (relative to the
    /// `[output]` dir) whose records the final report aggregates —
    /// `None` for single-stage kinds, whose store *is* the output dir.
    pub fn store_subdir(&self) -> Option<&'static str> {
        match self {
            CampaignKind::Mine { .. } => Some(VALIDATE_SUBDIR),
            CampaignKind::Exhaustive { .. } => Some(SWEEP_SUBDIR),
            CampaignKind::Random { .. } | CampaignKind::Golden => None,
        }
    }
}

/// Golden-stage sub-store of a pipeline output directory (trace-logging).
pub const GOLDEN_SUBDIR: &str = "golden";
/// Validation-stage sub-store of a `kind = "mine"` output directory.
pub const VALIDATE_SUBDIR: &str = "validate";
/// Sweep-stage sub-store of a store-backed exhaustive output directory.
pub const SWEEP_SUBDIR: &str = "sweep";

/// Which sink consumes a random campaign's results.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SinkChoice {
    /// Constant-memory streaming statistics ([`RandomCampaignStats`]).
    Stats,
    /// Statistics plus the per-run outcome list, in submission order.
    Outcomes,
}

/// The scenario workload of a plan.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioSelection {
    /// `count` scenarios cycling the paper-era family mix
    /// ([`ScenarioSuite::generate`]).
    Paper {
        /// Suite size.
        count: u32,
        /// Suite seed.
        seed: u64,
    },
    /// `count` scenarios cycling the extended mix
    /// ([`ScenarioSuite::extended`]).
    Extended {
        /// Suite size.
        count: u32,
        /// Suite seed.
        seed: u64,
    },
    /// `count` scenarios cycling the named registry families.
    Families {
        /// Builtin family names, cycled in order.
        names: Vec<String>,
        /// Suite size.
        count: u32,
        /// Suite seed.
        seed: u64,
    },
    /// `count` scenarios cycling inline specs that never touch the
    /// builtin registry.
    Inline {
        /// The specs, cycled in order.
        specs: Vec<ScenarioSpec>,
        /// Suite size.
        count: u32,
        /// Suite seed.
        seed: u64,
    },
    /// `count` scenarios cycling specs loaded from `.toml` files. The
    /// file paths (relative to the plan file) are kept alongside the
    /// resolved specs, so a loaded plan re-saves as `source = "files"`
    /// instead of silently degrading to an inline copy.
    Files {
        /// Spec paths, relative to the plan file's directory.
        files: Vec<String>,
        /// The specs those files resolved to at load time.
        specs: Vec<ScenarioSpec>,
        /// Suite size.
        count: u32,
        /// Suite seed.
        seed: u64,
    },
}

impl ScenarioSelection {
    /// Builds the scenario suite this selection describes.
    pub fn build_suite(&self) -> ScenarioSuite {
        match self {
            ScenarioSelection::Paper { count, seed } => ScenarioSuite::generate(*count, *seed),
            ScenarioSelection::Extended { count, seed } => ScenarioSuite::extended(*count, *seed),
            ScenarioSelection::Families { names, count, seed } => {
                let names: Vec<&str> = names.iter().map(String::as_str).collect();
                ScenarioSuite::from_families(&names, *count, *seed)
            }
            ScenarioSelection::Inline { specs, count, seed }
            | ScenarioSelection::Files { specs, count, seed, .. } => {
                ScenarioSuite::from_specs(specs, *count, *seed)
            }
        }
    }
}

/// The `[sim]` plan section: the [`AdsConfig`](drivefi_ads::AdsConfig)
/// ablation switches, so resilience-mechanism ablations (the paper's
/// "why do random injections never land?" studies) are plan-driven too.
/// Defaults mirror [`AdsConfig::default`]; the section is omitted from
/// emitted plans when nothing is ablated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimSection {
    /// Run the planner every `planner_divisor` ticks (1 = every tick).
    pub planner_divisor: u32,
    /// Kalman-fuse the world model (false = raw detections).
    pub kalman_fusion: bool,
    /// Smooth actuation with the PID controller.
    pub pid_smoothing: bool,
    /// Engage the module-health watchdog.
    pub watchdog: bool,
    /// Campaign-engine batch width: how many jobs a worker steps in
    /// lockstep per dispatch (`None` = auto,
    /// [`drivefi_sim::DEFAULT_BATCH`]). Pure scheduling — results are
    /// bit-identical at any width, so like `workers` it is stripped from
    /// the campaign fingerprint.
    pub batch: Option<usize>,
}

impl Default for SimSection {
    fn default() -> Self {
        let ads = drivefi_ads::AdsConfig::default();
        SimSection {
            planner_divisor: ads.planner_divisor,
            kalman_fusion: ads.kalman_fusion,
            pid_smoothing: ads.pid_smoothing,
            watchdog: ads.watchdog,
            batch: None,
        }
    }
}

impl SimSection {
    /// Applies the switches to a simulator configuration.
    pub fn apply(self, config: &mut SimConfig) {
        config.ads.planner_divisor = self.planner_divisor;
        config.ads.kalman_fusion = self.kalman_fusion;
        config.ads.pid_smoothing = self.pid_smoothing;
        config.ads.watchdog = self.watchdog;
    }

    /// The default simulator configuration with these switches applied.
    pub fn sim_config(self) -> SimConfig {
        let mut config = SimConfig::default();
        self.apply(&mut config);
        config
    }
}

/// The `[output]` plan section: where the campaign persists its per-job
/// records (a `drivefi-store` directory) and emits its round-trip
/// [`PlanReport`]. Present ⇒ [`run_plan`] streams results to disk,
/// resumes automatically when the store already exists, and returns
/// [`PlanResult::Persisted`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutputSpec {
    /// Store directory. Relative paths resolve against the process
    /// working directory (the `drivefi` CLI resolves them against the
    /// plan file's directory before running).
    pub dir: String,
    /// Shard-file count records fan out over (`job % shards`).
    pub shards: u32,
    /// Checkpoint period: flush + manifest rewrite every this many
    /// appended records.
    pub checkpoint_every: u64,
}

impl OutputSpec {
    /// Default shard count.
    pub const DEFAULT_SHARDS: u32 = 4;
    /// Default checkpoint period, in records.
    pub const DEFAULT_CHECKPOINT_EVERY: u64 = 256;

    /// An output section writing to `dir` with default sharding.
    pub fn new(dir: impl Into<String>) -> Self {
        OutputSpec {
            dir: dir.into(),
            shards: Self::DEFAULT_SHARDS,
            checkpoint_every: Self::DEFAULT_CHECKPOINT_EVERY,
        }
    }
}

/// The `[submit]` plan section: scheduling metadata read by the
/// `drivefi serve` daemon when this plan is dropped in its spool. Pure
/// scheduling — stripped from [`campaign_fingerprint`] like `[output]`
/// and `workers`, so submitting a plan never changes what it computes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubmitSection {
    /// Fair-share weight: how many job-budget slices this campaign
    /// receives per scheduling round, relative to weight-1 campaigns.
    pub weight: u32,
}

impl SubmitSection {
    /// Largest accepted fair-share weight.
    pub const MAX_WEIGHT: u32 = 64;
}

impl Default for SubmitSection {
    fn default() -> Self {
        SubmitSection { weight: 1 }
    }
}

/// The `[control]` plan section: the unfaulted control job every
/// random/mine campaign runs before injecting anything. A campaign
/// whose baseline scenario is not survivable *without* faults cannot
/// attribute its hazards to injection — the control point catches that
/// before any injection budget is spent. Pure policy, like `[submit]`:
/// stripped from [`campaign_fingerprint`], so toggling the assertion
/// never invalidates a store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ControlSection {
    /// Fail the campaign when the control job is not survivable
    /// (`assert = false` / `--no-assert-control` downgrades the failed
    /// control to a recorded verdict).
    pub assert_survivable: bool,
}

impl Default for ControlSection {
    fn default() -> Self {
        ControlSection { assert_survivable: true }
    }
}

/// File the control verdict persists to, inside the `[output]` dir.
pub const CONTROL_FILE: &str = "control.toml";

/// The recorded verdict of a campaign's unfaulted control job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ControlVerdict {
    /// Scenario the control job drove (the suite's first).
    pub scenario_id: u32,
    /// Its family name.
    pub scenario_name: String,
    /// Outcome name (`"safe"`, `"hazard"`, `"collision"`).
    pub outcome: String,
    /// Whether the unfaulted run ended safe.
    pub survivable: bool,
}

impl ControlVerdict {
    /// The verdict as a TOML document string.
    pub fn to_toml(&self) -> String {
        emit_document(&Map::from([
            ("scenario_id".into(), Toml::Int(i64::from(self.scenario_id))),
            ("scenario_name".into(), Toml::Str(self.scenario_name.clone())),
            ("outcome".into(), Toml::Str(self.outcome.clone())),
            ("survivable".into(), Toml::Bool(self.survivable)),
        ]))
    }

    /// Parses a verdict document produced by [`Self::to_toml`].
    ///
    /// # Errors
    ///
    /// Returns a [`PlanError`] on malformed TOML or missing fields.
    pub fn parse(src: &str) -> Result<ControlVerdict, PlanError> {
        let doc = parse_document(src)?;
        let what = "control verdict";
        Ok(ControlVerdict {
            scenario_id: as_uint(get(&doc, what, "scenario_id")?, "`scenario_id`")? as u32,
            scenario_name: as_str(get(&doc, what, "scenario_name")?, "`scenario_name`")?.to_owned(),
            outcome: as_str(get(&doc, what, "outcome")?, "`outcome`")?.to_owned(),
            survivable: as_bool(get(&doc, what, "survivable")?, "`survivable`")?,
        })
    }

    /// Loads the verdict persisted in output directory `dir`, if any.
    ///
    /// # Errors
    ///
    /// Returns a [`PlanError`] when the file exists but is malformed.
    pub fn load(dir: &std::path::Path) -> Result<Option<ControlVerdict>, PlanError> {
        let path = dir.join(CONTROL_FILE);
        match std::fs::read_to_string(&path) {
            Ok(src) => Self::parse(&src)
                .map(Some)
                .map_err(|e| PlanError::new(format!("{}: {e}", path.display()))),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(PlanError::new(format!("reading {}: {e}", path.display()))),
        }
    }

    fn save(&self, dir: &std::path::Path) -> Result<(), PlanError> {
        let path = dir.join(CONTROL_FILE);
        let tmp = dir.join(format!(".{CONTROL_FILE}.tmp.{}", std::process::id()));
        std::fs::write(&tmp, self.to_toml())
            .map_err(|e| PlanError::new(format!("writing {}: {e}", tmp.display())))?;
        std::fs::rename(&tmp, &path)
            .map_err(|e| PlanError::new(format!("replacing {}: {e}", path.display())))
    }
}

/// Runs (or recalls) the campaign's control point: one unfaulted
/// simulation of the suite's first scenario under the plan's `[sim]`
/// ablations. The verdict persists to [`CONTROL_FILE`] in the output
/// dir (when there is one), so resumed and daemon-sliced campaigns
/// never re-pay the control job; it is also emitted as a
/// `control_verdict` event when observability is on.
///
/// Returns an error when the control job is not survivable and the plan
/// asserts it (`[control] assert`, default true).
fn run_control_point(
    plan: &CampaignPlan,
    sim: &SimConfig,
    suite: &ScenarioSuite,
) -> Result<Option<ControlVerdict>, PlanError> {
    let dir = plan.output.as_ref().map(|o| std::path::PathBuf::from(&o.dir));
    let verdict = match dir.as_deref().map(ControlVerdict::load).transpose()?.flatten() {
        Some(verdict) => verdict,
        None => {
            let Some(scenario) = suite.scenarios.first() else {
                return Ok(None); // An empty suite has nothing to control.
            };
            let control_sim = SimConfig { record_trace: false, ..*sim };
            let report = Simulation::new(control_sim, scenario).run();
            drivefi_obs::metrics::counter_add(drivefi_obs::metrics::Counter::ControlJobs, 1);
            let verdict = ControlVerdict {
                scenario_id: scenario.id,
                scenario_name: scenario.name.clone(),
                outcome: report.outcome.to_string(),
                survivable: report.outcome.is_safe(),
            };
            if let Some(dir) = dir.as_deref() {
                std::fs::create_dir_all(dir)
                    .map_err(|e| PlanError::new(format!("creating {}: {e}", dir.display())))?;
                verdict.save(dir)?;
                drivefi_obs::emit_event(
                    dir,
                    "control_verdict",
                    &[
                        ("scenario", Field::Int(i64::from(verdict.scenario_id))),
                        ("family", Field::Str(verdict.scenario_name.clone())),
                        ("outcome", Field::Str(verdict.outcome.clone())),
                        ("survivable", Field::Bool(verdict.survivable)),
                    ],
                );
            }
            verdict
        }
    };
    if plan.control.assert_survivable && !verdict.survivable {
        return Err(PlanError::new(format!(
            "control job failed: the unfaulted run of scenario {} (`{}`) ended in {} — the \
             baseline is not survivable, so injected hazards would be unattributable. Fix the \
             scenario, or run with `--no-assert-control` / `[control] assert = false` to record \
             the verdict and proceed",
            verdict.scenario_id, verdict.scenario_name, verdict.outcome
        )));
    }
    Ok(Some(verdict))
}

/// A complete, serializable campaign description.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignPlan {
    /// Human-readable plan name.
    pub name: String,
    /// What to run.
    pub kind: CampaignKind,
    /// Campaign RNG seed (fault sampling for random campaigns).
    pub seed: u64,
    /// Worker threads (`None` = [`drivefi_sim::default_workers`]).
    pub workers: Option<usize>,
    /// Result sink (random campaigns only; the exhaustive report shape
    /// is fixed, so exhaustive plans must leave this at
    /// [`SinkChoice::Stats`] and their files must omit `sink`).
    pub sink: SinkChoice,
    /// The scenario workload.
    pub scenarios: ScenarioSelection,
    /// The fault space sampled by random campaigns. Exhaustive
    /// campaigns sweep the *miner's* candidate space (mined signals ×
    /// {min, max} at the validation window) — a `[faults]` section in
    /// an exhaustive plan is rejected at parse time rather than
    /// silently ignored, and this field must stay at
    /// [`FaultSpace::default`].
    pub faults: FaultSpace,
    /// ADS ablation switches (`[sim]` section; defaults = no ablation).
    pub sim: SimSection,
    /// Persistent store + report destination (`[output]` section).
    /// `None` = in-memory results only, as before.
    pub output: Option<OutputSpec>,
    /// Daemon scheduling metadata (`[submit]` section; defaults =
    /// weight 1).
    pub submit: SubmitSection,
    /// Control-point policy (`[control]` section; defaults = assert the
    /// unfaulted control job survivable).
    pub control: ControlSection,
}

/// The campaign identity a persistent store is locked to: the plan with
/// every pure scheduling/destination knob stripped (`[output]`,
/// `workers`, `[sim] batch`, and `[submit]` — all documented as having
/// no effect on results),
/// fingerprinted. Moving, re-sharding, or re-parallelizing the campaign
/// therefore never invalidates a resume, while any change to what it
/// *computes* (kind, seed, scenarios, faults, ablations) refuses to
/// append to the old store. `source = "files"` selections fingerprint
/// the **resolved spec contents**, not the file paths: editing a
/// referenced spec invalidates the store, relocating it does not.
pub fn campaign_fingerprint(plan: &CampaignPlan) -> u64 {
    let mut identity = plan.clone();
    identity.output = None;
    identity.workers = None;
    identity.sim.batch = None;
    identity.submit = SubmitSection::default();
    identity.control = ControlSection::default();
    if let ScenarioSelection::Files { specs, count, seed, .. } = &plan.scenarios {
        identity.scenarios =
            ScenarioSelection::Inline { specs: specs.clone(), count: *count, seed: *seed };
    }
    drivefi_store::fingerprint64(emit_campaign_plan(&identity).as_bytes())
}

/// What [`run_plan`] produced.
#[derive(Debug, Clone)]
pub enum PlanResult {
    /// A random campaign's streaming statistics.
    Random(RandomCampaignStats),
    /// A random campaign with the per-run outcome list retained.
    RandomOutcomes {
        /// Streaming outcome counters.
        running: RunningStats,
        /// Every run's outcome, in submission order.
        outcomes: Vec<Outcome>,
    },
    /// The exhaustive ground-truth comparison.
    Exhaustive(ExhaustiveReport),
    /// A golden campaign's per-scenario traces, in suite order.
    Golden(Vec<Trace>),
    /// A campaign with an `[output]` section: results persisted to the
    /// store, aggregated into the round-trip report (saved next to the
    /// shards as `report.toml` + `jobs.csv`).
    Persisted(PlanReport),
}

/// Executes a plan through the campaign engine and the standard
/// drivers. Deterministic: the same plan always produces the same
/// result, regardless of worker count — and, for plans with an
/// `[output]` section, regardless of how often the campaign was
/// interrupted and resumed.
///
/// # Errors
///
/// Returns a [`PlanError`] on store I/O failure or when resuming into a
/// store created by a different plan.
pub fn run_plan(plan: &CampaignPlan) -> Result<PlanResult, PlanError> {
    run_plan_budget(plan, None)
}

/// [`run_plan`] with a job budget: at most `budget` *pending* jobs are
/// executed this invocation (already-persisted jobs don't count), then
/// the run stops cleanly — the CI-style "interrupt via budget cap".
/// Only meaningful for plans with an `[output]` store to resume from;
/// a budget without one is an error.
///
/// # Errors
///
/// The engine a plan's direct campaign passes run on: worker count plus
/// the plan's optional `[sim] batch` width override.
fn plan_engine(plan: &CampaignPlan, sim: SimConfig, workers: usize) -> CampaignEngine {
    let engine = CampaignEngine::new(sim).with_workers(workers);
    match plan.sim.batch {
        Some(batch) => engine.with_batch(batch),
        None => engine,
    }
}

/// Returns a [`PlanError`] on store I/O failure, fingerprint mismatch,
/// or a budget on a store-less plan.
pub fn run_plan_budget(plan: &CampaignPlan, budget: Option<u64>) -> Result<PlanResult, PlanError> {
    let sim = plan.sim.sim_config();
    let suite = plan.scenarios.build_suite();
    let workers = plan.workers.unwrap_or_else(drivefi_sim::default_workers);

    // The parser rejects this combination; catch hand-built plans too
    // rather than silently dropping the sink choice — and before the
    // control point, so an invalid plan never writes `control.toml`.
    if plan.output.is_some() && plan.sink == SinkChoice::Outcomes {
        return Err(PlanError::new(
            "`sink = \"outcomes\"` cannot be combined with an [output] store — the per-job \
             outcomes are the store's jobs.csv"
                .into(),
        ));
    }

    // The control point gates every injecting campaign kind — before
    // the store opens, so a failed control never creates or touches one.
    if matches!(plan.kind, CampaignKind::Random { .. } | CampaignKind::Mine { .. }) {
        run_control_point(plan, &sim, &suite)?;
    }

    if let Some(output) = &plan.output {
        return run_persisted(plan, output, sim, &suite, workers, budget);
    }
    if budget.is_some() {
        return Err(PlanError::new("a job budget needs an [output] store to resume from".into()));
    }
    Ok(match plan.kind {
        CampaignKind::Random { runs } => {
            let config = RandomCampaignConfig { runs, seed: plan.seed, workers };
            match plan.sink {
                SinkChoice::Stats => {
                    PlanResult::Random(random_space_campaign(&sim, &suite, &plan.faults, &config))
                }
                SinkChoice::Outcomes => {
                    let picks = random_fault_picks(&suite, &plan.faults, &config);
                    let engine = plan_engine(plan, sim, workers);
                    let shared = suite.shared();
                    let jobs = picks.iter().enumerate().map(|(id, &(index, spec))| CampaignJob {
                        id: id as u64,
                        scenario: Arc::clone(&shared[index]),
                        faults: vec![spec.compile()],
                    });
                    let mut running = RunningStats::new();
                    let mut outcomes: Vec<Option<Outcome>> = vec![None; picks.len()];
                    engine.run(jobs, &mut |index: u64, result: drivefi_sim::CampaignResult| {
                        outcomes[index as usize] = Some(result.report.outcome);
                        drivefi_sim::CampaignSink::accept(&mut running, index, result);
                    });
                    PlanResult::RandomOutcomes {
                        running,
                        outcomes: outcomes
                            .into_iter()
                            .map(|o| o.expect("every job produces a result"))
                            .collect(),
                    }
                }
            }
        }
        CampaignKind::Exhaustive { scene_stride } => {
            let traces = collect_golden_traces(&sim, &suite, workers);
            let config = MinerConfig { scene_stride, ..MinerConfig::default() };
            let miner = BayesianMiner::fit(&traces, config).expect("model fit on golden traces");
            PlanResult::Exhaustive(exhaustive_comparison(&sim, &suite, &miner, &traces, workers))
        }
        CampaignKind::Golden => PlanResult::Golden(collect_golden_traces(&sim, &suite, workers)),
        // The parser enforces this; catch hand-built plans too.
        CampaignKind::Mine { .. } => {
            return Err(PlanError::new(
                "`kind = \"mine\"` needs an [output] store — the pipeline persists golden \
                 traces and resumes its fit and validation sweep from them"
                    .into(),
            ))
        }
    })
}

/// The store-backed execution path: open-or-recover the store, run only
/// the jobs without a persisted record, and rebuild the report from the
/// merged shards — which is what makes an interrupted-and-resumed
/// campaign's report byte-identical to an uninterrupted run's.
fn run_persisted(
    plan: &CampaignPlan,
    output: &OutputSpec,
    sim: SimConfig,
    suite: &ScenarioSuite,
    workers: usize,
    budget: Option<u64>,
) -> Result<PlanResult, PlanError> {
    let store_err = |e: drivefi_store::StoreError| PlanError::new(format!("[output] store: {e}"));

    // The two-stage pipeline kinds run through their own driver.
    if matches!(plan.kind, CampaignKind::Mine { .. } | CampaignKind::Exhaustive { .. }) {
        return run_pipeline(plan, output, sim, suite, workers, budget);
    }

    let shared = suite.shared();
    let (metas, jobs, sim, traces): (Vec<RecordMeta>, Vec<CampaignJob>, SimConfig, bool) =
        match plan.kind {
            CampaignKind::Random { runs } => {
                let config = RandomCampaignConfig { runs, seed: plan.seed, workers };
                let picks = random_fault_picks(suite, &plan.faults, &config);
                let jobs = picks
                    .iter()
                    .enumerate()
                    .map(|(id, &(index, spec))| CampaignJob {
                        id: id as u64,
                        scenario: Arc::clone(&shared[index]),
                        faults: vec![spec.compile()],
                    })
                    .collect();
                (pick_record_metas(suite, &picks), jobs, sim, false)
            }
            CampaignKind::Golden => {
                let jobs = shared
                    .iter()
                    .enumerate()
                    .map(|(id, scenario)| CampaignJob {
                        id: id as u64,
                        scenario: Arc::clone(scenario),
                        faults: Vec::new(),
                    })
                    .collect();
                // Golden runs survey the whole scenario, as trace
                // collection does — and persist the traces themselves,
                // so a golden store is a miner training set on disk.
                (
                    golden_record_metas(suite),
                    jobs,
                    SimConfig { record_trace: true, stop_on_collision: false, ..sim },
                    true,
                )
            }
            CampaignKind::Exhaustive { .. } | CampaignKind::Mine { .. } => unreachable!(),
        };

    let total = metas.len() as u64;
    let fingerprint = campaign_fingerprint(plan);
    let mut events = open_campaign_log(std::path::Path::new(&output.dir));
    events.emit(
        "campaign_start",
        &[
            ("name", Field::Str(plan.name.clone())),
            ("campaign_kind", Field::Str(plan.kind.name().into())),
            ("fingerprint", Field::Str(format!("{fingerprint:016x}"))),
            ("total_jobs", Field::Int(total as i64)),
        ],
    );
    let open = if traces { open_store_with_traces } else { open_store };
    let (mut writer, state) =
        open(&output.dir, fingerprint, total, output.shards, output.checkpoint_every)
            .map_err(store_err)?;

    let done_before = state.records();
    if done_before < total {
        events.emit(
            "stage_start",
            &[
                ("stage", Field::Str("main".into())),
                ("pending", Field::Int((total - done_before) as i64)),
            ],
        );
        drivefi_obs::metrics::gauge_set(
            drivefi_obs::metrics::Gauge::StageJobsRemaining,
            (total - done_before) as i64,
        );
    }

    let engine = plan_engine(plan, sim, workers);
    let fresh = state.records() == 0;
    // Tee the stream: records go to disk, tallies stay in memory for the
    // end-to-end cross-check below.
    let mut running = RunningStats::new();
    let mut sink = StoreSink::new(&mut writer, &metas);
    engine.run_skipping_budget(
        jobs,
        |id| state.is_done(id),
        budget,
        &mut Tee(&mut sink, &mut running),
    );
    sink.finish().map_err(store_err)?;
    writer.finish().map_err(store_err)?;

    let (_, records) = read_store(&output.dir).map_err(store_err)?;
    let report = PlanReport::new(plan.name.clone(), plan.kind.name(), fingerprint, total, records);
    // A fresh uninterrupted pass saw every record twice: streamed off the
    // engine and re-read from disk. The tallies must agree — a cheap
    // whole-path guard on the encode → CRC frame → decode round trip.
    if fresh && budget.is_none() {
        let streamed =
            (running.runs, running.safe, running.collisions, running.effective_injections);
        let stored = (
            report.jobs.len(),
            report.safe() as usize,
            report.collisions() as usize,
            report.effective_injections() as usize,
        );
        if streamed != stored {
            return Err(PlanError::new(format!(
                "store round-trip mismatch: streamed (runs, safe, collisions, effective) = \
                 {streamed:?} but the persisted records aggregate to {stored:?}"
            )));
        }
    }
    report.save(&output.dir)?;
    emit_stage_finish(&mut events, "main", done_before, total, report.complete());
    emit_campaign_end(&mut events, done_before, total, report.complete());
    Ok(PlanResult::Persisted(report))
}

/// Opens the campaign-level event log at `dir`, creating the directory
/// first so a fresh campaign's `campaign_start` isn't dropped for lack
/// of one. Inert (no directory touched) while observability is off.
fn open_campaign_log(dir: &std::path::Path) -> EventLog {
    if drivefi_obs::enabled() {
        std::fs::create_dir_all(dir).ok();
        EventLog::open(dir)
    } else {
        EventLog::disabled()
    }
}

/// Emits a stage's `stage_finish` exactly on the invocation that
/// *transitioned* it to complete (`done_before < total` on entry,
/// complete on exit) — so interrupt/resume cycles never duplicate a
/// stage's finish event.
fn emit_stage_finish(
    events: &mut EventLog,
    stage: &str,
    done_before: u64,
    total: u64,
    complete: bool,
) {
    drivefi_obs::metrics::gauge_set(
        drivefi_obs::metrics::Gauge::StageJobsRemaining,
        if complete { 0 } else { (total - done_before) as i64 },
    );
    if complete && done_before < total {
        events.emit(
            "stage_finish",
            &[("stage", Field::Str(stage.into())), ("records", Field::Int(total as i64))],
        );
    }
}

/// Emits the end-of-invocation campaign event: `campaign_finish` on the
/// invocation that completed the final stage, `campaign_pause` when it
/// ended with work left, nothing for a re-run of an already-complete
/// campaign.
fn emit_campaign_end(events: &mut EventLog, done_before: u64, total: u64, complete: bool) {
    if complete && done_before < total {
        events.emit("campaign_finish", &[("complete", Field::Bool(true))]);
    } else if !complete {
        events.emit("campaign_pause", &[("total", Field::Int(total as i64))]);
    }
}

/// The store-backed two-stage pipelines: `kind = "mine"` (the paper's
/// golden → fit → mine → validate loop) and store-backed exhaustive
/// sweeps (golden → fit → inject every candidate). Stage layout under
/// the `[output]` dir:
///
/// ```text
/// dir/golden/     trace-logging store of the golden runs
/// dir/validate/   outcome store of the mined-set validation   (mine)
/// dir/sweep/      outcome store of the full candidate sweep   (exhaustive)
/// dir/report.toml + jobs.csv — final report over the sweep stage
/// ```
///
/// Every stage resumes from disk: pending golden jobs are the only
/// golden simulations run, the 3-TBN re-fits **from the persisted
/// traces** (CPU-only — no re-simulation), the candidate enumeration is
/// a pure function of those traces (so sweep job indices are stable
/// across interruptions), and the sweep store skips its persisted jobs.
/// A `budget` caps the *simulated* jobs of this invocation across both
/// stages; an invocation that exhausts it mid-golden leaves a progress
/// report inside `dir/golden/` and returns it.
fn run_pipeline(
    plan: &CampaignPlan,
    output: &OutputSpec,
    sim: SimConfig,
    suite: &ScenarioSuite,
    workers: usize,
    budget: Option<u64>,
) -> Result<PlanResult, PlanError> {
    let store_err = |e: drivefi_store::StoreError| PlanError::new(format!("[output] store: {e}"));
    let root = std::path::Path::new(&output.dir);
    let fingerprint = campaign_fingerprint(plan);
    let shared = suite.shared();

    let mut events = open_campaign_log(root);
    events.emit(
        "campaign_start",
        &[
            ("name", Field::Str(plan.name.clone())),
            ("campaign_kind", Field::Str(plan.kind.name().into())),
            ("fingerprint", Field::Str(format!("{fingerprint:016x}"))),
        ],
    );

    // Stage 1: golden collection, traces persisted alongside outcomes.
    let golden_dir = root.join(GOLDEN_SUBDIR);
    let golden_total = shared.len() as u64;
    let (mut writer, state) = open_store_with_traces(
        &golden_dir,
        fingerprint,
        golden_total,
        output.shards,
        output.checkpoint_every,
    )
    .map_err(store_err)?;
    let golden_before = state.records();
    if golden_before < golden_total {
        events.emit(
            "stage_start",
            &[
                ("stage", Field::Str(GOLDEN_SUBDIR.into())),
                ("pending", Field::Int((golden_total - golden_before) as i64)),
            ],
        );
    }
    let golden_sim = SimConfig { record_trace: true, stop_on_collision: false, ..sim };
    let golden_metas = golden_record_metas(suite);
    let golden_jobs: Vec<CampaignJob> = shared
        .iter()
        .enumerate()
        .map(|(id, scenario)| CampaignJob {
            id: id as u64,
            scenario: Arc::clone(scenario),
            faults: Vec::new(),
        })
        .collect();
    let mut sink = StoreSink::new(&mut writer, &golden_metas);
    let ran = plan_engine(plan, golden_sim, workers).run_skipping_budget(
        golden_jobs,
        |id| state.is_done(id),
        budget,
        &mut sink,
    );
    sink.finish().map_err(store_err)?;
    let golden_meta = writer.finish().map_err(store_err)?;
    // The golden sub-store always carries its own progress report — kept
    // fresh on every pass, so a report written by an earlier mid-golden
    // interruption never goes stale once the stage completes. The root
    // report only ever describes the sweep stage.
    let (_, records) = read_store(&golden_dir).map_err(store_err)?;
    let golden_report =
        PlanReport::new(plan.name.clone(), plan.kind.name(), fingerprint, golden_total, records);
    golden_report.save(&golden_dir)?;
    emit_stage_finish(
        &mut events,
        GOLDEN_SUBDIR,
        golden_before,
        golden_total,
        golden_meta.complete,
    );
    if !golden_meta.complete {
        // Budget exhausted mid-golden: hand back how far the stage got.
        emit_campaign_end(&mut events, golden_before, golden_total, false);
        return Ok(PlanResult::Persisted(golden_report));
    }
    let remaining = budget.map(|b| b.saturating_sub(ran));

    // Stage 2: fit from the persisted traces (resumable by construction:
    // deterministic CPU work over what stage 1 left on disk), then
    // enumerate the sweep. The candidate order is a pure function of the
    // traces, so job index i means the same fault on every resume.
    let (scene_stride, subdir) = match plan.kind {
        CampaignKind::Mine { scene_stride } => (scene_stride, VALIDATE_SUBDIR),
        CampaignKind::Exhaustive { scene_stride } => (scene_stride, SWEEP_SUBDIR),
        _ => unreachable!("run_pipeline only handles pipeline kinds"),
    };
    let config = MinerConfig { scene_stride, ..MinerConfig::default() };
    let (miner, traces) = BayesianMiner::fit_from_store(&golden_dir, config).map_err(store_err)?;
    let candidates: Vec<(u32, drivefi_fault::FaultSpec)> = match plan.kind {
        CampaignKind::Mine { .. } => {
            miner.mine(&traces).iter().map(|c| (c.scenario_id, c.fault_spec())).collect()
        }
        _ => candidate_specs(&miner, &traces),
    };

    // Stage 3: the injection sweep, store-backed and resumable.
    let sweep_dir = root.join(subdir);
    let sweep_metas = candidate_record_metas(suite, &candidates);
    let total = sweep_metas.len() as u64;
    let (mut writer, state) =
        open_store(&sweep_dir, fingerprint, total, output.shards, output.checkpoint_every)
            .map_err(store_err)?;
    let sweep_before = state.records();
    if sweep_before < total {
        events.emit(
            "stage_start",
            &[
                ("stage", Field::Str(subdir.into())),
                ("pending", Field::Int((total - sweep_before) as i64)),
            ],
        );
    }
    let sweep_jobs: Vec<CampaignJob> = candidates
        .iter()
        .enumerate()
        .map(|(id, &(scenario_id, spec))| CampaignJob {
            id: id as u64,
            scenario: Arc::clone(&shared[scenario_id as usize]),
            faults: vec![spec.compile()],
        })
        .collect();
    let mut sink = StoreSink::new(&mut writer, &sweep_metas);
    plan_engine(plan, sim, workers).run_skipping_budget(
        sweep_jobs,
        |id| state.is_done(id),
        remaining,
        &mut sink,
    );
    sink.finish().map_err(store_err)?;
    writer.finish().map_err(store_err)?;

    // The final report aggregates the sweep store, at the pipeline root.
    let (_, records) = read_store(&sweep_dir).map_err(store_err)?;
    let report = PlanReport::new(plan.name.clone(), plan.kind.name(), fingerprint, total, records);
    report.save(root)?;
    emit_stage_finish(&mut events, subdir, sweep_before, total, report.complete());
    emit_campaign_end(&mut events, sweep_before, total, report.complete());
    Ok(PlanResult::Persisted(report))
}

// ---------------------------------------------------------------------------
// TOML conversion
// ---------------------------------------------------------------------------

fn model_names(models: &[ScalarFaultModel]) -> Toml {
    Toml::Array(models.iter().map(|m| Toml::Str(m.name())).collect())
}

fn fault_space_to_toml(space: &FaultSpace) -> Map {
    let default = FaultSpace::default();
    let signals = if space.scalars.items == default.scalars.items {
        Toml::Str("all".into())
    } else {
        Toml::Array(space.scalars.items.iter().map(|s| Toml::Str(s.name().into())).collect())
    };
    Map::from([
        ("signals".into(), signals),
        ("models".into(), model_names(&space.scalars.models)),
        (
            "modules".into(),
            Toml::Array(space.modules.iter().map(|m| Toml::Str(m.name())).collect()),
        ),
        ("first_scene".into(), Toml::Int(space.first_scene as i64)),
        ("tail_margin".into(), Toml::Int(space.tail_margin as i64)),
        ("window_scenes".into(), Toml::Int(space.window_scenes as i64)),
    ])
}

fn fault_space_from_toml(table: &Map) -> Result<FaultSpace, PlanError> {
    expect_keys(
        table,
        "[faults]",
        &["signals", "models", "modules", "first_scene", "tail_margin", "window_scenes"],
    )?;
    let default = FaultSpace::default();

    let signals: Vec<Signal> = match table.get("signals") {
        None => default.scalars.items.clone(),
        Some(Toml::Str(s)) if s == "all" => Signal::ALL.to_vec(),
        Some(Toml::Array(names)) => names
            .iter()
            .map(|n| {
                let name = as_str(n, "signal name")?;
                Signal::from_name(name)
                    .ok_or_else(|| PlanError::new(format!("unknown signal `{name}`")))
            })
            .collect::<Result<_, _>>()?,
        Some(other) => {
            return Err(PlanError::new(format!(
                "`signals` must be \"all\" or a list of names, got {}",
                other.type_name()
            )))
        }
    };

    let models: Vec<ScalarFaultModel> = match table.get("models") {
        None => default.scalars.models.clone(),
        Some(value) => as_array(value, "`models`")?
            .iter()
            .map(|m| {
                let name = as_str(m, "model name")?;
                ScalarFaultModel::parse(name)
                    .ok_or_else(|| PlanError::new(format!("unknown fault model `{name}`")))
            })
            .collect::<Result<_, _>>()?,
    };

    let modules = match table.get("modules") {
        None => Vec::new(),
        Some(value) => as_array(value, "`modules`")?
            .iter()
            .map(|m| {
                let name = as_str(m, "module fault name")?;
                FaultSpace::parse_module(name)
                    .ok_or_else(|| PlanError::new(format!("unknown module fault `{name}`")))
            })
            .collect::<Result<_, _>>()?,
    };

    let uint_or = |key: &str, fallback: u64| -> Result<u64, PlanError> {
        match table.get(key) {
            None => Ok(fallback),
            Some(v) => as_uint(v, &format!("`{key}`")),
        }
    };
    let first_scene = uint_or("first_scene", default.first_scene)?;
    let tail_margin = uint_or("tail_margin", default.tail_margin)?;
    let window_scenes = uint_or("window_scenes", default.window_scenes)?;
    if window_scenes == 0 {
        return Err(PlanError::new("`window_scenes` must be at least 1".into()));
    }

    let space = FaultSpace {
        scalars: CorruptionGrid::new(signals, models),
        modules,
        first_scene,
        tail_margin,
        window_scenes,
    };
    if space.kind_count() == 0 {
        return Err(PlanError::new(
            "the fault space is empty: no (signal, model) pairs and no module faults".into(),
        ));
    }
    Ok(space)
}

/// Converts a plan to its TOML document tree.
pub fn campaign_plan_to_toml(plan: &CampaignPlan) -> Map {
    let mut campaign = Map::from([
        ("seed".into(), Toml::Int(plan.seed as i64)),
        (
            "sink".into(),
            Toml::Str(match plan.sink {
                SinkChoice::Stats => "stats".into(),
                SinkChoice::Outcomes => "outcomes".into(),
            }),
        ),
    ]);
    match plan.kind {
        CampaignKind::Random { runs } => {
            campaign.insert("kind".into(), Toml::Str("random".into()));
            campaign.insert("runs".into(), Toml::Int(runs as i64));
        }
        CampaignKind::Exhaustive { scene_stride } => {
            campaign.insert("kind".into(), Toml::Str("exhaustive".into()));
            campaign.insert("scene_stride".into(), Toml::Int(scene_stride as i64));
            // The exhaustive driver has a fixed report and sweeps the
            // miner's candidate space — `sink` and `[faults]` are
            // rejected by the parser, so the emitter must omit them.
            campaign.remove("sink");
        }
        CampaignKind::Golden => {
            campaign.insert("kind".into(), Toml::Str("golden".into()));
            // Golden runs have no faults to sample and a fixed per-
            // scenario result shape; `sink` and `[faults]` are rejected
            // by the parser.
            campaign.remove("sink");
        }
        CampaignKind::Mine { scene_stride } => {
            campaign.insert("kind".into(), Toml::Str("mine".into()));
            campaign.insert("scene_stride".into(), Toml::Int(scene_stride as i64));
            // The mining pipeline sweeps the miner's candidate space and
            // reports through the store; `sink` and `[faults]` are
            // rejected by the parser.
            campaign.remove("sink");
        }
    }
    if let Some(workers) = plan.workers {
        campaign.insert("workers".into(), Toml::Int(workers as i64));
    }

    let scenarios = match &plan.scenarios {
        ScenarioSelection::Paper { count, seed } => Map::from([
            ("source".into(), Toml::Str("paper".into())),
            ("count".into(), Toml::Int(*count as i64)),
            ("seed".into(), Toml::Int(*seed as i64)),
        ]),
        ScenarioSelection::Extended { count, seed } => Map::from([
            ("source".into(), Toml::Str("extended".into())),
            ("count".into(), Toml::Int(*count as i64)),
            ("seed".into(), Toml::Int(*seed as i64)),
        ]),
        ScenarioSelection::Families { names, count, seed } => Map::from([
            ("source".into(), Toml::Str("families".into())),
            ("families".into(), Toml::Array(names.iter().map(|n| Toml::Str(n.clone())).collect())),
            ("count".into(), Toml::Int(*count as i64)),
            ("seed".into(), Toml::Int(*seed as i64)),
        ]),
        ScenarioSelection::Inline { specs, count, seed } => Map::from([
            ("source".into(), Toml::Str("inline".into())),
            (
                "spec".into(),
                Toml::Array(specs.iter().map(|s| Toml::Table(scenario_spec_to_toml(s))).collect()),
            ),
            ("count".into(), Toml::Int(*count as i64)),
            ("seed".into(), Toml::Int(*seed as i64)),
        ]),
        // The resolved specs are deliberately *not* embedded: the files
        // stay the source of truth, and re-saving a loaded plan keeps
        // its link to them (validate_plans' drift gate still applies).
        ScenarioSelection::Files { files, count, seed, .. } => Map::from([
            ("source".into(), Toml::Str("files".into())),
            ("files".into(), Toml::Array(files.iter().map(|f| Toml::Str(f.clone())).collect())),
            ("count".into(), Toml::Int(*count as i64)),
            ("seed".into(), Toml::Int(*seed as i64)),
        ]),
    };

    let mut doc = Map::from([
        ("name".into(), Toml::Str(plan.name.clone())),
        ("campaign".into(), Toml::Table(campaign)),
        ("scenarios".into(), Toml::Table(scenarios)),
    ]);
    if matches!(plan.kind, CampaignKind::Random { .. }) {
        doc.insert("faults".into(), Toml::Table(fault_space_to_toml(&plan.faults)));
    }
    if plan.sim != SimSection::default() {
        let mut sim = Map::from([
            ("planner_divisor".into(), Toml::Int(i64::from(plan.sim.planner_divisor))),
            ("kalman_fusion".into(), Toml::Bool(plan.sim.kalman_fusion)),
            ("pid_smoothing".into(), Toml::Bool(plan.sim.pid_smoothing)),
            ("watchdog".into(), Toml::Bool(plan.sim.watchdog)),
        ]);
        if let Some(batch) = plan.sim.batch {
            sim.insert("batch".into(), Toml::Int(batch as i64));
        }
        doc.insert("sim".into(), Toml::Table(sim));
    }
    if let Some(output) = &plan.output {
        doc.insert(
            "output".into(),
            Toml::Table(Map::from([
                ("dir".into(), Toml::Str(output.dir.clone())),
                ("shards".into(), Toml::Int(i64::from(output.shards))),
                ("checkpoint_every".into(), Toml::Int(output.checkpoint_every as i64)),
            ])),
        );
    }
    if plan.submit != SubmitSection::default() {
        doc.insert(
            "submit".into(),
            Toml::Table(Map::from([("weight".into(), Toml::Int(i64::from(plan.submit.weight)))])),
        );
    }
    if plan.control != ControlSection::default() {
        doc.insert(
            "control".into(),
            Toml::Table(Map::from([("assert".into(), Toml::Bool(plan.control.assert_survivable))])),
        );
    }
    doc
}

/// Renders a plan as a TOML document string.
pub fn emit_campaign_plan(plan: &CampaignPlan) -> String {
    emit_document(&campaign_plan_to_toml(plan))
}

fn scenarios_from_toml(
    table: &Map,
    base_dir: Option<&std::path::Path>,
) -> Result<ScenarioSelection, PlanError> {
    expect_keys(table, "[scenarios]", &["source", "count", "seed", "families", "spec", "files"])?;
    let source = as_str(get(table, "[scenarios]", "source")?, "`source`")?;
    let count64 = as_uint(get(table, "[scenarios]", "count")?, "`count`")?;
    let count = u32::try_from(count64)
        .ok()
        .filter(|c| *c > 0)
        .ok_or_else(|| PlanError::new(format!("`count` must be in 1..=2^32-1, got {count64}")))?;
    let seed = as_uint(get(table, "[scenarios]", "seed")?, "`seed`")?;
    let forbid = |key: &str| -> Result<(), PlanError> {
        if table.contains_key(key) {
            return Err(PlanError::new(format!(
                "`{key}` is only valid with the matching `source`"
            )));
        }
        Ok(())
    };
    match source {
        "paper" => {
            forbid("families")?;
            forbid("spec")?;
            forbid("files")?;
            Ok(ScenarioSelection::Paper { count, seed })
        }
        "extended" => {
            forbid("families")?;
            forbid("spec")?;
            forbid("files")?;
            Ok(ScenarioSelection::Extended { count, seed })
        }
        "families" => {
            forbid("spec")?;
            forbid("files")?;
            let names: Vec<String> =
                as_array(get(table, "[scenarios]", "families")?, "`families`")?
                    .iter()
                    .map(|n| as_str(n, "family name").map(str::to_owned))
                    .collect::<Result<_, _>>()?;
            if names.is_empty() {
                return Err(PlanError::new("`families` must not be empty".into()));
            }
            let registry = drivefi_world::FamilyRegistry::builtin();
            for name in &names {
                if registry.get(name).is_none() {
                    return Err(PlanError::new(format!(
                        "unknown scenario family `{name}` (registered: {})",
                        registry.names().collect::<Vec<_>>().join(", ")
                    )));
                }
            }
            Ok(ScenarioSelection::Families { names, count, seed })
        }
        "inline" => {
            forbid("families")?;
            forbid("files")?;
            let specs: Vec<ScenarioSpec> = as_array(get(table, "[scenarios]", "spec")?, "`spec`")?
                .iter()
                .map(|s| scenario_spec_from_toml(as_table(s, "scenario spec")?))
                .collect::<Result<_, _>>()?;
            if specs.is_empty() {
                return Err(PlanError::new("`spec` must not be empty".into()));
            }
            Ok(ScenarioSelection::Inline { specs, count, seed })
        }
        "files" => {
            forbid("families")?;
            forbid("spec")?;
            let Some(base) = base_dir else {
                return Err(PlanError::new(
                    "`source = \"files\"` needs a plan file on disk (use CampaignPlan::load)"
                        .into(),
                ));
            };
            let files: Vec<String> = as_array(get(table, "[scenarios]", "files")?, "`files`")?
                .iter()
                .map(|f| as_str(f, "spec path").map(str::to_owned))
                .collect::<Result<_, _>>()?;
            if files.is_empty() {
                return Err(PlanError::new("`files` must not be empty".into()));
            }
            let specs: Vec<ScenarioSpec> = files
                .iter()
                .map(|f| crate::scenario::load_scenario_spec(base.join(f)))
                .collect::<Result<_, _>>()?;
            Ok(ScenarioSelection::Files { files, specs, count, seed })
        }
        other => Err(PlanError::new(format!(
            "unknown scenario source `{other}` (paper, extended, families, inline, files)"
        ))),
    }
}

fn campaign_plan_from_toml(
    doc: &Map,
    base_dir: Option<&std::path::Path>,
) -> Result<CampaignPlan, PlanError> {
    expect_keys(
        doc,
        "campaign plan",
        &["name", "campaign", "scenarios", "faults", "sim", "output", "submit", "control"],
    )?;
    let name = as_str(get(doc, "campaign plan", "name")?, "`name`")?.to_owned();

    let campaign = as_table(get(doc, "campaign plan", "campaign")?, "[campaign]")?;
    expect_keys(
        campaign,
        "[campaign]",
        &["kind", "runs", "scene_stride", "seed", "workers", "sink"],
    )?;
    let kind_name = as_str(get(campaign, "[campaign]", "kind")?, "`kind`")?;
    let kind = match kind_name {
        "random" => {
            if campaign.contains_key("scene_stride") {
                return Err(PlanError::new(
                    "`scene_stride` is only valid for exhaustive campaigns".into(),
                ));
            }
            let runs = as_uint(get(campaign, "[campaign]", "runs")?, "`runs`")?;
            if runs == 0 {
                return Err(PlanError::new("`runs` must be at least 1".into()));
            }
            CampaignKind::Random { runs: runs as usize }
        }
        "exhaustive" => {
            if campaign.contains_key("runs") {
                return Err(PlanError::new("`runs` is only valid for random campaigns".into()));
            }
            if campaign.contains_key("sink") {
                return Err(PlanError::new(
                    "`sink` is only valid for random campaigns (the exhaustive report is fixed)"
                        .into(),
                ));
            }
            if doc.contains_key("faults") {
                return Err(PlanError::new(
                    "a `[faults]` section is only valid for random campaigns — exhaustive \
                     campaigns sweep the miner's candidate space"
                        .into(),
                ));
            }
            let stride = match campaign.get("scene_stride") {
                None => 1,
                Some(v) => as_uint(v, "`scene_stride`")?,
            };
            if stride == 0 {
                return Err(PlanError::new("`scene_stride` must be at least 1".into()));
            }
            CampaignKind::Exhaustive { scene_stride: stride as usize }
        }
        "golden" => {
            for key in ["runs", "scene_stride", "sink"] {
                if campaign.contains_key(key) {
                    return Err(PlanError::new(format!(
                        "`{key}` is not valid for golden campaigns (fault-free trace \
                         collection over the whole suite)"
                    )));
                }
            }
            if doc.contains_key("faults") {
                return Err(PlanError::new(
                    "a `[faults]` section is not valid for golden campaigns — golden runs \
                     inject nothing"
                        .into(),
                ));
            }
            CampaignKind::Golden
        }
        "mine" => {
            for key in ["runs", "sink"] {
                if campaign.contains_key(key) {
                    return Err(PlanError::new(format!(
                        "`{key}` is not valid for mine campaigns (the pipeline's stages and \
                         report shape are fixed)"
                    )));
                }
            }
            if doc.contains_key("faults") {
                return Err(PlanError::new(
                    "a `[faults]` section is not valid for mine campaigns — the miner \
                     sweeps its own candidate space"
                        .into(),
                ));
            }
            let stride = match campaign.get("scene_stride") {
                None => 1,
                Some(v) => as_uint(v, "`scene_stride`")?,
            };
            if stride == 0 {
                return Err(PlanError::new("`scene_stride` must be at least 1".into()));
            }
            CampaignKind::Mine { scene_stride: stride as usize }
        }
        other => {
            return Err(PlanError::new(format!(
                "unknown campaign kind `{other}` (random, exhaustive, golden, mine)"
            )))
        }
    };
    let seed = match campaign.get("seed") {
        None => 0,
        Some(v) => as_uint(v, "`seed`")?,
    };
    let workers = match campaign.get("workers") {
        None => None,
        Some(v) => {
            let w = as_uint(v, "`workers`")?;
            if w == 0 {
                return Err(PlanError::new("`workers` must be at least 1".into()));
            }
            Some(w as usize)
        }
    };
    let sink = match campaign.get("sink") {
        None => SinkChoice::Stats,
        Some(v) => match as_str(v, "`sink`")? {
            "stats" => SinkChoice::Stats,
            "outcomes" => SinkChoice::Outcomes,
            other => {
                return Err(PlanError::new(format!("unknown sink `{other}` (stats, outcomes)")))
            }
        },
    };

    let scenarios = scenarios_from_toml(
        as_table(get(doc, "campaign plan", "scenarios")?, "[scenarios]")?,
        base_dir,
    )?;

    let faults = match doc.get("faults") {
        None => FaultSpace::default(),
        Some(value) => fault_space_from_toml(as_table(value, "[faults]")?)?,
    };

    let sim = match doc.get("sim") {
        None => SimSection::default(),
        Some(value) => sim_section_from_toml(as_table(value, "[sim]")?)?,
    };

    let output = match doc.get("output") {
        None => None,
        Some(value) => {
            if sink == SinkChoice::Outcomes {
                return Err(PlanError::new(
                    "`sink = \"outcomes\"` cannot be combined with an `[output]` store — \
                     the per-job outcomes are the store's jobs.csv"
                        .into(),
                ));
            }
            Some(output_spec_from_toml(as_table(value, "[output]")?)?)
        }
    };
    if matches!(kind, CampaignKind::Mine { .. }) && output.is_none() {
        return Err(PlanError::new(
            "`kind = \"mine\"` needs an [output] section — the pipeline persists golden \
             traces and resumes its fit and validation sweep from them"
                .into(),
        ));
    }

    let submit = match doc.get("submit") {
        None => SubmitSection::default(),
        Some(value) => submit_section_from_toml(as_table(value, "[submit]")?)?,
    };

    let control = match doc.get("control") {
        None => ControlSection::default(),
        Some(value) => control_section_from_toml(as_table(value, "[control]")?)?,
    };

    Ok(CampaignPlan {
        name,
        kind,
        seed,
        workers,
        sink,
        scenarios,
        faults,
        sim,
        output,
        submit,
        control,
    })
}

fn control_section_from_toml(table: &Map) -> Result<ControlSection, PlanError> {
    expect_keys(table, "[control]", &["assert"])?;
    let assert_survivable = match table.get("assert") {
        None => ControlSection::default().assert_survivable,
        Some(v) => as_bool(v, "`assert`")?,
    };
    Ok(ControlSection { assert_survivable })
}

fn submit_section_from_toml(table: &Map) -> Result<SubmitSection, PlanError> {
    expect_keys(table, "[submit]", &["weight"])?;
    let weight = match table.get("weight") {
        None => SubmitSection::default().weight,
        Some(v) => {
            let w = as_uint(v, "`weight`")?;
            u32::try_from(w)
                .ok()
                .filter(|w| (1..=SubmitSection::MAX_WEIGHT).contains(w))
                .ok_or_else(|| {
                    PlanError::new(format!(
                        "`weight` must be in 1..={}, got {w}",
                        SubmitSection::MAX_WEIGHT
                    ))
                })?
        }
    };
    Ok(SubmitSection { weight })
}

fn sim_section_from_toml(table: &Map) -> Result<SimSection, PlanError> {
    expect_keys(
        table,
        "[sim]",
        &["planner_divisor", "kalman_fusion", "pid_smoothing", "watchdog", "batch"],
    )?;
    let default = SimSection::default();
    let planner_divisor = match table.get("planner_divisor") {
        None => default.planner_divisor,
        Some(v) => {
            let d = as_uint(v, "`planner_divisor`")?;
            u32::try_from(d).ok().filter(|d| *d >= 1).ok_or_else(|| {
                PlanError::new(format!("`planner_divisor` must be in 1..=2^32-1, got {d}"))
            })?
        }
    };
    let bool_or = |key: &str, fallback: bool| -> Result<bool, PlanError> {
        match table.get(key) {
            None => Ok(fallback),
            Some(v) => as_bool(v, &format!("`{key}`")),
        }
    };
    let batch = match table.get("batch") {
        None => None,
        Some(v) => {
            let b = as_uint(v, "`batch`")?;
            if b == 0 {
                return Err(PlanError::new("`batch` must be at least 1".into()));
            }
            Some(usize::try_from(b).map_err(|_| {
                PlanError::new(format!("`batch` does not fit this platform's usize: {b}"))
            })?)
        }
    };
    Ok(SimSection {
        planner_divisor,
        kalman_fusion: bool_or("kalman_fusion", default.kalman_fusion)?,
        pid_smoothing: bool_or("pid_smoothing", default.pid_smoothing)?,
        watchdog: bool_or("watchdog", default.watchdog)?,
        batch,
    })
}

fn output_spec_from_toml(table: &Map) -> Result<OutputSpec, PlanError> {
    expect_keys(table, "[output]", &["dir", "shards", "checkpoint_every"])?;
    let dir = as_str(get(table, "[output]", "dir")?, "`dir`")?.to_owned();
    if dir.is_empty() {
        return Err(PlanError::new("`dir` must not be empty".into()));
    }
    let shards = match table.get("shards") {
        None => OutputSpec::DEFAULT_SHARDS,
        Some(v) => {
            let s = as_uint(v, "`shards`")?;
            u32::try_from(s)
                .ok()
                .filter(|s| (1..=4096).contains(s))
                .ok_or_else(|| PlanError::new(format!("`shards` must be in 1..=4096, got {s}")))?
        }
    };
    let checkpoint_every = match table.get("checkpoint_every") {
        None => OutputSpec::DEFAULT_CHECKPOINT_EVERY,
        Some(v) => {
            let c = as_uint(v, "`checkpoint_every`")?;
            if c == 0 {
                return Err(PlanError::new("`checkpoint_every` must be at least 1".into()));
            }
            c
        }
    };
    Ok(OutputSpec { dir, shards, checkpoint_every })
}

/// Parses a plan from TOML text. File-based scenario sources
/// (`source = "files"`) are rejected here — use [`CampaignPlan::load`]
/// so relative spec paths have a base directory.
///
/// # Errors
///
/// Returns a [`PlanError`] on syntax errors or schema violations.
pub fn parse_campaign_plan(src: &str) -> Result<CampaignPlan, PlanError> {
    campaign_plan_from_toml(&parse_document(src)?, None)
}

impl CampaignPlan {
    /// Loads a plan from a `.toml` file, resolving `source = "files"`
    /// scenario-spec paths relative to the plan file's directory.
    ///
    /// # Errors
    ///
    /// Returns a [`PlanError`] on I/O or parse failure.
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<CampaignPlan, PlanError> {
        let path = path.as_ref();
        let src = std::fs::read_to_string(path)
            .map_err(|e| PlanError::new(format!("reading {}: {e}", path.display())))?;
        let base = path.parent().unwrap_or_else(|| std::path::Path::new("."));
        campaign_plan_from_toml(&parse_document(&src)?, Some(base))
            .map_err(|e| PlanError::new(format!("{}: {e}", path.display())))
    }

    /// Saves the plan as a `.toml` file.
    ///
    /// # Errors
    ///
    /// Returns a [`PlanError`] on I/O failure.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> Result<(), PlanError> {
        let path = path.as_ref();
        std::fs::write(path, emit_campaign_plan(self))
            .map_err(|e| PlanError::new(format!("writing {}: {e}", path.display())))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_random_plan() -> CampaignPlan {
        CampaignPlan {
            name: "tiny".into(),
            kind: CampaignKind::Random { runs: 6 },
            seed: 3,
            workers: Some(4),
            sink: SinkChoice::Stats,
            scenarios: ScenarioSelection::Paper { count: 2, seed: 42 },
            faults: FaultSpace::default(),
            sim: SimSection::default(),
            submit: Default::default(),
            control: Default::default(),
            output: None,
        }
    }

    #[test]
    fn plans_round_trip_through_toml() {
        let plans = vec![
            tiny_random_plan(),
            CampaignPlan {
                name: "exhaustive".into(),
                kind: CampaignKind::Exhaustive { scene_stride: 40 },
                seed: 0,
                workers: Some(8),
                sink: SinkChoice::Stats,
                scenarios: ScenarioSelection::Families {
                    names: vec!["cut_in".into(), "tailgater".into()],
                    count: 3,
                    seed: 7,
                },
                faults: FaultSpace::default(),
                sim: SimSection::default(),
                submit: Default::default(),
                control: Default::default(),
                output: None,
            },
            CampaignPlan {
                name: "custom-space".into(),
                kind: CampaignKind::Random { runs: 40 },
                seed: 0,
                workers: None,
                sink: SinkChoice::Outcomes,
                scenarios: ScenarioSelection::Families {
                    names: vec!["cut_in".into(), "tailgater".into()],
                    count: 3,
                    seed: 7,
                },
                faults: FaultSpace {
                    scalars: CorruptionGrid::new(
                        vec![Signal::RawThrottle, Signal::FinalBrake],
                        vec![
                            ScalarFaultModel::StuckMax,
                            ScalarFaultModel::Offset(-0.5),
                            ScalarFaultModel::BitFlip(62),
                        ],
                    ),
                    modules: vec![drivefi_fault::FaultKind::ClearWorldModel],
                    first_scene: 10,
                    tail_margin: 20,
                    window_scenes: 6,
                },
                sim: SimSection::default(),
                submit: Default::default(),
                control: Default::default(),
                output: None,
            },
            CampaignPlan {
                name: "inline".into(),
                kind: CampaignKind::Random { runs: 4 },
                seed: 9,
                workers: None,
                sink: SinkChoice::Stats,
                scenarios: ScenarioSelection::Inline {
                    specs: vec![drivefi_world::FamilyRegistry::builtin()
                        .get("debris_field")
                        .unwrap()
                        .clone()],
                    count: 2,
                    seed: 5,
                },
                faults: FaultSpace::default(),
                sim: SimSection::default(),
                submit: Default::default(),
                control: Default::default(),
                output: None,
            },
        ];
        for plan in plans {
            let text = emit_campaign_plan(&plan);
            let parsed =
                parse_campaign_plan(&text).unwrap_or_else(|e| panic!("{}: {e}\n{text}", plan.name));
            assert_eq!(parsed, plan, "{} drifted through TOML", plan.name);
        }
    }

    #[test]
    fn malformed_plans_are_rejected() {
        let base = emit_campaign_plan(&tiny_random_plan());
        assert!(parse_campaign_plan(&base).is_ok());
        // `base` with the whole [faults] section removed (sections emit
        // alphabetically, so [scenarios] follows [faults]).
        let without_faults = {
            let start = base.find("\n[faults]").expect("base has a [faults] section");
            let end = base.find("\n[scenarios]").expect("base has a [scenarios] section");
            format!("{}{}", &base[..start], &base[end..])
        };
        for (mutation, needle) in [
            (base.replace("kind = \"random\"", "kind = \"chaos\""), "unknown campaign kind"),
            (base.replace("runs = 6", "runs = 0"), "runs"),
            (
                base.replace("source = \"paper\"", "source = \"imaginary\""),
                "unknown scenario source",
            ),
            (base.replace("signals = \"all\"", "signals = [\"plan.warp\"]"), "unknown signal"),
            (
                base.replace("models = [\"min\", \"max\"]", "models = [\"warp(2)\"]"),
                "unknown fault model",
            ),
            (base.replace("window_scenes = 1", "window_scenes = 0"), "window_scenes"),
            (base.replace("seed = 3", "velocity = 3"), "unknown key"),
            (base.replace("count = 2", "count = 0"), "count"),
            // An exhaustive campaign cannot carry a [faults] section or
            // a sink — rejected rather than silently ignored.
            (
                base.replace("kind = \"random\"\nruns = 6", "kind = \"exhaustive\"")
                    .replace("sink = \"stats\"\n", ""),
                "`[faults]` section is only valid for random",
            ),
            (
                without_faults.replace("kind = \"random\"\nruns = 6", "kind = \"exhaustive\""),
                "`sink` is only valid for random",
            ),
        ] {
            let err = parse_campaign_plan(&mutation)
                .expect_err(&format!("mutation should fail: {needle}"));
            assert!(err.to_string().contains(needle), "wanted `{needle}`, got: {err}");
        }
    }

    #[test]
    fn files_selection_survives_load_then_save() {
        // source = "files" keeps its file references: loading a plan and
        // re-saving it must emit the paths, not an inline copy of the
        // specs.
        let dir = std::env::temp_dir().join(format!("drivefi-plan-test-{}", std::process::id()));
        let scenario_dir = dir.join("scenarios");
        std::fs::create_dir_all(&scenario_dir).unwrap();
        let spec = drivefi_world::FamilyRegistry::builtin().get("tailgater").unwrap();
        crate::scenario::save_scenario_spec(scenario_dir.join("tailgater.toml"), spec).unwrap();

        let text = "name = \"files-test\"\n\n[campaign]\nkind = \"random\"\nruns = 2\nseed = 1\n\n\
                    [scenarios]\nsource = \"files\"\nfiles = [\"scenarios/tailgater.toml\"]\n\
                    count = 2\nseed = 5\n";
        let plan_path = dir.join("plan.toml");
        std::fs::write(&plan_path, text).unwrap();

        let loaded = CampaignPlan::load(&plan_path).unwrap();
        let ScenarioSelection::Files { files, specs, .. } = &loaded.scenarios else {
            panic!("files selection degraded to {:?}", loaded.scenarios);
        };
        assert_eq!(files, &vec![String::from("scenarios/tailgater.toml")]);
        assert_eq!(&specs[0], spec);

        let resaved = plan_path.with_file_name("resaved.toml");
        loaded.save(&resaved).unwrap();
        let emitted = std::fs::read_to_string(&resaved).unwrap();
        assert!(emitted.contains("source = \"files\""), "degraded to inline:\n{emitted}");
        assert!(emitted.contains("scenarios/tailgater.toml"));
        assert_eq!(CampaignPlan::load(&resaved).unwrap(), loaded);

        // Without a base directory the source is rejected, not guessed.
        assert!(parse_campaign_plan(text).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sim_section_defaults_mirror_ads_config() {
        let section = SimSection::default();
        let ads = drivefi_ads::AdsConfig::default();
        assert_eq!(section.planner_divisor, ads.planner_divisor);
        assert_eq!(section.kalman_fusion, ads.kalman_fusion);
        assert_eq!(section.pid_smoothing, ads.pid_smoothing);
        assert_eq!(section.watchdog, ads.watchdog);
        // apply() round-trips the switches into a SimConfig.
        let mut config = SimConfig::default();
        SimSection {
            planner_divisor: 4,
            kalman_fusion: false,
            pid_smoothing: false,
            watchdog: false,
            batch: None,
        }
        .apply(&mut config);
        assert_eq!(config.ads.planner_divisor, 4);
        assert!(!config.ads.kalman_fusion && !config.ads.pid_smoothing && !config.ads.watchdog);
    }

    #[test]
    fn sim_and_output_sections_round_trip() {
        let mut plan = tiny_random_plan();
        plan.sim = SimSection {
            planner_divisor: 3,
            kalman_fusion: false,
            pid_smoothing: true,
            watchdog: false,
            batch: Some(16),
        };
        plan.output = Some(OutputSpec { dir: "out/tiny".into(), shards: 7, checkpoint_every: 99 });
        let text = emit_campaign_plan(&plan);
        assert!(text.contains("[sim]") && text.contains("[output]"), "{text}");
        assert_eq!(parse_campaign_plan(&text).unwrap(), plan);

        // The default [sim] is omitted, not emitted as noise.
        let default_text = emit_campaign_plan(&tiny_random_plan());
        assert!(!default_text.contains("[sim]"), "{default_text}");
    }

    #[test]
    fn sim_section_rejects_unknown_keys_and_bad_values() {
        let base = {
            let mut plan = tiny_random_plan();
            plan.sim = SimSection { kalman_fusion: false, ..SimSection::default() };
            emit_campaign_plan(&plan)
        };
        assert!(parse_campaign_plan(&base).is_ok());
        for (mutation, needle) in [
            // Unknown keys in [sim] are rejected, not ignored.
            (base.replace("kalman_fusion = false", "kalman_fuzion = false"), "unknown key"),
            (
                base.replace("kalman_fusion = false", "kalman_fusion = false\nturbo_mode = true"),
                "unknown key `turbo_mode`",
            ),
            // Type and range violations.
            (base.replace("kalman_fusion = false", "kalman_fusion = 1"), "must be a boolean"),
            (
                base.replace("kalman_fusion = false", "kalman_fusion = false\nplanner_divisor = 0"),
                "planner_divisor",
            ),
            (
                base.replace("kalman_fusion = false", "kalman_fusion = false\nbatch = 0"),
                "`batch` must be at least 1",
            ),
            (
                base.replace("kalman_fusion = false", "kalman_fusion = false\nbatch = \"wide\""),
                "batch",
            ),
        ] {
            let err = parse_campaign_plan(&mutation)
                .expect_err(&format!("mutation should fail: {needle}"));
            assert!(err.to_string().contains(needle), "wanted `{needle}`, got: {err}");
        }
    }

    #[test]
    fn output_sections_are_validated() {
        // Store-backed exhaustive plans are legal (the sweep persists
        // under dir/sweep/) — only the bad [output] values are rejected.
        let text = "name = \"x\"\n\n[campaign]\nkind = \"exhaustive\"\n\n[scenarios]\n\
                    source = \"paper\"\ncount = 1\nseed = 0\n\n[output]\ndir = \"out/x\"\n";
        let plan = parse_campaign_plan(text).expect("[output] on exhaustive is store-backed");
        assert_eq!(plan.kind, CampaignKind::Exhaustive { scene_stride: 1 });
        assert_eq!(plan.kind.store_subdir(), Some(SWEEP_SUBDIR));
        let base = {
            let mut plan = tiny_random_plan();
            plan.output = Some(OutputSpec::new("out/tiny"));
            emit_campaign_plan(&plan)
        };
        for (mutation, needle) in [
            (base.replace("dir = \"out/tiny\"", "dir = \"\""), "dir"),
            (base.replace("shards = 4", "shards = 0"), "shards"),
            (base.replace("checkpoint_every = 256", "checkpoint_every = 0"), "checkpoint_every"),
        ] {
            let err = parse_campaign_plan(&mutation).expect_err(needle);
            assert!(err.to_string().contains(needle), "wanted `{needle}`, got: {err}");
        }
    }

    #[test]
    fn mine_plans_round_trip_and_enforce_their_schema() {
        let plan = CampaignPlan {
            name: "mine".into(),
            kind: CampaignKind::Mine { scene_stride: 25 },
            seed: 0,
            workers: Some(4),
            sink: SinkChoice::Stats,
            scenarios: ScenarioSelection::Paper { count: 2, seed: 42 },
            faults: FaultSpace::default(),
            sim: SimSection::default(),
            submit: Default::default(),
            control: Default::default(),
            output: Some(OutputSpec::new("out/mine")),
        };
        let text = emit_campaign_plan(&plan);
        assert!(!text.contains("sink"), "mine plans carry no sink:\n{text}");
        assert_eq!(parse_campaign_plan(&text).unwrap(), plan);
        assert_eq!(plan.kind.store_subdir(), Some(VALIDATE_SUBDIR));

        // A mine plan without an [output] store is rejected at parse time
        // (the pipeline is resumable-from-disk by definition)...
        let start = text.find("\n[output]").expect("mine plan has an [output] section");
        let end = text.find("\n[scenarios]").expect("sections emit alphabetically");
        let without_output = format!("{}{}", &text[..start], &text[end..]);
        let err = parse_campaign_plan(&without_output).expect_err("mine without [output]");
        assert!(err.to_string().contains("[output]"), "got: {err}");
        // ...and at run time for hand-built plans.
        let mut no_output = plan.clone();
        no_output.output = None;
        let err = run_plan(&no_output).expect_err("mine without output store");
        assert!(err.to_string().contains("[output]"), "got: {err}");

        // runs / sink / [faults] are rejected rather than ignored.
        for (mutation, needle) in [
            (
                text.replace("kind = \"mine\"", "kind = \"mine\"\nruns = 4"),
                "`runs` is not valid for mine",
            ),
            (
                text.replace("kind = \"mine\"", "kind = \"mine\"\nsink = \"stats\""),
                "`sink` is not valid for mine",
            ),
            (
                text.replace("scene_stride = 25", "scene_stride = 0"),
                "`scene_stride` must be at least 1",
            ),
            (format!("{text}\n[faults]\nmodules = [\"world.clear\"]\n"), "mine"),
        ] {
            let err = parse_campaign_plan(&mutation).expect_err(needle);
            assert!(err.to_string().contains(needle), "wanted `{needle}`, got: {err}");
        }
    }

    #[test]
    fn fingerprint_ignores_scheduling_knobs_but_not_computation() {
        let base = tiny_random_plan();
        let fp = campaign_fingerprint(&base);
        // Pure scheduling/destination knobs: same identity.
        let mut rescheduled = base.clone();
        rescheduled.workers = Some(64);
        rescheduled.output = Some(OutputSpec::new("somewhere/else"));
        assert_eq!(campaign_fingerprint(&rescheduled), fp);
        let mut no_workers = base.clone();
        no_workers.workers = None;
        assert_eq!(campaign_fingerprint(&no_workers), fp);
        // The batch width is scheduling too: rebatching never
        // invalidates a store resume.
        let mut rebatched = base.clone();
        rebatched.sim.batch = Some(1);
        assert_eq!(campaign_fingerprint(&rebatched), fp);
        // Daemon scheduling metadata: reweighting a submission never
        // invalidates a store resume either.
        let mut reweighted = base.clone();
        reweighted.submit = SubmitSection { weight: 8 };
        assert_eq!(campaign_fingerprint(&reweighted), fp);
        // Anything the campaign computes: different identity.
        for mutate in [
            |p: &mut CampaignPlan| p.seed += 1,
            |p: &mut CampaignPlan| p.kind = CampaignKind::Random { runs: 7 },
            |p: &mut CampaignPlan| p.scenarios = ScenarioSelection::Paper { count: 3, seed: 42 },
            |p: &mut CampaignPlan| p.sim.watchdog = false,
        ] {
            let mut changed = base.clone();
            mutate(&mut changed);
            assert_ne!(campaign_fingerprint(&changed), fp);
        }
    }

    #[test]
    fn files_selections_fingerprint_spec_contents_not_paths() {
        let registry = drivefi_world::FamilyRegistry::builtin();
        let spec_a = registry.get("tailgater").unwrap().clone();
        let spec_b = registry.get("debris_field").unwrap().clone();
        let files_plan = |files: Vec<String>, specs: Vec<ScenarioSpec>| CampaignPlan {
            scenarios: ScenarioSelection::Files { files, specs, count: 2, seed: 5 },
            ..tiny_random_plan()
        };
        // Same contents under a different path: same identity (a moved
        // store keeps resuming).
        let a = files_plan(vec!["x/tailgater.toml".into()], vec![spec_a.clone()]);
        let moved = files_plan(vec!["y/renamed.toml".into()], vec![spec_a.clone()]);
        assert_eq!(campaign_fingerprint(&a), campaign_fingerprint(&moved));
        // Same path, edited contents: different identity (an edited spec
        // refuses to append to the old shards).
        let edited = files_plan(vec!["x/tailgater.toml".into()], vec![spec_b]);
        assert_ne!(campaign_fingerprint(&a), campaign_fingerprint(&edited));
    }

    #[test]
    fn submit_section_parses_validates_and_round_trips() {
        let text = "name = \"weighted\"\n\n[campaign]\nkind = \"random\"\nruns = 2\n\n\
                    [scenarios]\nsource = \"paper\"\ncount = 1\nseed = 0\n\n[submit]\nweight = 3\n";
        let plan = parse_campaign_plan(text).unwrap();
        assert_eq!(plan.submit, SubmitSection { weight: 3 });
        // Emit → parse round-trips, and a default weight emits no
        // [submit] section at all.
        let reparsed = parse_campaign_plan(&emit_campaign_plan(&plan)).unwrap();
        assert_eq!(reparsed.submit, plan.submit);
        let mut unweighted = plan;
        unweighted.submit = SubmitSection::default();
        assert!(!emit_campaign_plan(&unweighted).contains("submit"));
        // Out-of-range and unknown keys are parse errors.
        let err =
            parse_campaign_plan(&text.replace("weight = 3", "weight = 0")).expect_err("weight 0");
        assert!(err.to_string().contains("weight"), "got: {err}");
        let err =
            parse_campaign_plan(&text.replace("weight = 3", "weight = 65")).expect_err("weight 65");
        assert!(err.to_string().contains("weight"), "got: {err}");
        let err = parse_campaign_plan(&text.replace("weight = 3", "velocity = 3"))
            .expect_err("unknown submit key");
        assert!(err.to_string().contains("velocity"), "got: {err}");
    }

    #[test]
    fn outcome_sink_cannot_combine_with_an_output_store() {
        let mut plan = tiny_random_plan();
        plan.sink = SinkChoice::Outcomes;
        plan.output = Some(OutputSpec::new("out/x"));
        // Hand-built plans error at run time, before anything — the
        // control point included — touches the output directory...
        let err = run_plan(&plan).expect_err("outcomes + output");
        assert!(err.to_string().contains("jobs.csv"), "got: {err}");
        assert!(!std::path::Path::new("out/x").exists(), "invalid plan must not create its store");
        // ...and plan files at parse time.
        let text = "name = \"x\"\n\n[campaign]\nkind = \"random\"\nruns = 2\n\
                    sink = \"outcomes\"\n\n[scenarios]\nsource = \"paper\"\ncount = 1\n\
                    seed = 0\n\n[output]\ndir = \"out/x\"\n";
        let err = parse_campaign_plan(text).expect_err("outcomes + output parses");
        assert!(err.to_string().contains("outcomes"), "got: {err}");
    }

    #[test]
    fn golden_plans_round_trip_and_reject_fault_config() {
        let plan = CampaignPlan {
            name: "golden".into(),
            kind: CampaignKind::Golden,
            seed: 0,
            workers: Some(2),
            sink: SinkChoice::Stats,
            scenarios: ScenarioSelection::Paper { count: 2, seed: 42 },
            faults: FaultSpace::default(),
            sim: SimSection::default(),
            submit: Default::default(),
            control: Default::default(),
            output: None,
        };
        let text = emit_campaign_plan(&plan);
        assert!(!text.contains("sink"), "golden plans carry no sink:\n{text}");
        assert_eq!(parse_campaign_plan(&text).unwrap(), plan);
        for (extra, needle) in
            [("runs = 4", "`runs` is not valid"), ("sink = \"stats\"", "`sink` is not valid")]
        {
            let mutated = text.replace("kind = \"golden\"", &format!("kind = \"golden\"\n{extra}"));
            let err = parse_campaign_plan(&mutated).expect_err(needle);
            assert!(err.to_string().contains(needle), "wanted `{needle}`, got: {err}");
        }
        let with_faults = format!("{text}\n[faults]\nmodules = [\"world.clear\"]\n");
        let err = parse_campaign_plan(&with_faults).expect_err("[faults] on golden");
        assert!(err.to_string().contains("golden"), "got: {err}");
    }

    #[test]
    fn golden_plans_collect_the_suite_traces() {
        let plan = CampaignPlan {
            name: "golden".into(),
            kind: CampaignKind::Golden,
            seed: 0,
            workers: Some(2),
            sink: SinkChoice::Stats,
            scenarios: ScenarioSelection::Paper { count: 2, seed: 42 },
            faults: FaultSpace::default(),
            sim: SimSection::default(),
            submit: Default::default(),
            control: Default::default(),
            output: None,
        };
        let PlanResult::Golden(traces) = run_plan(&plan).unwrap() else {
            panic!("golden plan must produce traces");
        };
        let typed =
            collect_golden_traces(&SimConfig::default(), &ScenarioSuite::generate(2, 42), 2);
        assert_eq!(traces.len(), 2);
        for (plan_trace, typed_trace) in traces.iter().zip(&typed) {
            assert_eq!(plan_trace.scenario_id, typed_trace.scenario_id);
            assert_eq!(plan_trace.frames.len(), typed_trace.frames.len());
        }
    }

    #[test]
    fn persisted_random_plan_matches_in_memory_stats() {
        let dir = std::env::temp_dir().join(format!("drivefi-plan-store-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let mut plan = tiny_random_plan();
        plan.output = Some(OutputSpec::new(dir.to_string_lossy().into_owned()));
        let PlanResult::Persisted(report) = run_plan(&plan).unwrap() else {
            panic!("output plans persist");
        };
        assert!(report.complete());
        assert_eq!(report.kind, "random");

        plan.output = None;
        let PlanResult::Random(stats) = run_plan(&plan).unwrap() else {
            panic!("expected random stats");
        };
        assert_eq!(report.jobs.len(), stats.runs);
        assert_eq!(report.safe(), stats.safe as u64);
        assert_eq!(report.hazards(), stats.hazards as u64);
        assert_eq!(report.collisions(), stats.collisions as u64);
        assert_eq!(report.effective_injections(), stats.effective_injections as u64);
        // The saved artifact loads back equal.
        assert_eq!(crate::report::PlanReport::load(&dir).unwrap(), report);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn budget_capped_run_resumes_to_the_same_report() {
        let dir = std::env::temp_dir().join(format!("drivefi-plan-resume-{}", std::process::id()));
        let full_dir = dir.join("full");
        let part_dir = dir.join("part");
        std::fs::remove_dir_all(&dir).ok();

        let mut plan = tiny_random_plan();
        plan.output = Some(OutputSpec::new(full_dir.to_string_lossy().into_owned()));
        let PlanResult::Persisted(full) = run_plan(&plan).unwrap() else { panic!() };

        plan.output = Some(OutputSpec::new(part_dir.to_string_lossy().into_owned()));
        let PlanResult::Persisted(partial) = run_plan_budget(&plan, Some(2)).unwrap() else {
            panic!()
        };
        assert_eq!(partial.jobs.len(), 2);
        assert!(!partial.complete());
        let PlanResult::Persisted(resumed) = run_plan(&plan).unwrap() else { panic!() };
        assert!(resumed.complete());
        assert_eq!(resumed.jobs, full.jobs);
        for file in [crate::report::REPORT_FILE, crate::report::JOBS_FILE] {
            let a = std::fs::read(full_dir.join(file)).unwrap();
            let b = std::fs::read(part_dir.join(file)).unwrap();
            assert_eq!(a, b, "{file} differs between full and resumed runs");
        }

        // A different plan refuses to adopt the store.
        plan.seed += 1;
        let err = run_plan(&plan).expect_err("fingerprint mismatch");
        assert!(err.to_string().contains("fingerprint"), "got: {err}");
        // A budget without a store is an error, not a silent no-op.
        plan.output = None;
        assert!(run_plan_budget(&plan, Some(1)).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn run_plan_matches_typed_random_campaign() {
        let plan = tiny_random_plan();
        let PlanResult::Random(from_plan) = run_plan(&plan).unwrap() else {
            panic!("expected random stats");
        };
        let suite = ScenarioSuite::generate(2, 42);
        let typed = random_space_campaign(
            &SimConfig::default(),
            &suite,
            &FaultSpace::default(),
            &RandomCampaignConfig { runs: 6, seed: 3, workers: 4 },
        );
        assert_eq!(from_plan.runs, typed.runs);
        assert_eq!(from_plan.safe, typed.safe);
        assert_eq!(from_plan.hazards, typed.hazards);
        assert_eq!(from_plan.collisions, typed.collisions);
        assert_eq!(from_plan.effective_injections, typed.effective_injections);
        assert_eq!(from_plan.hazard_details, typed.hazard_details);
    }

    #[test]
    fn outcome_sink_agrees_with_stats_sink() {
        let mut plan = tiny_random_plan();
        plan.sink = SinkChoice::Outcomes;
        let PlanResult::RandomOutcomes { running, outcomes } = run_plan(&plan).unwrap() else {
            panic!("expected outcome list");
        };
        assert_eq!(outcomes.len(), 6);
        let hazardous = outcomes.iter().filter(|o| o.is_hazardous()).count();
        assert_eq!(hazardous, running.hazards + running.collisions);
        plan.sink = SinkChoice::Stats;
        let PlanResult::Random(stats) = run_plan(&plan).unwrap() else {
            panic!("expected random stats");
        };
        assert_eq!(stats.hazards + stats.collisions, hazardous);
    }
}
