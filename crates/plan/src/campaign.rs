//! Declarative campaign plans: run any campaign from a `.toml` file.
//!
//! A [`CampaignPlan`] is the whole experiment as data — which campaign
//! to run, over which scenarios, sweeping which [`FaultSpace`], with
//! which budget/seed/workers and which sink:
//!
//! ```toml
//! name = "random-baseline"
//!
//! [campaign]
//! kind = "random"     # or "exhaustive"
//! runs = 60
//! seed = 1
//! sink = "stats"      # or "outcomes" (per-run outcome list)
//!
//! [scenarios]
//! source = "paper"    # "paper" | "extended" | "families" | "inline" | "files"
//! count = 8
//! seed = 42
//!
//! [faults]
//! signals = "all"     # or a list of signal names
//! models = ["min", "max"]
//! modules = []        # e.g. ["world.clear", "planning.hang"]
//! first_scene = 1
//! tail_margin = 1
//! window_scenes = 1
//! ```
//!
//! [`run_plan`] executes a plan through the exact same driver code the
//! typed API uses ([`drivefi_core::random_space_campaign`],
//! [`drivefi_core::exhaustive_comparison`]), so a plan file reproduces
//! the typed calls number-for-number — the `campaign_plan` example
//! asserts this equality end to end.

use crate::scenario::{
    as_array, as_str, as_table, as_uint, expect_keys, get, scenario_spec_from_toml,
    scenario_spec_to_toml,
};
use crate::toml::{emit_document, parse_document, Map, Toml};
use crate::PlanError;
use drivefi_ads::Signal;
use drivefi_core::{
    collect_golden_traces, exhaustive_comparison, random_fault_picks, random_space_campaign,
    BayesianMiner, ExhaustiveReport, MinerConfig, RandomCampaignConfig, RandomCampaignStats,
};
use drivefi_fault::{CorruptionGrid, FaultSpace, ScalarFaultModel};
use drivefi_sim::{CampaignEngine, Outcome, RunningStats, SimConfig};
use drivefi_world::spec::ScenarioSpec;
use drivefi_world::ScenarioSuite;

/// Which campaign a plan runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CampaignKind {
    /// The random baseline: `runs` faults sampled uniformly from the
    /// fault space × scenario suite.
    Random {
        /// Number of injection runs.
        runs: usize,
    },
    /// The exhaustive ground-truth comparison (golden traces → miner fit
    /// → inject every candidate → precision/recall).
    Exhaustive {
        /// Evaluate every `scene_stride`-th eligible scene.
        scene_stride: usize,
    },
}

/// Which sink consumes a random campaign's results.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SinkChoice {
    /// Constant-memory streaming statistics ([`RandomCampaignStats`]).
    Stats,
    /// Statistics plus the per-run outcome list, in submission order.
    Outcomes,
}

/// The scenario workload of a plan.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioSelection {
    /// `count` scenarios cycling the paper-era family mix
    /// ([`ScenarioSuite::generate`]).
    Paper {
        /// Suite size.
        count: u32,
        /// Suite seed.
        seed: u64,
    },
    /// `count` scenarios cycling the extended mix
    /// ([`ScenarioSuite::extended`]).
    Extended {
        /// Suite size.
        count: u32,
        /// Suite seed.
        seed: u64,
    },
    /// `count` scenarios cycling the named registry families.
    Families {
        /// Builtin family names, cycled in order.
        names: Vec<String>,
        /// Suite size.
        count: u32,
        /// Suite seed.
        seed: u64,
    },
    /// `count` scenarios cycling inline specs that never touch the
    /// builtin registry.
    Inline {
        /// The specs, cycled in order.
        specs: Vec<ScenarioSpec>,
        /// Suite size.
        count: u32,
        /// Suite seed.
        seed: u64,
    },
    /// `count` scenarios cycling specs loaded from `.toml` files. The
    /// file paths (relative to the plan file) are kept alongside the
    /// resolved specs, so a loaded plan re-saves as `source = "files"`
    /// instead of silently degrading to an inline copy.
    Files {
        /// Spec paths, relative to the plan file's directory.
        files: Vec<String>,
        /// The specs those files resolved to at load time.
        specs: Vec<ScenarioSpec>,
        /// Suite size.
        count: u32,
        /// Suite seed.
        seed: u64,
    },
}

impl ScenarioSelection {
    /// Builds the scenario suite this selection describes.
    pub fn build_suite(&self) -> ScenarioSuite {
        match self {
            ScenarioSelection::Paper { count, seed } => ScenarioSuite::generate(*count, *seed),
            ScenarioSelection::Extended { count, seed } => ScenarioSuite::extended(*count, *seed),
            ScenarioSelection::Families { names, count, seed } => {
                let names: Vec<&str> = names.iter().map(String::as_str).collect();
                ScenarioSuite::from_families(&names, *count, *seed)
            }
            ScenarioSelection::Inline { specs, count, seed }
            | ScenarioSelection::Files { specs, count, seed, .. } => {
                ScenarioSuite::from_specs(specs, *count, *seed)
            }
        }
    }
}

/// A complete, serializable campaign description.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignPlan {
    /// Human-readable plan name.
    pub name: String,
    /// What to run.
    pub kind: CampaignKind,
    /// Campaign RNG seed (fault sampling for random campaigns).
    pub seed: u64,
    /// Worker threads (`None` = [`drivefi_sim::default_workers`]).
    pub workers: Option<usize>,
    /// Result sink (random campaigns only; the exhaustive report shape
    /// is fixed, so exhaustive plans must leave this at
    /// [`SinkChoice::Stats`] and their files must omit `sink`).
    pub sink: SinkChoice,
    /// The scenario workload.
    pub scenarios: ScenarioSelection,
    /// The fault space sampled by random campaigns. Exhaustive
    /// campaigns sweep the *miner's* candidate space (mined signals ×
    /// {min, max} at the validation window) — a `[faults]` section in
    /// an exhaustive plan is rejected at parse time rather than
    /// silently ignored, and this field must stay at
    /// [`FaultSpace::default`].
    pub faults: FaultSpace,
}

/// What [`run_plan`] produced.
#[derive(Debug, Clone)]
pub enum PlanReport {
    /// A random campaign's streaming statistics.
    Random(RandomCampaignStats),
    /// A random campaign with the per-run outcome list retained.
    RandomOutcomes {
        /// Streaming outcome counters.
        running: RunningStats,
        /// Every run's outcome, in submission order.
        outcomes: Vec<Outcome>,
    },
    /// The exhaustive ground-truth comparison.
    Exhaustive(ExhaustiveReport),
}

/// Executes a plan through the campaign engine and the standard
/// drivers. Deterministic: the same plan always produces the same
/// report, regardless of worker count.
pub fn run_plan(plan: &CampaignPlan) -> PlanReport {
    let sim = SimConfig::default();
    let suite = plan.scenarios.build_suite();
    let workers = plan.workers.unwrap_or_else(drivefi_sim::default_workers);
    match plan.kind {
        CampaignKind::Random { runs } => {
            let config = RandomCampaignConfig { runs, seed: plan.seed, workers };
            match plan.sink {
                SinkChoice::Stats => {
                    PlanReport::Random(random_space_campaign(&sim, &suite, &plan.faults, &config))
                }
                SinkChoice::Outcomes => {
                    let picks = random_fault_picks(&suite, &plan.faults, &config);
                    let engine = CampaignEngine::new(sim).with_workers(workers);
                    let shared = suite.shared();
                    let jobs = picks.iter().enumerate().map(|(id, &(index, spec))| {
                        drivefi_sim::CampaignJob {
                            id: id as u64,
                            scenario: std::sync::Arc::clone(&shared[index]),
                            faults: vec![spec.compile()],
                        }
                    });
                    let mut running = RunningStats::new();
                    let mut outcomes: Vec<Option<Outcome>> = vec![None; picks.len()];
                    engine.run(jobs, &mut |index: u64, result: drivefi_sim::CampaignResult| {
                        outcomes[index as usize] = Some(result.report.outcome);
                        drivefi_sim::CampaignSink::accept(&mut running, index, result);
                    });
                    PlanReport::RandomOutcomes {
                        running,
                        outcomes: outcomes
                            .into_iter()
                            .map(|o| o.expect("every job produces a result"))
                            .collect(),
                    }
                }
            }
        }
        CampaignKind::Exhaustive { scene_stride } => {
            let traces = collect_golden_traces(&sim, &suite, workers);
            let config = MinerConfig { scene_stride, ..MinerConfig::default() };
            let miner = BayesianMiner::fit(&traces, config).expect("model fit on golden traces");
            PlanReport::Exhaustive(exhaustive_comparison(&sim, &suite, &miner, &traces, workers))
        }
    }
}

// ---------------------------------------------------------------------------
// TOML conversion
// ---------------------------------------------------------------------------

fn model_names(models: &[ScalarFaultModel]) -> Toml {
    Toml::Array(models.iter().map(|m| Toml::Str(m.name())).collect())
}

fn fault_space_to_toml(space: &FaultSpace) -> Map {
    let default = FaultSpace::default();
    let signals = if space.scalars.items == default.scalars.items {
        Toml::Str("all".into())
    } else {
        Toml::Array(space.scalars.items.iter().map(|s| Toml::Str(s.name().into())).collect())
    };
    Map::from([
        ("signals".into(), signals),
        ("models".into(), model_names(&space.scalars.models)),
        (
            "modules".into(),
            Toml::Array(space.modules.iter().map(|m| Toml::Str(m.name())).collect()),
        ),
        ("first_scene".into(), Toml::Int(space.first_scene as i64)),
        ("tail_margin".into(), Toml::Int(space.tail_margin as i64)),
        ("window_scenes".into(), Toml::Int(space.window_scenes as i64)),
    ])
}

fn fault_space_from_toml(table: &Map) -> Result<FaultSpace, PlanError> {
    expect_keys(
        table,
        "[faults]",
        &["signals", "models", "modules", "first_scene", "tail_margin", "window_scenes"],
    )?;
    let default = FaultSpace::default();

    let signals: Vec<Signal> = match table.get("signals") {
        None => default.scalars.items.clone(),
        Some(Toml::Str(s)) if s == "all" => Signal::ALL.to_vec(),
        Some(Toml::Array(names)) => names
            .iter()
            .map(|n| {
                let name = as_str(n, "signal name")?;
                Signal::from_name(name)
                    .ok_or_else(|| PlanError::new(format!("unknown signal `{name}`")))
            })
            .collect::<Result<_, _>>()?,
        Some(other) => {
            return Err(PlanError::new(format!(
                "`signals` must be \"all\" or a list of names, got {}",
                other.type_name()
            )))
        }
    };

    let models: Vec<ScalarFaultModel> = match table.get("models") {
        None => default.scalars.models.clone(),
        Some(value) => as_array(value, "`models`")?
            .iter()
            .map(|m| {
                let name = as_str(m, "model name")?;
                ScalarFaultModel::parse(name)
                    .ok_or_else(|| PlanError::new(format!("unknown fault model `{name}`")))
            })
            .collect::<Result<_, _>>()?,
    };

    let modules = match table.get("modules") {
        None => Vec::new(),
        Some(value) => as_array(value, "`modules`")?
            .iter()
            .map(|m| {
                let name = as_str(m, "module fault name")?;
                FaultSpace::parse_module(name)
                    .ok_or_else(|| PlanError::new(format!("unknown module fault `{name}`")))
            })
            .collect::<Result<_, _>>()?,
    };

    let uint_or = |key: &str, fallback: u64| -> Result<u64, PlanError> {
        match table.get(key) {
            None => Ok(fallback),
            Some(v) => as_uint(v, &format!("`{key}`")),
        }
    };
    let first_scene = uint_or("first_scene", default.first_scene)?;
    let tail_margin = uint_or("tail_margin", default.tail_margin)?;
    let window_scenes = uint_or("window_scenes", default.window_scenes)?;
    if window_scenes == 0 {
        return Err(PlanError::new("`window_scenes` must be at least 1".into()));
    }

    let space = FaultSpace {
        scalars: CorruptionGrid::new(signals, models),
        modules,
        first_scene,
        tail_margin,
        window_scenes,
    };
    if space.kind_count() == 0 {
        return Err(PlanError::new(
            "the fault space is empty: no (signal, model) pairs and no module faults".into(),
        ));
    }
    Ok(space)
}

/// Converts a plan to its TOML document tree.
pub fn campaign_plan_to_toml(plan: &CampaignPlan) -> Map {
    let mut campaign = Map::from([
        ("seed".into(), Toml::Int(plan.seed as i64)),
        (
            "sink".into(),
            Toml::Str(match plan.sink {
                SinkChoice::Stats => "stats".into(),
                SinkChoice::Outcomes => "outcomes".into(),
            }),
        ),
    ]);
    match plan.kind {
        CampaignKind::Random { runs } => {
            campaign.insert("kind".into(), Toml::Str("random".into()));
            campaign.insert("runs".into(), Toml::Int(runs as i64));
        }
        CampaignKind::Exhaustive { scene_stride } => {
            campaign.insert("kind".into(), Toml::Str("exhaustive".into()));
            campaign.insert("scene_stride".into(), Toml::Int(scene_stride as i64));
            // The exhaustive driver has a fixed report and sweeps the
            // miner's candidate space — `sink` and `[faults]` are
            // rejected by the parser, so the emitter must omit them.
            campaign.remove("sink");
        }
    }
    if let Some(workers) = plan.workers {
        campaign.insert("workers".into(), Toml::Int(workers as i64));
    }

    let scenarios = match &plan.scenarios {
        ScenarioSelection::Paper { count, seed } => Map::from([
            ("source".into(), Toml::Str("paper".into())),
            ("count".into(), Toml::Int(*count as i64)),
            ("seed".into(), Toml::Int(*seed as i64)),
        ]),
        ScenarioSelection::Extended { count, seed } => Map::from([
            ("source".into(), Toml::Str("extended".into())),
            ("count".into(), Toml::Int(*count as i64)),
            ("seed".into(), Toml::Int(*seed as i64)),
        ]),
        ScenarioSelection::Families { names, count, seed } => Map::from([
            ("source".into(), Toml::Str("families".into())),
            ("families".into(), Toml::Array(names.iter().map(|n| Toml::Str(n.clone())).collect())),
            ("count".into(), Toml::Int(*count as i64)),
            ("seed".into(), Toml::Int(*seed as i64)),
        ]),
        ScenarioSelection::Inline { specs, count, seed } => Map::from([
            ("source".into(), Toml::Str("inline".into())),
            (
                "spec".into(),
                Toml::Array(specs.iter().map(|s| Toml::Table(scenario_spec_to_toml(s))).collect()),
            ),
            ("count".into(), Toml::Int(*count as i64)),
            ("seed".into(), Toml::Int(*seed as i64)),
        ]),
        // The resolved specs are deliberately *not* embedded: the files
        // stay the source of truth, and re-saving a loaded plan keeps
        // its link to them (validate_plans' drift gate still applies).
        ScenarioSelection::Files { files, count, seed, .. } => Map::from([
            ("source".into(), Toml::Str("files".into())),
            ("files".into(), Toml::Array(files.iter().map(|f| Toml::Str(f.clone())).collect())),
            ("count".into(), Toml::Int(*count as i64)),
            ("seed".into(), Toml::Int(*seed as i64)),
        ]),
    };

    let mut doc = Map::from([
        ("name".into(), Toml::Str(plan.name.clone())),
        ("campaign".into(), Toml::Table(campaign)),
        ("scenarios".into(), Toml::Table(scenarios)),
    ]);
    if matches!(plan.kind, CampaignKind::Random { .. }) {
        doc.insert("faults".into(), Toml::Table(fault_space_to_toml(&plan.faults)));
    }
    doc
}

/// Renders a plan as a TOML document string.
pub fn emit_campaign_plan(plan: &CampaignPlan) -> String {
    emit_document(&campaign_plan_to_toml(plan))
}

fn scenarios_from_toml(
    table: &Map,
    base_dir: Option<&std::path::Path>,
) -> Result<ScenarioSelection, PlanError> {
    expect_keys(table, "[scenarios]", &["source", "count", "seed", "families", "spec", "files"])?;
    let source = as_str(get(table, "[scenarios]", "source")?, "`source`")?;
    let count64 = as_uint(get(table, "[scenarios]", "count")?, "`count`")?;
    let count = u32::try_from(count64)
        .ok()
        .filter(|c| *c > 0)
        .ok_or_else(|| PlanError::new(format!("`count` must be in 1..=2^32-1, got {count64}")))?;
    let seed = as_uint(get(table, "[scenarios]", "seed")?, "`seed`")?;
    let forbid = |key: &str| -> Result<(), PlanError> {
        if table.contains_key(key) {
            return Err(PlanError::new(format!(
                "`{key}` is only valid with the matching `source`"
            )));
        }
        Ok(())
    };
    match source {
        "paper" => {
            forbid("families")?;
            forbid("spec")?;
            forbid("files")?;
            Ok(ScenarioSelection::Paper { count, seed })
        }
        "extended" => {
            forbid("families")?;
            forbid("spec")?;
            forbid("files")?;
            Ok(ScenarioSelection::Extended { count, seed })
        }
        "families" => {
            forbid("spec")?;
            forbid("files")?;
            let names: Vec<String> =
                as_array(get(table, "[scenarios]", "families")?, "`families`")?
                    .iter()
                    .map(|n| as_str(n, "family name").map(str::to_owned))
                    .collect::<Result<_, _>>()?;
            if names.is_empty() {
                return Err(PlanError::new("`families` must not be empty".into()));
            }
            let registry = drivefi_world::FamilyRegistry::builtin();
            for name in &names {
                if registry.get(name).is_none() {
                    return Err(PlanError::new(format!(
                        "unknown scenario family `{name}` (registered: {})",
                        registry.names().collect::<Vec<_>>().join(", ")
                    )));
                }
            }
            Ok(ScenarioSelection::Families { names, count, seed })
        }
        "inline" => {
            forbid("families")?;
            forbid("files")?;
            let specs: Vec<ScenarioSpec> = as_array(get(table, "[scenarios]", "spec")?, "`spec`")?
                .iter()
                .map(|s| scenario_spec_from_toml(as_table(s, "scenario spec")?))
                .collect::<Result<_, _>>()?;
            if specs.is_empty() {
                return Err(PlanError::new("`spec` must not be empty".into()));
            }
            Ok(ScenarioSelection::Inline { specs, count, seed })
        }
        "files" => {
            forbid("families")?;
            forbid("spec")?;
            let Some(base) = base_dir else {
                return Err(PlanError::new(
                    "`source = \"files\"` needs a plan file on disk (use CampaignPlan::load)"
                        .into(),
                ));
            };
            let files: Vec<String> = as_array(get(table, "[scenarios]", "files")?, "`files`")?
                .iter()
                .map(|f| as_str(f, "spec path").map(str::to_owned))
                .collect::<Result<_, _>>()?;
            if files.is_empty() {
                return Err(PlanError::new("`files` must not be empty".into()));
            }
            let specs: Vec<ScenarioSpec> = files
                .iter()
                .map(|f| crate::scenario::load_scenario_spec(base.join(f)))
                .collect::<Result<_, _>>()?;
            Ok(ScenarioSelection::Files { files, specs, count, seed })
        }
        other => Err(PlanError::new(format!(
            "unknown scenario source `{other}` (paper, extended, families, inline, files)"
        ))),
    }
}

fn campaign_plan_from_toml(
    doc: &Map,
    base_dir: Option<&std::path::Path>,
) -> Result<CampaignPlan, PlanError> {
    expect_keys(doc, "campaign plan", &["name", "campaign", "scenarios", "faults"])?;
    let name = as_str(get(doc, "campaign plan", "name")?, "`name`")?.to_owned();

    let campaign = as_table(get(doc, "campaign plan", "campaign")?, "[campaign]")?;
    expect_keys(
        campaign,
        "[campaign]",
        &["kind", "runs", "scene_stride", "seed", "workers", "sink"],
    )?;
    let kind_name = as_str(get(campaign, "[campaign]", "kind")?, "`kind`")?;
    let kind = match kind_name {
        "random" => {
            if campaign.contains_key("scene_stride") {
                return Err(PlanError::new(
                    "`scene_stride` is only valid for exhaustive campaigns".into(),
                ));
            }
            let runs = as_uint(get(campaign, "[campaign]", "runs")?, "`runs`")?;
            if runs == 0 {
                return Err(PlanError::new("`runs` must be at least 1".into()));
            }
            CampaignKind::Random { runs: runs as usize }
        }
        "exhaustive" => {
            if campaign.contains_key("runs") {
                return Err(PlanError::new("`runs` is only valid for random campaigns".into()));
            }
            if campaign.contains_key("sink") {
                return Err(PlanError::new(
                    "`sink` is only valid for random campaigns (the exhaustive report is fixed)"
                        .into(),
                ));
            }
            if doc.contains_key("faults") {
                return Err(PlanError::new(
                    "a `[faults]` section is only valid for random campaigns — exhaustive \
                     campaigns sweep the miner's candidate space"
                        .into(),
                ));
            }
            let stride = match campaign.get("scene_stride") {
                None => 1,
                Some(v) => as_uint(v, "`scene_stride`")?,
            };
            if stride == 0 {
                return Err(PlanError::new("`scene_stride` must be at least 1".into()));
            }
            CampaignKind::Exhaustive { scene_stride: stride as usize }
        }
        other => {
            return Err(PlanError::new(format!(
                "unknown campaign kind `{other}` (random, exhaustive)"
            )))
        }
    };
    let seed = match campaign.get("seed") {
        None => 0,
        Some(v) => as_uint(v, "`seed`")?,
    };
    let workers = match campaign.get("workers") {
        None => None,
        Some(v) => {
            let w = as_uint(v, "`workers`")?;
            if w == 0 {
                return Err(PlanError::new("`workers` must be at least 1".into()));
            }
            Some(w as usize)
        }
    };
    let sink = match campaign.get("sink") {
        None => SinkChoice::Stats,
        Some(v) => match as_str(v, "`sink`")? {
            "stats" => SinkChoice::Stats,
            "outcomes" => SinkChoice::Outcomes,
            other => {
                return Err(PlanError::new(format!("unknown sink `{other}` (stats, outcomes)")))
            }
        },
    };

    let scenarios = scenarios_from_toml(
        as_table(get(doc, "campaign plan", "scenarios")?, "[scenarios]")?,
        base_dir,
    )?;

    let faults = match doc.get("faults") {
        None => FaultSpace::default(),
        Some(value) => fault_space_from_toml(as_table(value, "[faults]")?)?,
    };

    Ok(CampaignPlan { name, kind, seed, workers, sink, scenarios, faults })
}

/// Parses a plan from TOML text. File-based scenario sources
/// (`source = "files"`) are rejected here — use [`CampaignPlan::load`]
/// so relative spec paths have a base directory.
///
/// # Errors
///
/// Returns a [`PlanError`] on syntax errors or schema violations.
pub fn parse_campaign_plan(src: &str) -> Result<CampaignPlan, PlanError> {
    campaign_plan_from_toml(&parse_document(src)?, None)
}

impl CampaignPlan {
    /// Loads a plan from a `.toml` file, resolving `source = "files"`
    /// scenario-spec paths relative to the plan file's directory.
    ///
    /// # Errors
    ///
    /// Returns a [`PlanError`] on I/O or parse failure.
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<CampaignPlan, PlanError> {
        let path = path.as_ref();
        let src = std::fs::read_to_string(path)
            .map_err(|e| PlanError::new(format!("reading {}: {e}", path.display())))?;
        let base = path.parent().unwrap_or_else(|| std::path::Path::new("."));
        campaign_plan_from_toml(&parse_document(&src)?, Some(base))
            .map_err(|e| PlanError::new(format!("{}: {e}", path.display())))
    }

    /// Saves the plan as a `.toml` file.
    ///
    /// # Errors
    ///
    /// Returns a [`PlanError`] on I/O failure.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> Result<(), PlanError> {
        let path = path.as_ref();
        std::fs::write(path, emit_campaign_plan(self))
            .map_err(|e| PlanError::new(format!("writing {}: {e}", path.display())))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_random_plan() -> CampaignPlan {
        CampaignPlan {
            name: "tiny".into(),
            kind: CampaignKind::Random { runs: 6 },
            seed: 3,
            workers: Some(4),
            sink: SinkChoice::Stats,
            scenarios: ScenarioSelection::Paper { count: 2, seed: 42 },
            faults: FaultSpace::default(),
        }
    }

    #[test]
    fn plans_round_trip_through_toml() {
        let plans = vec![
            tiny_random_plan(),
            CampaignPlan {
                name: "exhaustive".into(),
                kind: CampaignKind::Exhaustive { scene_stride: 40 },
                seed: 0,
                workers: Some(8),
                sink: SinkChoice::Stats,
                scenarios: ScenarioSelection::Families {
                    names: vec!["cut_in".into(), "tailgater".into()],
                    count: 3,
                    seed: 7,
                },
                faults: FaultSpace::default(),
            },
            CampaignPlan {
                name: "custom-space".into(),
                kind: CampaignKind::Random { runs: 40 },
                seed: 0,
                workers: None,
                sink: SinkChoice::Outcomes,
                scenarios: ScenarioSelection::Families {
                    names: vec!["cut_in".into(), "tailgater".into()],
                    count: 3,
                    seed: 7,
                },
                faults: FaultSpace {
                    scalars: CorruptionGrid::new(
                        vec![Signal::RawThrottle, Signal::FinalBrake],
                        vec![
                            ScalarFaultModel::StuckMax,
                            ScalarFaultModel::Offset(-0.5),
                            ScalarFaultModel::BitFlip(62),
                        ],
                    ),
                    modules: vec![drivefi_fault::FaultKind::ClearWorldModel],
                    first_scene: 10,
                    tail_margin: 20,
                    window_scenes: 6,
                },
            },
            CampaignPlan {
                name: "inline".into(),
                kind: CampaignKind::Random { runs: 4 },
                seed: 9,
                workers: None,
                sink: SinkChoice::Stats,
                scenarios: ScenarioSelection::Inline {
                    specs: vec![drivefi_world::FamilyRegistry::builtin()
                        .get("debris_field")
                        .unwrap()
                        .clone()],
                    count: 2,
                    seed: 5,
                },
                faults: FaultSpace::default(),
            },
        ];
        for plan in plans {
            let text = emit_campaign_plan(&plan);
            let parsed =
                parse_campaign_plan(&text).unwrap_or_else(|e| panic!("{}: {e}\n{text}", plan.name));
            assert_eq!(parsed, plan, "{} drifted through TOML", plan.name);
        }
    }

    #[test]
    fn malformed_plans_are_rejected() {
        let base = emit_campaign_plan(&tiny_random_plan());
        assert!(parse_campaign_plan(&base).is_ok());
        // `base` with the whole [faults] section removed (sections emit
        // alphabetically, so [scenarios] follows [faults]).
        let without_faults = {
            let start = base.find("\n[faults]").expect("base has a [faults] section");
            let end = base.find("\n[scenarios]").expect("base has a [scenarios] section");
            format!("{}{}", &base[..start], &base[end..])
        };
        for (mutation, needle) in [
            (base.replace("kind = \"random\"", "kind = \"chaos\""), "unknown campaign kind"),
            (base.replace("runs = 6", "runs = 0"), "runs"),
            (
                base.replace("source = \"paper\"", "source = \"imaginary\""),
                "unknown scenario source",
            ),
            (base.replace("signals = \"all\"", "signals = [\"plan.warp\"]"), "unknown signal"),
            (
                base.replace("models = [\"min\", \"max\"]", "models = [\"warp(2)\"]"),
                "unknown fault model",
            ),
            (base.replace("window_scenes = 1", "window_scenes = 0"), "window_scenes"),
            (base.replace("seed = 3", "velocity = 3"), "unknown key"),
            (base.replace("count = 2", "count = 0"), "count"),
            // An exhaustive campaign cannot carry a [faults] section or
            // a sink — rejected rather than silently ignored.
            (
                base.replace("kind = \"random\"\nruns = 6", "kind = \"exhaustive\"")
                    .replace("sink = \"stats\"\n", ""),
                "`[faults]` section is only valid for random",
            ),
            (
                without_faults.replace("kind = \"random\"\nruns = 6", "kind = \"exhaustive\""),
                "`sink` is only valid for random",
            ),
        ] {
            let err = parse_campaign_plan(&mutation)
                .expect_err(&format!("mutation should fail: {needle}"));
            assert!(err.to_string().contains(needle), "wanted `{needle}`, got: {err}");
        }
    }

    #[test]
    fn files_selection_survives_load_then_save() {
        // source = "files" keeps its file references: loading a plan and
        // re-saving it must emit the paths, not an inline copy of the
        // specs.
        let dir = std::env::temp_dir().join(format!("drivefi-plan-test-{}", std::process::id()));
        let scenario_dir = dir.join("scenarios");
        std::fs::create_dir_all(&scenario_dir).unwrap();
        let spec = drivefi_world::FamilyRegistry::builtin().get("tailgater").unwrap();
        crate::scenario::save_scenario_spec(scenario_dir.join("tailgater.toml"), spec).unwrap();

        let text = "name = \"files-test\"\n\n[campaign]\nkind = \"random\"\nruns = 2\nseed = 1\n\n\
                    [scenarios]\nsource = \"files\"\nfiles = [\"scenarios/tailgater.toml\"]\n\
                    count = 2\nseed = 5\n";
        let plan_path = dir.join("plan.toml");
        std::fs::write(&plan_path, text).unwrap();

        let loaded = CampaignPlan::load(&plan_path).unwrap();
        let ScenarioSelection::Files { files, specs, .. } = &loaded.scenarios else {
            panic!("files selection degraded to {:?}", loaded.scenarios);
        };
        assert_eq!(files, &vec![String::from("scenarios/tailgater.toml")]);
        assert_eq!(&specs[0], spec);

        let resaved = plan_path.with_file_name("resaved.toml");
        loaded.save(&resaved).unwrap();
        let emitted = std::fs::read_to_string(&resaved).unwrap();
        assert!(emitted.contains("source = \"files\""), "degraded to inline:\n{emitted}");
        assert!(emitted.contains("scenarios/tailgater.toml"));
        assert_eq!(CampaignPlan::load(&resaved).unwrap(), loaded);

        // Without a base directory the source is rejected, not guessed.
        assert!(parse_campaign_plan(text).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn run_plan_matches_typed_random_campaign() {
        let plan = tiny_random_plan();
        let PlanReport::Random(from_plan) = run_plan(&plan) else {
            panic!("expected random stats");
        };
        let suite = ScenarioSuite::generate(2, 42);
        let typed = random_space_campaign(
            &SimConfig::default(),
            &suite,
            &FaultSpace::default(),
            &RandomCampaignConfig { runs: 6, seed: 3, workers: 4 },
        );
        assert_eq!(from_plan.runs, typed.runs);
        assert_eq!(from_plan.safe, typed.safe);
        assert_eq!(from_plan.hazards, typed.hazards);
        assert_eq!(from_plan.collisions, typed.collisions);
        assert_eq!(from_plan.effective_injections, typed.effective_injections);
        assert_eq!(from_plan.hazard_details, typed.hazard_details);
    }

    #[test]
    fn outcome_sink_agrees_with_stats_sink() {
        let mut plan = tiny_random_plan();
        plan.sink = SinkChoice::Outcomes;
        let PlanReport::RandomOutcomes { running, outcomes } = run_plan(&plan) else {
            panic!("expected outcome list");
        };
        assert_eq!(outcomes.len(), 6);
        let hazardous = outcomes.iter().filter(|o| o.is_hazardous()).count();
        assert_eq!(hazardous, running.hazards + running.collisions);
        plan.sink = SinkChoice::Stats;
        let PlanReport::Random(stats) = run_plan(&plan) else {
            panic!("expected random stats");
        };
        assert_eq!(stats.hazards + stats.collisions, hazardous);
    }
}
