//! Round-trip property tests: `parse(emit(x)) == x` for campaign plans
//! and scenario specs — randomly generated ones *and* every family in
//! the builtin registry — plus parser rejection coverage.

use drivefi_ads::Signal;
use drivefi_fault::{CorruptionGrid, FaultKind, FaultSpace, ScalarFaultModel};
use drivefi_plan::{
    emit_campaign_plan, emit_expr, emit_scenario_spec, parse_campaign_plan, parse_expr,
    parse_scenario_spec, AdaptiveSection, CampaignKind, CampaignPlan, ControlSection, OutputSpec,
    ScenarioSelection, SimSection, SinkChoice, SubmitSection,
};
use drivefi_world::spec::{
    ActorTemplate, EgoSpec, Expr, KeyframeProgram, LaneChangeTemplate, ManeuverTemplate, RoadSpec,
    ScenarioSpec, Stmt,
};
use drivefi_world::{ActorKind, FamilyRegistry};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const VARS: [&str; 8] = ["gap", "dv", "lead_v", "ego.v", "ego.set_speed", "x", "t1", "wave_t"];

fn arb_f64(rng: &mut StdRng) -> f64 {
    // Finite, mixed-scale constants (integral values exercise the
    // `4.0` ↔ `4` formatting edge).
    match rng.random_range(0..4u32) {
        0 => f64::from(rng.random_range(-100i32..100)),
        1 => rng.random_range(-50.0..50.0),
        2 => rng.random_range(-1.0..1.0) * 1e-6,
        _ => rng.random_range(-1.0..1.0) * 1e9,
    }
}

fn arb_expr(rng: &mut StdRng, depth: u32) -> Expr {
    if depth == 0 || rng.random_range(0..3u32) == 0 {
        return if rng.random::<bool>() {
            Expr::Const(arb_f64(rng))
        } else {
            Expr::Var(VARS[rng.random_range(0..VARS.len())])
        };
    }
    let a = arb_expr(rng, depth - 1);
    let b = arb_expr(rng, depth - 1);
    match rng.random_range(0..7u32) {
        0 => a + b,
        1 => a - b,
        2 => a * b,
        3 => a / b,
        4 => -a,
        5 => a.min(b),
        _ => a.max(b),
    }
}

fn arb_lane_change(rng: &mut StdRng) -> LaneChangeTemplate {
    LaneChangeTemplate {
        start_time: arb_expr(rng, 1),
        duration: arb_expr(rng, 1),
        from_y: arb_expr(rng, 1),
        to_y: arb_expr(rng, 1),
    }
}

fn arb_maneuver(rng: &mut StdRng) -> ManeuverTemplate {
    match rng.random_range(0..4u32) {
        0 => ManeuverTemplate::Static,
        1 => ManeuverTemplate::Idm {
            desired: arb_expr(rng, 2),
            headway: rng.random::<bool>().then(|| arb_expr(rng, 1)),
            lane_change: rng.random::<bool>().then(|| arb_lane_change(rng)),
        },
        2 => ManeuverTemplate::Scripted {
            keyframes: if rng.random::<bool>() {
                KeyframeProgram::List(
                    (0..rng.random_range(1..4usize))
                        .map(|_| (arb_expr(rng, 1), arb_expr(rng, 1)))
                        .collect(),
                )
            } else {
                KeyframeProgram::Wave {
                    start: arb_expr(rng, 1),
                    period: arb_expr(rng, 1),
                    brake: arb_expr(rng, 1),
                    recover: arb_expr(rng, 1),
                    brake_frac: rng.random_range(0.1..0.5),
                    coast_frac: rng.random_range(0.5..0.9),
                }
            },
            lane_change: rng.random::<bool>().then(|| arb_lane_change(rng)),
        },
        _ => ManeuverTemplate::Pedestrian {
            trigger_time: arb_expr(rng, 1),
            walk_speed: arb_expr(rng, 1),
        },
    }
}

fn arb_stmt(rng: &mut StdRng, depth: u32) -> Stmt {
    let top = if depth > 0 { 8 } else { 6 };
    match rng.random_range(0..top) {
        0 => Stmt::Draw {
            var: VARS[rng.random_range(0..VARS.len())],
            lo: arb_expr(rng, 1),
            hi: arb_expr(rng, 1),
        },
        1 => {
            let lo = rng.random_range(0..10u32);
            Stmt::DrawInt {
                var: VARS[rng.random_range(0..VARS.len())],
                lo,
                hi: lo + rng.random_range(1..5u32),
            }
        }
        2 => Stmt::Let { var: VARS[rng.random_range(0..VARS.len())], expr: arb_expr(rng, 2) },
        3 => Stmt::SetEgoSpeed(arb_expr(rng, 1)),
        4 => Stmt::SetEgoSetSpeed(arb_expr(rng, 1)),
        5 => Stmt::spawn(ActorTemplate {
            kind: [
                ActorKind::Car,
                ActorKind::Truck,
                ActorKind::Pedestrian,
                ActorKind::StaticObstacle,
            ][rng.random_range(0..4usize)],
            x: arb_expr(rng, 2),
            y: arb_expr(rng, 1),
            v: arb_expr(rng, 1),
            heading: arb_expr(rng, 1),
            maneuver: arb_maneuver(rng),
        }),
        6 => Stmt::Repeat {
            count: arb_expr(rng, 1),
            body: (0..rng.random_range(0..3usize)).map(|_| arb_stmt(rng, depth - 1)).collect(),
        },
        _ => Stmt::If {
            cond: arb_expr(rng, 1),
            then: (0..rng.random_range(0..3usize)).map(|_| arb_stmt(rng, depth - 1)).collect(),
            otherwise: (0..rng.random_range(0..2usize)).map(|_| arb_stmt(rng, depth - 1)).collect(),
        },
    }
}

fn arb_spec(rng: &mut StdRng) -> ScenarioSpec {
    let v0_lo = rng.random_range(5.0..30.0);
    ScenarioSpec {
        name: ["fuzz_a", "fuzz_b", "fuzz_c"][rng.random_range(0..3usize)],
        family_key: rng.random_range(0..1u64 << 40),
        duration: rng.random_range(5.0..120.0),
        road: RoadSpec {
            lanes: rng.random_range(1..6u32) as u8,
            lane_width: rng.random_range(2.5..5.0),
            length: rng.random_range(500.0..8000.0),
        },
        ego: EgoSpec {
            v0_lo,
            v0_hi: v0_lo + rng.random_range(0.5..10.0),
            set_lo: arb_expr(rng, 1),
            set_hi: arb_expr(rng, 1),
        },
        program: (0..rng.random_range(0..6usize)).map(|_| arb_stmt(rng, 2)).collect(),
    }
}

fn arb_fault_space(rng: &mut StdRng) -> FaultSpace {
    let mut signals: Vec<Signal> =
        Signal::ALL.into_iter().filter(|_| rng.random::<bool>()).collect();
    let model_pool = [
        ScalarFaultModel::StuckMin,
        ScalarFaultModel::StuckMax,
        ScalarFaultModel::StuckAt(arb_f64(rng)),
        ScalarFaultModel::BitFlip(rng.random_range(0..64u32) as u8),
        ScalarFaultModel::Offset(arb_f64(rng)),
        ScalarFaultModel::Scale(arb_f64(rng)),
    ];
    let mut models: Vec<ScalarFaultModel> =
        model_pool.into_iter().filter(|_| rng.random::<bool>()).collect();
    let module_pool = [
        FaultKind::ClearWorldModel,
        FaultKind::FreezeWorldModel,
        FaultKind::ModuleHang { stage: drivefi_ads::Stage::Planning },
        FaultKind::ModuleHang { stage: drivefi_ads::Stage::Control },
    ];
    let modules: Vec<FaultKind> =
        module_pool.into_iter().filter(|_| rng.random::<bool>()).collect();
    if (signals.is_empty() || models.is_empty()) && modules.is_empty() {
        // Keep the space non-empty, as the schema requires.
        signals = vec![Signal::RawThrottle];
        models = vec![ScalarFaultModel::StuckMax];
    }
    FaultSpace {
        scalars: CorruptionGrid::new(signals, models),
        modules,
        first_scene: rng.random_range(0..20u64),
        tail_margin: rng.random_range(0..20u64),
        window_scenes: rng.random_range(1..30u64),
    }
}

fn arb_plan(rng: &mut StdRng) -> CampaignPlan {
    let registry_names: Vec<&'static str> = FamilyRegistry::builtin().names().collect();
    let scenarios = match rng.random_range(0..4u32) {
        0 => ScenarioSelection::Paper {
            count: rng.random_range(1..30u32),
            seed: rng.random::<u64>() >> 1,
        },
        1 => ScenarioSelection::Extended {
            count: rng.random_range(1..30u32),
            seed: rng.random::<u64>() >> 1,
        },
        2 => ScenarioSelection::Families {
            names: (0..rng.random_range(1..4usize))
                .map(|_| registry_names[rng.random_range(0..registry_names.len())].to_owned())
                .collect(),
            count: rng.random_range(1..30u32),
            seed: rng.random::<u64>() >> 1,
        },
        _ => ScenarioSelection::Inline {
            specs: (0..rng.random_range(1..3usize)).map(|_| arb_spec(rng)).collect(),
            count: rng.random_range(1..10u32),
            seed: rng.random::<u64>() >> 1,
        },
    };
    let kind = match rng.random_range(0..4u32) {
        0 => CampaignKind::Random { runs: rng.random_range(1..5000usize) },
        1 => CampaignKind::Exhaustive { scene_stride: rng.random_range(1..100usize) },
        2 => CampaignKind::Adaptive {
            scene_stride: rng.random_range(1..100usize),
            // Half the time the default section (emitted as nothing at
            // all), half the time fully fuzzed knobs.
            adaptive: if rng.random::<bool>() {
                AdaptiveSection::default()
            } else {
                AdaptiveSection {
                    batch: rng.random_range(1..64usize),
                    max_rounds: rng.random_range(1..40u32),
                    converge_eps: rng.random_range(0.0..1.0),
                }
            },
        },
        _ => CampaignKind::Golden,
    };
    // Only random campaigns carry a custom fault space or sink choice:
    // the exhaustive report shape is fixed and golden runs inject
    // nothing.
    let (sink, faults) = if matches!(kind, CampaignKind::Random { .. }) {
        (
            if rng.random::<bool>() { SinkChoice::Stats } else { SinkChoice::Outcomes },
            arb_fault_space(rng),
        )
    } else {
        (SinkChoice::Stats, FaultSpace::default())
    };
    let sim = if rng.random::<bool>() {
        SimSection::default()
    } else {
        SimSection {
            planner_divisor: rng.random_range(1..8u32),
            kalman_fusion: rng.random(),
            pid_smoothing: rng.random(),
            watchdog: rng.random(),
            batch: if rng.random() { Some(rng.random_range(1..64usize)) } else { None },
        }
    };
    // Exhaustive campaigns reject [output], adaptive ones require it,
    // and an outcome sink cannot combine with one (the store's jobs.csv
    // subsumes it); the rest fuzz it.
    let output = (matches!(kind, CampaignKind::Adaptive { .. })
        || (!matches!(kind, CampaignKind::Exhaustive { .. })
            && sink != SinkChoice::Outcomes
            && rng.random::<bool>()))
    .then(|| OutputSpec {
        dir: format!("out/fuzz-{}", rng.random_range(0..100u32)),
        shards: rng.random_range(1..32u32),
        checkpoint_every: rng.random_range(1..10_000u64),
    });
    let submit = SubmitSection {
        weight: if rng.random::<bool>() { 1 } else { rng.random_range(1..=64u32) },
    };
    let control = ControlSection { assert_survivable: rng.random::<bool>() };
    CampaignPlan {
        name: format!("fuzz-{}", rng.random_range(0..1000u32)),
        kind,
        seed: rng.random::<u64>() >> 1,
        workers: rng.random::<bool>().then(|| rng.random_range(1..64usize)),
        sink,
        scenarios,
        faults,
        sim,
        output,
        submit,
        control,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary expressions survive the text form exactly.
    #[test]
    fn exprs_round_trip(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let expr = arb_expr(&mut rng, 4);
        let text = emit_expr(&expr);
        prop_assert_eq!(parse_expr(&text).unwrap(), expr, "via `{}`", text);
    }

    /// Arbitrary scenario specs — nested statements, every maneuver
    /// template — survive TOML exactly.
    #[test]
    fn fuzzed_scenario_specs_round_trip(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let spec = arb_spec(&mut rng);
        let text = emit_scenario_spec(&spec);
        let parsed = parse_scenario_spec(&text);
        prop_assert!(parsed.is_ok(), "parse failed: {}\n{}", parsed.unwrap_err(), text);
        prop_assert_eq!(parsed.unwrap(), spec, "drift via:\n{}", text);
    }

    /// Arbitrary campaign plans — every selection source, both campaign
    /// kinds, fuzzed fault spaces — survive TOML exactly.
    #[test]
    fn fuzzed_campaign_plans_round_trip(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let plan = arb_plan(&mut rng);
        let text = emit_campaign_plan(&plan);
        let parsed = parse_campaign_plan(&text);
        prop_assert!(parsed.is_ok(), "parse failed: {}\n{}", parsed.unwrap_err(), text);
        prop_assert_eq!(parsed.unwrap(), plan, "drift via:\n{}", text);
    }
}

/// Every spec in the builtin registry — the ten paper-era families and
/// the four DSL-native ones — survives TOML exactly.
#[test]
fn every_registered_spec_round_trips() {
    for spec in FamilyRegistry::builtin().specs() {
        let text = emit_scenario_spec(spec);
        let parsed =
            parse_scenario_spec(&text).unwrap_or_else(|e| panic!("{}: {e}\n{text}", spec.name));
        assert_eq!(&parsed, spec, "{} drifted through TOML", spec.name);
    }
}

/// The headline rejection cases the plan schema must catch: malformed
/// TOML, unknown keys, inverted ranges, unknown signals, and bad
/// `[adaptive]` sections.
#[test]
fn malformed_inputs_are_rejected() {
    let cases: [(&str, &str); 9] = [
        // Broken syntax.
        ("name = \"x\"\n[campaign\nkind = \"random\"\n", "unterminated"),
        // Bad keys.
        (
            "name = \"x\"\nturbo = true\n[campaign]\nkind = \"random\"\nruns = 1\n\
             [scenarios]\nsource = \"paper\"\ncount = 1\nseed = 0\n",
            "unknown key `turbo`",
        ),
        // Range inversions.
        (
            "name = \"x\"\n[campaign]\nkind = \"random\"\nruns = 1\n\
             [scenarios]\nsource = \"inline\"\ncount = 1\nseed = 0\n\
             [[scenarios.spec]]\nname = \"s\"\nfamily_key = 1\nduration = 10.0\n\
             [scenarios.spec.ego]\nv0 = [30.0, 20.0]\nset_speed = [\"ego.v\", \"ego.v\"]\n",
            "inverted",
        ),
        // Unknown signals.
        (
            "name = \"x\"\n[campaign]\nkind = \"random\"\nruns = 1\n\
             [scenarios]\nsource = \"paper\"\ncount = 1\nseed = 0\n\
             [faults]\nsignals = [\"warp.drive\"]\n",
            "unknown signal `warp.drive`",
        ),
        // Inverted draw_int range inside a program.
        (
            "name = \"x\"\n[campaign]\nkind = \"random\"\nruns = 1\n\
             [scenarios]\nsource = \"inline\"\ncount = 1\nseed = 0\n\
             [[scenarios.spec]]\nname = \"s\"\nfamily_key = 1\nduration = 10.0\n\
             [[scenarios.spec.program]]\nstmt = \"draw_int\"\nvar = \"n\"\nlo = 5\nhi = 2\n",
            "inverted",
        ),
        // Malformed expression text.
        (
            "name = \"x\"\n[campaign]\nkind = \"random\"\nruns = 1\n\
             [scenarios]\nsource = \"inline\"\ncount = 1\nseed = 0\n\
             [[scenarios.spec]]\nname = \"s\"\nfamily_key = 1\nduration = 10.0\n\
             [[scenarios.spec.program]]\nstmt = \"let\"\nvar = \"x\"\nexpr = \"1 +\"\n",
            "expression",
        ),
        // An empty acquisition batch could never make progress.
        (
            "name = \"x\"\n[campaign]\nkind = \"adaptive\"\nscene_stride = 10\n\
             [adaptive]\nbatch = 0\n\
             [scenarios]\nsource = \"paper\"\ncount = 1\nseed = 0\n\
             [output]\ndir = \"out/x\"\n",
            "`batch` must be at least 1",
        ),
        // A negative convergence threshold could never be met.
        (
            "name = \"x\"\n[campaign]\nkind = \"adaptive\"\nscene_stride = 10\n\
             [adaptive]\nconverge_eps = -0.5\n\
             [scenarios]\nsource = \"paper\"\ncount = 1\nseed = 0\n\
             [output]\ndir = \"out/x\"\n",
            "`converge_eps` must be a finite value >= 0",
        ),
        // `[adaptive]` knobs on a kind with no acquisition loop.
        (
            "name = \"x\"\n[campaign]\nkind = \"random\"\nruns = 1\n\
             [adaptive]\nbatch = 4\n\
             [scenarios]\nsource = \"paper\"\ncount = 1\nseed = 0\n",
            "only valid for adaptive campaigns",
        ),
    ];
    for (src, needle) in cases {
        let err = parse_campaign_plan(src).expect_err(needle);
        assert!(err.to_string().contains(needle), "wanted `{needle}`, got `{err}`");
    }
}
