//! Property-based tests for kinematic invariants.

use drivefi_kinematics::{
    emergency_stop, emergency_stop_arc, Actuation, BicycleModel, SafetyEnvelope, SafetyPotential,
    VehicleParams, VehicleState,
};
use proptest::prelude::*;

proptest! {
    /// Stop time is monotonically non-decreasing in speed, and for a
    /// straight-line stop so is the longitudinal stopping distance. (The
    /// Euclidean chord is *not* monotone once a steered stopping arc wraps
    /// the circle, which is physically correct.)
    #[test]
    fn stop_distance_monotone_in_speed(v1 in 0.0..50.0f64, dv in 0.0..10.0f64) {
        let p = VehicleParams::default();
        let lo = emergency_stop(&p, &VehicleState::new(0.0, 0.0, v1, 0.0, 0.0));
        let hi = emergency_stop(&p, &VehicleState::new(0.0, 0.0, v1 + dv, 0.0, 0.0));
        prop_assert!(hi.distance.longitudinal >= lo.distance.longitudinal - 1e-9);
        prop_assert!(hi.stop_time >= lo.stop_time - 1e-12);
    }

    /// The closed-form arc solution agrees with RK4 integration everywhere.
    #[test]
    fn arc_matches_numeric(v in 0.1..50.0f64, theta in -3.0..3.0f64, phi in -0.5..0.5f64) {
        let p = VehicleParams::default();
        let s = VehicleState::new(0.0, 0.0, v, theta, phi);
        let num = emergency_stop(&p, &s);
        let arc = emergency_stop_arc(&p, &s);
        prop_assert!((num.distance.longitudinal - arc.distance.longitudinal).abs() < 1e-2);
        prop_assert!((num.distance.lateral - arc.distance.lateral).abs() < 1e-2);
        prop_assert!((num.displacement - arc.displacement).norm() < 1e-2);
    }

    /// Stopping distances are invariant under translation and heading
    /// rotation (they are local-frame quantities).
    #[test]
    fn stop_invariant_under_pose(v in 0.0..50.0f64, x in -100.0..100.0f64,
                                 y in -100.0..100.0f64, theta in -3.0..3.0f64,
                                 phi in -0.5..0.5f64) {
        let p = VehicleParams::default();
        let origin = emergency_stop(&p, &VehicleState::new(0.0, 0.0, v, 0.0, phi));
        let moved = emergency_stop(&p, &VehicleState::new(x, y, v, theta, phi));
        prop_assert!((origin.distance.longitudinal - moved.distance.longitudinal).abs() < 1e-8);
        prop_assert!((origin.distance.lateral - moved.distance.lateral).abs() < 1e-8);
    }

    /// The bicycle model never produces NaN and never reverses.
    #[test]
    fn bicycle_stays_finite(v0 in 0.0..55.0f64, throttle in 0.0..1.0f64,
                            brake in 0.0..1.0f64, steer in -0.6..0.6f64) {
        let m = BicycleModel::new(VehicleParams::default());
        let mut s = VehicleState::new(0.0, 0.0, v0, 0.0, 0.0);
        let cmd = Actuation::new(throttle, brake, steer);
        for _ in 0..200 {
            s = m.step(&s, &cmd, 0.05);
            prop_assert!(s.is_finite());
            prop_assert!(s.v >= 0.0);
        }
    }

    /// δ is monotone in the safety envelope: growing free space never
    /// reduces the safety potential.
    #[test]
    fn delta_monotone_in_envelope(v in 0.0..50.0f64, lon in 0.0..200.0f64,
                                  grow in 0.0..50.0f64, lat in 0.0..5.0f64) {
        let p = VehicleParams::default();
        let s = VehicleState::new(0.0, 0.0, v, 0.0, 0.0);
        let d1 = SafetyPotential::evaluate(&p, &s, &SafetyEnvelope::new(lon, lat));
        let d2 = SafetyPotential::evaluate(&p, &s, &SafetyEnvelope::new(lon + grow, lat));
        prop_assert!(d2.longitudinal >= d1.longitudinal - 1e-12);
    }
}
