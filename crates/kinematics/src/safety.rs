//! Safety envelope `d_safe`, stopping distance `d_stop`, and the safety
//! potential `δ = d_safe − d_stop` (paper §II-B, Definitions 1–3, Fig. 2).

use crate::{emergency_stop_arc, VehicleParams, VehicleState};

/// A distance measured separately along the longitudinal and lateral axes
/// of the ego vehicle.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DirectedDistance {
    /// Distance along the direction of motion \[m\].
    pub longitudinal: f64,
    /// Distance perpendicular to the direction of motion \[m\].
    pub lateral: f64,
}

impl DirectedDistance {
    /// Both components zero.
    pub const ZERO: DirectedDistance = DirectedDistance { longitudinal: 0.0, lateral: 0.0 };

    /// Creates a directed distance.
    pub const fn new(longitudinal: f64, lateral: f64) -> Self {
        DirectedDistance { longitudinal, lateral }
    }
}

/// The safety envelope `d_safe` (Definition 2): the maximum distance the
/// AV can travel without colliding with any static or dynamic object, per
/// direction, as *perceived* (planner view) or *ground truth* (hazard
/// monitor view).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SafetyEnvelope {
    /// Free distance per direction.
    pub free: DirectedDistance,
    /// The floor `d_safe,min` production ADSs keep so passengers are never
    /// uncomfortable (paper §II-B). Stored so `δ` can account for it.
    pub min_margin: DirectedDistance,
}

impl SafetyEnvelope {
    /// An envelope with the given free distances and the default margins.
    pub fn new(longitudinal: f64, lateral: f64) -> Self {
        SafetyEnvelope {
            free: DirectedDistance::new(longitudinal, lateral),
            min_margin: DirectedDistance::new(2.0, 0.3),
        }
    }

    /// Sets `d_safe,min`.
    pub fn with_min_margin(mut self, longitudinal: f64, lateral: f64) -> Self {
        self.min_margin = DirectedDistance::new(longitudinal, lateral);
        self
    }
}

/// The safety potential `δ = d_safe − d_stop` per direction
/// (Definition 3). The AV is in a safe state iff `δ > 0` in **both**
/// directions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SafetyPotential {
    /// Longitudinal `δ` \[m\].
    pub longitudinal: f64,
    /// Lateral `δ` \[m\].
    pub lateral: f64,
}

impl SafetyPotential {
    /// Computes `δ` from an envelope and a stopping distance.
    ///
    /// Lateral stopping displacement is signed (left positive); the lateral
    /// envelope is a magnitude toward the nearest side obstacle, so the
    /// magnitude of the lateral excursion is used.
    pub fn new(envelope: &SafetyEnvelope, stop: &DirectedDistance) -> Self {
        SafetyPotential {
            longitudinal: envelope.free.longitudinal
                - envelope.min_margin.longitudinal
                - stop.longitudinal.max(0.0),
            lateral: envelope.free.lateral - envelope.min_margin.lateral - stop.lateral.abs(),
        }
    }

    /// Maximum lateral deceleration assumed available to null lateral
    /// motion \[m/s²\].
    pub const MAX_LATERAL_DECEL: f64 = 5.0;

    /// Steering response time folded into the lateral stop \[s\].
    pub const LATERAL_RESPONSE_TIME: f64 = 0.2;

    /// Cap on the steering-induced lateral acceleration \[m/s²\]: tires
    /// saturate and the vehicle interface enforces a lateral-acceleration
    /// protection limit, so a hard-over steering angle cannot produce
    /// unbounded yaw authority at speed. Must match
    /// `BicycleModel::LATERAL_ACCEL_LIMIT` — the hazard monitor assumes
    /// exactly the authority the vehicle interface grants.
    pub const MAX_STEER_LATERAL_ACCEL: f64 = 1.5;

    /// Lateral stopping distance: the lateral ground the vehicle covers
    /// before its lateral motion can be nulled.
    ///
    /// The paper's Eq. 5–6 freeze the steering during the emergency stop,
    /// which makes the *longitudinal* stop exact but would charge the
    /// lateral axis the entire arc excursion — rendering δ_lat vacuously
    /// negative for any nonzero steering angle, even the millirad
    /// corrections of ordinary lane keeping. Production safety monitors
    /// (and the paper's own Fig. 2, which draws the lateral case as
    /// stopping *sideways motion*) instead bound the lateral distance by
    /// the lateral velocity: `v_lat² / (2·a_lat)`, with the
    /// steering-induced lateral acceleration accruing over a short
    /// response time. We document this substitution in DESIGN.md.
    ///
    /// `road_heading` is the heading of the lane direction (0 for the
    /// straight +x highways in this workspace).
    pub fn lateral_stop_distance(
        params: &VehicleParams,
        state: &VehicleState,
        road_heading: f64,
    ) -> f64 {
        let rel = state.theta - road_heading;
        let v_lat = state.v * rel.sin();
        let raw_a_lat = state.v * state.v * state.phi.tan() / params.wheelbase;
        let a_lat = raw_a_lat.clamp(-Self::MAX_STEER_LATERAL_ACCEL, Self::MAX_STEER_LATERAL_ACCEL);
        let v_eff = v_lat + a_lat * Self::LATERAL_RESPONSE_TIME;
        v_eff * v_eff / (2.0 * Self::MAX_LATERAL_DECEL)
    }

    /// Evaluates `δ` for a vehicle state directly: longitudinal from the
    /// closed-form emergency stop (paper Eq. 5–7), lateral from
    /// [`SafetyPotential::lateral_stop_distance`]. Assumes the road runs
    /// along +x (as every road in this workspace does).
    pub fn evaluate(
        params: &VehicleParams,
        state: &VehicleState,
        envelope: &SafetyEnvelope,
    ) -> Self {
        let stop = emergency_stop_arc(params, state);
        let lat = Self::lateral_stop_distance(params, state, 0.0);
        SafetyPotential::new(envelope, &DirectedDistance::new(stop.distance.longitudinal, lat))
    }

    /// `δ > 0` in both directions (Definition 3 uses the shorthand `δ > 0`
    /// to mean exactly this conjunction).
    pub fn is_safe(&self) -> bool {
        self.longitudinal > 0.0 && self.lateral > 0.0
    }

    /// The smaller (more critical) of the two components.
    pub fn min_component(&self) -> f64 {
        self.longitudinal.min(self.lateral)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn safe_when_envelope_exceeds_stop() {
        let env = SafetyEnvelope::new(100.0, 3.0).with_min_margin(2.0, 0.3);
        let stop = DirectedDistance::new(50.0, 0.5);
        let delta = SafetyPotential::new(&env, &stop);
        assert!(delta.is_safe());
        assert!((delta.longitudinal - 48.0).abs() < 1e-12);
        assert!((delta.lateral - 2.2).abs() < 1e-12);
    }

    #[test]
    fn unsafe_when_stop_exceeds_envelope() {
        let env = SafetyEnvelope::new(30.0, 3.0);
        let stop = DirectedDistance::new(50.0, 0.0);
        let delta = SafetyPotential::new(&env, &stop);
        assert!(!delta.is_safe());
        assert!(delta.longitudinal < 0.0);
    }

    #[test]
    fn lateral_uses_magnitude_of_signed_excursion() {
        let env = SafetyEnvelope::new(100.0, 1.0).with_min_margin(0.0, 0.0);
        let left = SafetyPotential::new(&env, &DirectedDistance::new(10.0, 0.8));
        let right = SafetyPotential::new(&env, &DirectedDistance::new(10.0, -0.8));
        assert!((left.lateral - right.lateral).abs() < 1e-12);
        assert!((left.lateral - 0.2).abs() < 1e-12);
    }

    #[test]
    fn evaluate_at_freeway_speed_example() {
        // Paper Example 1: at 33.5 m/s the stopping distance is ~70 m, so a
        // lead vehicle 72 m ahead leaves δ_lon ≈ 0 with the default 2 m
        // margin — exactly the knife-edge situation DriveFI hunts for.
        let p = VehicleParams::default();
        let s = VehicleState::new(0.0, 0.0, 33.5, 0.0, 0.0);
        let env = SafetyEnvelope::new(72.0, 3.0);
        let delta = SafetyPotential::evaluate(&p, &s, &env);
        assert!(delta.longitudinal.abs() < 1.0, "delta = {delta:?}");
    }

    #[test]
    fn min_component_picks_the_critical_axis() {
        let d = SafetyPotential { longitudinal: 5.0, lateral: -1.0 };
        assert_eq!(d.min_component(), -1.0);
    }
}
