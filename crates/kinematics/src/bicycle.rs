//! The planar bicycle model (paper Eq. 3) driven by actuation commands.

use crate::{rk4_step, Actuation, VehicleParams, VehicleState};

/// Bicycle-model dynamics for a vehicle with parameters `params`.
///
/// Implements the equations of motion from paper §III-A:
///
/// ```text
/// dx/dt = v cos θ        dy/dt = v sin θ        dθ/dt = v tan φ / L
/// ```
///
/// with speed `v` driven by the longitudinal acceleration of the current
/// [`Actuation`] and the steering angle slewing toward the commanded value
/// at the vehicle's maximum steering rate.
#[derive(Debug, Clone, Copy)]
pub struct BicycleModel {
    params: VehicleParams,
}

impl BicycleModel {
    /// Creates a model for the given vehicle parameters.
    pub fn new(params: VehicleParams) -> Self {
        BicycleModel { params }
    }

    /// The vehicle parameters this model integrates.
    pub fn params(&self) -> &VehicleParams {
        &self.params
    }

    /// Lateral-acceleration protection limit of the vehicle interface
    /// \[m/s²\]: at speed, the steering servo refuses angles that would
    /// exceed this — a standard drive-by-wire safety interlock (and the
    /// tires would saturate near it anyway). This is one of the masking
    /// layers that keeps brief corrupted steering commands from becoming
    /// instant lane departures.
    pub const LATERAL_ACCEL_LIMIT: f64 = 1.5;

    /// The largest steering angle the vehicle interface accepts at
    /// forward speed `v` (full authority at low speed).
    pub fn steer_limit(&self, v: f64) -> f64 {
        let p = self.params;
        if v < 1.0 {
            return p.max_steer;
        }
        let by_accel = (Self::LATERAL_ACCEL_LIMIT * p.wheelbase / (v * v)).atan();
        by_accel.min(p.max_steer)
    }

    /// Advances `state` by `dt` seconds under command `cmd` using RK4.
    ///
    /// The command is clamped to physical limits at this boundary
    /// (including the speed-dependent steering limit). Speed is clamped
    /// to `[0, max_speed]`: the model does not reverse (braking at
    /// standstill holds the vehicle).
    pub fn step(&self, state: &VehicleState, cmd: &Actuation, dt: f64) -> VehicleState {
        let mut cmd = cmd.clamped(&self.params);
        let limit = self.steer_limit(state.v);
        cmd.steering = cmd.steering.clamp(-limit, limit);
        let p = self.params;

        // State vector: [x, y, v, theta, phi]
        let y0 = [state.x, state.y, state.v, state.theta, state.phi];
        let sys = move |_t: f64, y: &[f64; 5], d: &mut [f64; 5]| {
            let v = y[2].max(0.0);
            let theta = y[3];
            let phi = y[4].clamp(-p.max_steer, p.max_steer);
            d[0] = v * theta.cos();
            d[1] = v * theta.sin();
            d[2] = cmd.throttle * p.max_accel - cmd.brake * p.max_decel - p.drag * v;
            d[3] = v * phi.tan() / p.wheelbase;
            // Steering servo: first-order tracking (τ = 1/8 s, typical
            // EPS response) with the column rate bounded.
            let err = cmd.steering - phi;
            d[4] = (8.0 * err).clamp(-p.max_steer_rate, p.max_steer_rate);
        };
        let y1 = rk4_step(&sys, 0.0, &y0, dt);
        VehicleState {
            x: y1[0],
            y: y1[1],
            v: y1[2].clamp(0.0, p.max_speed),
            theta: y1[3],
            phi: y1[4].clamp(-p.max_steer, p.max_steer),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> BicycleModel {
        BicycleModel::new(VehicleParams::default())
    }

    #[test]
    fn straight_line_coasting_advances_x_only() {
        let m = BicycleModel::new(VehicleParams { drag: 0.0, ..VehicleParams::default() });
        let mut s = VehicleState::new(0.0, 0.0, 10.0, 0.0, 0.0);
        for _ in 0..100 {
            s = m.step(&s, &Actuation::default(), 0.01);
        }
        assert!((s.x - 10.0).abs() < 1e-9, "x = {}", s.x);
        assert!(s.y.abs() < 1e-12);
        assert!((s.v - 10.0).abs() < 1e-12);
    }

    #[test]
    fn braking_stops_the_vehicle_and_never_reverses() {
        let m = model();
        let mut s = VehicleState::new(0.0, 0.0, 5.0, 0.0, 0.0);
        for _ in 0..400 {
            s = m.step(&s, &Actuation::full_brake(), 0.01);
        }
        assert_eq!(s.v, 0.0);
        // Distance covered approx v^2 / (2 a) = 25 / 16 = 1.5625 (plus tiny drag effect)
        assert!((s.x - 1.5625).abs() < 0.05, "x = {}", s.x);
    }

    #[test]
    fn constant_steer_turns_on_circle_of_expected_radius() {
        let p = VehicleParams { drag: 0.0, max_steer_rate: 1e9, ..VehicleParams::default() };
        let m = BicycleModel::new(p);
        // Stay inside the lateral-acceleration interlock: at 5 m/s the
        // limit is atan(1.5·L/v²) ≈ 0.166 rad, so a 0.1 rad command
        // passes.
        let phi: f64 = 0.1;
        let mut s = VehicleState::new(0.0, 0.0, 5.0, 0.0, phi);
        let cmd = Actuation::new(0.0, 0.0, phi);
        let dt = 0.001;
        // Drive a quarter circle: R = L / tan(phi).
        let radius = p.wheelbase / phi.tan();
        let quarter_time = (std::f64::consts::FRAC_PI_2 * radius) / 5.0;
        let steps = (quarter_time / dt).round() as usize;
        for _ in 0..steps {
            s = m.step(&s, &cmd, dt);
        }
        // After a quarter turn the heading is pi/2 and position ~ (R, R).
        assert!((s.theta - std::f64::consts::FRAC_PI_2).abs() < 1e-3, "theta = {}", s.theta);
        assert!((s.x - radius).abs() < 0.1, "x = {} R = {}", s.x, radius);
        assert!((s.y - radius).abs() < 0.1, "y = {} R = {}", s.y, radius);
    }

    #[test]
    fn steering_slews_at_bounded_rate() {
        let m = model();
        let p = m.params();
        let mut s = VehicleState::new(0.0, 0.0, 10.0, 0.0, 0.0);
        let cmd = Actuation::new(0.0, 0.0, p.max_steer);
        s = m.step(&s, &cmd, 0.1);
        assert!(s.phi <= p.max_steer_rate * 0.1 + 1e-9, "phi = {}", s.phi);
    }

    #[test]
    fn speed_saturates_at_max_speed() {
        let m = model();
        let mut s = VehicleState::new(0.0, 0.0, 54.9, 0.0, 0.0);
        for _ in 0..1000 {
            s = m.step(&s, &Actuation::new(1.0, 0.0, 0.0), 0.01);
        }
        assert!(s.v <= m.params().max_speed + 1e-9);
    }
}
