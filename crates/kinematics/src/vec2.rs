//! A minimal 2-D vector used throughout the workspace.

use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A two-dimensional vector in meters (or meter-derived units).
///
/// The world frame has `x` pointing along the road (east) and `y` to the
/// left (north). Vehicle-local frames have `x` longitudinal (forward) and
/// `y` lateral (left).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec2 {
    /// X component.
    pub x: f64,
    /// Y component.
    pub y: f64,
}

impl Vec2 {
    /// The zero vector.
    pub const ZERO: Vec2 = Vec2 { x: 0.0, y: 0.0 };

    /// Creates a vector from components.
    pub const fn new(x: f64, y: f64) -> Self {
        Vec2 { x, y }
    }

    /// Euclidean norm.
    pub fn norm(self) -> f64 {
        self.x.hypot(self.y)
    }

    /// Squared Euclidean norm (avoids the square root).
    pub fn norm_sq(self) -> f64 {
        self.x * self.x + self.y * self.y
    }

    /// Dot product.
    pub fn dot(self, other: Vec2) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// Z component of the 3-D cross product (signed area).
    pub fn cross(self, other: Vec2) -> f64 {
        self.x * other.y - self.y * other.x
    }

    /// Unit vector pointing along `heading` radians (0 = +x).
    pub fn from_heading(heading: f64) -> Self {
        Vec2::new(heading.cos(), heading.sin())
    }

    /// Rotates the vector by `angle` radians counter-clockwise.
    pub fn rotated(self, angle: f64) -> Self {
        let (s, c) = angle.sin_cos();
        self.rotated_by(s, c)
    }

    /// Rotates by a precomputed `(sin, cos)` pair — bit-identical to
    /// [`Vec2::rotated`] with the angle those came from. Hot loops hoist
    /// the `sin_cos` out of per-item work and rotate many vectors by the
    /// same angle.
    #[inline]
    pub fn rotated_by(self, sin: f64, cos: f64) -> Self {
        Vec2::new(cos * self.x - sin * self.y, sin * self.x + cos * self.y)
    }

    /// Expresses a world-frame vector in a frame whose +x axis points along
    /// `heading`. This is the inverse of [`Vec2::rotated`].
    pub fn into_frame(self, heading: f64) -> Self {
        self.rotated(-heading)
    }

    /// Distance between two points.
    pub fn distance(self, other: Vec2) -> f64 {
        (self - other).norm()
    }

    /// Squared distance between two points (avoids the square root; use
    /// for comparisons against a squared threshold).
    pub fn distance_sq(self, other: Vec2) -> f64 {
        (self - other).norm_sq()
    }

    /// Returns a vector with the same direction and unit length, or zero if
    /// the vector is (numerically) zero.
    pub fn normalized(self) -> Self {
        let n = self.norm();
        if n <= f64::EPSILON {
            Vec2::ZERO
        } else {
            self / n
        }
    }

    /// True when both components are finite.
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl Add for Vec2 {
    type Output = Vec2;
    fn add(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl AddAssign for Vec2 {
    fn add_assign(&mut self, rhs: Vec2) {
        self.x += rhs.x;
        self.y += rhs.y;
    }
}

impl Sub for Vec2 {
    type Output = Vec2;
    fn sub(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl SubAssign for Vec2 {
    fn sub_assign(&mut self, rhs: Vec2) {
        self.x -= rhs.x;
        self.y -= rhs.y;
    }
}

impl Mul<f64> for Vec2 {
    type Output = Vec2;
    fn mul(self, rhs: f64) -> Vec2 {
        Vec2::new(self.x * rhs, self.y * rhs)
    }
}

impl Mul<Vec2> for f64 {
    type Output = Vec2;
    fn mul(self, rhs: Vec2) -> Vec2 {
        rhs * self
    }
}

impl Div<f64> for Vec2 {
    type Output = Vec2;
    fn div(self, rhs: f64) -> Vec2 {
        Vec2::new(self.x / rhs, self.y / rhs)
    }
}

impl Neg for Vec2 {
    type Output = Vec2;
    fn neg(self) -> Vec2 {
        Vec2::new(-self.x, -self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_identities() {
        let a = Vec2::new(3.0, 4.0);
        let b = Vec2::new(-1.0, 2.0);
        assert_eq!(a + b, Vec2::new(2.0, 6.0));
        assert_eq!(a - b, Vec2::new(4.0, 2.0));
        assert_eq!(a * 2.0, Vec2::new(6.0, 8.0));
        assert_eq!(2.0 * a, a * 2.0);
        assert_eq!(a / 2.0, Vec2::new(1.5, 2.0));
        assert_eq!(-a, Vec2::new(-3.0, -4.0));
    }

    #[test]
    fn norm_of_3_4_is_5() {
        assert_eq!(Vec2::new(3.0, 4.0).norm(), 5.0);
        assert_eq!(Vec2::new(3.0, 4.0).norm_sq(), 25.0);
    }

    #[test]
    fn dot_and_cross() {
        let a = Vec2::new(1.0, 0.0);
        let b = Vec2::new(0.0, 1.0);
        assert_eq!(a.dot(b), 0.0);
        assert_eq!(a.cross(b), 1.0);
        assert_eq!(b.cross(a), -1.0);
    }

    #[test]
    fn rotation_quarter_turn() {
        let a = Vec2::new(1.0, 0.0);
        let r = a.rotated(std::f64::consts::FRAC_PI_2);
        assert!((r.x - 0.0).abs() < 1e-12);
        assert!((r.y - 1.0).abs() < 1e-12);
    }

    #[test]
    fn into_frame_inverts_rotated() {
        let a = Vec2::new(2.5, -1.5);
        let h = 0.7;
        let back = a.rotated(h).into_frame(h);
        assert!((back.x - a.x).abs() < 1e-12);
        assert!((back.y - a.y).abs() < 1e-12);
    }

    #[test]
    fn normalized_zero_is_zero() {
        assert_eq!(Vec2::ZERO.normalized(), Vec2::ZERO);
        let n = Vec2::new(5.0, 0.0).normalized();
        assert_eq!(n, Vec2::new(1.0, 0.0));
    }

    #[test]
    fn from_heading_is_unit() {
        for h in [-3.0, -0.5, 0.0, 0.5, 1.2, 3.1] {
            assert!((Vec2::from_heading(h).norm() - 1.0).abs() < 1e-12);
        }
    }
}
