//! Actuation commands `A_t = (ζ, b, φ)` — throttle, brake, steering.

use crate::VehicleParams;

/// An actuation command sent to the mechanical system (paper Fig. 1).
///
/// The ADS ML module produces *raw* commands `U_A,t` of this type; the PID
/// controller smooths them into the final `A_t`. Both share this
/// representation.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Actuation {
    /// Throttle ζ ∈ \[0, 1\].
    pub throttle: f64,
    /// Brake b ∈ \[0, 1\].
    pub brake: f64,
    /// Commanded steering angle φ \[rad\].
    pub steering: f64,
}

impl Actuation {
    /// Creates a command, without clamping (faults may set out-of-range
    /// values on purpose; clamping to physical limits happens at the
    /// mechanical boundary via [`Actuation::clamped`]).
    pub const fn new(throttle: f64, brake: f64, steering: f64) -> Self {
        Actuation { throttle, brake, steering }
    }

    /// A full-brake command.
    pub const fn full_brake() -> Self {
        Actuation { throttle: 0.0, brake: 1.0, steering: 0.0 }
    }

    /// Clamps the command to the physical ranges of the vehicle: throttle
    /// and brake to \[0, 1\], steering to ±`max_steer`. Non-finite values
    /// are replaced by 0 (the mechanical system rejects garbage, but by
    /// then the *behavioral* damage of a fault has already been done).
    pub fn clamped(self, params: &VehicleParams) -> Self {
        let sanitize = |v: f64, lo: f64, hi: f64| {
            if v.is_finite() {
                v.clamp(lo, hi)
            } else {
                0.0
            }
        };
        Actuation {
            throttle: sanitize(self.throttle, 0.0, 1.0),
            brake: sanitize(self.brake, 0.0, 1.0),
            steering: sanitize(self.steering, -params.max_steer, params.max_steer),
        }
    }

    /// Net longitudinal acceleration produced by this command at speed `v`
    /// \[m/s²\]: traction minus braking minus speed-proportional drag.
    pub fn longitudinal_accel(&self, params: &VehicleParams, v: f64) -> f64 {
        let cmd = self.clamped(params);
        cmd.throttle * params.max_accel - cmd.brake * params.max_decel - params.drag * v
    }

    /// True when every field is finite.
    pub fn is_finite(&self) -> bool {
        self.throttle.is_finite() && self.brake.is_finite() && self.steering.is_finite()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clamping_bounds_all_channels() {
        let p = VehicleParams::default();
        let a = Actuation::new(2.0, -0.5, 10.0).clamped(&p);
        assert_eq!(a.throttle, 1.0);
        assert_eq!(a.brake, 0.0);
        assert_eq!(a.steering, p.max_steer);
    }

    #[test]
    fn non_finite_values_are_zeroed() {
        let p = VehicleParams::default();
        let a = Actuation::new(f64::NAN, f64::INFINITY, f64::NEG_INFINITY).clamped(&p);
        assert_eq!(a, Actuation::new(0.0, 0.0, 0.0));
    }

    #[test]
    fn full_throttle_accelerates_full_brake_decelerates() {
        let p = VehicleParams::default();
        let acc = Actuation::new(1.0, 0.0, 0.0).longitudinal_accel(&p, 0.0);
        assert!((acc - p.max_accel).abs() < 1e-12);
        let dec = Actuation::full_brake().longitudinal_accel(&p, 0.0);
        assert!((dec + p.max_decel).abs() < 1e-12);
    }

    #[test]
    fn drag_reduces_acceleration_with_speed() {
        let p = VehicleParams::default();
        let a0 = Actuation::new(0.5, 0.0, 0.0).longitudinal_accel(&p, 0.0);
        let a30 = Actuation::new(0.5, 0.0, 0.0).longitudinal_accel(&p, 30.0);
        assert!(a30 < a0);
    }
}
