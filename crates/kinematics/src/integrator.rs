//! Fixed-step ODE integrators.
//!
//! Closed-form solutions of the bicycle equations under arbitrary controls
//! are intractable (paper §III-A), so DriveFI integrates them numerically.
//! We provide forward Euler (cheap, used by target-vehicle behaviors) and
//! the classic fourth-order Runge–Kutta scheme (used for the ego vehicle
//! and the emergency-stop procedure, matching the paper's choice of
//! "Runge-Kutta methods").

/// A first-order ODE system `dy/dt = f(t, y)` with `N` state components.
pub trait OdeSystem<const N: usize> {
    /// Writes `dy/dt` at `(t, y)` into `dydt`.
    fn deriv(&self, t: f64, y: &[f64; N], dydt: &mut [f64; N]);
}

impl<const N: usize, F> OdeSystem<N> for F
where
    F: Fn(f64, &[f64; N], &mut [f64; N]),
{
    fn deriv(&self, t: f64, y: &[f64; N], dydt: &mut [f64; N]) {
        self(t, y, dydt)
    }
}

/// Advances `y` by one forward-Euler step of size `dt`.
pub fn euler_step<const N: usize, S: OdeSystem<N>>(
    sys: &S,
    t: f64,
    y: &[f64; N],
    dt: f64,
) -> [f64; N] {
    let mut k = [0.0; N];
    sys.deriv(t, y, &mut k);
    let mut out = *y;
    for i in 0..N {
        out[i] += dt * k[i];
    }
    out
}

/// Advances `y` by one classic RK4 step of size `dt`.
pub fn rk4_step<const N: usize, S: OdeSystem<N>>(
    sys: &S,
    t: f64,
    y: &[f64; N],
    dt: f64,
) -> [f64; N] {
    let mut k1 = [0.0; N];
    let mut k2 = [0.0; N];
    let mut k3 = [0.0; N];
    let mut k4 = [0.0; N];
    sys.deriv(t, y, &mut k1);

    let mut tmp = *y;
    for i in 0..N {
        tmp[i] = y[i] + 0.5 * dt * k1[i];
    }
    sys.deriv(t + 0.5 * dt, &tmp, &mut k2);

    for i in 0..N {
        tmp[i] = y[i] + 0.5 * dt * k2[i];
    }
    sys.deriv(t + 0.5 * dt, &tmp, &mut k3);

    for i in 0..N {
        tmp[i] = y[i] + dt * k3[i];
    }
    sys.deriv(t + dt, &tmp, &mut k4);

    let mut out = *y;
    for i in 0..N {
        out[i] += dt / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// dy/dt = y has solution e^t.
    fn exponential(_t: f64, y: &[f64; 1], dydt: &mut [f64; 1]) {
        dydt[0] = y[0];
    }

    #[test]
    fn rk4_matches_exponential_to_high_order() {
        let mut y = [1.0];
        let dt = 0.01;
        let mut t = 0.0;
        for _ in 0..100 {
            y = rk4_step(&exponential, t, &y, dt);
            t += dt;
        }
        assert!((y[0] - 1.0_f64.exp()).abs() < 1e-9, "got {}", y[0]);
    }

    #[test]
    fn euler_matches_exponential_to_first_order() {
        let mut y = [1.0];
        let dt = 0.001;
        let mut t = 0.0;
        for _ in 0..1000 {
            y = euler_step(&exponential, t, &y, dt);
            t += dt;
        }
        assert!((y[0] - 1.0_f64.exp()).abs() < 2e-3, "got {}", y[0]);
    }

    /// Harmonic oscillator conserves energy under RK4 well enough.
    fn oscillator(_t: f64, y: &[f64; 2], dydt: &mut [f64; 2]) {
        dydt[0] = y[1];
        dydt[1] = -y[0];
    }

    #[test]
    fn rk4_oscillator_energy_nearly_conserved() {
        let mut y = [1.0, 0.0];
        let dt = 0.05;
        for i in 0..2000 {
            y = rk4_step(&oscillator, i as f64 * dt, &y, dt);
        }
        let energy = y[0] * y[0] + y[1] * y[1];
        assert!((energy - 1.0).abs() < 1e-6, "energy drifted to {energy}");
    }

    #[test]
    fn time_dependent_rhs_uses_t() {
        // dy/dt = 2t has solution t^2.
        let sys = |t: f64, _y: &[f64; 1], d: &mut [f64; 1]| d[0] = 2.0 * t;
        let mut y = [0.0];
        let dt = 0.1;
        for i in 0..10 {
            y = rk4_step(&sys, i as f64 * dt, &y, dt);
        }
        assert!((y[0] - 1.0).abs() < 1e-12);
    }
}
