//! The emergency-stop maneuver and the procedure `P` (paper Eq. 4–7).
//!
//! `d_stop` (Definition 1) is the displacement the vehicle covers while
//! decelerating at `a_max` with frozen steering (`dφ/dt = 0`, Eq. 5). The
//! paper solves the resulting system (Eq. 6) by iterative numerical
//! integration; [`emergency_stop`] does the same with RK4. Because speed
//! falls linearly and the steering is frozen, the path is exactly a
//! circular arc, so a closed form exists ([`emergency_stop_arc`]) and is
//! used as a cross-check in tests and as a fast path by the mining engine.

use crate::{rk4_step, Vec2, VehicleParams, VehicleState};

/// Result of the emergency-stop procedure `P` (Eq. 7).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StopOutcome {
    /// Stopping displacement expressed in the vehicle frame at maneuver
    /// start: `longitudinal` along the initial heading, `lateral` across it.
    pub distance: crate::DirectedDistance,
    /// Stopping displacement in the world frame.
    pub displacement: Vec2,
    /// Time to come to a complete halt \[s\].
    pub stop_time: f64,
}

/// Computes `d_stop` by numerically integrating Eq. 6 with RK4.
///
/// This is the paper's procedure
/// `d_stop = P(a_max, v0, θ0, φ0, x0, y0)`.
/// The integration step adapts to the stop time so the cost is bounded.
pub fn emergency_stop(params: &VehicleParams, start: &VehicleState) -> StopOutcome {
    let a = params.max_decel;
    let v0 = start.v.max(0.0);
    if v0 <= 0.0 {
        return StopOutcome {
            distance: crate::DirectedDistance::ZERO,
            displacement: Vec2::ZERO,
            stop_time: 0.0,
        };
    }
    let stop_time = v0 / a;
    let steps = 200usize;
    let dt = stop_time / steps as f64;
    let l = params.wheelbase;
    let phi0 = start.phi.clamp(-params.max_steer, params.max_steer);
    let tan_phi = phi0.tan();

    // State: [x, y, v, theta]; dφ/dt = 0 during the maneuver (Eq. 5).
    let sys = move |_t: f64, y: &[f64; 4], d: &mut [f64; 4]| {
        let v = y[2].max(0.0);
        d[0] = v * y[3].cos();
        d[1] = v * y[3].sin();
        d[2] = if v > 0.0 { -a } else { 0.0 };
        d[3] = v * tan_phi / l;
    };
    let mut y = [start.x, start.y, v0, start.theta];
    for i in 0..steps {
        y = rk4_step(&sys, i as f64 * dt, &y, dt);
    }
    let displacement = Vec2::new(y[0] - start.x, y[1] - start.y);
    let local = displacement.into_frame(start.theta);
    StopOutcome {
        distance: crate::DirectedDistance { longitudinal: local.x, lateral: local.y },
        displacement,
        stop_time,
    }
}

/// Closed-form `d_stop`: with frozen steering the trajectory is a circular
/// arc of radius `R = L / tan φ0` and length `s = v0² / (2 a_max)`.
///
/// For `φ0 = 0` this degenerates to a straight line of length `s`.
pub fn emergency_stop_arc(params: &VehicleParams, start: &VehicleState) -> StopOutcome {
    let v0 = start.v.max(0.0);
    let a = params.max_decel;
    if v0 <= 0.0 {
        return StopOutcome {
            distance: crate::DirectedDistance::ZERO,
            displacement: Vec2::ZERO,
            stop_time: 0.0,
        };
    }
    let arc_len = v0 * v0 / (2.0 * a);
    let phi0 = start.phi.clamp(-params.max_steer, params.max_steer);
    let tan_phi = phi0.tan();
    let (lon, lat) = if tan_phi.abs() < 1e-9 {
        (arc_len, 0.0)
    } else {
        let radius = params.wheelbase / tan_phi;
        let angle = arc_len / radius;
        (radius * angle.sin(), radius * (1.0 - angle.cos()))
    };
    let local = Vec2::new(lon, lat);
    StopOutcome {
        distance: crate::DirectedDistance { longitudinal: lon, lateral: lat },
        displacement: local.rotated(start.theta),
        stop_time: v0 / a,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn straight_stop_matches_v_squared_over_2a() {
        let p = VehicleParams::default();
        let s = VehicleState::new(0.0, 0.0, 20.0, 0.0, 0.0);
        let o = emergency_stop(&p, &s);
        let expected = 400.0 / (2.0 * p.max_decel);
        assert!((o.distance.longitudinal - expected).abs() < 1e-6, "{o:?}");
        assert!(o.distance.lateral.abs() < 1e-9);
        assert!((o.stop_time - 20.0 / p.max_decel).abs() < 1e-12);
    }

    #[test]
    fn zero_speed_stops_immediately() {
        let p = VehicleParams::default();
        let s = VehicleState::new(3.0, 4.0, 0.0, 1.0, 0.2);
        let o = emergency_stop(&p, &s);
        assert_eq!(o.stop_time, 0.0);
        assert_eq!(o.displacement, Vec2::ZERO);
    }

    #[test]
    fn numeric_and_closed_form_agree_with_steering() {
        let p = VehicleParams::default();
        for phi in [-0.3, -0.1, 0.0, 0.05, 0.2, 0.5] {
            for v in [5.0, 15.0, 33.5] {
                let s = VehicleState::new(0.0, 0.0, v, 0.4, phi);
                let num = emergency_stop(&p, &s);
                let arc = emergency_stop_arc(&p, &s);
                assert!(
                    (num.distance.longitudinal - arc.distance.longitudinal).abs() < 1e-3,
                    "lon mismatch at phi={phi} v={v}: {num:?} vs {arc:?}"
                );
                assert!(
                    (num.distance.lateral - arc.distance.lateral).abs() < 1e-3,
                    "lat mismatch at phi={phi} v={v}"
                );
            }
        }
    }

    #[test]
    fn heading_rotates_world_displacement_not_local() {
        let p = VehicleParams::default();
        let s0 = VehicleState::new(0.0, 0.0, 20.0, 0.0, 0.1);
        let s1 = VehicleState::new(0.0, 0.0, 20.0, 1.2, 0.1);
        let o0 = emergency_stop(&p, &s0);
        let o1 = emergency_stop(&p, &s1);
        // Local-frame distances are heading-invariant.
        assert!((o0.distance.longitudinal - o1.distance.longitudinal).abs() < 1e-9);
        assert!((o0.distance.lateral - o1.distance.lateral).abs() < 1e-9);
        // World displacements differ by the rotation.
        assert!((o0.displacement.rotated(1.2).x - o1.displacement.x).abs() < 1e-9);
    }

    #[test]
    fn steering_produces_lateral_displacement_of_matching_sign() {
        let p = VehicleParams::default();
        let left = emergency_stop(&p, &VehicleState::new(0.0, 0.0, 20.0, 0.0, 0.2));
        let right = emergency_stop(&p, &VehicleState::new(0.0, 0.0, 20.0, 0.0, -0.2));
        assert!(left.distance.lateral > 0.0);
        assert!(right.distance.lateral < 0.0);
        assert!((left.distance.lateral + right.distance.lateral).abs() < 1e-9);
    }
}
