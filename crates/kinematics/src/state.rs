//! Vehicle state and physical parameters.

use crate::{KinematicsError, Vec2};

/// Instantaneous kinematic state of a vehicle (paper §III-A, Fig. 5).
///
/// The state is `(x, y, v, θ, φ)`: planar position, speed, heading and
/// steering angle. The bicycle model (Eq. 3) evolves this state.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct VehicleState {
    /// X position in the world frame \[m\].
    pub x: f64,
    /// Y position in the world frame \[m\].
    pub y: f64,
    /// Forward speed \[m/s\]. Non-negative for normal driving.
    pub v: f64,
    /// Heading θ \[rad\], measured counter-clockwise from +x.
    pub theta: f64,
    /// Steering angle φ \[rad\] of the front wheels relative to the heading.
    pub phi: f64,
}

impl VehicleState {
    /// Creates a state from raw components.
    pub const fn new(x: f64, y: f64, v: f64, theta: f64, phi: f64) -> Self {
        VehicleState { x, y, v, theta, phi }
    }

    /// Position as a vector.
    pub fn position(&self) -> Vec2 {
        Vec2::new(self.x, self.y)
    }

    /// Velocity vector in the world frame.
    pub fn velocity(&self) -> Vec2 {
        Vec2::from_heading(self.theta) * self.v
    }

    /// Expresses a world point in this vehicle's frame
    /// (+x longitudinal/forward, +y lateral/left).
    pub fn to_local(&self, world: Vec2) -> Vec2 {
        (world - self.position()).into_frame(self.theta)
    }

    /// True when all components are finite.
    pub fn is_finite(&self) -> bool {
        self.x.is_finite()
            && self.y.is_finite()
            && self.v.is_finite()
            && self.theta.is_finite()
            && self.phi.is_finite()
    }
}

/// Physical parameters of a vehicle.
///
/// Defaults model a mid-size sedan, matching the magnitudes used in the
/// paper's examples (freeway speed 33.5 m/s, comfortable maximum
/// deceleration `a_max`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VehicleParams {
    /// Wheelbase `L` \[m\] (distance between axles, Eq. 3).
    pub wheelbase: f64,
    /// Overall body length \[m\] (for collision checks).
    pub length: f64,
    /// Overall body width \[m\] (for collision checks).
    pub width: f64,
    /// Maximum traction acceleration \[m/s²\] at full throttle.
    pub max_accel: f64,
    /// Maximum (comfortable) braking deceleration `a_max` \[m/s²\]
    /// (Definition 1). Positive number.
    pub max_decel: f64,
    /// Maximum steering angle magnitude \[rad\].
    pub max_steer: f64,
    /// Maximum steering slew rate \[rad/s\].
    pub max_steer_rate: f64,
    /// Top speed \[m/s\].
    pub max_speed: f64,
    /// Speed-proportional drag deceleration coefficient \[1/s\].
    pub drag: f64,
}

impl Default for VehicleParams {
    fn default() -> Self {
        VehicleParams {
            wheelbase: 2.8,
            length: 4.7,
            width: 1.9,
            max_accel: 3.5,
            max_decel: 8.0,
            max_steer: 0.55,
            max_steer_rate: 1.4,
            max_speed: 55.0,
            drag: 0.02,
        }
    }
}

impl VehicleParams {
    /// Validates that every parameter is finite and physically meaningful.
    ///
    /// # Errors
    ///
    /// Returns [`KinematicsError::InvalidParameter`] naming the first
    /// offending field.
    pub fn validate(&self) -> Result<(), KinematicsError> {
        let checks: [(&'static str, f64, bool); 9] = [
            ("wheelbase", self.wheelbase, self.wheelbase > 0.0),
            ("length", self.length, self.length > 0.0),
            ("width", self.width, self.width > 0.0),
            ("max_accel", self.max_accel, self.max_accel > 0.0),
            ("max_decel", self.max_decel, self.max_decel > 0.0),
            (
                "max_steer",
                self.max_steer,
                self.max_steer > 0.0 && self.max_steer < std::f64::consts::FRAC_PI_2,
            ),
            ("max_steer_rate", self.max_steer_rate, self.max_steer_rate > 0.0),
            ("max_speed", self.max_speed, self.max_speed > 0.0),
            ("drag", self.drag, self.drag >= 0.0),
        ];
        for (name, value, ok) in checks {
            if !ok || !value.is_finite() {
                return Err(KinematicsError::InvalidParameter { name, value });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_params_are_valid() {
        VehicleParams::default().validate().unwrap();
    }

    #[test]
    fn invalid_params_are_rejected() {
        let p = VehicleParams { wheelbase: -1.0, ..VehicleParams::default() };
        assert_eq!(
            p.validate(),
            Err(KinematicsError::InvalidParameter { name: "wheelbase", value: -1.0 })
        );
        let p = VehicleParams { max_decel: f64::NAN, ..VehicleParams::default() };
        assert!(p.validate().is_err());
        let p = VehicleParams { max_steer: 1.6, ..VehicleParams::default() }; // > pi/2
        assert!(p.validate().is_err());
    }

    #[test]
    fn velocity_points_along_heading() {
        let s = VehicleState::new(0.0, 0.0, 10.0, std::f64::consts::FRAC_PI_2, 0.0);
        let v = s.velocity();
        assert!(v.x.abs() < 1e-12);
        assert!((v.y - 10.0).abs() < 1e-12);
    }

    #[test]
    fn to_local_puts_point_ahead_on_x_axis() {
        // Vehicle at (1, 1) heading north; a point 5 m north of it is at
        // local (5, 0).
        let s = VehicleState::new(1.0, 1.0, 0.0, std::f64::consts::FRAC_PI_2, 0.0);
        let local = s.to_local(Vec2::new(1.0, 6.0));
        assert!((local.x - 5.0).abs() < 1e-12);
        assert!(local.y.abs() < 1e-12);
    }

    #[test]
    fn state_finiteness() {
        assert!(VehicleState::default().is_finite());
        let s = VehicleState::new(f64::NAN, 0.0, 0.0, 0.0, 0.0);
        assert!(!s.is_finite());
    }
}
