//! Vehicle kinematics and the DriveFI safety-potential model.
//!
//! This crate implements §III-A of the DriveFI paper (DSN 2019):
//!
//! * the planar **bicycle model** of vehicle motion (Eq. 3),
//! * generic fixed-step **ODE integrators** (forward Euler and classic RK4,
//!   the paper's "iterative numerical solution methods"),
//! * the **emergency-stop maneuver** (Eq. 5–6) and the procedure `P`
//!   (Eq. 7) that computes the stopping distance `d_stop`,
//! * the **safety potential** `δ = d_safe − d_stop` (Definitions 1–3),
//!   evaluated independently in the longitudinal and lateral directions.
//!
//! # Example
//!
//! ```
//! use drivefi_kinematics::{VehicleParams, VehicleState, emergency_stop};
//!
//! let params = VehicleParams::default();
//! // 33.5 m/s is roughly the US freeway speed limit used in the paper.
//! let state = VehicleState::new(0.0, 0.0, 33.5, 0.0, 0.0);
//! let stop = emergency_stop(&params, &state);
//! // Stopping from 33.5 m/s at 8 m/s^2 covers v^2 / (2 a) ≈ 70.1 m.
//! assert!((stop.distance.longitudinal - 33.5_f64.powi(2) / 16.0).abs() < 0.1);
//! ```

pub mod actuation;
pub mod bicycle;
pub mod integrator;
pub mod safety;
pub mod state;
pub mod stop;
pub mod vec2;

pub use actuation::Actuation;
pub use bicycle::BicycleModel;
pub use integrator::{euler_step, rk4_step, OdeSystem};
pub use safety::{DirectedDistance, SafetyEnvelope, SafetyPotential};
pub use state::{VehicleParams, VehicleState};
pub use stop::{emergency_stop, emergency_stop_arc, StopOutcome};
pub use vec2::Vec2;

/// Errors produced by kinematic computations.
#[derive(Debug, Clone, PartialEq)]
pub enum KinematicsError {
    /// A vehicle parameter was non-finite or out of its physical range.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// The rejected value.
        value: f64,
    },
}

impl std::fmt::Display for KinematicsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KinematicsError::InvalidParameter { name, value } => {
                write!(f, "invalid kinematic parameter {name} = {value}")
            }
        }
    }
}

impl std::error::Error for KinematicsError {}
