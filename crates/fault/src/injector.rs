//! The bus-level injector.

use crate::model::{Fault, FaultKind};
use drivefi_ads::{Bus, BusInterceptor, Stage};
use drivefi_perception::WorldModel;

/// Applies a set of faults to the ADS bus at the right stages and frames.
/// This is the "DriveFI Injector" box of the paper's Fig. 1.
#[derive(Debug, Clone, Default)]
pub struct Injector {
    faults: Vec<Fault>,
    frozen_model: Option<(WorldModel, u64)>,
    hung_stages: Vec<(Stage, Bus)>,
    injections: u64,
}

impl Injector {
    /// Creates an injector armed with `faults`.
    pub fn new(faults: Vec<Fault>) -> Self {
        Injector { faults, frozen_model: None, hung_stages: Vec::new(), injections: 0 }
    }

    /// The armed faults.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Number of individual corruptions performed so far.
    pub fn injection_count(&self) -> u64 {
        self.injections
    }
}

impl BusInterceptor for Injector {
    fn intercept(&mut self, stage: Stage, frame: u64, bus: &mut Bus) {
        for fault in &self.faults {
            if fault.kind.stage() != stage {
                continue;
            }
            // Freeze capture: remember the model on the frame *before*
            // activation so the replayed perception is stale.
            if let FaultKind::FreezeWorldModel = fault.kind {
                if !fault.window.active(frame) && fault.window.active(frame + 1) {
                    self.frozen_model = Some((bus.world_model.clone(), frame));
                }
            }
            // Hang capture: the last outputs published before the hang.
            if let FaultKind::ModuleHang { stage } = fault.kind {
                if !fault.window.active(frame) && fault.window.active(frame + 1) {
                    self.hung_stages.retain(|(s, _)| *s != stage);
                    self.hung_stages.push((stage, bus.clone()));
                }
            }
            if !fault.window.active(frame) {
                continue;
            }
            match fault.kind {
                FaultKind::Scalar { signal, model } => {
                    if let Some(current) = signal.read(bus) {
                        let corrupted = model.apply(current, signal.range());
                        signal.write(bus, corrupted);
                        self.injections += 1;
                    }
                }
                FaultKind::ClearWorldModel => {
                    bus.world_model.objects.clear();
                    self.injections += 1;
                }
                FaultKind::ModuleHang { stage } => {
                    if let Some((_, snapshot)) = self.hung_stages.iter().find(|(s, _)| *s == stage)
                    {
                        // Restore this stage's outputs and heartbeat to
                        // their pre-hang values: the module publishes
                        // nothing new, downstream reads the stale message.
                        match stage {
                            Stage::Sensors => {
                                bus.sensors = snapshot.sensors.clone();
                                bus.imu = snapshot.imu;
                            }
                            Stage::Localization => bus.pose = snapshot.pose,
                            Stage::Perception => {
                                bus.world_model = snapshot.world_model.clone();
                            }
                            Stage::Planning => {
                                bus.raw_cmd = snapshot.raw_cmd;
                                bus.envelope = snapshot.envelope;
                                bus.delta = snapshot.delta;
                            }
                            Stage::Control => bus.final_cmd = snapshot.final_cmd,
                        }
                        bus.heartbeats[stage.index()] = snapshot.heartbeats[stage.index()];
                        self.injections += 1;
                    }
                }
                FaultKind::FreezeWorldModel => {
                    if let Some((frozen, captured_at)) = &self.frozen_model {
                        // Delayed perception: the stale tracks *coast* at
                        // their last estimated velocities (exactly what a
                        // tracker does when measurements stop arriving).
                        // New objects — like the revealed slow vehicle of
                        // paper Example 2 — never appear.
                        let dt = (frame - captured_at) as f64 / 30.0;
                        let mut coasted = frozen.clone();
                        for obj in &mut coasted.objects {
                            obj.position += obj.velocity * dt;
                        }
                        bus.world_model = coasted;
                        self.injections += 1;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{FaultWindow, ScalarFaultModel};
    use drivefi_ads::Signal;
    use drivefi_kinematics::Vec2;
    use drivefi_perception::{TrackId, TrackedObject};

    fn bus() -> Bus {
        let mut b = Bus::default();
        b.pose.v = 30.0;
        b.raw_cmd.throttle = 0.2;
        b.world_model.objects.push(TrackedObject {
            id: TrackId(0),
            position: Vec2::new(50.0, 0.0),
            velocity: Vec2::new(25.0, 0.0),
            extent: Vec2::new(4.7, 1.9),
            truth_id: 1,
        });
        b
    }

    #[test]
    fn scalar_fault_fires_only_in_window_and_stage() {
        let fault = Fault {
            kind: FaultKind::Scalar {
                signal: Signal::RawThrottle,
                model: ScalarFaultModel::StuckMax,
            },
            window: FaultWindow::transient(5),
        };
        let mut inj = Injector::new(vec![fault]);
        let mut b = bus();
        // Wrong frame: no effect.
        inj.intercept(Stage::Planning, 4, &mut b);
        assert_eq!(b.raw_cmd.throttle, 0.2);
        // Wrong stage: no effect.
        inj.intercept(Stage::Control, 5, &mut b);
        assert_eq!(b.raw_cmd.throttle, 0.2);
        // Right frame + stage: corrupted (0.2 → 1.0, the paper's
        // Example-1 throttle corruption shape).
        inj.intercept(Stage::Planning, 5, &mut b);
        assert_eq!(b.raw_cmd.throttle, 1.0);
        assert_eq!(inj.injection_count(), 1);
    }

    #[test]
    fn clear_world_model_empties_tracks() {
        let fault = Fault { kind: FaultKind::ClearWorldModel, window: FaultWindow::burst(0, 2) };
        let mut inj = Injector::new(vec![fault]);
        let mut b = bus();
        inj.intercept(Stage::Perception, 0, &mut b);
        assert!(b.world_model.objects.is_empty());
    }

    #[test]
    fn freeze_replays_coasting_stale_model() {
        let fault = Fault { kind: FaultKind::FreezeWorldModel, window: FaultWindow::burst(10, 5) };
        let mut inj = Injector::new(vec![fault]);
        let mut b = bus();
        // Frame 9: capture (one before activation). The captured object
        // sits at 50 m moving 25 m/s.
        inj.intercept(Stage::Perception, 9, &mut b);
        // World moves on; perception would publish the object at 80 m.
        b.world_model.objects[0].position.x = 80.0;
        inj.intercept(Stage::Perception, 10, &mut b);
        // The stale track *coasts* at its captured velocity: 50 + 25/30.
        let expect = 50.0 + 25.0 * (1.0 / 30.0);
        assert!(
            (b.world_model.objects[0].position.x - expect).abs() < 1e-9,
            "stale coasting model expected, got {}",
            b.world_model.objects[0].position.x
        );
        // Three frames later it has coasted further — but never sees the
        // real 80 m update.
        inj.intercept(Stage::Perception, 13, &mut b);
        let expect = 50.0 + 25.0 * (4.0 / 30.0);
        assert!((b.world_model.objects[0].position.x - expect).abs() < 1e-9);
        // After the window the live model flows again.
        b.world_model.objects[0].position.x = 90.0;
        inj.intercept(Stage::Perception, 15, &mut b);
        assert_eq!(b.world_model.objects[0].position.x, 90.0);
    }

    #[test]
    fn module_hang_freezes_outputs_and_heartbeat() {
        let fault = Fault {
            kind: FaultKind::ModuleHang { stage: Stage::Planning },
            window: FaultWindow::burst(10, 5),
        };
        let mut inj = Injector::new(vec![fault]);
        let mut b = bus();
        b.raw_cmd.throttle = 0.2;
        b.heartbeats[Stage::Planning.index()] = 9;
        // Frame 9: capture (one before activation).
        inj.intercept(Stage::Planning, 9, &mut b);
        assert_eq!(b.raw_cmd.throttle, 0.2, "no effect before the window");
        // The live planner would publish new values...
        b.raw_cmd.throttle = 0.8;
        b.heartbeats[Stage::Planning.index()] = 10;
        inj.intercept(Stage::Planning, 10, &mut b);
        // ...but the hang pins them at the pre-hang snapshot.
        assert_eq!(b.raw_cmd.throttle, 0.2);
        assert_eq!(b.heartbeats[Stage::Planning.index()], 9);
        // Past the window the module publishes again.
        b.raw_cmd.throttle = 0.9;
        b.heartbeats[Stage::Planning.index()] = 15;
        inj.intercept(Stage::Planning, 15, &mut b);
        assert_eq!(b.raw_cmd.throttle, 0.9);
    }

    #[test]
    fn hang_names_its_stage() {
        let k = FaultKind::ModuleHang { stage: Stage::Perception };
        assert_eq!(k.name(), "perception.hang");
        assert_eq!(k.stage(), Stage::Perception);
    }

    #[test]
    fn missing_signal_is_not_counted() {
        let fault = Fault {
            kind: FaultKind::Scalar {
                signal: Signal::LeadDistance,
                model: ScalarFaultModel::StuckMin,
            },
            window: FaultWindow::transient(0),
        };
        let mut inj = Injector::new(vec![fault]);
        let mut b = Bus::default(); // no objects → no lead signal
        inj.intercept(Stage::Perception, 0, &mut b);
        assert_eq!(inj.injection_count(), 0);
    }

    #[test]
    fn multiple_faults_compose() {
        let faults = vec![
            Fault {
                kind: FaultKind::Scalar {
                    signal: Signal::RawThrottle,
                    model: ScalarFaultModel::StuckMax,
                },
                window: FaultWindow::transient(0),
            },
            Fault {
                kind: FaultKind::Scalar {
                    signal: Signal::RawBrake,
                    model: ScalarFaultModel::StuckMin,
                },
                window: FaultWindow::transient(0),
            },
        ];
        let mut inj = Injector::new(faults);
        let mut b = bus();
        b.raw_cmd.brake = 0.5;
        inj.intercept(Stage::Planning, 0, &mut b);
        assert_eq!(b.raw_cmd.throttle, 1.0);
        assert_eq!(b.raw_cmd.brake, 0.0);
    }
}
