//! Fault descriptions: what to corrupt, how, and when.

use drivefi_ads::Signal;

/// How a scalar signal value is corrupted.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ScalarFaultModel {
    /// Replace with the signal's physical minimum (paper fault model *b*).
    StuckMin,
    /// Replace with the signal's physical maximum (paper fault model *b*).
    StuckMax,
    /// Replace with a fixed value.
    StuckAt(f64),
    /// Flip one bit of the IEEE-754 representation (0 = LSB of the
    /// mantissa, 63 = sign bit).
    BitFlip(u8),
    /// Add a constant offset.
    Offset(f64),
    /// Multiply by a constant factor.
    Scale(f64),
}

impl ScalarFaultModel {
    /// Applies the corruption to `value`, given the signal's physical
    /// range (used by the min/max models).
    pub fn apply(self, value: f64, range: drivefi_ads::SignalRange) -> f64 {
        match self {
            ScalarFaultModel::StuckMin => range.min,
            ScalarFaultModel::StuckMax => range.max,
            ScalarFaultModel::StuckAt(v) => v,
            ScalarFaultModel::BitFlip(bit) => f64::from_bits(value.to_bits() ^ (1u64 << bit)),
            ScalarFaultModel::Offset(d) => value + d,
            ScalarFaultModel::Scale(f) => value * f,
        }
    }

    /// Short stable name for reports.
    pub fn name(self) -> String {
        match self {
            ScalarFaultModel::StuckMin => "min".into(),
            ScalarFaultModel::StuckMax => "max".into(),
            ScalarFaultModel::StuckAt(v) => format!("stuck({v})"),
            ScalarFaultModel::BitFlip(b) => format!("bitflip({b})"),
            ScalarFaultModel::Offset(d) => format!("offset({d})"),
            ScalarFaultModel::Scale(f) => format!("scale({f})"),
        }
    }

    /// The inverse of [`ScalarFaultModel::name`]: parses `"min"`,
    /// `"max"`, `"stuck(v)"`, `"bitflip(b)"`, `"offset(d)"`, and
    /// `"scale(f)"`. Returns `None` on anything else.
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "min" => return Some(ScalarFaultModel::StuckMin),
            "max" => return Some(ScalarFaultModel::StuckMax),
            _ => {}
        }
        let (head, rest) = name.split_once('(')?;
        let arg = rest.strip_suffix(')')?;
        match head {
            "stuck" => arg.parse().ok().map(ScalarFaultModel::StuckAt),
            "bitflip" => arg.parse().ok().filter(|b| *b < 64).map(ScalarFaultModel::BitFlip),
            "offset" => arg.parse().ok().map(ScalarFaultModel::Offset),
            "scale" => arg.parse().ok().map(ScalarFaultModel::Scale),
            _ => None,
        }
    }

    /// A cheap totally ordered `Copy` identity: `(variant tag, payload
    /// bits)`. Two models compare equal iff they are the same variant
    /// with bit-identical payload — exactly the identity the exhaustive
    /// driver needs for its fault-key sets, without allocating names.
    pub fn key(self) -> (u8, u64) {
        match self {
            ScalarFaultModel::StuckMin => (0, 0),
            ScalarFaultModel::StuckMax => (1, 0),
            ScalarFaultModel::StuckAt(v) => (2, v.to_bits()),
            ScalarFaultModel::BitFlip(b) => (3, u64::from(b)),
            ScalarFaultModel::Offset(d) => (4, d.to_bits()),
            ScalarFaultModel::Scale(f) => (5, f.to_bits()),
        }
    }

    /// The inverse of [`ScalarFaultModel::key`]: reconstructs the model
    /// from its `(variant tag, payload bits)` identity. Returns `None`
    /// for an unknown tag or an out-of-range bit-flip payload — the
    /// decode path `drivefi-store` takes when reading persisted campaign
    /// records.
    pub fn from_key(tag: u8, bits: u64) -> Option<Self> {
        match tag {
            0 => Some(ScalarFaultModel::StuckMin),
            1 => Some(ScalarFaultModel::StuckMax),
            2 => Some(ScalarFaultModel::StuckAt(f64::from_bits(bits))),
            3 => u8::try_from(bits).ok().filter(|b| *b < 64).map(ScalarFaultModel::BitFlip),
            4 => Some(ScalarFaultModel::Offset(f64::from_bits(bits))),
            5 => Some(ScalarFaultModel::Scale(f64::from_bits(bits))),
            _ => None,
        }
    }
}

/// When a fault is active, in base-tick frames (30 Hz).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultWindow {
    /// First active frame.
    pub start_frame: u64,
    /// Number of consecutive active frames (`u64::MAX` = permanent).
    pub frames: u64,
}

impl FaultWindow {
    /// A single-frame transient at `frame` (the paper's transient model:
    /// one corrupted inference cycle).
    pub fn transient(frame: u64) -> Self {
        FaultWindow { start_frame: frame, frames: 1 }
    }

    /// An intermittent burst of `frames` consecutive frames.
    pub fn burst(frame: u64, frames: u64) -> Self {
        FaultWindow { start_frame: frame, frames }
    }

    /// A permanent fault starting at `frame`.
    pub fn permanent(frame: u64) -> Self {
        FaultWindow { start_frame: frame, frames: u64::MAX }
    }

    /// True when the fault is active on `frame`.
    pub fn active(&self, frame: u64) -> bool {
        frame >= self.start_frame
            && (self.frames == u64::MAX || frame - self.start_frame < self.frames)
    }

    /// One frame at paper scene rate `k` (7.5 Hz scene index → 30 Hz
    /// frame), lasting one full scene (4 base ticks).
    pub fn scene(scene_index: u64) -> Self {
        FaultWindow { start_frame: scene_index * 4, frames: 4 }
    }
}

/// What the fault does.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Corrupt one scalar signal on the bus.
    Scalar {
        /// The target signal.
        signal: Signal,
        /// The corruption applied.
        model: ScalarFaultModel,
    },
    /// Empty the world model — the ADS "fails to register the leading
    /// vehicle" (paper Example 1).
    ClearWorldModel,
    /// Republish the world model captured at fault onset — delayed
    /// perception, the Tesla-crash mechanism of paper Example 2.
    FreezeWorldModel,
    /// The module behind `stage` hangs: its outputs (and heartbeat) stop
    /// updating for the fault window, exactly what a crashed or wedged
    /// process looks like to the rest of the system — downstream modules
    /// keep consuming the last published message. This is the ADS-level
    /// analog of the paper's kernel panics and hangs (7.35 % of the
    /// random architectural injections).
    ModuleHang {
        /// The hung pipeline stage.
        stage: drivefi_ads::Stage,
    },
}

impl FaultKind {
    /// The pipeline stage this fault acts after.
    pub fn stage(&self) -> drivefi_ads::Stage {
        match self {
            FaultKind::Scalar { signal, .. } => signal.stage(),
            FaultKind::ClearWorldModel | FaultKind::FreezeWorldModel => {
                drivefi_ads::Stage::Perception
            }
            FaultKind::ModuleHang { stage } => *stage,
        }
    }

    /// Stable name for reports.
    pub fn name(&self) -> String {
        match self {
            FaultKind::Scalar { signal, model } => format!("{}:{}", signal.name(), model.name()),
            FaultKind::ClearWorldModel
            | FaultKind::FreezeWorldModel
            | FaultKind::ModuleHang { .. } => self.target_name().into(),
        }
    }

    /// The fault's *target* as a static string: the signal name for
    /// scalar faults, the module-fault name otherwise. Same naming
    /// scheme [`crate::space::FaultSpace::parse_module`] parses.
    pub fn target_name(&self) -> &'static str {
        // One entry per Stage, indexed by Stage::index (the hang names
        // cannot be built at runtime and stay &'static).
        const HANGS: [&str; 5] = [
            "sensors.hang",
            "localization.hang",
            "perception.hang",
            "planning.hang",
            "control.hang",
        ];
        match self {
            FaultKind::Scalar { signal, .. } => signal.name(),
            FaultKind::ClearWorldModel => "world.clear",
            FaultKind::FreezeWorldModel => "world.freeze",
            FaultKind::ModuleHang { stage } => HANGS[stage.index()],
        }
    }
}

/// A fully specified fault: what + when.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fault {
    /// What is corrupted.
    pub kind: FaultKind,
    /// When it is active.
    pub window: FaultWindow,
}

#[cfg(test)]
mod tests {
    use super::*;
    use drivefi_ads::SignalRange;

    const RANGE: SignalRange = SignalRange { min: 0.0, max: 1.0 };

    #[test]
    fn min_max_models_use_range() {
        assert_eq!(ScalarFaultModel::StuckMin.apply(0.5, RANGE), 0.0);
        assert_eq!(ScalarFaultModel::StuckMax.apply(0.5, RANGE), 1.0);
    }

    #[test]
    fn bitflip_is_involutive() {
        for bit in [0u8, 12, 31, 52, 62, 63] {
            let m = ScalarFaultModel::BitFlip(bit);
            let x = 0.7362;
            assert_eq!(m.apply(m.apply(x, RANGE), RANGE), x);
        }
    }

    #[test]
    fn sign_bit_flip_negates() {
        let m = ScalarFaultModel::BitFlip(63);
        assert_eq!(m.apply(1.5, RANGE), -1.5);
    }

    #[test]
    fn exponent_flip_is_catastrophic() {
        // Flipping a high exponent bit wrecks the value — for 1.5
        // (exponent 0x3FF) bit 62 lands on 0x7FF, i.e. NaN; for 0.75 it
        // produces a ~1e308 monster. Both are classic SDC sources.
        let m = ScalarFaultModel::BitFlip(62);
        assert!(m.apply(1.5, RANGE).is_nan());
        assert!(m.apply(0.75, RANGE) > 1e300);
    }

    #[test]
    fn from_key_inverts_key() {
        for model in [
            ScalarFaultModel::StuckMin,
            ScalarFaultModel::StuckMax,
            ScalarFaultModel::StuckAt(-0.75),
            ScalarFaultModel::BitFlip(63),
            ScalarFaultModel::Offset(2.5),
            ScalarFaultModel::Scale(0.5),
        ] {
            let (tag, bits) = model.key();
            assert_eq!(ScalarFaultModel::from_key(tag, bits), Some(model));
        }
        assert_eq!(ScalarFaultModel::from_key(99, 0), None);
        assert_eq!(ScalarFaultModel::from_key(3, 64), None, "bit index out of range");
    }

    #[test]
    fn windows_cover_expected_frames() {
        let t = FaultWindow::transient(10);
        assert!(!t.active(9));
        assert!(t.active(10));
        assert!(!t.active(11));

        let b = FaultWindow::burst(10, 3);
        assert!(b.active(12));
        assert!(!b.active(13));

        let p = FaultWindow::permanent(10);
        assert!(p.active(1_000_000));
        assert!(!p.active(9));

        let s = FaultWindow::scene(5);
        assert!(s.active(20) && s.active(23));
        assert!(!s.active(19) && !s.active(24));
    }

    #[test]
    fn names_are_informative() {
        let k =
            FaultKind::Scalar { signal: Signal::RawThrottle, model: ScalarFaultModel::StuckMax };
        assert_eq!(k.name(), "plan.throttle:max");
        assert_eq!(FaultKind::FreezeWorldModel.name(), "world.freeze");
    }

    #[test]
    fn target_names_match_stage_names_and_round_trip() {
        use crate::space::FaultSpace;
        for stage in drivefi_ads::Stage::ALL {
            let kind = FaultKind::ModuleHang { stage };
            assert_eq!(kind.target_name(), format!("{}.hang", stage.name()));
            assert_eq!(FaultSpace::parse_module(kind.target_name()), Some(kind));
        }
        for kind in [FaultKind::ClearWorldModel, FaultKind::FreezeWorldModel] {
            assert_eq!(FaultSpace::parse_module(kind.target_name()), Some(kind));
        }
    }
}
