//! Fault models and injectors.
//!
//! DriveFI's fault model (paper §II-C) has three parts; this crate
//! implements the machinery for all of them:
//!
//! * **Fault model (a)** — random/uniform faults in non-ECC-protected
//!   processor structures. The paper flips bits in GPU/CPU architectural
//!   state under the real stacks; we cannot run those, so [`arch`]
//!   provides a **soft-error VM**: a register machine executing a
//!   representative ADS numeric kernel in which single bit flips are
//!   injected at random dynamic instructions and classified as
//!   masked / silent data corruption / crash / hang — emergent from
//!   register liveness, not hard-coded rates.
//! * **Fault model (b)** — ADS module *outputs* corrupted with min or max
//!   values. [`ScalarFaultModel`] covers min/max plus the bit-flip,
//!   stuck-at, offset and noise variants used by the ablations, applied to
//!   any [`drivefi_ads::Signal`].
//! * **Fault model (c)** — Bayesian-selected faults; the selection lives
//!   in `drivefi-core`, the mechanics here.
//!
//! [`Injector`] implements [`drivefi_ads::BusInterceptor`], applying a set
//! of [`Fault`]s at their pipeline stage and time window, including the
//! structural world-model faults that recreate the paper's two case
//! studies (failure to register the lead vehicle; delayed perception).
//!
//! # Example
//!
//! ```
//! use drivefi_ads::Signal;
//! use drivefi_fault::{Fault, FaultKind, FaultWindow, Injector, ScalarFaultModel};
//!
//! let fault = Fault {
//!     kind: FaultKind::Scalar { signal: Signal::FinalThrottle, model: ScalarFaultModel::StuckMax },
//!     window: FaultWindow::transient(120),
//! };
//! let injector = Injector::new(vec![fault]);
//! assert_eq!(injector.faults().len(), 1);
//! ```

pub mod arch;
pub mod ecc;
pub mod injector;
pub mod model;
pub mod space;

pub use arch::{ArchOutcome, ArchProgram, ArchSimulator, InjectionSite};
pub use ecc::{Codeword, DecodeResult, EccMemory};
pub use injector::Injector;
pub use model::{Fault, FaultKind, FaultWindow, ScalarFaultModel};
pub use space::{CorruptionGrid, FaultKey, FaultSpace, FaultSpec, WindowSpec};
