//! The fault-space API: serializable fault descriptors and lazily
//! enumerable candidate spaces.
//!
//! The paper's campaign loop is "pick a fault space, sweep or mine it,
//! validate" — yet every driver used to hand-roll its own enumeration of
//! `(scene, signal, corruption)` tuples and build [`Fault`] literals
//! inline. This module makes the fault space a first-class value:
//!
//! * [`FaultSpec`] — a fully *serializable* fault description: what to
//!   corrupt ([`FaultKind`], including the module-level hang / freeze /
//!   clear faults) and when, in **scene** units ([`WindowSpec`]). A spec
//!   compiles to a tick-level [`Fault`] at dispatch time.
//! * [`FaultSpace`] — the candidate cross-product: target signals ×
//!   corruption models × scenes, plus module-level faults, with lazy
//!   exhaustive enumeration ([`FaultSpace::iter`]), seeded sampling
//!   ([`FaultSpace::sample`]), and a closed-form size
//!   ([`FaultSpace::len`]).
//! * [`CorruptionGrid`] — the generic item × model product underneath
//!   [`FaultSpace`], reused by `drivefi-genfi` for its injectable-
//!   variable enumeration.
//! * [`FaultKey`] — a `Copy`, totally ordered identity for a
//!   [`FaultSpec`], replacing the allocated `(String, String)` keys the
//!   exhaustive ground-truth comparison used to build per candidate.

use crate::model::{Fault, FaultKind, FaultWindow, ScalarFaultModel};
use drivefi_ads::{Signal, Stage};
use rand::rngs::StdRng;
use rand::Rng;

/// Base ticks (30 Hz) per scene (7.5 Hz) — the paper's discretization,
/// shared with `drivefi-sim`'s `BASE_TICKS_PER_SCENE`.
pub const TICKS_PER_SCENE: u64 = 4;

/// When a fault is active, in **scene** units (7.5 Hz). Scene-based
/// windows are what campaign plans serialize; they compile to tick-level
/// [`FaultWindow`]s at dispatch time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct WindowSpec {
    /// First active scene.
    pub scene: u64,
    /// Number of consecutive active scenes (`u64::MAX` = permanent).
    pub scenes: u64,
}

impl WindowSpec {
    /// A single-scene transient (the paper's one-corrupted-inference
    /// model).
    pub fn scene(scene: u64) -> Self {
        WindowSpec { scene, scenes: 1 }
    }

    /// A burst of `scenes` consecutive scenes.
    pub fn burst(scene: u64, scenes: u64) -> Self {
        WindowSpec { scene, scenes }
    }

    /// A permanent fault starting at `scene`.
    pub fn permanent(scene: u64) -> Self {
        WindowSpec { scene, scenes: u64::MAX }
    }

    /// Compiles to the tick-level window.
    pub fn window(self) -> FaultWindow {
        FaultWindow {
            start_frame: self.scene * TICKS_PER_SCENE,
            frames: if self.scenes == u64::MAX { u64::MAX } else { self.scenes * TICKS_PER_SCENE },
        }
    }
}

/// A fully serializable fault descriptor: what + when (in scenes).
/// [`FaultSpec::compile`] turns it into the injector-level [`Fault`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// What is corrupted (scalar signal or module-level fault).
    pub kind: FaultKind,
    /// When it is active, in scenes.
    pub window: WindowSpec,
}

impl FaultSpec {
    /// A single-scene scalar corruption — the paper's fault model *b*
    /// shape.
    pub fn scalar(signal: Signal, model: ScalarFaultModel, scene: u64) -> Self {
        FaultSpec { kind: FaultKind::Scalar { signal, model }, window: WindowSpec::scene(scene) }
    }

    /// Compiles the spec to the injector-level fault.
    pub fn compile(self) -> Fault {
        Fault { kind: self.kind, window: self.window.window() }
    }

    /// The `Copy` identity of this spec (see [`FaultKey`]).
    pub fn key(self) -> FaultKey {
        let (tag, target, model) = match self.kind {
            FaultKind::Scalar { signal, model } => {
                let (code, bits) = model.key();
                (0, signal.index(), (code, bits))
            }
            FaultKind::ClearWorldModel => (1, 0, (0, 0)),
            FaultKind::FreezeWorldModel => (2, 0, (0, 0)),
            FaultKind::ModuleHang { stage } => (3, stage.index() as u8, (0, 0)),
        };
        FaultKey { tag, target, model, window: self.window }
    }

    /// Stable report name: the kind name plus the scene window.
    pub fn name(&self) -> String {
        if self.window.scenes == 1 {
            format!("{}@{}", self.kind.name(), self.window.scene)
        } else {
            format!("{}@{}+{}", self.kind.name(), self.window.scene, self.window.scenes)
        }
    }
}

/// A `Copy`, hashable, totally ordered identity for a [`FaultSpec`] —
/// the allocation-free fault key used by exhaustive set comparisons.
/// Two specs have equal keys iff they describe the same fault (same
/// kind, bit-identical model payload, same scene window).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FaultKey {
    tag: u8,
    target: u8,
    model: (u8, u64),
    window: WindowSpec,
}

/// The generic item × corruption-model cross-product. This is the shared
/// enumeration core of [`FaultSpace`] (items = [`Signal`]s) and of the
/// generic miner in `drivefi-genfi` (items = injectable variable
/// indices), which previously re-invented the same pairing inline.
#[derive(Debug, Clone, PartialEq)]
pub struct CorruptionGrid<T> {
    /// The corruptible items.
    pub items: Vec<T>,
    /// The corruption models applied to every item.
    pub models: Vec<ScalarFaultModel>,
}

impl<T: Copy> CorruptionGrid<T> {
    /// A grid over `items` × `models`.
    pub fn new(items: Vec<T>, models: Vec<ScalarFaultModel>) -> Self {
        CorruptionGrid { items, models }
    }

    /// Number of `(item, model)` pairs.
    pub fn len(&self) -> usize {
        self.items.len() * self.models.len()
    }

    /// True when the grid enumerates nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `index`-th pair, in row-major (item-major) order.
    ///
    /// # Panics
    ///
    /// Panics when `index >= len()`.
    pub fn get(&self, index: usize) -> (T, ScalarFaultModel) {
        let models = self.models.len();
        (self.items[index / models], self.models[index % models])
    }

    /// Lazily enumerates every pair, item-major.
    pub fn iter(&self) -> impl Iterator<Item = (T, ScalarFaultModel)> + '_ {
        self.items.iter().flat_map(|&item| self.models.iter().map(move |&m| (item, m)))
    }
}

/// A declarative candidate fault space: which scalar signals get which
/// corruption models, which module-level faults ride along, and which
/// scene window the faults sweep. The space is *lazy*: nothing is
/// materialized until a driver iterates or samples it, and the scene
/// axis resolves against each scenario's own scene count at that point.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSpace {
    /// Scalar signal targets × corruption models.
    pub scalars: CorruptionGrid<Signal>,
    /// Module-level faults swept over the same scene axis (world-model
    /// clear / freeze, per-stage hangs).
    pub modules: Vec<FaultKind>,
    /// First eligible scene.
    pub first_scene: u64,
    /// Scenes held back from the scenario tail (the last
    /// `tail_margin` scenes are ineligible).
    pub tail_margin: u64,
    /// Burst length, in scenes, of every generated fault.
    pub window_scenes: u64,
}

impl Default for FaultSpace {
    /// The paper's fault model *b* baseline: every signal × {min, max},
    /// single-scene windows over the scenario interior.
    fn default() -> Self {
        FaultSpace {
            scalars: CorruptionGrid::new(
                Signal::ALL.to_vec(),
                vec![ScalarFaultModel::StuckMin, ScalarFaultModel::StuckMax],
            ),
            modules: Vec::new(),
            first_scene: 1,
            tail_margin: 1,
            window_scenes: 1,
        }
    }
}

impl FaultSpace {
    /// Number of distinct fault kinds (scalar pairs + module faults).
    pub fn kind_count(&self) -> usize {
        self.scalars.len() + self.modules.len()
    }

    /// The `index`-th fault kind, scalar pairs first.
    ///
    /// # Panics
    ///
    /// Panics when `index >= kind_count()`.
    pub fn kind(&self, index: usize) -> FaultKind {
        if index < self.scalars.len() {
            let (signal, model) = self.scalars.get(index);
            FaultKind::Scalar { signal, model }
        } else {
            self.modules[index - self.scalars.len()]
        }
    }

    /// The eligible scene range for a scenario with `scene_count`
    /// scenes. Empty when the scenario is shorter than the margins.
    pub fn scene_range(&self, scene_count: u64) -> std::ops::Range<u64> {
        self.first_scene..scene_count.saturating_sub(self.tail_margin).max(self.first_scene)
    }

    /// Exhaustive size of the space for a scenario with `scene_count`
    /// scenes.
    pub fn len(&self, scene_count: u64) -> u64 {
        let scenes = self.scene_range(scene_count);
        (scenes.end - scenes.start) * self.kind_count() as u64
    }

    /// True when the space enumerates nothing for `scene_count`.
    pub fn is_empty(&self, scene_count: u64) -> bool {
        self.len(scene_count) == 0
    }

    /// Lazily enumerates every candidate fault, scene-major then
    /// kind-major — the exhaustive sweep. Nothing is allocated per
    /// candidate.
    pub fn iter(&self, scene_count: u64) -> impl Iterator<Item = FaultSpec> + '_ {
        let window = self.window_scenes;
        self.scene_range(scene_count).flat_map(move |scene| {
            (0..self.kind_count()).map(move |k| FaultSpec {
                kind: self.kind(k),
                window: WindowSpec::burst(scene, window),
            })
        })
    }

    /// Draws one candidate uniformly: a scene from the eligible range,
    /// then a fault kind. Consumes exactly two RNG draws, so campaign
    /// streams stay reproducible functions of the seed.
    ///
    /// # Panics
    ///
    /// Panics when the space is empty for `scene_count`.
    pub fn sample(&self, scene_count: u64, rng: &mut StdRng) -> FaultSpec {
        let scenes = self.scene_range(scene_count);
        assert!(scenes.start < scenes.end, "empty scene range for {scene_count} scenes");
        assert!(self.kind_count() > 0, "fault space has no fault kinds");
        let scene = rng.random_range(scenes);
        let kind = self.kind(rng.random_range(0..self.kind_count()));
        FaultSpec { kind, window: WindowSpec::burst(scene, self.window_scenes) }
    }

    /// Parses a module-fault name: `"world.clear"`, `"world.freeze"`, or
    /// `"<stage>.hang"` (e.g. `"planning.hang"`).
    pub fn parse_module(name: &str) -> Option<FaultKind> {
        match name {
            "world.clear" => Some(FaultKind::ClearWorldModel),
            "world.freeze" => Some(FaultKind::FreezeWorldModel),
            _ => {
                let stage = name.strip_suffix(".hang")?;
                Stage::from_name(stage).map(|stage| FaultKind::ModuleHang { stage })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn window_spec_compiles_to_tick_windows() {
        assert_eq!(WindowSpec::scene(5).window(), FaultWindow::scene(5));
        assert_eq!(WindowSpec::burst(10, 6).window(), FaultWindow::burst(40, 24));
        assert_eq!(WindowSpec::permanent(3).window(), FaultWindow::permanent(12));
    }

    #[test]
    fn spec_compiles_to_equivalent_fault() {
        let spec = FaultSpec::scalar(Signal::RawThrottle, ScalarFaultModel::StuckMax, 20);
        let fault = spec.compile();
        assert_eq!(fault.kind, spec.kind);
        assert!(fault.window.active(80) && fault.window.active(83));
        assert!(!fault.window.active(79) && !fault.window.active(84));
    }

    #[test]
    fn keys_are_copy_identities() {
        let a = FaultSpec::scalar(Signal::RawBrake, ScalarFaultModel::StuckMin, 7);
        let b = FaultSpec::scalar(Signal::RawBrake, ScalarFaultModel::StuckMin, 7);
        assert_eq!(a.key(), b.key());
        let c = FaultSpec::scalar(Signal::RawBrake, ScalarFaultModel::StuckMax, 7);
        assert_ne!(a.key(), c.key());
        let d = FaultSpec::scalar(Signal::RawThrottle, ScalarFaultModel::StuckMin, 7);
        assert_ne!(a.key(), d.key());
        let hang = FaultSpec {
            kind: FaultKind::ModuleHang { stage: Stage::Planning },
            window: WindowSpec::scene(7),
        };
        assert_ne!(a.key(), hang.key());
        // Distinct stuck-at payloads stay distinct through the bits.
        let s1 = FaultSpec::scalar(Signal::RawBrake, ScalarFaultModel::StuckAt(0.5), 7);
        let s2 = FaultSpec::scalar(Signal::RawBrake, ScalarFaultModel::StuckAt(0.25), 7);
        assert_ne!(s1.key(), s2.key());
    }

    #[test]
    fn grid_enumeration_is_item_major_and_sized() {
        let grid = CorruptionGrid::new(
            vec![Signal::RawThrottle, Signal::RawBrake],
            vec![ScalarFaultModel::StuckMin, ScalarFaultModel::StuckMax],
        );
        assert_eq!(grid.len(), 4);
        let pairs: Vec<_> = grid.iter().collect();
        assert_eq!(pairs.len(), 4);
        assert_eq!(pairs[0], (Signal::RawThrottle, ScalarFaultModel::StuckMin));
        assert_eq!(pairs[3], (Signal::RawBrake, ScalarFaultModel::StuckMax));
        for (i, pair) in pairs.iter().enumerate() {
            assert_eq!(grid.get(i), *pair);
        }
    }

    #[test]
    fn default_space_matches_paper_baseline() {
        let space = FaultSpace::default();
        // 14 signals × 2 models over scenes 1..=298 of a 300-scene run.
        assert_eq!(space.kind_count(), 28);
        assert_eq!(space.len(300), 28 * 298);
        assert_eq!(space.iter(300).count() as u64, space.len(300));
        // Every enumerated spec is a single-scene scalar burst.
        let first = space.iter(300).next().unwrap();
        assert_eq!(first.window, WindowSpec::scene(1));
        assert!(matches!(first.kind, FaultKind::Scalar { .. }));
    }

    #[test]
    fn space_with_modules_enumerates_them_after_scalars() {
        let space = FaultSpace {
            modules: vec![
                FaultKind::ClearWorldModel,
                FaultKind::ModuleHang { stage: Stage::Planning },
            ],
            ..FaultSpace::default()
        };
        assert_eq!(space.kind_count(), 30);
        let specs: Vec<_> = space.iter(4).collect();
        // Scenes 1 and 2 eligible → 2 × 30 candidates.
        assert_eq!(specs.len(), 60);
        assert_eq!(specs[28].kind, FaultKind::ClearWorldModel);
        assert_eq!(specs[29].kind, FaultKind::ModuleHang { stage: Stage::Planning });
    }

    #[test]
    fn sampling_is_uniform_over_the_range_and_deterministic() {
        let space = FaultSpace::default();
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        for _ in 0..50 {
            let sa = space.sample(120, &mut a);
            let sb = space.sample(120, &mut b);
            assert_eq!(sa, sb);
            assert!(space.scene_range(120).contains(&sa.window.scene));
        }
    }

    #[test]
    fn short_scenarios_yield_empty_spaces() {
        let space = FaultSpace::default();
        assert!(space.is_empty(1));
        assert_eq!(space.iter(1).count(), 0);
        assert_eq!(space.len(2), 0, "scenes 1..1 is empty");
    }

    #[test]
    fn module_names_parse() {
        assert_eq!(FaultSpace::parse_module("world.clear"), Some(FaultKind::ClearWorldModel));
        assert_eq!(FaultSpace::parse_module("world.freeze"), Some(FaultKind::FreezeWorldModel));
        assert_eq!(
            FaultSpace::parse_module("perception.hang"),
            Some(FaultKind::ModuleHang { stage: Stage::Perception })
        );
        assert_eq!(FaultSpace::parse_module("nonsense"), None);
        assert_eq!(FaultSpace::parse_module("nonsense.hang"), None);
    }

    #[test]
    fn model_parse_inverts_name() {
        for model in [
            ScalarFaultModel::StuckMin,
            ScalarFaultModel::StuckMax,
            ScalarFaultModel::StuckAt(0.75),
            ScalarFaultModel::BitFlip(62),
            ScalarFaultModel::Offset(-3.5),
            ScalarFaultModel::Scale(1.25),
        ] {
            assert_eq!(ScalarFaultModel::parse(&model.name()), Some(model));
        }
        assert_eq!(ScalarFaultModel::parse("bitflip(64)"), None);
        assert_eq!(ScalarFaultModel::parse("warp(1)"), None);
    }
}
