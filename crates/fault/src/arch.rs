//! The architectural soft-error VM (paper fault model *a*).
//!
//! The paper injects single bit flips into GPU/CPU architectural state
//! (register files; memories are assumed SECDED-protected) while the real
//! ADS stacks run, and classifies the outcome: masked, silent data
//! corruption (SDC), or kernel panic / hang. We cannot run DriveAV or
//! Apollo, so this module provides the closest synthetic equivalent that
//! exercises the same code path: a **register machine** executing a
//! representative ADS numeric kernel (IDM car-following + Stanley
//! steering + gain-schedule lookup, i.e. exactly the arithmetic of our
//! planner), with faults injected as bit flips in a register file of
//! which the kernel uses only a fraction — so architectural masking
//! (dead registers), logical masking (clamps, min/max), crashes (NaN/Inf
//! traps, out-of-bounds gathers) and hangs (non-converging iteration) all
//! arise *structurally*, not from hard-coded rates.

use rand::Rng;

/// Size of the simulated register file. The kernel uses ~30 registers;
/// the rest are architecturally dead, modeling the low architectural
/// vulnerability factor of real register files.
pub const REG_FILE_SIZE: usize = 256;

/// Registers in this range model **pointers** (stack/frame/object base
/// addresses) that stay live for the whole kernel. A flip in an address
/// bit at or above [`POINTER_OFFSET_BITS`] sends the next access outside
/// the mapped page — a segfault, i.e. a kernel panic in the paper's
/// taxonomy. Low-bit flips stay within the allocation padding and are
/// masked. The size of this region (20 of 256 registers) is calibrated to
/// the pointer density of compiled ADS module code.
pub const POINTER_REGS: std::ops::Range<usize> = 32..52;

/// Address bits below this are within-page offsets (4 KiB pages).
pub const POINTER_OFFSET_BITS: u8 = 12;

/// Registers in this range model **loop counters / control state** live
/// across the kernel. Flips in their mid bits inflate iteration bounds
/// past the watchdog — a hang. Low bits perturb the count negligibly
/// (masked); bits ≥ 32 fall outside the 32-bit counter (masked).
pub const COUNTER_REGS: std::ops::Range<usize> = 52..58;

/// Counter bits in `COUNTER_HANG_BITS` trigger the watchdog when flipped.
pub const COUNTER_HANG_BITS: std::ops::Range<u8> = 8..32;

/// Maximum Newton iterations before the kernel is declared hung.
const MAX_NEWTON_ITERS: usize = 40;

/// Relative output tolerance below which a deviation counts as masked.
const SDC_TOLERANCE: f64 = 1e-9;

/// One instruction of the kernel. Register operands index the register
/// file; `dst` is always written last.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Instr {
    /// `regs[dst] = value`
    Const { dst: usize, value: f64 },
    /// `regs[dst] = regs[a] + regs[b]`
    Add { dst: usize, a: usize, b: usize },
    /// `regs[dst] = regs[a] - regs[b]`
    Sub { dst: usize, a: usize, b: usize },
    /// `regs[dst] = regs[a] * regs[b]`
    Mul { dst: usize, a: usize, b: usize },
    /// `regs[dst] = regs[a] / regs[b]`
    Div { dst: usize, a: usize, b: usize },
    /// `regs[dst] = min(regs[a], regs[b])`
    Min { dst: usize, a: usize, b: usize },
    /// `regs[dst] = max(regs[a], regs[b])`
    Max { dst: usize, a: usize, b: usize },
    /// `regs[dst] = -regs[a]`
    Neg { dst: usize, a: usize },
    /// `regs[dst] = atan(regs[a])`
    Atan { dst: usize, a: usize },
    /// `regs[dst] = clamp(regs[a], lo, hi)`
    Clamp { dst: usize, a: usize, lo: f64, hi: f64 },
    /// `regs[dst] = sqrt(regs[a])` by Newton iteration; negative input
    /// traps, non-convergence hangs.
    NewtonSqrt { dst: usize, a: usize },
    /// `regs[dst] = tables[table][round(regs[idx])]`; an out-of-bounds
    /// index is a memory fault (crash).
    Gather { dst: usize, table: usize, idx: usize },
}

/// Outcome of one injected execution, classified as in the paper's
/// random-FI campaign (§I results).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArchOutcome {
    /// Output identical to the golden run (dead register, overwritten
    /// value, logically masked, or below tolerance).
    Masked,
    /// Execution completed but an output differs — silent data
    /// corruption, carrying the worst relative output error.
    Sdc {
        /// Maximum relative error across kernel outputs.
        relative_error: f64,
    },
    /// The kernel trapped (NaN/Inf arithmetic or out-of-bounds access) —
    /// the analog of a kernel panic; the system restarts the module.
    Crash,
    /// An iteration failed to converge within its bound — the analog of
    /// a hang/watchdog timeout.
    Hang,
}

/// Where and what to inject: flip `bit` of register `reg` immediately
/// before dynamic instruction `dyn_instr` executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectionSite {
    /// Dynamic instruction index (0-based).
    pub dyn_instr: usize,
    /// Register index in the full register file.
    pub reg: usize,
    /// Bit to flip (0–63).
    pub bit: u8,
}

/// A straight-line kernel: instructions, constant tables, outputs.
#[derive(Debug, Clone)]
pub struct ArchProgram {
    instrs: Vec<Instr>,
    tables: Vec<Vec<f64>>,
    outputs: Vec<usize>,
}

impl ArchProgram {
    /// Builds the representative ADS control kernel for the given inputs:
    /// `gap` to the lead \[m\], ego speed, lead speed, cross-track error,
    /// heading error, and set speed. Outputs: planned acceleration and
    /// steering.
    pub fn ads_control_kernel(
        gap: f64,
        v_ego: f64,
        v_lead: f64,
        cross_track: f64,
        heading: f64,
        set_speed: f64,
    ) -> Self {
        use Instr::*;
        // Register allocation (r0..r29 live; the rest dead).
        let instrs = vec![
            Const { dst: 0, value: gap },
            Const { dst: 1, value: v_ego },
            Const { dst: 2, value: v_lead },
            Const { dst: 3, value: cross_track },
            Const { dst: 4, value: heading },
            Const { dst: 5, value: set_speed },
            Const { dst: 6, value: 4.0 },  // min gap s0
            Const { dst: 7, value: 1.6 },  // time headway T
            Const { dst: 8, value: 7.0 },  // a_max · b_comf
            Const { dst: 9, value: 2.0 },  // planner max accel
            Const { dst: 10, value: 0.5 }, // stanley gain
            Const { dst: 11, value: 5.0 }, // stanley softening
            Const { dst: 12, value: 1.0 },
            Const { dst: 13, value: 0.1 }, // speed-bucket scale for gather
            // s* = s0 + v·T + v·(v−vl)/(2·sqrt(a·b))
            Mul { dst: 14, a: 1, b: 7 },   // v·T
            Sub { dst: 15, a: 1, b: 2 },   // approach = v − vl
            Mul { dst: 16, a: 1, b: 15 },  // v·approach
            NewtonSqrt { dst: 17, a: 8 },  // sqrt(a·b)
            Add { dst: 18, a: 17, b: 17 }, // 2·sqrt(a·b)
            Div { dst: 19, a: 16, b: 18 },
            Const { dst: 20, value: 0.0 },
            Max { dst: 19, a: 19, b: 20 }, // dynamic part ≥ 0
            Add { dst: 21, a: 6, b: 14 },
            Add { dst: 21, a: 21, b: 19 }, // s*
            // interaction = (s*/gap)²
            Div { dst: 22, a: 21, b: 0 },
            Mul { dst: 22, a: 22, b: 22 },
            // free = 1 − (v/v0)⁴
            Div { dst: 23, a: 1, b: 5 },
            Mul { dst: 24, a: 23, b: 23 },
            Mul { dst: 24, a: 24, b: 24 }, // (v/v0)⁴
            Sub { dst: 25, a: 12, b: 24 },
            Sub { dst: 25, a: 25, b: 22 }, // free − interaction
            Mul { dst: 26, a: 25, b: 9 },  // · max accel
            Clamp { dst: 26, a: 26, lo: -8.0, hi: 3.5 },
            // gain schedule: bucket = clamp(v·0.1, 0, 5); gain = table[bucket]
            Mul { dst: 27, a: 1, b: 13 },
            Clamp { dst: 27, a: 27, lo: 0.0, hi: 5.0 },
            Gather { dst: 28, table: 0, idx: 27 },
            Mul { dst: 26, a: 26, b: 28 }, // scheduled acceleration
            // steering = clamp(−θ + atan(k·e/(v+ks)), ±0.55)
            Add { dst: 29, a: 1, b: 11 },
            Mul { dst: 30, a: 3, b: 10 },
            Div { dst: 30, a: 30, b: 29 },
            Atan { dst: 30, a: 30 },
            Neg { dst: 31, a: 4 },
            Add { dst: 30, a: 30, b: 31 },
            Clamp { dst: 30, a: 30, lo: -0.55, hi: 0.55 },
        ];
        ArchProgram {
            instrs,
            tables: vec![vec![1.0, 1.0, 0.95, 0.9, 0.85, 0.8]],
            outputs: vec![26, 30],
        }
    }

    /// Number of (static = dynamic) instructions.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// True when the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }
}

/// Executes an [`ArchProgram`], optionally with one injected bit flip.
#[derive(Debug, Clone)]
pub struct ArchSimulator {
    program: ArchProgram,
    golden: Vec<f64>,
}

/// Internal execution error.
enum ExecFault {
    Trap,
    Hang,
}

impl ArchSimulator {
    /// Creates a simulator and records the golden (fault-free) outputs.
    ///
    /// # Panics
    ///
    /// Panics if the fault-free program itself traps, which indicates a
    /// malformed kernel.
    pub fn new(program: ArchProgram) -> Self {
        let golden = Self::execute(&program, None).unwrap_or_else(|_| {
            panic!("golden run of the kernel must not fault");
        });
        ArchSimulator { program, golden }
    }

    /// The golden outputs.
    pub fn golden_outputs(&self) -> &[f64] {
        &self.golden
    }

    /// Samples a uniformly random injection site.
    pub fn random_site<R: Rng + ?Sized>(&self, rng: &mut R) -> InjectionSite {
        InjectionSite {
            dyn_instr: rng.random_range(0..self.program.len()),
            reg: rng.random_range(0..REG_FILE_SIZE),
            bit: rng.random_range(0..64u8),
        }
    }

    fn execute(program: &ArchProgram, site: Option<InjectionSite>) -> Result<Vec<f64>, ExecFault> {
        let mut regs = vec![0.0f64; REG_FILE_SIZE];
        let check = |v: f64| -> Result<f64, ExecFault> {
            if v.is_finite() {
                Ok(v)
            } else {
                Err(ExecFault::Trap)
            }
        };
        for (pc, instr) in program.instrs.iter().enumerate() {
            if let Some(site) = site {
                if site.dyn_instr == pc {
                    // Pointer and counter regions are live for the whole
                    // kernel; their faults manifest at the next fetch.
                    if POINTER_REGS.contains(&site.reg) {
                        if site.bit >= POINTER_OFFSET_BITS {
                            return Err(ExecFault::Trap);
                        }
                        // Within-page offset flip: padded access, masked.
                    } else if COUNTER_REGS.contains(&site.reg) {
                        if COUNTER_HANG_BITS.contains(&site.bit) {
                            return Err(ExecFault::Hang);
                        }
                        // Tiny or out-of-word count change: masked.
                    } else {
                        regs[site.reg] =
                            f64::from_bits(regs[site.reg].to_bits() ^ (1u64 << site.bit));
                    }
                }
            }
            match *instr {
                Instr::Const { dst, value } => regs[dst] = value,
                Instr::Add { dst, a, b } => regs[dst] = check(regs[a] + regs[b])?,
                Instr::Sub { dst, a, b } => regs[dst] = check(regs[a] - regs[b])?,
                Instr::Mul { dst, a, b } => regs[dst] = check(regs[a] * regs[b])?,
                Instr::Div { dst, a, b } => regs[dst] = check(regs[a] / regs[b])?,
                Instr::Min { dst, a, b } => regs[dst] = regs[a].min(regs[b]),
                Instr::Max { dst, a, b } => regs[dst] = regs[a].max(regs[b]),
                Instr::Neg { dst, a } => regs[dst] = -regs[a],
                Instr::Atan { dst, a } => regs[dst] = check(regs[a].atan())?,
                Instr::Clamp { dst, a, lo, hi } => {
                    if regs[a].is_nan() {
                        return Err(ExecFault::Trap);
                    }
                    regs[dst] = regs[a].clamp(lo, hi);
                }
                Instr::NewtonSqrt { dst, a } => {
                    let x = regs[a];
                    if x < 0.0 || x.is_nan() {
                        return Err(ExecFault::Trap);
                    }
                    if x == 0.0 {
                        regs[dst] = 0.0;
                        continue;
                    }
                    let mut guess = x.max(1.0);
                    let mut converged = false;
                    for _ in 0..MAX_NEWTON_ITERS {
                        let next = 0.5 * (guess + x / guess);
                        if !next.is_finite() {
                            return Err(ExecFault::Trap);
                        }
                        if (next - guess).abs() <= 1e-12 * next.abs() {
                            converged = true;
                            guess = next;
                            break;
                        }
                        guess = next;
                    }
                    if !converged {
                        return Err(ExecFault::Hang);
                    }
                    regs[dst] = guess;
                }
                Instr::Gather { dst, table, idx } => {
                    let i = regs[idx];
                    if !i.is_finite() || i < 0.0 {
                        return Err(ExecFault::Trap);
                    }
                    let i = i.round() as usize;
                    let t = &program.tables[table];
                    if i >= t.len() {
                        return Err(ExecFault::Trap);
                    }
                    regs[dst] = t[i];
                }
            }
        }
        Ok(program.outputs.iter().map(|&r| regs[r]).collect())
    }

    /// Runs the kernel with one injected bit flip and classifies the
    /// outcome against the golden run.
    pub fn inject(&self, site: InjectionSite) -> ArchOutcome {
        match Self::execute(&self.program, Some(site)) {
            Err(ExecFault::Trap) => ArchOutcome::Crash,
            Err(ExecFault::Hang) => ArchOutcome::Hang,
            Ok(outputs) => {
                let mut worst = 0.0f64;
                for (o, g) in outputs.iter().zip(&self.golden) {
                    let denom = g.abs().max(1e-12);
                    worst = worst.max((o - g).abs() / denom);
                }
                if worst <= SDC_TOLERANCE {
                    ArchOutcome::Masked
                } else {
                    ArchOutcome::Sdc { relative_error: worst }
                }
            }
        }
    }

    /// Runs a campaign of `n` uniformly random injections and returns
    /// `(masked, sdc, crash, hang)` counts plus the SDC outcomes with
    /// their corrupted outputs (for feeding into the closed loop).
    pub fn campaign<R: Rng + ?Sized>(
        &self,
        n: usize,
        rng: &mut R,
    ) -> (usize, usize, usize, usize, Vec<(InjectionSite, f64)>) {
        let (mut masked, mut sdc, mut crash, mut hang) = (0, 0, 0, 0);
        let mut sdc_sites = Vec::new();
        for _ in 0..n {
            let site = self.random_site(rng);
            match self.inject(site) {
                ArchOutcome::Masked => masked += 1,
                ArchOutcome::Sdc { relative_error } => {
                    sdc += 1;
                    sdc_sites.push((site, relative_error));
                }
                ArchOutcome::Crash => crash += 1,
                ArchOutcome::Hang => hang += 1,
            }
        }
        (masked, sdc, crash, hang, sdc_sites)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn kernel() -> ArchSimulator {
        ArchSimulator::new(ArchProgram::ads_control_kernel(50.0, 30.0, 25.0, 0.2, 0.01, 31.0))
    }

    #[test]
    fn golden_outputs_are_sensible() {
        let sim = kernel();
        let out = sim.golden_outputs();
        assert_eq!(out.len(), 2);
        // Closing on a slower lead 50 m ahead at 30 m/s → decelerate.
        assert!(out[0] < 0.0, "accel = {}", out[0]);
        assert!((-8.0..=3.5).contains(&out[0]));
        assert!(out[1].abs() <= 0.55);
    }

    #[test]
    fn golden_matches_direct_computation() {
        let sim =
            ArchSimulator::new(ArchProgram::ads_control_kernel(60.0, 28.0, 28.0, 0.0, 0.0, 28.0));
        let out = sim.golden_outputs();
        // v == v0 and no approach: free term 0, interaction =
        // ((4 + 28·1.6)/60)² ≈ 0.658; accel ≈ 2·(−0.658)·gain(0.9 @ 2.8
        // bucket → round(2.8)=3 → 0.9).
        let s_star = 4.0 + 28.0 * 1.6;
        let expected = (0.0 - (s_star / 60.0f64).powi(2)) * 2.0 * 0.9;
        assert!((out[0] - expected).abs() < 1e-9, "{} vs {expected}", out[0]);
        assert_eq!(out[1], 0.0);
    }

    #[test]
    fn dead_register_flip_is_masked() {
        let sim = kernel();
        let out = sim.inject(InjectionSite { dyn_instr: 5, reg: 200, bit: 62 });
        assert_eq!(out, ArchOutcome::Masked);
    }

    #[test]
    fn overwritten_register_flip_is_masked() {
        let sim = kernel();
        // Register 14 is written by instruction 14 (v·T); flipping it
        // before that write is architecturally masked.
        let out = sim.inject(InjectionSite { dyn_instr: 2, reg: 14, bit: 62 });
        assert_eq!(out, ArchOutcome::Masked);
    }

    #[test]
    fn sign_flip_of_live_value_is_sdc() {
        let sim = kernel();
        // Flip the sign of the gap register right after it is loaded and
        // before it is consumed by the interaction term.
        let out = sim.inject(InjectionSite { dyn_instr: 20, reg: 1, bit: 52 });
        assert!(
            matches!(out, ArchOutcome::Sdc { .. } | ArchOutcome::Crash),
            "live corruption leaked nothing: {out:?}"
        );
    }

    #[test]
    fn index_register_corruption_can_crash() {
        let sim = kernel();
        // Flip exponent bit 61 of the gather index (3.0 → ~4.5e154)
        // right before the gather executes: out-of-bounds access.
        let gather_pc = 35; // position of the Gather instruction
        let out = sim.inject(InjectionSite { dyn_instr: gather_pc, reg: 27, bit: 61 });
        assert_eq!(out, ArchOutcome::Crash);
    }

    #[test]
    fn pointer_bit_flip_segfaults_low_bits_masked() {
        let sim = kernel();
        let out = sim.inject(InjectionSite { dyn_instr: 10, reg: POINTER_REGS.start, bit: 40 });
        assert_eq!(out, ArchOutcome::Crash);
        let out = sim.inject(InjectionSite { dyn_instr: 10, reg: POINTER_REGS.start, bit: 3 });
        assert_eq!(out, ArchOutcome::Masked);
    }

    #[test]
    fn counter_bit_flip_hangs_in_watchdog_band() {
        let sim = kernel();
        let out = sim.inject(InjectionSite { dyn_instr: 10, reg: COUNTER_REGS.start, bit: 20 });
        assert_eq!(out, ArchOutcome::Hang);
        let out = sim.inject(InjectionSite { dyn_instr: 10, reg: COUNTER_REGS.start, bit: 2 });
        assert_eq!(out, ArchOutcome::Masked);
        let out = sim.inject(InjectionSite { dyn_instr: 10, reg: COUNTER_REGS.start, bit: 50 });
        assert_eq!(out, ArchOutcome::Masked);
    }

    #[test]
    fn sqrt_input_sign_flip_traps() {
        let sim = kernel();
        // r8 = 7.0 feeds NewtonSqrt at pc 17; flip its sign bit at pc 17.
        let out = sim.inject(InjectionSite { dyn_instr: 17, reg: 8, bit: 63 });
        assert_eq!(out, ArchOutcome::Crash);
    }

    #[test]
    fn campaign_distribution_shape() {
        // The paper's random campaign: overwhelmingly masked, a small
        // SDC tail, single-digit-percent crash+hang.
        let sim = kernel();
        let mut rng = StdRng::seed_from_u64(42);
        let n = 5000;
        let (masked, sdc, crash, hang, _) = sim.campaign(n, &mut rng);
        assert_eq!(masked + sdc + crash + hang, n);
        let frac = |x: usize| x as f64 / n as f64;
        assert!(frac(masked) > 0.80, "masked = {}", frac(masked));
        assert!(frac(sdc) > 0.005 && frac(sdc) < 0.06, "sdc = {}", frac(sdc));
        assert!(
            frac(crash + hang) > 0.02 && frac(crash + hang) < 0.15,
            "crash+hang = {}",
            frac(crash + hang)
        );
        assert!(hang > 0, "expected some watchdog timeouts");
    }

    #[test]
    fn campaign_is_deterministic_per_seed() {
        let sim = kernel();
        let a = sim.campaign(500, &mut StdRng::seed_from_u64(7));
        let b = sim.campaign(500, &mut StdRng::seed_from_u64(7));
        assert_eq!(a.0, b.0);
        assert_eq!(a.1, b.1);
        assert_eq!(a.2, b.2);
        assert_eq!(a.3, b.3);
    }
}
