//! SECDED error-correcting codes for memory words.
//!
//! The paper's fault model assumes "memory and caches (of both the CPUs
//! and GPUs) are protected with SECDED codes" (§II-C) — which is *why*
//! DriveFI only injects into unprotected architectural state (register
//! files, flip-flops). This module makes that assumption executable: a
//! Hamming (72,64) single-error-correct / double-error-detect code over
//! 64-bit words, so campaigns can demonstrate that memory strikes are
//! absorbed (single flips corrected, double flips detected and turned
//! into a detected-unrecoverable error) while register strikes propagate.
//!
//! # Construction
//!
//! The 64 data bits are spread over a 72-bit codeword whose positions
//! `1..=71` are numbered in the classic Hamming fashion: power-of-two
//! positions hold the 7 Hamming parity bits; position 0 holds the
//! overall-parity bit that upgrades SEC to SECDED. Syndrome decoding:
//!
//! | syndrome | overall parity | meaning                       |
//! |----------|----------------|-------------------------------|
//! | 0        | even           | no error                      |
//! | ≠0       | odd            | single error → corrected      |
//! | 0        | odd            | error in the parity bit itself|
//! | ≠0       | even           | double error → detected (DUE) |
//!
//! # Example
//!
//! ```
//! use drivefi_fault::ecc::{Codeword, DecodeResult};
//!
//! let word = 0xDEAD_BEEF_0BAD_F00Du64;
//! let mut cw = Codeword::encode(word);
//! cw.flip(37); // a cosmic-ray strike in DRAM
//! assert_eq!(cw.decode(), DecodeResult::Corrected(word));
//! ```

/// Number of bits in a (72,64) codeword.
pub const CODEWORD_BITS: u32 = 72;
/// Number of protected data bits.
pub const DATA_BITS: u32 = 64;
/// Number of Hamming parity bits (positions 1, 2, 4, …, 64).
pub const HAMMING_PARITY_BITS: u32 = 7;

/// Outcome of decoding a possibly corrupted codeword.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DecodeResult {
    /// No error detected; the stored word.
    Clean(u64),
    /// A single-bit error was corrected; the recovered word.
    Corrected(u64),
    /// A double-bit error was detected but cannot be corrected — a
    /// detected unrecoverable error (DUE). Production systems raise a
    /// machine-check exception here; the ADS counts it as a crash.
    DoubleError,
}

impl DecodeResult {
    /// The recovered data word, when one exists.
    pub fn word(self) -> Option<u64> {
        match self {
            DecodeResult::Clean(w) | DecodeResult::Corrected(w) => Some(w),
            DecodeResult::DoubleError => None,
        }
    }
}

/// A 72-bit SECDED codeword protecting one 64-bit data word.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Codeword {
    /// Raw codeword bits (bit *i* of the u128 = position *i*); only the
    /// low [`CODEWORD_BITS`] bits are used.
    bits: u128,
}

/// Positions `1..=71` that are not powers of two, in ascending order:
/// these hold the data bits.
fn data_positions() -> impl Iterator<Item = u32> {
    (1u32..CODEWORD_BITS).filter(|p| !p.is_power_of_two())
}

impl Codeword {
    /// Encodes a data word into a codeword.
    pub fn encode(word: u64) -> Self {
        let mut bits: u128 = 0;
        // Scatter data bits over the non-parity positions.
        for (i, pos) in data_positions().enumerate() {
            if word >> i & 1 == 1 {
                bits |= 1u128 << pos;
            }
        }
        // Hamming parity bits: parity bit at position 2^k covers every
        // position whose bit k is set.
        for k in 0..HAMMING_PARITY_BITS {
            let p = 1u32 << k;
            let mut parity = 0u32;
            for pos in 1..CODEWORD_BITS {
                if pos & p != 0 && bits >> pos & 1 == 1 {
                    parity ^= 1;
                }
            }
            if parity == 1 {
                bits |= 1u128 << p;
            }
        }
        // Overall parity over positions 1..72 stored at position 0,
        // making total parity even.
        if (bits.count_ones() & 1) == 1 {
            bits |= 1;
        }
        Codeword { bits }
    }

    /// The raw codeword bits (low 72 bits meaningful).
    pub fn bits(&self) -> u128 {
        self.bits
    }

    /// Flips one bit of the codeword (a particle strike).
    ///
    /// # Panics
    ///
    /// Panics if `position >= 72`.
    pub fn flip(&mut self, position: u32) {
        assert!(position < CODEWORD_BITS, "position {position} out of range");
        self.bits ^= 1u128 << position;
    }

    /// Syndrome of the stored bits: XOR of the positions of set bits.
    fn syndrome(&self) -> u32 {
        let mut syn = 0u32;
        for pos in 1..CODEWORD_BITS {
            if self.bits >> pos & 1 == 1 {
                syn ^= pos;
            }
        }
        syn
    }

    /// Extracts the data word from the (already corrected) bits.
    fn extract(bits: u128) -> u64 {
        let mut word = 0u64;
        for (i, pos) in data_positions().enumerate() {
            if bits >> pos & 1 == 1 {
                word |= 1u64 << i;
            }
        }
        word
    }

    /// Decodes, correcting a single-bit error and detecting double-bit
    /// errors.
    pub fn decode(&self) -> DecodeResult {
        let syn = self.syndrome();
        let overall_odd = (self.bits.count_ones() & 1) == 1;
        match (syn, overall_odd) {
            (0, false) => DecodeResult::Clean(Self::extract(self.bits)),
            (0, true) => {
                // The overall-parity bit itself flipped; data intact.
                DecodeResult::Corrected(Self::extract(self.bits))
            }
            (s, true) => {
                if s >= CODEWORD_BITS {
                    // Syndrome points outside the word: ≥2 flips whose
                    // XOR is not a valid position.
                    return DecodeResult::DoubleError;
                }
                let corrected = self.bits ^ (1u128 << s);
                DecodeResult::Corrected(Self::extract(corrected))
            }
            (_, false) => DecodeResult::DoubleError,
        }
    }
}

/// A SECDED-protected memory holding `u64` words — the "memory and
/// caches" of the paper's fault model, on which injections are absorbed.
///
/// Reads decode through the code: single flips are silently corrected
/// (and counted), double flips surface as [`DecodeResult::DoubleError`].
#[derive(Debug, Clone, Default)]
pub struct EccMemory {
    words: Vec<Codeword>,
    corrected: u64,
    due: u64,
}

impl EccMemory {
    /// An empty memory.
    pub fn new() -> Self {
        EccMemory::default()
    }

    /// A memory initialized with `data`.
    pub fn from_words(data: &[u64]) -> Self {
        EccMemory {
            words: data.iter().map(|&w| Codeword::encode(w)).collect(),
            corrected: 0,
            due: 0,
        }
    }

    /// Number of words stored.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// True when the memory holds no words.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Appends a word, returning its address.
    pub fn push(&mut self, word: u64) -> usize {
        self.words.push(Codeword::encode(word));
        self.words.len() - 1
    }

    /// Overwrites the word at `addr` (re-encoding clears accumulated
    /// strikes, as a DRAM write does).
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of bounds.
    pub fn write(&mut self, addr: usize, word: u64) {
        self.words[addr] = Codeword::encode(word);
    }

    /// Reads the word at `addr` through the decoder. Single-bit errors
    /// are corrected in place (scrubbing); double-bit errors return
    /// `None` and count as a DUE.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of bounds.
    pub fn read(&mut self, addr: usize) -> Option<u64> {
        match self.words[addr].decode() {
            DecodeResult::Clean(w) => Some(w),
            DecodeResult::Corrected(w) => {
                self.corrected += 1;
                self.words[addr] = Codeword::encode(w); // scrub
                Some(w)
            }
            DecodeResult::DoubleError => {
                self.due += 1;
                None
            }
        }
    }

    /// Flips `bit` (0–71) of the codeword at `addr` — an injected strike.
    ///
    /// # Panics
    ///
    /// Panics if `addr` or `bit` is out of range.
    pub fn strike(&mut self, addr: usize, bit: u32) {
        self.words[addr].flip(bit);
    }

    /// Number of single-bit errors corrected so far.
    pub fn corrected_count(&self) -> u64 {
        self.corrected
    }

    /// Number of detected unrecoverable (double-bit) errors so far.
    pub fn due_count(&self) -> u64 {
        self.due
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const WORDS: [u64; 6] =
        [0, u64::MAX, 0xDEAD_BEEF_0BAD_F00D, 1, 0x8000_0000_0000_0000, 0x5555_5555_5555_5555];

    #[test]
    fn clean_roundtrip() {
        for &w in &WORDS {
            assert_eq!(Codeword::encode(w).decode(), DecodeResult::Clean(w));
        }
    }

    #[test]
    fn every_single_bit_error_is_corrected() {
        for &w in &WORDS {
            for bit in 0..CODEWORD_BITS {
                let mut cw = Codeword::encode(w);
                cw.flip(bit);
                match cw.decode() {
                    DecodeResult::Corrected(got) => assert_eq!(got, w, "bit {bit}"),
                    other => panic!("bit {bit} of {w:#x}: expected correction, got {other:?}"),
                }
            }
        }
    }

    #[test]
    fn every_double_bit_error_is_detected() {
        // Exhaustive over all 72·71/2 = 2556 pairs for two data words.
        for &w in &[0u64, 0xDEAD_BEEF_0BAD_F00D] {
            for a in 0..CODEWORD_BITS {
                for b in (a + 1)..CODEWORD_BITS {
                    let mut cw = Codeword::encode(w);
                    cw.flip(a);
                    cw.flip(b);
                    assert_eq!(
                        cw.decode(),
                        DecodeResult::DoubleError,
                        "flips at {a},{b} of {w:#x} escaped detection"
                    );
                }
            }
        }
    }

    #[test]
    fn code_geometry() {
        // 64 data positions + 7 Hamming + 1 overall = 72.
        assert_eq!(data_positions().count() as u32, DATA_BITS);
    }

    #[test]
    fn memory_scrubs_on_read() {
        let mut mem = EccMemory::from_words(&[42, 7]);
        mem.strike(0, 13);
        assert_eq!(mem.read(0), Some(42));
        assert_eq!(mem.corrected_count(), 1);
        // Scrubbed: a second strike on the same word is again a single.
        mem.strike(0, 55);
        assert_eq!(mem.read(0), Some(42));
        assert_eq!(mem.corrected_count(), 2);
    }

    #[test]
    fn memory_reports_due_on_double_strike() {
        let mut mem = EccMemory::from_words(&[99]);
        mem.strike(0, 3);
        mem.strike(0, 64);
        assert_eq!(mem.read(0), None);
        assert_eq!(mem.due_count(), 1);
        // A rewrite clears the damage.
        mem.write(0, 100);
        assert_eq!(mem.read(0), Some(100));
    }

    #[test]
    fn decode_result_word_accessor() {
        assert_eq!(DecodeResult::Clean(5).word(), Some(5));
        assert_eq!(DecodeResult::Corrected(5).word(), Some(5));
        assert_eq!(DecodeResult::DoubleError.word(), None);
    }

    #[test]
    fn push_and_len() {
        let mut mem = EccMemory::new();
        assert!(mem.is_empty());
        let a = mem.push(1);
        let b = mem.push(2);
        assert_eq!((a, b, mem.len()), (0, 1, 2));
    }
}
