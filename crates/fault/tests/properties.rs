//! Property-based tests for fault-model and ECC invariants.

use drivefi_ads::SignalRange;
use drivefi_fault::ecc::CODEWORD_BITS;
use drivefi_fault::{Codeword, DecodeResult, EccMemory, FaultWindow, ScalarFaultModel};
use proptest::prelude::*;

proptest! {
    /// SECDED corrects every single-bit strike on any data word.
    #[test]
    fn secded_corrects_any_single_flip(word in any::<u64>(), bit in 0u32..CODEWORD_BITS) {
        let mut cw = Codeword::encode(word);
        cw.flip(bit);
        prop_assert_eq!(cw.decode(), DecodeResult::Corrected(word));
    }

    /// SECDED detects (and never miscorrects) every double-bit strike.
    #[test]
    fn secded_detects_any_double_flip(word in any::<u64>(),
                                      a in 0u32..CODEWORD_BITS,
                                      b in 0u32..CODEWORD_BITS) {
        prop_assume!(a != b);
        let mut cw = Codeword::encode(word);
        cw.flip(a);
        cw.flip(b);
        prop_assert_eq!(cw.decode(), DecodeResult::DoubleError);
    }

    /// Encoding is injective on the data bits: distinct words yield
    /// distinct codewords, and clean decode round-trips.
    #[test]
    fn secded_roundtrip(word in any::<u64>()) {
        let cw = Codeword::encode(word);
        prop_assert_eq!(cw.decode(), DecodeResult::Clean(word));
    }

    /// Scrubbing on read restores a struck memory to clean state.
    #[test]
    fn ecc_memory_scrubs(words in prop::collection::vec(any::<u64>(), 1..8),
                         addr_seed in any::<usize>(), bit in 0u32..CODEWORD_BITS) {
        let mut mem = EccMemory::from_words(&words);
        let addr = addr_seed % words.len();
        mem.strike(addr, bit);
        prop_assert_eq!(mem.read(addr), Some(words[addr]));
        // Scrubbed: reading again reports clean (no new corrections).
        let corrected = mem.corrected_count();
        prop_assert_eq!(mem.read(addr), Some(words[addr]));
        prop_assert_eq!(mem.corrected_count(), corrected);
    }

    /// The IEEE-754 bit-flip model is an involution.
    #[test]
    fn bitflip_involutive(value in any::<f64>(), bit in 0u8..64) {
        prop_assume!(!value.is_nan());
        let m = ScalarFaultModel::BitFlip(bit);
        let range = SignalRange { min: 0.0, max: 1.0 };
        let twice = m.apply(m.apply(value, range), range);
        // NaN can appear after one flip; compare by bit pattern.
        prop_assert_eq!(twice.to_bits(), value.to_bits());
    }

    /// Stuck-at-min/max always land exactly on the range endpoints,
    /// regardless of the incoming value.
    #[test]
    fn stuck_models_land_on_range(value in -1e9..1e9f64, lo in -100.0..0.0f64, hi in 0.1..100.0f64) {
        let range = SignalRange { min: lo, max: hi };
        prop_assert_eq!(ScalarFaultModel::StuckMin.apply(value, range), lo);
        prop_assert_eq!(ScalarFaultModel::StuckMax.apply(value, range), hi);
    }

    /// A burst window is active exactly on `[start, start + frames)`.
    #[test]
    fn window_membership(start in 0u64..10_000, frames in 1u64..1_000, probe in 0u64..12_000) {
        let w = FaultWindow::burst(start, frames);
        let expect = probe >= start && probe < start + frames;
        prop_assert_eq!(w.active(probe), expect);
    }

    /// Offset and scale compose predictably.
    #[test]
    fn offset_scale_arithmetic(value in -1e6..1e6f64, d in -100.0..100.0f64, f in -10.0..10.0f64) {
        let range = SignalRange { min: 0.0, max: 1.0 };
        prop_assert_eq!(ScalarFaultModel::Offset(d).apply(value, range), value + d);
        prop_assert_eq!(ScalarFaultModel::Scale(f).apply(value, range), value * f);
    }
}
