//! The actuation smoother: `U_A,t → A_t`.

use drivefi_kinematics::Actuation;

/// Smooths raw actuation commands into final commands with per-channel
/// first-order tracking plus slew-rate limits — the "PID controller" box
/// of the paper's Fig. 1 ("ensures that the AV does not make any sudden
/// changes in `A_t`").
///
/// Each channel follows `out += α·(want − out)` with `α = dt/(τ + dt)`,
/// clamped to the channel's slew rate. This is the discrete low-pass
/// equivalent of a well-tuned PI tracker without its limit-cycle risk:
/// a one-tick corrupted command moves the output by at most
/// `min(α·Δ, slew·dt)` before healthy commands pull it back.
#[derive(Debug, Clone)]
pub struct ActuationSmoother {
    /// Tracking time constant for throttle/brake \[s\].
    pub pedal_tau: f64,
    /// Tracking time constant for steering \[s\].
    pub steer_tau: f64,
    /// Maximum change per second for throttle/brake \[1/s\].
    pub pedal_slew: f64,
    /// Maximum change per second for steering \[rad/s\].
    pub steer_slew: f64,
    last: Actuation,
}

impl Default for ActuationSmoother {
    fn default() -> Self {
        ActuationSmoother {
            pedal_tau: 0.15,
            steer_tau: 0.15,
            pedal_slew: 2.5,
            steer_slew: 1.5,
            last: Actuation::default(),
        }
    }
}

impl ActuationSmoother {
    /// The last emitted command `A_t` (fault-injection target).
    pub fn last_output(&self) -> Actuation {
        self.last
    }

    /// Overwrites the last emitted command. The injector uses this to
    /// corrupt `A_t` after smoothing (i.e. at the actuator boundary), and
    /// the corrupted value then persists as controller state.
    pub fn set_last_output(&mut self, a: Actuation) {
        self.last = a;
    }

    /// Resets controller memory.
    pub fn reset(&mut self) {
        self.last = Actuation::default();
    }

    fn track(last: f64, want: f64, tau: f64, slew: f64, dt: f64) -> f64 {
        let alpha = dt / (tau + dt);
        let step = alpha * (want - last);
        let max_step = slew * dt;
        last + step.clamp(-max_step, max_step)
    }

    /// Smooths one raw command into the final actuation.
    pub fn step(&mut self, raw: &Actuation, dt: f64) -> Actuation {
        // Non-finite raw commands (possible under fault) are treated as
        // zero demand; the controller state remains intact.
        let want_throttle =
            if raw.throttle.is_finite() { raw.throttle.clamp(0.0, 1.0) } else { 0.0 };
        let want_brake = if raw.brake.is_finite() { raw.brake.clamp(0.0, 1.0) } else { 0.0 };
        let want_steer =
            if raw.steering.is_finite() { raw.steering.clamp(-0.55, 0.55) } else { 0.0 };

        // A corrupted `last` (injected at the actuator boundary) may be
        // non-finite; re-anchor rather than propagate NaN.
        let safe_last = |v: f64| if v.is_finite() { v } else { 0.0 };
        let out = Actuation {
            throttle: Self::track(
                safe_last(self.last.throttle),
                want_throttle,
                self.pedal_tau,
                self.pedal_slew,
                dt,
            )
            .clamp(0.0, 1.0),
            brake: Self::track(
                safe_last(self.last.brake),
                want_brake,
                self.pedal_tau,
                self.pedal_slew,
                dt,
            )
            .clamp(0.0, 1.0),
            steering: Self::track(
                safe_last(self.last.steering),
                want_steer,
                self.steer_tau,
                self.steer_slew,
                dt,
            )
            .clamp(-0.55, 0.55),
        };
        self.last = out;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DT: f64 = 1.0 / 30.0;

    #[test]
    fn step_command_is_attenuated_first_tick() {
        let mut s = ActuationSmoother::default();
        let out = s.step(&Actuation::new(1.0, 0.0, 0.0), DT);
        assert!(out.throttle < 0.5, "throttle jumped to {}", out.throttle);
    }

    #[test]
    fn sustained_command_converges_monotonically() {
        let mut s = ActuationSmoother::default();
        let mut prev = 0.0;
        let mut out = Actuation::default();
        for _ in 0..120 {
            out = s.step(&Actuation::new(0.6, 0.0, 0.0), DT);
            assert!(out.throttle >= prev - 1e-12, "oscillation detected");
            prev = out.throttle;
        }
        assert!((out.throttle - 0.6).abs() < 0.01, "converged to {}", out.throttle);
    }

    #[test]
    fn steering_tracks_without_limit_cycle() {
        // Regression test for the period-2 oscillation that a unit-gain
        // PID on (want - last) produces.
        let mut s = ActuationSmoother::default();
        let mut outs = Vec::new();
        for _ in 0..60 {
            outs.push(s.step(&Actuation::new(0.0, 0.0, 0.014), DT).steering);
        }
        let tail = &outs[30..];
        for w in tail.windows(2) {
            assert!((w[1] - w[0]).abs() < 1e-4, "steering dithers: {} -> {}", w[0], w[1]);
        }
        assert!((tail[tail.len() - 1] - 0.014).abs() < 1e-3);
    }

    #[test]
    fn one_tick_spike_is_mostly_masked() {
        // The paper's masking mechanism: a transient corrupted U_A,t
        // barely moves A_t before the next healthy command arrives.
        let mut s = ActuationSmoother::default();
        for _ in 0..100 {
            s.step(&Actuation::new(0.2, 0.0, 0.0), DT);
        }
        let before = s.last_output().throttle;
        let spike = s.step(&Actuation::new(1.0, 0.0, 0.0), DT);
        assert!(spike.throttle - before < 0.1, "spike leaked {}", spike.throttle - before);
        let mut out = spike;
        for _ in 0..10 {
            out = s.step(&Actuation::new(0.2, 0.0, 0.0), DT);
        }
        assert!((out.throttle - before).abs() < 0.02);
    }

    #[test]
    fn steering_slew_limited() {
        let mut s = ActuationSmoother::default();
        let out = s.step(&Actuation::new(0.0, 0.0, 0.55), DT);
        assert!(out.steering <= s.steer_slew * DT + 1e-12);
    }

    #[test]
    fn non_finite_raw_treated_as_zero() {
        let mut s = ActuationSmoother::default();
        for _ in 0..50 {
            s.step(&Actuation::new(0.5, 0.0, 0.0), DT);
        }
        let out = s.step(&Actuation::new(f64::NAN, f64::INFINITY, f64::NAN), DT);
        assert!(out.throttle.is_finite() && out.brake.is_finite() && out.steering.is_finite());
    }

    #[test]
    fn corrupted_state_recovers() {
        // The injector can poison the controller state itself.
        let mut s = ActuationSmoother::default();
        s.set_last_output(Actuation::new(f64::NAN, 0.9, -0.4));
        let out = s.step(&Actuation::new(0.3, 0.0, 0.0), DT);
        assert!(out.throttle.is_finite());
        let mut out2 = out;
        for _ in 0..60 {
            out2 = s.step(&Actuation::new(0.3, 0.0, 0.0), DT);
        }
        assert!((out2.throttle - 0.3).abs() < 0.02);
        assert!(out2.brake < 0.05);
    }

    #[test]
    fn outputs_always_in_physical_range() {
        let mut s = ActuationSmoother::default();
        for i in 0..200 {
            let raw = Actuation::new((i as f64).sin() * 3.0, (i as f64).cos() * 3.0, 5.0);
            let out = s.step(&raw, DT);
            assert!((0.0..=1.0).contains(&out.throttle));
            assert!((0.0..=1.0).contains(&out.brake));
            assert!(out.steering.abs() <= 0.55 + 1e-12);
        }
    }
}
