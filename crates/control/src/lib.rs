//! Control: PID smoothing of raw actuation commands.
//!
//! The paper's ADS architecture (Fig. 1) interposes a PID controller
//! between the ML module's raw command `U_A,t` and the mechanical
//! actuation `A_t`: "The PID controller ensures that the AV does not make
//! any sudden changes in `A_t`." This low-pass behavior is one of the
//! three natural fault-masking mechanisms the paper identifies (§II-C) —
//! a one-tick spike in `U_A,t` is heavily attenuated before it reaches
//! the actuators, which is why *transient* random faults there rarely
//! cause hazards while well-timed Bayesian-selected faults do.
//!
//! # Example
//!
//! ```
//! use drivefi_control::ActuationSmoother;
//! use drivefi_kinematics::Actuation;
//!
//! let mut pid = ActuationSmoother::default();
//! let smoothed = pid.step(&Actuation::new(1.0, 0.0, 0.0), 1.0 / 30.0);
//! assert!(smoothed.throttle < 1.0); // spike attenuated
//! ```

pub mod pid;
pub mod smoother;

pub use pid::Pid;
pub use smoother::ActuationSmoother;
