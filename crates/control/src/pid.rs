//! A classic PID controller.

/// A proportional–integral–derivative controller with output clamping
/// and integral anti-windup.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pid {
    /// Proportional gain.
    pub kp: f64,
    /// Integral gain.
    pub ki: f64,
    /// Derivative gain.
    pub kd: f64,
    /// Output limits `(lo, hi)`.
    pub limits: (f64, f64),
    integral: f64,
    prev_error: Option<f64>,
}

impl Pid {
    /// Creates a controller with the given gains and output limits.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn new(kp: f64, ki: f64, kd: f64, limits: (f64, f64)) -> Self {
        assert!(limits.0 < limits.1, "lower limit must be below upper limit");
        Pid { kp, ki, kd, limits, integral: 0.0, prev_error: None }
    }

    /// Resets the internal state (integral and derivative memory).
    pub fn reset(&mut self) {
        self.integral = 0.0;
        self.prev_error = None;
    }

    /// Advances the controller by `dt` with the given setpoint error and
    /// returns the clamped output.
    pub fn step(&mut self, error: f64, dt: f64) -> f64 {
        let derivative = match self.prev_error {
            Some(prev) if dt > 0.0 => (error - prev) / dt,
            _ => 0.0,
        };
        self.prev_error = Some(error);

        self.integral += error * dt;
        let raw = self.kp * error + self.ki * self.integral + self.kd * derivative;
        let clamped = raw.clamp(self.limits.0, self.limits.1);
        // Anti-windup: stop integrating while saturated in the same
        // direction as the error.
        if (raw - clamped).abs() > f64::EPSILON && (raw - clamped).signum() == error.signum() {
            self.integral -= error * dt;
        }
        clamped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proportional_only_tracks_error() {
        let mut pid = Pid::new(2.0, 0.0, 0.0, (-10.0, 10.0));
        assert_eq!(pid.step(1.5, 0.1), 3.0);
        assert_eq!(pid.step(-1.0, 0.1), -2.0);
    }

    #[test]
    fn integral_accumulates() {
        let mut pid = Pid::new(0.0, 1.0, 0.0, (-10.0, 10.0));
        let mut out = 0.0;
        for _ in 0..10 {
            out = pid.step(1.0, 0.1);
        }
        assert!((out - 1.0).abs() < 1e-9);
    }

    #[test]
    fn derivative_damps_fast_changes() {
        let mut pid = Pid::new(0.0, 0.0, 1.0, (-100.0, 100.0));
        let _ = pid.step(0.0, 0.1);
        let out = pid.step(1.0, 0.1);
        assert!((out - 10.0).abs() < 1e-9);
    }

    #[test]
    fn output_is_clamped() {
        let mut pid = Pid::new(100.0, 0.0, 0.0, (-1.0, 1.0));
        assert_eq!(pid.step(5.0, 0.1), 1.0);
        assert_eq!(pid.step(-5.0, 0.1), -1.0);
    }

    #[test]
    fn anti_windup_prevents_integral_blowup() {
        let mut pid = Pid::new(0.0, 1.0, 0.0, (-1.0, 1.0));
        // Saturate for a long time...
        for _ in 0..1000 {
            pid.step(10.0, 0.1);
        }
        // ...then reverse; a wound-up integral would take ages to unwind.
        let mut steps = 0;
        loop {
            let out = pid.step(-10.0, 0.1);
            steps += 1;
            if out <= -0.99 {
                break;
            }
            assert!(steps < 50, "integral wind-up detected");
        }
    }

    #[test]
    fn reset_clears_memory() {
        let mut pid = Pid::new(0.0, 1.0, 1.0, (-10.0, 10.0));
        pid.step(1.0, 0.1);
        pid.step(1.0, 0.1);
        pid.reset();
        // After reset, derivative memory gone: first step has no D kick.
        let out = pid.step(1.0, 0.1);
        assert!((out - 0.1).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "lower limit")]
    fn inverted_limits_panic() {
        let _ = Pid::new(1.0, 0.0, 0.0, (1.0, -1.0));
    }
}
