//! Multi-process writers against one store: N *real* processes, each
//! holding a disjoint shard-range lease, must merge to exactly the
//! store a single writer produces — and interleaved scoped writers
//! with torn tails and stale leases must recover to the same
//! reference. The shard-lease protocol is pure filesystem (lock files,
//! atomic renames), so nothing here needs IPC beyond spawn + wait.

use drivefi_sim::Outcome;
use drivefi_store::{
    compact_store, open_store, open_store_opts, read_store, seal_store, CampaignRecord,
    StoreOptions,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Env var carrying a child writer's work order. The `writer_child`
/// test is inert unless re-executed with this set.
const CHILD_ENV: &str = "DRIVEFI_WRITER_CHILD_SPEC";

const FINGERPRINT: u64 = 0xFEED_FACE_CAFE_0001;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("drivefi-concurrent-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The deterministic record every writer produces for `job` — a pure
/// function of the job index, so the serial reference and any
/// partition of writers must persist identical bytes.
fn record(job: u64) -> CampaignRecord {
    CampaignRecord {
        job,
        scenario_id: (job % 7) as u32,
        scenario_seed: job.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        fault: None,
        outcome: match job % 3 {
            0 => Outcome::Safe,
            1 => Outcome::Hazard { scene: job % 50 + 1 },
            _ => Outcome::Collision { scene: job % 50 + 2, actor: 1 },
        },
        injections: job % 5,
        scenes: 100,
        min_delta_lon: job as f64 * 0.25,
        min_delta_lat: 1.0 / (job + 1) as f64,
    }
}

/// Serial single-writer reference store over `total` jobs.
fn write_reference(dir: &Path, total: u64, shards: u32) {
    let (mut writer, _) = open_store(dir, FINGERPRINT, total, shards, 8).unwrap();
    for job in 0..total {
        writer.append(&record(job)).unwrap();
    }
    let meta = writer.finish().unwrap();
    assert!(meta.complete);
}

/// Re-executed child: appends every job its shard range owns. Spec is
/// `dir;total;shards;start;end`.
#[test]
fn writer_child() {
    let Ok(spec) = std::env::var(CHILD_ENV) else { return };
    let parts: Vec<&str> = spec.split(';').collect();
    let (dir, rest) = (parts[0], &parts[1..]);
    let [total, shards, start, end]: [u64; 4] = std::array::from_fn(|i| rest[i].parse().unwrap());
    let opts = StoreOptions::new(FINGERPRINT, total, shards as u32, 8)
        .shard_range(start as u32..end as u32)
        .owner(format!("child-{start}-{end}"));
    let (mut writer, state) = open_store_opts(dir, &opts).unwrap();
    for job in 0..total {
        if state.owns(job) && !state.is_done(job) {
            writer.append(&record(job)).unwrap();
        }
    }
    writer.finish().unwrap();
}

/// Spawns one real child process per shard range and waits for all.
fn run_writer_processes(dir: &Path, total: u64, shards: u32, ranges: &[(u32, u32)]) {
    let exe = std::env::current_exe().unwrap();
    let children: Vec<std::process::Child> = ranges
        .iter()
        .map(|&(start, end)| {
            std::process::Command::new(&exe)
                .args(["writer_child", "--exact", "--nocapture"])
                .env(CHILD_ENV, format!("{};{total};{shards};{start};{end}", dir.display()))
                .stdout(std::process::Stdio::null())
                .spawn()
                .unwrap()
        })
        .collect();
    for mut child in children {
        assert!(child.wait().unwrap().success(), "a writer process failed");
    }
}

#[test]
fn parallel_writer_processes_merge_to_the_serial_reference() {
    let reference = temp_dir("serial-ref");
    let parallel = temp_dir("parallel");
    let (total, shards) = (123u64, 6u32);

    write_reference(&reference, total, shards);
    // Three processes over disjoint ranges, racing store creation too.
    run_writer_processes(&parallel, total, shards, &[(0, 2), (2, 3), (3, 6)]);

    // No writer saw the whole range, so none may have sealed the store;
    // sealing is the coordinator's move and verifies every job arrived.
    let sealed = seal_store(&parallel).unwrap();
    assert!(sealed.complete);

    let (ref_meta, ref_records) = read_store(&reference).unwrap();
    let (par_meta, par_records) = read_store(&parallel).unwrap();
    assert_eq!(ref_records, par_records);
    assert_eq!(ref_records.len() as u64, total);
    assert_eq!((ref_meta.complete, ref_meta.shards), (par_meta.complete, par_meta.shards));

    // Stronger than record equality: after compaction both stores hold
    // byte-identical shard files.
    compact_store(&reference).unwrap();
    compact_store(&parallel).unwrap();
    for index in 0..shards {
        let name = format!("shard-{index:03}.log");
        let a = std::fs::read(reference.join(&name)).unwrap();
        let b = std::fs::read(parallel.join(&name)).unwrap();
        assert_eq!(a, b, "shard {index} bytes diverge after compaction");
    }

    std::fs::remove_dir_all(&reference).ok();
    std::fs::remove_dir_all(&parallel).ok();
}

/// Randomized (proptest-style) torn-tail recovery under interleaved
/// scoped writers: each round partitions the shards among writers,
/// lets every writer persist a random prefix of its jobs, tears random
/// shard tails the way a crash would, then lets a second generation of
/// writers recover their own ranges and finish the job set. The merged
/// read must equal the serial reference every time.
#[test]
fn interleaved_scoped_writers_recover_torn_tails_to_the_reference() {
    let mut rng = StdRng::seed_from_u64(0xD51F);
    for case in 0..12u32 {
        let dir = temp_dir(&format!("torn-{case}"));
        let shards = rng.random_range(2..=5u32);
        let total = rng.random_range(20..=90u64);

        // Random partition of 0..shards into contiguous writer ranges.
        let mut cuts: Vec<u32> = (1..shards).filter(|_| rng.random::<bool>()).collect();
        cuts.insert(0, 0);
        cuts.push(shards);
        let ranges: Vec<(u32, u32)> = cuts.windows(2).map(|w| (w[0], w[1])).collect();

        // Generation 1: each scoped writer persists a random prefix of
        // its jobs, interleaved with the others (all writers are open at
        // once — disjoint leases must coexist).
        let mut writers: Vec<_> = ranges
            .iter()
            .map(|&(start, end)| {
                let opts = StoreOptions::new(FINGERPRINT, total, shards, 4)
                    .shard_range(start..end)
                    .owner(format!("gen1-{start}"));
                open_store_opts(&dir, &opts).unwrap()
            })
            .collect();
        for job in 0..total {
            for (writer, state) in &mut writers {
                if state.owns(job) && rng.random::<bool>() {
                    writer.append(&record(job)).unwrap();
                }
            }
        }
        // Half the writers finish cleanly; the rest are dropped mid-air
        // (Drop releases the lease; buffered frames may tear).
        for (i, (writer, _)) in writers.into_iter().enumerate() {
            if i % 2 == 0 {
                writer.finish().unwrap();
            }
        }

        // Crash damage: garbage appended to random shard tails.
        for index in 0..shards {
            if rng.random::<bool>() {
                let path = dir.join(format!("shard-{index:03}.log"));
                if path.is_file() {
                    let mut bytes = std::fs::read(&path).unwrap();
                    let junk = rng.random_range(1..=11usize);
                    bytes.extend(std::iter::repeat_n(0xA5u8, junk));
                    std::fs::write(&path, bytes).unwrap();
                }
            }
        }

        // Generation 2: recover each range and complete the job set.
        for &(start, end) in &ranges {
            let opts = StoreOptions::new(FINGERPRINT, total, shards, 4)
                .shard_range(start..end)
                .owner(format!("gen2-{start}"));
            let (mut writer, state) = open_store_opts(&dir, &opts).unwrap();
            for job in 0..total {
                if state.owns(job) && !state.is_done(job) {
                    writer.append(&record(job)).unwrap();
                }
            }
            writer.finish().unwrap();
        }
        assert!(seal_store(&dir).unwrap().complete, "case {case}");

        let (_, records) = read_store(&dir).unwrap();
        let expected: Vec<CampaignRecord> = (0..total).map(record).collect();
        assert_eq!(records, expected, "case {case} diverged from the serial reference");
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Randomized lease takeover: stale locks (dead pid, or an expired
/// heartbeat) never block a new writer generation, while a live lease
/// always refuses an overlapping open.
#[test]
fn stale_leases_are_taken_over_and_live_ones_refuse() {
    let mut rng = StdRng::seed_from_u64(0x1EA5E);
    for case in 0..8u32 {
        let dir = temp_dir(&format!("lease-{case}"));
        let shards = rng.random_range(1..=4u32);
        let total = 10 * u64::from(shards);
        write_reference(&dir, total, shards);

        // Plant a stale lock on every shard: a dead-pid lock (pid
        // u32::MAX is unused on any real system) or an expired-heartbeat
        // lock from a fake live pid.
        for index in 0..shards {
            let path = dir.join(format!("lease-{index:03}.lock"));
            if rng.random::<bool>() {
                std::fs::write(&path, "owner = crashed\npid = 4294967295\n").unwrap();
            } else {
                std::fs::write(&path, format!("owner = wedged\npid = {}\n", std::process::id()))
                    .unwrap();
                let old = std::time::SystemTime::now() - Duration::from_secs(3600);
                let file = std::fs::File::options().write(true).open(&path).unwrap();
                file.set_times(std::fs::FileTimes::new().set_modified(old)).unwrap();
            }
        }

        // Takeover: a full-range writer opens despite every lock, with a
        // short timeout covering the expired-heartbeat locks.
        let opts = StoreOptions::new(FINGERPRINT, total, shards, 8)
            .owner("takeover")
            .lease_timeout(Duration::from_secs(60));
        let (writer, state) = open_store_opts(&dir, &opts).unwrap();
        assert_eq!(state.records(), total);

        // While that writer lives, any overlapping open is refused.
        let overlap = rng.random_range(0..shards);
        let contender = StoreOptions::new(FINGERPRINT, total, shards, 8)
            .shard_range(overlap..overlap + 1)
            .owner("contender");
        let err = open_store_opts(&dir, &contender).unwrap_err();
        assert!(err.to_string().contains("leased by `takeover`"), "case {case}: {err}");
        drop(writer);

        // Drop released the leases: the contender now succeeds.
        assert!(open_store_opts(&dir, &contender).is_ok(), "case {case}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
