//! Batched-vs-scalar equivalence at the persistence boundary: for every
//! builtin scenario family, faulted and golden jobs executed by the
//! batched campaign engine must produce **byte-identical**
//! [`CampaignRecord`] payloads and identical per-scene trace frames to a
//! scalar [`Simulation::run_with`] of the same job — at every batch
//! width. The batch knob is scheduling only; the record a campaign
//! persists cannot depend on it.

use drivefi_ads::Signal;
use drivefi_fault::{Fault, FaultKind, FaultWindow, Injector, ScalarFaultModel};
use drivefi_sim::{CampaignEngine, CampaignJob, SimConfig, Simulation};
use drivefi_store::{CampaignRecord, RecordMeta};
use drivefi_world::{FamilyRegistry, ScenarioConfig};
use proptest::prelude::*;
use std::sync::Arc;

/// Batch widths under test: degenerate (scalar-shaped), ragged (jobs do
/// not fill a chunk), and the default-sized lane count.
const WIDTHS: [usize; 3] = [1, 7, 32];

/// A short scenario from a builtin family (6 s = 45 scenes keeps the
/// full cross product fast without losing the families' dynamics).
fn short_scenario(family: &str, seed: u64) -> Arc<ScenarioConfig> {
    let mut scenario = FamilyRegistry::builtin().sample(family, seed as u32, seed);
    scenario.duration = 6.0;
    Arc::new(scenario)
}

/// A small fault palette covering throttle/brake/steering corruptions
/// and a module hang (the Freeze/Hang capture-lookahead path).
fn fault(palette: usize, window: FaultWindow) -> Fault {
    let kind = match palette % 5 {
        0 => FaultKind::Scalar { signal: Signal::RawThrottle, model: ScalarFaultModel::StuckMax },
        1 => FaultKind::Scalar { signal: Signal::FinalBrake, model: ScalarFaultModel::StuckMin },
        2 => FaultKind::Scalar { signal: Signal::FinalThrottle, model: ScalarFaultModel::StuckMax },
        3 => FaultKind::Scalar { signal: Signal::FinalSteering, model: ScalarFaultModel::StuckMax },
        _ => FaultKind::ModuleHang { stage: drivefi_ads::Stage::Planning },
    };
    Fault { kind, window }
}

fn meta(scenario: &ScenarioConfig) -> RecordMeta {
    RecordMeta { scenario_id: scenario.id, scenario_seed: scenario.seed, fault: None }
}

/// The scalar reference: `Simulation::run_with`, encoded exactly as a
/// store sink would persist it, plus the recorded trace.
fn scalar_record(config: SimConfig, job: &CampaignJob) -> (Vec<u8>, Option<drivefi_sim::Trace>) {
    let mut sim = Simulation::new(config, &job.scenario);
    let mut injector = Injector::new(job.faults.clone());
    let mut report = sim.run_with(&mut injector);
    report.injections = injector.injection_count();
    let mut bytes = Vec::new();
    CampaignRecord::from_report(job.id, &meta(&job.scenario), &report).encode(&mut bytes);
    (bytes, report.trace)
}

/// Runs `jobs` through the batched engine at every width and asserts
/// byte-identical records and identical traces against the scalar path.
fn assert_equivalent(config: SimConfig, jobs: &[CampaignJob]) -> Result<(), TestCaseError> {
    let reference: Vec<_> = jobs.iter().map(|job| scalar_record(config, job)).collect();
    for width in WIDTHS {
        let engine = CampaignEngine::new(config).with_workers(2).with_batch(width);
        let results = engine.collect(jobs.to_vec());
        prop_assert_eq!(results.len(), jobs.len());
        for ((job, (ref_bytes, ref_trace)), result) in jobs.iter().zip(&reference).zip(results) {
            prop_assert_eq!(result.id, job.id);
            let mut bytes = Vec::new();
            CampaignRecord::from_report(result.id, &meta(&job.scenario), &result.report)
                .encode(&mut bytes);
            prop_assert_eq!(
                &bytes,
                ref_bytes,
                "record bytes diverged: family {} job {} width {}",
                job.scenario.name,
                job.id,
                width
            );
            prop_assert_eq!(
                &result.report.trace,
                ref_trace,
                "trace diverged: family {} job {} width {}",
                job.scenario.name,
                job.id,
                width
            );
        }
    }
    Ok(())
}

/// Golden + transient + permanent jobs over one scenario (all sharing
/// its allocation, so the engine's prefix sharing engages).
fn jobs_for(scenario: &Arc<ScenarioConfig>, palette: u64, first_id: u64) -> Vec<CampaignJob> {
    let scenes = scenario.scene_count() as u64;
    vec![
        CampaignJob { id: first_id, scenario: Arc::clone(scenario), faults: vec![] },
        CampaignJob {
            id: first_id + 1,
            scenario: Arc::clone(scenario),
            faults: vec![fault(palette as usize, FaultWindow::scene(1 + palette % (scenes - 1)))],
        },
        CampaignJob {
            id: first_id + 2,
            scenario: Arc::clone(scenario),
            faults: vec![fault(palette as usize + 1, FaultWindow::permanent(2 * palette + 4))],
        },
        CampaignJob {
            id: first_id + 3,
            scenario: Arc::clone(scenario),
            faults: vec![
                fault(palette as usize + 2, FaultWindow::burst(4 * (palette % 20), 12)),
                fault(palette as usize + 4, FaultWindow::permanent(100)),
            ],
        },
    ]
}

/// Every builtin family, deterministically: golden + faulted jobs at
/// widths 1/7/32 match the scalar path byte for byte, with traces on.
#[test]
fn all_families_match_scalar_records_and_traces() {
    let config = SimConfig { record_trace: true, ..SimConfig::default() };
    let registry = FamilyRegistry::builtin();
    let families: Vec<_> = registry.names().collect();
    assert_eq!(families.len(), 14, "builtin registry grew: update this test's coverage note");
    for (f, family) in families.into_iter().enumerate() {
        let scenario = short_scenario(family, 11 + f as u64);
        let jobs = jobs_for(&scenario, f as u64, 10 * f as u64);
        assert_equivalent(config, &jobs).unwrap();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Randomized depth over the same property: random family, seed, and
    /// fault palette; jobs over two scenarios interleaved in one stream
    /// (mixed-scenario chunks exercise per-chunk grouping and the
    /// cross-chunk pilot cache).
    #[test]
    fn random_campaigns_match_scalar(
        family_a in 0usize..14,
        family_b in 0usize..14,
        seed in 0u64..10_000,
        palette in 0u64..40,
        trace in 0usize..2,
    ) {
        let config = SimConfig { record_trace: trace == 1, ..SimConfig::default() };
        let registry = FamilyRegistry::builtin();
        let names: Vec<_> = registry.names().collect();
        let a = short_scenario(names[family_a], seed);
        let b = short_scenario(names[family_b], seed ^ 0x9E37);
        let mut jobs = jobs_for(&a, palette, 0);
        // Interleave so chunks mix scenario groups.
        for (i, job) in jobs_for(&b, palette + 7, 100).into_iter().enumerate() {
            jobs.insert(2 * i + 1, job);
        }
        assert_equivalent(config, &jobs)?;
    }
}
