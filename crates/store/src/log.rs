//! The append-only record log: CRC-framed records in self-describing
//! shard files.
//!
//! A shard file is a 16-byte header (magic + format version + shard
//! index) followed by frames of `[len: u32][crc32: u32][payload]`. The
//! only write operation is appending a frame, so the only corruption an
//! interrupted writer can leave behind is a *torn tail*: a partial
//! frame, or a frame whose CRC does not match. [`scan_shard`] reads a
//! shard up to the last valid frame and reports where the valid prefix
//! ends, so recovery can truncate the tear and append from there.
//!
//! Two record kinds share this framing, distinguished by the header
//! magic: the fixed-layout [`CampaignRecord`] (outcome logs,
//! [`SHARD_MAGIC`]) and the variable-length
//! [`TraceRecord`](crate::TraceRecord) (golden-trace logs,
//! [`TRACE_MAGIC`]).

use crate::record::CampaignRecord;
use crate::StoreError;
use std::io::Write;
use std::path::Path;

/// Outcome-shard-file magic.
pub const SHARD_MAGIC: [u8; 8] = *b"DFISHARD";
/// Trace-shard-file magic.
pub const TRACE_MAGIC: [u8; 8] = *b"DFITRACE";
/// Record-layout version the magic is followed by.
pub const FORMAT_VERSION: u32 = 1;
/// Header bytes before the first frame.
pub const HEADER_LEN: u64 = 16;
/// Upper bound on a frame payload (sanity check while scanning; real
/// payloads are [`crate::PAYLOAD_LEN`] bytes).
const MAX_FRAME: u32 = 1 << 20;

/// CRC-32 (IEEE 802.3, reflected), the checksum framing every record.
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut crc = i as u32;
            let mut bit = 0;
            while bit < 8 {
                crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
                bit += 1;
            }
            table[i] = crc;
            i += 1;
        }
        table
    };
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

/// Writes a shard header carrying `magic` for `shard_index`.
///
/// # Errors
///
/// Returns a [`StoreError`] on I/O failure.
pub fn write_header_with(
    w: &mut impl Write,
    magic: &[u8; 8],
    shard_index: u32,
) -> Result<(), StoreError> {
    let mut header = [0u8; HEADER_LEN as usize];
    header[..8].copy_from_slice(magic);
    header[8..12].copy_from_slice(&FORMAT_VERSION.to_le_bytes());
    header[12..16].copy_from_slice(&shard_index.to_le_bytes());
    w.write_all(&header).map_err(|e| StoreError::new(format!("writing shard header: {e}")))
}

/// Writes the outcome-shard header for `shard_index`.
///
/// # Errors
///
/// Returns a [`StoreError`] on I/O failure.
pub fn write_header(w: &mut impl Write, shard_index: u32) -> Result<(), StoreError> {
    write_header_with(w, &SHARD_MAGIC, shard_index)
}

/// Appends one CRC-framed payload.
///
/// # Errors
///
/// Returns a [`StoreError`] on I/O failure.
pub fn append_payload(w: &mut impl Write, payload: &[u8]) -> Result<(), StoreError> {
    let mut frame = Vec::with_capacity(payload.len() + 8);
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc32(payload).to_le_bytes());
    frame.extend_from_slice(payload);
    w.write_all(&frame).map_err(|e| StoreError::new(format!("appending record: {e}")))
}

/// Appends one CRC-framed campaign record.
///
/// # Errors
///
/// Returns a [`StoreError`] on I/O failure.
pub fn append_frame(w: &mut impl Write, record: &CampaignRecord) -> Result<(), StoreError> {
    let mut payload = Vec::with_capacity(crate::PAYLOAD_LEN);
    record.encode(&mut payload);
    append_payload(w, &payload)
}

/// What [`scan_shard`] found in one shard file.
#[derive(Debug, Clone)]
pub struct ShardScan {
    /// The records of the valid prefix, in append order.
    pub records: Vec<CampaignRecord>,
    /// Byte offset where the valid prefix ends (`HEADER_LEN` for an
    /// intact empty shard, `0` when even the header is torn). Recovery
    /// truncates the file to this offset.
    pub valid_len: u64,
    /// True when bytes past `valid_len` had to be discarded (a torn
    /// trailing record or partial header).
    pub torn: bool,
}

/// The generic shard scan underneath [`scan_shard`] and
/// [`scan_trace_shard`](crate::scan_trace_shard): reads a shard file
/// whose header carries `magic`, decoding each CRC-valid payload with
/// `decode` and tolerating a torn tail.
///
/// # Errors
///
/// Returns a [`StoreError`] when the file cannot be read, is not a
/// `magic`-kind shard file for `shard_index` (wrong magic, version, or
/// index), or contains a CRC-valid frame that no longer decodes (format
/// drift, not crash damage — truncating would destroy good data).
pub fn scan_shard_with<T>(
    path: &Path,
    magic: &[u8; 8],
    shard_index: u32,
    mut decode: impl FnMut(&[u8]) -> Result<T, StoreError>,
) -> Result<(Vec<T>, u64, bool), StoreError> {
    let bytes = match std::fs::read(path) {
        Ok(bytes) => bytes,
        // A shard file that was never created: a store written by
        // scoped writers whose ranges didn't cover this shard (yet), or
        // a crash between manifest and shard creation. Same contract as
        // whole-shard loss — those jobs just aren't persisted.
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Ok((Vec::new(), 0, false));
        }
        Err(e) => return Err(StoreError::new(format!("reading {}: {e}", path.display()))),
    };
    if bytes.len() < HEADER_LEN as usize {
        // A crash while creating the shard: nothing usable, rewrite from
        // scratch.
        return Ok((Vec::new(), 0, !bytes.is_empty()));
    }
    if &bytes[..8] != magic {
        return Err(StoreError::new(format!(
            "{} is not a drivefi {} shard file",
            path.display(),
            String::from_utf8_lossy(magic)
        )));
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("header length checked"));
    if version != FORMAT_VERSION {
        return Err(StoreError::new(format!(
            "{}: unsupported shard format version {version} (expected {FORMAT_VERSION})",
            path.display()
        )));
    }
    let index = u32::from_le_bytes(bytes[12..16].try_into().expect("header length checked"));
    if index != shard_index {
        return Err(StoreError::new(format!(
            "{}: shard header claims index {index}, expected {shard_index}",
            path.display()
        )));
    }

    let mut records = Vec::new();
    let mut at = HEADER_LEN as usize;
    loop {
        let Some(head) = bytes.get(at..at + 8) else {
            // Partial frame head (or exactly the end of the file).
            return Ok((records, at as u64, at != bytes.len()));
        };
        let len = u32::from_le_bytes(head[..4].try_into().expect("head length checked"));
        let crc = u32::from_le_bytes(head[4..].try_into().expect("head length checked"));
        if len > MAX_FRAME {
            // Garbage length: treat as a torn tail.
            return Ok((records, at as u64, true));
        }
        let Some(payload) = bytes.get(at + 8..at + 8 + len as usize) else {
            return Ok((records, at as u64, true));
        };
        if crc32(payload) != crc {
            return Ok((records, at as u64, true));
        }
        // A CRC-valid frame that fails to decode is a format problem and
        // must not be silently truncated away.
        records.push(
            decode(payload)
                .map_err(|e| StoreError::new(format!("{} at offset {at}: {e}", path.display())))?,
        );
        at += 8 + len as usize;
    }
}

/// Reads an outcome shard file, tolerating a torn tail: the scan stops
/// at the first incomplete or CRC-mismatched frame and reports
/// everything before it.
///
/// # Errors
///
/// See [`scan_shard_with`].
pub fn scan_shard(path: &Path, shard_index: u32) -> Result<ShardScan, StoreError> {
    let (records, valid_len, torn) =
        scan_shard_with(path, &SHARD_MAGIC, shard_index, CampaignRecord::decode)?;
    Ok(ShardScan { records, valid_len, torn })
}

#[cfg(test)]
mod tests {
    use super::*;
    use drivefi_sim::Outcome;

    fn record(job: u64) -> CampaignRecord {
        CampaignRecord {
            job,
            scenario_id: 1,
            scenario_seed: 2,
            fault: None,
            outcome: Outcome::Safe,
            injections: 0,
            scenes: 100,
            min_delta_lon: 3.5,
            min_delta_lat: 1.0,
        }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // The canonical IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn scan_tolerates_every_truncation_point() {
        let dir = std::env::temp_dir().join(format!("drivefi-log-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("shard-000.log");

        let mut full = Vec::new();
        write_header(&mut full, 0).unwrap();
        for job in 0..4 {
            append_frame(&mut full, &record(job)).unwrap();
        }
        let frame = (full.len() - HEADER_LEN as usize) / 4;

        for cut in 0..full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            let scan = scan_shard(&path, 0).unwrap();
            let whole_frames = cut.saturating_sub(HEADER_LEN as usize) / frame;
            assert_eq!(scan.records.len(), whole_frames, "cut at {cut}");
            let expected_valid = if cut < HEADER_LEN as usize {
                0
            } else {
                HEADER_LEN + (whole_frames * frame) as u64
            };
            assert_eq!(scan.valid_len, expected_valid, "cut at {cut}");
            assert_eq!(scan.torn, scan.valid_len != cut as u64, "cut at {cut}");
        }

        // Untruncated: clean scan.
        std::fs::write(&path, &full).unwrap();
        let scan = scan_shard(&path, 0).unwrap();
        assert!(!scan.torn);
        assert_eq!(scan.records.len(), 4);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_tail_crc_is_torn_not_fatal() {
        let mut buf = Vec::new();
        write_header(&mut buf, 3).unwrap();
        append_frame(&mut buf, &record(0)).unwrap();
        append_frame(&mut buf, &record(1)).unwrap();
        let last = buf.len() - 1;
        buf[last] ^= 0xFF;

        let dir = std::env::temp_dir().join(format!("drivefi-log-crc-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("shard-003.log");
        std::fs::write(&path, &buf).unwrap();
        let scan = scan_shard(&path, 3).unwrap();
        assert!(scan.torn);
        assert_eq!(scan.records, vec![record(0)]);

        // Wrong shard index in the header is a hard error.
        assert!(scan_shard(&path, 1).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
