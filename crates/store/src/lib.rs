//! Persistent campaign store: every injection outcome survives the
//! process that produced it.
//!
//! DriveFI-style campaigns only pay off at scale — millions of
//! (scenario × fault) jobs — and at that scale the run *will* be
//! interrupted: preemption, crashes, budget caps. The paper's Bayesian
//! miner and AVFI both learn from persisted per-injection outcomes, so
//! the store is the layer everything above the engine writes into:
//!
//! * [`CampaignRecord`] — one fixed-layout binary record per campaign
//!   job: job index, scenario identity, the armed
//!   [`FaultSpec`](drivefi_fault::FaultSpec), the
//!   [`Outcome`](drivefi_sim::Outcome), injection count, and the hazard
//!   metrics (min ground-truth δ).
//! * [`log`] — the append-only record log: CRC-framed records in
//!   self-describing shard files. A torn trailing record (the classic
//!   crash artifact) is tolerated on read and truncated away on
//!   recovery; everything before it survives.
//! * [`StoreWriter`] / [`open_store`] — the sharded store directory:
//!   records fan out over `shards` files by `job % shards` (a pure
//!   function of the job index, so layout never depends on worker
//!   scheduling), periodic checkpoint [`manifests`](StoreMeta) mark
//!   progress, and `StoreWriter::recover` reopens an interrupted
//!   store for append after validating that the resuming plan is the
//!   one that created it.
//! * [`StoreSink`] — the [`CampaignSink`](drivefi_sim::CampaignSink)
//!   adapter: streams engine results straight to disk.
//! * [`lease`] — per-writer shard leases (lock files with a heartbeat
//!   mtime and stale-lease takeover), so N processes append to disjoint
//!   shard ranges of one store concurrently and the merged read equals
//!   the single-writer result. [`compact_store`] and [`seal_store`]
//!   claim every lease first, so neither races a live writer.
//!
//! Reads merge the shards deterministically by job index, so a resumed
//! campaign reconstructs exactly the record sequence an uninterrupted
//! run would have produced — `drivefi-plan` builds its byte-identical
//! round-trip reports on that guarantee.

pub mod lease;
pub mod log;
pub mod record;
pub mod sink;
pub mod store;
pub mod trace;

pub use lease::{
    default_owner, lease_path, probe_lease, LeaseInfo, LeaseSet, LeaseState, DEFAULT_LEASE_TIMEOUT,
};
pub use record::{CampaignRecord, PAYLOAD_LEN};
pub use sink::{RecordMeta, StoreSink};
pub use store::{
    compact_store, fingerprint64, open_store, open_store_opts, open_store_with_traces,
    read_manifest, read_store, read_traces, seal_store, shard_progress, ShardProgress, StoreMeta,
    StoreOptions, StoreState, StoreWriter, MANIFEST_FILE,
};
pub use trace::{rebuild_traces, scan_trace_shard, TraceRecord, TRACE_BASE_LEN};

/// An error from encoding, decoding, or store I/O.
#[derive(Debug, Clone, PartialEq)]
pub struct StoreError {
    message: String,
}

impl StoreError {
    /// An error carrying `message`.
    pub fn new(message: String) -> Self {
        StoreError { message }
    }
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for StoreError {}
