//! The sharded store directory: checkpoint manifest + shard files +
//! crash recovery.
//!
//! A store directory holds one campaign's persisted results:
//!
//! ```text
//! out/run1/
//!   manifest.toml   # identity + progress checkpoint (atomic rewrite)
//!   shard-000.log   # CRC-framed records with job % shards == 0
//!   shard-001.log   # ...
//! ```
//!
//! Records fan out over shards by `job % shards` — a pure function of
//! the plan-level job index, so the on-disk layout never depends on
//! worker scheduling. The manifest pins the store's identity (a
//! fingerprint of the plan that created it, the total job count, the
//! shard count) and is atomically rewritten at every checkpoint; the
//! shard files are the source of truth for *which* jobs are persisted —
//! recovery rescans them rather than trusting the checkpoint counter,
//! so a crash between an append and the next checkpoint loses nothing.

use crate::lease::{default_owner, LeaseSet, DEFAULT_LEASE_TIMEOUT};
use crate::log::{
    append_frame, append_payload, scan_shard, write_header_with, FORMAT_VERSION, HEADER_LEN,
    SHARD_MAGIC, TRACE_MAGIC,
};
use crate::record::CampaignRecord;
use crate::trace::{rebuild_traces, scan_trace_shard, TraceRecord};
use crate::StoreError;
use drivefi_obs::{metrics, EventLog, Field};
use std::collections::{BTreeSet, HashMap};
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Write};
use std::ops::Range;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// The manifest file name inside a store directory.
pub const MANIFEST_FILE: &str = "manifest.toml";

/// FNV-1a 64-bit hash — the store's plan fingerprint. Stable across
/// processes and platforms (unlike `DefaultHasher`), cheap, and good
/// enough for its job: refusing to resume a campaign under a plan that
/// is not the one that created the store.
pub fn fingerprint64(bytes: &[u8]) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// The store's self-describing manifest: identity plus the progress
/// checkpoint. Serialized as a flat `key = value` file (the store crate
/// sits below `drivefi-plan`, so it carries its own tiny parser instead
/// of depending on the plan crate's TOML implementation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreMeta {
    /// Record-layout version (see [`crate::log::FORMAT_VERSION`]).
    pub format: u32,
    /// Fingerprint of the campaign that owns this store.
    pub fingerprint: u64,
    /// Total jobs the campaign will produce.
    pub total_jobs: u64,
    /// Number of shard files records fan out over.
    pub shards: u32,
    /// Records persisted as of the last checkpoint (informational — the
    /// shard scans are authoritative on recovery).
    pub checkpoint_records: u64,
    /// True once every job's record is persisted and the store was
    /// cleanly finished.
    pub complete: bool,
    /// True when the store carries per-scene golden-trace shards
    /// (`trace-NNN.log`) alongside the outcome shards.
    pub traces: bool,
}

impl StoreMeta {
    fn emit(&self) -> String {
        format!(
            "format = {}\nfingerprint = 0x{:016x}\ntotal_jobs = {}\nshards = {}\n\
             checkpoint_records = {}\ncomplete = {}\ntraces = {}\n",
            self.format,
            self.fingerprint,
            self.total_jobs,
            self.shards,
            self.checkpoint_records,
            self.complete,
            self.traces
        )
    }

    fn parse(src: &str) -> Result<StoreMeta, StoreError> {
        let mut format = None;
        let mut fingerprint = None;
        let mut total_jobs = None;
        let mut shards = None;
        let mut checkpoint_records = None;
        let mut complete = None;
        let mut traces = None;
        for line in src.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (key, value) = line.split_once('=').ok_or_else(|| {
                StoreError::new(format!("manifest line `{line}` is not key = value"))
            })?;
            let (key, value) = (key.trim(), value.trim());
            let uint = || -> Result<u64, StoreError> {
                let parsed = if let Some(hex) = value.strip_prefix("0x") {
                    u64::from_str_radix(hex, 16)
                } else {
                    value.parse()
                };
                parsed.map_err(|_| {
                    StoreError::new(format!("manifest `{key}` = `{value}` is not an integer"))
                })
            };
            let boolean = |name: &str| -> Result<bool, StoreError> {
                match value {
                    "true" => Ok(true),
                    "false" => Ok(false),
                    other => Err(StoreError::new(format!(
                        "manifest `{name}` must be true/false, got `{other}`"
                    ))),
                }
            };
            match key {
                "format" => format = Some(uint()? as u32),
                "fingerprint" => fingerprint = Some(uint()?),
                "total_jobs" => total_jobs = Some(uint()?),
                "shards" => shards = Some(uint()? as u32),
                "checkpoint_records" => checkpoint_records = Some(uint()?),
                "complete" => complete = Some(boolean("complete")?),
                "traces" => traces = Some(boolean("traces")?),
                other => return Err(StoreError::new(format!("unknown manifest key `{other}`"))),
            }
        }
        let require = |name: &str, value: Option<u64>| {
            value.ok_or_else(|| StoreError::new(format!("manifest is missing `{name}`")))
        };
        Ok(StoreMeta {
            format: require("format", format.map(u64::from))? as u32,
            fingerprint: require("fingerprint", fingerprint)?,
            total_jobs: require("total_jobs", total_jobs)?,
            shards: require("shards", shards.map(u64::from))? as u32,
            checkpoint_records: require("checkpoint_records", checkpoint_records)?,
            complete: complete
                .ok_or_else(|| StoreError::new("manifest is missing `complete`".into()))?,
            // Stores predating the trace log carry no `traces` key.
            traces: traces.unwrap_or(false),
        })
    }
}

/// What recovery found in an interrupted store: which jobs already have
/// a persisted record, and whether any shard had a torn tail.
#[derive(Debug, Clone)]
pub struct StoreState {
    done: Vec<u64>,
    records: u64,
    shards: u32,
    range: Range<u32>,
    /// True when at least one shard ended in a torn (partial or
    /// CRC-mismatched) record that recovery truncated away.
    pub torn: bool,
}

impl StoreState {
    /// An empty state for a fresh store over `total_jobs` jobs whose
    /// writer owns `range` of the `shards` shard files.
    fn empty(total_jobs: u64, shards: u32, range: Range<u32>) -> Self {
        StoreState {
            done: vec![0; (total_jobs as usize).div_ceil(64)],
            records: 0,
            shards,
            range,
            torn: false,
        }
    }

    fn mark(&mut self, job: u64) -> bool {
        let (word, bit) = ((job / 64) as usize, job % 64);
        let fresh = self.done[word] & (1 << bit) == 0;
        self.done[word] |= 1 << bit;
        if fresh {
            self.records += 1;
        }
        fresh
    }

    /// Demotes a marked job back to pending (recovery found its outcome
    /// record but an incomplete trace).
    fn unmark(&mut self, job: u64) {
        let (word, bit) = ((job / 64) as usize, job % 64);
        if self.done[word] & (1 << bit) != 0 {
            self.done[word] &= !(1 << bit);
            self.records -= 1;
        }
    }

    /// True when `job`'s record is already persisted.
    pub fn is_done(&self, job: u64) -> bool {
        self.done.get((job / 64) as usize).is_some_and(|word| word & (1 << (job % 64)) != 0)
    }

    /// Number of distinct jobs with a persisted record.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// True when `job` fans out to a shard in this writer's range. A
    /// scoped writer (see [`StoreOptions::shard_range`]) only recovers
    /// and may only append jobs it owns — out-of-range jobs always look
    /// not-done in its state, because their shards were never scanned.
    pub fn owns(&self, job: u64) -> bool {
        self.range.contains(&((job % u64::from(self.shards)) as u32))
    }
}

/// Append handle over a store directory. Obtain one with [`open_store`];
/// stream records in with [`StoreWriter::append`] (or the
/// [`StoreSink`](crate::StoreSink) campaign adapter) and seal the store
/// with [`StoreWriter::finish`].
#[derive(Debug)]
pub struct StoreWriter {
    dir: PathBuf,
    meta: StoreMeta,
    /// The shard range this writer owns; `shards[i]` writes shard file
    /// `range.start + i`.
    range: Range<u32>,
    shards: Vec<BufWriter<File>>,
    /// Trace shard writers, present iff `meta.traces`.
    trace_shards: Option<Vec<BufWriter<File>>>,
    leases: LeaseSet,
    persisted: u64,
    since_checkpoint: u64,
    checkpoint_every: u64,
    /// Lifecycle event sink beside the manifest. Strictly best-effort
    /// telemetry: inert unless `DRIVEFI_OBS` is set, and never consulted
    /// by recovery or reads — the store's behavior is byte-identical
    /// with observability on or off.
    events: EventLog,
}

fn shard_path(dir: &Path, index: u32) -> PathBuf {
    dir.join(format!("shard-{index:03}.log"))
}

fn trace_shard_path(dir: &Path, index: u32) -> PathBuf {
    dir.join(format!("trace-{index:03}.log"))
}

fn io_err(what: &str, path: &Path, e: std::io::Error) -> StoreError {
    StoreError::new(format!("{what} {}: {e}", path.display()))
}

/// True when `dir` holds any `shard-*.log` / `trace-*.log` file — the
/// signature of a store whose manifest was lost. Scans the directory
/// rather than probing `0..shards` paths: the resuming plan's shard
/// count may be *smaller* than the orphaned store's, and a probe bounded
/// by the new count would miss leftover high-index shard files.
fn has_orphaned_shards(dir: &Path) -> bool {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return false; // No directory yet — nothing to orphan.
    };
    entries.flatten().any(|entry| {
        entry.file_name().to_str().is_some_and(|name| {
            name.ends_with(".log") && (name.starts_with("shard-") || name.starts_with("trace-"))
        })
    })
}

/// Opens a store directory for appending: creates a fresh store when no
/// manifest exists, otherwise **recovers** the interrupted store —
/// validates that `fingerprint`, `total_jobs`, and `shards` match the
/// manifest, rescans every shard, truncates torn trailing records, and
/// reports which jobs are already persisted.
///
/// `checkpoint_every` is the append-count period of checkpoint flushes
/// (buffered writes flushed + synced, manifest atomically rewritten).
///
/// # Errors
///
/// Returns a [`StoreError`] on I/O failure, on a manifest that does not
/// match the resuming campaign, or on CRC-valid records that no longer
/// decode (format drift — truncating them would destroy good data).
pub fn open_store(
    dir: impl AsRef<Path>,
    fingerprint: u64,
    total_jobs: u64,
    shards: u32,
    checkpoint_every: u64,
) -> Result<(StoreWriter, StoreState), StoreError> {
    open_store_opts(dir, &StoreOptions::new(fingerprint, total_jobs, shards, checkpoint_every))
}

/// [`open_store`] for a store that also persists per-scene golden
/// traces: every outcome record appended through
/// [`StoreSink`](crate::StoreSink) must be preceded by its run's
/// [`TraceRecord`]s, and recovery treats a job as
/// done only when its outcome record **and** its full trace survive —
/// so a crash that outran the trace buffer demotes the job instead of
/// leaving the miner a silently truncated training set.
///
/// # Errors
///
/// See [`open_store`].
pub fn open_store_with_traces(
    dir: impl AsRef<Path>,
    fingerprint: u64,
    total_jobs: u64,
    shards: u32,
    checkpoint_every: u64,
) -> Result<(StoreWriter, StoreState), StoreError> {
    let opts = StoreOptions::new(fingerprint, total_jobs, shards, checkpoint_every).traces(true);
    open_store_opts(dir, &opts)
}

/// How to open a store: identity, layout, and (for multi-writer use)
/// which shard range this writer owns. [`open_store`] and
/// [`open_store_with_traces`] are the full-range shorthands.
#[derive(Debug, Clone)]
pub struct StoreOptions {
    /// Fingerprint of the campaign that owns the store.
    pub fingerprint: u64,
    /// Total jobs the campaign will produce.
    pub total_jobs: u64,
    /// Number of shard files records fan out over.
    pub shards: u32,
    /// Append-count period of checkpoint flushes.
    pub checkpoint_every: u64,
    /// Persist per-scene golden traces alongside outcomes.
    pub traces: bool,
    /// The shard range this writer appends to; `None` means every shard
    /// (the single-writer case). A scoped writer creates, recovers,
    /// truncates, and leases **only** its own shards — other ranges may
    /// be live under concurrent writers — and its
    /// [`finish`](StoreWriter::finish) never marks the store complete
    /// (that is [`seal_store`], a coordinator's move).
    pub shard_range: Option<Range<u32>>,
    /// Lease owner id recorded in this writer's lock files.
    pub owner: String,
    /// Heartbeat age past which another claimant may take over this
    /// writer's leases (and past which this writer's open steals leases
    /// it finds).
    pub lease_timeout: Duration,
}

impl StoreOptions {
    /// Full-range, trace-less options with the default lease policy.
    pub fn new(fingerprint: u64, total_jobs: u64, shards: u32, checkpoint_every: u64) -> Self {
        StoreOptions {
            fingerprint,
            total_jobs,
            shards,
            checkpoint_every,
            traces: false,
            shard_range: None,
            owner: default_owner(),
            lease_timeout: DEFAULT_LEASE_TIMEOUT,
        }
    }

    /// Persist golden traces alongside outcomes.
    #[must_use]
    pub fn traces(mut self, traces: bool) -> Self {
        self.traces = traces;
        self
    }

    /// Restrict this writer to `range` of the shard files.
    #[must_use]
    pub fn shard_range(mut self, range: Range<u32>) -> Self {
        self.shard_range = Some(range);
        self
    }

    /// Lease owner id recorded in this writer's lock files.
    #[must_use]
    pub fn owner(mut self, owner: impl Into<String>) -> Self {
        self.owner = owner.into();
        self
    }

    /// Stale-lease takeover timeout.
    #[must_use]
    pub fn lease_timeout(mut self, timeout: Duration) -> Self {
        self.lease_timeout = timeout;
        self
    }

    fn range(&self) -> Range<u32> {
        self.shard_range.clone().unwrap_or(0..self.shards)
    }
}

/// [`open_store`] with explicit [`StoreOptions`] — the entry point for
/// scoped multi-writer opens. Acquires the lease on every shard in the
/// writer's range before touching any shard file (stale leases from
/// dead or timed-out writers are taken over; fresh ones refuse the
/// open), so N processes with disjoint ranges append to one store
/// concurrently and the merged [`read_store`] equals what a single
/// writer would have produced.
///
/// # Errors
///
/// See [`open_store`]; additionally errors when a shard in the range is
/// leased by a live writer.
pub fn open_store_opts(
    dir: impl AsRef<Path>,
    opts: &StoreOptions,
) -> Result<(StoreWriter, StoreState), StoreError> {
    let dir = dir.as_ref();
    assert!(opts.shards > 0, "a store needs at least one shard");
    assert!(opts.checkpoint_every > 0, "checkpoint period must be at least 1");
    let range = opts.range();
    assert!(
        range.start < range.end && range.end <= opts.shards,
        "shard range {range:?} is not a non-empty subrange of 0..{}",
        opts.shards
    );
    let meta = StoreMeta {
        format: FORMAT_VERSION,
        fingerprint: opts.fingerprint,
        total_jobs: opts.total_jobs,
        shards: opts.shards,
        checkpoint_records: 0,
        complete: false,
        traces: opts.traces,
    };
    std::fs::create_dir_all(dir).map_err(|e| io_err("creating", dir, e))?;
    // Leases first: everything after this — manifest probe, shard scans,
    // truncation — happens with the range exclusively owned.
    let leases = LeaseSet::acquire(dir, range.clone(), &opts.owner, opts.lease_timeout)?;
    if dir.join(MANIFEST_FILE).is_file() {
        StoreWriter::recover(dir, meta, range, leases, opts.checkpoint_every)
    } else {
        // Shard files without a manifest mean a store whose manifest was
        // lost, not a fresh directory — creating here would truncate
        // every persisted record. Refuse; the fix (restore or delete the
        // directory) is a human decision. (Concurrent creation is not
        // this: a fresh store writes its manifest before any shard file,
        // so a racing writer either sees the manifest or no shards.)
        if has_orphaned_shards(dir) {
            // A concurrent writer may have created the store (manifest
            // first, then shards) between our manifest probe and this
            // scan — that is a store to recover, not an orphan.
            if dir.join(MANIFEST_FILE).is_file() {
                return StoreWriter::recover(dir, meta, range, leases, opts.checkpoint_every);
            }
            return Err(StoreError::new(format!(
                "{}: shard files exist but {MANIFEST_FILE} is missing — refusing to \
                 overwrite what looks like a store that lost its manifest (delete the \
                 directory to start over)",
                dir.display()
            )));
        }
        let state = StoreState::empty(opts.total_jobs, opts.shards, range.clone());
        let writer = StoreWriter::create(dir, meta, range, leases, opts.checkpoint_every)?;
        Ok((writer, state))
    }
}

impl StoreWriter {
    fn create(
        dir: &Path,
        meta: StoreMeta,
        range: Range<u32>,
        leases: LeaseSet,
        checkpoint_every: u64,
    ) -> Result<StoreWriter, StoreError> {
        // Manifest before any shard file: a racing writer (or a crash
        // here) must never leave shards that look like an orphaned
        // store. A manifest with zero shard files recovers cleanly —
        // missing shards scan as empty.
        write_manifest(dir, &meta)?;
        let create_shards = |path_of: fn(&Path, u32) -> PathBuf,
                             magic: &[u8; 8]|
         -> Result<Vec<BufWriter<File>>, StoreError> {
            let mut shards = Vec::with_capacity(range.len());
            for index in range.clone() {
                let path = path_of(dir, index);
                let file = File::create(&path).map_err(|e| io_err("creating", &path, e))?;
                let mut writer = BufWriter::new(file);
                write_header_with(&mut writer, magic, index)?;
                shards.push(writer);
            }
            Ok(shards)
        };
        let shards = create_shards(shard_path, &SHARD_MAGIC)?;
        let trace_shards =
            if meta.traces { Some(create_shards(trace_shard_path, &TRACE_MAGIC)?) } else { None };
        let mut writer = StoreWriter {
            dir: dir.to_path_buf(),
            meta,
            range,
            shards,
            trace_shards,
            leases,
            persisted: 0,
            since_checkpoint: 0,
            checkpoint_every,
            events: EventLog::open(dir),
        };
        writer.checkpoint()?;
        Ok(writer)
    }

    /// Truncates a scanned shard to its valid prefix and reopens it for
    /// append, rewriting the header when even that was torn away. A
    /// missing shard file (a store created by scoped writers whose
    /// range never included it, or a crash between manifest and shard
    /// creation) is created fresh.
    fn reopen_truncated(
        path: &Path,
        magic: &[u8; 8],
        index: u32,
        valid_len: u64,
    ) -> Result<BufWriter<File>, StoreError> {
        let file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)
            .map_err(|e| io_err("opening", path, e))?;
        file.set_len(valid_len).map_err(|e| io_err("truncating", path, e))?;
        drop(file);
        let file =
            OpenOptions::new().append(true).open(path).map_err(|e| io_err("opening", path, e))?;
        let mut writer = BufWriter::new(file);
        if valid_len < HEADER_LEN {
            write_header_with(&mut writer, magic, index)?;
        }
        Ok(writer)
    }

    fn recover(
        dir: &Path,
        expected: StoreMeta,
        range: Range<u32>,
        leases: LeaseSet,
        checkpoint_every: u64,
    ) -> Result<(StoreWriter, StoreState), StoreError> {
        let manifest_path = dir.join(MANIFEST_FILE);
        let src = std::fs::read_to_string(&manifest_path)
            .map_err(|e| io_err("reading", &manifest_path, e))?;
        let found = StoreMeta::parse(&src)
            .map_err(|e| StoreError::new(format!("{}: {e}", manifest_path.display())))?;
        for (what, want, got) in [
            ("format version", u64::from(expected.format), u64::from(found.format)),
            ("plan fingerprint", expected.fingerprint, found.fingerprint),
            ("total job count", expected.total_jobs, found.total_jobs),
            ("shard count", u64::from(expected.shards), u64::from(found.shards)),
        ] {
            if want != got {
                return Err(StoreError::new(format!(
                    "{}: store {what} is {got:#x}, resuming campaign expects {want:#x} — \
                     this store was created by a different plan",
                    dir.display()
                )));
            }
        }
        if expected.traces != found.traces {
            return Err(StoreError::new(format!(
                "{}: this store was created {} trace logs but the resuming campaign needs \
                 a store {} them — likely a store from before the trace-log format; delete \
                 the directory to re-run it under the current format",
                dir.display(),
                if found.traces { "with" } else { "without" },
                if expected.traces { "with" } else { "without" },
            )));
        }

        // Only this writer's own shard range is scanned and truncated:
        // out-of-range shards may be live under concurrent writers, and
        // touching them — even to repair a torn tail — would race their
        // appends. Their jobs simply stay unmarked in this state.
        let mut state = StoreState::empty(expected.total_jobs, expected.shards, range.clone());
        // (job, scenes simulated) of every surviving outcome record —
        // what a complete persisted trace must cover.
        let mut scenes_of: Vec<(u64, u64)> = Vec::new();
        let mut shards = Vec::with_capacity(range.len());
        for index in range.clone() {
            let path = shard_path(dir, index);
            let scan = scan_shard(&path, index)?;
            for record in &scan.records {
                if record.job >= expected.total_jobs {
                    return Err(StoreError::new(format!(
                        "{}: record for job {} but the campaign has only {} jobs",
                        path.display(),
                        record.job,
                        expected.total_jobs
                    )));
                }
                if record.job % u64::from(expected.shards) != u64::from(index) {
                    return Err(StoreError::new(format!(
                        "{}: record for job {} does not belong in shard {index}",
                        path.display(),
                        record.job
                    )));
                }
                state.mark(record.job);
                scenes_of.push((record.job, record.scenes));
            }
            state.torn |= scan.torn;
            shards.push(Self::reopen_truncated(&path, &SHARD_MAGIC, index, scan.valid_len)?);
        }

        let trace_shards = if expected.traces {
            // Distinct persisted scenes per job: a job counts as done
            // only when its trace covers every scene its outcome record
            // claims — otherwise the outcome shard's buffer outran the
            // trace shard's before the crash, and fitting from the store
            // would silently train on a truncated trace. Demote such
            // jobs so the resume re-runs them.
            let mut scenes_seen: HashMap<u64, BTreeSet<u64>> = HashMap::new();
            let mut reopened = Vec::with_capacity(range.len());
            for index in range.clone() {
                let path = trace_shard_path(dir, index);
                let scan = scan_trace_shard(&path, index)?;
                for record in &scan.records {
                    if record.job >= expected.total_jobs {
                        return Err(StoreError::new(format!(
                            "{}: trace record for job {} but the campaign has only {} jobs",
                            path.display(),
                            record.job,
                            expected.total_jobs
                        )));
                    }
                    scenes_seen.entry(record.job).or_default().insert(record.frame.scene);
                }
                state.torn |= scan.torn;
                reopened.push(Self::reopen_truncated(&path, &TRACE_MAGIC, index, scan.valid_len)?);
            }
            for &(job, scenes) in &scenes_of {
                let covered = scenes_seen.get(&job).map_or(0, BTreeSet::len) as u64;
                if covered < scenes {
                    state.unmark(job);
                }
            }
            Some(reopened)
        } else {
            None
        };

        let mut writer = StoreWriter {
            dir: dir.to_path_buf(),
            meta: StoreMeta { checkpoint_records: state.records, complete: false, ..expected },
            range,
            shards,
            trace_shards,
            leases,
            persisted: state.records,
            since_checkpoint: 0,
            checkpoint_every,
            events: EventLog::open(dir),
        };
        metrics::counter_add(metrics::Counter::Resumes, 1);
        writer.events.emit(
            "resume",
            &[
                ("records", Field::Int(state.records as i64)),
                ("total_jobs", Field::Int(expected.total_jobs as i64)),
                ("shard_start", Field::Int(i64::from(writer.range.start))),
                ("shard_end", Field::Int(i64::from(writer.range.end))),
                ("torn", Field::Bool(state.torn)),
            ],
        );
        writer.checkpoint()?;
        Ok((writer, state))
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Index into `self.shards` for `job`, asserting ownership.
    fn own_shard(&self, job: u64) -> usize {
        let shard = (job % u64::from(self.meta.shards)) as u32;
        assert!(
            self.range.contains(&shard),
            "job {job} fans out to shard {shard}, outside this writer's range {:?}",
            self.range
        );
        (shard - self.range.start) as usize
    }

    /// Distinct records persisted so far (surviving + newly appended).
    pub fn records_persisted(&self) -> u64 {
        self.persisted
    }

    /// Appends one record to its shard (`job % shards`), checkpointing
    /// every `checkpoint_every` appends.
    ///
    /// # Errors
    ///
    /// Returns a [`StoreError`] on I/O failure.
    ///
    /// # Panics
    ///
    /// Panics when `record.job` is outside the campaign's job range or
    /// fans out to a shard outside this writer's shard range — both
    /// caller bugs, not recoverable conditions.
    pub fn append(&mut self, record: &CampaignRecord) -> Result<(), StoreError> {
        assert!(
            record.job < self.meta.total_jobs,
            "job {} out of range (campaign has {} jobs)",
            record.job,
            self.meta.total_jobs
        );
        let shard = self.own_shard(record.job);
        append_frame(&mut self.shards[shard], record)?;
        self.persisted += 1;
        self.since_checkpoint += 1;
        if self.since_checkpoint >= self.checkpoint_every {
            self.checkpoint()?;
        }
        Ok(())
    }

    /// True when the store persists golden traces alongside outcomes.
    pub fn traces_enabled(&self) -> bool {
        self.trace_shards.is_some()
    }

    /// Appends one golden-trace record to its trace shard
    /// (`job % shards`). Trace appends do not advance the checkpoint
    /// counter — the job's outcome record (appended after its frames)
    /// does, and every checkpoint flushes the trace shards first.
    ///
    /// # Errors
    ///
    /// Returns a [`StoreError`] on I/O failure.
    ///
    /// # Panics
    ///
    /// Panics when the store was opened without trace logs (use
    /// [`open_store_with_traces`]) or `record.job` is out of range —
    /// both caller bugs.
    pub fn append_trace(&mut self, record: &TraceRecord) -> Result<(), StoreError> {
        assert!(
            record.job < self.meta.total_jobs,
            "job {} out of range (campaign has {} jobs)",
            record.job,
            self.meta.total_jobs
        );
        let shard = self.own_shard(record.job);
        let shards = self.trace_shards.as_mut().expect("store opened with trace logs");
        let mut payload = Vec::with_capacity(record.encoded_len());
        record.encode(&mut payload);
        append_payload(&mut shards[shard], &payload)
    }

    /// Flushes and syncs every shard, then atomically rewrites the
    /// manifest with the current progress.
    ///
    /// # Errors
    ///
    /// Returns a [`StoreError`] on I/O failure.
    pub fn checkpoint(&mut self) -> Result<(), StoreError> {
        let began = Instant::now();
        // Trace shards flush before outcome shards: a crash between the
        // two leaves traces without their outcome record (the job just
        // reruns), never a record claiming a trace that isn't there.
        let start = self.range.start;
        if let Some(trace_shards) = &mut self.trace_shards {
            for (offset, shard) in trace_shards.iter_mut().enumerate() {
                let path = trace_shard_path(&self.dir, start + offset as u32);
                shard.flush().map_err(|e| io_err("flushing", &path, e))?;
                shard.get_ref().sync_all().map_err(|e| io_err("syncing", &path, e))?;
            }
        }
        for (offset, shard) in self.shards.iter_mut().enumerate() {
            let path = shard_path(&self.dir, start + offset as u32);
            shard.flush().map_err(|e| io_err("flushing", &path, e))?;
            shard.get_ref().sync_all().map_err(|e| io_err("syncing", &path, e))?;
        }
        self.meta.checkpoint_records = self.persisted;
        write_manifest(&self.dir, &self.meta)?;
        // The checkpoint doubles as the lease heartbeat: a writer that
        // keeps persisting keeps its shards.
        self.leases.heartbeat()?;
        self.since_checkpoint = 0;
        metrics::counter_add(metrics::Counter::Checkpoints, 1);
        metrics::hist_record(
            metrics::Hist::CheckpointLatencyUs,
            began.elapsed().as_micros() as u64,
        );
        self.events.emit("checkpoint", &[("records", Field::Int(self.persisted as i64))]);
        Ok(())
    }

    /// Final checkpoint; releases this writer's shard leases, and marks
    /// the store `complete` when every job's record is persisted. A
    /// **scoped** writer (partial shard range) never marks completion —
    /// its `persisted` only counts its own range, and sealing a
    /// multi-writer store is the coordinator's move ([`seal_store`]).
    /// Returns the final manifest.
    ///
    /// # Errors
    ///
    /// Returns a [`StoreError`] on I/O failure.
    pub fn finish(mut self) -> Result<StoreMeta, StoreError> {
        let full_range = self.range == (0..self.meta.shards);
        self.meta.complete = full_range && self.persisted >= self.meta.total_jobs;
        self.checkpoint()?;
        self.leases.release()?;
        Ok(self.meta)
    }
}

/// Marks a multi-writer store complete: verifies that **every** job's
/// record is persisted across all shards (scoped writers cannot — each
/// only sees its own range) and rewrites the manifest with
/// `complete = true`. Acquires every shard lease for the duration, so a
/// store cannot be sealed under a live writer.
///
/// # Errors
///
/// Returns a [`StoreError`] when any shard is leased by a live writer,
/// when records are missing (the campaign is not actually finished), or
/// on I/O failure.
pub fn seal_store(dir: impl AsRef<Path>) -> Result<StoreMeta, StoreError> {
    let dir = dir.as_ref();
    let meta = read_manifest(dir)?;
    let mut leases =
        LeaseSet::acquire(dir, 0..meta.shards, &default_owner(), DEFAULT_LEASE_TIMEOUT)?;
    let (_, records) = read_store(dir)?;
    if (records.len() as u64) < meta.total_jobs {
        leases.release()?;
        return Err(StoreError::new(format!(
            "{}: only {} of {} jobs persisted — refusing to seal an incomplete store",
            dir.display(),
            records.len(),
            meta.total_jobs
        )));
    }
    let sealed = StoreMeta { checkpoint_records: records.len() as u64, complete: true, ..meta };
    write_manifest(dir, &sealed)?;
    leases.release()?;
    metrics::counter_add(metrics::Counter::Seals, 1);
    drivefi_obs::emit_event(dir, "seal", &[("records", Field::Int(records.len() as i64))]);
    Ok(sealed)
}

/// Reads a whole store directory: the manifest plus every shard's
/// surviving records, merged deterministically by job index (torn tails
/// tolerated, duplicate job records collapsed to the first persisted).
/// A resumed campaign therefore reads back exactly the record sequence
/// an uninterrupted run would have produced.
///
/// # Errors
///
/// Returns a [`StoreError`] when the directory is not a store, a shard
/// file is missing, or a CRC-valid record fails to decode.
pub fn read_store(dir: impl AsRef<Path>) -> Result<(StoreMeta, Vec<CampaignRecord>), StoreError> {
    let dir = dir.as_ref();
    let meta = read_manifest(dir)?;
    let mut records = Vec::new();
    for index in 0..meta.shards {
        records.extend(scan_shard(&shard_path(dir, index), index)?.records);
    }
    records.sort_by_key(|r| r.job);
    records.dedup_by_key(|r| r.job);
    Ok((meta, records))
}

/// Per-shard completion picture of a store, for diagnostics: how many
/// distinct jobs each shard holds versus how many it should, and the
/// state of the shard's lease lock.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardProgress {
    /// Shard index.
    pub shard: u32,
    /// Distinct jobs persisted in the shard.
    pub records: u64,
    /// Jobs the shard holds when the campaign is complete.
    pub expected: u64,
    /// The shard's lease lock state at probe time.
    pub lease: crate::lease::LeaseState,
}

impl ShardProgress {
    /// Whether every job of the shard is persisted.
    pub fn complete(&self) -> bool {
        self.records >= self.expected
    }
}

/// Surveys every shard of the store at `dir`: distinct persisted jobs,
/// expected jobs, and lease state. Read-only — no leases are claimed,
/// no torn tails truncated — so it is safe to run against a store with
/// live writers (counts are then a snapshot, not a barrier).
///
/// # Errors
///
/// Returns a [`StoreError`] when the directory is not a store or a
/// shard fails to scan.
pub fn shard_progress(dir: impl AsRef<Path>) -> Result<Vec<ShardProgress>, StoreError> {
    let dir = dir.as_ref();
    let meta = read_manifest(dir)?;
    let mut progress = Vec::with_capacity(meta.shards as usize);
    for index in 0..meta.shards {
        let mut jobs: Vec<u64> =
            scan_shard(&shard_path(dir, index), index)?.records.iter().map(|r| r.job).collect();
        jobs.sort_unstable();
        jobs.dedup();
        // Jobs fan out by `job % shards`, so shard `i` owns
        // ceil((total - i) / shards) jobs.
        let expected = (meta.total_jobs + u64::from(meta.shards) - 1 - u64::from(index))
            / u64::from(meta.shards);
        progress.push(ShardProgress {
            shard: index,
            records: jobs.len() as u64,
            expected,
            lease: crate::lease::probe_lease(dir, index, DEFAULT_LEASE_TIMEOUT),
        });
    }
    Ok(progress)
}

/// Reads and parses a store directory's manifest.
///
/// # Errors
///
/// Returns a [`StoreError`] when the manifest is missing or malformed.
pub fn read_manifest(dir: impl AsRef<Path>) -> Result<StoreMeta, StoreError> {
    let manifest_path = dir.as_ref().join(MANIFEST_FILE);
    let src = std::fs::read_to_string(&manifest_path)
        .map_err(|e| io_err("reading", &manifest_path, e))?;
    StoreMeta::parse(&src).map_err(|e| StoreError::new(format!("{}: {e}", manifest_path.display())))
}

fn write_manifest(dir: &Path, meta: &StoreMeta) -> Result<(), StoreError> {
    let path = dir.join(MANIFEST_FILE);
    // Per-pid temp name: concurrent scoped writers checkpoint the same
    // manifest, and a shared temp file would tear under simultaneous
    // writes. The final rename is atomic either way.
    let tmp = dir.join(format!("{MANIFEST_FILE}.tmp.{}", std::process::id()));
    std::fs::write(&tmp, meta.emit()).map_err(|e| io_err("writing", &tmp, e))?;
    std::fs::rename(&tmp, &path).map_err(|e| io_err("renaming", &tmp, e))
}

/// Reads the golden traces persisted in a trace-logging store: trace
/// shards are scanned (torn tails tolerated), merged by `(job, scene)`,
/// deduplicated, and reassembled into one [`Trace`](drivefi_sim::Trace)
/// per job, in job order. Only jobs whose outcome record survived are
/// returned, and each such trace is checked against the scene count its
/// record claims — an interrupted store whose trace log lags its
/// outcome log must be reopened (recovered) before fitting from it.
///
/// # Errors
///
/// Returns a [`StoreError`] when the directory is not a trace-logging
/// store, a shard is missing, a CRC-valid record fails to decode, or a
/// job's persisted trace does not cover its recorded scene count.
pub fn read_traces(
    dir: impl AsRef<Path>,
) -> Result<(StoreMeta, Vec<drivefi_sim::Trace>), StoreError> {
    let dir = dir.as_ref();
    let (meta, records) = read_store(dir)?;
    if !meta.traces {
        return Err(StoreError::new(format!(
            "{}: store has no trace log (traces = false) — only golden stores persist traces",
            dir.display()
        )));
    }
    let mut trace_records = Vec::new();
    for index in 0..meta.shards {
        trace_records.extend(scan_trace_shard(&trace_shard_path(dir, index), index)?.records);
    }
    // Both sides are sorted ascending by job (read_store merges by job,
    // rebuild_traces sorts), so a single merge walk pairs them — and
    // jobs whose outcome record didn't survive (crash before the record
    // flushed) are skipped, their frames simply unread.
    let mut by_job = rebuild_traces(trace_records).into_iter().peekable();
    let mut traces = Vec::with_capacity(records.len());
    for record in &records {
        while by_job.peek().is_some_and(|(job, _)| *job < record.job) {
            by_job.next();
        }
        let Some((_, trace)) = by_job.next_if(|(job, _)| *job == record.job) else {
            return Err(StoreError::new(format!(
                "{}: job {} has an outcome record but no persisted trace — recover the \
                 store (reopen it for append) before fitting from it",
                dir.display(),
                record.job
            )));
        };
        if trace.frames.len() as u64 != record.scenes {
            return Err(StoreError::new(format!(
                "{}: job {} persisted {} trace frames but its record claims {} scenes — \
                 recover the store (reopen it for append) before fitting from it",
                dir.display(),
                record.job,
                trace.frames.len(),
                record.scenes
            )));
        }
        traces.push(trace);
    }
    Ok((meta, traces))
}

/// Rewrites a store's shards in **pure job order**: records land in the
/// same shard (`job % shards`) but their within-shard order becomes the
/// ascending job index, duplicates from demote-and-rerun cycles are
/// dropped, and torn tails disappear. [`read_store`] /
/// [`read_traces`] return exactly the same merged sequences before and
/// after — compaction changes bytes on disk, never results. Each shard
/// is rewritten to a temporary file, synced, and atomically renamed
/// into place; the manifest's checkpoint counter is refreshed last.
///
/// Compaction claims every shard lease for its duration: a store with a
/// **live** writer (fresh lease — held pid alive, heartbeat current)
/// refuses to compact rather than silently racing its appends, while
/// leases left behind by dead or timed-out writers are reclaimed and
/// the compaction proceeds.
///
/// # Errors
///
/// Returns a [`StoreError`] when a shard is leased by a live writer, on
/// I/O failure, or on an unreadable store.
pub fn compact_store(dir: impl AsRef<Path>) -> Result<StoreMeta, StoreError> {
    let dir = dir.as_ref();
    let meta = read_manifest(dir)?;
    let owner = format!("compact-{}", default_owner());
    let mut leases = LeaseSet::acquire(dir, 0..meta.shards, &owner, DEFAULT_LEASE_TIMEOUT)
        .map_err(|e| StoreError::new(format!("refusing to compact under a live writer: {e}")))?;
    let result = compact_locked(dir);
    leases.release()?;
    if let Ok(compacted) = &result {
        metrics::counter_add(metrics::Counter::Compactions, 1);
        drivefi_obs::emit_event(
            dir,
            "compact",
            &[("records", Field::Int(compacted.checkpoint_records as i64))],
        );
    }
    result
}

fn compact_locked(dir: &Path) -> Result<StoreMeta, StoreError> {
    let (meta, records) = read_store(dir)?;

    let rewrite =
        |path: PathBuf,
         magic: &[u8; 8],
         index: u32,
         write_records: &mut dyn FnMut(&mut BufWriter<File>) -> Result<(), StoreError>|
         -> Result<(), StoreError> {
            let tmp = path.with_extension("log.tmp");
            let file = File::create(&tmp).map_err(|e| io_err("creating", &tmp, e))?;
            let mut w = BufWriter::new(file);
            write_header_with(&mut w, magic, index)?;
            write_records(&mut w)?;
            w.flush().map_err(|e| io_err("flushing", &tmp, e))?;
            w.get_ref().sync_all().map_err(|e| io_err("syncing", &tmp, e))?;
            drop(w);
            std::fs::rename(&tmp, &path).map_err(|e| io_err("renaming", &tmp, e))
        };

    for index in 0..meta.shards {
        let mine: Vec<&CampaignRecord> =
            records.iter().filter(|r| r.job % u64::from(meta.shards) == u64::from(index)).collect();
        rewrite(shard_path(dir, index), &SHARD_MAGIC, index, &mut |w| {
            for record in &mine {
                append_frame(w, record)?;
            }
            Ok(())
        })?;
    }

    if meta.traces {
        let mut trace_records = Vec::new();
        for index in 0..meta.shards {
            trace_records.extend(scan_trace_shard(&trace_shard_path(dir, index), index)?.records);
        }
        trace_records.sort_by_key(|r| (r.job, r.frame.scene));
        trace_records.dedup_by_key(|r| (r.job, r.frame.scene));
        for index in 0..meta.shards {
            let mine: Vec<&TraceRecord> = trace_records
                .iter()
                .filter(|r| r.job % u64::from(meta.shards) == u64::from(index))
                .collect();
            rewrite(trace_shard_path(dir, index), &TRACE_MAGIC, index, &mut |w| {
                let mut payload = Vec::new();
                for record in &mine {
                    payload.clear();
                    record.encode(&mut payload);
                    append_payload(w, &payload)?;
                }
                Ok(())
            })?;
        }
    }

    let compacted = StoreMeta { checkpoint_records: records.len() as u64, ..meta };
    write_manifest(dir, &compacted)?;
    Ok(compacted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use drivefi_sim::Outcome;

    fn record(job: u64) -> CampaignRecord {
        CampaignRecord {
            job,
            scenario_id: (job % 5) as u32,
            scenario_seed: job * 31,
            fault: None,
            outcome: if job.is_multiple_of(3) {
                Outcome::Hazard { scene: job }
            } else {
                Outcome::Safe
            },
            injections: job % 2,
            scenes: 300,
            min_delta_lon: job as f64 - 4.0,
            min_delta_lat: 1.5,
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("drivefi-store-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn fingerprint_is_stable_and_discriminating() {
        // FNV-1a reference vector plus basic discrimination.
        assert_eq!(fingerprint64(b""), 0xCBF2_9CE4_8422_2325);
        assert_eq!(fingerprint64(b"a"), 0xAF63_DC4C_8601_EC8C);
        assert_ne!(fingerprint64(b"plan-a"), fingerprint64(b"plan-b"));
    }

    #[test]
    fn manifest_round_trips() {
        for traces in [false, true] {
            let meta = StoreMeta {
                format: FORMAT_VERSION,
                fingerprint: 0xDEAD_BEEF_0123_4567,
                total_jobs: 1_000_000,
                shards: 16,
                checkpoint_records: 37,
                complete: false,
                traces,
            };
            assert_eq!(StoreMeta::parse(&meta.emit()), Ok(meta));
        }
        assert!(StoreMeta::parse("format = 1\nvelocity = 9\n").is_err());
        assert!(StoreMeta::parse("format = banana\n").is_err());
        // Manifests predating the trace log parse with traces = false.
        let legacy = "format = 1\nfingerprint = 0x1\ntotal_jobs = 2\nshards = 1\n\
                      checkpoint_records = 0\ncomplete = false\n";
        assert!(!StoreMeta::parse(legacy).unwrap().traces);
    }

    #[test]
    fn fresh_store_appends_and_reads_back_sharded() {
        let dir = temp_dir("fresh");
        let (mut writer, state) = open_store(&dir, 42, 20, 3, 4).unwrap();
        assert_eq!(state.records(), 0);
        // Append out of order — completion order never matches job order.
        for job in [5u64, 0, 19, 7, 2, 11, 3, 1] {
            writer.append(&record(job)).unwrap();
        }
        let meta = writer.finish().unwrap();
        assert!(!meta.complete, "only 8 of 20 jobs persisted");
        assert_eq!(meta.checkpoint_records, 8);

        let (read_meta, records) = read_store(&dir).unwrap();
        assert_eq!(read_meta, meta);
        let jobs: Vec<u64> = records.iter().map(|r| r.job).collect();
        assert_eq!(jobs, vec![0, 1, 2, 3, 5, 7, 11, 19], "merged by job index");
        assert_eq!(records[4], record(5));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recovery_truncates_torn_tail_and_resumes() {
        let dir = temp_dir("recover");
        let (mut writer, _) = open_store(&dir, 7, 10, 2, 100).unwrap();
        for job in 0..6u64 {
            writer.append(&record(job)).unwrap();
        }
        writer.finish().unwrap();

        // Tear the tail of shard 0 (jobs 0, 2, 4): chop 5 bytes off.
        let path = shard_path(&dir, 0);
        let len = std::fs::metadata(&path).unwrap().len();
        OpenOptions::new().write(true).open(&path).unwrap().set_len(len - 5).unwrap();

        let (mut writer, state) = open_store(&dir, 7, 10, 2, 100).unwrap();
        assert!(state.torn);
        assert_eq!(state.records(), 5, "job 4's record was torn away");
        assert!(state.is_done(3) && state.is_done(2) && !state.is_done(4));
        // Re-run the lost job and the remaining ones.
        for job in [4u64, 6, 7, 8, 9] {
            assert!(!state.is_done(job));
            writer.append(&record(job)).unwrap();
        }
        let meta = writer.finish().unwrap();
        assert!(meta.complete);

        let (_, records) = read_store(&dir).unwrap();
        assert_eq!(records.len(), 10);
        for (job, r) in records.iter().enumerate() {
            assert_eq!(*r, record(job as u64), "job {job} round-trips after recovery");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn manifest_loss_is_refused_not_truncated() {
        // Shards full of fsynced records whose manifest vanished must
        // never be silently recreated-over (File::create would truncate
        // every record).
        let dir = temp_dir("manifestloss");
        let (mut writer, _) = open_store(&dir, 5, 8, 2, 16).unwrap();
        for job in 0..8u64 {
            writer.append(&record(job)).unwrap();
        }
        writer.finish().unwrap();
        std::fs::remove_file(dir.join(MANIFEST_FILE)).unwrap();
        let err = open_store(&dir, 5, 8, 2, 16).expect_err("manifest lost");
        assert!(err.to_string().contains("refusing"), "got: {err}");
        // The shards survived the refusal intact.
        let scan = scan_shard(&shard_path(&dir, 0), 0).unwrap();
        assert_eq!(scan.records.len(), 4);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mismatched_fingerprint_refuses_to_resume() {
        let dir = temp_dir("mismatch");
        let (writer, _) = open_store(&dir, 1, 4, 2, 8).unwrap();
        writer.finish().unwrap();
        let err = open_store(&dir, 2, 4, 2, 8).expect_err("wrong fingerprint");
        assert!(err.to_string().contains("fingerprint"), "got: {err}");
        let err = open_store(&dir, 1, 5, 2, 8).expect_err("wrong job count");
        assert!(err.to_string().contains("job count"), "got: {err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoints_rewrite_the_manifest_periodically() {
        let dir = temp_dir("checkpoint");
        let (mut writer, _) = open_store(&dir, 9, 100, 4, 5).unwrap();
        for job in 0..12u64 {
            writer.append(&record(job)).unwrap();
        }
        // 12 appends at a period of 5 → last checkpoint at 10 records.
        let src = std::fs::read_to_string(dir.join(MANIFEST_FILE)).unwrap();
        let meta = StoreMeta::parse(&src).unwrap();
        assert_eq!(meta.checkpoint_records, 10);
        assert!(!meta.complete);
        drop(writer);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sustained_append_beats_100k_records_per_second() {
        // The acceptance floor of the persistence layer. Real hardware
        // sustains millions/s through the buffered sharded path; the
        // 100k bar leaves ~100x headroom for loaded CI machines.
        let dir = temp_dir("throughput");
        const N: u64 = 200_000;
        let (mut writer, _) = open_store(&dir, 1, N, 8, 16_384).unwrap();
        let start = std::time::Instant::now();
        for job in 0..N {
            writer.append(&record(job)).unwrap();
        }
        writer.finish().unwrap();
        let rate = N as f64 / start.elapsed().as_secs_f64();
        std::fs::remove_dir_all(&dir).ok();
        assert!(rate >= 100_000.0, "sustained append rate {rate:.0} records/s < 100k/s");
    }

    /// A deterministic golden-shaped trace for `job`: `scenes` frames
    /// with a lead object.
    fn trace_records(job: u64, scenes: u64) -> Vec<TraceRecord> {
        (0..scenes)
            .map(|scene| TraceRecord {
                job,
                scenario_id: (job % 5) as u32,
                scenario_seed: job * 31,
                frame: drivefi_sim::FrameRecord {
                    scene,
                    time: scene as f64 / 7.5,
                    ego: drivefi_kinematics::VehicleState::new(
                        3.0 * scene as f64,
                        0.0,
                        28.0,
                        0.0,
                        0.0,
                    ),
                    pose: drivefi_kinematics::VehicleState::new(
                        3.0 * scene as f64,
                        0.1,
                        28.0,
                        0.0,
                        0.0,
                    ),
                    imu_speed: 28.0,
                    imu_accel: 0.0,
                    lead_distance: Some(40.0 + scene as f64),
                    lead_speed: Some(26.0),
                    raw_cmd: drivefi_kinematics::Actuation::new(0.3, 0.0, 0.0),
                    final_cmd: drivefi_kinematics::Actuation::new(0.3, 0.0, 0.0),
                    delta_perceived: drivefi_kinematics::SafetyPotential {
                        longitudinal: 10.0,
                        lateral: 0.5,
                    },
                    delta_true: drivefi_kinematics::SafetyPotential {
                        longitudinal: 9.5,
                        lateral: 0.5,
                    },
                },
            })
            .collect()
    }

    fn golden_record(job: u64, scenes: u64) -> CampaignRecord {
        CampaignRecord { fault: None, injections: 0, scenes, ..record(job) }
    }

    fn append_golden_job(writer: &mut StoreWriter, job: u64, scenes: u64) {
        for trace in trace_records(job, scenes) {
            writer.append_trace(&trace).unwrap();
        }
        writer.append(&golden_record(job, scenes)).unwrap();
    }

    #[test]
    fn trace_store_round_trips_traces_per_job() {
        let dir = temp_dir("traces");
        let (mut writer, state) = open_store_with_traces(&dir, 21, 4, 2, 64).unwrap();
        assert_eq!(state.records(), 0);
        for job in [2u64, 0, 3, 1] {
            append_golden_job(&mut writer, job, 5 + job);
        }
        assert!(writer.finish().unwrap().complete);

        let (meta, traces) = read_traces(&dir).unwrap();
        assert!(meta.traces);
        assert_eq!(traces.len(), 4);
        for (job, trace) in traces.iter().enumerate() {
            let job = job as u64;
            assert_eq!(trace.scenario_id, (job % 5) as u32);
            assert_eq!(trace.frames.len() as u64, 5 + job);
            let expected: Vec<_> = trace_records(job, 5 + job).iter().map(|r| r.frame).collect();
            assert_eq!(trace.frames, expected, "job {job} trace round-trips");
        }
        // A plain outcome store refuses trace reads.
        let plain = temp_dir("traces-plain");
        let (writer, _) = open_store(&plain, 1, 1, 1, 8).unwrap();
        writer.finish().unwrap();
        assert!(read_traces(&plain).unwrap_err().to_string().contains("no trace log"));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::remove_dir_all(&plain).ok();
    }

    #[test]
    fn incomplete_trace_demotes_the_job_on_recovery() {
        // The auto-flush hazard: an outcome record hits disk while part
        // of its trace is still buffered. Recovery must not trust the
        // record alone — the job reruns.
        let dir = temp_dir("demote");
        let (mut writer, _) = open_store_with_traces(&dir, 9, 2, 1, 64).unwrap();
        append_golden_job(&mut writer, 0, 6);
        append_golden_job(&mut writer, 1, 6);
        writer.finish().unwrap();

        // Chop two whole frames off the trace shard's tail (job 1 loses
        // coverage) while the outcome shard keeps both records.
        let path = trace_shard_path(&dir, 0);
        let full = std::fs::metadata(&path).unwrap().len();
        let scan = scan_trace_shard(&path, 0).unwrap();
        assert_eq!(scan.records.len(), 12);
        let frame_bytes = (full - HEADER_LEN) / 12;
        OpenOptions::new()
            .write(true)
            .open(&path)
            .unwrap()
            .set_len(full - 2 * frame_bytes)
            .unwrap();

        let (mut writer, state) = open_store_with_traces(&dir, 9, 2, 1, 64).unwrap();
        assert!(state.is_done(0), "job 0's trace is intact");
        assert!(!state.is_done(1), "job 1's record without its full trace is not done");
        assert_eq!(state.records(), 1);
        // Rerun job 1; the duplicate frames/record collapse on read.
        append_golden_job(&mut writer, 1, 6);
        assert!(writer.finish().unwrap().complete);
        let (_, traces) = read_traces(&dir).unwrap();
        assert_eq!(traces.len(), 2);
        assert_eq!(traces[1].frames.len(), 6);
        let (_, records) = read_store(&dir).unwrap();
        assert_eq!(records.len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn lost_manifest_is_detected_for_any_shard_index() {
        // The orphaned store used MORE shards than the resuming plan: a
        // probe over 0..new_shards would miss shard-007 entirely and
        // truncate it via File::create.
        let dir = temp_dir("orphan-high");
        let (mut writer, _) = open_store(&dir, 5, 8, 8, 16).unwrap();
        writer.append(&record(7)).unwrap(); // lands in shard-007 only
        writer.finish().unwrap();
        for index in 0..7 {
            std::fs::remove_file(shard_path(&dir, index)).unwrap();
        }
        std::fs::remove_file(dir.join(MANIFEST_FILE)).unwrap();
        let err = open_store(&dir, 5, 8, 2, 16).expect_err("high-index orphan shard");
        assert!(err.to_string().contains("refusing"), "got: {err}");
        // Orphaned *trace* shards are refused the same way.
        let dir2 = temp_dir("orphan-trace");
        let (mut writer, _) = open_store_with_traces(&dir2, 5, 8, 4, 16).unwrap();
        append_golden_job(&mut writer, 3, 2);
        writer.finish().unwrap();
        for index in 0..4 {
            std::fs::remove_file(shard_path(&dir2, index)).unwrap();
        }
        std::fs::remove_file(dir2.join(MANIFEST_FILE)).unwrap();
        let err = open_store(&dir2, 5, 8, 4, 16).expect_err("orphan trace shard");
        assert!(err.to_string().contains("refusing"), "got: {err}");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::remove_dir_all(&dir2).ok();
    }

    #[test]
    fn compaction_rewrites_shards_in_job_order_without_changing_reads() {
        let dir = temp_dir("compact");
        let (mut writer, _) = open_store_with_traces(&dir, 13, 9, 3, 4).unwrap();
        // Completion order scrambled relative to job order, job 7 absent.
        for job in [5u64, 0, 8, 2, 6, 3, 1, 4] {
            append_golden_job(&mut writer, job, 4);
        }
        writer.finish().unwrap();
        let before = read_store(&dir).unwrap();
        let before_traces = read_traces(&dir).unwrap();

        let meta = compact_store(&dir).unwrap();
        assert_eq!(meta.checkpoint_records, 8);
        assert_eq!(read_store(&dir).unwrap(), before, "reads changed by compaction");
        assert_eq!(read_traces(&dir).unwrap(), before_traces);

        // Within every shard the raw append order is now the job order.
        for index in 0..3 {
            let scan = scan_shard(&shard_path(&dir, index), index).unwrap();
            assert!(!scan.torn);
            let jobs: Vec<u64> = scan.records.iter().map(|r| r.job).collect();
            let mut sorted = jobs.clone();
            sorted.sort_unstable();
            assert_eq!(jobs, sorted, "shard {index} not in job order");
            let trace_scan = scan_trace_shard(&trace_shard_path(&dir, index), index).unwrap();
            let keys: Vec<(u64, u64)> =
                trace_scan.records.iter().map(|r| (r.job, r.frame.scene)).collect();
            let mut sorted = keys.clone();
            sorted.sort_unstable();
            assert_eq!(keys, sorted, "trace shard {index} not in (job, scene) order");
        }

        // Compaction drops the duplicates a demote-and-rerun left behind.
        let (mut writer, _) = open_store_with_traces(&dir, 13, 9, 3, 4).unwrap();
        append_golden_job(&mut writer, 7, 4);
        writer.finish().unwrap();
        let complete = read_store(&dir).unwrap();
        compact_store(&dir).unwrap();
        assert_eq!(read_store(&dir).unwrap(), complete);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sustained_trace_append_beats_100k_frames_per_second() {
        // The trace log's acceptance floor, mirroring the outcome log's:
        // a golden run emits a few hundred frames per job, so 100k
        // frames/s keeps trace persistence far off the critical path.
        let dir = temp_dir("trace-throughput");
        const JOBS: u64 = 400;
        const SCENES: u64 = 300;
        let (mut writer, _) = open_store_with_traces(&dir, 1, JOBS, 8, 64).unwrap();
        let start = std::time::Instant::now();
        for job in 0..JOBS {
            append_golden_job(&mut writer, job, SCENES);
        }
        writer.finish().unwrap();
        let rate = (JOBS * SCENES) as f64 / start.elapsed().as_secs_f64();
        std::fs::remove_dir_all(&dir).ok();
        assert!(rate >= 100_000.0, "sustained trace append rate {rate:.0} frames/s < 100k/s");
    }

    #[test]
    fn scoped_writers_merge_to_the_single_writer_result() {
        // Serial reference: one writer, every job.
        let reference = temp_dir("scoped-ref");
        let (mut writer, _) = open_store(&reference, 77, 20, 4, 3).unwrap();
        for job in 0..20u64 {
            writer.append(&record(job)).unwrap();
        }
        assert!(writer.finish().unwrap().complete);

        // Two scoped writers over disjoint shard ranges, interleaved.
        let dir = temp_dir("scoped");
        let opts = |range: Range<u32>, owner: &str| {
            StoreOptions::new(77, 20, 4, 3).shard_range(range).owner(owner)
        };
        let (mut a, sa) = open_store_opts(&dir, &opts(0..2, "a")).unwrap();
        let (mut b, sb) = open_store_opts(&dir, &opts(2..4, "b")).unwrap();
        for job in 0..20u64 {
            if sa.owns(job) {
                assert!(!sb.owns(job), "ownership must partition the jobs");
                a.append(&record(job)).unwrap();
            } else {
                assert!(sb.owns(job));
                b.append(&record(job)).unwrap();
            }
        }
        assert!(!a.finish().unwrap().complete, "a scoped writer never seals");
        assert!(!b.finish().unwrap().complete);
        // All jobs persisted → the coordinator seals.
        assert!(seal_store(&dir).unwrap().complete);

        let (ref_meta, ref_records) = read_store(&reference).unwrap();
        let (meta, records) = read_store(&dir).unwrap();
        assert_eq!(meta, ref_meta);
        assert_eq!(records, ref_records, "merged read equals the single-writer result");
        // After compaction the two stores are byte-identical shard for
        // shard (same records, same pure-job order).
        compact_store(&reference).unwrap();
        compact_store(&dir).unwrap();
        for index in 0..4 {
            assert_eq!(
                std::fs::read(shard_path(&reference, index)).unwrap(),
                std::fs::read(shard_path(&dir, index)).unwrap(),
                "shard {index} bytes diverge after compaction"
            );
        }
        std::fs::remove_dir_all(&reference).ok();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn live_writer_blocks_compaction_sealing_and_overlapping_opens() {
        let dir = temp_dir("livelock");
        let (mut writer, _) = open_store(&dir, 3, 8, 2, 4).unwrap();
        writer.append(&record(0)).unwrap();
        writer.checkpoint().unwrap();
        // A live full-range writer blocks everything that would race it.
        let err = compact_store(&dir).expect_err("compacting under a live writer");
        assert!(err.to_string().contains("refusing to compact"), "got: {err}");
        let err = seal_store(&dir).expect_err("sealing under a live writer");
        assert!(err.to_string().contains("leased"), "got: {err}");
        let err = open_store(&dir, 3, 8, 2, 4).expect_err("second writer over the same range");
        assert!(err.to_string().contains("leased"), "got: {err}");
        // Finishing releases the leases; compaction proceeds.
        writer.finish().unwrap();
        compact_store(&dir).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stale_lease_is_reclaimed_by_compaction() {
        let dir = temp_dir("stale-compact");
        let (mut writer, _) = open_store(&dir, 3, 6, 3, 100).unwrap();
        for job in 0..6u64 {
            writer.append(&record(job)).unwrap();
        }
        writer.finish().unwrap();
        // A kill -9'd writer left its lock behind: the pid is dead, so
        // compaction reclaims the lease instead of failing.
        std::fs::write(
            crate::lease::lease_path(&dir, 1),
            "owner = crashed-writer\npid = 4294967295\n",
        )
        .unwrap();
        compact_store(&dir).unwrap();
        assert!(!crate::lease::lease_path(&dir, 1).exists(), "stale lease reclaimed");
        let (_, records) = read_store(&dir).unwrap();
        assert_eq!(records.len(), 6);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn seal_refuses_an_incomplete_store() {
        let dir = temp_dir("seal-incomplete");
        let opts = StoreOptions::new(9, 10, 2, 4).shard_range(0..1).owner("half");
        let (mut writer, state) = open_store_opts(&dir, &opts).unwrap();
        for job in (0..10u64).filter(|&job| state.owns(job)) {
            writer.append(&record(job)).unwrap();
        }
        writer.finish().unwrap();
        let err = seal_store(&dir).expect_err("only half the jobs persisted");
        assert!(err.to_string().contains("refusing to seal"), "got: {err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn scoped_recovery_only_touches_its_own_range() {
        let dir = temp_dir("scoped-recover");
        let opts =
            |range: Range<u32>| StoreOptions::new(5, 12, 2, 100).shard_range(range).owner("scoped");
        let (mut a, sa) = open_store_opts(&dir, &opts(0..1)).unwrap();
        let (mut b, sb) = open_store_opts(&dir, &opts(1..2)).unwrap();
        for job in 0..12u64 {
            if sa.owns(job) { &mut a } else { &mut b }.append(&record(job)).unwrap();
        }
        a.finish().unwrap();
        b.finish().unwrap();

        // Tear shard 1's tail. A writer scoped to shard 0 must neither
        // see the tear nor repair it — shard 1 may be live under its
        // own writer.
        let torn_path = shard_path(&dir, 1);
        let torn_len = std::fs::metadata(&torn_path).unwrap().len();
        OpenOptions::new().write(true).open(&torn_path).unwrap().set_len(torn_len - 3).unwrap();

        let (a, state) = open_store_opts(&dir, &opts(0..1)).unwrap();
        assert!(!state.torn, "the tear is outside this writer's range");
        assert_eq!(state.records(), 6);
        assert_eq!(std::fs::metadata(&torn_path).unwrap().len(), torn_len - 3, "untouched");
        assert!((0..12u64).all(|job| state.owns(job) == sa.owns(job)));
        drop(a);

        // The shard-1 writer recovers its own tear: one record lost.
        let (mut b, state) = open_store_opts(&dir, &opts(1..2)).unwrap();
        assert!(state.torn);
        assert_eq!(state.records(), 5);
        let lost = (0..12u64).find(|&job| sb.owns(job) && !state.is_done(job)).unwrap();
        b.append(&record(lost)).unwrap();
        b.finish().unwrap();
        let (_, records) = read_store(&dir).unwrap();
        assert_eq!(records.len(), 12);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn whole_shard_loss_is_rerun_not_fatal() {
        let dir = temp_dir("shardloss");
        let (mut writer, _) = open_store(&dir, 3, 6, 3, 100).unwrap();
        for job in 0..6u64 {
            writer.append(&record(job)).unwrap();
        }
        writer.finish().unwrap();
        // Truncate shard 1 to zero bytes (even the header gone).
        OpenOptions::new().write(true).open(shard_path(&dir, 1)).unwrap().set_len(0).unwrap();
        let (mut writer, state) = open_store(&dir, 3, 6, 3, 100).unwrap();
        assert_eq!(state.records(), 4);
        for job in [1u64, 4] {
            assert!(!state.is_done(job));
            writer.append(&record(job)).unwrap();
        }
        assert!(writer.finish().unwrap().complete);
        let (_, records) = read_store(&dir).unwrap();
        assert_eq!(records.len(), 6);
        std::fs::remove_dir_all(&dir).ok();
    }
}
