//! The sharded store directory: checkpoint manifest + shard files +
//! crash recovery.
//!
//! A store directory holds one campaign's persisted results:
//!
//! ```text
//! out/run1/
//!   manifest.toml   # identity + progress checkpoint (atomic rewrite)
//!   shard-000.log   # CRC-framed records with job % shards == 0
//!   shard-001.log   # ...
//! ```
//!
//! Records fan out over shards by `job % shards` — a pure function of
//! the plan-level job index, so the on-disk layout never depends on
//! worker scheduling. The manifest pins the store's identity (a
//! fingerprint of the plan that created it, the total job count, the
//! shard count) and is atomically rewritten at every checkpoint; the
//! shard files are the source of truth for *which* jobs are persisted —
//! recovery rescans them rather than trusting the checkpoint counter,
//! so a crash between an append and the next checkpoint loses nothing.

use crate::log::{append_frame, scan_shard, write_header, FORMAT_VERSION, HEADER_LEN};
use crate::record::CampaignRecord;
use crate::StoreError;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};

/// The manifest file name inside a store directory.
pub const MANIFEST_FILE: &str = "manifest.toml";

/// FNV-1a 64-bit hash — the store's plan fingerprint. Stable across
/// processes and platforms (unlike `DefaultHasher`), cheap, and good
/// enough for its job: refusing to resume a campaign under a plan that
/// is not the one that created the store.
pub fn fingerprint64(bytes: &[u8]) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// The store's self-describing manifest: identity plus the progress
/// checkpoint. Serialized as a flat `key = value` file (the store crate
/// sits below `drivefi-plan`, so it carries its own tiny parser instead
/// of depending on the plan crate's TOML implementation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreMeta {
    /// Record-layout version (see [`crate::log::FORMAT_VERSION`]).
    pub format: u32,
    /// Fingerprint of the campaign that owns this store.
    pub fingerprint: u64,
    /// Total jobs the campaign will produce.
    pub total_jobs: u64,
    /// Number of shard files records fan out over.
    pub shards: u32,
    /// Records persisted as of the last checkpoint (informational — the
    /// shard scans are authoritative on recovery).
    pub checkpoint_records: u64,
    /// True once every job's record is persisted and the store was
    /// cleanly finished.
    pub complete: bool,
}

impl StoreMeta {
    fn emit(&self) -> String {
        format!(
            "format = {}\nfingerprint = 0x{:016x}\ntotal_jobs = {}\nshards = {}\n\
             checkpoint_records = {}\ncomplete = {}\n",
            self.format,
            self.fingerprint,
            self.total_jobs,
            self.shards,
            self.checkpoint_records,
            self.complete
        )
    }

    fn parse(src: &str) -> Result<StoreMeta, StoreError> {
        let mut format = None;
        let mut fingerprint = None;
        let mut total_jobs = None;
        let mut shards = None;
        let mut checkpoint_records = None;
        let mut complete = None;
        for line in src.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (key, value) = line.split_once('=').ok_or_else(|| {
                StoreError::new(format!("manifest line `{line}` is not key = value"))
            })?;
            let (key, value) = (key.trim(), value.trim());
            let uint = || -> Result<u64, StoreError> {
                let parsed = if let Some(hex) = value.strip_prefix("0x") {
                    u64::from_str_radix(hex, 16)
                } else {
                    value.parse()
                };
                parsed.map_err(|_| {
                    StoreError::new(format!("manifest `{key}` = `{value}` is not an integer"))
                })
            };
            match key {
                "format" => format = Some(uint()? as u32),
                "fingerprint" => fingerprint = Some(uint()?),
                "total_jobs" => total_jobs = Some(uint()?),
                "shards" => shards = Some(uint()? as u32),
                "checkpoint_records" => checkpoint_records = Some(uint()?),
                "complete" => {
                    complete = Some(match value {
                        "true" => true,
                        "false" => false,
                        other => {
                            return Err(StoreError::new(format!(
                                "manifest `complete` must be true/false, got `{other}`"
                            )))
                        }
                    })
                }
                other => return Err(StoreError::new(format!("unknown manifest key `{other}`"))),
            }
        }
        let require = |name: &str, value: Option<u64>| {
            value.ok_or_else(|| StoreError::new(format!("manifest is missing `{name}`")))
        };
        Ok(StoreMeta {
            format: require("format", format.map(u64::from))? as u32,
            fingerprint: require("fingerprint", fingerprint)?,
            total_jobs: require("total_jobs", total_jobs)?,
            shards: require("shards", shards.map(u64::from))? as u32,
            checkpoint_records: require("checkpoint_records", checkpoint_records)?,
            complete: complete
                .ok_or_else(|| StoreError::new("manifest is missing `complete`".into()))?,
        })
    }
}

/// What recovery found in an interrupted store: which jobs already have
/// a persisted record, and whether any shard had a torn tail.
#[derive(Debug, Clone)]
pub struct StoreState {
    done: Vec<u64>,
    records: u64,
    /// True when at least one shard ended in a torn (partial or
    /// CRC-mismatched) record that recovery truncated away.
    pub torn: bool,
}

impl StoreState {
    /// An empty state for a fresh store over `total_jobs` jobs.
    fn empty(total_jobs: u64) -> Self {
        StoreState { done: vec![0; (total_jobs as usize).div_ceil(64)], records: 0, torn: false }
    }

    fn mark(&mut self, job: u64) -> bool {
        let (word, bit) = ((job / 64) as usize, job % 64);
        let fresh = self.done[word] & (1 << bit) == 0;
        self.done[word] |= 1 << bit;
        if fresh {
            self.records += 1;
        }
        fresh
    }

    /// True when `job`'s record is already persisted.
    pub fn is_done(&self, job: u64) -> bool {
        self.done.get((job / 64) as usize).is_some_and(|word| word & (1 << (job % 64)) != 0)
    }

    /// Number of distinct jobs with a persisted record.
    pub fn records(&self) -> u64 {
        self.records
    }
}

/// Append handle over a store directory. Obtain one with [`open_store`];
/// stream records in with [`StoreWriter::append`] (or the
/// [`StoreSink`](crate::StoreSink) campaign adapter) and seal the store
/// with [`StoreWriter::finish`].
#[derive(Debug)]
pub struct StoreWriter {
    dir: PathBuf,
    meta: StoreMeta,
    shards: Vec<BufWriter<File>>,
    persisted: u64,
    since_checkpoint: u64,
    checkpoint_every: u64,
}

fn shard_path(dir: &Path, index: u32) -> PathBuf {
    dir.join(format!("shard-{index:03}.log"))
}

fn io_err(what: &str, path: &Path, e: std::io::Error) -> StoreError {
    StoreError::new(format!("{what} {}: {e}", path.display()))
}

/// Opens a store directory for appending: creates a fresh store when no
/// manifest exists, otherwise **recovers** the interrupted store —
/// validates that `fingerprint`, `total_jobs`, and `shards` match the
/// manifest, rescans every shard, truncates torn trailing records, and
/// reports which jobs are already persisted.
///
/// `checkpoint_every` is the append-count period of checkpoint flushes
/// (buffered writes flushed + synced, manifest atomically rewritten).
///
/// # Errors
///
/// Returns a [`StoreError`] on I/O failure, on a manifest that does not
/// match the resuming campaign, or on CRC-valid records that no longer
/// decode (format drift — truncating them would destroy good data).
pub fn open_store(
    dir: impl AsRef<Path>,
    fingerprint: u64,
    total_jobs: u64,
    shards: u32,
    checkpoint_every: u64,
) -> Result<(StoreWriter, StoreState), StoreError> {
    assert!(shards > 0, "a store needs at least one shard");
    assert!(checkpoint_every > 0, "checkpoint period must be at least 1");
    let dir = dir.as_ref();
    let meta = StoreMeta {
        format: FORMAT_VERSION,
        fingerprint,
        total_jobs,
        shards,
        checkpoint_records: 0,
        complete: false,
    };
    if dir.join(MANIFEST_FILE).is_file() {
        StoreWriter::recover(dir, meta, checkpoint_every)
    } else {
        // Shard files without a manifest mean a store whose manifest was
        // lost, not a fresh directory — creating here would truncate
        // every persisted record. Refuse; the fix (restore or delete the
        // directory) is a human decision.
        if (0..shards.max(1)).any(|index| shard_path(dir, index).exists()) {
            return Err(StoreError::new(format!(
                "{}: shard files exist but {MANIFEST_FILE} is missing — refusing to \
                 overwrite what looks like a store that lost its manifest (delete the \
                 directory to start over)",
                dir.display()
            )));
        }
        let writer = StoreWriter::create(dir, meta, checkpoint_every)?;
        Ok((writer, StoreState::empty(total_jobs)))
    }
}

impl StoreWriter {
    fn create(
        dir: &Path,
        meta: StoreMeta,
        checkpoint_every: u64,
    ) -> Result<StoreWriter, StoreError> {
        std::fs::create_dir_all(dir).map_err(|e| io_err("creating", dir, e))?;
        let mut shards = Vec::with_capacity(meta.shards as usize);
        for index in 0..meta.shards {
            let path = shard_path(dir, index);
            let file = File::create(&path).map_err(|e| io_err("creating", &path, e))?;
            let mut writer = BufWriter::new(file);
            write_header(&mut writer, index)?;
            shards.push(writer);
        }
        let mut writer = StoreWriter {
            dir: dir.to_path_buf(),
            meta,
            shards,
            persisted: 0,
            since_checkpoint: 0,
            checkpoint_every,
        };
        writer.checkpoint()?;
        Ok(writer)
    }

    fn recover(
        dir: &Path,
        expected: StoreMeta,
        checkpoint_every: u64,
    ) -> Result<(StoreWriter, StoreState), StoreError> {
        let manifest_path = dir.join(MANIFEST_FILE);
        let src = std::fs::read_to_string(&manifest_path)
            .map_err(|e| io_err("reading", &manifest_path, e))?;
        let found = StoreMeta::parse(&src)
            .map_err(|e| StoreError::new(format!("{}: {e}", manifest_path.display())))?;
        for (what, want, got) in [
            ("format version", u64::from(expected.format), u64::from(found.format)),
            ("plan fingerprint", expected.fingerprint, found.fingerprint),
            ("total job count", expected.total_jobs, found.total_jobs),
            ("shard count", u64::from(expected.shards), u64::from(found.shards)),
        ] {
            if want != got {
                return Err(StoreError::new(format!(
                    "{}: store {what} is {got:#x}, resuming campaign expects {want:#x} — \
                     this store was created by a different plan",
                    dir.display()
                )));
            }
        }

        let mut state = StoreState::empty(expected.total_jobs);
        let mut shards = Vec::with_capacity(expected.shards as usize);
        for index in 0..expected.shards {
            let path = shard_path(dir, index);
            let scan = scan_shard(&path, index)?;
            for record in &scan.records {
                if record.job >= expected.total_jobs {
                    return Err(StoreError::new(format!(
                        "{}: record for job {} but the campaign has only {} jobs",
                        path.display(),
                        record.job,
                        expected.total_jobs
                    )));
                }
                if record.job % u64::from(expected.shards) != u64::from(index) {
                    return Err(StoreError::new(format!(
                        "{}: record for job {} does not belong in shard {index}",
                        path.display(),
                        record.job
                    )));
                }
                state.mark(record.job);
            }
            state.torn |= scan.torn;
            // Truncate the torn tail (if any) and reopen for append. A
            // shard whose header itself was torn is rewritten whole.
            let file = OpenOptions::new()
                .write(true)
                .open(&path)
                .map_err(|e| io_err("opening", &path, e))?;
            file.set_len(scan.valid_len).map_err(|e| io_err("truncating", &path, e))?;
            drop(file);
            let file = OpenOptions::new()
                .append(true)
                .open(&path)
                .map_err(|e| io_err("opening", &path, e))?;
            let mut writer = BufWriter::new(file);
            if scan.valid_len < HEADER_LEN {
                write_header(&mut writer, index)?;
            }
            shards.push(writer);
        }

        let mut writer = StoreWriter {
            dir: dir.to_path_buf(),
            meta: StoreMeta { checkpoint_records: state.records, complete: false, ..expected },
            shards,
            persisted: state.records,
            since_checkpoint: 0,
            checkpoint_every,
        };
        writer.checkpoint()?;
        Ok((writer, state))
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Distinct records persisted so far (surviving + newly appended).
    pub fn records_persisted(&self) -> u64 {
        self.persisted
    }

    /// Appends one record to its shard (`job % shards`), checkpointing
    /// every `checkpoint_every` appends.
    ///
    /// # Errors
    ///
    /// Returns a [`StoreError`] on I/O failure.
    ///
    /// # Panics
    ///
    /// Panics when `record.job` is outside the campaign's job range —
    /// that is a caller bug, not a recoverable condition.
    pub fn append(&mut self, record: &CampaignRecord) -> Result<(), StoreError> {
        assert!(
            record.job < self.meta.total_jobs,
            "job {} out of range (campaign has {} jobs)",
            record.job,
            self.meta.total_jobs
        );
        let shard = (record.job % u64::from(self.meta.shards)) as usize;
        append_frame(&mut self.shards[shard], record)?;
        self.persisted += 1;
        self.since_checkpoint += 1;
        if self.since_checkpoint >= self.checkpoint_every {
            self.checkpoint()?;
        }
        Ok(())
    }

    /// Flushes and syncs every shard, then atomically rewrites the
    /// manifest with the current progress.
    ///
    /// # Errors
    ///
    /// Returns a [`StoreError`] on I/O failure.
    pub fn checkpoint(&mut self) -> Result<(), StoreError> {
        for (index, shard) in self.shards.iter_mut().enumerate() {
            let path = shard_path(&self.dir, index as u32);
            shard.flush().map_err(|e| io_err("flushing", &path, e))?;
            shard.get_ref().sync_all().map_err(|e| io_err("syncing", &path, e))?;
        }
        self.meta.checkpoint_records = self.persisted;
        self.write_manifest()?;
        self.since_checkpoint = 0;
        Ok(())
    }

    fn write_manifest(&self) -> Result<(), StoreError> {
        let path = self.dir.join(MANIFEST_FILE);
        let tmp = self.dir.join(format!("{MANIFEST_FILE}.tmp"));
        std::fs::write(&tmp, self.meta.emit()).map_err(|e| io_err("writing", &tmp, e))?;
        std::fs::rename(&tmp, &path).map_err(|e| io_err("renaming", &tmp, e))
    }

    /// Final checkpoint; marks the store `complete` when every job's
    /// record is persisted. Returns the sealed manifest.
    ///
    /// # Errors
    ///
    /// Returns a [`StoreError`] on I/O failure.
    pub fn finish(mut self) -> Result<StoreMeta, StoreError> {
        self.meta.complete = self.persisted >= self.meta.total_jobs;
        self.checkpoint()?;
        Ok(self.meta)
    }
}

/// Reads a whole store directory: the manifest plus every shard's
/// surviving records, merged deterministically by job index (torn tails
/// tolerated, duplicate job records collapsed to the first persisted).
/// A resumed campaign therefore reads back exactly the record sequence
/// an uninterrupted run would have produced.
///
/// # Errors
///
/// Returns a [`StoreError`] when the directory is not a store, a shard
/// file is missing, or a CRC-valid record fails to decode.
pub fn read_store(dir: impl AsRef<Path>) -> Result<(StoreMeta, Vec<CampaignRecord>), StoreError> {
    let dir = dir.as_ref();
    let manifest_path = dir.join(MANIFEST_FILE);
    let src = std::fs::read_to_string(&manifest_path)
        .map_err(|e| io_err("reading", &manifest_path, e))?;
    let meta = StoreMeta::parse(&src)
        .map_err(|e| StoreError::new(format!("{}: {e}", manifest_path.display())))?;
    let mut records = Vec::new();
    for index in 0..meta.shards {
        records.extend(scan_shard(&shard_path(dir, index), index)?.records);
    }
    records.sort_by_key(|r| r.job);
    records.dedup_by_key(|r| r.job);
    Ok((meta, records))
}

#[cfg(test)]
mod tests {
    use super::*;
    use drivefi_sim::Outcome;

    fn record(job: u64) -> CampaignRecord {
        CampaignRecord {
            job,
            scenario_id: (job % 5) as u32,
            scenario_seed: job * 31,
            fault: None,
            outcome: if job.is_multiple_of(3) {
                Outcome::Hazard { scene: job }
            } else {
                Outcome::Safe
            },
            injections: job % 2,
            scenes: 300,
            min_delta_lon: job as f64 - 4.0,
            min_delta_lat: 1.5,
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("drivefi-store-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn fingerprint_is_stable_and_discriminating() {
        // FNV-1a reference vector plus basic discrimination.
        assert_eq!(fingerprint64(b""), 0xCBF2_9CE4_8422_2325);
        assert_eq!(fingerprint64(b"a"), 0xAF63_DC4C_8601_EC8C);
        assert_ne!(fingerprint64(b"plan-a"), fingerprint64(b"plan-b"));
    }

    #[test]
    fn manifest_round_trips() {
        let meta = StoreMeta {
            format: FORMAT_VERSION,
            fingerprint: 0xDEAD_BEEF_0123_4567,
            total_jobs: 1_000_000,
            shards: 16,
            checkpoint_records: 37,
            complete: false,
        };
        assert_eq!(StoreMeta::parse(&meta.emit()), Ok(meta));
        assert!(StoreMeta::parse("format = 1\nvelocity = 9\n").is_err());
        assert!(StoreMeta::parse("format = banana\n").is_err());
    }

    #[test]
    fn fresh_store_appends_and_reads_back_sharded() {
        let dir = temp_dir("fresh");
        let (mut writer, state) = open_store(&dir, 42, 20, 3, 4).unwrap();
        assert_eq!(state.records(), 0);
        // Append out of order — completion order never matches job order.
        for job in [5u64, 0, 19, 7, 2, 11, 3, 1] {
            writer.append(&record(job)).unwrap();
        }
        let meta = writer.finish().unwrap();
        assert!(!meta.complete, "only 8 of 20 jobs persisted");
        assert_eq!(meta.checkpoint_records, 8);

        let (read_meta, records) = read_store(&dir).unwrap();
        assert_eq!(read_meta, meta);
        let jobs: Vec<u64> = records.iter().map(|r| r.job).collect();
        assert_eq!(jobs, vec![0, 1, 2, 3, 5, 7, 11, 19], "merged by job index");
        assert_eq!(records[4], record(5));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recovery_truncates_torn_tail_and_resumes() {
        let dir = temp_dir("recover");
        let (mut writer, _) = open_store(&dir, 7, 10, 2, 100).unwrap();
        for job in 0..6u64 {
            writer.append(&record(job)).unwrap();
        }
        writer.finish().unwrap();

        // Tear the tail of shard 0 (jobs 0, 2, 4): chop 5 bytes off.
        let path = shard_path(&dir, 0);
        let len = std::fs::metadata(&path).unwrap().len();
        OpenOptions::new().write(true).open(&path).unwrap().set_len(len - 5).unwrap();

        let (mut writer, state) = open_store(&dir, 7, 10, 2, 100).unwrap();
        assert!(state.torn);
        assert_eq!(state.records(), 5, "job 4's record was torn away");
        assert!(state.is_done(3) && state.is_done(2) && !state.is_done(4));
        // Re-run the lost job and the remaining ones.
        for job in [4u64, 6, 7, 8, 9] {
            assert!(!state.is_done(job));
            writer.append(&record(job)).unwrap();
        }
        let meta = writer.finish().unwrap();
        assert!(meta.complete);

        let (_, records) = read_store(&dir).unwrap();
        assert_eq!(records.len(), 10);
        for (job, r) in records.iter().enumerate() {
            assert_eq!(*r, record(job as u64), "job {job} round-trips after recovery");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn manifest_loss_is_refused_not_truncated() {
        // Shards full of fsynced records whose manifest vanished must
        // never be silently recreated-over (File::create would truncate
        // every record).
        let dir = temp_dir("manifestloss");
        let (mut writer, _) = open_store(&dir, 5, 8, 2, 16).unwrap();
        for job in 0..8u64 {
            writer.append(&record(job)).unwrap();
        }
        writer.finish().unwrap();
        std::fs::remove_file(dir.join(MANIFEST_FILE)).unwrap();
        let err = open_store(&dir, 5, 8, 2, 16).expect_err("manifest lost");
        assert!(err.to_string().contains("refusing"), "got: {err}");
        // The shards survived the refusal intact.
        let scan = scan_shard(&shard_path(&dir, 0), 0).unwrap();
        assert_eq!(scan.records.len(), 4);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mismatched_fingerprint_refuses_to_resume() {
        let dir = temp_dir("mismatch");
        let (writer, _) = open_store(&dir, 1, 4, 2, 8).unwrap();
        writer.finish().unwrap();
        let err = open_store(&dir, 2, 4, 2, 8).expect_err("wrong fingerprint");
        assert!(err.to_string().contains("fingerprint"), "got: {err}");
        let err = open_store(&dir, 1, 5, 2, 8).expect_err("wrong job count");
        assert!(err.to_string().contains("job count"), "got: {err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoints_rewrite_the_manifest_periodically() {
        let dir = temp_dir("checkpoint");
        let (mut writer, _) = open_store(&dir, 9, 100, 4, 5).unwrap();
        for job in 0..12u64 {
            writer.append(&record(job)).unwrap();
        }
        // 12 appends at a period of 5 → last checkpoint at 10 records.
        let src = std::fs::read_to_string(dir.join(MANIFEST_FILE)).unwrap();
        let meta = StoreMeta::parse(&src).unwrap();
        assert_eq!(meta.checkpoint_records, 10);
        assert!(!meta.complete);
        drop(writer);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sustained_append_beats_100k_records_per_second() {
        // The acceptance floor of the persistence layer. Real hardware
        // sustains millions/s through the buffered sharded path; the
        // 100k bar leaves ~100x headroom for loaded CI machines.
        let dir = temp_dir("throughput");
        const N: u64 = 200_000;
        let (mut writer, _) = open_store(&dir, 1, N, 8, 16_384).unwrap();
        let start = std::time::Instant::now();
        for job in 0..N {
            writer.append(&record(job)).unwrap();
        }
        writer.finish().unwrap();
        let rate = N as f64 / start.elapsed().as_secs_f64();
        std::fs::remove_dir_all(&dir).ok();
        assert!(rate >= 100_000.0, "sustained append rate {rate:.0} records/s < 100k/s");
    }

    #[test]
    fn whole_shard_loss_is_rerun_not_fatal() {
        let dir = temp_dir("shardloss");
        let (mut writer, _) = open_store(&dir, 3, 6, 3, 100).unwrap();
        for job in 0..6u64 {
            writer.append(&record(job)).unwrap();
        }
        writer.finish().unwrap();
        // Truncate shard 1 to zero bytes (even the header gone).
        OpenOptions::new().write(true).open(shard_path(&dir, 1)).unwrap().set_len(0).unwrap();
        let (mut writer, state) = open_store(&dir, 3, 6, 3, 100).unwrap();
        assert_eq!(state.records(), 4);
        for job in [1u64, 4] {
            assert!(!state.is_done(job));
            writer.append(&record(job)).unwrap();
        }
        assert!(writer.finish().unwrap().complete);
        let (_, records) = read_store(&dir).unwrap();
        assert_eq!(records.len(), 6);
        std::fs::remove_dir_all(&dir).ok();
    }
}
