//! Shard leases: per-writer lock files that let N processes append to
//! disjoint shard ranges of one store concurrently.
//!
//! Every writer claims one `lease-NNN.lock` file per shard it owns,
//! created beside the manifest with `O_CREAT | O_EXCL` (so exactly one
//! claimant wins) and carrying the owner id and pid:
//!
//! ```text
//! out/run1/
//!   manifest.toml
//!   shard-000.log
//!   lease-000.lock   # owner = serve-batch7 / pid = 4242
//! ```
//!
//! The file's mtime is the lease heartbeat: the holder refreshes it at
//! every checkpoint. A lease is **stale** — and may be taken over — when
//! its holder's pid is dead, or when the heartbeat is older than the
//! takeover timeout (the fallback for platforms without `/proc`, and
//! the bound on how long a wedged-but-alive writer can squat on a
//! shard). Takeover is race-free without fcntl locks: the claimant
//! atomically renames the stale lock to a private name (exactly one
//! renamer succeeds), deletes it, and claims fresh with `create_new`.
//!
//! A kill -9'd writer leaves its locks behind with a dead pid, so a
//! restarting daemon reclaims them instantly; a cleanly dropped
//! [`LeaseSet`] removes its locks on the way out.

use crate::StoreError;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Heartbeat age past which a lease may be taken over even when the
/// holder pid cannot be proven dead. Writers heartbeat at every
/// checkpoint, so this only bites a writer that has gone a long time
/// without persisting anything.
pub const DEFAULT_LEASE_TIMEOUT: Duration = Duration::from_secs(120);

/// The lock-file path guarding shard `index` of the store at `dir`.
pub fn lease_path(dir: &Path, index: u32) -> PathBuf {
    dir.join(format!("lease-{index:03}.lock"))
}

/// A default lease owner id for this process.
pub fn default_owner() -> String {
    format!("pid-{}", std::process::id())
}

/// What a lease lock file says about its holder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LeaseInfo {
    /// Shard index the lease guards.
    pub shard: u32,
    /// Holder's self-declared owner id.
    pub owner: String,
    /// Holder's pid at claim time.
    pub pid: u32,
}

impl LeaseInfo {
    fn emit(&self) -> String {
        format!("owner = {}\npid = {}\n", self.owner, self.pid)
    }

    fn parse(shard: u32, src: &str) -> Option<LeaseInfo> {
        let mut owner = None;
        let mut pid = None;
        for line in src.lines() {
            let (key, value) = line.split_once('=')?;
            match key.trim() {
                "owner" => owner = Some(value.trim().to_string()),
                "pid" => pid = value.trim().parse().ok(),
                _ => return None,
            }
        }
        Some(LeaseInfo { shard, owner: owner?, pid: pid? })
    }
}

/// Whether the pid is a live process: `Some(alive)` when `/proc` can
/// answer, `None` on platforms without it (staleness then falls back to
/// the heartbeat timeout alone).
fn pid_alive(pid: u32) -> Option<bool> {
    if !Path::new("/proc").is_dir() {
        return None;
    }
    Some(Path::new(&format!("/proc/{pid}")).exists())
}

/// What examining an existing lock file concluded.
enum LeaseCheck {
    /// Live holder — claiming must fail.
    Fresh(String),
    /// Dead holder or expired heartbeat — claimant may take over.
    Stale,
    /// The lock vanished while examining it (holder released).
    Gone,
}

fn examine(path: &Path, shard: u32, timeout: Duration) -> LeaseCheck {
    let src = match std::fs::read_to_string(path) {
        Ok(src) => src,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return LeaseCheck::Gone,
        // Unreadable lock: treat as held and let the mtime decide below.
        Err(_) => String::new(),
    };
    let age = std::fs::metadata(path)
        .and_then(|m| m.modified())
        .ok()
        .and_then(|mtime| mtime.elapsed().ok());
    let info = LeaseInfo::parse(shard, &src);
    // A holder whose pid is provably dead is stale immediately — this is
    // what makes kill -9 + restart reclaim the store without waiting out
    // the timeout. Otherwise the heartbeat decides.
    if let Some(info) = &info {
        if pid_alive(info.pid) == Some(false) {
            return LeaseCheck::Stale;
        }
    }
    if age.is_some_and(|age| age > timeout) {
        return LeaseCheck::Stale;
    }
    let holder = info.map_or_else(
        || "an unreadable holder".to_string(),
        |info| format!("`{}` (pid {})", info.owner, info.pid),
    );
    let age = age.map_or_else(String::new, |age| format!(", heartbeat {}s ago", age.as_secs()));
    LeaseCheck::Fresh(format!("{holder}{age}"))
}

/// Externally observable state of one shard's lease lock, for status
/// displays and diagnostics. A read-only probe: unlike
/// [`LeaseSet::acquire`] it never claims, steals, or touches the lock.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LeaseState {
    /// No lock file — no writer holds the shard.
    Unheld,
    /// Held by a live writer (pid alive, heartbeat current).
    Live {
        /// Holder description, e.g. `` `serve-batch7` (pid 4242) ``.
        holder: String,
    },
    /// A lock left behind by a dead or timed-out writer.
    Stale {
        /// Holder description of the departed writer.
        holder: String,
    },
}

/// Reports the lease state of shard `index` of the store at `dir`,
/// using the same staleness rules as acquisition (dead holder pid, or
/// heartbeat older than `timeout`).
pub fn probe_lease(dir: &Path, index: u32, timeout: Duration) -> LeaseState {
    let path = lease_path(dir, index);
    let src = match std::fs::read_to_string(&path) {
        Ok(src) => src,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return LeaseState::Unheld,
        Err(_) => String::new(),
    };
    let age = std::fs::metadata(&path)
        .and_then(|m| m.modified())
        .ok()
        .and_then(|mtime| mtime.elapsed().ok());
    let info = LeaseInfo::parse(index, &src);
    let dead = info.as_ref().is_some_and(|info| pid_alive(info.pid) == Some(false));
    let holder = info.map_or_else(
        || "an unreadable holder".to_string(),
        |info| format!("`{}` (pid {})", info.owner, info.pid),
    );
    if dead || age.is_some_and(|age| age > timeout) {
        LeaseState::Stale { holder }
    } else {
        LeaseState::Live { holder }
    }
}

/// The set of shard leases one writer holds over a store directory.
/// Acquired by [`LeaseSet::acquire`]; heartbeated at every checkpoint;
/// released (lock files removed) by [`LeaseSet::release`] or on drop.
#[derive(Debug)]
pub struct LeaseSet {
    dir: PathBuf,
    owner: String,
    shards: Vec<u32>,
    released: bool,
}

impl LeaseSet {
    /// Claims the lease for every shard in `shards`, taking over stale
    /// locks (dead holder pid, or heartbeat older than `timeout`) and
    /// refusing fresh ones. On failure nothing stays claimed.
    ///
    /// # Errors
    ///
    /// Returns a [`StoreError`] naming the live holder when a shard is
    /// already leased, or on I/O failure.
    pub fn acquire(
        dir: &Path,
        shards: impl IntoIterator<Item = u32>,
        owner: &str,
        timeout: Duration,
    ) -> Result<LeaseSet, StoreError> {
        let mut set = LeaseSet {
            dir: dir.to_path_buf(),
            owner: owner.to_string(),
            shards: Vec::new(),
            released: false,
        };
        for shard in shards {
            set.claim_one(shard, timeout)?;
            set.shards.push(shard);
        }
        Ok(set)
    }

    fn claim_one(&self, shard: u32, timeout: Duration) -> Result<(), StoreError> {
        let path = lease_path(&self.dir, shard);
        let info = LeaseInfo { shard, owner: self.owner.clone(), pid: std::process::id() };
        // Bounded retries: each loop either claims, steals a stale lock,
        // or observes a fresh holder and fails. Two claimants racing the
        // same stale lock need one extra pass, never more.
        for _ in 0..8 {
            match std::fs::OpenOptions::new().write(true).create_new(true).open(&path) {
                Ok(file) => {
                    use std::io::Write;
                    let mut file = file;
                    file.write_all(info.emit().as_bytes())
                        .map_err(|e| io_err("writing", &path, e))?;
                    return Ok(());
                }
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                    match examine(&path, shard, timeout) {
                        LeaseCheck::Fresh(holder) => {
                            return Err(StoreError::new(format!(
                                "shard {shard} of {} is leased by {holder} — another \
                                 writer is active",
                                self.dir.display()
                            )));
                        }
                        LeaseCheck::Gone => {}
                        LeaseCheck::Stale => {
                            // Atomic steal: exactly one claimant wins the
                            // rename; the losers loop and re-examine.
                            let grave = self
                                .dir
                                .join(format!("lease-{shard:03}.stale.{}", std::process::id()));
                            if std::fs::rename(&path, &grave).is_ok() {
                                let prev = std::fs::read_to_string(&grave)
                                    .ok()
                                    .and_then(|src| LeaseInfo::parse(shard, &src));
                                std::fs::remove_file(&grave)
                                    .map_err(|e| io_err("removing", &grave, e))?;
                                drivefi_obs::metrics::counter_add(
                                    drivefi_obs::metrics::Counter::LeaseTakeovers,
                                    1,
                                );
                                drivefi_obs::emit_event(
                                    &self.dir,
                                    "lease_takeover",
                                    &[
                                        ("shard", drivefi_obs::Field::Int(i64::from(shard))),
                                        (
                                            "from",
                                            drivefi_obs::Field::Str(prev.map_or_else(
                                                || "unreadable".to_string(),
                                                |p| p.owner,
                                            )),
                                        ),
                                        ("to", drivefi_obs::Field::Str(self.owner.clone())),
                                    ],
                                );
                            }
                        }
                    }
                }
                Err(e) => return Err(io_err("claiming", &path, e)),
            }
        }
        Err(StoreError::new(format!(
            "shard {shard} of {}: lease claim kept losing takeover races",
            self.dir.display()
        )))
    }

    /// Refreshes every held lease's heartbeat mtime (rewriting the lock
    /// content in place — a concurrent examiner that catches the file
    /// mid-write falls back to the just-refreshed mtime).
    ///
    /// # Errors
    ///
    /// Returns a [`StoreError`] on I/O failure.
    pub fn heartbeat(&self) -> Result<(), StoreError> {
        let pid = std::process::id();
        for &shard in &self.shards {
            let path = lease_path(&self.dir, shard);
            let info = LeaseInfo { shard, owner: self.owner.clone(), pid };
            std::fs::write(&path, info.emit()).map_err(|e| io_err("heartbeating", &path, e))?;
        }
        Ok(())
    }

    /// Removes every held lock file. Idempotent; also runs on drop
    /// (best-effort there).
    ///
    /// # Errors
    ///
    /// Returns a [`StoreError`] on I/O failure.
    pub fn release(&mut self) -> Result<(), StoreError> {
        if self.released {
            return Ok(());
        }
        self.released = true;
        for &shard in &self.shards {
            let path = lease_path(&self.dir, shard);
            match std::fs::remove_file(&path) {
                Ok(()) => {}
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(e) => return Err(io_err("releasing", &path, e)),
            }
        }
        Ok(())
    }
}

impl Drop for LeaseSet {
    fn drop(&mut self) {
        self.release().ok();
    }
}

fn io_err(what: &str, path: &Path, e: std::io::Error) -> StoreError {
    StoreError::new(format!("{what} lease {}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("drivefi-lease-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn disjoint_ranges_coexist_and_overlaps_are_refused() {
        let dir = temp_dir("disjoint");
        let a = LeaseSet::acquire(&dir, 0..2, "writer-a", DEFAULT_LEASE_TIMEOUT).unwrap();
        let b = LeaseSet::acquire(&dir, 2..4, "writer-b", DEFAULT_LEASE_TIMEOUT).unwrap();
        let err = LeaseSet::acquire(&dir, 1..3, "writer-c", DEFAULT_LEASE_TIMEOUT)
            .expect_err("shard 1 is held");
        assert!(err.to_string().contains("writer-a"), "got: {err}");
        // The failed acquire left shard 2 claimable state untouched: b
        // still holds it, and a fresh claim of b's range still fails.
        let err = LeaseSet::acquire(&dir, 2..3, "writer-c", DEFAULT_LEASE_TIMEOUT)
            .expect_err("shard 2 is held");
        assert!(err.to_string().contains("writer-b"), "got: {err}");
        drop(a);
        drop(b);
        // Dropping released the locks: the full range is claimable.
        LeaseSet::acquire(&dir, 0..4, "writer-c", DEFAULT_LEASE_TIMEOUT).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn dead_pid_lease_is_taken_over_immediately() {
        let dir = temp_dir("deadpid");
        // No real pid can reach u32::MAX (Linux pid_max caps at 2^22),
        // so this holder is provably dead.
        let corpse = LeaseInfo { shard: 0, owner: "crashed".into(), pid: u32::MAX };
        std::fs::write(lease_path(&dir, 0), corpse.emit()).unwrap();
        let set = LeaseSet::acquire(&dir, 0..1, "heir", DEFAULT_LEASE_TIMEOUT).unwrap();
        let src = std::fs::read_to_string(lease_path(&dir, 0)).unwrap();
        assert!(src.contains("heir"), "takeover rewrote the lock: {src}");
        drop(set);
        assert!(!lease_path(&dir, 0).exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn expired_heartbeat_is_taken_over_and_fresh_one_is_not() {
        let dir = temp_dir("heartbeat");
        let holder = LeaseInfo { shard: 0, owner: "slow".into(), pid: std::process::id() };
        std::fs::write(lease_path(&dir, 0), holder.emit()).unwrap();
        // Live pid + fresh mtime: refused.
        let err =
            LeaseSet::acquire(&dir, 0..1, "eager", DEFAULT_LEASE_TIMEOUT).expect_err("fresh lease");
        assert!(err.to_string().contains("slow"), "got: {err}");
        // Live pid but expired heartbeat: the timeout bounds how long a
        // wedged writer can squat.
        let file = std::fs::OpenOptions::new().write(true).open(lease_path(&dir, 0)).unwrap();
        let past = std::time::SystemTime::now() - Duration::from_secs(3600);
        file.set_times(std::fs::FileTimes::new().set_modified(past)).unwrap();
        drop(file);
        LeaseSet::acquire(&dir, 0..1, "eager", Duration::from_secs(60)).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn heartbeat_refreshes_the_lock() {
        let dir = temp_dir("refresh");
        let set = LeaseSet::acquire(&dir, 0..2, "steady", DEFAULT_LEASE_TIMEOUT).unwrap();
        for shard in 0..2 {
            let file =
                std::fs::OpenOptions::new().write(true).open(lease_path(&dir, shard)).unwrap();
            let past = std::time::SystemTime::now() - Duration::from_secs(3600);
            file.set_times(std::fs::FileTimes::new().set_modified(past)).unwrap();
        }
        set.heartbeat().unwrap();
        for shard in 0..2 {
            let age = std::fs::metadata(lease_path(&dir, shard))
                .unwrap()
                .modified()
                .unwrap()
                .elapsed()
                .unwrap();
            assert!(age < Duration::from_secs(60), "shard {shard} heartbeat did not refresh");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unparsable_lock_is_governed_by_its_mtime() {
        let dir = temp_dir("garbage");
        std::fs::write(lease_path(&dir, 0), "???").unwrap();
        // Recent garbage: held (conservative — might be a mid-write
        // heartbeat).
        let err = LeaseSet::acquire(&dir, 0..1, "x", DEFAULT_LEASE_TIMEOUT)
            .expect_err("recent unreadable lock");
        assert!(err.to_string().contains("unreadable"), "got: {err}");
        // Old garbage: stale.
        let file = std::fs::OpenOptions::new().write(true).open(lease_path(&dir, 0)).unwrap();
        let past = std::time::SystemTime::now() - Duration::from_secs(3600);
        file.set_times(std::fs::FileTimes::new().set_modified(past)).unwrap();
        drop(file);
        LeaseSet::acquire(&dir, 0..1, "x", Duration::from_secs(60)).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }
}
