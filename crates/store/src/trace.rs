//! The persisted golden-trace record and its variable-length layout.
//!
//! The miner trains on per-scene traces (`W_t`, `M_t`, `U_A,t`, `A_t`
//! plus ground truth), not on outcome records — so a resumable mining
//! pipeline has to persist the traces themselves. A [`TraceRecord`] is
//! one [`FrameRecord`] slice keyed by `(job, scenario_id, scenario_seed,
//! scene)`, CRC-framed into `trace-NNN.log` shard files alongside the
//! fixed-layout outcome shards (same framing, different header magic).
//! Frames are variable-length: the lead-object fields are optional, so
//! a no-lead scene is 16 bytes shorter than a car-following one.

use crate::log::{scan_shard_with, TRACE_MAGIC};
use crate::record::Reader;
use crate::StoreError;
use drivefi_kinematics::{Actuation, SafetyPotential, VehicleState};
use drivefi_sim::{FrameRecord, Trace};
use std::path::Path;

/// One persisted golden-trace slice: a single scene's [`FrameRecord`]
/// plus the identity of the job that recorded it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceRecord {
    /// Plan-level job index of the golden run.
    pub job: u64,
    /// Scenario id within the plan's suite.
    pub scenario_id: u32,
    /// Scenario RNG seed.
    pub scenario_seed: u64,
    /// The recorded scene slice.
    pub frame: FrameRecord,
}

/// Encoded payload size without the optional lead fields; each present
/// lead field adds 8 bytes.
pub const TRACE_BASE_LEN: usize = 213;

const LEAD_DISTANCE: u8 = 1;
const LEAD_SPEED: u8 = 2;

fn push_state(out: &mut Vec<u8>, s: &VehicleState) {
    for v in [s.x, s.y, s.v, s.theta, s.phi] {
        out.extend_from_slice(&v.to_bits().to_le_bytes());
    }
}

fn read_state(r: &mut Reader<'_>) -> Result<VehicleState, StoreError> {
    Ok(VehicleState::new(r.f64()?, r.f64()?, r.f64()?, r.f64()?, r.f64()?))
}

impl TraceRecord {
    /// Exact encoded payload size of this record.
    pub fn encoded_len(&self) -> usize {
        TRACE_BASE_LEN
            + 8 * usize::from(self.frame.lead_distance.is_some())
            + 8 * usize::from(self.frame.lead_speed.is_some())
    }

    /// Appends the variable-length little-endian encoding to `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        let start = out.len();
        let f = &self.frame;
        out.extend_from_slice(&self.job.to_le_bytes());
        out.extend_from_slice(&self.scenario_id.to_le_bytes());
        out.extend_from_slice(&self.scenario_seed.to_le_bytes());
        out.extend_from_slice(&f.scene.to_le_bytes());
        out.extend_from_slice(&f.time.to_bits().to_le_bytes());
        push_state(out, &f.ego);
        push_state(out, &f.pose);
        out.extend_from_slice(&f.imu_speed.to_bits().to_le_bytes());
        out.extend_from_slice(&f.imu_accel.to_bits().to_le_bytes());
        let flags =
            f.lead_distance.map_or(0, |_| LEAD_DISTANCE) | f.lead_speed.map_or(0, |_| LEAD_SPEED);
        out.push(flags);
        for lead in [f.lead_distance, f.lead_speed].into_iter().flatten() {
            out.extend_from_slice(&lead.to_bits().to_le_bytes());
        }
        for cmd in [&f.raw_cmd, &f.final_cmd] {
            for v in [cmd.throttle, cmd.brake, cmd.steering] {
                out.extend_from_slice(&v.to_bits().to_le_bytes());
            }
        }
        for delta in [&f.delta_perceived, &f.delta_true] {
            for v in [delta.longitudinal, delta.lateral] {
                out.extend_from_slice(&v.to_bits().to_le_bytes());
            }
        }
        debug_assert_eq!(out.len() - start, self.encoded_len());
    }

    /// Decodes a payload produced by [`TraceRecord::encode`].
    ///
    /// # Errors
    ///
    /// Returns a [`StoreError`] when the payload is truncated, carries
    /// unknown flag bits, or has trailing bytes (a CRC-valid frame that
    /// fails here indicates a format-version mismatch, not bit rot).
    pub fn decode(payload: &[u8]) -> Result<TraceRecord, StoreError> {
        let mut r = Reader { bytes: payload, at: 0 };
        let job = r.u64()?;
        let scenario_id = r.u32()?;
        let scenario_seed = r.u64()?;
        let scene = r.u64()?;
        let time = r.f64()?;
        let ego = read_state(&mut r)?;
        let pose = read_state(&mut r)?;
        let imu_speed = r.f64()?;
        let imu_accel = r.f64()?;
        let flags = r.u8()?;
        if flags & !(LEAD_DISTANCE | LEAD_SPEED) != 0 {
            return Err(StoreError::new(format!("unknown trace-record flags {flags:#04x}")));
        }
        let lead_distance = (flags & LEAD_DISTANCE != 0).then(|| r.f64()).transpose()?;
        let lead_speed = (flags & LEAD_SPEED != 0).then(|| r.f64()).transpose()?;
        let raw_cmd = Actuation::new(r.f64()?, r.f64()?, r.f64()?);
        let final_cmd = Actuation::new(r.f64()?, r.f64()?, r.f64()?);
        let delta_perceived = SafetyPotential { longitudinal: r.f64()?, lateral: r.f64()? };
        let delta_true = SafetyPotential { longitudinal: r.f64()?, lateral: r.f64()? };
        if r.at != payload.len() {
            return Err(StoreError::new(format!(
                "trace-record payload has {} trailing bytes",
                payload.len() - r.at
            )));
        }
        Ok(TraceRecord {
            job,
            scenario_id,
            scenario_seed,
            frame: FrameRecord {
                scene,
                time,
                ego,
                pose,
                imu_speed,
                imu_accel,
                lead_distance,
                lead_speed,
                raw_cmd,
                final_cmd,
                delta_perceived,
                delta_true,
            },
        })
    }
}

/// What [`scan_trace_shard`] found in one trace shard file.
#[derive(Debug, Clone)]
pub struct TraceShardScan {
    /// The records of the valid prefix, in append order.
    pub records: Vec<TraceRecord>,
    /// Byte offset where the valid prefix ends (see
    /// [`ShardScan::valid_len`](crate::log::ShardScan)).
    pub valid_len: u64,
    /// True when bytes past `valid_len` had to be discarded.
    pub torn: bool,
}

/// Reads a trace shard file, tolerating a torn tail.
///
/// # Errors
///
/// See [`scan_shard_with`].
pub fn scan_trace_shard(path: &Path, shard_index: u32) -> Result<TraceShardScan, StoreError> {
    let (records, valid_len, torn) =
        scan_shard_with(path, &TRACE_MAGIC, shard_index, TraceRecord::decode)?;
    Ok(TraceShardScan { records, valid_len, torn })
}

/// Reassembles merged trace records into per-job [`Trace`]s: records are
/// sorted by `(job, scene)`, duplicate scenes collapse to the first
/// persisted (a demoted-and-rerun job appends its frames twice; both
/// copies are bitwise identical because golden runs are deterministic),
/// and one `Trace` per distinct job comes back in job order.
pub fn rebuild_traces(mut records: Vec<TraceRecord>) -> Vec<(u64, Trace)> {
    records.sort_by_key(|r| (r.job, r.frame.scene));
    records.dedup_by_key(|r| (r.job, r.frame.scene));
    let mut out: Vec<(u64, Trace)> = Vec::new();
    for record in records {
        match out.last_mut() {
            Some((job, trace)) if *job == record.job => trace.frames.push(record.frame),
            _ => out.push((
                record.job,
                Trace { scenario_id: record.scenario_id, frames: vec![record.frame] },
            )),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::{append_payload, write_header_with};
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    pub(crate) fn sample_frame(scene: u64, lead: bool) -> FrameRecord {
        FrameRecord {
            scene,
            time: scene as f64 / 7.5,
            ego: VehicleState::new(3.0 * scene as f64, -1.5, 28.0, 0.01, -0.002),
            pose: VehicleState::new(3.0 * scene as f64 + 0.2, -1.4, 28.1, 0.011, -0.002),
            imu_speed: 28.05,
            imu_accel: 0.4,
            lead_distance: lead.then_some(42.0 + scene as f64),
            lead_speed: lead.then_some(26.5),
            raw_cmd: Actuation::new(0.31, 0.0, 0.004),
            final_cmd: Actuation::new(0.30, 0.0, 0.004),
            delta_perceived: SafetyPotential { longitudinal: 11.0, lateral: 0.5 },
            delta_true: SafetyPotential { longitudinal: 10.5, lateral: 0.45 },
        }
    }

    pub(crate) fn sample_trace_record(job: u64, scene: u64, lead: bool) -> TraceRecord {
        TraceRecord {
            job,
            scenario_id: job as u32,
            scenario_seed: job * 17 + 3,
            frame: sample_frame(scene, lead),
        }
    }

    /// Full-bit-range arbitrary values (floats include non-finite
    /// patterns, like upstream `any::<f64>()`).
    fn arb_record(rng: &mut StdRng) -> TraceRecord {
        fn f(rng: &mut StdRng) -> f64 {
            f64::from_bits(rng.next_u64())
        }
        let with_distance = rng.random::<bool>();
        let with_speed = rng.random::<bool>();
        let frame = FrameRecord {
            scene: rng.next_u64(),
            time: f(rng),
            ego: VehicleState::new(f(rng), f(rng), f(rng), f(rng), f(rng)),
            pose: VehicleState::new(f(rng), f(rng), f(rng), f(rng), f(rng)),
            imu_speed: f(rng),
            imu_accel: f(rng),
            lead_distance: with_distance.then(|| f(rng)),
            lead_speed: with_speed.then(|| f(rng)),
            raw_cmd: Actuation::new(f(rng), f(rng), f(rng)),
            final_cmd: Actuation::new(f(rng), f(rng), f(rng)),
            delta_perceived: SafetyPotential { longitudinal: f(rng), lateral: f(rng) },
            delta_true: SafetyPotential { longitudinal: f(rng), lateral: f(rng) },
        };
        TraceRecord {
            job: rng.next_u64(),
            scenario_id: rng.random(),
            scenario_seed: rng.next_u64(),
            frame,
        }
    }

    /// Bitwise record equality: `PartialEq` on f64 treats NaN ≠ NaN, but
    /// the log must round-trip any bit pattern the simulator could emit.
    fn bits_equal(a: &TraceRecord, b: &TraceRecord) -> bool {
        let mut ba = Vec::new();
        let mut bb = Vec::new();
        a.encode(&mut ba);
        b.encode(&mut bb);
        ba == bb
    }

    proptest! {
        #[test]
        fn fuzzed_records_round_trip(seed in any::<u64>()) {
            let mut rng = StdRng::seed_from_u64(seed);
            let record = arb_record(&mut rng);
            let mut payload = Vec::new();
            record.encode(&mut payload);
            prop_assert_eq!(payload.len(), record.encoded_len());
            let decoded = TraceRecord::decode(&payload).unwrap();
            prop_assert!(bits_equal(&record, &decoded));
        }

        #[test]
        fn fuzzed_shards_scan_back_and_tolerate_torn_tails(
            seed in any::<u64>(),
            count in 1usize..20,
            cut_pick in any::<u64>(),
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let records: Vec<TraceRecord> =
                (0..count).map(|_| arb_record(&mut rng)).collect();
            let dir = std::env::temp_dir()
                .join(format!("drivefi-trace-prop-{}", std::process::id()));
            std::fs::create_dir_all(&dir).unwrap();
            let path = dir.join("trace-005.log");

            let mut full = Vec::new();
            write_header_with(&mut full, &TRACE_MAGIC, 5).unwrap();
            let mut offsets = vec![full.len()];
            for record in &records {
                let mut payload = Vec::new();
                record.encode(&mut payload);
                append_payload(&mut full, &payload).unwrap();
                offsets.push(full.len());
            }

            // Emit → scan == input.
            std::fs::write(&path, &full).unwrap();
            let scan = scan_trace_shard(&path, 5).unwrap();
            prop_assert!(!scan.torn);
            prop_assert_eq!(scan.valid_len, full.len() as u64);
            prop_assert_eq!(scan.records.len(), records.len());
            for (a, b) in records.iter().zip(&scan.records) {
                prop_assert!(bits_equal(a, b));
            }

            // Torn tail at a fuzzed byte offset: every whole frame before
            // the cut survives, everything after is reported torn.
            let cut = (cut_pick % full.len() as u64) as usize;
            std::fs::write(&path, &full[..cut]).unwrap();
            let scan = scan_trace_shard(&path, 5).unwrap();
            let whole = offsets.iter().filter(|&&end| end > 16 && end <= cut).count();
            prop_assert_eq!(scan.records.len(), whole);
            let expected_valid = if cut < 16 { 0 } else { offsets[whole] as u64 };
            prop_assert_eq!(scan.valid_len, expected_valid);
            prop_assert_eq!(scan.torn, scan.valid_len != cut as u64);
            std::fs::remove_dir_all(&dir).ok();
        }
    }

    #[test]
    fn lead_fields_change_the_encoded_length() {
        let with_lead = sample_trace_record(1, 10, true);
        let without = sample_trace_record(1, 10, false);
        assert_eq!(with_lead.encoded_len(), TRACE_BASE_LEN + 16);
        assert_eq!(without.encoded_len(), TRACE_BASE_LEN);
        for record in [with_lead, without] {
            let mut payload = Vec::new();
            record.encode(&mut payload);
            assert_eq!(TraceRecord::decode(&payload), Ok(record));
        }
    }

    #[test]
    fn corrupt_payloads_are_rejected_not_misread() {
        let mut payload = Vec::new();
        sample_trace_record(0, 3, true).encode(&mut payload);
        // Unknown flag bits.
        let mut bad_flags = payload.clone();
        bad_flags[TRACE_BASE_LEN - 80 - 1] = 0xF0;
        assert!(TraceRecord::decode(&bad_flags).is_err());
        // Truncated and padded payloads.
        assert!(TraceRecord::decode(&payload[..payload.len() - 1]).is_err());
        let mut padded = payload.clone();
        padded.push(0);
        assert!(TraceRecord::decode(&padded).is_err());
    }

    #[test]
    fn rebuild_merges_sorts_and_dedups() {
        // Out-of-order appends across jobs, with job 1's frames appended
        // twice (the demote-and-rerun shape).
        let records = vec![
            sample_trace_record(1, 1, true),
            sample_trace_record(0, 0, false),
            sample_trace_record(1, 0, true),
            sample_trace_record(0, 1, false),
            sample_trace_record(1, 0, true),
            sample_trace_record(1, 1, true),
        ];
        let traces = rebuild_traces(records);
        assert_eq!(traces.len(), 2);
        assert_eq!(traces[0].0, 0);
        assert_eq!(traces[1].0, 1);
        for (job, trace) in &traces {
            assert_eq!(trace.scenario_id, *job as u32);
            let scenes: Vec<u64> = trace.frames.iter().map(|f| f.scene).collect();
            assert_eq!(scenes, vec![0, 1], "job {job}");
        }
    }
}
