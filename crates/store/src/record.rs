//! The per-job campaign record and its fixed binary layout.

use crate::StoreError;
use drivefi_ads::{Signal, Stage};
use drivefi_fault::{FaultKind, FaultSpec, ScalarFaultModel, WindowSpec};
use drivefi_sim::{Outcome, RunReport};

/// One persisted campaign result: everything a miner or report needs to
/// know about one (scenario × fault) job, without the trace.
///
/// `job` is the job's index within its campaign plan (not the engine's
/// submission index, which shifts when a resumed run skips persisted
/// jobs) — it is the store's merge key and the identity resume checks
/// against.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CampaignRecord {
    /// Plan-level job index.
    pub job: u64,
    /// Scenario id within the plan's suite.
    pub scenario_id: u32,
    /// Scenario RNG seed (reproduces the scenario with its family).
    pub scenario_seed: u64,
    /// The armed fault, `None` for golden (fault-free) jobs.
    pub fault: Option<FaultSpec>,
    /// Safety classification of the run.
    pub outcome: Outcome,
    /// Corruptions the injector actually performed.
    pub injections: u64,
    /// Scenes simulated.
    pub scenes: u64,
    /// Minimum ground-truth longitudinal δ over the run \[m\].
    pub min_delta_lon: f64,
    /// Minimum ground-truth lateral δ over the run \[m\].
    pub min_delta_lat: f64,
}

/// Exact encoded payload size of one record (the layout is fixed; the
/// framing layer adds 8 bytes of length + CRC).
pub const PAYLOAD_LEN: usize = 92;

// Fault tags in the encoded layout.
const FAULT_NONE: u8 = 0;
const FAULT_SCALAR: u8 = 1;
const FAULT_CLEAR: u8 = 2;
const FAULT_FREEZE: u8 = 3;
const FAULT_HANG: u8 = 4;

// Outcome tags in the encoded layout.
const OUTCOME_SAFE: u8 = 0;
const OUTCOME_HAZARD: u8 = 1;
const OUTCOME_COLLISION: u8 = 2;

/// Little-endian cursor over an encoded payload (shared with the trace
/// log's [`TraceRecord`](crate::TraceRecord) decoder).
pub(crate) struct Reader<'a> {
    pub(crate) bytes: &'a [u8],
    pub(crate) at: usize,
}

impl<'a> Reader<'a> {
    fn take<const N: usize>(&mut self) -> Result<[u8; N], StoreError> {
        let end = self.at + N;
        let slice = self
            .bytes
            .get(self.at..end)
            .ok_or_else(|| StoreError::new("record payload too short".into()))?;
        self.at = end;
        Ok(slice.try_into().expect("slice length checked"))
    }

    pub(crate) fn u8(&mut self) -> Result<u8, StoreError> {
        Ok(self.take::<1>()?[0])
    }

    pub(crate) fn u32(&mut self) -> Result<u32, StoreError> {
        Ok(u32::from_le_bytes(self.take::<4>()?))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, StoreError> {
        Ok(u64::from_le_bytes(self.take::<8>()?))
    }

    pub(crate) fn f64(&mut self) -> Result<f64, StoreError> {
        Ok(f64::from_bits(self.u64()?))
    }
}

impl CampaignRecord {
    /// Builds the record for one engine result. The caller supplies the
    /// job's scenario identity and armed fault (the engine result only
    /// carries the job id and the run report).
    pub fn from_report(job: u64, meta: &crate::RecordMeta, report: &RunReport) -> CampaignRecord {
        CampaignRecord {
            job,
            scenario_id: meta.scenario_id,
            scenario_seed: meta.scenario_seed,
            fault: meta.fault,
            outcome: report.outcome,
            injections: report.injections,
            scenes: report.scenes,
            min_delta_lon: report.min_delta_lon,
            min_delta_lat: report.min_delta_lat,
        }
    }

    /// The fault's stable report name (`"raw_throttle:max"`,
    /// `"world.clear"`, …), empty for golden jobs.
    pub fn fault_name(&self) -> String {
        self.fault.map(|spec| spec.kind.name()).unwrap_or_default()
    }

    /// Appends the fixed-layout little-endian encoding to `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        let start = out.len();
        out.extend_from_slice(&self.job.to_le_bytes());
        out.extend_from_slice(&self.scenario_id.to_le_bytes());
        out.extend_from_slice(&self.scenario_seed.to_le_bytes());

        let (tag, arg, (model_tag, model_bits), window) = match self.fault {
            None => (FAULT_NONE, 0, (0, 0), WindowSpec { scene: 0, scenes: 0 }),
            Some(spec) => match spec.kind {
                FaultKind::Scalar { signal, model } => {
                    (FAULT_SCALAR, signal.index(), model.key(), spec.window)
                }
                FaultKind::ClearWorldModel => (FAULT_CLEAR, 0, (0, 0), spec.window),
                FaultKind::FreezeWorldModel => (FAULT_FREEZE, 0, (0, 0), spec.window),
                FaultKind::ModuleHang { stage } => {
                    (FAULT_HANG, stage.index() as u8, (0, 0), spec.window)
                }
            },
        };
        out.push(tag);
        out.push(arg);
        out.push(model_tag);
        out.extend_from_slice(&model_bits.to_le_bytes());
        out.extend_from_slice(&window.scene.to_le_bytes());
        out.extend_from_slice(&window.scenes.to_le_bytes());

        let (outcome_tag, scene, actor) = match self.outcome {
            Outcome::Safe => (OUTCOME_SAFE, 0, 0),
            Outcome::Hazard { scene } => (OUTCOME_HAZARD, scene, 0),
            Outcome::Collision { scene, actor } => (OUTCOME_COLLISION, scene, actor),
        };
        out.push(outcome_tag);
        out.extend_from_slice(&scene.to_le_bytes());
        out.extend_from_slice(&actor.to_le_bytes());

        out.extend_from_slice(&self.injections.to_le_bytes());
        out.extend_from_slice(&self.scenes.to_le_bytes());
        out.extend_from_slice(&self.min_delta_lon.to_bits().to_le_bytes());
        out.extend_from_slice(&self.min_delta_lat.to_bits().to_le_bytes());
        debug_assert_eq!(out.len() - start, PAYLOAD_LEN);
    }

    /// Decodes a payload produced by [`CampaignRecord::encode`].
    ///
    /// # Errors
    ///
    /// Returns a [`StoreError`] when the payload has the wrong length or
    /// carries tags/indices outside the known vocabulary (a CRC-valid
    /// frame that fails here indicates a format-version mismatch, not
    /// bit rot).
    pub fn decode(payload: &[u8]) -> Result<CampaignRecord, StoreError> {
        if payload.len() != PAYLOAD_LEN {
            return Err(StoreError::new(format!(
                "record payload must be {PAYLOAD_LEN} bytes, got {}",
                payload.len()
            )));
        }
        let mut r = Reader { bytes: payload, at: 0 };
        let job = r.u64()?;
        let scenario_id = r.u32()?;
        let scenario_seed = r.u64()?;

        let tag = r.u8()?;
        let arg = r.u8()?;
        let model_tag = r.u8()?;
        let model_bits = r.u64()?;
        let window = WindowSpec { scene: r.u64()?, scenes: r.u64()? };
        let fault = match tag {
            FAULT_NONE => None,
            FAULT_SCALAR => {
                let signal = Signal::ALL
                    .get(arg as usize)
                    .copied()
                    .ok_or_else(|| StoreError::new(format!("unknown signal index {arg}")))?;
                let model = ScalarFaultModel::from_key(model_tag, model_bits).ok_or_else(|| {
                    StoreError::new(format!("unknown fault-model tag {model_tag}"))
                })?;
                Some(FaultSpec { kind: FaultKind::Scalar { signal, model }, window })
            }
            FAULT_CLEAR => Some(FaultSpec { kind: FaultKind::ClearWorldModel, window }),
            FAULT_FREEZE => Some(FaultSpec { kind: FaultKind::FreezeWorldModel, window }),
            FAULT_HANG => {
                let stage = Stage::ALL
                    .get(arg as usize)
                    .copied()
                    .ok_or_else(|| StoreError::new(format!("unknown stage index {arg}")))?;
                Some(FaultSpec { kind: FaultKind::ModuleHang { stage }, window })
            }
            other => return Err(StoreError::new(format!("unknown fault tag {other}"))),
        };

        let outcome_tag = r.u8()?;
        let scene = r.u64()?;
        let actor = r.u32()?;
        let outcome = match outcome_tag {
            OUTCOME_SAFE => Outcome::Safe,
            OUTCOME_HAZARD => Outcome::Hazard { scene },
            OUTCOME_COLLISION => Outcome::Collision { scene, actor },
            other => return Err(StoreError::new(format!("unknown outcome tag {other}"))),
        };

        Ok(CampaignRecord {
            job,
            scenario_id,
            scenario_seed,
            fault,
            outcome,
            injections: r.u64()?,
            scenes: r.u64()?,
            min_delta_lon: r.f64()?,
            min_delta_lat: r.f64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn sample_record(job: u64) -> CampaignRecord {
        CampaignRecord {
            job,
            scenario_id: 7,
            scenario_seed: 0xABCD,
            fault: Some(FaultSpec {
                kind: FaultKind::Scalar {
                    signal: Signal::RawThrottle,
                    model: ScalarFaultModel::StuckMax,
                },
                window: WindowSpec::scene(20 + job),
            }),
            outcome: Outcome::Hazard { scene: 31 },
            injections: 4,
            scenes: 300,
            min_delta_lon: -0.75,
            min_delta_lat: 1.25,
        }
    }

    #[test]
    fn encode_is_fixed_layout() {
        let mut buf = Vec::new();
        sample_record(3).encode(&mut buf);
        assert_eq!(buf.len(), PAYLOAD_LEN);
    }

    #[test]
    fn every_fault_shape_round_trips() {
        let faults = [
            None,
            Some(FaultSpec {
                kind: FaultKind::Scalar {
                    signal: Signal::LeadDistance,
                    model: ScalarFaultModel::BitFlip(62),
                },
                window: WindowSpec::burst(5, 3),
            }),
            Some(FaultSpec {
                kind: FaultKind::Scalar {
                    signal: Signal::FinalBrake,
                    model: ScalarFaultModel::Offset(-2.5),
                },
                window: WindowSpec::permanent(9),
            }),
            Some(FaultSpec { kind: FaultKind::ClearWorldModel, window: WindowSpec::scene(4) }),
            Some(FaultSpec { kind: FaultKind::FreezeWorldModel, window: WindowSpec::scene(6) }),
            Some(FaultSpec {
                kind: FaultKind::ModuleHang { stage: Stage::Planning },
                window: WindowSpec::burst(2, 8),
            }),
        ];
        let outcomes = [
            Outcome::Safe,
            Outcome::Hazard { scene: 12 },
            Outcome::Collision { scene: 44, actor: 3 },
        ];
        for (i, (fault, outcome)) in faults.iter().zip(outcomes.iter().cycle()).enumerate() {
            let record =
                CampaignRecord { fault: *fault, outcome: *outcome, ..sample_record(i as u64) };
            let mut buf = Vec::new();
            record.encode(&mut buf);
            assert_eq!(CampaignRecord::decode(&buf), Ok(record));
        }
    }

    #[test]
    fn corrupt_tags_are_rejected_not_misread() {
        let mut buf = Vec::new();
        sample_record(0).encode(&mut buf);
        // Fault tag byte is at offset 20.
        buf[20] = 99;
        assert!(CampaignRecord::decode(&buf).is_err());
        let mut buf2 = Vec::new();
        sample_record(0).encode(&mut buf2);
        assert!(CampaignRecord::decode(&buf2[..PAYLOAD_LEN - 1]).is_err());
    }
}
