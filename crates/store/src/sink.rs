//! The [`CampaignSink`] adapter: stream engine results straight to disk.

use crate::record::CampaignRecord;
use crate::store::StoreWriter;
use crate::StoreError;
use drivefi_fault::FaultSpec;
use drivefi_sim::{CampaignResult, CampaignSink};

/// The per-job identity a [`CampaignRecord`] needs beyond what the
/// engine result carries: which scenario the job drove and which fault
/// it armed. Built once per campaign, indexed by plan-level job index
/// (see `drivefi_core::pick_record_metas` / `golden_record_metas`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecordMeta {
    /// Scenario id within the plan's suite.
    pub scenario_id: u32,
    /// Scenario RNG seed.
    pub scenario_seed: u64,
    /// The armed fault, `None` for golden jobs.
    pub fault: Option<FaultSpec>,
}

/// Streams campaign results into a [`StoreWriter`] as they complete.
///
/// Jobs must carry their **plan-level job index** as `CampaignJob::id` —
/// that is the record's merge key and what resume skips by, and it stays
/// stable when a resumed run's submission indices renumber over the
/// pending jobs only. `metas` is indexed by the same job index.
///
/// [`CampaignSink::accept`] cannot return an error, so the first I/O
/// failure is latched and later results are dropped; [`StoreSink::finish`]
/// surfaces it. Everything appended before the failure is on disk.
#[derive(Debug)]
pub struct StoreSink<'a> {
    writer: &'a mut StoreWriter,
    metas: &'a [RecordMeta],
    error: Option<StoreError>,
}

impl<'a> StoreSink<'a> {
    /// A sink appending to `writer`, resolving job identity through
    /// `metas[job index]`.
    pub fn new(writer: &'a mut StoreWriter, metas: &'a [RecordMeta]) -> Self {
        StoreSink { writer, metas, error: None }
    }

    /// Seals the streaming pass: checkpoints the writer and reports the
    /// first append error, if any.
    ///
    /// # Errors
    ///
    /// Returns the first [`StoreError`] hit while streaming, or a
    /// checkpoint I/O failure.
    pub fn finish(self) -> Result<(), StoreError> {
        if let Some(error) = self.error {
            return Err(error);
        }
        self.writer.checkpoint()
    }
}

impl CampaignSink for StoreSink<'_> {
    fn accept(&mut self, _index: u64, result: CampaignResult) {
        if self.error.is_some() {
            return;
        }
        let job = result.id;
        let meta = &self.metas[job as usize];
        // Trace-logging stores persist the run's per-scene trace first,
        // then the outcome record — recovery treats the record as the
        // job's completion marker and demotes it when frames are missing.
        if self.writer.traces_enabled() {
            let Some(trace) = &result.report.trace else {
                self.error = Some(StoreError::new(format!(
                    "job {job} recorded no trace but the store persists traces — run the \
                     campaign with SimConfig::record_trace"
                )));
                return;
            };
            for frame in &trace.frames {
                let record = crate::TraceRecord {
                    job,
                    scenario_id: meta.scenario_id,
                    scenario_seed: meta.scenario_seed,
                    frame: *frame,
                };
                if let Err(e) = self.writer.append_trace(&record) {
                    self.error = Some(e);
                    return;
                }
            }
        }
        let record = CampaignRecord::from_report(job, meta, &result.report);
        // Per-job metrics at the persistence boundary: every store-backed
        // campaign reports throughput without instrumenting the engine.
        // Pure telemetry — gated on `DRIVEFI_OBS`, never part of results.
        use drivefi_obs::metrics::{counter_add, Counter};
        counter_add(Counter::JobsCompleted, 1);
        counter_add(Counter::FramesSimulated, record.scenes);
        counter_add(
            match record.outcome {
                drivefi_sim::Outcome::Safe => Counter::OutcomeSafe,
                drivefi_sim::Outcome::Hazard { .. } => Counter::OutcomeHazard,
                drivefi_sim::Outcome::Collision { .. } => Counter::OutcomeCollision,
            },
            1,
        );
        if let Err(e) = self.writer.append(&record) {
            self.error = Some(e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{open_store, read_store};
    use drivefi_sim::{CampaignEngine, CampaignJob, Outcome, SimConfig};
    use drivefi_world::ScenarioConfig;
    use std::sync::Arc;

    #[test]
    fn engine_results_stream_to_disk() {
        let dir = std::env::temp_dir().join(format!("drivefi-sink-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();

        let scenario = Arc::new(ScenarioConfig::lead_vehicle_cruise(7));
        let jobs: Vec<CampaignJob> = (0..4u64)
            .map(|id| CampaignJob { id, scenario: Arc::clone(&scenario), faults: vec![] })
            .collect();
        let metas: Vec<RecordMeta> = (0..4)
            .map(|_| RecordMeta {
                scenario_id: scenario.id,
                scenario_seed: scenario.seed,
                fault: None,
            })
            .collect();

        let (mut writer, _) = open_store(&dir, 11, 4, 2, 64).unwrap();
        let mut sink = StoreSink::new(&mut writer, &metas);
        CampaignEngine::new(SimConfig::default()).with_workers(2).run(jobs, &mut sink);
        sink.finish().unwrap();
        assert!(writer.finish().unwrap().complete);

        let (_, records) = read_store(&dir).unwrap();
        assert_eq!(records.len(), 4);
        for (job, record) in records.iter().enumerate() {
            assert_eq!(record.job, job as u64);
            assert_eq!(record.scenario_id, scenario.id);
            assert_eq!(record.outcome, Outcome::Safe);
            assert_eq!(record.fault, None);
            assert!(record.scenes > 0);
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
