//! Discrete factors: multidimensional tables over categorical variables.

use crate::network::VarId;

/// A factor `φ(X₁…Xₙ)`: a non-negative table indexed by assignments to an
/// ordered set of discrete variables. Factors are the working currency of
/// variable elimination.
///
/// Values are stored row-major in the order of `vars`: the **last**
/// variable varies fastest.
#[derive(Debug, Clone, PartialEq)]
pub struct Factor {
    vars: Vec<VarId>,
    cards: Vec<usize>,
    values: Vec<f64>,
}

impl Factor {
    /// Creates a factor.
    ///
    /// # Panics
    ///
    /// Panics if `values.len()` differs from the product of cardinalities,
    /// if a cardinality is zero, or if `vars` contains duplicates.
    pub fn new(vars: Vec<VarId>, cards: Vec<usize>, values: Vec<f64>) -> Self {
        assert_eq!(vars.len(), cards.len(), "vars/cards length mismatch");
        assert!(cards.iter().all(|&c| c > 0), "zero cardinality");
        let size: usize = cards.iter().product();
        assert_eq!(values.len(), size, "values length mismatch");
        let mut sorted = vars.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), vars.len(), "duplicate variables in factor");
        Factor { vars, cards, values }
    }

    /// A factor over no variables holding a single value.
    pub fn scalar(value: f64) -> Self {
        Factor { vars: vec![], cards: vec![], values: vec![value] }
    }

    /// The variables of this factor, in storage order.
    pub fn vars(&self) -> &[VarId] {
        &self.vars
    }

    /// The cardinalities, parallel to [`Factor::vars`].
    pub fn cards(&self) -> &[usize] {
        &self.cards
    }

    /// The raw table.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// True when the factor mentions `var`.
    pub fn contains(&self, var: VarId) -> bool {
        self.vars.contains(&var)
    }

    fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1; self.vars.len()];
        for i in (0..self.vars.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.cards[i + 1];
        }
        strides
    }

    /// Flat table index of a full assignment (categories parallel to
    /// `vars`).
    pub fn assignment_index(&self, assignment: &[usize]) -> usize {
        let strides = self.strides();
        assignment.iter().zip(&strides).map(|(a, s)| a * s).sum()
    }

    /// Value at a full assignment (given as categories parallel to
    /// `vars`).
    pub fn value_at(&self, assignment: &[usize]) -> f64 {
        self.values[self.assignment_index(assignment)]
    }

    /// Pointwise product of two factors over the union of their scopes.
    pub fn product(&self, other: &Factor) -> Factor {
        // Union scope: self's vars then other's new vars.
        let mut vars = self.vars.clone();
        let mut cards = self.cards.clone();
        for (v, c) in other.vars.iter().zip(&other.cards) {
            if !vars.contains(v) {
                vars.push(*v);
                cards.push(*c);
            }
        }
        let size: usize = cards.iter().product::<usize>().max(1);
        let mut values = Vec::with_capacity(size);

        // Map union assignment -> index in each input.
        let self_pos: Vec<usize> =
            self.vars.iter().map(|v| vars.iter().position(|u| u == v).unwrap()).collect();
        let other_pos: Vec<usize> =
            other.vars.iter().map(|v| vars.iter().position(|u| u == v).unwrap()).collect();
        let self_strides = self.strides();
        let other_strides = other.strides();

        let mut assignment = vec![0usize; vars.len()];
        for _ in 0..size {
            let si: usize =
                self_pos.iter().zip(&self_strides).map(|(&p, s)| assignment[p] * s).sum();
            let oi: usize =
                other_pos.iter().zip(&other_strides).map(|(&p, s)| assignment[p] * s).sum();
            values.push(self.values[si] * other.values[oi]);
            // Increment mixed-radix counter (last var fastest).
            for d in (0..vars.len()).rev() {
                assignment[d] += 1;
                if assignment[d] < cards[d] {
                    break;
                }
                assignment[d] = 0;
            }
        }
        Factor { vars, cards, values }
    }

    fn eliminate<F: Fn(f64, f64) -> f64>(
        &self,
        var: VarId,
        init: f64,
        combine: F,
    ) -> (Factor, Vec<usize>) {
        let Some(pos) = self.vars.iter().position(|v| *v == var) else {
            return (self.clone(), Vec::new());
        };
        let mut vars = self.vars.clone();
        let mut cards = self.cards.clone();
        let var_card = cards.remove(pos);
        vars.remove(pos);
        let out_size: usize = cards.iter().product::<usize>().max(1);
        let mut values = vec![init; out_size];
        let mut arg = vec![0usize; out_size];

        let strides = self.strides();
        let out_strides = {
            let mut s = vec![1usize; cards.len()];
            for i in (0..cards.len().saturating_sub(1)).rev() {
                s[i] = s[i + 1] * cards[i + 1];
            }
            s
        };

        let mut assignment = vec![0usize; self.vars.len()];
        for idx in 0..self.values.len() {
            // Output index skips the eliminated position.
            let mut oi = 0usize;
            let mut od = 0usize;
            for (d, &a) in assignment.iter().enumerate() {
                if d == pos {
                    continue;
                }
                oi += a * out_strides[od];
                od += 1;
            }
            let v = self.values[idx];
            let cur = values[oi];
            let next = combine(cur, v);
            if next != cur || (assignment[pos] == 0 && var_card > 0) {
                // Track the argmax for max-elimination; harmless for sum.
                if next > cur || assignment[pos] == 0 {
                    arg[oi] = assignment[pos];
                }
            }
            values[oi] = next;
            let _ = strides;
            for d in (0..self.vars.len()).rev() {
                assignment[d] += 1;
                if assignment[d] < self.cards[d] {
                    break;
                }
                assignment[d] = 0;
            }
        }
        (Factor { vars, cards, values }, arg)
    }

    /// Sums out `var`. No-op if the factor does not mention it.
    pub fn marginalize(&self, var: VarId) -> Factor {
        self.eliminate(var, 0.0, |a, b| a + b).0
    }

    /// Maxes out `var`, returning the reduced factor and, for each
    /// remaining assignment, the category of `var` that achieved the max
    /// (the traceback table for MAP queries).
    pub fn max_marginalize(&self, var: VarId) -> (Factor, Vec<usize>) {
        self.eliminate(var, f64::NEG_INFINITY, f64::max)
    }

    /// Fixes `var = value`, dropping it from the scope. No-op if absent.
    pub fn reduce(&self, var: VarId, value: usize) -> Factor {
        let Some(pos) = self.vars.iter().position(|v| *v == var) else {
            return self.clone();
        };
        assert!(value < self.cards[pos], "category out of range");
        let mut vars = self.vars.clone();
        let mut cards = self.cards.clone();
        vars.remove(pos);
        cards.remove(pos);
        let out_size: usize = cards.iter().product::<usize>().max(1);
        let mut values = Vec::with_capacity(out_size);
        let mut assignment = vec![0usize; self.vars.len()];
        assignment[pos] = value;
        let strides = self.strides();
        loop {
            let idx: usize = assignment.iter().zip(&strides).map(|(a, s)| a * s).sum();
            values.push(self.values[idx]);
            // Increment skipping `pos`.
            let mut d = self.vars.len();
            loop {
                if d == 0 {
                    return Factor { vars, cards, values };
                }
                d -= 1;
                if d == pos {
                    continue;
                }
                assignment[d] += 1;
                if assignment[d] < self.cards[d] {
                    break;
                }
                assignment[d] = 0;
            }
        }
    }

    /// Normalizes the table to sum to 1 (no-op for an all-zero table).
    pub fn normalized(&self) -> Factor {
        let total: f64 = self.values.iter().sum();
        if total <= 0.0 {
            return self.clone();
        }
        Factor {
            vars: self.vars.clone(),
            cards: self.cards.clone(),
            values: self.values.iter().map(|v| v / total).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: usize) -> VarId {
        VarId(i)
    }

    #[test]
    fn product_of_independent_factors() {
        let a = Factor::new(vec![v(0)], vec![2], vec![0.3, 0.7]);
        let b = Factor::new(vec![v(1)], vec![2], vec![0.6, 0.4]);
        let p = a.product(&b);
        assert_eq!(p.vars(), &[v(0), v(1)]);
        assert!((p.value_at(&[0, 0]) - 0.18).abs() < 1e-12);
        assert!((p.value_at(&[1, 1]) - 0.28).abs() < 1e-12);
    }

    #[test]
    fn product_with_shared_variable() {
        // φ1(A,B) * φ2(B): entry (a,b) = φ1(a,b)·φ2(b).
        let f1 = Factor::new(vec![v(0), v(1)], vec![2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let f2 = Factor::new(vec![v(1)], vec![2], vec![10.0, 100.0]);
        let p = f1.product(&f2);
        assert_eq!(p.value_at(&[0, 0]), 10.0);
        assert_eq!(p.value_at(&[0, 1]), 200.0);
        assert_eq!(p.value_at(&[1, 0]), 30.0);
        assert_eq!(p.value_at(&[1, 1]), 400.0);
    }

    #[test]
    fn marginalize_sums_out() {
        let f = Factor::new(vec![v(0), v(1)], vec![2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let m = f.marginalize(v(0));
        assert_eq!(m.vars(), &[v(1)]);
        assert_eq!(m.values(), &[4.0, 6.0]);
        let m = f.marginalize(v(1));
        assert_eq!(m.values(), &[3.0, 7.0]);
    }

    #[test]
    fn reduce_slices_the_table() {
        let f = Factor::new(vec![v(0), v(1)], vec![2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let r = f.reduce(v(0), 1);
        assert_eq!(r.vars(), &[v(1)]);
        assert_eq!(r.values(), &[4.0, 5.0, 6.0]);
        let r = f.reduce(v(1), 2);
        assert_eq!(r.values(), &[3.0, 6.0]);
    }

    #[test]
    fn max_marginalize_tracks_argmax() {
        let f = Factor::new(vec![v(0), v(1)], vec![2, 2], vec![1.0, 5.0, 4.0, 2.0]);
        let (m, arg) = f.max_marginalize(v(0));
        assert_eq!(m.values(), &[4.0, 5.0]);
        // For v1=0 the max came from v0=1; for v1=1 from v0=0.
        assert_eq!(arg, vec![1, 0]);
    }

    #[test]
    fn normalize_sums_to_one() {
        let f = Factor::new(vec![v(0)], vec![4], vec![1.0, 1.0, 1.0, 1.0]).normalized();
        assert!(f.values().iter().all(|&x| (x - 0.25).abs() < 1e-12));
    }

    #[test]
    fn scalar_factor_product() {
        let f = Factor::new(vec![v(0)], vec![2], vec![0.5, 0.5]);
        let s = Factor::scalar(2.0);
        let p = f.product(&s);
        assert_eq!(p.values(), &[1.0, 1.0]);
    }

    #[test]
    fn marginalize_absent_var_is_noop() {
        let f = Factor::new(vec![v(0)], vec![2], vec![0.5, 0.5]);
        assert_eq!(f.marginalize(v(9)), f);
    }

    #[test]
    #[should_panic(expected = "values length mismatch")]
    fn bad_table_size_panics() {
        let _ = Factor::new(vec![v(0)], vec![3], vec![0.5, 0.5]);
    }

    #[test]
    fn three_way_product_and_full_marginal() {
        let a = Factor::new(vec![v(0)], vec![2], vec![0.25, 0.75]);
        let b = Factor::new(vec![v(0), v(1)], vec![2, 2], vec![0.9, 0.1, 0.3, 0.7]);
        let joint = a.product(&b);
        let total = joint.marginalize(v(0)).marginalize(v(1));
        assert!((total.values()[0] - 1.0).abs() < 1e-12);
    }
}
