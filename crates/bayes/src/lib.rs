//! Discrete Bayesian networks with exact inference and do-calculus.
//!
//! This crate is the probabilistic substrate of DriveFI's "ML-based fault
//! controller" (paper §III-B): it provides
//!
//! * discrete **factors** and **conditional probability tables** (CPTs),
//! * **Bayesian networks** over discrete variables with DAG validation,
//! * exact inference by **variable elimination** (sum-product posteriors
//!   and max-product joint MAP with traceback),
//! * **interventions** (`do(·)` in Pearl's calculus): graph surgery that
//!   severs a node from its parents and pins its value, which is exactly
//!   how the paper models a fault injection inside the network,
//! * **maximum-likelihood CPD learning** from complete data with
//!   Laplace smoothing,
//! * a **quantile discretizer** for mapping continuous ADS traces onto
//!   the discrete networks,
//! * a **dynamic BN template** that unrolls into the paper's 3-slice
//!   temporal Bayesian network (3-TBN, Fig. 6),
//! * **approximate inference** (forward sampling, likelihood weighting,
//!   Gibbs) with the same intervention semantics, and
//! * **structure scoring** (log-likelihood, BIC) to compare the
//!   architecture-derived topology against ablated alternatives.
//!
//! # Example
//!
//! ```
//! use drivefi_bayes::{BayesNet, Cpt, Evidence};
//!
//! // Rain -> WetGrass
//! let mut net = BayesNet::new();
//! let rain = net.add_variable("rain", 2);
//! let wet = net.add_variable("wet", 2);
//! net.set_cpt(Cpt::new(rain, vec![], vec![0.8, 0.2])).unwrap();
//! net.set_cpt(Cpt::new(wet, vec![rain], vec![0.9, 0.1, 0.2, 0.8])).unwrap();
//!
//! // P(rain | wet = true)
//! let posterior = net.posterior(rain, &Evidence::from([(wet, 1)])).unwrap();
//! assert!((posterior[1] - 0.6666).abs() < 1e-3);
//! ```

pub mod dbn;
pub mod discretize;
pub mod factor;
pub mod learn;
pub mod network;
pub mod sampling;
pub mod score;

pub use dbn::{DbnTemplate, SliceVar, TemporalEdge, UnrolledDbn};
pub use discretize::Discretizer;
pub use factor::Factor;
pub use learn::fit_cpts;
pub use network::{BayesNet, Cpt, VarId};
pub use sampling::{forward_sample, gibbs_posterior, likelihood_weighting, SampleOpts};
pub use score::{dimension, fit_and_score, log_likelihood, StructureScore};

use std::collections::BTreeMap;

/// An assignment of observed values to variables: `var -> category`.
pub type Evidence = BTreeMap<VarId, usize>;

/// Errors produced by network construction and inference.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BayesError {
    /// A referenced variable does not exist in the network.
    UnknownVariable(VarId),
    /// A CPT's table length does not match the variable cardinalities.
    BadTableSize {
        /// Variable the CPT is for.
        var: VarId,
        /// Expected number of entries.
        expected: usize,
        /// Provided number of entries.
        got: usize,
    },
    /// A CPT row does not sum to 1 (beyond tolerance).
    UnnormalizedRow {
        /// Variable the CPT is for.
        var: VarId,
        /// Index of the offending parent configuration.
        row: usize,
    },
    /// The network graph contains a directed cycle.
    CyclicGraph,
    /// A variable has no CPT attached.
    MissingCpt(VarId),
    /// An evidence/intervention value is out of the variable's range.
    BadCategory {
        /// The variable.
        var: VarId,
        /// The rejected category index.
        value: usize,
    },
}

impl std::fmt::Display for BayesError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BayesError::UnknownVariable(v) => write!(f, "unknown variable {v:?}"),
            BayesError::BadTableSize { var, expected, got } => {
                write!(f, "cpt for {var:?} has {got} entries, expected {expected}")
            }
            BayesError::UnnormalizedRow { var, row } => {
                write!(f, "cpt row {row} for {var:?} does not sum to 1")
            }
            BayesError::CyclicGraph => write!(f, "network graph contains a cycle"),
            BayesError::MissingCpt(v) => write!(f, "variable {v:?} has no cpt"),
            BayesError::BadCategory { var, value } => {
                write!(f, "category {value} out of range for {var:?}")
            }
        }
    }
}

impl std::error::Error for BayesError {}
