//! Dynamic Bayesian networks: a slice template unrolled over time.
//!
//! The paper models the ADS with a **3-Temporal Bayesian Network** — a
//! DBN unfolded three times (Fig. 6), with identical topology per slice,
//! intra-slice edges mirroring the ADS dataflow (`W → U_A → A`,
//! `M → U_A`) and inter-slice edges carrying dynamics
//! (`M_{t-1} → M_t`, `A_{t-1} → M_t`, `W_{t-1} → W_t`).

use crate::network::{BayesNet, VarId};

/// The product of [`DbnTemplate::unroll`]: the (CPT-less) network, the
/// id map `ids[slice][template]`, and the `(child, parents)` learning
/// structure suitable for [`crate::fit_cpts`].
pub type UnrolledDbn = (BayesNet, Vec<Vec<VarId>>, Vec<(VarId, Vec<VarId>)>);

/// Index of a variable within the slice template.
pub type TemplateVar = usize;

/// An inter-slice edge: `from` in slice `t-1` is a parent of `to` in
/// slice `t`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TemporalEdge {
    /// Parent template variable (previous slice).
    pub from: TemplateVar,
    /// Child template variable (next slice).
    pub to: TemplateVar,
}

/// A variable of the slice template.
#[derive(Debug, Clone)]
pub struct SliceVar {
    /// Base name; slice `t` instances are named `"{name}@{t}"`.
    pub name: String,
    /// Cardinality.
    pub card: usize,
}

/// A DBN template: per-slice variables, intra-slice edges, and
/// inter-slice (temporal) edges.
#[derive(Debug, Clone, Default)]
pub struct DbnTemplate {
    vars: Vec<SliceVar>,
    intra: Vec<(TemplateVar, TemplateVar)>,
    inter: Vec<TemporalEdge>,
}

impl DbnTemplate {
    /// Creates an empty template.
    pub fn new() -> Self {
        DbnTemplate::default()
    }

    /// Adds a template variable.
    pub fn add_variable(&mut self, name: &str, card: usize) -> TemplateVar {
        self.vars.push(SliceVar { name: name.to_owned(), card });
        self.vars.len() - 1
    }

    /// Adds an intra-slice edge `parent → child`.
    ///
    /// # Panics
    ///
    /// Panics on unknown indices or a self-loop.
    pub fn add_intra_edge(&mut self, parent: TemplateVar, child: TemplateVar) {
        assert!(parent < self.vars.len() && child < self.vars.len(), "unknown template var");
        assert_ne!(parent, child, "self-loop");
        self.intra.push((parent, child));
    }

    /// Adds an inter-slice edge `parent@{t-1} → child@{t}` (self-edges
    /// allowed: `M_{t-1} → M_t`).
    ///
    /// # Panics
    ///
    /// Panics on unknown indices.
    pub fn add_inter_edge(&mut self, from: TemplateVar, to: TemplateVar) {
        assert!(from < self.vars.len() && to < self.vars.len(), "unknown template var");
        self.inter.push(TemporalEdge { from, to });
    }

    /// Template variables.
    pub fn variables(&self) -> &[SliceVar] {
        &self.vars
    }

    /// Unrolls the template over `slices` time steps.
    ///
    /// Returns the (CPT-less) network, the id map `ids[slice][template]`,
    /// and the learning structure `(child, parents)` suitable for
    /// [`crate::fit_cpts`]. Slice-0 variables have only intra-slice
    /// parents; later slices add the temporal parents.
    ///
    /// # Panics
    ///
    /// Panics if `slices == 0`.
    pub fn unroll(&self, slices: usize) -> UnrolledDbn {
        assert!(slices > 0, "need at least one slice");
        let mut net = BayesNet::new();
        let mut ids: Vec<Vec<VarId>> = Vec::with_capacity(slices);
        for t in 0..slices {
            let mut slice_ids = Vec::with_capacity(self.vars.len());
            for v in &self.vars {
                slice_ids.push(net.add_variable(&format!("{}@{}", v.name, t), v.card));
            }
            ids.push(slice_ids);
        }
        let mut structure = Vec::with_capacity(slices * self.vars.len());
        for (t, slice) in ids.iter().enumerate() {
            for (tv, &var) in slice.iter().enumerate() {
                let mut parents: Vec<VarId> =
                    self.intra.iter().filter(|(_, c)| *c == tv).map(|(p, _)| slice[*p]).collect();
                if t > 0 {
                    parents.extend(
                        self.inter.iter().filter(|e| e.to == tv).map(|e| ids[t - 1][e.from]),
                    );
                }
                structure.push((var, parents));
            }
        }
        (net, ids, structure)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{fit_cpts, Evidence};

    /// A two-variable chain: X drives Y within a slice; X persists across
    /// slices.
    fn chain_template() -> (DbnTemplate, TemplateVar, TemplateVar) {
        let mut t = DbnTemplate::new();
        let x = t.add_variable("x", 2);
        let y = t.add_variable("y", 2);
        t.add_intra_edge(x, y);
        t.add_inter_edge(x, x);
        (t, x, y)
    }

    #[test]
    fn unroll_names_and_counts() {
        let (t, _, _) = chain_template();
        let (net, ids, structure) = t.unroll(3);
        assert_eq!(net.len(), 6);
        assert_eq!(ids.len(), 3);
        assert_eq!(net.name(ids[0][0]), "x@0");
        assert_eq!(net.name(ids[2][1]), "y@2");
        assert_eq!(structure.len(), 6);
    }

    #[test]
    fn slice0_has_no_temporal_parents() {
        let (t, x, y) = chain_template();
        let (_net, ids, structure) = t.unroll(3);
        let find = |v| structure.iter().find(|(c, _)| *c == v).unwrap().1.clone();
        assert!(find(ids[0][x]).is_empty());
        assert_eq!(find(ids[0][y]), vec![ids[0][x]]);
        assert_eq!(find(ids[1][x]), vec![ids[0][x]]);
        assert_eq!(find(ids[2][x]), vec![ids[1][x]]);
    }

    #[test]
    fn learned_dbn_propagates_persistence() {
        let (t, x, y) = chain_template();
        let (mut net, ids, structure) = t.unroll(3);
        // Synthetic trajectories: x flips rarely (90% persist); y = x with
        // 10% noise.
        let mut rows = Vec::new();
        for i in 0..500usize {
            let mut xs = [0usize; 3];
            xs[0] = usize::from(i % 2 == 0);
            for s in 1..3 {
                let persist = i % 10 != s;
                xs[s] = if persist { xs[s - 1] } else { 1 - xs[s - 1] };
            }
            let mut row = vec![0usize; 6];
            for s in 0..3 {
                row[ids[s][x].0] = xs[s];
                row[ids[s][y].0] = if i % 10 == 9 { 1 - xs[s] } else { xs[s] };
            }
            rows.push(row);
        }
        fit_cpts(&mut net, &structure, &rows, 1.0).unwrap();
        // Observing y@0 = 1 should make x@2 = 1 the MAP (persistence).
        let e = Evidence::from([(ids[0][y], 1)]);
        let map = net.map_category(ids[2][x], &e, &Evidence::new()).unwrap();
        assert_eq!(map, 1);
        // And an intervention do(x@1 = 0) should flip the forecast.
        let i = Evidence::from([(ids[1][x], 0)]);
        let map = net.map_category(ids[2][x], &e, &i).unwrap();
        assert_eq!(map, 0);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn intra_self_loop_panics() {
        let mut t = DbnTemplate::new();
        let x = t.add_variable("x", 2);
        t.add_intra_edge(x, x);
    }
}
