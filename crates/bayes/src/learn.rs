//! Maximum-likelihood CPD learning from complete discrete data.

use crate::network::{BayesNet, Cpt, VarId};
use crate::BayesError;

/// Fits the CPT of every variable in `net` from complete data rows by
/// Laplace-smoothed maximum likelihood.
///
/// `structure` gives the parent set per variable; `rows` are complete
/// assignments indexed by `VarId.0`. `alpha` is the Dirichlet smoothing
/// pseudo-count (use 1.0 for classic Laplace).
///
/// # Errors
///
/// Returns an error if a CPT fails validation (e.g. the structure is
/// cyclic).
///
/// # Panics
///
/// Panics if a row is shorter than the variable count or contains
/// out-of-range categories.
pub fn fit_cpts(
    net: &mut BayesNet,
    structure: &[(VarId, Vec<VarId>)],
    rows: &[Vec<usize>],
    alpha: f64,
) -> Result<(), BayesError> {
    for (child, parents) in structure {
        let child_card = net.cardinality(*child);
        let parent_cards: Vec<usize> = parents.iter().map(|p| net.cardinality(*p)).collect();
        let parent_size: usize = parent_cards.iter().product::<usize>().max(1);
        let mut counts = vec![alpha; parent_size * child_card];
        for row in rows {
            assert!(row.len() >= net.len(), "row shorter than variable count");
            let cv = row[child.0];
            assert!(cv < child_card, "category out of range in data");
            let mut pr = 0usize;
            for (p, &pc) in parents.iter().zip(&parent_cards) {
                let pv = row[p.0];
                assert!(pv < pc, "parent category out of range in data");
                pr = pr * pc + pv;
            }
            counts[pr * child_card + cv] += 1.0;
        }
        // Normalize per parent configuration.
        for r in 0..parent_size {
            let row = &mut counts[r * child_card..(r + 1) * child_card];
            let total: f64 = row.iter().sum();
            for v in row {
                *v /= total;
            }
        }
        net.set_cpt(Cpt::new(*child, parents.clone(), counts))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Evidence;

    #[test]
    fn recovers_known_conditional() {
        // A -> B with P(A=1)=0.25, P(B=1|A=0)=0.2, P(B=1|A=1)=0.9.
        let mut net = BayesNet::new();
        let a = net.add_variable("a", 2);
        let b = net.add_variable("b", 2);
        let mut rows = Vec::new();
        // Deterministic synthetic sample with exact frequencies.
        for i in 0..400usize {
            let av = usize::from(i % 4 == 0); // 25% a=1
            let bv = if av == 1 {
                // Among i ≡ 0 (mod 4), exactly the multiples of 40 (10 of
                // 100) yield 0 → P(B=1|A=1) = 0.9.
                usize::from(i % 40 != 0)
            } else {
                // Among i ≢ 0 (mod 4), multiples of 5 are 60 of 300 →
                // P(B=1|A=0) = 0.2.
                usize::from(i % 5 == 0)
            };
            rows.push(vec![av, bv]);
        }
        fit_cpts(&mut net, &[(a, vec![]), (b, vec![a])], &rows, 0.0).unwrap();
        let pa = net.posterior(a, &Evidence::new()).unwrap();
        assert!((pa[1] - 0.25).abs() < 0.01, "{pa:?}");
        let pb_a1 = net.posterior(b, &Evidence::from([(a, 1)])).unwrap();
        assert!((pb_a1[1] - 0.9).abs() < 0.02, "{pb_a1:?}");
        let pb_a0 = net.posterior(b, &Evidence::from([(a, 0)])).unwrap();
        assert!((pb_a0[1] - 0.2).abs() < 0.02, "{pb_a0:?}");
    }

    #[test]
    fn laplace_smoothing_avoids_zeros() {
        let mut net = BayesNet::new();
        let a = net.add_variable("a", 2);
        // All observations are a=0; with alpha=1 the other category keeps
        // nonzero mass.
        let rows = vec![vec![0usize]; 10];
        fit_cpts(&mut net, &[(a, vec![])], &rows, 1.0).unwrap();
        let pa = net.posterior(a, &Evidence::new()).unwrap();
        assert!(pa[1] > 0.0);
        assert!((pa[1] - 1.0 / 12.0).abs() < 1e-9);
    }

    #[test]
    fn unseen_parent_rows_are_uniform() {
        let mut net = BayesNet::new();
        let a = net.add_variable("a", 2);
        let b = net.add_variable("b", 3);
        // Only a=0 ever appears; rows for a=1 must become uniform.
        let rows = vec![vec![0usize, 1usize]; 20];
        fit_cpts(&mut net, &[(a, vec![]), (b, vec![a])], &rows, 1.0).unwrap();
        let pb = net.posterior(b, &Evidence::from([(a, 1)])).unwrap();
        for v in pb {
            assert!((v - 1.0 / 3.0).abs() < 1e-9);
        }
    }

    #[test]
    fn empty_data_with_smoothing_is_uniform() {
        let mut net = BayesNet::new();
        let a = net.add_variable("a", 4);
        fit_cpts(&mut net, &[(a, vec![])], &[], 1.0).unwrap();
        let pa = net.posterior(a, &Evidence::new()).unwrap();
        assert!(pa.iter().all(|&p| (p - 0.25).abs() < 1e-9));
    }
}
