//! Structure scoring: how well a network topology explains data.
//!
//! The paper derives its 3-TBN topology from the ADS architecture
//! (Fig. 1 → Fig. 6) rather than learning it from data. This module
//! provides the machinery to *defend* that choice quantitatively: the
//! log-likelihood and BIC score of a candidate structure against the
//! golden traces, so the architecture-derived topology can be compared
//! against ablated alternatives (no temporal edges, fully disconnected,
//! reversed causality) in the structure-ablation experiment.
//!
//! Scores follow the standard decomposable form: for structure `G` with
//! parent sets `pa_G(X)` and data `D` of `N` complete rows,
//!
//! ```text
//! LL(G : D)  = Σ_rows Σ_X log P̂(x | pa_G(x))
//! BIC(G : D) = LL(G : D) − (log N / 2) · dim(G)
//! ```
//!
//! where `dim(G)` counts the free parameters `Σ_X (|X| − 1) · Π |pa|`.

use crate::network::{BayesNet, VarId};
use crate::BayesError;

/// A scored decomposition per variable, plus the totals.
#[derive(Debug, Clone, PartialEq)]
pub struct StructureScore {
    /// Total data log-likelihood under the fitted CPTs.
    pub log_likelihood: f64,
    /// Number of free parameters of the structure.
    pub dimension: usize,
    /// Bayesian information criterion: `LL − (ln N / 2)·dim`.
    pub bic: f64,
    /// Number of data rows scored.
    pub rows: usize,
    /// Per-variable log-likelihood contributions (indexed by `VarId.0`).
    pub per_variable: Vec<f64>,
}

/// Number of free parameters in the network's CPTs.
///
/// # Errors
///
/// Returns [`BayesError::MissingCpt`] if any variable lacks a CPT.
pub fn dimension(net: &BayesNet) -> Result<usize, BayesError> {
    let mut dim = 0usize;
    for var in net.variables() {
        let cpt = net.cpt(var).ok_or(BayesError::MissingCpt(var))?;
        let parent_size: usize = cpt.parents.iter().map(|p| net.cardinality(*p)).product();
        dim += (net.cardinality(var) - 1) * parent_size.max(1);
    }
    Ok(dim)
}

/// Log-likelihood of complete data rows under the network's fitted CPTs.
///
/// Rows are complete assignments indexed by `VarId.0` (the same layout
/// [`crate::learn::fit_cpts`] consumes). Zero-probability entries
/// contribute `ln(ε)` with `ε = 1e-300` instead of `-∞`, so ablated
/// structures that assign zero mass to observed rows score abysmally but
/// finitely.
///
/// # Errors
///
/// Returns an error when a CPT is missing or a row is malformed.
pub fn log_likelihood(net: &BayesNet, rows: &[Vec<usize>]) -> Result<StructureScore, BayesError> {
    const EPS: f64 = 1e-300;
    let mut per_variable = vec![0.0f64; net.len()];
    for row in rows {
        for var in net.variables() {
            let cpt = net.cpt(var).ok_or(BayesError::MissingCpt(var))?;
            let card = net.cardinality(var);
            let value = *row.get(var.0).ok_or(BayesError::UnknownVariable(var))?;
            if value >= card {
                return Err(BayesError::BadCategory { var, value });
            }
            let mut pr = 0usize;
            for p in &cpt.parents {
                let pv = *row.get(p.0).ok_or(BayesError::UnknownVariable(*p))?;
                if pv >= net.cardinality(*p) {
                    return Err(BayesError::BadCategory { var: *p, value: pv });
                }
                pr = pr * net.cardinality(*p) + pv;
            }
            per_variable[var.0] += cpt.table[pr * card + value].max(EPS).ln();
        }
    }
    let ll: f64 = per_variable.iter().sum();
    let dim = dimension(net)?;
    let n = rows.len();
    let bic = ll - (n.max(1) as f64).ln() / 2.0 * dim as f64;
    Ok(StructureScore { log_likelihood: ll, dimension: dim, bic, rows: n, per_variable })
}

/// Fits a structure to data and scores it in one step: builds CPTs by
/// Laplace-smoothed maximum likelihood over `rows`, then computes the
/// BIC on the same rows (the usual in-sample structure-selection score).
///
/// # Errors
///
/// Propagates fitting and scoring failures (cyclic structure, malformed
/// rows).
pub fn fit_and_score(
    net: &mut BayesNet,
    structure: &[(VarId, Vec<VarId>)],
    rows: &[Vec<usize>],
    alpha: f64,
) -> Result<StructureScore, BayesError> {
    crate::learn::fit_cpts(net, structure, rows, alpha)?;
    log_likelihood(net, rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Synthetic data from A -> B: strongly dependent.
    fn dependent_rows(n: usize, seed: u64) -> Vec<Vec<usize>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let a = usize::from(rng.random_bool(0.5));
                let b = if a == 1 {
                    usize::from(rng.random_bool(0.95))
                } else {
                    usize::from(rng.random_bool(0.05))
                };
                vec![a, b]
            })
            .collect()
    }

    fn two_var_net() -> (BayesNet, VarId, VarId) {
        let mut net = BayesNet::new();
        let a = net.add_variable("a", 2);
        let b = net.add_variable("b", 2);
        (net, a, b)
    }

    #[test]
    fn dimension_counts_free_parameters() {
        let (mut net, a, b) = two_var_net();
        crate::learn::fit_cpts(&mut net, &[(a, vec![]), (b, vec![a])], &dependent_rows(50, 1), 1.0)
            .unwrap();
        // a: 1 free param; b|a: 2 rows × 1 = 2 → 3 total.
        assert_eq!(dimension(&net).unwrap(), 3);
    }

    #[test]
    fn true_structure_beats_empty_on_dependent_data() {
        let rows = dependent_rows(2_000, 7);
        let (mut linked, a, b) = two_var_net();
        let linked_score =
            fit_and_score(&mut linked, &[(a, vec![]), (b, vec![a])], &rows, 1.0).unwrap();
        let (mut empty, a2, b2) = two_var_net();
        let empty_score =
            fit_and_score(&mut empty, &[(a2, vec![]), (b2, vec![])], &rows, 1.0).unwrap();
        assert!(
            linked_score.bic > empty_score.bic,
            "BIC should favor the true structure: {} vs {}",
            linked_score.bic,
            empty_score.bic
        );
        assert!(linked_score.log_likelihood > empty_score.log_likelihood);
    }

    #[test]
    fn bic_penalizes_spurious_edges_on_independent_data() {
        let mut rng = StdRng::seed_from_u64(13);
        let rows: Vec<Vec<usize>> = (0..2_000)
            .map(|_| vec![usize::from(rng.random_bool(0.5)), usize::from(rng.random_bool(0.5))])
            .collect();
        let (mut linked, a, b) = two_var_net();
        let linked_score =
            fit_and_score(&mut linked, &[(a, vec![]), (b, vec![a])], &rows, 1.0).unwrap();
        let (mut empty, a2, b2) = two_var_net();
        let empty_score =
            fit_and_score(&mut empty, &[(a2, vec![]), (b2, vec![])], &rows, 1.0).unwrap();
        assert!(
            empty_score.bic > linked_score.bic,
            "BIC should prune the spurious edge: {} vs {}",
            empty_score.bic,
            linked_score.bic
        );
    }

    #[test]
    fn log_likelihood_decomposes() {
        let rows = dependent_rows(300, 3);
        let (mut net, a, b) = two_var_net();
        let score = fit_and_score(&mut net, &[(a, vec![]), (b, vec![a])], &rows, 1.0).unwrap();
        let sum: f64 = score.per_variable.iter().sum();
        assert!((sum - score.log_likelihood).abs() < 1e-9);
        assert_eq!(score.rows, 300);
    }

    #[test]
    fn impossible_rows_score_finite() {
        let (mut net, a, b) = two_var_net();
        // Fit on all-zeros with no smoothing → P(1) = 0 exactly.
        let zeros = vec![vec![0usize, 0usize]; 10];
        crate::learn::fit_cpts(&mut net, &[(a, vec![]), (b, vec![])], &zeros, 0.0).unwrap();
        let score = log_likelihood(&net, &[vec![1, 1]]).unwrap();
        assert!(score.log_likelihood.is_finite());
        assert!(score.log_likelihood < -100.0);
    }

    #[test]
    fn malformed_rows_are_rejected() {
        let (mut net, a, b) = two_var_net();
        crate::learn::fit_cpts(&mut net, &[(a, vec![]), (b, vec![a])], &dependent_rows(20, 9), 1.0)
            .unwrap();
        assert!(matches!(log_likelihood(&net, &[vec![0, 5]]), Err(BayesError::BadCategory { .. })));
        assert!(matches!(log_likelihood(&net, &[vec![0]]), Err(BayesError::UnknownVariable(_))));
    }
}
