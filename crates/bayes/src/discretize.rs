//! Quantile discretization of continuous signals.

/// Maps a continuous signal onto `k` categories using quantile bin edges
/// learned from data, and back to representative values (bin medians).
///
/// DriveFI's 3-TBN is discrete; golden-run traces of each ADS variable
/// are discretized with one of these before CPD fitting, and MAP
/// categories are mapped back through [`Discretizer::representative`]
/// when reconstructing the kinematic state for the δ̂ computation.
#[derive(Debug, Clone, PartialEq)]
pub struct Discretizer {
    /// Interior bin edges, ascending (`k-1` edges for `k` bins).
    edges: Vec<f64>,
    /// Representative value (median of training points) per bin.
    reps: Vec<f64>,
}

impl Discretizer {
    /// Fits a `bins`-category discretizer to `data` by quantiles.
    /// Degenerate data (constant, or fewer distinct values than bins)
    /// yields fewer effective bins, which is handled gracefully.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `data` is empty or contains non-finite
    /// values.
    pub fn fit(data: &[f64], bins: usize) -> Self {
        assert!(bins > 0, "need at least one bin");
        assert!(!data.is_empty(), "cannot fit a discretizer to no data");
        assert!(data.iter().all(|x| x.is_finite()), "non-finite training data");
        let mut sorted = data.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));

        let mut edges = Vec::with_capacity(bins.saturating_sub(1));
        for i in 1..bins {
            let q = i as f64 / bins as f64;
            let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
            edges.push(sorted[idx]);
        }
        edges.dedup_by(|a, b| (*a - *b).abs() < 1e-12);
        // An edge at (or above) the data maximum would create an empty
        // top bin (values equal to the edge fall below it); drop such
        // edges so degenerate data collapses cleanly.
        let max = sorted[sorted.len() - 1];
        edges.retain(|&e| e < max);

        // Representatives: median of points in each bin; fall back to the
        // midpoint of neighbors when a bin is empty.
        let k = edges.len() + 1;
        let mut bucket: Vec<Vec<f64>> = vec![Vec::new(); k];
        for &x in &sorted {
            let b = edges.partition_point(|&e| e < x);
            bucket[b].push(x);
        }
        let mut reps = Vec::with_capacity(k);
        for (i, b) in bucket.iter().enumerate() {
            if b.is_empty() {
                let lo = if i == 0 { sorted[0] } else { edges[i - 1] };
                let hi = if i == k - 1 { sorted[sorted.len() - 1] } else { edges[i] };
                reps.push((lo + hi) / 2.0);
            } else {
                reps.push(b[b.len() / 2]);
            }
        }
        Discretizer { edges, reps }
    }

    /// Number of categories.
    pub fn bins(&self) -> usize {
        self.reps.len()
    }

    /// Category of a value (values beyond the training range clamp to the
    /// outermost bins; non-finite values clamp by sign).
    pub fn transform(&self, x: f64) -> usize {
        if x.is_nan() {
            return 0;
        }
        self.edges.partition_point(|&e| e < x)
    }

    /// Representative continuous value of a category.
    ///
    /// # Panics
    ///
    /// Panics if `category >= self.bins()`.
    pub fn representative(&self, category: usize) -> f64 {
        self.reps[category]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quartiles_of_uniform_ramp() {
        let data: Vec<f64> = (0..100).map(f64::from).collect();
        let d = Discretizer::fit(&data, 4);
        assert_eq!(d.bins(), 4);
        assert_eq!(d.transform(0.0), 0);
        assert_eq!(d.transform(30.0), 1);
        assert_eq!(d.transform(60.0), 2);
        assert_eq!(d.transform(99.0), 3);
    }

    #[test]
    fn out_of_range_clamps() {
        let data: Vec<f64> = (0..100).map(f64::from).collect();
        let d = Discretizer::fit(&data, 4);
        assert_eq!(d.transform(-1e9), 0);
        assert_eq!(d.transform(1e9), 3);
        assert_eq!(d.transform(f64::NEG_INFINITY), 0);
        assert_eq!(d.transform(f64::INFINITY), 3);
    }

    #[test]
    fn representative_lies_in_bin() {
        let data: Vec<f64> = (0..1000).map(|i| (i as f64) / 10.0).collect();
        let d = Discretizer::fit(&data, 8);
        for b in 0..d.bins() {
            let r = d.representative(b);
            assert_eq!(d.transform(r), b, "representative of bin {b} maps elsewhere");
        }
    }

    #[test]
    fn constant_data_collapses_to_one_bin() {
        let d = Discretizer::fit(&[5.0; 50], 8);
        assert_eq!(d.bins(), 1);
        assert_eq!(d.transform(5.0), 0);
        assert_eq!(d.representative(0), 5.0);
    }

    #[test]
    fn round_trip_error_is_bounded() {
        let data: Vec<f64> = (0..500).map(|i| (i as f64 * 0.37).sin() * 10.0).collect();
        let d = Discretizer::fit(&data, 16);
        for &x in &data {
            let err = (d.representative(d.transform(x)) - x).abs();
            assert!(err < 2.5, "round-trip error {err} too large for {x}");
        }
    }

    #[test]
    fn skewed_data_gets_dense_bins_in_dense_region() {
        // 90% of mass near 0, 10% spread to 100.
        let mut data: Vec<f64> = (0..900).map(|i| i as f64 / 1000.0).collect();
        data.extend((0..100).map(|i| 1.0 + i as f64));
        let d = Discretizer::fit(&data, 10);
        // Most edges should be below 1.0.
        let below = (0..d.bins() - 1).filter(|&i| d.representative(i) < 1.0).count();
        assert!(below >= 7, "quantile binning should focus on the dense region");
    }
}
