//! Approximate inference by Monte-Carlo sampling.
//!
//! Variable elimination ([`BayesNet::posterior_do`]) is exact but its cost
//! grows with treewidth; the paper leans on "rapid probabilistic
//! inference" being much cheaper than re-simulation, and this module
//! quantifies the other side of that trade: sampling estimators whose
//! cost is linear in network size regardless of topology.
//!
//! Three estimators are provided, each supporting Pearl interventions
//! (`do(·)`) through graph mutilation exactly as the exact engine does:
//!
//! * **forward (prior) sampling** — ancestral sampling of the full joint;
//!   the building block for the other two (and for rejection sampling).
//! * **likelihood weighting** — forward sampling with evidence variables
//!   pinned and weighted by their likelihood; unbiased, no burn-in, but
//!   degrades when evidence is improbable.
//! * **Gibbs sampling** — a Markov-chain sweep over the Markov blanket
//!   conditionals; handles low-probability evidence gracefully at the
//!   cost of burn-in and autocorrelation.
//!
//! # Example
//!
//! ```
//! use drivefi_bayes::{BayesNet, Cpt, Evidence};
//! use drivefi_bayes::sampling::{likelihood_weighting, SampleOpts};
//!
//! let mut net = BayesNet::new();
//! let rain = net.add_variable("rain", 2);
//! let wet = net.add_variable("wet", 2);
//! net.set_cpt(Cpt::new(rain, vec![], vec![0.8, 0.2])).unwrap();
//! net.set_cpt(Cpt::new(wet, vec![rain], vec![0.9, 0.1, 0.2, 0.8])).unwrap();
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! # use rand::SeedableRng;
//! let est = likelihood_weighting(
//!     &net,
//!     rain,
//!     &Evidence::from([(wet, 1)]),
//!     &Evidence::new(),
//!     &SampleOpts::new(20_000),
//!     &mut rng,
//! ).unwrap();
//! assert!((est[1] - 2.0 / 3.0).abs() < 0.02);
//! ```

use crate::network::{BayesNet, VarId};
use crate::{BayesError, Evidence};
use rand::Rng;

/// Options shared by the sampling estimators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SampleOpts {
    /// Number of retained samples.
    pub samples: usize,
    /// Burn-in sweeps discarded before retention (Gibbs only).
    pub burn_in: usize,
    /// Keep every `thin`-th sweep after burn-in (Gibbs only; 1 = all).
    pub thin: usize,
}

impl SampleOpts {
    /// Options with `samples` retained samples and Gibbs defaults
    /// (`burn_in = samples / 10`, no thinning).
    pub fn new(samples: usize) -> Self {
        SampleOpts { samples, burn_in: samples / 10, thin: 1 }
    }
}

impl Default for SampleOpts {
    fn default() -> Self {
        SampleOpts::new(10_000)
    }
}

fn check_assignment(net: &BayesNet, e: &Evidence) -> Result<(), BayesError> {
    for (&var, &value) in e {
        if var.0 >= net.len() {
            return Err(BayesError::UnknownVariable(var));
        }
        if value >= net.cardinality(var) {
            return Err(BayesError::BadCategory { var, value });
        }
    }
    Ok(())
}

/// `P(var = value | parents)` read straight out of the CPT.
fn cpt_prob(
    net: &BayesNet,
    var: VarId,
    value: usize,
    assignment: &Evidence,
) -> Result<f64, BayesError> {
    let cpt = net.cpt(var).ok_or(BayesError::MissingCpt(var))?;
    let card = net.cardinality(var);
    let mut row = 0usize;
    for p in &cpt.parents {
        let &pv = assignment.get(p).ok_or(BayesError::UnknownVariable(*p))?;
        row = row * net.cardinality(*p) + pv;
    }
    Ok(cpt.table[row * card + value])
}

/// Samples `var` from its CPT row given already-assigned parents.
fn sample_cpt<R: Rng + ?Sized>(
    net: &BayesNet,
    var: VarId,
    assignment: &Evidence,
    rng: &mut R,
) -> Result<usize, BayesError> {
    let card = net.cardinality(var);
    let u: f64 = rng.random();
    let mut acc = 0.0;
    for v in 0..card {
        acc += cpt_prob(net, var, v, assignment)?;
        if u < acc {
            return Ok(v);
        }
    }
    Ok(card - 1) // numerical slack: the row sums to 1 ± 1e-6
}

/// Draws one complete assignment by ancestral (forward) sampling from the
/// mutilated network: intervened variables are pinned and their CPTs
/// severed, everything else is sampled parents-first.
///
/// # Errors
///
/// Returns an error for unknown variables, out-of-range categories,
/// missing CPTs, or a cyclic graph.
pub fn forward_sample<R: Rng + ?Sized>(
    net: &BayesNet,
    interventions: &Evidence,
    rng: &mut R,
) -> Result<Evidence, BayesError> {
    check_assignment(net, interventions)?;
    let order = net.topological_order().ok_or(BayesError::CyclicGraph)?;
    let mut assignment = interventions.clone();
    for var in order {
        if assignment.contains_key(&var) {
            continue;
        }
        let v = sample_cpt(net, var, &assignment, rng)?;
        assignment.insert(var, v);
    }
    Ok(assignment)
}

/// Posterior `P(query | evidence, do(interventions))` by likelihood
/// weighting with `opts.samples` samples.
///
/// Evidence variables are pinned rather than sampled; each sample carries
/// the product of the pinned variables' CPT likelihoods as its weight.
/// Intervened variables are pinned with weight 1 (their CPT is severed by
/// the `do`), matching [`BayesNet::posterior_do`] semantics.
///
/// # Errors
///
/// Same conditions as [`forward_sample`]. Returns the uniform
/// distribution when every sample has zero weight (impossible evidence).
pub fn likelihood_weighting<R: Rng + ?Sized>(
    net: &BayesNet,
    query: VarId,
    evidence: &Evidence,
    interventions: &Evidence,
    opts: &SampleOpts,
    rng: &mut R,
) -> Result<Vec<f64>, BayesError> {
    check_assignment(net, evidence)?;
    check_assignment(net, interventions)?;
    if query.0 >= net.len() {
        return Err(BayesError::UnknownVariable(query));
    }
    let order = net.topological_order().ok_or(BayesError::CyclicGraph)?;
    let card = net.cardinality(query);
    let mut tally = vec![0.0f64; card];
    let mut assignment = Evidence::new();
    for _ in 0..opts.samples {
        assignment.clear();
        for (&k, &v) in interventions.iter().chain(evidence.iter()) {
            assignment.insert(k, v);
        }
        let mut weight = 1.0f64;
        for &var in &order {
            if interventions.contains_key(&var) {
                continue; // pinned by do(); CPT severed, weight untouched
            }
            if let Some(&v) = evidence.get(&var) {
                weight *= cpt_prob(net, var, v, &assignment)?;
                if weight == 0.0 {
                    break;
                }
                continue;
            }
            let v = sample_cpt(net, var, &assignment, rng)?;
            assignment.insert(var, v);
        }
        if weight > 0.0 {
            tally[assignment[&query]] += weight;
        }
    }
    let total: f64 = tally.iter().sum();
    if total == 0.0 {
        return Ok(vec![1.0 / card as f64; card]);
    }
    Ok(tally.into_iter().map(|w| w / total).collect())
}

/// Posterior `P(query | evidence, do(interventions))` by Gibbs sampling.
///
/// Runs a single chain: initializes free variables by forward sampling
/// (consistent with evidence where possible), discards `opts.burn_in`
/// sweeps, then retains every `opts.thin`-th of `opts.samples` sweeps.
/// Each sweep resamples every free variable from its Markov-blanket
/// conditional in the mutilated graph.
///
/// # Errors
///
/// Same conditions as [`forward_sample`].
pub fn gibbs_posterior<R: Rng + ?Sized>(
    net: &BayesNet,
    query: VarId,
    evidence: &Evidence,
    interventions: &Evidence,
    opts: &SampleOpts,
    rng: &mut R,
) -> Result<Vec<f64>, BayesError> {
    check_assignment(net, evidence)?;
    check_assignment(net, interventions)?;
    if query.0 >= net.len() {
        return Err(BayesError::UnknownVariable(query));
    }
    if let Some(&v) = interventions.get(&query).or_else(|| evidence.get(&query)) {
        let mut out = vec![0.0; net.cardinality(query)];
        out[v] = 1.0;
        return Ok(out);
    }
    let order = net.topological_order().ok_or(BayesError::CyclicGraph)?;

    // Children in the mutilated graph: intervened variables keep no CPT,
    // so they never appear as a child.
    let mut children: Vec<Vec<VarId>> = vec![Vec::new(); net.len()];
    for var in net.variables() {
        if interventions.contains_key(&var) {
            continue;
        }
        for p in net.parents(var) {
            children[p.0].push(var);
        }
    }

    // Initialize: evidence + interventions pinned, the rest forward-sampled.
    let mut assignment = Evidence::new();
    for (&k, &v) in interventions.iter().chain(evidence.iter()) {
        assignment.insert(k, v);
    }
    let free: Vec<VarId> = order.iter().copied().filter(|v| !assignment.contains_key(v)).collect();
    for &var in &free {
        let v = sample_cpt(net, var, &assignment, rng)?;
        assignment.insert(var, v);
    }

    let card = net.cardinality(query);
    let mut tally = vec![0.0f64; card];
    let mut weights = Vec::with_capacity(16);
    let sweeps = opts.burn_in + opts.samples.max(1) * opts.thin.max(1);
    let mut retained = 0usize;
    for sweep in 0..sweeps {
        for &var in &free {
            // P(var | MB(var)) ∝ P(var | pa) · Π_children P(child | pa(child)).
            weights.clear();
            let var_card = net.cardinality(var);
            for v in 0..var_card {
                assignment.insert(var, v);
                let mut w = cpt_prob(net, var, v, &assignment)?;
                for &c in &children[var.0] {
                    if w == 0.0 {
                        break;
                    }
                    w *= cpt_prob(net, c, assignment[&c], &assignment)?;
                }
                weights.push(w);
            }
            let total: f64 = weights.iter().sum();
            let v = if total <= 0.0 {
                rng.random_range(0..var_card)
            } else {
                let u: f64 = rng.random::<f64>() * total;
                let mut acc = 0.0;
                let mut chosen = var_card - 1;
                for (v, &w) in weights.iter().enumerate() {
                    acc += w;
                    if u < acc {
                        chosen = v;
                        break;
                    }
                }
                chosen
            };
            assignment.insert(var, v);
        }
        if sweep >= opts.burn_in && (sweep - opts.burn_in).is_multiple_of(opts.thin.max(1)) {
            tally[assignment[&query]] += 1.0;
            retained += 1;
            if retained >= opts.samples {
                break;
            }
        }
    }
    let total: f64 = tally.iter().sum();
    if total == 0.0 {
        return Ok(vec![1.0 / card as f64; card]);
    }
    Ok(tally.into_iter().map(|w| w / total).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::Cpt;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sprinkler() -> (BayesNet, VarId, VarId, VarId, VarId) {
        let mut net = BayesNet::new();
        let c = net.add_variable("cloudy", 2);
        let s = net.add_variable("sprinkler", 2);
        let r = net.add_variable("rain", 2);
        let w = net.add_variable("wet", 2);
        net.set_cpt(Cpt::new(c, vec![], vec![0.5, 0.5])).unwrap();
        net.set_cpt(Cpt::new(s, vec![c], vec![0.5, 0.5, 0.9, 0.1])).unwrap();
        net.set_cpt(Cpt::new(r, vec![c], vec![0.8, 0.2, 0.2, 0.8])).unwrap();
        net.set_cpt(Cpt::new(w, vec![s, r], vec![1.0, 0.0, 0.1, 0.9, 0.1, 0.9, 0.01, 0.99]))
            .unwrap();
        (net, c, s, r, w)
    }

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xD21EF1)
    }

    #[test]
    fn forward_sampling_recovers_priors() {
        let (net, _c, s, r, _w) = sprinkler();
        let mut rng = rng();
        let n = 40_000;
        let (mut s1, mut r1) = (0u32, 0u32);
        for _ in 0..n {
            let a = forward_sample(&net, &Evidence::new(), &mut rng).unwrap();
            s1 += a[&s] as u32;
            r1 += a[&r] as u32;
        }
        assert!((f64::from(s1) / f64::from(n) - 0.3).abs() < 0.01);
        assert!((f64::from(r1) / f64::from(n) - 0.5).abs() < 0.01);
    }

    #[test]
    fn forward_sampling_respects_interventions() {
        let (net, c, s, _r, _w) = sprinkler();
        let mut rng = rng();
        let n = 20_000;
        let mut c1 = 0u32;
        for _ in 0..n {
            let a = forward_sample(&net, &Evidence::from([(s, 1)]), &mut rng).unwrap();
            assert_eq!(a[&s], 1);
            c1 += a[&c] as u32;
        }
        // do(S=1) must not move Cloudy off its 0.5 prior.
        assert!((f64::from(c1) / f64::from(n) - 0.5).abs() < 0.012);
    }

    #[test]
    fn likelihood_weighting_matches_exact_posterior() {
        let (net, _c, s, r, w) = sprinkler();
        let e = Evidence::from([(w, 1)]);
        let exact_s = net.posterior(s, &e).unwrap();
        let exact_r = net.posterior(r, &e).unwrap();
        let opts = SampleOpts::new(60_000);
        let mut rng = rng();
        let lw_s = likelihood_weighting(&net, s, &e, &Evidence::new(), &opts, &mut rng).unwrap();
        let lw_r = likelihood_weighting(&net, r, &e, &Evidence::new(), &opts, &mut rng).unwrap();
        assert!((lw_s[1] - exact_s[1]).abs() < 0.01, "{lw_s:?} vs {exact_s:?}");
        assert!((lw_r[1] - exact_r[1]).abs() < 0.01, "{lw_r:?} vs {exact_r:?}");
    }

    #[test]
    fn likelihood_weighting_matches_exact_under_do() {
        let (net, c, s, _r, w) = sprinkler();
        let e = Evidence::from([(w, 1)]);
        let i = Evidence::from([(s, 1)]);
        let exact = net.posterior_do(c, &e, &i).unwrap();
        let mut rng = rng();
        let lw = likelihood_weighting(&net, c, &e, &i, &SampleOpts::new(60_000), &mut rng).unwrap();
        assert!((lw[1] - exact[1]).abs() < 0.015, "{lw:?} vs {exact:?}");
    }

    #[test]
    fn gibbs_matches_exact_posterior() {
        let (net, _c, s, r, w) = sprinkler();
        let e = Evidence::from([(w, 1)]);
        let exact_s = net.posterior(s, &e).unwrap();
        let exact_r = net.posterior(r, &e).unwrap();
        let opts = SampleOpts { samples: 60_000, burn_in: 2_000, thin: 1 };
        let mut rng = rng();
        let g_s = gibbs_posterior(&net, s, &e, &Evidence::new(), &opts, &mut rng).unwrap();
        let g_r = gibbs_posterior(&net, r, &e, &Evidence::new(), &opts, &mut rng).unwrap();
        assert!((g_s[1] - exact_s[1]).abs() < 0.015, "{g_s:?} vs {exact_s:?}");
        assert!((g_r[1] - exact_r[1]).abs() < 0.015, "{g_r:?} vs {exact_r:?}");
    }

    #[test]
    fn gibbs_matches_exact_under_do() {
        let (net, c, s, _r, w) = sprinkler();
        let e = Evidence::from([(w, 1)]);
        let i = Evidence::from([(s, 1)]);
        let exact = net.posterior_do(c, &e, &i).unwrap();
        let opts = SampleOpts { samples: 60_000, burn_in: 2_000, thin: 1 };
        let mut rng = rng();
        let g = gibbs_posterior(&net, c, &e, &i, &opts, &mut rng).unwrap();
        assert!((g[1] - exact[1]).abs() < 0.02, "{g:?} vs {exact:?}");
    }

    #[test]
    fn gibbs_on_evidence_variable_is_point_mass() {
        let (net, _c, _s, _r, w) = sprinkler();
        let mut rng = rng();
        let g = gibbs_posterior(
            &net,
            w,
            &Evidence::from([(w, 1)]),
            &Evidence::new(),
            &SampleOpts::new(10),
            &mut rng,
        )
        .unwrap();
        assert_eq!(g, vec![0.0, 1.0]);
    }

    #[test]
    fn impossible_evidence_degrades_to_uniform() {
        // W depends deterministically on S=0, R=0 → P(W=1) = 0 there.
        let mut net = BayesNet::new();
        let a = net.add_variable("a", 2);
        let b = net.add_variable("b", 2);
        net.set_cpt(Cpt::new(a, vec![], vec![1.0, 0.0])).unwrap();
        net.set_cpt(Cpt::new(b, vec![a], vec![1.0, 0.0, 0.0, 1.0])).unwrap();
        let mut rng = rng();
        // Evidence b=1 is impossible (a is always 0 → b always 0).
        let lw = likelihood_weighting(
            &net,
            a,
            &Evidence::from([(b, 1)]),
            &Evidence::new(),
            &SampleOpts::new(500),
            &mut rng,
        )
        .unwrap();
        assert_eq!(lw, vec![0.5, 0.5]);
    }

    #[test]
    fn unknown_variable_is_rejected() {
        let (net, _c, s, _r, _w) = sprinkler();
        let bogus = VarId(99);
        let mut rng = rng();
        assert!(matches!(
            likelihood_weighting(
                &net,
                bogus,
                &Evidence::new(),
                &Evidence::new(),
                &SampleOpts::new(10),
                &mut rng
            ),
            Err(BayesError::UnknownVariable(_))
        ));
        assert!(matches!(
            gibbs_posterior(
                &net,
                s,
                &Evidence::from([(bogus, 0)]),
                &Evidence::new(),
                &SampleOpts::new(10),
                &mut rng
            ),
            Err(BayesError::UnknownVariable(_))
        ));
    }

    #[test]
    fn sampling_is_deterministic_under_fixed_seed() {
        let (net, _c, s, _r, w) = sprinkler();
        let e = Evidence::from([(w, 1)]);
        let mut r1 = StdRng::seed_from_u64(11);
        let mut r2 = StdRng::seed_from_u64(11);
        let a =
            likelihood_weighting(&net, s, &e, &Evidence::new(), &SampleOpts::new(2_000), &mut r1)
                .unwrap();
        let b =
            likelihood_weighting(&net, s, &e, &Evidence::new(), &SampleOpts::new(2_000), &mut r2)
                .unwrap();
        assert_eq!(a, b);
    }
}
