//! Bayesian networks: variables, CPTs, DAG validation, and inference.

use crate::factor::Factor;
use crate::{BayesError, Evidence};

/// Identifier of a variable within a [`BayesNet`] (dense index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub usize);

/// A conditional probability table `P(child | parents)`.
///
/// The table is laid out with the parent configuration as the major index
/// (parents in the given order, last parent fastest) and the child
/// category as the minor (fastest) index: for parents with cardinalities
/// `c₁…cₖ` and child cardinality `c`, entry
/// `table[((p₁·c₂ + p₂)·… )·c + child]` is `P(child | p₁…pₖ)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Cpt {
    /// The child variable.
    pub child: VarId,
    /// The parent variables, in table-layout order.
    pub parents: Vec<VarId>,
    /// The flattened probability table.
    pub table: Vec<f64>,
}

impl Cpt {
    /// Creates a CPT (validated when attached to a network).
    pub fn new(child: VarId, parents: Vec<VarId>, table: Vec<f64>) -> Self {
        Cpt { child, parents, table }
    }

    /// A uniform CPT for a root variable of cardinality `card`.
    pub fn uniform_root(child: VarId, card: usize) -> Self {
        Cpt::new(child, vec![], vec![1.0 / card as f64; card])
    }
}

#[derive(Debug, Clone)]
struct Variable {
    name: String,
    card: usize,
}

/// A discrete Bayesian network.
#[derive(Debug, Clone, Default)]
pub struct BayesNet {
    vars: Vec<Variable>,
    cpts: Vec<Option<Cpt>>,
}

impl BayesNet {
    /// Creates an empty network.
    pub fn new() -> Self {
        BayesNet::default()
    }

    /// Adds a variable with `card` categories and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if `card == 0`.
    pub fn add_variable(&mut self, name: &str, card: usize) -> VarId {
        assert!(card > 0, "variables need at least one category");
        self.vars.push(Variable { name: name.to_owned(), card });
        self.cpts.push(None);
        VarId(self.vars.len() - 1)
    }

    /// Number of variables.
    pub fn len(&self) -> usize {
        self.vars.len()
    }

    /// True when the network has no variables.
    pub fn is_empty(&self) -> bool {
        self.vars.is_empty()
    }

    /// All variable ids.
    pub fn variables(&self) -> impl Iterator<Item = VarId> {
        (0..self.vars.len()).map(VarId)
    }

    /// The name of a variable.
    pub fn name(&self, var: VarId) -> &str {
        &self.vars[var.0].name
    }

    /// Finds a variable by name.
    pub fn find(&self, name: &str) -> Option<VarId> {
        self.vars.iter().position(|v| v.name == name).map(VarId)
    }

    /// The cardinality of a variable.
    pub fn cardinality(&self, var: VarId) -> usize {
        self.vars[var.0].card
    }

    /// The parents of a variable (empty if no CPT attached yet).
    pub fn parents(&self, var: VarId) -> &[VarId] {
        self.cpts[var.0].as_ref().map_or(&[], |c| &c.parents)
    }

    /// The CPT of a variable, if attached.
    pub fn cpt(&self, var: VarId) -> Option<&Cpt> {
        self.cpts[var.0].as_ref()
    }

    /// Attaches (or replaces) a CPT, validating dimensions, row
    /// normalization, and acyclicity.
    ///
    /// # Errors
    ///
    /// Returns a [`BayesError`] describing the first violated constraint.
    pub fn set_cpt(&mut self, cpt: Cpt) -> Result<(), BayesError> {
        let child = cpt.child;
        if child.0 >= self.vars.len() {
            return Err(BayesError::UnknownVariable(child));
        }
        for p in &cpt.parents {
            if p.0 >= self.vars.len() {
                return Err(BayesError::UnknownVariable(*p));
            }
        }
        let child_card = self.cardinality(child);
        let parent_size: usize = cpt.parents.iter().map(|p| self.cardinality(*p)).product();
        let expected = child_card * parent_size.max(1);
        if cpt.table.len() != expected {
            return Err(BayesError::BadTableSize { var: child, expected, got: cpt.table.len() });
        }
        for row in 0..parent_size.max(1) {
            let sum: f64 = cpt.table[row * child_card..(row + 1) * child_card].iter().sum();
            if (sum - 1.0).abs() > 1e-6 {
                return Err(BayesError::UnnormalizedRow { var: child, row });
            }
        }
        let prev = self.cpts[child.0].take();
        self.cpts[child.0] = Some(cpt);
        if self.topological_order().is_none() {
            self.cpts[child.0] = prev;
            return Err(BayesError::CyclicGraph);
        }
        Ok(())
    }

    /// Topological order of the variables, or `None` when cyclic.
    pub fn topological_order(&self) -> Option<Vec<VarId>> {
        let n = self.vars.len();
        let mut indegree = vec![0usize; n];
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, cpt) in self.cpts.iter().enumerate() {
            if let Some(cpt) = cpt {
                indegree[i] = cpt.parents.len();
                for p in &cpt.parents {
                    children[p.0].push(i);
                }
            }
        }
        let mut stack: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(i) = stack.pop() {
            order.push(VarId(i));
            for &c in &children[i] {
                indegree[c] -= 1;
                if indegree[c] == 0 {
                    stack.push(c);
                }
            }
        }
        (order.len() == n).then_some(order)
    }

    /// Converts the CPT of `var` into a factor over `parents ∪ {var}`.
    fn cpt_factor(&self, var: VarId) -> Result<Factor, BayesError> {
        let cpt = self.cpts[var.0].as_ref().ok_or(BayesError::MissingCpt(var))?;
        // Factor variable order: parents (in CPT order), then child —
        // matching the CPT layout (child fastest).
        let mut vars = cpt.parents.clone();
        vars.push(var);
        let cards: Vec<usize> = vars.iter().map(|v| self.cardinality(*v)).collect();
        Ok(Factor::new(vars, cards, cpt.table.clone()))
    }

    fn check_assignment(&self, e: &Evidence) -> Result<(), BayesError> {
        for (&var, &value) in e {
            if var.0 >= self.vars.len() {
                return Err(BayesError::UnknownVariable(var));
            }
            if value >= self.cardinality(var) {
                return Err(BayesError::BadCategory { var, value });
            }
        }
        Ok(())
    }

    /// Collects all factors after applying interventions (graph surgery:
    /// intervened variables lose their CPT factor and are pinned) and
    /// evidence reductions.
    fn prepared_factors(
        &self,
        evidence: &Evidence,
        interventions: &Evidence,
    ) -> Result<Vec<Factor>, BayesError> {
        self.check_assignment(evidence)?;
        self.check_assignment(interventions)?;
        let mut factors = Vec::with_capacity(self.vars.len());
        for var in self.variables() {
            if interventions.contains_key(&var) {
                // do(var = v): drop P(var | parents); the pin is applied
                // by reduction below.
                continue;
            }
            factors.push(self.cpt_factor(var)?);
        }
        for (&var, &value) in evidence.iter().chain(interventions.iter()) {
            for f in &mut factors {
                if f.contains(var) {
                    *f = f.reduce(var, value);
                }
            }
        }
        Ok(factors)
    }

    fn eliminate_all(factors: Vec<Factor>, keep: &[VarId]) -> Factor {
        // Gather scope.
        let mut scope: Vec<VarId> = Vec::new();
        for f in &factors {
            for v in f.vars() {
                if !scope.contains(v) {
                    scope.push(*v);
                }
            }
        }
        // Elimination order: min-fill-ish greedy by smallest resulting
        // factor; adequate for the tree-like 3-TBNs here.
        let mut remaining = factors;
        let mut to_eliminate: Vec<VarId> =
            scope.into_iter().filter(|v| !keep.contains(v)).collect();
        // Deterministic order: by id (the nets here are small).
        to_eliminate.sort_unstable();
        for var in to_eliminate {
            let (touching, rest): (Vec<Factor>, Vec<Factor>) =
                remaining.into_iter().partition(|f| f.contains(var));
            let mut product = Factor::scalar(1.0);
            for f in &touching {
                product = product.product(f);
            }
            remaining = rest;
            remaining.push(product.marginalize(var));
        }
        let mut result = Factor::scalar(1.0);
        for f in &remaining {
            result = result.product(f);
        }
        result
    }

    /// Posterior distribution `P(query | evidence, do(interventions))`.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown variables, out-of-range categories, or
    /// missing CPTs.
    pub fn posterior_do(
        &self,
        query: VarId,
        evidence: &Evidence,
        interventions: &Evidence,
    ) -> Result<Vec<f64>, BayesError> {
        if query.0 >= self.vars.len() {
            return Err(BayesError::UnknownVariable(query));
        }
        if let Some(&v) = interventions.get(&query) {
            // Querying an intervened variable: point mass.
            let mut out = vec![0.0; self.cardinality(query)];
            out[v] = 1.0;
            return Ok(out);
        }
        if let Some(&v) = evidence.get(&query) {
            let mut out = vec![0.0; self.cardinality(query)];
            out[v] = 1.0;
            return Ok(out);
        }
        let factors = self.prepared_factors(evidence, interventions)?;
        let result = Self::eliminate_all(factors, &[query]);
        let result = result.normalized();
        let card = self.cardinality(query);
        let mut out = vec![0.0; card];
        if result.vars().is_empty() {
            // Evidence had zero probability; return uniform.
            return Ok(vec![1.0 / card as f64; card]);
        }
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = result.value_at(&[i]);
        }
        Ok(out)
    }

    /// Posterior `P(query | evidence)` without interventions.
    ///
    /// # Errors
    ///
    /// See [`BayesNet::posterior_do`].
    pub fn posterior(&self, query: VarId, evidence: &Evidence) -> Result<Vec<f64>, BayesError> {
        self.posterior_do(query, evidence, &Evidence::new())
    }

    /// Maximum-likelihood category of `query` under evidence and
    /// interventions: `argmax P(query | e, do(i))` — the paper's Eq. 2
    /// when applied to the next-slice kinematic variables.
    ///
    /// # Errors
    ///
    /// See [`BayesNet::posterior_do`].
    pub fn map_category(
        &self,
        query: VarId,
        evidence: &Evidence,
        interventions: &Evidence,
    ) -> Result<usize, BayesError> {
        let dist = self.posterior_do(query, evidence, interventions)?;
        Ok(dist
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("probabilities are finite"))
            .map(|(i, _)| i)
            .unwrap_or(0))
    }

    /// Exact **joint MAP**: the single most probable assignment to every
    /// non-evidence, non-intervened variable, by max-product variable
    /// elimination with traceback.
    ///
    /// Where [`BayesNet::map_category`] maximizes each posterior marginal
    /// independently (which can be jointly inconsistent), this maximizes
    /// the joint — the stronger query behind the paper's Eq. 2 when
    /// several kinematic variables are reconstructed together.
    ///
    /// # Errors
    ///
    /// Propagates the same errors as [`BayesNet::posterior_do`].
    pub fn map_assignment(
        &self,
        evidence: &Evidence,
        interventions: &Evidence,
    ) -> Result<Evidence, BayesError> {
        let factors = self.prepared_factors(evidence, interventions)?;

        // Scope to eliminate: everything unassigned.
        let mut scope: Vec<VarId> = Vec::new();
        for f in &factors {
            for v in f.vars() {
                if !scope.contains(v) {
                    scope.push(*v);
                }
            }
        }
        scope.sort_unstable();

        struct Record {
            var: VarId,
            reduced: Factor,
            arg: Vec<usize>,
        }
        let mut records: Vec<Record> = Vec::with_capacity(scope.len());
        let mut remaining = factors;
        for var in scope {
            let (touching, rest): (Vec<Factor>, Vec<Factor>) =
                remaining.into_iter().partition(|f| f.contains(var));
            let mut product = Factor::scalar(1.0);
            for f in &touching {
                product = product.product(f);
            }
            let (reduced, arg) = product.max_marginalize(var);
            records.push(Record { var, reduced: reduced.clone(), arg });
            remaining = rest;
            remaining.push(reduced);
        }

        // Traceback in reverse elimination order.
        let mut assignment: Evidence = evidence.clone();
        for (&k, &v) in interventions {
            assignment.insert(k, v);
        }
        for record in records.iter().rev() {
            let cats: Vec<usize> = record
                .reduced
                .vars()
                .iter()
                .map(|v| *assignment.get(v).expect("traceback variable already assigned"))
                .collect();
            let idx = record.reduced.assignment_index(&cats);
            assignment.insert(record.var, record.arg[idx]);
        }
        Ok(assignment)
    }

    /// Joint probability of a complete assignment (all variables).
    ///
    /// # Errors
    ///
    /// Returns an error if the assignment misses a variable or a CPT is
    /// absent.
    pub fn joint_probability(&self, assignment: &Evidence) -> Result<f64, BayesError> {
        self.check_assignment(assignment)?;
        let mut p = 1.0;
        for var in self.variables() {
            let cpt = self.cpts[var.0].as_ref().ok_or(BayesError::MissingCpt(var))?;
            let child_card = self.cardinality(var);
            let &child_val = assignment.get(&var).ok_or(BayesError::UnknownVariable(var))?;
            let mut row = 0usize;
            for p_id in &cpt.parents {
                let &pv = assignment.get(p_id).ok_or(BayesError::UnknownVariable(*p_id))?;
                row = row * self.cardinality(*p_id) + pv;
            }
            p *= cpt.table[row * child_card + child_val];
        }
        Ok(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The classic sprinkler network (Pearl): Cloudy -> Sprinkler,
    /// Cloudy -> Rain, {Sprinkler, Rain} -> WetGrass.
    fn sprinkler() -> (BayesNet, VarId, VarId, VarId, VarId) {
        let mut net = BayesNet::new();
        let c = net.add_variable("cloudy", 2);
        let s = net.add_variable("sprinkler", 2);
        let r = net.add_variable("rain", 2);
        let w = net.add_variable("wet", 2);
        net.set_cpt(Cpt::new(c, vec![], vec![0.5, 0.5])).unwrap();
        net.set_cpt(Cpt::new(s, vec![c], vec![0.5, 0.5, 0.9, 0.1])).unwrap();
        net.set_cpt(Cpt::new(r, vec![c], vec![0.8, 0.2, 0.2, 0.8])).unwrap();
        net.set_cpt(Cpt::new(w, vec![s, r], vec![1.0, 0.0, 0.1, 0.9, 0.1, 0.9, 0.01, 0.99]))
            .unwrap();
        (net, c, s, r, w)
    }

    #[test]
    fn prior_marginals_match_hand_computation() {
        let (net, _c, s, r, _w) = sprinkler();
        // P(S=1) = 0.5·0.5 + 0.5·0.1 = 0.3
        let ps = net.posterior(s, &Evidence::new()).unwrap();
        assert!((ps[1] - 0.3).abs() < 1e-9, "{ps:?}");
        // P(R=1) = 0.5·0.2 + 0.5·0.8 = 0.5
        let pr = net.posterior(r, &Evidence::new()).unwrap();
        assert!((pr[1] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn posterior_given_wet_grass() {
        let (net, _c, s, r, w) = sprinkler();
        // Known result for this parameterization:
        // P(S=1 | W=1) ≈ 0.4298, P(R=1 | W=1) ≈ 0.7079
        let e = Evidence::from([(w, 1)]);
        let ps = net.posterior(s, &e).unwrap();
        let pr = net.posterior(r, &e).unwrap();
        assert!((ps[1] - 0.4298).abs() < 1e-3, "P(S|W) = {ps:?}");
        assert!((pr[1] - 0.7079).abs() < 1e-3, "P(R|W) = {pr:?}");
    }

    #[test]
    fn explaining_away() {
        let (net, _c, s, r, w) = sprinkler();
        // Observing rain explains away the sprinkler.
        let pw = net.posterior(s, &Evidence::from([(w, 1)])).unwrap()[1];
        let pwr = net.posterior(s, &Evidence::from([(w, 1), (r, 1)])).unwrap()[1];
        assert!(pwr < pw, "explaining away violated: {pwr} !< {pw}");
    }

    #[test]
    fn intervention_differs_from_conditioning() {
        let (net, c, s, _r, _w) = sprinkler();
        // Conditioning on S=1 changes belief about Cloudy (backdoor);
        // do(S=1) must NOT (sprinkler has no causal effect on clouds).
        let cond = net.posterior(c, &Evidence::from([(s, 1)])).unwrap()[1];
        let int = net.posterior_do(c, &Evidence::new(), &Evidence::from([(s, 1)])).unwrap()[1];
        assert!((int - 0.5).abs() < 1e-9, "do() leaked into parent: {int}");
        assert!((cond - 0.5).abs() > 0.05, "conditioning should move cloudy: {cond}");
    }

    #[test]
    fn intervention_still_affects_descendants() {
        let (net, _c, s, _r, w) = sprinkler();
        let base = net.posterior(w, &Evidence::new()).unwrap()[1];
        let forced = net.posterior_do(w, &Evidence::new(), &Evidence::from([(s, 1)])).unwrap()[1];
        assert!(forced > base, "do(S=1) should raise P(wet): {forced} vs {base}");
    }

    #[test]
    fn joint_probability_chains_cpts() {
        let (net, c, s, r, w) = sprinkler();
        let a = Evidence::from([(c, 1), (s, 0), (r, 1), (w, 1)]);
        // 0.5 · 0.9 · 0.8 · 0.9
        assert!((net.joint_probability(&a).unwrap() - 0.324).abs() < 1e-12);
    }

    #[test]
    fn cycle_is_rejected() {
        let mut net = BayesNet::new();
        let a = net.add_variable("a", 2);
        let b = net.add_variable("b", 2);
        net.set_cpt(Cpt::new(a, vec![b], vec![0.5, 0.5, 0.5, 0.5])).unwrap();
        let err = net.set_cpt(Cpt::new(b, vec![a], vec![0.5, 0.5, 0.5, 0.5]));
        assert_eq!(err, Err(BayesError::CyclicGraph));
    }

    #[test]
    fn bad_tables_are_rejected() {
        let mut net = BayesNet::new();
        let a = net.add_variable("a", 2);
        assert!(matches!(
            net.set_cpt(Cpt::new(a, vec![], vec![0.5, 0.5, 0.5])),
            Err(BayesError::BadTableSize { .. })
        ));
        assert!(matches!(
            net.set_cpt(Cpt::new(a, vec![], vec![0.7, 0.7])),
            Err(BayesError::UnnormalizedRow { .. })
        ));
    }

    #[test]
    fn map_category_picks_mode() {
        let (net, _c, _s, r, w) = sprinkler();
        let m = net.map_category(r, &Evidence::from([(w, 1)]), &Evidence::new()).unwrap();
        assert_eq!(m, 1, "rain is the MAP explanation of wet grass");
    }

    #[test]
    fn evidence_on_query_returns_point_mass() {
        let (net, c, _s, _r, _w) = sprinkler();
        let p = net.posterior(c, &Evidence::from([(c, 0)])).unwrap();
        assert_eq!(p, vec![1.0, 0.0]);
    }

    #[test]
    fn missing_cpt_is_reported() {
        let mut net = BayesNet::new();
        let a = net.add_variable("a", 2);
        let _b = net.add_variable("b", 2);
        net.set_cpt(Cpt::new(a, vec![], vec![0.5, 0.5])).unwrap();
        assert!(matches!(net.posterior(a, &Evidence::new()), Err(BayesError::MissingCpt(_))));
    }

    #[test]
    fn joint_map_matches_brute_force() {
        let (net, c, s, r, w) = sprinkler();
        // Brute-force joint argmax given W = 1.
        let mut best = (0.0, Evidence::new());
        for cv in 0..2 {
            for sv in 0..2 {
                for rv in 0..2 {
                    let a = Evidence::from([(c, cv), (s, sv), (r, rv), (w, 1)]);
                    let p = net.joint_probability(&a).unwrap();
                    if p > best.0 {
                        best = (p, a);
                    }
                }
            }
        }
        let map = net.map_assignment(&Evidence::from([(w, 1)]), &Evidence::new()).unwrap();
        assert_eq!(map, best.1, "joint MAP disagrees with enumeration");
    }

    #[test]
    fn joint_map_respects_interventions() {
        let (net, c, s, _r, w) = sprinkler();
        let map = net.map_assignment(&Evidence::from([(w, 1)]), &Evidence::from([(s, 1)])).unwrap();
        assert_eq!(map[&s], 1, "intervened value pinned");
        assert!(map.contains_key(&c) && map.contains_key(&w));
        // With the sprinkler forced on, do() severs S from Cloudy; the
        // MAP for Cloudy must come from its prior (tie → either value is
        // acceptable) and every variable is assigned.
        assert_eq!(map.len(), 4);
    }

    #[test]
    fn joint_map_with_no_evidence_is_global_mode() {
        let (net, c, s, r, w) = sprinkler();
        let mut best = (0.0, Evidence::new());
        for cv in 0..2 {
            for sv in 0..2 {
                for rv in 0..2 {
                    for wv in 0..2 {
                        let a = Evidence::from([(c, cv), (s, sv), (r, rv), (w, wv)]);
                        let p = net.joint_probability(&a).unwrap();
                        if p > best.0 {
                            best = (p, a);
                        }
                    }
                }
            }
        }
        let map = net.map_assignment(&Evidence::new(), &Evidence::new()).unwrap();
        let p_map = net.joint_probability(&map).unwrap();
        assert!((p_map - best.0).abs() < 1e-12, "MAP prob {p_map} vs best {}", best.0);
    }

    #[test]
    fn uniform_root_helper() {
        let mut net = BayesNet::new();
        let a = net.add_variable("a", 4);
        net.set_cpt(Cpt::uniform_root(a, 4)).unwrap();
        let p = net.posterior(a, &Evidence::new()).unwrap();
        assert!(p.iter().all(|&x| (x - 0.25).abs() < 1e-12));
    }
}
