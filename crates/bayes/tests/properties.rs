//! Property tests: variable elimination agrees with brute-force
//! enumeration on randomly parameterized networks.

use drivefi_bayes::{BayesNet, Cpt, Evidence, VarId};
use proptest::prelude::*;

/// Builds a 4-variable diamond network A -> {B, C} -> D with CPTs derived
/// from the given raw parameters (each squashed into (0, 1)).
fn diamond(params: &[f64; 9]) -> (BayesNet, [VarId; 4]) {
    let p = |x: f64| 0.05 + 0.9 * (x.abs() % 1.0);
    let mut net = BayesNet::new();
    let a = net.add_variable("a", 2);
    let b = net.add_variable("b", 2);
    let c = net.add_variable("c", 2);
    let d = net.add_variable("d", 2);
    let pa = p(params[0]);
    net.set_cpt(Cpt::new(a, vec![], vec![1.0 - pa, pa])).unwrap();
    let (b0, b1) = (p(params[1]), p(params[2]));
    net.set_cpt(Cpt::new(b, vec![a], vec![1.0 - b0, b0, 1.0 - b1, b1])).unwrap();
    let (c0, c1) = (p(params[3]), p(params[4]));
    net.set_cpt(Cpt::new(c, vec![a], vec![1.0 - c0, c0, 1.0 - c1, c1])).unwrap();
    let (d00, d01, d10, d11) = (p(params[5]), p(params[6]), p(params[7]), p(params[8]));
    net.set_cpt(Cpt::new(
        d,
        vec![b, c],
        vec![1.0 - d00, d00, 1.0 - d01, d01, 1.0 - d10, d10, 1.0 - d11, d11],
    ))
    .unwrap();
    (net, [a, b, c, d])
}

/// Brute-force P(query = q | evidence) by enumerating the joint.
fn enumerate_posterior(
    net: &BayesNet,
    vars: &[VarId; 4],
    query: VarId,
    evidence: &Evidence,
) -> Vec<f64> {
    let mut num = [0.0; 2];
    for a in 0..2usize {
        for b in 0..2usize {
            for c in 0..2usize {
                for d in 0..2usize {
                    let assignment =
                        Evidence::from([(vars[0], a), (vars[1], b), (vars[2], c), (vars[3], d)]);
                    if evidence.iter().any(|(k, v)| assignment[k] != *v) {
                        continue;
                    }
                    let p = net.joint_probability(&assignment).unwrap();
                    num[assignment[&query]] += p;
                }
            }
        }
    }
    let z: f64 = num.iter().sum();
    num.iter().map(|x| x / z).collect()
}

proptest! {
    /// VE posterior == enumeration, for every query/evidence combination.
    #[test]
    fn ve_matches_enumeration(params in prop::array::uniform9(0.0..1000.0f64),
                              ev_var in 0usize..4, ev_val in 0usize..2,
                              q_var in 0usize..4) {
        prop_assume!(ev_var != q_var);
        let (net, vars) = diamond(&params);
        let evidence = Evidence::from([(vars[ev_var], ev_val)]);
        let ve = net.posterior(vars[q_var], &evidence).unwrap();
        let brute = enumerate_posterior(&net, &vars, vars[q_var], &evidence);
        prop_assert!((ve[0] - brute[0]).abs() < 1e-9, "ve={ve:?} brute={brute:?}");
        prop_assert!((ve[1] - brute[1]).abs() < 1e-9);
    }

    /// Posteriors are proper distributions.
    #[test]
    fn posteriors_normalize(params in prop::array::uniform9(0.0..1000.0f64)) {
        let (net, vars) = diamond(&params);
        for q in vars {
            let p = net.posterior(q, &Evidence::new()).unwrap();
            let sum: f64 = p.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-9);
            prop_assert!(p.iter().all(|&x| (0.0..=1.0 + 1e-12).contains(&x)));
        }
    }

    /// do(X = x) on a root variable equals conditioning on it (no
    /// backdoor into a root), while do() on a collider parent removes the
    /// dependence that conditioning would create.
    #[test]
    fn do_on_root_equals_conditioning(params in prop::array::uniform9(0.0..1000.0f64)) {
        let (net, vars) = diamond(&params);
        let [a, _b, _c, d] = vars;
        let cond = net.posterior(d, &Evidence::from([(a, 1)])).unwrap();
        let int = net
            .posterior_do(d, &Evidence::new(), &Evidence::from([(a, 1)]))
            .unwrap();
        prop_assert!((cond[1] - int[1]).abs() < 1e-9);
    }

    /// Intervening on B severs the A→B edge: P(A | do(B)) == P(A).
    #[test]
    fn do_severs_parents(params in prop::array::uniform9(0.0..1000.0f64), bv in 0usize..2) {
        let (net, vars) = diamond(&params);
        let [a, b, _c, _d] = vars;
        let prior = net.posterior(a, &Evidence::new()).unwrap();
        let int = net
            .posterior_do(a, &Evidence::new(), &Evidence::from([(b, bv)]))
            .unwrap();
        prop_assert!((prior[1] - int[1]).abs() < 1e-9, "do(B) changed P(A)");
    }

    /// The joint MAP assignment attains the maximum enumerated joint
    /// probability consistent with the evidence.
    #[test]
    fn joint_map_is_optimal(params in prop::array::uniform9(0.0..1000.0f64),
                            ev_var in 0usize..4, ev_val in 0usize..2) {
        let (net, vars) = diamond(&params);
        let evidence = Evidence::from([(vars[ev_var], ev_val)]);
        let map = net.map_assignment(&evidence, &Evidence::new()).unwrap();
        let p_map = net.joint_probability(&map).unwrap();
        // Enumerate all completions of the evidence.
        let mut best = 0.0f64;
        for a in 0..2usize {
            for b in 0..2usize {
                for c in 0..2usize {
                    for d in 0..2usize {
                        let full = Evidence::from([
                            (vars[0], a), (vars[1], b), (vars[2], c), (vars[3], d),
                        ]);
                        if evidence.iter().any(|(k, v)| full[k] != *v) {
                            continue;
                        }
                        best = best.max(net.joint_probability(&full).unwrap());
                    }
                }
            }
        }
        prop_assert!((p_map - best).abs() < 1e-12, "MAP {p_map} vs best {best}");
    }
}

proptest! {
    // Sampling estimators are statistical; fewer, heavier cases.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Likelihood weighting converges to the exact posterior on random
    /// diamond networks.
    #[test]
    fn likelihood_weighting_converges(params in prop::array::uniform9(0.0..1000.0f64),
                                      seed in any::<u64>()) {
        use drivefi_bayes::{likelihood_weighting, SampleOpts};
        use rand::SeedableRng;
        let (net, vars) = diamond(&params);
        let [_a, b, _c, d] = vars;
        let e = Evidence::from([(d, 1)]);
        let exact = net.posterior(b, &e).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let est = likelihood_weighting(&net, b, &e, &Evidence::new(),
                                       &SampleOpts::new(40_000), &mut rng).unwrap();
        prop_assert!((est[1] - exact[1]).abs() < 0.03,
                     "LW {est:?} vs exact {exact:?}");
    }

    /// Gibbs sampling converges to the exact posterior under
    /// interventions, matching the mutilated-graph semantics of VE.
    #[test]
    fn gibbs_converges_under_do(params in prop::array::uniform9(0.0..1000.0f64),
                                seed in any::<u64>()) {
        use drivefi_bayes::{gibbs_posterior, SampleOpts};
        use rand::SeedableRng;
        let (net, vars) = diamond(&params);
        let [_a, b, c, d] = vars;
        let e = Evidence::from([(d, 1)]);
        let i = Evidence::from([(c, 0)]);
        let exact = net.posterior_do(b, &e, &i).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let opts = SampleOpts { samples: 40_000, burn_in: 2_000, thin: 1 };
        let est = gibbs_posterior(&net, b, &e, &i, &opts, &mut rng).unwrap();
        prop_assert!((est[1] - exact[1]).abs() < 0.04,
                     "Gibbs {est:?} vs exact {exact:?}");
    }
}
