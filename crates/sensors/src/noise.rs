//! Gaussian noise sampling (Box–Muller, no extra dependencies).

use rand::Rng;

/// A Gaussian distribution `N(mean, std²)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gaussian {
    /// Mean.
    pub mean: f64,
    /// Standard deviation (≥ 0).
    pub std: f64,
}

impl Gaussian {
    /// Creates a distribution.
    ///
    /// # Panics
    ///
    /// Panics if `std` is negative or either parameter is non-finite.
    pub fn new(mean: f64, std: f64) -> Self {
        assert!(std >= 0.0 && mean.is_finite() && std.is_finite(), "invalid Gaussian parameters");
        Gaussian { mean, std }
    }

    /// Draws one sample using the Box–Muller transform.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.std == 0.0 {
            return self.mean;
        }
        // Box–Muller: u1 in (0, 1] to avoid ln(0).
        let u1: f64 = 1.0 - rng.random::<f64>();
        let u2: f64 = rng.random::<f64>();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        self.mean + self.std * z
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zero_std_returns_mean() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = Gaussian::new(5.0, 0.0);
        for _ in 0..10 {
            assert_eq!(g.sample(&mut rng), 5.0);
        }
    }

    #[test]
    fn sample_moments_match() {
        let mut rng = StdRng::seed_from_u64(7);
        let g = Gaussian::new(2.0, 3.0);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| g.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.05, "mean = {mean}");
        assert!((var - 9.0).abs() < 0.2, "var = {var}");
    }

    #[test]
    #[should_panic(expected = "invalid Gaussian")]
    fn negative_std_panics() {
        let _ = Gaussian::new(0.0, -1.0);
    }
}
