//! Sensor models for the simulated AV.
//!
//! The paper's ADS stacks consume camera, LiDAR, RADAR, GPS and IMU/CAN
//! data (`I_t` and `M_t` in Fig. 1). Here each sensor extracts ground
//! truth from the [`drivefi_world::World`] and degrades it with Gaussian
//! noise, dropouts, and range/field-of-view limits, at a per-sensor
//! refresh rate. The slowest sensor runs at **7.5 Hz**, which the paper
//! uses as the discrete time base of the injector (§III-A,
//! "Discretization").
//!
//! # Example
//!
//! ```
//! use drivefi_sensors::SensorSuite;
//! use drivefi_world::{World, scenario::ScenarioConfig, ActorKind};
//!
//! let cfg = ScenarioConfig::lead_vehicle_cruise(3);
//! let mut world = World::from_scenario(&cfg);
//! world.set_ego(cfg.ego_start, ActorKind::Car.dims());
//! let mut suite = SensorSuite::with_seed(42);
//! let frame = suite.sample(&world, 0);
//! assert!(frame.imu.is_some()); // IMU ticks on frame 0
//! ```

pub mod detection;
pub mod noise;
pub mod object_sensor;
pub mod suite;

pub use detection::{Detection, GpsFix, ImuSample, SensorKind};
pub use noise::Gaussian;
pub use object_sensor::ObjectSensor;
pub use suite::{SensorFrame, SensorSuite};
