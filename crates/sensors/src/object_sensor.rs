//! A generic object sensor: ground truth degraded by noise, dropout, and
//! range/field-of-view limits.

use crate::{Detection, Gaussian, SensorKind};
use drivefi_kinematics::Vec2;
use drivefi_world::{segment_intersects_obb, World};
use rand::Rng;

/// Shrink factor applied to occluder bodies in the line-of-sight test:
/// sensors are mounted high and wide, so grazing geometry still sees
/// past a blocker.
const OCCLUDER_SHRINK: f64 = 0.85;

/// True when the straight line from `eye` to `target_center` is blocked
/// by any *other* actor's body. Paper Example 2 hinges on exactly this:
/// the lead vehicle hides the stopped traffic ahead of it.
fn occluded(world: &World, eye: Vec2, target_center: Vec2, target_id: u32) -> bool {
    world.actors().iter().any(|other| {
        if other.id.0 == target_id {
            return false;
        }
        let mut obb = other.obb();
        obb.half_length *= OCCLUDER_SHRINK;
        obb.half_width *= OCCLUDER_SHRINK;
        segment_intersects_obb(eye, target_center, &obb)
    })
}

/// Configuration and state of one object-detecting sensor (camera, LiDAR,
/// RADAR).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ObjectSensor {
    /// Which sensor this models.
    pub kind: SensorKind,
    /// Maximum detection range \[m\].
    pub range: f64,
    /// Half field-of-view \[rad\] (π for 360° LiDAR).
    pub half_fov: f64,
    /// Position noise σ \[m\].
    pub pos_noise: f64,
    /// Relative-velocity noise σ \[m/s\].
    pub vel_noise: f64,
    /// Probability of missing an in-range object entirely.
    pub dropout: f64,
    /// Refresh rate \[Hz\].
    pub rate_hz: f64,
}

impl ObjectSensor {
    /// A forward camera: 60° FOV, 150 m, accurate laterally, noisy in
    /// depth and velocity. Runs at 30 Hz.
    pub fn camera() -> Self {
        ObjectSensor {
            kind: SensorKind::Camera,
            range: 150.0,
            half_fov: 30f64.to_radians(),
            pos_noise: 0.6,
            vel_noise: 1.0,
            dropout: 0.03,
            rate_hz: 30.0,
        }
    }

    /// A 360° LiDAR: 120 m, very accurate position. Runs at 7.5 Hz — the
    /// slowest sensor, which sets the injector time base (paper §III-A).
    pub fn lidar() -> Self {
        ObjectSensor {
            kind: SensorKind::Lidar,
            range: 120.0,
            half_fov: std::f64::consts::PI,
            pos_noise: 0.1,
            vel_noise: 0.5,
            dropout: 0.01,
            rate_hz: 7.5,
        }
    }

    /// A forward RADAR: 200 m, 20° FOV, accurate radial velocity. 15 Hz.
    pub fn radar() -> Self {
        ObjectSensor {
            kind: SensorKind::Radar,
            range: 200.0,
            half_fov: 10f64.to_radians(),
            pos_noise: 0.8,
            vel_noise: 0.2,
            dropout: 0.02,
            rate_hz: 15.0,
        }
    }

    /// Senses every visible actor in `world` relative to the registered
    /// ego pose. Detections are in the ego frame.
    ///
    /// # Panics
    ///
    /// Panics if the world has no registered ego pose.
    pub fn sense<R: Rng + ?Sized>(&self, world: &World, rng: &mut R) -> Vec<Detection> {
        let mut out = Vec::new();
        self.sense_into(world, rng, &mut out);
        out
    }

    /// Like [`ObjectSensor::sense`], but writes into `out` (cleared
    /// first), reusing its capacity so steady-state sampling never
    /// allocates. The RNG draw sequence is identical to `sense`: one
    /// dropout draw per visible actor, then four noise draws per kept
    /// detection — draws never depend on the buffer.
    ///
    /// # Panics
    ///
    /// Panics if the world has no registered ego pose.
    pub fn sense_into<R: Rng + ?Sized>(
        &self,
        world: &World,
        rng: &mut R,
        out: &mut Vec<Detection>,
    ) {
        let (ego, _) = world.ego().expect("sensors require a registered ego pose");
        let ego_pos = ego.position();
        let ego_vel = ego.velocity();
        // One rotation into the ego frame serves both the position and the
        // relative velocity of every actor (`to_local` and `into_frame`
        // rotate by the same `-θ`; hoisting the sin/cos out of the loop
        // keeps the values bit-identical).
        let (frame_sin, frame_cos) = (-ego.theta).sin_cos();
        // A full-circle sensor sees every bearing: `atan2` stays within
        // ±π, so the field-of-view test cannot fail and is skipped.
        let check_fov = self.half_fov < std::f64::consts::PI;
        // Range gating compares squared distances: the norm itself is
        // never published, and `hypot` costs several times a multiply.
        let range_sq = self.range * self.range;
        let pos_noise = Gaussian::new(0.0, self.pos_noise);
        let vel_noise = Gaussian::new(0.0, self.vel_noise);

        out.clear();
        for actor in world.actors() {
            let actor_pos = Vec2::new(actor.state.x, actor.state.y);
            let local = (actor_pos - ego_pos).rotated_by(frame_sin, frame_cos);
            if local.norm_sq() > range_sq {
                continue;
            }
            if check_fov {
                let bearing = local.y.atan2(local.x);
                if bearing.abs() > self.half_fov {
                    continue;
                }
            }
            if occluded(world, ego_pos, actor_pos, actor.id.0) {
                continue;
            }
            if rng.random::<f64>() < self.dropout {
                continue;
            }
            let rel_vel_world = actor.velocity() - ego_vel;
            let rel_vel = rel_vel_world.rotated_by(frame_sin, frame_cos);
            let dims = actor.dims();
            out.push(Detection {
                sensor: self.kind,
                position: Vec2::new(
                    local.x + pos_noise.sample(rng),
                    local.y + pos_noise.sample(rng),
                ),
                rel_velocity: Vec2::new(
                    rel_vel.x + vel_noise.sample(rng),
                    rel_vel.y + vel_noise.sample(rng),
                ),
                extent: Vec2::new(dims.length, dims.width),
                truth_id: actor.id.0,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drivefi_kinematics::VehicleState;
    use drivefi_world::{Actor, ActorId, ActorKind, Behavior, Road};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn world_with_car_at(x: f64, y: f64) -> World {
        let mut w = World::new(Road::default_highway());
        w.add_actor(Actor::new(
            ActorId(1),
            ActorKind::Car,
            VehicleState::new(x, y, 10.0, 0.0, 0.0),
            Behavior::ConstantSpeed,
        ));
        w.set_ego(VehicleState::new(0.0, 0.0, 20.0, 0.0, 0.0), ActorKind::Car.dims());
        w
    }

    #[test]
    fn detects_object_ahead() {
        let w = world_with_car_at(50.0, 0.0);
        let mut rng = StdRng::seed_from_u64(1);
        let dets = ObjectSensor::lidar().sense(&w, &mut rng);
        assert_eq!(dets.len(), 1);
        let d = dets[0];
        assert!((d.position.x - 50.0).abs() < 1.0);
        assert!((d.rel_velocity.x - (-10.0)).abs() < 2.0);
        assert_eq!(d.truth_id, 1);
    }

    #[test]
    fn out_of_range_is_invisible() {
        let w = world_with_car_at(500.0, 0.0);
        let mut rng = StdRng::seed_from_u64(1);
        assert!(ObjectSensor::lidar().sense(&w, &mut rng).is_empty());
        assert!(ObjectSensor::radar().sense(&w, &mut rng).is_empty());
    }

    #[test]
    fn narrow_fov_misses_side_objects() {
        // Object nearly perpendicular: visible to 360° lidar, not radar.
        let w = world_with_car_at(5.0, 20.0);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(ObjectSensor::lidar().sense(&w, &mut rng).len(), 1);
        assert!(ObjectSensor::radar().sense(&w, &mut rng).is_empty());
    }

    #[test]
    fn dropout_eventually_misses() {
        let w = world_with_car_at(50.0, 0.0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut sensor = ObjectSensor::camera();
        sensor.dropout = 0.5;
        let misses = (0..200).filter(|_| sensor.sense(&w, &mut rng).is_empty()).count();
        assert!(misses > 50 && misses < 150, "misses = {misses}");
    }

    #[test]
    fn occluded_object_is_invisible_until_revealed() {
        let mut w = World::new(Road::default_highway());
        // Near car blocks the line of sight to the far car.
        w.add_actor(Actor::new(
            ActorId(1),
            ActorKind::Car,
            VehicleState::new(40.0, 0.0, 10.0, 0.0, 0.0),
            Behavior::ConstantSpeed,
        ));
        w.add_actor(Actor::new(
            ActorId(2),
            ActorKind::Car,
            VehicleState::new(90.0, 0.0, 0.0, 0.0, 0.0),
            Behavior::Static,
        ));
        w.set_ego(VehicleState::new(0.0, 0.0, 20.0, 0.0, 0.0), ActorKind::Car.dims());
        let mut rng = StdRng::seed_from_u64(1);
        let mut sensor = ObjectSensor::lidar();
        sensor.dropout = 0.0;
        let ids: Vec<u32> = sensor.sense(&w, &mut rng).iter().map(|d| d.truth_id).collect();
        assert_eq!(ids, vec![1], "far car should be hidden: {ids:?}");

        // Move the blocker a lane over: the far car is revealed.
        let mut w2 = World::new(Road::default_highway());
        w2.add_actor(Actor::new(
            ActorId(1),
            ActorKind::Car,
            VehicleState::new(40.0, 3.7, 10.0, 0.0, 0.0),
            Behavior::ConstantSpeed,
        ));
        w2.add_actor(Actor::new(
            ActorId(2),
            ActorKind::Car,
            VehicleState::new(90.0, 0.0, 0.0, 0.0, 0.0),
            Behavior::Static,
        ));
        w2.set_ego(VehicleState::new(0.0, 0.0, 20.0, 0.0, 0.0), ActorKind::Car.dims());
        let mut ids: Vec<u32> = sensor.sense(&w2, &mut rng).iter().map(|d| d.truth_id).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![1, 2], "both cars visible: {ids:?}");
    }

    #[test]
    fn noise_statistics_match_spec() {
        let w = world_with_car_at(50.0, 0.0);
        let mut rng = StdRng::seed_from_u64(3);
        let s = ObjectSensor::camera();
        let n = 5000;
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        for _ in 0..n {
            let dets = s.sense(&w, &mut rng);
            if let Some(d) = dets.first() {
                let err = d.position.x - 50.0;
                sum += err;
                sum_sq += err * err;
            }
        }
        let mean = sum / n as f64;
        let std = (sum_sq / n as f64 - mean * mean).sqrt();
        assert!(mean.abs() < 0.05, "bias = {mean}");
        assert!((std - s.pos_noise).abs() < 0.1, "std = {std}");
    }
}
