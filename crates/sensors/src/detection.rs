//! Sensor output messages.

use drivefi_kinematics::Vec2;

/// The physical sensor that produced a measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SensorKind {
    /// Forward camera (object detection stand-in).
    Camera,
    /// Spinning LiDAR (slowest sensor, 7.5 Hz — the injector time base).
    Lidar,
    /// Forward RADAR (long range, good radial velocity).
    Radar,
    /// GNSS receiver.
    Gps,
    /// Inertial measurement unit / CAN odometry.
    Imu,
}

impl std::fmt::Display for SensorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            SensorKind::Camera => "camera",
            SensorKind::Lidar => "lidar",
            SensorKind::Radar => "radar",
            SensorKind::Gps => "gps",
            SensorKind::Imu => "imu",
        };
        f.write_str(s)
    }
}

/// One detected object, expressed in the **ego frame** (+x forward,
/// +y left), as perception stacks consume it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Detection {
    /// Producing sensor.
    pub sensor: SensorKind,
    /// Object center relative to the ego \[m\].
    pub position: Vec2,
    /// Object velocity relative to the ego \[m/s\] (ego frame).
    pub rel_velocity: Vec2,
    /// Estimated object footprint (length, width) \[m\].
    pub extent: Vec2,
    /// Ground-truth actor id — carried for *evaluation only*; the ADS
    /// never reads it (real sensors cannot know identities).
    pub truth_id: u32,
}

/// A GNSS fix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpsFix {
    /// World position estimate \[m\].
    pub position: Vec2,
    /// Heading estimate \[rad\].
    pub heading: f64,
}

/// An inertial / odometry sample — the paper's `M_t`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ImuSample {
    /// Speed over ground \[m/s\].
    pub speed: f64,
    /// Longitudinal acceleration \[m/s²\].
    pub accel: f64,
    /// Yaw rate \[rad/s\].
    pub yaw_rate: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sensor_kind_display() {
        assert_eq!(SensorKind::Lidar.to_string(), "lidar");
        assert_eq!(SensorKind::Camera.to_string(), "camera");
    }

    #[test]
    fn detection_is_copy_and_comparable() {
        let d = Detection {
            sensor: SensorKind::Radar,
            position: Vec2::new(10.0, 0.0),
            rel_velocity: Vec2::new(-2.0, 0.0),
            extent: Vec2::new(4.7, 1.9),
            truth_id: 3,
        };
        let e = d;
        assert_eq!(d, e);
    }
}
