//! The full sensor suite with per-sensor refresh scheduling.

use crate::{Detection, Gaussian, GpsFix, ImuSample, ObjectSensor};
use drivefi_kinematics::Vec2;
use drivefi_world::World;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The base tick rate of the ADS loop \[Hz\]. All sensor rates divide it.
pub const ADS_TICK_HZ: f64 = 30.0;

/// One multi-sensor frame. A field is `None` when that sensor did not
/// refresh on this tick (its rate divides the 30 Hz base tick).
#[derive(Debug, Clone, Default)]
pub struct SensorFrame {
    /// Camera object list, if the camera ticked.
    pub camera: Option<Vec<Detection>>,
    /// LiDAR object list, if the LiDAR ticked.
    pub lidar: Option<Vec<Detection>>,
    /// RADAR object list, if the RADAR ticked.
    pub radar: Option<Vec<Detection>>,
    /// GNSS fix, if the receiver ticked.
    pub gps: Option<GpsFix>,
    /// Inertial sample, if the IMU ticked.
    pub imu: Option<ImuSample>,
}

impl SensorFrame {
    /// Iterates over all object detections present in this frame.
    pub fn detections(&self) -> impl Iterator<Item = &Detection> {
        self.camera.iter().chain(self.lidar.iter()).chain(self.radar.iter()).flatten()
    }
}

/// The complete sensor suite of the ego vehicle.
#[derive(Debug, Clone)]
pub struct SensorSuite {
    /// Forward camera.
    pub camera: ObjectSensor,
    /// 360° LiDAR (slowest sensor, 7.5 Hz).
    pub lidar: ObjectSensor,
    /// Forward RADAR.
    pub radar: ObjectSensor,
    /// GPS position noise σ \[m\].
    pub gps_noise: f64,
    /// IMU speed noise σ \[m/s\].
    pub imu_noise: f64,
    rng: StdRng,
    last_speed: Option<f64>,
    /// Spare detection buffers, one per object channel (camera, lidar,
    /// radar). A channel's buffer parks here while its sensor skips
    /// ticks, so [`SensorSuite::sample_into`] never reallocates when the
    /// sensor comes back on its next scheduled frame.
    spares: [Vec<Detection>; 3],
}

impl SensorSuite {
    /// Creates the default suite with a deterministic RNG seed.
    pub fn with_seed(seed: u64) -> Self {
        // Placeholder fields; `reseed` is the single source of truth for
        // the constructed state so the two paths can never diverge.
        let mut suite = SensorSuite {
            camera: ObjectSensor::camera(),
            lidar: ObjectSensor::lidar(),
            radar: ObjectSensor::radar(),
            gps_noise: 0.0,
            imu_noise: 0.0,
            rng: StdRng::seed_from_u64(0),
            last_speed: None,
            spares: [Vec::new(), Vec::new(), Vec::new()],
        };
        suite.reseed(seed);
        suite
    }

    /// Resets the suite in place to the state [`SensorSuite::with_seed`]
    /// constructs — sensor configurations, noise levels, RNG stream, and
    /// IMU differentiator history. The pooled detection buffers keep
    /// their capacity (they are cleared, not dropped), so on the
    /// campaign arena path — one suite serving every job of a worker —
    /// sampling stays allocation-free across job boundaries.
    pub fn reseed(&mut self, seed: u64) {
        self.camera = ObjectSensor::camera();
        self.lidar = ObjectSensor::lidar();
        self.radar = ObjectSensor::radar();
        self.gps_noise = 0.15;
        self.imu_noise = 0.05;
        self.rng = StdRng::seed_from_u64(seed ^ 0x5E45_0125);
        self.last_speed = None;
        for spare in &mut self.spares {
            spare.clear();
        }
    }

    /// Whether a sensor with `rate_hz` refreshes on base-tick `frame`.
    fn ticks(rate_hz: f64, frame: u64) -> bool {
        let divisor = (ADS_TICK_HZ / rate_hz).round().max(1.0) as u64;
        frame.is_multiple_of(divisor)
    }

    /// Samples all sensors for base-tick `frame` (30 Hz ticks).
    ///
    /// Thin wrapper over [`SensorSuite::sample_into`] returning a fresh
    /// frame; the pooled path is what campaigns run on.
    ///
    /// # Panics
    ///
    /// Panics if the world has no registered ego pose.
    pub fn sample(&mut self, world: &World, frame: u64) -> SensorFrame {
        let mut out = SensorFrame::default();
        self.sample_into(world, frame, &mut out);
        out
    }

    /// Samples all sensors for base-tick `frame` into `out`, reusing its
    /// detection buffers (and the suite's spare pool) so steady-state
    /// sampling performs no heap allocation. Every field of `out` is
    /// overwritten — the result is independent of the frame's prior
    /// contents — and the RNG stream is identical to
    /// [`SensorSuite::sample`]: camera → lidar → radar → GPS → IMU.
    ///
    /// # Panics
    ///
    /// Panics if the world has no registered ego pose.
    pub fn sample_into(&mut self, world: &World, frame: u64, out: &mut SensorFrame) {
        let (ego, _) = world.ego().expect("sensors require a registered ego pose");

        let [camera_spare, lidar_spare, radar_spare] = &mut self.spares;
        Self::refresh_channel(
            &self.camera,
            Self::ticks(self.camera.rate_hz, frame),
            world,
            &mut self.rng,
            &mut out.camera,
            camera_spare,
        );
        Self::refresh_channel(
            &self.lidar,
            Self::ticks(self.lidar.rate_hz, frame),
            world,
            &mut self.rng,
            &mut out.lidar,
            lidar_spare,
        );
        Self::refresh_channel(
            &self.radar,
            Self::ticks(self.radar.rate_hz, frame),
            world,
            &mut self.rng,
            &mut out.radar,
            radar_spare,
        );
        out.gps = None;
        out.imu = None;
        if Self::ticks(7.5, frame) {
            let g = Gaussian::new(0.0, self.gps_noise);
            out.gps = Some(GpsFix {
                position: Vec2::new(
                    ego.x + g.sample(&mut self.rng),
                    ego.y + g.sample(&mut self.rng),
                ),
                heading: ego.theta + Gaussian::new(0.0, 0.004).sample(&mut self.rng),
            });
        }
        if Self::ticks(30.0, frame) {
            let g = Gaussian::new(0.0, self.imu_noise);
            let speed = ego.v + g.sample(&mut self.rng);
            let dt = 1.0 / ADS_TICK_HZ;
            let accel = self.last_speed.map_or(0.0, |prev| (speed - prev) / dt);
            self.last_speed = Some(speed);
            out.imu = Some(ImuSample { speed, accel, yaw_rate: ego.v * ego.phi.tan() / 2.8 });
        }
    }

    /// Takes the detection buffers out of `frame` (clearing them) and
    /// parks them in the suite's spare pool. Campaign arenas call this
    /// before resetting the bus between jobs so the pooled buffers
    /// survive job boundaries instead of being dropped with the frame.
    pub fn reclaim_frame(&mut self, frame: &mut SensorFrame) {
        let channels = [&mut frame.camera, &mut frame.lidar, &mut frame.radar];
        for (spare, channel) in self.spares.iter_mut().zip(channels) {
            if let Some(mut buf) = channel.take() {
                buf.clear();
                *spare = buf;
            }
        }
    }

    /// Refreshes one object channel in place. A ticking sensor fills the
    /// channel's existing buffer (or reclaims the pooled spare); a
    /// skipping sensor sets the channel to `None` and parks its buffer in
    /// the spare slot for the next scheduled frame.
    fn refresh_channel(
        sensor: &ObjectSensor,
        ticked: bool,
        world: &World,
        rng: &mut StdRng,
        channel: &mut Option<Vec<Detection>>,
        spare: &mut Vec<Detection>,
    ) {
        if ticked {
            let mut buf = channel.take().unwrap_or_else(|| std::mem::take(spare));
            sensor.sense_into(world, rng, &mut buf);
            *channel = Some(buf);
        } else if let Some(mut buf) = channel.take() {
            buf.clear();
            *spare = buf;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drivefi_world::{scenario::ScenarioConfig, ActorKind, World};

    fn world() -> World {
        let cfg = ScenarioConfig::lead_vehicle_cruise(9);
        let mut w = World::from_scenario(&cfg);
        w.set_ego(cfg.ego_start, ActorKind::Car.dims());
        w
    }

    #[test]
    fn rates_divide_base_tick() {
        // 30 Hz camera ticks every frame; 7.5 Hz lidar every 4th.
        assert!(SensorSuite::ticks(30.0, 0));
        assert!(SensorSuite::ticks(30.0, 1));
        assert!(SensorSuite::ticks(7.5, 0));
        assert!(!SensorSuite::ticks(7.5, 1));
        assert!(!SensorSuite::ticks(7.5, 3));
        assert!(SensorSuite::ticks(7.5, 4));
        assert!(SensorSuite::ticks(15.0, 2));
        assert!(!SensorSuite::ticks(15.0, 3));
    }

    #[test]
    fn frame_population_follows_rates() {
        let w = world();
        let mut suite = SensorSuite::with_seed(1);
        let f0 = suite.sample(&w, 0);
        assert!(f0.camera.is_some() && f0.lidar.is_some() && f0.gps.is_some() && f0.imu.is_some());
        let f1 = suite.sample(&w, 1);
        assert!(f1.camera.is_some());
        assert!(f1.lidar.is_none() && f1.gps.is_none());
    }

    #[test]
    fn detections_iterator_merges_sensors() {
        let w = world();
        let mut suite = SensorSuite::with_seed(1);
        // Remove dropout for determinism.
        suite.camera.dropout = 0.0;
        suite.lidar.dropout = 0.0;
        suite.radar.dropout = 0.0;
        let f = suite.sample(&w, 0);
        // Lead car visible to camera, lidar, and radar.
        assert_eq!(f.detections().count(), 3);
    }

    #[test]
    fn imu_accel_tracks_speed_changes() {
        let w = world();
        let mut suite = SensorSuite::with_seed(1);
        suite.imu_noise = 0.0;
        let _ = suite.sample(&w, 0);
        let f = suite.sample(&w, 1);
        // Constant ego speed → near-zero measured acceleration.
        assert!(f.imu.unwrap().accel.abs() < 1e-9);
    }

    #[test]
    fn gps_fix_near_truth() {
        let w = world();
        let mut suite = SensorSuite::with_seed(1);
        let f = suite.sample(&w, 0);
        let fix = f.gps.unwrap();
        let (ego, _) = w.ego().unwrap();
        assert!((fix.position.x - ego.x).abs() < 3.0);
        assert!((fix.position.y - ego.y).abs() < 3.0);
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let w = world();
        let mut a = SensorSuite::with_seed(5);
        let mut b = SensorSuite::with_seed(5);
        let fa = a.sample(&w, 0);
        let fb = b.sample(&w, 0);
        assert_eq!(fa.camera.unwrap(), fb.camera.unwrap());
    }
}
