//! Property-based equivalence of the pooled sampling path.
//!
//! [`SensorSuite::sample_into`] writing into an arbitrarily *dirty*
//! reused frame must be indistinguishable — field for field, bit for
//! bit — from a fresh [`SensorSuite::sample`] on an identically seeded
//! suite, across fuzzed sensor schedules, dropout rates, actor layouts,
//! and mid-run re-dirtying. The RNG streams must stay in lockstep the
//! whole run: any divergence in draw order shows up as a noise mismatch
//! within a frame or two.

use drivefi_kinematics::{Vec2, VehicleState};
use drivefi_sensors::{Detection, GpsFix, ImuSample, SensorFrame, SensorKind, SensorSuite};
use drivefi_world::{Actor, ActorId, ActorKind, Behavior, Road, World};
use proptest::prelude::*;

/// A garbage detection that should never survive a refresh.
fn junk_detection(tag: f64) -> Detection {
    Detection {
        sensor: SensorKind::Camera,
        position: Vec2::new(1e9 + tag, -1e9),
        rel_velocity: Vec2::new(f64::MAX, tag),
        extent: Vec2::new(-1.0, -1.0),
        truth_id: u32::MAX,
    }
}

/// Fills every channel of `frame` with garbage the next `sample_into`
/// must fully overwrite.
fn dirty(frame: &mut SensorFrame, junk: usize) {
    frame.camera = Some((0..junk).map(|i| junk_detection(i as f64)).collect());
    frame.lidar = Some(vec![junk_detection(-1.0); junk]);
    frame.radar = Some(vec![junk_detection(-2.0)]);
    frame.gps = Some(GpsFix { position: Vec2::new(f64::NAN, 1e12), heading: -7.0 });
    frame.imu = Some(ImuSample { speed: -1e6, accel: 1e6, yaw_rate: f64::NAN });
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn sample_into_dirty_buffers_equals_fresh_sample(
        seed in any::<u64>(),
        actors in prop::collection::vec(
            (5.0..180.0f64, -5.5..5.5f64, 0.0..30.0f64), 0..5),
        ego_v in 0.0..35.0f64,
        frames in 1u64..40,
        junk in 0usize..6,
        cam_dropout in 0.0..0.9f64,
        radar_rate in prop::sample::select(vec![30.0f64, 15.0, 7.5, 5.0]),
        lidar_rate in prop::sample::select(vec![15.0f64, 7.5, 3.75]),
        redirty_every in 1u64..5,
    ) {
        let mut world = World::new(Road::default_highway());
        for (i, (x, y, v)) in actors.iter().enumerate() {
            world.add_actor(Actor::new(
                ActorId(i as u32 + 1),
                ActorKind::Car,
                VehicleState::new(*x, *y, *v, 0.0, 0.0),
                Behavior::ConstantSpeed,
            ));
        }
        world.set_ego(VehicleState::new(0.0, 0.0, ego_v, 0.0, 0.0), ActorKind::Car.dims());

        let mut fresh = SensorSuite::with_seed(seed);
        let mut pooled = SensorSuite::with_seed(seed);
        for suite in [&mut fresh, &mut pooled] {
            suite.camera.dropout = cam_dropout;
            suite.radar.rate_hz = radar_rate;
            suite.lidar.rate_hz = lidar_rate;
        }

        let mut frame = SensorFrame::default();
        dirty(&mut frame, junk);
        for f in 0..frames {
            if f > 0 && f % redirty_every == 0 {
                // Mid-run corruption: the pooled path must stay
                // independent of the buffer's prior contents at every
                // frame, not just the first.
                dirty(&mut frame, junk);
            }
            let want = fresh.sample(&world, f);
            pooled.sample_into(&world, f, &mut frame);
            // Debug formatting round-trips f64 exactly (including the
            // sign of zero), so string equality is bitwise equality.
            prop_assert_eq!(format!("{frame:?}"), format!("{want:?}"), "frame {}", f);
            world.step(1.0 / 30.0);
        }
    }
}
