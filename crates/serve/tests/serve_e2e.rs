//! Daemon end-to-end, in process: two concurrently submitted plans
//! scheduled fair-share to completion must produce `report.toml` +
//! `jobs.csv` byte-identical to standalone `run_plan` invocations of
//! the same plans — including across a daemon "crash" at a slice
//! boundary (a `max_rounds`-bounded serve followed by a fresh one,
//! exactly the state a `kill -9` leaves behind modulo the torn slice
//! the store recovers; the real-kill variant lives in CI).

use drivefi_plan::{run_plan_budget, CampaignPlan, OutputSpec, PlanResult, JOBS_FILE, REPORT_FILE};
use drivefi_serve::{
    serve, submit_plan, CampaignState, CampaignStatus, ServeConfig, CAMPAIGNS_DIR, PLAN_FILE,
};
use std::path::{Path, PathBuf};

fn temp_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("drivefi-serve-e2e-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A small random plan. `weight` lands in `[submit]`; runs stay small
/// enough that the whole suite is a couple of engine seconds.
fn random_plan(name: &str, runs: u32, seed: u64, weight: u32) -> String {
    let submit =
        if weight == 1 { String::new() } else { format!("\n[submit]\nweight = {weight}\n") };
    format!(
        "name = \"{name}\"\n\n[campaign]\nkind = \"random\"\nruns = {runs}\nseed = {seed}\n\n\
         [scenarios]\nsource = \"paper\"\ncount = 2\nseed = 7\n{submit}"
    )
}

fn write_plan(dir: &Path, file: &str, text: &str) -> PathBuf {
    let path = dir.join(file);
    std::fs::write(&path, text).unwrap();
    path
}

/// Standalone reference: the same plan text run to completion into its
/// own store, the way `drivefi run` would.
fn standalone_report(plan_path: &Path, out: &Path) -> (Vec<u8>, Vec<u8>) {
    let mut plan = CampaignPlan::load(plan_path).unwrap();
    let spec = plan.output.take().unwrap_or_else(|| OutputSpec::new(""));
    plan.output = Some(OutputSpec { dir: out.display().to_string(), ..spec });
    let PlanResult::Persisted(report) = run_plan_budget(&plan, None).unwrap() else {
        panic!("standalone run did not persist");
    };
    assert!(report.complete());
    (std::fs::read(out.join(REPORT_FILE)).unwrap(), std::fs::read(out.join(JOBS_FILE)).unwrap())
}

fn served_artifacts(root: &Path, id: &str) -> (Vec<u8>, Vec<u8>) {
    let store = root.join(CAMPAIGNS_DIR).join(id).join("store");
    (std::fs::read(store.join(REPORT_FILE)).unwrap(), std::fs::read(store.join(JOBS_FILE)).unwrap())
}

#[test]
fn two_submissions_drain_to_standalone_identical_reports() {
    let root = temp_root("drain");
    let a = write_plan(&root, "a.toml", &random_plan("alpha", 9, 11, 1));
    let b = write_plan(&root, "b.toml", &random_plan("beta", 7, 22, 1));
    assert_eq!(submit_plan(&root, &a).unwrap(), "alpha");
    assert_eq!(submit_plan(&root, &b).unwrap(), "beta");

    let config = ServeConfig { slice: 3, drain: true, ..ServeConfig::default() };
    let summary = serve(&root, &config).unwrap();
    assert_eq!((summary.admitted, summary.done, summary.failed), (2, 2, 0));

    for (plan_path, id) in [(&a, "alpha"), (&b, "beta")] {
        let reference = temp_root(&format!("drain-ref-{id}"));
        let (ref_report, ref_jobs) = standalone_report(plan_path, &reference);
        let (report, jobs) = served_artifacts(&root, id);
        assert_eq!(report, ref_report, "{id}: report.toml diverged from standalone");
        assert_eq!(jobs, ref_jobs, "{id}: jobs.csv diverged from standalone");

        let status = CampaignStatus::load(&root.join(CAMPAIGNS_DIR).join(id)).unwrap();
        assert_eq!(status.state, CampaignState::Done);
        assert_eq!(status.done, status.total);
        assert_eq!(status.safe + status.hazards + status.collisions, status.total);
        std::fs::remove_dir_all(&reference).ok();
    }
    // Sealed stores were compacted between rounds and marked.
    assert!(root.join(CAMPAIGNS_DIR).join("alpha/store/.compacted").is_file());
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn interrupted_daemon_resumes_to_identical_bytes() {
    let root = temp_root("interrupt");
    let plan = write_plan(&root, "p.toml", &random_plan("resumable", 10, 33, 1));
    submit_plan(&root, &plan).unwrap();

    // Bounded first daemon: enough rounds for partial progress only.
    let partial = ServeConfig { slice: 2, max_rounds: Some(2), ..ServeConfig::default() };
    serve(&root, &partial).unwrap();
    let dir = root.join(CAMPAIGNS_DIR).join("resumable");
    let status = CampaignStatus::load(&dir).unwrap();
    assert_eq!(status.state, CampaignState::Running);
    assert_eq!(status.done, 4, "2 rounds x slice 2");
    assert_eq!(status.slices, 2);

    // Fresh daemon over the same root: recovers the campaign from disk
    // (nothing left in the spool) and drains it.
    let drain = ServeConfig { slice: 4, drain: true, ..ServeConfig::default() };
    let summary = serve(&root, &drain).unwrap();
    assert_eq!((summary.admitted, summary.done), (1, 1));
    let status = CampaignStatus::load(&dir).unwrap();
    assert_eq!(status.state, CampaignState::Done);
    assert!(status.slices > 2, "slice count survives the restart");

    let reference = temp_root("interrupt-ref");
    let (ref_report, ref_jobs) = standalone_report(&plan, &reference);
    let (report, jobs) = served_artifacts(&root, "resumable");
    assert_eq!(report, ref_report);
    assert_eq!(jobs, ref_jobs);
    std::fs::remove_dir_all(&reference).ok();
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn submit_weight_scales_the_per_round_share() {
    let root = temp_root("weight");
    let light = write_plan(&root, "l.toml", &random_plan("light", 8, 1, 1));
    let heavy = write_plan(&root, "h.toml", &random_plan("heavy", 8, 1, 3));
    submit_plan(&root, &light).unwrap();
    submit_plan(&root, &heavy).unwrap();

    let one_round = ServeConfig { slice: 2, max_rounds: Some(1), ..ServeConfig::default() };
    serve(&root, &one_round).unwrap();

    let light_status = CampaignStatus::load(&root.join(CAMPAIGNS_DIR).join("light")).unwrap();
    let heavy_status = CampaignStatus::load(&root.join(CAMPAIGNS_DIR).join("heavy")).unwrap();
    assert_eq!(light_status.done, 2, "weight 1 x slice 2");
    assert_eq!(heavy_status.done, 6, "weight 3 x slice 2");
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn a_failing_campaign_never_blocks_the_others() {
    let root = temp_root("failure");
    // A plan that parses but cannot run under the daemon: an unreadable
    // plan file dropped straight into campaigns/ (bypassing submission
    // validation, as a partial rsync or hand edit would).
    let bad = root.join(CAMPAIGNS_DIR).join("broken");
    std::fs::create_dir_all(&bad).unwrap();
    std::fs::write(bad.join(PLAN_FILE), "name = \"broken\"\n[campaign]\nkind = \"wat\"\n").unwrap();

    let good = write_plan(&root, "g.toml", &random_plan("good", 5, 44, 1));
    submit_plan(&root, &good).unwrap();

    let config = ServeConfig { slice: 8, drain: true, ..ServeConfig::default() };
    let summary = serve(&root, &config).unwrap();
    assert_eq!((summary.admitted, summary.done, summary.failed), (2, 1, 1));

    let broken = CampaignStatus::load(&bad).unwrap();
    assert_eq!(broken.state, CampaignState::Failed);
    assert!(broken.error.is_some());
    // The failure verdict is trusted across restarts: a second daemon
    // does not grind on the broken plan again.
    let summary = serve(&root, &config).unwrap();
    assert_eq!((summary.done, summary.failed), (1, 1));
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn mine_pipeline_reports_stage_transitions_and_drains() {
    let root = temp_root("mine");
    // Pipeline kinds insist on an [output] section at parse time; the
    // daemon overrides its dir with the campaign's own store.
    let plan_text = "name = \"served-mine\"\n\n[campaign]\nkind = \"mine\"\nscene_stride = 25\n\
                     seed = 0\n\n[scenarios]\nsource = \"paper\"\ncount = 2\nseed = 42\n\n\
                     [output]\ndir = \"out/served_mine\"\nshards = 2\ncheckpoint_every = 16\n";
    let plan = write_plan(&root, "m.toml", plan_text);
    submit_plan(&root, &plan).unwrap();

    // One slice of one job: only golden-stage progress exists.
    let first = ServeConfig { slice: 1, max_rounds: Some(1), ..ServeConfig::default() };
    serve(&root, &first).unwrap();
    let dir = root.join(CAMPAIGNS_DIR).join("served-mine");
    let status = CampaignStatus::load(&dir).unwrap();
    assert_eq!(status.state, CampaignState::Running);
    assert_eq!(status.stage, "golden");
    assert_eq!((status.done, status.total), (1, 2));

    // Drain the pipeline; the final stage is the validate sub-store.
    let drain = ServeConfig { slice: 64, drain: true, ..ServeConfig::default() };
    let summary = serve(&root, &drain).unwrap();
    assert_eq!((summary.done, summary.failed), (1, 0));
    let status = CampaignStatus::load(&dir).unwrap();
    assert_eq!(status.state, CampaignState::Done);
    assert_eq!(status.stage, "validate");
    assert_eq!(status.done, status.total);

    let reference = temp_root("mine-ref");
    let (ref_report, ref_jobs) = standalone_report(&plan, &reference);
    let (report, jobs) = served_artifacts(&root, "served-mine");
    assert_eq!(report, ref_report);
    assert_eq!(jobs, ref_jobs);
    // Both stage stores were sealed and compacted.
    assert!(dir.join("store/golden/.compacted").is_file());
    assert!(dir.join("store/validate/.compacted").is_file());
    std::fs::remove_dir_all(&reference).ok();
    std::fs::remove_dir_all(&root).ok();
}
