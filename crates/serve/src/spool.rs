//! The submission protocol: atomic renames in, atomic renames out.
//!
//! A serve root has two directories:
//!
//! ```text
//! root/spool/<id>.toml          submitted plans, waiting to be claimed
//! root/campaigns/<id>/plan.toml claimed plans, owned by the daemon
//! ```
//!
//! [`submit_plan`] validates the plan *client-side* (a typo'd plan
//! fails at submission, not minutes later inside the daemon's log),
//! canonicalizes it, writes it to a dot-prefixed temp file in the
//! spool, and renames it into place — so the daemon only ever sees
//! complete plan files. [`claim_submissions`] claims a spooled plan by
//! renaming it into a fresh campaign directory; rename is atomic and
//! fails for every process but one, so two daemons pointed at the same
//! root never both run one submission.
//!
//! Canonicalization matters for one selection kind: `source = "files"`
//! scenario specs are resolved relative to the *submitter's* plan
//! location, which stops existing once the plan moves into the spool.
//! Submission therefore inlines the loaded specs (`source = "inline"`),
//! which [`drivefi_plan::campaign_fingerprint`] already treats as the
//! same campaign identity.

use crate::ServeError;
use drivefi_plan::{emit_campaign_plan, CampaignPlan, ScenarioSelection};
use std::path::{Path, PathBuf};

/// Spool directory name under a serve root.
pub const SPOOL_DIR: &str = "spool";
/// Claimed-campaigns directory name under a serve root.
pub const CAMPAIGNS_DIR: &str = "campaigns";
/// Claimed plan file name inside a campaign directory.
pub const PLAN_FILE: &str = "plan.toml";

fn io_err(doing: &str, path: &Path, e: std::io::Error) -> ServeError {
    ServeError::new(format!("{doing} {}: {e}", path.display()))
}

/// A campaign id usable as a directory name: the plan name with every
/// run of non-`[a-z0-9_-]` characters collapsed to one `-`.
fn slug(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for c in name.chars() {
        let c = c.to_ascii_lowercase();
        if c.is_ascii_alphanumeric() || c == '_' || c == '-' {
            out.push(c);
        } else if !out.ends_with('-') {
            out.push('-');
        }
    }
    let trimmed = out.trim_matches('-');
    if trimmed.is_empty() {
        "campaign".into()
    } else {
        trimmed.into()
    }
}

/// True when `id` is already taken, as a spooled submission or a
/// claimed campaign.
fn id_taken(root: &Path, id: &str) -> bool {
    root.join(SPOOL_DIR).join(format!("{id}.toml")).exists()
        || root.join(CAMPAIGNS_DIR).join(id).exists()
}

/// The first free id derived from `base`: `base`, then `base-2`,
/// `base-3`, …
fn free_id(root: &Path, base: &str) -> String {
    if !id_taken(root, base) {
        return base.to_string();
    }
    for n in 2.. {
        let id = format!("{base}-{n}");
        if !id_taken(root, &id) {
            return id;
        }
    }
    unreachable!("some suffix is always free")
}

/// Submits the plan at `plan_path` to the serve root: validates it,
/// canonicalizes `source = "files"` scenarios to inline specs, and
/// atomically places it in `root/spool/` under an id derived from the
/// plan's name. Returns the id.
///
/// # Errors
///
/// Returns a [`ServeError`] when the plan fails to parse or validate,
/// or on spool I/O failure.
pub fn submit_plan(root: &Path, plan_path: &Path) -> Result<String, ServeError> {
    let mut plan = CampaignPlan::load(plan_path)?;
    // The plan file is about to move; inline anything resolved relative
    // to its current location. Identity is unchanged: the fingerprint
    // already canonicalizes `files` to `inline`.
    if let ScenarioSelection::Files { specs, count, seed, .. } = &plan.scenarios {
        plan.scenarios =
            ScenarioSelection::Inline { specs: specs.clone(), count: *count, seed: *seed };
    }

    let spool = root.join(SPOOL_DIR);
    std::fs::create_dir_all(&spool).map_err(|e| io_err("creating", &spool, e))?;
    let id = free_id(root, &slug(&plan.name));

    // Dot-prefixed temp name: the claim scan skips dotfiles, so a
    // half-written submission is never claimed.
    let tmp = spool.join(format!(".{id}.tmp.{}", std::process::id()));
    std::fs::write(&tmp, emit_campaign_plan(&plan)).map_err(|e| io_err("writing", &tmp, e))?;
    let dest = spool.join(format!("{id}.toml"));
    std::fs::rename(&tmp, &dest).map_err(|e| io_err("spooling", &dest, e))?;
    Ok(id)
}

/// Claims every complete submission in `root/spool/`, oldest id first:
/// each is renamed into a fresh `root/campaigns/<id>/plan.toml`.
/// Returns the claimed campaign directories.
///
/// A submission that vanishes mid-claim (another daemon won the rename)
/// is skipped, not an error.
///
/// # Errors
///
/// Returns a [`ServeError`] on directory I/O failure.
pub fn claim_submissions(root: &Path) -> Result<Vec<PathBuf>, ServeError> {
    let spool = root.join(SPOOL_DIR);
    let mut names: Vec<String> = match std::fs::read_dir(&spool) {
        Ok(entries) => entries
            .filter_map(|e| e.ok())
            .filter_map(|e| e.file_name().into_string().ok())
            .filter(|n| !n.starts_with('.') && n.ends_with(".toml"))
            .collect(),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(io_err("reading", &spool, e)),
    };
    names.sort();

    let mut claimed = Vec::new();
    for name in names {
        let stem = name.trim_end_matches(".toml");
        // The submitter reserved the id against campaigns/ at spool
        // time, but an identically-named plan may have been submitted
        // again after the first was claimed — re-derive a free dir.
        let mut id = stem.to_string();
        let campaigns = root.join(CAMPAIGNS_DIR);
        if campaigns.join(&id).exists() {
            for n in 2.. {
                let next = format!("{stem}-{n}");
                if !campaigns.join(&next).exists() {
                    id = next;
                    break;
                }
            }
        }
        let dir = campaigns.join(&id);
        std::fs::create_dir_all(&dir).map_err(|e| io_err("creating", &dir, e))?;
        match std::fs::rename(spool.join(&name), dir.join(PLAN_FILE)) {
            Ok(()) => claimed.push(dir),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                // Raced another daemon; it owns the plan now. Only
                // remove the directory we just made if the race left it
                // empty — never a claimed campaign.
                std::fs::remove_dir(&dir).ok();
            }
            Err(e) => return Err(io_err("claiming", &dir, e)),
        }
    }
    Ok(claimed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("drivefi-spool-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn write_plan(dir: &Path, name: &str) -> PathBuf {
        let path = dir.join("submitted.toml");
        std::fs::write(
            &path,
            format!(
                "name = \"{name}\"\n\n[campaign]\nkind = \"random\"\nruns = 4\nseed = 9\n\n\
                 [scenarios]\nsource = \"paper\"\ncount = 2\nseed = 1\n"
            ),
        )
        .unwrap();
        path
    }

    #[test]
    fn submit_then_claim_round_trips_the_plan() {
        let root = temp_root("roundtrip");
        let plan_path = write_plan(&root, "My Campaign!");
        let original = CampaignPlan::load(&plan_path).unwrap();

        let id = submit_plan(&root, &plan_path).unwrap();
        assert_eq!(id, "my-campaign");
        assert!(root.join(SPOOL_DIR).join("my-campaign.toml").is_file());

        let claimed = claim_submissions(&root).unwrap();
        assert_eq!(claimed, vec![root.join(CAMPAIGNS_DIR).join("my-campaign")]);
        assert!(!root.join(SPOOL_DIR).join("my-campaign.toml").exists());

        let moved = CampaignPlan::load(claimed[0].join(PLAN_FILE)).unwrap();
        assert_eq!(moved, original);
        // Claiming again finds nothing.
        assert!(claim_submissions(&root).unwrap().is_empty());
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn duplicate_names_get_fresh_ids() {
        let root = temp_root("dup");
        let plan_path = write_plan(&root, "sweep");
        assert_eq!(submit_plan(&root, &plan_path).unwrap(), "sweep");
        assert_eq!(submit_plan(&root, &plan_path).unwrap(), "sweep-2");
        claim_submissions(&root).unwrap();
        // A third submission after both were claimed still avoids the
        // claimed campaign dirs.
        assert_eq!(submit_plan(&root, &plan_path).unwrap(), "sweep-3");
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn invalid_plans_are_rejected_at_submission() {
        let root = temp_root("invalid");
        let path = root.join("bad.toml");
        std::fs::write(&path, "name = \"x\"\n[campaign]\nkind = \"sideways\"\n").unwrap();
        let err = submit_plan(&root, &path).unwrap_err();
        assert!(err.to_string().contains("sideways"), "got: {err}");
        // Nothing reached the spool.
        assert!(claim_submissions(&root).unwrap().is_empty());
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn dotfiles_and_foreign_files_are_never_claimed() {
        let root = temp_root("dotfiles");
        let spool = root.join(SPOOL_DIR);
        std::fs::create_dir_all(&spool).unwrap();
        std::fs::write(spool.join(".half-written.tmp.1"), "name =").unwrap();
        std::fs::write(spool.join("notes.txt"), "not a plan").unwrap();
        assert!(claim_submissions(&root).unwrap().is_empty());
        std::fs::remove_dir_all(&root).ok();
    }
}
