//! Fair-share scheduling: one job-budget slice per campaign per round.
//!
//! The scheduler owns no execution machinery of its own — each slice
//! is one [`run_plan_budget`] call, which resumes the campaign from
//! its persistent store, runs at most `slice × weight` *pending* jobs
//! across the shared worker pool, and checkpoints back to disk. That
//! makes every property the daemon needs someone else's theorem:
//!
//! * **Fairness** is round-robin over admitted campaigns, weighted by
//!   `[submit] weight` — a weight-8 campaign gets 8× the pending-job
//!   budget per round, not priority, so nothing starves.
//! * **Preemption** is free: a slice boundary is a store checkpoint,
//!   so `kill -9` at any instant loses at most one in-flight slice,
//!   and the next daemon (or a standalone `drivefi resume`) continues
//!   from the store. Reports are byte-identical either way, because
//!   job records never depend on scheduling.
//! * **Isolation** is the store's shard leases: a slice holds the
//!   campaign's lease only while it runs, and compaction takes every
//!   lease first, so the in-between-rounds compactor and any outside
//!   `drivefi compact` are refused rather than racing a writer.
//!
//! Between rounds the daemon compacts at most one *sealed* stage store
//! (manifest marked complete — a finished single-stage campaign, or a
//! pipeline's golden store once its stage is done), marking each with
//! a `.compacted` file so restarts don't redo the work.

use crate::spool::{claim_submissions, CAMPAIGNS_DIR, PLAN_FILE, SPOOL_DIR};
use crate::status::{CampaignState, CampaignStatus};
use crate::ServeError;
use drivefi_obs::metrics::{counter_add, gauge_set, Counter, Gauge};
use drivefi_plan::{
    round_dirs, run_plan_budget, CampaignPlan, OutputSpec, PlanReport, PlanResult, GOLDEN_SUBDIR,
};
use drivefi_store::{compact_store, read_manifest, MANIFEST_FILE};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Unix wall-clock milliseconds, for the status file's `updated_ms`.
fn wall_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// Stamps the status's freshness and writes it — every scheduler-side
/// status write goes through here so `drivefi status` can always tell
/// how long ago the daemon last touched a campaign.
fn save_status(status: &mut CampaignStatus, dir: &Path) {
    status.updated_ms = Some(wall_ms());
    status.save(dir).ok();
}

/// Store directory name inside a campaign directory.
pub const STORE_DIR: &str = "store";
/// Marker file inside a sealed stage store once it has been compacted.
const COMPACTED_MARKER: &str = ".compacted";

/// Daemon tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Pending-job budget per weight unit per round.
    pub slice: u64,
    /// Idle poll period, in milliseconds, while watching the spool.
    pub poll_ms: u64,
    /// Exit once the spool is empty and every campaign is done or
    /// failed, instead of watching forever.
    pub drain: bool,
    /// Stop after this many scheduler rounds (for tests and bounded
    /// runs); `None` runs until drained or killed.
    pub max_rounds: Option<u64>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig { slice: 32, poll_ms: 250, drain: false, max_rounds: None }
    }
}

/// What a [`serve`] invocation did before returning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeSummary {
    /// Scheduler rounds executed (idle polls included).
    pub rounds: u64,
    /// Campaigns admitted over the daemon's lifetime (recovered ones
    /// included).
    pub admitted: usize,
    /// Campaigns in the done state at exit.
    pub done: usize,
    /// Campaigns in the failed state at exit.
    pub failed: usize,
}

/// One admitted campaign, as the scheduler tracks it.
struct Campaign {
    dir: PathBuf,
    /// `None` when the plan failed to parse — the campaign is failed
    /// and never scheduled.
    plan: Option<CampaignPlan>,
    status: CampaignStatus,
    /// Rate-observation baseline for the ETA: set at this session's
    /// first slice, reset when the reported stage changes.
    session: Option<(String, u64, Instant)>,
}

impl Campaign {
    fn active(&self) -> bool {
        matches!(self.status.state, CampaignState::Queued | CampaignState::Running)
    }
}

/// The store root the daemon forces onto every admitted plan. The plan
/// may carry its own `[output]` section — its shard count and
/// checkpoint period are kept, but the directory is always the
/// campaign's own, so submissions can never write over each other. The
/// campaign fingerprint excludes `[output]`, so the final report still
/// matches a standalone run of the original plan byte for byte.
fn force_output(plan: &mut CampaignPlan, dir: &Path) {
    let store = dir.join(STORE_DIR);
    let spec = plan.output.take().unwrap_or_else(|| OutputSpec::new(""));
    plan.output = Some(OutputSpec { dir: store.display().to_string(), ..spec });
}

/// Every stage store directory the plan writes, golden first.
fn stage_dirs(plan: &CampaignPlan) -> Vec<PathBuf> {
    let root = PathBuf::from(&plan.output.as_ref().expect("serve plans always have output").dir);
    match plan.kind.store_subdir() {
        Some(subdir) => vec![root.join(GOLDEN_SUBDIR), root.join(subdir)],
        // Adaptive: golden plus every acquisition round swept so far.
        None if plan.kind.is_staged() => {
            std::iter::once(root.join(GOLDEN_SUBDIR)).chain(round_dirs(&root)).collect()
        }
        None => vec![root],
    }
}

/// Admits the campaign directory `dir`: parses its plan, forces the
/// store location, and reconciles state with whatever a previous
/// daemon left behind (a complete report, a persisted failure, or
/// partial stores to resume).
fn admit(dir: PathBuf) -> Campaign {
    let prior = CampaignStatus::load(&dir).ok();
    let slices = prior.as_ref().map_or(0, |s| s.slices);
    // The previous daemon's observed rate survives the restart so the
    // first slice of this session already carries a sane ETA.
    let prior_rate = prior.as_ref().and_then(|s| s.rate_millijobs_per_s);

    let mut plan = match CampaignPlan::load(dir.join(PLAN_FILE)) {
        Ok(plan) => plan,
        Err(e) => {
            let mut status =
                prior.unwrap_or_else(|| CampaignStatus::queued(dir_id(&dir), "unknown"));
            status.state = CampaignState::Failed;
            status.error = Some(e.to_string());
            save_status(&mut status, &dir);
            return Campaign { dir, plan: None, status, session: None };
        }
    };
    force_output(&mut plan, &dir);

    let mut status = CampaignStatus::queued(plan.name.clone(), plan.kind.name());
    status.slices = slices;
    status.rate_millijobs_per_s = prior_rate;
    // A deterministic failure would fail again on every retry; trust
    // the persisted verdict (delete status.toml to retry).
    if let Some(prior) = prior {
        if prior.state == CampaignState::Failed {
            status = prior;
            status.state = CampaignState::Failed;
            return Campaign { dir, plan: Some(plan), status, session: None };
        }
    }
    // A previous daemon may have finished this campaign already.
    let store_root = PathBuf::from(&plan.output.as_ref().expect("forced above").dir);
    if let Ok(report) = PlanReport::load(&store_root) {
        if report.complete() {
            apply_report(&mut status, &plan, &report);
        }
    }
    save_status(&mut status, &dir);
    Campaign { dir, plan: Some(plan), status, session: None }
}

fn dir_id(dir: &Path) -> String {
    dir.file_name().map_or_else(|| "campaign".into(), |n| n.to_string_lossy().into_owned())
}

/// Folds one slice's returned progress report into the status: stage,
/// counters, and the done transition ([`PlanReport::complete`] is only
/// ever true for the *final* stage's report — a pipeline interrupted
/// mid-golden returns the golden store's necessarily-incomplete one).
fn apply_report(status: &mut CampaignStatus, plan: &CampaignPlan, report: &PlanReport) {
    status.done = report.jobs.len() as u64;
    status.total = report.total_jobs;
    status.safe = report.safe();
    status.hazards = report.hazards();
    status.collisions = report.collisions();
    status.stage = match plan.kind.store_subdir() {
        // Adaptive: golden until it seals, then whichever acquisition
        // round is newest on disk — `round-000`, `round-001`, … walk by
        // in `drivefi status` as the loop progresses.
        None if plan.kind.is_staged() => {
            let root = PathBuf::from(&plan.output.as_ref().expect("serve plan").dir);
            match read_manifest(root.join(GOLDEN_SUBDIR)) {
                Ok(meta) if meta.complete => round_dirs(&root)
                    .last()
                    .and_then(|dir| dir.file_name())
                    .map_or_else(|| GOLDEN_SUBDIR.into(), |n| n.to_string_lossy().into_owned()),
                _ => GOLDEN_SUBDIR.into(),
            }
        }
        None => "main".into(),
        Some(subdir) => {
            let golden =
                PathBuf::from(&plan.output.as_ref().expect("serve plan").dir).join(GOLDEN_SUBDIR);
            match read_manifest(&golden) {
                Ok(meta) if meta.complete => subdir.into(),
                _ => GOLDEN_SUBDIR.into(),
            }
        }
    };
    status.state = if report.complete() { CampaignState::Done } else { CampaignState::Running };
    if status.state == CampaignState::Done {
        status.eta_seconds = None;
    }
}

/// Grants the campaign one scheduling slice of `slice × weight`
/// pending jobs and refreshes its status file.
fn run_slice(campaign: &mut Campaign, slice: u64) {
    let Some(plan) = &campaign.plan else { return };
    let budget = slice.saturating_mul(u64::from(plan.submit.weight)).max(1);
    campaign.status.slices += 1;
    counter_add(Counter::ServeSlices, 1);
    match run_plan_budget(plan, Some(budget)) {
        Ok(PlanResult::Persisted(report)) => {
            apply_report(&mut campaign.status, plan, &report);
            // ETA from this session's observed rate, stage-local so a
            // pipeline's stage hand-off doesn't skew it.
            match &campaign.session {
                Some((stage, base, since)) if *stage == campaign.status.stage => {
                    let progressed = campaign.status.done.saturating_sub(*base);
                    let remaining = campaign.status.total.saturating_sub(campaign.status.done);
                    if progressed > 0 && campaign.status.state == CampaignState::Running {
                        let elapsed = since.elapsed().as_secs_f64();
                        let rate = progressed as f64 / elapsed.max(1e-6);
                        campaign.status.eta_seconds = Some((remaining as f64 / rate).ceil() as u64);
                        campaign.status.rate_millijobs_per_s = Some((rate * 1000.0).ceil() as u64);
                    }
                }
                _ => {
                    campaign.session =
                        Some((campaign.status.stage.clone(), campaign.status.done, Instant::now()));
                    // No observations this session yet — seed the ETA
                    // from the rate a previous daemon persisted.
                    let remaining = campaign.status.total.saturating_sub(campaign.status.done);
                    if campaign.status.state == CampaignState::Running && remaining > 0 {
                        if let Some(rate) = campaign.status.rate_millijobs_per_s.filter(|r| *r > 0)
                        {
                            campaign.status.eta_seconds =
                                Some(remaining.saturating_mul(1000).div_ceil(rate));
                        }
                    }
                }
            }
        }
        Ok(_) => {
            // Unreachable with a forced [output] store, but a hand-built
            // plan deserves a verdict rather than a panic.
            campaign.status.state = CampaignState::Failed;
            campaign.status.error = Some("plan produced a non-persisted result".into());
        }
        Err(e) => {
            campaign.status.state = CampaignState::Failed;
            campaign.status.error = Some(e.to_string());
        }
    }
    save_status(&mut campaign.status, &campaign.dir);
}

/// Compacts at most one sealed, not-yet-compacted stage store across
/// all campaigns. Returns true when it did work. A compaction refused
/// by a live lease (an outside writer resumed the store by hand) is
/// left for a later round rather than treated as fatal.
fn compact_one(campaigns: &[Campaign]) -> bool {
    for campaign in campaigns {
        let Some(plan) = &campaign.plan else { continue };
        for dir in stage_dirs(plan) {
            if !dir.join(MANIFEST_FILE).is_file() || dir.join(COMPACTED_MARKER).is_file() {
                continue;
            }
            let sealed = read_manifest(&dir).is_ok_and(|meta| meta.complete);
            if !sealed {
                continue;
            }
            match compact_store(&dir) {
                Ok(_) => {
                    std::fs::write(dir.join(COMPACTED_MARKER), b"").ok();
                    return true;
                }
                Err(e) => {
                    eprintln!("drivefi serve: deferring compaction of {}: {e}", dir.display());
                }
            }
        }
    }
    false
}

/// True when the spool holds no claimable submissions.
fn spool_empty(root: &Path) -> bool {
    match std::fs::read_dir(root.join(SPOOL_DIR)) {
        Ok(entries) => !entries.filter_map(|e| e.ok()).any(|e| {
            let name = e.file_name();
            let name = name.to_string_lossy();
            !name.starts_with('.') && name.ends_with(".toml")
        }),
        Err(_) => true,
    }
}

/// Campaign directories already claimed under `root`, sorted by id.
fn existing_campaigns(root: &Path) -> Result<Vec<PathBuf>, ServeError> {
    let campaigns = root.join(CAMPAIGNS_DIR);
    let mut dirs: Vec<PathBuf> = match std::fs::read_dir(&campaigns) {
        Ok(entries) => entries
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.join(PLAN_FILE).is_file())
            .collect(),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(ServeError::new(format!("reading {}: {e}", campaigns.display()))),
    };
    dirs.sort();
    Ok(dirs)
}

/// Runs the campaign daemon over serve root `root` until it drains (or
/// forever, or for `max_rounds` rounds — see [`ServeConfig`]).
///
/// Each round: claim new submissions from the spool, grant every
/// active campaign one weighted job-budget slice, refresh its
/// `status.toml`, then compact at most one sealed stage store. The
/// daemon recovers campaigns a previous (possibly killed) daemon left
/// under `root/campaigns/` before its first round.
///
/// # Errors
///
/// Returns a [`ServeError`] on serve-root I/O failure. Per-campaign
/// failures never abort the daemon — they are recorded in the
/// campaign's status file.
pub fn serve(root: &Path, config: &ServeConfig) -> Result<ServeSummary, ServeError> {
    std::fs::create_dir_all(root.join(SPOOL_DIR))
        .map_err(|e| ServeError::new(format!("creating {}: {e}", root.display())))?;
    std::fs::create_dir_all(root.join(CAMPAIGNS_DIR))
        .map_err(|e| ServeError::new(format!("creating {}: {e}", root.display())))?;

    let mut campaigns: Vec<Campaign> = existing_campaigns(root)?.into_iter().map(admit).collect();
    let mut rounds = 0u64;

    loop {
        for dir in claim_submissions(root)? {
            campaigns.push(admit(dir));
        }
        rounds += 1;
        gauge_set(Gauge::ServeQueueDepth, campaigns.iter().filter(|c| c.active()).count() as i64);

        let mut sliced = false;
        for campaign in &mut campaigns {
            if campaign.active() {
                run_slice(campaign, config.slice);
                sliced = true;
            }
        }
        let compacted = compact_one(&campaigns);

        if config.max_rounds.is_some_and(|max| rounds >= max) {
            break;
        }
        if !sliced && !compacted {
            if config.drain && spool_empty(root) {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(config.poll_ms));
        }
    }

    Ok(ServeSummary {
        rounds,
        admitted: campaigns.len(),
        done: campaigns.iter().filter(|c| c.status.state == CampaignState::Done).count(),
        failed: campaigns.iter().filter(|c| c.status.state == CampaignState::Failed).count(),
    })
}
