//! Live per-campaign progress: `status.toml`, rewritten atomically
//! after every scheduling slice.
//!
//! The status file is deliberately *derived* state — everything in it
//! is recomputed from the campaign's store on the next slice, so a
//! stale or deleted status file costs nothing but a moment of blank
//! progress. The one exception is `state = "failed"`: the daemon
//! trusts a persisted failure across restarts (re-running a plan that
//! failed deterministically would fail it again forever); delete the
//! status file to retry a campaign after fixing the cause.

use crate::ServeError;
use drivefi_plan::toml::{emit_document, parse_document, Map, Toml};
use std::path::Path;

/// Status file name inside a campaign directory.
pub const STATUS_FILE: &str = "status.toml";

/// Where a campaign is in its service lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CampaignState {
    /// Claimed, no slice granted yet.
    Queued,
    /// Receiving scheduling slices.
    Running,
    /// Final report written and complete.
    Done,
    /// The plan errored; see the `error` field.
    Failed,
}

impl CampaignState {
    /// Stable state name, as written in status files.
    pub fn name(self) -> &'static str {
        match self {
            CampaignState::Queued => "queued",
            CampaignState::Running => "running",
            CampaignState::Done => "done",
            CampaignState::Failed => "failed",
        }
    }

    fn parse(name: &str) -> Result<Self, ServeError> {
        match name {
            "queued" => Ok(CampaignState::Queued),
            "running" => Ok(CampaignState::Running),
            "done" => Ok(CampaignState::Done),
            "failed" => Ok(CampaignState::Failed),
            other => Err(ServeError::new(format!(
                "unknown campaign state `{other}` (queued, running, done, failed)"
            ))),
        }
    }
}

/// One campaign's live progress, as persisted in [`STATUS_FILE`].
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignStatus {
    /// Plan name.
    pub name: String,
    /// Lifecycle state.
    pub state: CampaignState,
    /// Campaign kind name (`"random"`, `"mine"`, …).
    pub kind: String,
    /// Stage the progress counters describe: `"main"` for single-stage
    /// kinds; `"golden"` then the sweep sub-store name for pipelines.
    pub stage: String,
    /// Jobs persisted in the current stage's store.
    pub done: u64,
    /// Total jobs of the current stage.
    pub total: u64,
    /// Safe outcomes among `done`.
    pub safe: u64,
    /// Non-collision hazards among `done`.
    pub hazards: u64,
    /// Collisions among `done`.
    pub collisions: u64,
    /// Scheduling slices this campaign has been granted (across daemon
    /// restarts).
    pub slices: u64,
    /// Estimated seconds to stage completion at the observed rate, once
    /// one is observable.
    pub eta_seconds: Option<u64>,
    /// Observed completion rate in milli-jobs per second (integer so the
    /// TOML subset can carry it). Persisted so a restarted daemon shows
    /// a sane ETA from its very first slice instead of a blank one.
    pub rate_millijobs_per_s: Option<u64>,
    /// Unix milliseconds of the last status write — how `drivefi
    /// status` tells a live campaign from one whose daemon died.
    pub updated_ms: Option<u64>,
    /// What went wrong, when `state` is failed.
    pub error: Option<String>,
}

impl CampaignStatus {
    /// A freshly queued status for plan `name` of kind `kind`.
    pub fn queued(name: impl Into<String>, kind: impl Into<String>) -> Self {
        CampaignStatus {
            name: name.into(),
            state: CampaignState::Queued,
            kind: kind.into(),
            stage: "main".into(),
            done: 0,
            total: 0,
            safe: 0,
            hazards: 0,
            collisions: 0,
            slices: 0,
            eta_seconds: None,
            rate_millijobs_per_s: None,
            updated_ms: None,
            error: None,
        }
    }

    /// The status as a TOML document string.
    pub fn to_toml(&self) -> String {
        let mut root = Map::from([
            ("name".into(), Toml::Str(self.name.clone())),
            ("state".into(), Toml::Str(self.state.name().into())),
            ("kind".into(), Toml::Str(self.kind.clone())),
            ("stage".into(), Toml::Str(self.stage.clone())),
            ("done".into(), Toml::Int(self.done as i64)),
            ("total".into(), Toml::Int(self.total as i64)),
            ("safe".into(), Toml::Int(self.safe as i64)),
            ("hazards".into(), Toml::Int(self.hazards as i64)),
            ("collisions".into(), Toml::Int(self.collisions as i64)),
            ("slices".into(), Toml::Int(self.slices as i64)),
        ]);
        if let Some(eta) = self.eta_seconds {
            root.insert("eta_seconds".into(), Toml::Int(eta as i64));
        }
        if let Some(rate) = self.rate_millijobs_per_s {
            root.insert("rate_millijobs_per_s".into(), Toml::Int(rate as i64));
        }
        if let Some(updated) = self.updated_ms {
            root.insert("updated_ms".into(), Toml::Int(updated as i64));
        }
        if let Some(error) = &self.error {
            root.insert("error".into(), Toml::Str(error.clone()));
        }
        emit_document(&root)
    }

    /// Parses a status document produced by [`Self::to_toml`].
    ///
    /// # Errors
    ///
    /// Returns a [`ServeError`] on malformed TOML or a missing/mistyped
    /// field.
    pub fn parse(src: &str) -> Result<CampaignStatus, ServeError> {
        let doc = parse_document(src)?;
        let str_field = |key: &str| -> Result<String, ServeError> {
            match doc.get(key) {
                Some(Toml::Str(s)) => Ok(s.clone()),
                Some(other) => Err(ServeError::new(format!(
                    "`{key}`: expected string, got {}",
                    other.type_name()
                ))),
                None => Err(ServeError::new(format!("status is missing `{key}`"))),
            }
        };
        let int_field = |key: &str| -> Result<u64, ServeError> {
            match doc.get(key) {
                Some(Toml::Int(n)) if *n >= 0 => Ok(*n as u64),
                Some(other) => Err(ServeError::new(format!(
                    "`{key}`: expected a non-negative integer, got {}",
                    other.type_name()
                ))),
                None => Err(ServeError::new(format!("status is missing `{key}`"))),
            }
        };
        Ok(CampaignStatus {
            name: str_field("name")?,
            state: CampaignState::parse(&str_field("state")?)?,
            kind: str_field("kind")?,
            stage: str_field("stage")?,
            done: int_field("done")?,
            total: int_field("total")?,
            safe: int_field("safe")?,
            hazards: int_field("hazards")?,
            collisions: int_field("collisions")?,
            slices: int_field("slices")?,
            eta_seconds: match doc.get("eta_seconds") {
                None => None,
                Some(_) => Some(int_field("eta_seconds")?),
            },
            rate_millijobs_per_s: match doc.get("rate_millijobs_per_s") {
                None => None,
                Some(_) => Some(int_field("rate_millijobs_per_s")?),
            },
            updated_ms: match doc.get("updated_ms") {
                None => None,
                Some(_) => Some(int_field("updated_ms")?),
            },
            error: match doc.get("error") {
                None => None,
                Some(_) => Some(str_field("error")?),
            },
        })
    }

    /// Atomically writes the status into campaign directory `dir`.
    ///
    /// # Errors
    ///
    /// Returns a [`ServeError`] on I/O failure.
    pub fn save(&self, dir: &Path) -> Result<(), ServeError> {
        let path = dir.join(STATUS_FILE);
        let tmp = dir.join(format!(".{STATUS_FILE}.tmp.{}", std::process::id()));
        std::fs::write(&tmp, self.to_toml())
            .map_err(|e| ServeError::new(format!("writing {}: {e}", tmp.display())))?;
        std::fs::rename(&tmp, &path)
            .map_err(|e| ServeError::new(format!("replacing {}: {e}", path.display())))
    }

    /// Loads the status from campaign directory `dir`.
    ///
    /// # Errors
    ///
    /// Returns a [`ServeError`] when the file is missing or malformed.
    pub fn load(dir: &Path) -> Result<CampaignStatus, ServeError> {
        let path = dir.join(STATUS_FILE);
        let src = std::fs::read_to_string(&path)
            .map_err(|e| ServeError::new(format!("reading {}: {e}", path.display())))?;
        Self::parse(&src).map_err(|e| ServeError::new(format!("{}: {e}", path.display())))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_round_trips_through_toml() {
        let mut status = CampaignStatus::queued("tailgater sweep", "mine");
        status.state = CampaignState::Running;
        status.stage = "golden".into();
        status.done = 7;
        status.total = 24;
        status.safe = 5;
        status.hazards = 1;
        status.collisions = 1;
        status.slices = 3;
        status.eta_seconds = Some(42);
        status.rate_millijobs_per_s = Some(385);
        status.updated_ms = Some(1_700_000_000_123);
        assert_eq!(CampaignStatus::parse(&status.to_toml()).unwrap(), status);

        // Optional fields stay absent from the document when unset —
        // and a pre-observability document (no rate/updated fields)
        // still parses.
        let fresh = CampaignStatus::queued("x", "random");
        let doc = fresh.to_toml();
        assert!(!doc.contains("eta_seconds") && !doc.contains("error"), "doc:\n{doc}");
        assert!(
            !doc.contains("rate_millijobs_per_s") && !doc.contains("updated_ms"),
            "doc:\n{doc}"
        );
        assert_eq!(CampaignStatus::parse(&doc).unwrap(), fresh);

        let mut failed = fresh.clone();
        failed.state = CampaignState::Failed;
        failed.error = Some("store fingerprint mismatch".into());
        assert_eq!(CampaignStatus::parse(&failed.to_toml()).unwrap(), failed);
    }

    #[test]
    fn malformed_status_is_a_clear_error() {
        assert!(CampaignStatus::parse("state = \"running\"\n")
            .unwrap_err()
            .to_string()
            .contains("name"));
        let bad_state = "name = \"x\"\nstate = \"paused\"\nkind = \"random\"\nstage = \"main\"\n\
                         done = 0\ntotal = 0\nsafe = 0\nhazards = 0\ncollisions = 0\nslices = 0\n";
        assert!(CampaignStatus::parse(bad_state).unwrap_err().to_string().contains("paused"));
    }

    #[test]
    fn save_and_load_are_atomic_per_directory() {
        let dir = std::env::temp_dir().join(format!("drivefi-status-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let status = CampaignStatus::queued("atomic", "golden");
        status.save(&dir).unwrap();
        assert_eq!(CampaignStatus::load(&dir).unwrap(), status);
        // No temp litter left behind.
        let litter: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().starts_with('.'))
            .collect();
        assert!(litter.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }
}
