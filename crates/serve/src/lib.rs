//! The campaign daemon: many submitted plans, one machine, fair shares.
//!
//! AVFI frames fault injection as a *service*: experimenters submit
//! campaigns and a long-lived daemon runs them, rather than each person
//! owning a terminal for the duration of their sweep. This crate is
//! that service for DriveFI plans, built entirely from the guarantees
//! the layers below already provide:
//!
//! * [`spool`] — the submission protocol. A plan enters the service by
//!   being renamed into `<root>/spool/`; the daemon claims it by
//!   renaming it into `<root>/campaigns/<id>/plan.toml`. Both moves are
//!   single-syscall atomic renames, so a submission is either fully
//!   visible or not at all, and two daemons watching one spool never
//!   claim the same plan twice.
//! * [`status`] — live progress. Each campaign directory carries a
//!   `status.toml` (state, jobs done/total, outcome tallies, slices
//!   granted, ETA), rewritten atomically after every scheduling slice,
//!   so `drivefi status` and humans with `cat` watch campaigns move
//!   without touching the stores.
//! * [`scheduler`] — fair-share execution. The daemon round-robins a
//!   job-budget slice over every admitted campaign per round, weighted
//!   by the plan's `[submit] weight`, driving
//!   [`run_plan_budget`](drivefi_plan::run_plan_budget). Because every
//!   slice resumes from the campaign's persistent store, preemption is
//!   free: `kill -9` the daemon anywhere, restart it, and every report
//!   comes out byte-identical to an uninterrupted standalone
//!   `drivefi run`. Sealed stage stores are compacted in the gaps
//!   between rounds.
//!
//! The daemon holds a shard lease (see `drivefi_store::lease`) on every
//! store it appends to, so a concurrent `drivefi compact` — or a second
//! daemon misconfigured onto the same campaign directory — is refused
//! instead of corrupting the store.

pub mod scheduler;
pub mod spool;
pub mod status;

pub use scheduler::{serve, ServeConfig, ServeSummary};
pub use spool::{claim_submissions, submit_plan, CAMPAIGNS_DIR, PLAN_FILE, SPOOL_DIR};
pub use status::{CampaignState, CampaignStatus, STATUS_FILE};

/// An error from submitting, claiming, scheduling, or status I/O.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeError {
    message: String,
}

impl ServeError {
    /// An error carrying `message`.
    pub fn new(message: String) -> Self {
        ServeError { message }
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for ServeError {}

impl From<drivefi_plan::PlanError> for ServeError {
    fn from(e: drivefi_plan::PlanError) -> Self {
        ServeError::new(e.to_string())
    }
}

impl From<drivefi_store::StoreError> for ServeError {
    fn from(e: drivefi_store::StoreError) -> Self {
        ServeError::new(e.to_string())
    }
}
