//! Actors: target vehicles, pedestrians, and static obstacles.

use crate::behavior::Behavior;
use crate::Obb;
use drivefi_kinematics::{Vec2, VehicleState};

/// Unique identifier of an actor within a world.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ActorId(pub u32);

impl std::fmt::Display for ActorId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "actor{}", self.0)
    }
}

/// The kind of a (non-ego) actor. The paper calls vehicles other than the
/// ego vehicle *target vehicles* (TVs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ActorKind {
    /// A passenger car.
    Car,
    /// A truck (longer, wider).
    Truck,
    /// A pedestrian.
    Pedestrian,
    /// A static obstacle (cone barrel, stalled vehicle shell, debris).
    StaticObstacle,
}

/// Physical footprint of an actor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BodyDims {
    /// Length along the heading \[m\].
    pub length: f64,
    /// Width across the heading \[m\].
    pub width: f64,
}

impl ActorKind {
    /// Nominal body dimensions for the kind.
    pub fn dims(self) -> BodyDims {
        match self {
            ActorKind::Car => BodyDims { length: 4.7, width: 1.9 },
            ActorKind::Truck => BodyDims { length: 12.0, width: 2.5 },
            ActorKind::Pedestrian => BodyDims { length: 0.6, width: 0.6 },
            ActorKind::StaticObstacle => BodyDims { length: 1.5, width: 1.5 },
        }
    }
}

/// A non-ego actor in the world.
#[derive(Debug, Clone)]
pub struct Actor {
    /// Identifier, unique within the world.
    pub id: ActorId,
    /// Kind (determines footprint).
    pub kind: ActorKind,
    /// Kinematic state. For pedestrians `theta` is the walking direction.
    pub state: VehicleState,
    /// Behavior policy driving the actor.
    pub behavior: Behavior,
}

impl Actor {
    /// Creates an actor.
    pub fn new(id: ActorId, kind: ActorKind, state: VehicleState, behavior: Behavior) -> Self {
        Actor { id, kind, state, behavior }
    }

    /// Footprint dimensions.
    pub fn dims(&self) -> BodyDims {
        self.kind.dims()
    }

    /// Oriented bounding box of the actor body.
    pub fn obb(&self) -> Obb {
        let d = self.dims();
        Obb::new(
            Vec2::new(self.state.x, self.state.y),
            self.state.theta,
            d.length / 2.0,
            d.width / 2.0,
        )
    }

    /// World-frame velocity.
    pub fn velocity(&self) -> Vec2 {
        self.state.velocity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_have_plausible_dims() {
        assert!(ActorKind::Truck.dims().length > ActorKind::Car.dims().length);
        assert!(ActorKind::Pedestrian.dims().width < 1.0);
    }

    #[test]
    fn obb_centered_on_state() {
        let a = Actor::new(
            ActorId(1),
            ActorKind::Car,
            VehicleState::new(10.0, 2.0, 5.0, 0.0, 0.0),
            Behavior::ConstantSpeed,
        );
        let obb = a.obb();
        assert_eq!(obb.center, Vec2::new(10.0, 2.0));
        assert_eq!(obb.half_length, 4.7 / 2.0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(ActorId(3).to_string(), "actor3");
    }
}
