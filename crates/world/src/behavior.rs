//! Behavior policies for target vehicles and pedestrians.

/// Parameters of the Intelligent Driver Model (IDM) used for
//  car-following target vehicles.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IdmParams {
    /// Maximum acceleration \[m/s²\].
    pub max_accel: f64,
    /// Comfortable deceleration \[m/s²\].
    pub comfort_decel: f64,
    /// Minimum bumper-to-bumper gap \[m\].
    pub min_gap: f64,
    /// Desired time headway \[s\].
    pub time_headway: f64,
    /// Acceleration exponent (classically 4).
    pub exponent: f64,
}

impl Default for IdmParams {
    fn default() -> Self {
        IdmParams {
            max_accel: 1.8,
            comfort_decel: 2.5,
            min_gap: 2.0,
            time_headway: 1.5,
            exponent: 4.0,
        }
    }
}

impl IdmParams {
    /// IDM acceleration for a follower at `speed` with desired speed
    /// `desired`, given the bumper-to-bumper `gap` \[m\] and the speed
    /// difference `approach_rate = v_self − v_lead` \[m/s\] to the lead
    /// vehicle (`None` when the lane ahead is free).
    pub fn accel(&self, speed: f64, desired: f64, lead: Option<(f64, f64)>) -> f64 {
        let desired = desired.max(0.1);
        let free_term = 1.0 - (speed / desired).powf(self.exponent);
        let interaction = match lead {
            None => 0.0,
            Some((gap, approach_rate)) => {
                let gap = gap.max(0.1);
                let s_star = self.min_gap
                    + (speed * self.time_headway
                        + speed * approach_rate
                            / (2.0 * (self.max_accel * self.comfort_decel).sqrt()))
                    .max(0.0);
                (s_star / gap).powi(2)
            }
        };
        self.max_accel * (free_term - interaction)
    }
}

/// A lane-change maneuver: lateral cosine blend from `from_y` to `to_y`
/// over `[start_time, start_time + duration]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LaneChangeSpec {
    /// Simulation time the maneuver begins \[s\].
    pub start_time: f64,
    /// Maneuver duration \[s\].
    pub duration: f64,
    /// Lateral start position \[m\].
    pub from_y: f64,
    /// Lateral end position \[m\].
    pub to_y: f64,
}

impl LaneChangeSpec {
    /// Lateral position at time `t` (clamped to the maneuver window).
    pub fn y_at(&self, t: f64) -> f64 {
        let s = ((t - self.start_time) / self.duration).clamp(0.0, 1.0);
        let blend = (1.0 - (std::f64::consts::PI * s).cos()) / 2.0;
        self.from_y + (self.to_y - self.from_y) * blend
    }

    /// Lateral velocity at time `t`.
    pub fn vy_at(&self, t: f64) -> f64 {
        let s = (t - self.start_time) / self.duration;
        if !(0.0..=1.0).contains(&s) {
            return 0.0;
        }
        (self.to_y - self.from_y) * std::f64::consts::PI / (2.0 * self.duration)
            * (std::f64::consts::PI * s).sin()
    }

    /// True while the maneuver is in progress at `t`.
    pub fn active_at(&self, t: f64) -> bool {
        t >= self.start_time && t <= self.start_time + self.duration
    }
}

/// A timed longitudinal acceleration segment for scripted actors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpeedKeyframe {
    /// Segment start time \[s\].
    pub time: f64,
    /// Constant acceleration applied from this time onward \[m/s²\].
    pub accel: f64,
}

/// Behavior policy of an actor.
#[derive(Debug, Clone, PartialEq)]
pub enum Behavior {
    /// Does not move (static obstacles, parked vehicles).
    Static,
    /// Holds the current speed along the current heading.
    ConstantSpeed,
    /// Car-following with the Intelligent Driver Model toward
    /// `desired_speed`, optionally performing a lane change.
    Idm {
        /// IDM parameters.
        params: IdmParams,
        /// Free-road desired speed \[m/s\].
        desired_speed: f64,
        /// Optional lane-change maneuver.
        lane_change: Option<LaneChangeSpec>,
    },
    /// Piecewise-constant-acceleration script (lead-brake scenarios).
    Scripted {
        /// Keyframes sorted by time; the last active one applies.
        keyframes: Vec<SpeedKeyframe>,
        /// Optional lane-change maneuver.
        lane_change: Option<LaneChangeSpec>,
    },
    /// A pedestrian that starts walking at `trigger_time` with constant
    /// speed along its heading.
    Pedestrian {
        /// Time the pedestrian steps off \[s\].
        trigger_time: f64,
        /// Walking speed \[m/s\].
        walk_speed: f64,
    },
}

impl Behavior {
    /// Convenience: plain IDM follower without lane change.
    pub fn idm(desired_speed: f64) -> Self {
        Behavior::Idm { params: IdmParams::default(), desired_speed, lane_change: None }
    }

    /// The lane-change spec, if this behavior carries one.
    pub fn lane_change(&self) -> Option<&LaneChangeSpec> {
        match self {
            Behavior::Idm { lane_change, .. } | Behavior::Scripted { lane_change, .. } => {
                lane_change.as_ref()
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idm_free_road_accelerates_to_desired() {
        let p = IdmParams::default();
        let a = p.accel(10.0, 30.0, None);
        assert!(a > 0.0);
        // At desired speed, acceleration vanishes.
        let a = p.accel(30.0, 30.0, None);
        assert!(a.abs() < 1e-9);
        // Above desired speed, decelerates.
        assert!(p.accel(35.0, 30.0, None) < 0.0);
    }

    #[test]
    fn idm_brakes_when_gap_small() {
        let p = IdmParams::default();
        let a = p.accel(30.0, 30.0, Some((5.0, 0.0)));
        assert!(a < -3.0, "expected hard braking, got {a}");
    }

    #[test]
    fn idm_brakes_harder_when_closing() {
        let p = IdmParams::default();
        let steady = p.accel(25.0, 30.0, Some((40.0, 0.0)));
        let closing = p.accel(25.0, 30.0, Some((40.0, 10.0)));
        assert!(closing < steady);
    }

    #[test]
    fn lane_change_profile_endpoints_and_midpoint() {
        let lc = LaneChangeSpec { start_time: 2.0, duration: 4.0, from_y: 0.0, to_y: 3.7 };
        assert_eq!(lc.y_at(0.0), 0.0);
        assert_eq!(lc.y_at(2.0), 0.0);
        assert!((lc.y_at(4.0) - 1.85).abs() < 1e-12);
        assert!((lc.y_at(6.0) - 3.7).abs() < 1e-12);
        assert!((lc.y_at(100.0) - 3.7).abs() < 1e-12);
    }

    #[test]
    fn lane_change_velocity_peaks_at_midpoint_and_is_zero_outside() {
        let lc = LaneChangeSpec { start_time: 0.0, duration: 4.0, from_y: 0.0, to_y: 3.7 };
        assert_eq!(lc.vy_at(-1.0), 0.0);
        assert_eq!(lc.vy_at(5.0), 0.0);
        let peak = lc.vy_at(2.0);
        assert!(peak > lc.vy_at(1.0));
        assert!(peak > lc.vy_at(3.0));
        assert!((peak - 3.7 * std::f64::consts::PI / 8.0).abs() < 1e-12);
    }

    #[test]
    fn behavior_accessors() {
        let b = Behavior::idm(25.0);
        assert!(b.lane_change().is_none());
        let lc = LaneChangeSpec { start_time: 0.0, duration: 1.0, from_y: 0.0, to_y: 3.7 };
        let b = Behavior::Idm {
            params: IdmParams::default(),
            desired_speed: 25.0,
            lane_change: Some(lc),
        };
        assert_eq!(b.lane_change(), Some(&lc));
    }
}
