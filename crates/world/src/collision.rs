//! Oriented-bounding-box collision detection (separating-axis test).

use drivefi_kinematics::Vec2;

/// An oriented bounding box: a rectangle with arbitrary heading.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Obb {
    /// Center of the box.
    pub center: Vec2,
    /// Heading of the +x (length) axis \[rad\].
    pub heading: f64,
    /// Half of the length (along the heading).
    pub half_length: f64,
    /// Half of the width (across the heading).
    pub half_width: f64,
}

impl Obb {
    /// Creates an OBB.
    ///
    /// # Panics
    ///
    /// Panics if either half-extent is negative.
    pub fn new(center: Vec2, heading: f64, half_length: f64, half_width: f64) -> Self {
        assert!(half_length >= 0.0 && half_width >= 0.0, "extents must be non-negative");
        Obb { center, heading, half_length, half_width }
    }

    /// The four corners, counter-clockwise.
    pub fn corners(&self) -> [Vec2; 4] {
        let ax = Vec2::from_heading(self.heading) * self.half_length;
        let ay = Vec2::from_heading(self.heading + std::f64::consts::FRAC_PI_2) * self.half_width;
        [self.center + ax + ay, self.center - ax + ay, self.center - ax - ay, self.center + ax - ay]
    }

    fn axes(&self) -> [Vec2; 2] {
        [
            Vec2::from_heading(self.heading),
            Vec2::from_heading(self.heading + std::f64::consts::FRAC_PI_2),
        ]
    }

    fn projection_radius(&self, axis: Vec2) -> f64 {
        let [ax, ay] = self.axes();
        self.half_length * ax.dot(axis).abs() + self.half_width * ay.dot(axis).abs()
    }

    /// True when the point lies inside (or on the boundary of) the box.
    pub fn contains(&self, p: Vec2) -> bool {
        let local = (p - self.center).into_frame(self.heading);
        local.x.abs() <= self.half_length + 1e-12 && local.y.abs() <= self.half_width + 1e-12
    }
}

/// True when the segment `a → b` intersects the box (slab test in the
/// box's local frame). Used for line-of-sight occlusion queries.
pub fn segment_intersects_obb(a: Vec2, b: Vec2, obb: &Obb) -> bool {
    // Transform into the box frame.
    let a = (a - obb.center).into_frame(obb.heading);
    let b = (b - obb.center).into_frame(obb.heading);
    let d = b - a;
    let half = [obb.half_length, obb.half_width];
    let origin = [a.x, a.y];
    let dir = [d.x, d.y];
    let mut t_min = 0.0f64;
    let mut t_max = 1.0f64;
    for axis in 0..2 {
        if dir[axis].abs() < 1e-12 {
            if origin[axis].abs() > half[axis] {
                return false;
            }
            continue;
        }
        let inv = 1.0 / dir[axis];
        let mut t0 = (-half[axis] - origin[axis]) * inv;
        let mut t1 = (half[axis] - origin[axis]) * inv;
        if t0 > t1 {
            std::mem::swap(&mut t0, &mut t1);
        }
        t_min = t_min.max(t0);
        t_max = t_max.min(t1);
        if t_min > t_max {
            return false;
        }
    }
    true
}

/// True when two oriented boxes overlap (separating-axis theorem on the
/// four face normals).
pub fn obb_overlap(a: &Obb, b: &Obb) -> bool {
    let d = b.center - a.center;
    for axis in a.axes().into_iter().chain(b.axes()) {
        let dist = d.dot(axis).abs();
        if dist > a.projection_radius(axis) + b.projection_radius(axis) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn axis_box(cx: f64, cy: f64, hl: f64, hw: f64) -> Obb {
        Obb::new(Vec2::new(cx, cy), 0.0, hl, hw)
    }

    #[test]
    fn overlapping_axis_aligned_boxes() {
        let a = axis_box(0.0, 0.0, 2.0, 1.0);
        let b = axis_box(3.0, 0.0, 2.0, 1.0);
        assert!(obb_overlap(&a, &b));
        let c = axis_box(4.5, 0.0, 2.0, 1.0);
        assert!(!obb_overlap(&a, &c));
    }

    #[test]
    fn lateral_separation() {
        let a = axis_box(0.0, 0.0, 2.0, 1.0);
        let b = axis_box(0.0, 2.5, 2.0, 1.0);
        assert!(!obb_overlap(&a, &b));
        let c = axis_box(0.0, 1.9, 2.0, 1.0);
        assert!(obb_overlap(&a, &c));
    }

    #[test]
    fn rotated_box_needs_sat() {
        // A unit square and a diamond (square rotated 45°) whose AABBs
        // overlap but which are separated along the diamond's own axis:
        // projection distance 1.9·√2 ≈ 2.687 > 1.414 + 1.0.
        let a = axis_box(0.0, 0.0, 1.0, 1.0);
        let b = Obb::new(Vec2::new(1.9, 1.9), std::f64::consts::FRAC_PI_4, 1.0, 1.0);
        assert!(!obb_overlap(&a, &b));
        // Slide the diamond toward the square until they intersect:
        // 1.5·√2 ≈ 2.121 < 2.414.
        let c = Obb::new(Vec2::new(1.5, 1.5), std::f64::consts::FRAC_PI_4, 1.0, 1.0);
        assert!(obb_overlap(&a, &c));
    }

    #[test]
    fn contains_point() {
        let b = Obb::new(Vec2::new(1.0, 1.0), std::f64::consts::FRAC_PI_2, 2.0, 0.5);
        // Box is long along +y now.
        assert!(b.contains(Vec2::new(1.0, 2.9)));
        assert!(!b.contains(Vec2::new(1.9, 1.0)));
    }

    #[test]
    fn corners_are_at_expected_positions() {
        let b = axis_box(0.0, 0.0, 1.0, 0.5);
        let cs = b.corners();
        assert!(cs.iter().any(|c| (c.x - 1.0).abs() < 1e-12 && (c.y - 0.5).abs() < 1e-12));
        assert!(cs.iter().any(|c| (c.x + 1.0).abs() < 1e-12 && (c.y + 0.5).abs() < 1e-12));
    }

    #[test]
    fn identical_boxes_overlap() {
        let a = axis_box(5.0, 5.0, 1.0, 1.0);
        assert!(obb_overlap(&a, &a));
    }

    #[test]
    fn segment_through_box_intersects() {
        let b = axis_box(5.0, 0.0, 1.0, 1.0);
        assert!(segment_intersects_obb(Vec2::ZERO, Vec2::new(10.0, 0.0), &b));
        // Segment passing beside the box.
        assert!(!segment_intersects_obb(Vec2::new(0.0, 3.0), Vec2::new(10.0, 3.0), &b));
        // Segment stopping short of the box.
        assert!(!segment_intersects_obb(Vec2::ZERO, Vec2::new(3.0, 0.0), &b));
        // Segment starting inside the box.
        assert!(segment_intersects_obb(Vec2::new(5.0, 0.0), Vec2::new(20.0, 0.0), &b));
    }

    #[test]
    fn segment_respects_box_rotation() {
        // A thin box rotated 90° (long axis now along y): the x-axis ray
        // misses it when the box is offset beyond its half-length, hits
        // when aligned.
        let b = Obb::new(Vec2::new(5.0, 2.6), std::f64::consts::FRAC_PI_2, 2.0, 0.5);
        assert!(!segment_intersects_obb(Vec2::ZERO, Vec2::new(10.0, 0.0), &b));
        let c = Obb::new(Vec2::new(5.0, 0.0), std::f64::consts::FRAC_PI_2, 2.0, 0.5);
        assert!(segment_intersects_obb(Vec2::ZERO, Vec2::new(10.0, 0.0), &c));
    }

    #[test]
    fn vertical_segment_slab_test() {
        let b = axis_box(0.0, 5.0, 1.0, 1.0);
        assert!(segment_intersects_obb(Vec2::ZERO, Vec2::new(0.0, 10.0), &b));
        assert!(!segment_intersects_obb(Vec2::new(2.0, 0.0), Vec2::new(2.0, 10.0), &b));
    }
}
